package repro

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// TestAllocReuseDifferential is the bit-identical contract behind this
// repo's allocation-reuse fast paths (key interning, sim event slabs, the
// runtime's worker and LLM-task scratch pools): the same seeded workloads
// run with every fast path force-disabled and again with them enabled, and
// the full result structures — per-job reports, traces, and the paper's
// headline metrics — must serialize to the same bytes. Reuse is allowed to
// change where memory comes from, never what the simulation computes.
func TestAllocReuseDifferential(t *testing.T) {
	runAll := func() map[string][]byte {
		out := map[string][]byte{}
		mustJSON := func(name string, v interface{}, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, jerr := json.Marshal(v)
			if jerr != nil {
				t.Fatalf("%s: marshal: %v", name, jerr)
			}
			out[name] = b
		}
		f3, err := experiments.Figure3()
		mustJSON("figure3", f3, err)
		out["speedup_x"] = []byte(fmt.Sprintf("%.3f", f3.Speedup()))
		t2, err := experiments.Table2()
		mustJSON("table2", t2, err)
		out["energy_gain_x"] = []byte(fmt.Sprintf("%.3f", t2.EnergyEfficiencyGain))
		t1, err := experiments.Table1()
		mustJSON("table1", t1, err)
		out["mismatches"] = []byte(fmt.Sprintf("%d", len(t1.Check())))
		mt, err := experiments.MultiTenant()
		mustJSON("multitenant", mt, err)
		out["multiplex_gain_x"] = []byte(fmt.Sprintf("%.3f", mt.MultiplexGain))
		return out
	}

	if core.DisableAllocReuse {
		t.Fatal("DisableAllocReuse already set; differential reference would not be a reference")
	}
	core.DisableAllocReuse = true
	reference := runAll()
	core.DisableAllocReuse = false
	reused := runAll()

	for name, want := range reference {
		got, ok := reused[name]
		if !ok {
			t.Fatalf("%s missing from reuse-enabled run", name)
		}
		if string(got) != string(want) {
			t.Errorf("%s diverged with allocation reuse enabled:\n  disabled: %s\n  enabled:  %s",
				name, truncated(want), truncated(got))
		}
	}

	// The headline paper metrics are deterministic simulated-time outputs;
	// pin them so a "bit-identical both ways" regression that shifts both
	// arms together still trips the test.
	for name, want := range map[string]string{
		"speedup_x":        "4.516",
		"energy_gain_x":    "3.469",
		"mismatches":       "0",
		"multiplex_gain_x": "1.629",
	} {
		if got := string(reused[name]); got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
}

// TestEventWheelDifferential is the same contract for the event core: the
// hierarchical timer wheel is a drop-in replacement for the binary heap,
// and the seeded workloads must serialize to the same bytes on both arms.
// The wheel is allowed to change how the next event is found, never which
// event fires next — pop order is (time, sequence) on both arms by
// construction, and this test is the end-to-end witness.
func TestEventWheelDifferential(t *testing.T) {
	runAll := func() map[string][]byte {
		out := map[string][]byte{}
		mustJSON := func(name string, v interface{}, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, jerr := json.Marshal(v)
			if jerr != nil {
				t.Fatalf("%s: marshal: %v", name, jerr)
			}
			out[name] = b
		}
		f3, err := experiments.Figure3()
		mustJSON("figure3", f3, err)
		out["speedup_x"] = []byte(fmt.Sprintf("%.3f", f3.Speedup()))
		t2, err := experiments.Table2()
		mustJSON("table2", t2, err)
		out["energy_gain_x"] = []byte(fmt.Sprintf("%.3f", t2.EnergyEfficiencyGain))
		t1, err := experiments.Table1()
		mustJSON("table1", t1, err)
		out["mismatches"] = []byte(fmt.Sprintf("%d", len(t1.Check())))
		mt, err := experiments.MultiTenant()
		mustJSON("multitenant", mt, err)
		out["multiplex_gain_x"] = []byte(fmt.Sprintf("%.3f", mt.MultiplexGain))
		return out
	}

	if sim.DisableEventWheel {
		t.Fatal("DisableEventWheel already set; differential reference would not be a reference")
	}
	sim.DisableEventWheel = true
	heap := runAll()
	sim.DisableEventWheel = false
	wheel := runAll()

	for name, want := range heap {
		got, ok := wheel[name]
		if !ok {
			t.Fatalf("%s missing from wheel-enabled run", name)
		}
		if string(got) != string(want) {
			t.Errorf("%s diverged with the timer wheel enabled:\n  heap:  %s\n  wheel: %s",
				name, truncated(want), truncated(got))
		}
	}

	// Pin the paper's headline metrics so a regression that shifts both arms
	// identically (e.g. a broken tick quantization applied to both) still
	// fails loudly.
	for name, want := range map[string]string{
		"speedup_x":        "4.516",
		"energy_gain_x":    "3.469",
		"mismatches":       "0",
		"multiplex_gain_x": "1.629",
	} {
		if got := string(wheel[name]); got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
}

// TestSLOTiersOffDifferential is the bit-identical contract for SLO-tiered
// serving: the SLO hooks threaded through the scheduler's admission hot path
// (class resolution, budget/queue gates, the overload controller, settle-time
// attainment) must not change what the simulation computes unless a
// constraint binds. The seeded paper workloads run once with the machinery
// absent (the default — EnableSLO never called) and once with core.NeutralSLO
// installing a constrains-nothing tier set on every scheduler, and the full
// result structures must serialize to the same bytes.
func TestSLOTiersOffDifferential(t *testing.T) {
	runAll := func() map[string][]byte {
		out := map[string][]byte{}
		mustJSON := func(name string, v interface{}, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, jerr := json.Marshal(v)
			if jerr != nil {
				t.Fatalf("%s: marshal: %v", name, jerr)
			}
			out[name] = b
		}
		f3, err := experiments.Figure3()
		mustJSON("figure3", f3, err)
		out["speedup_x"] = []byte(fmt.Sprintf("%.3f", f3.Speedup()))
		t2, err := experiments.Table2()
		mustJSON("table2", t2, err)
		out["energy_gain_x"] = []byte(fmt.Sprintf("%.3f", t2.EnergyEfficiencyGain))
		t1, err := experiments.Table1()
		mustJSON("table1", t1, err)
		out["mismatches"] = []byte(fmt.Sprintf("%d", len(t1.Check())))
		mt, err := experiments.MultiTenant()
		mustJSON("multitenant", mt, err)
		out["multiplex_gain_x"] = []byte(fmt.Sprintf("%.3f", mt.MultiplexGain))
		return out
	}

	if core.NeutralSLO {
		t.Fatal("NeutralSLO already set; differential reference would not be a reference")
	}
	off := runAll()
	core.NeutralSLO = true
	defer func() { core.NeutralSLO = false }()
	neutral := runAll()

	for name, want := range off {
		got, ok := neutral[name]
		if !ok {
			t.Fatalf("%s missing from neutral-SLO run", name)
		}
		if string(got) != string(want) {
			t.Errorf("%s diverged with neutral SLO tiers enabled:\n  off:     %s\n  neutral: %s",
				name, truncated(want), truncated(got))
		}
	}

	// Pin the paper's headline metrics so a regression that shifts both arms
	// identically still fails loudly.
	for name, want := range map[string]string{
		"speedup_x":        "4.516",
		"energy_gain_x":    "3.469",
		"mismatches":       "0",
		"multiplex_gain_x": "1.629",
	} {
		if got := string(neutral[name]); got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
}

func truncated(b []byte) string {
	const max = 400
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + "..."
}
