# Build / test / benchmark entry points for the reproduction.

GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test race vet bench bench-smoke bench-json bench-baseline memprofile profile

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector with shuffled test
# order; the serving daemon's HTTP surface, shard loops and job registry
# are exercised concurrently by the api package's tests.
race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# bench writes the full benchmark suite (paper metrics + perf counters +
# allocation stats) as test2json events to BENCH_<date>.json, building the
# perf trajectory across PRs. Human-readable output goes to stdout via tee.
bench:
	$(GO) test -bench . -benchmem -benchtime 5x -run '^$$' -json . | tee BENCH_$(DATE).json

# bench-smoke is the CI-speed variant: one iteration per benchmark.
bench-smoke:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .

# bench-json emits the machine-readable perf trajectory for the
# serving-path benchmarks as test2json event streams: BENCH_admission.json
# carries plans/sec, admission_gain_x, submit p50/p95 and allocs/op;
# BENCH_serving.json carries jobs/s, serving_gain_x and tail latencies;
# BENCH_reconfig.json carries the deterministic simulated-time completion and
# energy gains of mid-flight reconfiguration under fleet churn;
# BENCH_faults.json carries the recovery-on vs recovery-off goodput gain
# under the seeded fault storm; BENCH_overload.json carries the SLO-tiered vs
# unbounded-FIFO goodput gain (plus shed/degrade counts and peak queue depth)
# under the 4× overload burst; BENCH_engine.json carries the raw event-core
# throughput (timer wheel vs reference heap at several pending depths);
# BENCH_cluster.json carries the horizontal scale-out measurement through the
# consistent-hash router tier (sim-time throughput scaling at 3 nodes vs 1,
# plus the churn arm's stranded/rerouted/node_down counts). The checked-in
# copies are the first baseline; rerun this target to extend the trajectory
# when the hot path changes.
bench-json:
	$(GO) test -bench '^BenchmarkAdmission$$' -benchmem -benchtime 3x -run '^$$' -json . > BENCH_admission.json
	$(GO) test -bench '^BenchmarkServing$$' -benchmem -benchtime 1x -run '^$$' -json . > BENCH_serving.json
	$(GO) test -bench '^BenchmarkReconfig$$' -benchmem -benchtime 3x -run '^$$' -json . > BENCH_reconfig.json
	$(GO) test -bench '^BenchmarkFaults$$' -benchmem -benchtime 3x -run '^$$' -json . > BENCH_faults.json
	$(GO) test -bench '^BenchmarkOverload$$' -benchmem -benchtime 3x -run '^$$' -json . > BENCH_overload.json
	$(GO) test -bench '^BenchmarkEngine$$' -benchmem -benchtime 200000x -run '^$$' -json . > BENCH_engine.json
	$(GO) test -bench '^BenchmarkCluster$$' -benchmem -benchtime 3x -run '^$$' -json . > BENCH_cluster.json

# bench-baseline refreshes the text baseline cmd/benchgate compares against
# in CI (hot-path ns/op for the load sweep, the serving replay, the
# reconfiguration churn replay, the fault-storm recovery replay, the
# overload-admission replay, the cluster scale-out replay and the event-core
# microbench). ns/op gates
# (-time-gate) only compare within one machine: always regenerate on the host
# that runs the gate.
bench-baseline:
	$(GO) test -bench '^(BenchmarkLoadSweep|BenchmarkServing|BenchmarkReconfig|BenchmarkFaults|BenchmarkOverload|BenchmarkCluster)$$' -benchmem -benchtime 2x -run '^$$' . > bench/baseline.txt
	$(GO) test -bench '^BenchmarkEngine$$' -benchmem -benchtime 200000x -run '^$$' . >> bench/baseline.txt

# memprofile runs the retention benchmark (bounded shard telemetry under a
# long served history) with heap/alloc profiles, for digging into where
# serving memory goes: go tool pprof mem_<date>.prof
memprofile:
	$(GO) test -bench 'BenchmarkServingRetention' -benchmem -benchtime 3x \
		-run '^$$' -memprofile mem_$(DATE).prof -memprofilerate 1 .
	@echo "wrote mem_$(DATE).prof (inspect with: go tool pprof repro.test mem_$(DATE).prof)"

# profile captures CPU and heap profiles from the serving hot path
# (BenchmarkServing: the mixed-tenant HTTP replay against both serving
# architectures) into bench/prof/ — the first step of the profile → fix →
# gate loop documented in README's Performance section. Top allocation
# sites by object count:
#   go tool pprof -top -sample_index=alloc_objects bench/prof/serving.mem.pprof
# Where CPU goes:
#   go tool pprof -top bench/prof/serving.cpu.pprof
# Caveat: at the default memprofilerate one sample extrapolates to ~32k
# 16-byte objects, so per-site counts under a few samples are noise — trust
# -benchmem allocs/op deltas for small effects.
profile:
	@mkdir -p bench/prof
	$(GO) test -bench '^BenchmarkServing$$' -benchtime 2x -run '^$$' \
		-cpuprofile bench/prof/serving.cpu.pprof \
		-memprofile bench/prof/serving.mem.pprof .
	@echo "wrote bench/prof/serving.{cpu,mem}.pprof"
