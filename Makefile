# Build / test / benchmark entry points for the reproduction.

GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test vet bench bench-smoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench writes the full benchmark suite (paper metrics + perf counters +
# allocation stats) as test2json events to BENCH_<date>.json, building the
# perf trajectory across PRs. Human-readable output goes to stdout via tee.
bench:
	$(GO) test -bench . -benchmem -benchtime 5x -run '^$$' -json . | tee BENCH_$(DATE).json

# bench-smoke is the CI-speed variant: one iteration per benchmark.
bench-smoke:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .
