# Build / test / benchmark entry points for the reproduction.

GO ?= go
DATE := $(shell date +%F)

.PHONY: all build test race vet bench bench-smoke memprofile

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector; the serving daemon's
# HTTP surface, shard loops and job registry are exercised concurrently by
# the api package's tests.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench writes the full benchmark suite (paper metrics + perf counters +
# allocation stats) as test2json events to BENCH_<date>.json, building the
# perf trajectory across PRs. Human-readable output goes to stdout via tee.
bench:
	$(GO) test -bench . -benchmem -benchtime 5x -run '^$$' -json . | tee BENCH_$(DATE).json

# bench-smoke is the CI-speed variant: one iteration per benchmark.
bench-smoke:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .

# memprofile runs the retention benchmark (bounded shard telemetry under a
# long served history) with heap/alloc profiles, for digging into where
# serving memory goes: go tool pprof mem_<date>.prof
memprofile:
	$(GO) test -bench 'BenchmarkServingRetention' -benchmem -benchtime 3x \
		-run '^$$' -memprofile mem_$(DATE).prof -memprofilerate 1 .
	@echo "wrote mem_$(DATE).prof (inspect with: go tool pprof repro.test mem_$(DATE).prof)"
