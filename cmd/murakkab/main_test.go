package main

import (
	"testing"

	"repro/internal/workflow"
)

func TestParseConstraint(t *testing.T) {
	cases := map[string]workflow.Constraint{
		"min_cost":    workflow.MinCost,
		"MIN_COST":    workflow.MinCost,
		"mincost":     workflow.MinCost,
		"min_latency": workflow.MinLatency,
		"min_power":   workflow.MinPower,
		"max_quality": workflow.MaxQuality,
		"MaxQuality":  workflow.MaxQuality,
	}
	for in, want := range cases {
		got, err := parseConstraint(in)
		if err != nil {
			t.Errorf("parseConstraint(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseConstraint(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseConstraint("fastest"); err == nil {
		t.Error("unknown constraint accepted")
	}
}
