// Command murakkab runs a declarative workflow on a simulated cluster from
// the command line.
//
// Usage:
//
//	murakkab -desc "List objects shown/mentioned in the videos" \
//	         -videos 2 -scenes 8 -constraint min_cost -quality 0.95
//
//	murakkab -desc "Generate social media newsfeed for Alice" \
//	         -topics f1,cats,cooking -constraint min_latency
//
// Flags select the workload shape, the constraint and the cluster size; the
// runtime decides everything else. Output: the execution report, the chosen
// configuration per capability, a Figure 3-style ASCII timeline, and
// (optionally) CSV series for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

func main() {
	var (
		desc       = flag.String("desc", "List objects shown/mentioned in the videos", "natural-language job description")
		videos     = flag.Int("videos", 2, "number of input videos (video workloads)")
		scenes     = flag.Int("scenes", 8, "scenes per video")
		sceneLen   = flag.Float64("scene-len", 30, "scene length in seconds")
		frames     = flag.Int("frames", 24, "frames sampled per scene")
		topics     = flag.String("topics", "", "comma-separated topics (newsfeed workloads)")
		constraint = flag.String("constraint", "min_cost", "min_cost | min_latency | min_power | max_quality")
		quality    = flag.Float64("quality", 0.95, "minimum acceptable quality in [0,1], 0 disables")
		vms        = flag.Int("vms", 2, "number of Standard_ND96amsr_A100_v4 VMs")
		spotVMs    = flag.Int("spot-vms", 0, "additional spot VMs")
		rebalance  = flag.Float64("rebalance", 0, "cluster-manager rebalance period in seconds (0 = off)")
		maxPaths   = flag.Int("max-paths", 1, "execution-path replication cap under max_quality")
		csv        = flag.Bool("csv", false, "emit spans + utilization CSV instead of ASCII")
		width      = flag.Int("width", 72, "timeline width in characters")
	)
	flag.Parse()

	c, err := parseConstraint(*constraint)
	if err != nil {
		fatal(err)
	}

	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	for i := 0; i < *vms; i++ {
		cl.AddVM(fmt.Sprintf("vm%d", i), hardware.NDv4SKUName, false)
	}
	for i := 0; i < *spotVMs; i++ {
		cl.AddVM(fmt.Sprintf("spot%d", i), hardware.NDv4SKUName, true)
	}
	rt, err := core.New(core.Config{
		Engine:          se,
		Cluster:         cl,
		Library:         agents.DefaultLibrary(),
		RebalancePeriod: sim.Duration(*rebalance),
	})
	if err != nil {
		fatal(err)
	}

	job := workflow.Job{
		Description: *desc,
		Constraint:  c,
		MinQuality:  *quality,
	}
	if *topics != "" {
		job.Inputs = append(job.Inputs, workflow.Input{Name: "user", Kind: workflow.InputUser})
		for _, t := range strings.Split(*topics, ",") {
			job.Inputs = append(job.Inputs, workflow.Input{
				Name: strings.TrimSpace(t), Kind: workflow.InputTopic,
				Attrs: map[string]float64{"queries": 3},
			})
		}
	} else {
		for i := 0; i < *videos; i++ {
			job.Inputs = append(job.Inputs, workflow.VideoInput(
				fmt.Sprintf("video%d.mov", i),
				float64(*scenes)*(*sceneLen), *sceneLen, *frames))
		}
	}

	ex, err := rt.Submit(job, core.SubmitOptions{RelaxFloor: true, MaxPaths: *maxPaths})
	if err != nil {
		fatal(err)
	}
	se.Run()
	if ex.Err() != nil {
		fatal(ex.Err())
	}
	rep := ex.Report()

	if *csv {
		fmt.Println("# spans")
		fmt.Print(telemetry.SpansCSV(rep.Tracer))
		fmt.Println("# utilization")
		fmt.Print(rep.UtilizationCSV(1))
		return
	}

	fmt.Println(rep.String())
	fmt.Println("\nDecisions:")
	caps := make([]string, 0, len(rep.Decisions))
	for cap := range rep.Decisions {
		caps = append(caps, cap)
	}
	sort.Strings(caps)
	for _, cap := range caps {
		fmt.Printf("  %-22s %s\n", cap, rep.Decisions[cap])
	}
	fmt.Println("\nTimeline:")
	fmt.Print(rep.Timeline(*width))
}

func parseConstraint(s string) (workflow.Constraint, error) {
	switch strings.ToLower(s) {
	case "min_cost", "mincost":
		return workflow.MinCost, nil
	case "min_latency", "minlatency":
		return workflow.MinLatency, nil
	case "min_power", "minpower":
		return workflow.MinPower, nil
	case "max_quality", "maxquality":
		return workflow.MaxQuality, nil
	default:
		return 0, fmt.Errorf("unknown constraint %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "murakkab:", err)
	os.Exit(1)
}
