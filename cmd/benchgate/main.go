// Command benchgate is the CI regression gate over `go test -bench` output:
// a dependency-free stand-in for benchstat comparison that actually fails.
// It parses the standard benchmark text format ("BenchmarkX-8 N 123 ns/op
// 4.5 some_metric ..."), compares a metric (default ns/op) between a
// checked-in baseline and the current run per benchmark, and fails when the
// current value regresses beyond -max-ratio. Independently, -require asserts
// absolute thresholds on the current run's custom metrics (e.g. the
// admission speedup or the serving multiplexing gain), and -ratio-gate
// asserts a per-benchmark ratio limit against the baseline for one unit —
// the allocation gates, where the metric is deterministic and the tolerance
// can be far tighter than wall-clock allows.
//
//	go test -bench '^(BenchmarkLoadSweep|BenchmarkServing)$' -run '^$' . > new.txt
//	go run ./cmd/benchgate -baseline bench/baseline.txt -current new.txt -max-ratio 2.5 \
//	  -require 'BenchmarkServing:serving_gain_x>=1.5' \
//	  -ratio-gate 'BenchmarkServing:allocs/op<=1.10' \
//	  -time-gate 'BenchmarkEngine<=2.5'
//
// Baselines and current runs usually come from different machines, so
// -max-ratio should be generous: the gate exists to catch asymptotic
// blowups and order-of-magnitude regressions, not single-digit percentages.
// allocs/op (and, less strictly, B/op) does not vary with the host, which is
// why those gates carry their own per-benchmark tolerances.
//
// -time-gate is the per-benchmark sugar for a ns/op ratio gate: "Bench<=2.5"
// bounds current/baseline ns/op for that benchmark AND every sub-benchmark
// under it ("Bench/wheel/depth=64", ...), so one flag covers a whole
// micro-benchmark family. Because wall-clock only compares within a host,
// keep the tolerance generous and regenerate the baseline on the same
// machine that runs the gate whenever it trips legitimately:
//
//	make bench-baseline   # rewrites bench/baseline.txt on this host
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// measurement is one benchmark line's metrics by unit.
type measurement map[string]float64

// parseBench reads go-bench text output into name → metrics. The trailing
// "-8" GOMAXPROCS suffix is stripped so baselines compare across hosts; when
// a benchmark appears multiple times (e.g. -count > 1), the minimum per unit
// is kept — wall-clock noise is one-sided.
func parseBench(path string) (map[string]measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := out[name]
		if m == nil {
			m = measurement{}
			out[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if prev, ok := m[unit]; !ok || v < prev {
				m[unit] = v
			}
		}
	}
	return out, sc.Err()
}

// requirement is one "-require Bench:unit>=value" assertion.
type requirement struct {
	bench, unit string
	ge          bool
	value       float64
}

func parseRequirement(s string) (requirement, error) {
	var r requirement
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return r, fmt.Errorf("requirement %q: want Benchmark:unit>=value", s)
	}
	r.bench = name
	for _, op := range []string{">=", "<="} {
		if unit, val, ok := strings.Cut(rest, op); ok {
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return r, fmt.Errorf("requirement %q: bad threshold: %v", s, err)
			}
			r.unit, r.ge, r.value = unit, op == ">=", v
			return r, nil
		}
	}
	return r, fmt.Errorf("requirement %q: want >= or <=", s)
}

// ratioGate is one "-ratio-gate Bench:unit<=ratio" assertion: current/baseline
// for that benchmark's unit must not exceed ratio.
type ratioGate struct {
	bench, unit string
	maxRatio    float64
}

func parseRatioGate(s string) (ratioGate, error) {
	var g ratioGate
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return g, fmt.Errorf("ratio-gate %q: want Benchmark:unit<=ratio", s)
	}
	unit, val, ok := strings.Cut(rest, "<=")
	if !ok {
		return g, fmt.Errorf("ratio-gate %q: want <= (a ratio gate bounds growth)", s)
	}
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r <= 0 {
		return g, fmt.Errorf("ratio-gate %q: bad ratio %q", s, val)
	}
	g.bench, g.unit, g.maxRatio = name, unit, r
	return g, nil
}

// ratioGateList collects repeated -ratio-gate flags.
type ratioGateList []ratioGate

func (l *ratioGateList) String() string { return fmt.Sprint([]ratioGate(*l)) }
func (l *ratioGateList) Set(s string) error {
	g, err := parseRatioGate(s)
	if err != nil {
		return err
	}
	*l = append(*l, g)
	return nil
}

// timeGate is one "-time-gate Bench<=ratio" assertion: a ns/op ratio gate
// that also covers every sub-benchmark under Bench. Wall-clock is only
// comparable within a host, so tolerances should stay generous and the
// baseline must be regenerated on the gating machine (make bench-baseline).
type timeGate struct {
	bench    string
	maxRatio float64
}

func parseTimeGate(s string) (timeGate, error) {
	var g timeGate
	name, val, ok := strings.Cut(s, "<=")
	if !ok {
		return g, fmt.Errorf("time-gate %q: want Benchmark<=ratio", s)
	}
	if strings.Contains(name, ":") {
		return g, fmt.Errorf("time-gate %q: no unit — it always gates ns/op (use -ratio-gate for other units)", s)
	}
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || r <= 0 {
		return g, fmt.Errorf("time-gate %q: bad ratio %q", s, val)
	}
	g.bench, g.maxRatio = name, r
	return g, nil
}

// matches reports whether the gate covers this benchmark: the name itself
// or any sub-benchmark beneath it.
func (g timeGate) matches(name string) bool {
	return name == g.bench || strings.HasPrefix(name, g.bench+"/")
}

// timeGateList collects repeated -time-gate flags.
type timeGateList []timeGate

func (l *timeGateList) String() string { return fmt.Sprint([]timeGate(*l)) }
func (l *timeGateList) Set(s string) error {
	g, err := parseTimeGate(s)
	if err != nil {
		return err
	}
	*l = append(*l, g)
	return nil
}

// requireList collects repeated -require flags.
type requireList []requirement

func (l *requireList) String() string { return fmt.Sprint([]requirement(*l)) }
func (l *requireList) Set(s string) error {
	r, err := parseRequirement(s)
	if err != nil {
		return err
	}
	*l = append(*l, r)
	return nil
}

func main() {
	baseline := flag.String("baseline", "", "checked-in baseline bench output (empty skips ratio checks)")
	current := flag.String("current", "", "current bench output (required)")
	metric := flag.String("metric", "ns/op", "unit compared against the baseline")
	maxRatio := flag.Float64("max-ratio", 2.5, "fail when current/baseline exceeds this")
	var requires requireList
	flag.Var(&requires, "require", "absolute threshold on the current run, Benchmark:unit>=value (repeatable)")
	var gates ratioGateList
	flag.Var(&gates, "ratio-gate", "per-benchmark ratio limit vs baseline, Benchmark:unit<=ratio (repeatable; requires -baseline)")
	var timeGates timeGateList
	flag.Var(&timeGates, "time-gate", "ns/op ratio limit vs baseline for a benchmark and its sub-benchmarks, Benchmark<=ratio (repeatable; requires -baseline; same-host baselines only)")
	flag.Parse()

	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	cur, err := parseBench(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading current: %v\n", err)
		os.Exit(2)
	}
	failed := false

	if *baseline == "" && (len(gates) > 0 || len(timeGates) > 0) {
		fmt.Fprintln(os.Stderr, "benchgate: -ratio-gate and -time-gate require -baseline")
		os.Exit(2)
	}
	if *baseline != "" {
		base, err := parseBench(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: reading baseline: %v\n", err)
			os.Exit(2)
		}
		for _, g := range gates {
			bm, ok := base[g.bench]
			bv := 0.0
			if ok {
				bv = bm[g.unit]
			}
			if bv <= 0 {
				fmt.Printf("benchgate: %-28s baseline has no %s: ratio gate unanchored FAIL\n", g.bench, g.unit)
				failed = true
				continue
			}
			cm, ok := cur[g.bench]
			cv := 0.0
			if ok {
				cv = cm[g.unit]
			}
			if cv <= 0 {
				fmt.Printf("benchgate: %-28s missing %s from current run FAIL\n", g.bench, g.unit)
				failed = true
				continue
			}
			ratio := cv / bv
			verdict := "ok"
			if ratio > g.maxRatio {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchgate: %-28s %12.0f → %12.0f %s  (%.3fx, gate %.2fx) %s\n",
				g.bench, bv, cv, g.unit, ratio, g.maxRatio, verdict)
		}
		for _, g := range timeGates {
			anchored := false
			for name, bm := range base {
				if !g.matches(name) {
					continue
				}
				bv := bm["ns/op"]
				if bv <= 0 {
					continue
				}
				anchored = true
				cm, ok := cur[name]
				cv := 0.0
				if ok {
					cv = cm["ns/op"]
				}
				if cv <= 0 {
					fmt.Printf("benchgate: %-28s missing ns/op from current run FAIL\n", name)
					failed = true
					continue
				}
				ratio := cv / bv
				verdict := "ok"
				if ratio > g.maxRatio {
					verdict = "REGRESSION"
					failed = true
				}
				fmt.Printf("benchgate: %-28s %12.0f → %12.0f ns/op  (%.3fx, time gate %.2fx) %s\n",
					name, bv, cv, ratio, g.maxRatio, verdict)
			}
			if !anchored {
				// A time gate whose whole family vanished from the baseline
				// must fail, like an unanchored ratio gate.
				fmt.Printf("benchgate: %-28s baseline has no ns/op: time gate unanchored FAIL\n", g.bench)
				failed = true
			}
		}
		for name, bm := range base {
			bv, ok := bm[*metric]
			if !ok || bv <= 0 {
				continue
			}
			cm, ok := cur[name]
			if !ok {
				// A baseline benchmark that vanished (renamed, panicked, or
				// filtered out) silently disabling its own gate is exactly
				// the failure mode a gate must not have.
				fmt.Printf("benchgate: %-28s missing from current run FAIL\n", name)
				failed = true
				continue
			}
			cv, ok := cm[*metric]
			if !ok {
				continue
			}
			ratio := cv / bv
			verdict := "ok"
			if ratio > *maxRatio {
				verdict = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchgate: %-28s %12.0f → %12.0f %s  (%.2fx, limit %.2fx) %s\n",
				name, bv, cv, *metric, ratio, *maxRatio, verdict)
		}
	}

	for _, r := range requires {
		m, ok := cur[r.bench]
		if !ok {
			fmt.Printf("benchgate: %-28s missing from current run: requirement %s unchecked\n", r.bench, r.unit)
			failed = true
			continue
		}
		v, ok := m[r.unit]
		if !ok {
			fmt.Printf("benchgate: %-28s has no metric %q\n", r.bench, r.unit)
			failed = true
			continue
		}
		op, pass := ">=", v >= r.value
		if !r.ge {
			op, pass = "<=", v <= r.value
		}
		verdict := "ok"
		if !pass {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %-28s %s = %.3f, require %s %.3f  %s\n",
			r.bench, r.unit, v, op, r.value, verdict)
	}

	if failed {
		os.Exit(1)
	}
}
