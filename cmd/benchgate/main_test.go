package main

import "testing"

func TestParseRatioGate(t *testing.T) {
	g, err := parseRatioGate("BenchmarkServing:allocs/op<=1.10")
	if err != nil {
		t.Fatal(err)
	}
	if g.bench != "BenchmarkServing" || g.unit != "allocs/op" || g.maxRatio != 1.10 {
		t.Fatalf("parsed %+v", g)
	}
	for _, bad := range []string{
		"BenchmarkServing",                 // no unit
		"BenchmarkServing:allocs/op>=1.10", // wrong direction
		"BenchmarkServing:allocs/op<=zero", // non-numeric
		"BenchmarkServing:allocs/op<=-2",   // non-positive
	} {
		if _, err := parseRatioGate(bad); err == nil {
			t.Errorf("parseRatioGate(%q) accepted", bad)
		}
	}
}

func TestParseTimeGate(t *testing.T) {
	g, err := parseTimeGate("BenchmarkEngine<=2.5")
	if err != nil {
		t.Fatal(err)
	}
	if g.bench != "BenchmarkEngine" || g.maxRatio != 2.5 {
		t.Fatalf("parsed %+v", g)
	}
	for _, m := range []string{"BenchmarkEngine", "BenchmarkEngine/wheel/depth=64"} {
		if !g.matches(m) {
			t.Errorf("gate does not cover %q", m)
		}
	}
	for _, m := range []string{"BenchmarkEngineFoo", "BenchmarkServing"} {
		if g.matches(m) {
			t.Errorf("gate wrongly covers %q", m)
		}
	}
	for _, bad := range []string{
		"BenchmarkEngine",            // no ratio
		"BenchmarkEngine:ns/op<=2.5", // units are not accepted: always ns/op
		"BenchmarkEngine<=zero",      // non-numeric
		"BenchmarkEngine<=-1",        // non-positive
	} {
		if _, err := parseTimeGate(bad); err == nil {
			t.Errorf("parseTimeGate(%q) accepted", bad)
		}
	}
}

func TestParseRequirement(t *testing.T) {
	r, err := parseRequirement("BenchmarkFaults:stranded_jobs<=0")
	if err != nil {
		t.Fatal(err)
	}
	if r.bench != "BenchmarkFaults" || r.unit != "stranded_jobs" || r.ge || r.value != 0 {
		t.Fatalf("parsed %+v", r)
	}
}
