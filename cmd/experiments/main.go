// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all          # everything
//	experiments -exp fig3         # Figure 3 traces + utilization
//	experiments -exp table1       # Table 1 lever ablations
//	experiments -exp table2       # Table 2 energy & time
//	experiments -exp overhead     # §3.3 overhead accounting
//	experiments -exp multitenant  # Figure 2 multiplexing
//	experiments -exp rebalance    # workflow-aware scaling ablation
//	experiments -exp fig3 -csv    # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "fig3 | table1 | table2 | overhead | multitenant | rebalance | quality | loadsweep | multicloud | all")
	csv := flag.Bool("csv", false, "emit CSV (fig3 only)")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig3", func() error {
		res, err := experiments.Figure3()
		if err != nil {
			return err
		}
		if *csv {
			fmt.Print(res.CSV())
		} else {
			fmt.Println(res.String())
		}
		return nil
	})
	run("table2", func() error {
		res, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("table1", func() error {
		res, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("overhead", func() error {
		res, err := experiments.Overhead()
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("multitenant", func() error {
		res, err := experiments.MultiTenant()
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("rebalance", func() error {
		res, err := experiments.RebalanceAblation()
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("quality", func() error {
		res, err := experiments.QualityExperiment(3)
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("multicloud", func() error {
		res, err := experiments.MultiCloud(experiments.DefaultCloudOptions())
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
	run("loadsweep", func() error {
		res, err := experiments.LoadSweep([]float64{0.005, 0.01, 0.02, 0.05}, 600, 11)
		if err != nil {
			return err
		}
		fmt.Println(res.String())
		return nil
	})
}
