// Command murakkabd serves the Murakkab runtime over HTTP — the AIWaaS
// surface from the paper's §5 discussion.
//
//	murakkabd -addr :8080
//
//	curl localhost:8080/v1/library
//	curl localhost:8080/v1/experiments/table2
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "description": "List objects shown/mentioned in the videos",
//	  "constraint": "MIN_COST", "min_quality": 0.95,
//	  "inputs": [{"name": "cats.mov", "kind": "video",
//	              "attrs": {"duration_s": 240, "scene_len_s": 30,
//	                        "frames_per_scene": 24}}]}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewHandler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("murakkabd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
