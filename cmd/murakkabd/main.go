// Command murakkabd serves the Murakkab runtime over HTTP — the AIWaaS
// surface from the paper's §5 discussion, run as a long-lived, sharded
// serving daemon: tenants hash to runtime shards, jobs are admitted
// asynchronously and multiplex each shard's warm serving engines. Shard
// memory stays bounded under retention: telemetry older than -retain
// simulated seconds is compacted into rollup buckets, and a shard whose
// retained series exceed -max-series-points is recycled (drained and
// replaced) without failing in-flight jobs. With -reconfig, running jobs'
// remaining stages are re-planned and re-bound at stage boundaries when a
// shard's fleet churns or its cluster manager rebalances (-rebalance).
// With -max-retries (and optionally -job-deadline), failed stages retry with
// capped exponential backoff on a re-planned binding instead of failing the
// job; -faults replays a seeded deterministic fault trace against each shard
// for chaos testing.
//
//	murakkabd -addr :8080 -shards 2 -concurrency 4 -vms 2 \
//	  -retain 3600 -max-series-points 1048576 -plan-workers 0 \
//	  -reconfig -rebalance 30 -max-retries 4 -job-deadline 1800
//
//	curl localhost:8080/v1/library
//	curl localhost:8080/v1/stats
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "tenant": "alice",
//	  "description": "List objects shown/mentioned in the videos",
//	  "constraint": "MIN_COST", "min_quality": 0.95,
//	  "inputs": [{"name": "cats.mov", "kind": "video",
//	              "attrs": {"duration_s": 240, "scene_len_s": 30,
//	                        "frames_per_scene": 24}}]}'
//	curl localhost:8080/v1/jobs/job-00000001
//	curl -X DELETE localhost:8080/v1/jobs/job-00000001
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains in-flight
// HTTP requests, then drains the runtime shards (queued and running jobs
// complete) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
)

// validateFlags rejects out-of-range tuning flags up front. Negative values
// are invalid, not "disabled": an operator typing -retain -1 almost certainly
// fat-fingered a window, and silently running without compaction (or without
// off-loop planning) would only surface as slow memory growth much later.
func validateFlags(retain float64, maxSeriesPoints, planWorkers int, rebalance, faults float64, maxRetries int, jobDeadline float64) error {
	if retain < 0 {
		return fmt.Errorf("-retain must be >= 0 (got %v); 0 selects the default window", retain)
	}
	if maxSeriesPoints < 0 {
		return fmt.Errorf("-max-series-points must be >= 0 (got %d); 0 selects the default budget", maxSeriesPoints)
	}
	if planWorkers < 0 {
		return fmt.Errorf("-plan-workers must be >= 0 (got %d); 0 selects GOMAXPROCS", planWorkers)
	}
	if rebalance < 0 {
		return fmt.Errorf("-rebalance must be >= 0 (got %v); 0 disables the rebalancing loop", rebalance)
	}
	if faults < 0 {
		return fmt.Errorf("-faults must be >= 0 (got %v); 0 disables fault injection", faults)
	}
	if maxRetries < 0 {
		return fmt.Errorf("-max-retries must be >= 0 (got %d); 0 disables failure recovery", maxRetries)
	}
	if jobDeadline < 0 {
		return fmt.Errorf("-job-deadline must be >= 0 (got %v); 0 disables the per-job deadline", jobDeadline)
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 2, "runtime shards (tenants hash across them)")
	concurrency := flag.Int("concurrency", 4, "max concurrent jobs per shard")
	vms := flag.Int("vms", 2, "ND96amsr_A100_v4 VMs per shard")
	perRequest := flag.Bool("per-request", false,
		"baseline mode: provision a throwaway testbed per request instead of sharing runtimes")
	retain := flag.Float64("retain", 0,
		"per-shard telemetry retention window in simulated seconds: older history is "+
			"compacted into rollup buckets (0 = default 3600)")
	maxSeriesPoints := flag.Int("max-series-points", 0,
		"per-shard telemetry budget in series change points before the shard is recycled "+
			"(0 = default 1048576)")
	planWorkers := flag.Int("plan-workers", 0,
		"per-shard off-loop plan-search workers: admission's configuration search runs "+
			"in parallel against immutable snapshots and commits optimistically on the "+
			"shard loop (0 = default GOMAXPROCS)")
	reconfig := flag.Bool("reconfig", false,
		"enable mid-flight reconfiguration: when a shard's fleet churns or its cluster "+
			"manager rebalances, running jobs' remaining stages are re-planned and re-bound "+
			"at stage boundaries if the new plan beats the current one by a hysteresis margin")
	rebalance := flag.Float64("rebalance", 0,
		"per-shard rebalancing-loop period in simulated seconds (engine grow/shrink from "+
			"DAG lookahead while workflows are active; 0 disables)")
	faults := flag.Float64("faults", 0,
		"deterministic fault injection: total fault events per simulated second per shard, "+
			"split evenly across engine crashes, worker losses, stage stalls and transient "+
			"call errors (0 disables; intended for chaos testing, not production serving)")
	faultSeed := flag.Int64("fault-seed", 1,
		"seed for the per-shard fault traces and the recovery backoff jitter streams")
	maxRetries := flag.Int("max-retries", 0,
		"per-task attempt budget: failed stages retry with capped exponential backoff on a "+
			"re-planned binding until the budget is spent (0 disables failure recovery)")
	jobDeadline := flag.Float64("job-deadline", 0,
		"per-job deadline in simulated seconds: jobs still running past it fail with "+
			"deadline_exceeded (0 disables; setting it alone still enables recovery)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long to wait for in-flight HTTP requests on shutdown")
	flag.Parse()

	if err := validateFlags(*retain, *maxSeriesPoints, *planWorkers, *rebalance, *faults, *maxRetries, *jobDeadline); err != nil {
		fmt.Fprintf(os.Stderr, "murakkabd: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	server, err := api.NewServer(api.PoolConfig{
		Shards:                *shards,
		VMsPerShard:           *vms,
		MaxConcurrentPerShard: *concurrency,
		RetainSimSeconds:      *retain,
		MaxSeriesPoints:       *maxSeriesPoints,
		PlanWorkers:           *planWorkers,
		Reconfig:              *reconfig,
		RebalancePeriodS:      *rebalance,
		FaultRate:             *faults,
		FaultSeed:             *faultSeed,
		MaxRetries:            *maxRetries,
		JobDeadlineS:          *jobDeadline,
		PerRequest:            *perRequest,
	})
	if err != nil {
		log.Fatalf("murakkabd: provisioning runtime pool: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *perRequest {
		log.Printf("murakkabd listening on %s (per-request baseline mode)", *addr)
	} else {
		log.Printf("murakkabd listening on %s (%d shards × %d VMs, %d jobs/shard)",
			*addr, *shards, *vms, *concurrency)
	}

	select {
	case err := <-errCh:
		// Listener died before any signal: nothing to drain.
		log.Fatalf("murakkabd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("murakkabd: shutdown signal received, draining")

	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("murakkabd: HTTP drain: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("murakkabd: listener: %v", err)
	}
	// Drain the runtime shards: queued and running jobs complete.
	server.Close()
	log.Printf("murakkabd: drained, exiting")
}
