// Command murakkabd serves the Murakkab runtime over HTTP — the AIWaaS
// surface from the paper's §5 discussion, run as a long-lived, sharded
// serving daemon: tenants hash to runtime shards, jobs are admitted
// asynchronously and multiplex each shard's warm serving engines. Shard
// memory stays bounded under retention: telemetry older than -retain
// simulated seconds is compacted into rollup buckets, and a shard whose
// retained series exceed -max-series-points is recycled (drained and
// replaced) without failing in-flight jobs. With -reconfig, running jobs'
// remaining stages are re-planned and re-bound at stage boundaries when a
// shard's fleet churns or its cluster manager rebalances (-rebalance).
// With -max-retries (and optionally -job-deadline), failed stages retry with
// capped exponential backoff on a re-planned binding instead of failing the
// job; -faults replays a seeded deterministic fault trace against each shard
// for chaos testing. With -slo, tenants carry SLO tiers (-slo-tenants,
// -slo-default) and each shard degrades gracefully under overload: above the
// high watermark (-slo-high/-slo-low) degradable tiers admit onto cheaper
// plans, and per-tenant queue bounds (-slo-queue-bound) and cost budgets
// (-slo-budget) shed the excess with HTTP 429 instead of queueing unboundedly.
// With -router, the daemon scales out horizontally: it runs -nodes identical
// in-process pools behind a consistent-hash router tier that maps each tenant
// onto a node, fans /v1/stats out across the cluster, and on node departure
// drains or reroutes that node's jobs instead of stranding them.
//
//	murakkabd -addr :8080 -shards 2 -concurrency 4 -vms 2 \
//	  -retain 3600 -max-series-points 1048576 -plan-workers 0 \
//	  -reconfig -rebalance 30 -max-retries 4 -job-deadline 1800 \
//	  -slo -slo-tenants "alice=gold,bob=bronze" -slo-queue-bound 8
//
//	curl localhost:8080/v1/library
//	curl localhost:8080/v1/stats
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "tenant": "alice",
//	  "description": "List objects shown/mentioned in the videos",
//	  "constraint": "MIN_COST", "min_quality": 0.95,
//	  "inputs": [{"name": "cats.mov", "kind": "video",
//	              "attrs": {"duration_s": 240, "scene_len_s": 30,
//	                        "frames_per_scene": 24}}]}'
//	curl localhost:8080/v1/jobs/job-00000001
//	curl -X DELETE localhost:8080/v1/jobs/job-00000001
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains in-flight
// HTTP requests, then drains the runtime shards (queued and running jobs
// complete) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/router"
)

// daemonFlags collects the tuning flags validateFlags checks (the listen
// address and durations are left to the flag package's own parsing).
type daemonFlags struct {
	retain          float64
	maxSeriesPoints int
	planWorkers     int
	rebalance       float64
	faults          float64
	maxRetries      int
	jobDeadline     float64

	slo           bool
	sloTenants    string
	sloDefault    string
	sloHigh       float64
	sloLow        float64
	sloQueueBound int
	sloBudget     float64

	perRequest bool
	router     bool
	nodes      int
}

// validateFlags rejects out-of-range tuning flags up front. Negative values
// are invalid, not "disabled": an operator typing -retain -1 almost certainly
// fat-fingered a window, and silently running without compaction (or without
// off-loop planning) would only surface as slow memory growth much later. It
// returns the parsed -slo-tenants mapping so main wires exactly what was
// validated.
func validateFlags(v daemonFlags) (map[string]string, error) {
	if v.retain < 0 {
		return nil, fmt.Errorf("-retain must be >= 0 (got %v); 0 selects the default window", v.retain)
	}
	if v.maxSeriesPoints < 0 {
		return nil, fmt.Errorf("-max-series-points must be >= 0 (got %d); 0 selects the default budget", v.maxSeriesPoints)
	}
	if v.planWorkers < 0 {
		return nil, fmt.Errorf("-plan-workers must be >= 0 (got %d); 0 selects GOMAXPROCS", v.planWorkers)
	}
	if v.rebalance < 0 {
		return nil, fmt.Errorf("-rebalance must be >= 0 (got %v); 0 disables the rebalancing loop", v.rebalance)
	}
	if v.faults < 0 {
		return nil, fmt.Errorf("-faults must be >= 0 (got %v); 0 disables fault injection", v.faults)
	}
	if v.maxRetries < 0 {
		return nil, fmt.Errorf("-max-retries must be >= 0 (got %d); 0 disables failure recovery", v.maxRetries)
	}
	if v.jobDeadline < 0 {
		return nil, fmt.Errorf("-job-deadline must be >= 0 (got %v); 0 disables the per-job deadline", v.jobDeadline)
	}
	if v.router && v.perRequest {
		// The router tier fronts shared-pool nodes; the per-request baseline
		// has no pool to shard over.
		return nil, fmt.Errorf("-router is incompatible with -per-request")
	}
	if v.nodes != 0 && !v.router {
		return nil, fmt.Errorf("-nodes requires -router")
	}
	if v.router && v.nodes < 0 {
		return nil, fmt.Errorf("-nodes must be >= 1 (got %d); 0 selects the default of 3", v.nodes)
	}
	if !v.slo {
		// An SLO sub-flag without -slo would be silently ignored; that is the
		// same fat-finger class as a negative window.
		switch {
		case v.sloTenants != "":
			return nil, fmt.Errorf("-slo-tenants requires -slo")
		case v.sloDefault != "":
			return nil, fmt.Errorf("-slo-default requires -slo")
		case v.sloHigh != 0 || v.sloLow != 0:
			return nil, fmt.Errorf("-slo-high/-slo-low require -slo")
		case v.sloQueueBound != 0:
			return nil, fmt.Errorf("-slo-queue-bound requires -slo")
		case v.sloBudget != 0:
			return nil, fmt.Errorf("-slo-budget requires -slo")
		}
		return nil, nil
	}
	if v.sloHigh < 0 || v.sloLow < 0 {
		return nil, fmt.Errorf("-slo-high/-slo-low must be >= 0 (got %v/%v); 0 selects the defaults", v.sloHigh, v.sloLow)
	}
	if v.sloQueueBound < 0 {
		return nil, fmt.Errorf("-slo-queue-bound must be >= 0 (got %d); 0 keeps the per-class bounds", v.sloQueueBound)
	}
	if v.sloBudget < 0 {
		return nil, fmt.Errorf("-slo-budget must be >= 0 (got %v); 0 keeps the per-class budgets", v.sloBudget)
	}
	tenants, err := parseTenantTiers(v.sloTenants)
	if err != nil {
		return nil, err
	}
	// The scheduler's own validation (defaults applied: built-in classes,
	// watermark band) is the authority on the assembled configuration.
	cfg := core.SLOConfig{
		TenantTiers:   tenants,
		DefaultClass:  v.sloDefault,
		HighWatermark: v.sloHigh,
		LowWatermark:  v.sloLow,
		QueueBound:    v.sloQueueBound,
		BudgetUSD:     v.sloBudget,
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("-slo: %w", err)
	}
	return tenants, nil
}

// parseTenantTiers parses the -slo-tenants mapping, "tenant=class" pairs
// separated by commas ("alice=gold,bob=bronze").
func parseTenantTiers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		tenant, class, ok := strings.Cut(ent, "=")
		tenant, class = strings.TrimSpace(tenant), strings.TrimSpace(class)
		if !ok || tenant == "" || class == "" {
			return nil, fmt.Errorf("-slo-tenants entry %q is not tenant=class", ent)
		}
		if _, dup := out[tenant]; dup {
			return nil, fmt.Errorf("-slo-tenants maps tenant %q twice", tenant)
		}
		out[tenant] = class
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 2, "runtime shards (tenants hash across them)")
	concurrency := flag.Int("concurrency", 4, "max concurrent jobs per shard")
	vms := flag.Int("vms", 2, "ND96amsr_A100_v4 VMs per shard")
	perRequest := flag.Bool("per-request", false,
		"baseline mode: provision a throwaway testbed per request instead of sharing runtimes")
	retain := flag.Float64("retain", 0,
		"per-shard telemetry retention window in simulated seconds: older history is "+
			"compacted into rollup buckets (0 = default 3600)")
	maxSeriesPoints := flag.Int("max-series-points", 0,
		"per-shard telemetry budget in series change points before the shard is recycled "+
			"(0 = default 1048576)")
	planWorkers := flag.Int("plan-workers", 0,
		"per-shard off-loop plan-search workers: admission's configuration search runs "+
			"in parallel against immutable snapshots and commits optimistically on the "+
			"shard loop (0 = default GOMAXPROCS)")
	reconfig := flag.Bool("reconfig", false,
		"enable mid-flight reconfiguration: when a shard's fleet churns or its cluster "+
			"manager rebalances, running jobs' remaining stages are re-planned and re-bound "+
			"at stage boundaries if the new plan beats the current one by a hysteresis margin")
	rebalance := flag.Float64("rebalance", 0,
		"per-shard rebalancing-loop period in simulated seconds (engine grow/shrink from "+
			"DAG lookahead while workflows are active; 0 disables)")
	faults := flag.Float64("faults", 0,
		"deterministic fault injection: total fault events per simulated second per shard, "+
			"split evenly across engine crashes, worker losses, stage stalls and transient "+
			"call errors (0 disables; intended for chaos testing, not production serving)")
	faultSeed := flag.Int64("fault-seed", 1,
		"seed for the per-shard fault traces and the recovery backoff jitter streams")
	maxRetries := flag.Int("max-retries", 0,
		"per-task attempt budget: failed stages retry with capped exponential backoff on a "+
			"re-planned binding until the budget is spent (0 disables failure recovery)")
	jobDeadline := flag.Float64("job-deadline", 0,
		"per-job deadline in simulated seconds: jobs still running past it fail with "+
			"deadline_exceeded (0 disables; setting it alone still enables recovery)")
	slo := flag.Bool("slo", false,
		"enable SLO tiers (gold/silver/bronze) and graceful overload degradation: above "+
			"the high watermark, degradable tiers admit onto cheaper plans and per-tenant "+
			"queue bounds shed the excess with HTTP 429 instead of queueing unboundedly")
	sloTenants := flag.String("slo-tenants", "",
		"tenant-to-tier mapping as comma-separated tenant=class pairs "+
			"(\"alice=gold,bob=bronze\"); unmapped tenants take -slo-default")
	sloDefault := flag.String("slo-default", "",
		"SLO class for unmapped tenants (default silver)")
	sloHigh := flag.Float64("slo-high", 0,
		"overload high watermark: admission pressure — (running + queued) jobs over the "+
			"shard concurrency bound — at which degraded admissions engage (0 = default 2.0)")
	sloLow := flag.Float64("slo-low", 0,
		"overload low watermark: pressure at or below which the controller disengages; "+
			"must stay below -slo-high, the gap is the hysteresis band (0 = default 1.0)")
	sloQueueBound := flag.Int("slo-queue-bound", 0,
		"flat per-tenant admission queue bound overriding every class's own; submissions "+
			"beyond it are shed with 429 shed_overload (0 keeps the per-class bounds)")
	sloBudget := flag.Float64("slo-budget", 0,
		"flat per-tenant planned-cost budget in USD overriding every class's own, windowed "+
			"by shard recycle; beyond it submissions get 429 budget_exhausted (0 keeps the "+
			"per-class budgets)")
	routerMode := flag.Bool("router", false,
		"cluster mode: run -nodes in-process murakkabd nodes behind a consistent-hash "+
			"router that maps tenants onto nodes, fans /v1/stats out across them, and "+
			"drains departing nodes without stranding jobs")
	nodes := flag.Int("nodes", 0,
		"node count for -router (0 = default 3); each node is a full shared pool "+
			"sized by -shards/-vms/-concurrency")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long to wait for in-flight HTTP requests on shutdown")
	flag.Parse()

	tenantTiers, err := validateFlags(daemonFlags{
		retain:          *retain,
		maxSeriesPoints: *maxSeriesPoints,
		planWorkers:     *planWorkers,
		rebalance:       *rebalance,
		faults:          *faults,
		maxRetries:      *maxRetries,
		jobDeadline:     *jobDeadline,
		slo:             *slo,
		sloTenants:      *sloTenants,
		sloDefault:      *sloDefault,
		sloHigh:         *sloHigh,
		sloLow:          *sloLow,
		sloQueueBound:   *sloQueueBound,
		sloBudget:       *sloBudget,
		perRequest:      *perRequest,
		router:          *routerMode,
		nodes:           *nodes,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "murakkabd: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	poolCfg := api.PoolConfig{
		Shards:                *shards,
		VMsPerShard:           *vms,
		MaxConcurrentPerShard: *concurrency,
		RetainSimSeconds:      *retain,
		MaxSeriesPoints:       *maxSeriesPoints,
		PlanWorkers:           *planWorkers,
		Reconfig:              *reconfig,
		RebalancePeriodS:      *rebalance,
		FaultRate:             *faults,
		FaultSeed:             *faultSeed,
		MaxRetries:            *maxRetries,
		JobDeadlineS:          *jobDeadline,
		PerRequest:            *perRequest,
		SLO:                   *slo,
		SLOTenantTiers:        tenantTiers,
		SLODefaultClass:       *sloDefault,
		SLOHighWatermark:      *sloHigh,
		SLOLowWatermark:       *sloLow,
		SLOQueueBound:         *sloQueueBound,
		SLOBudgetUSD:          *sloBudget,
	}

	// The serving runtime is either a single shared pool or, with -router, a
	// consistent-hash router tier over -nodes identical in-process pools.
	var (
		handler      http.Handler
		closeRuntime func()
		nodeCount    int
	)
	if *routerMode {
		nodeCount = *nodes
		if nodeCount == 0 {
			nodeCount = 3
		}
		rt, err := router.New(router.Config{Nodes: nodeCount, Node: poolCfg})
		if err != nil {
			log.Fatalf("murakkabd: provisioning router tier: %v", err)
		}
		handler = rt
		closeRuntime = rt.Close
		// Health-check the nodes on a real-time cadence so an unresponsive
		// node is routed around rather than timing out every request.
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			t := time.NewTicker(5 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					rt.HeartbeatOnce()
				case <-hbStop:
					return
				}
			}
		}()
	} else {
		server, err := api.NewServer(poolCfg)
		if err != nil {
			log.Fatalf("murakkabd: provisioning runtime pool: %v", err)
		}
		handler = server
		closeRuntime = server.Close
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	switch {
	case *routerMode:
		log.Printf("murakkabd listening on %s (router mode: %d nodes × %d shards × %d VMs, %d jobs/shard)",
			*addr, nodeCount, *shards, *vms, *concurrency)
	case *perRequest:
		log.Printf("murakkabd listening on %s (per-request baseline mode)", *addr)
	default:
		log.Printf("murakkabd listening on %s (%d shards × %d VMs, %d jobs/shard)",
			*addr, *shards, *vms, *concurrency)
	}

	select {
	case err := <-errCh:
		// Listener died before any signal: nothing to drain.
		log.Fatalf("murakkabd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("murakkabd: shutdown signal received, draining")

	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("murakkabd: HTTP drain: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("murakkabd: listener: %v", err)
	}
	// Drain the runtime: queued and running jobs complete (in router mode,
	// every node's pool drains).
	closeRuntime()
	log.Printf("murakkabd: drained, exiting")
}
