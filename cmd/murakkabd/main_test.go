package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name        string
		flags       daemonFlags
		wantErr     string
		wantTenants map[string]string
	}{
		{name: "defaults ok"},
		{name: "explicit ok", flags: daemonFlags{retain: 3600, maxSeriesPoints: 1 << 20, planWorkers: 4, rebalance: 30}},
		{name: "faults ok", flags: daemonFlags{faults: 0.1, maxRetries: 4, jobDeadline: 1800}},
		{name: "negative retain", flags: daemonFlags{retain: -1}, wantErr: "-retain"},
		{name: "negative max-series-points", flags: daemonFlags{maxSeriesPoints: -5}, wantErr: "-max-series-points"},
		{name: "negative plan-workers", flags: daemonFlags{planWorkers: -1}, wantErr: "-plan-workers"},
		{name: "negative rebalance", flags: daemonFlags{rebalance: -0.5}, wantErr: "-rebalance"},
		{name: "negative faults", flags: daemonFlags{faults: -0.1}, wantErr: "-faults"},
		{name: "negative max-retries", flags: daemonFlags{maxRetries: -1}, wantErr: "-max-retries"},
		{name: "negative job-deadline", flags: daemonFlags{jobDeadline: -30}, wantErr: "-job-deadline"},
		{name: "router ok", flags: daemonFlags{router: true}},
		{name: "router nodes ok", flags: daemonFlags{router: true, nodes: 5}},
		{name: "nodes without router", flags: daemonFlags{nodes: 3}, wantErr: "-nodes requires -router"},
		{name: "router with per-request", flags: daemonFlags{router: true, perRequest: true}, wantErr: "incompatible"},
		{name: "negative nodes", flags: daemonFlags{router: true, nodes: -1}, wantErr: "-nodes"},

		{name: "slo ok", flags: daemonFlags{slo: true}},
		{name: "slo full ok",
			flags: daemonFlags{slo: true, sloTenants: "alice=gold, bob=bronze", sloDefault: "silver",
				sloHigh: 2.5, sloLow: 1.25, sloQueueBound: 8, sloBudget: 32},
			wantTenants: map[string]string{"alice": "gold", "bob": "bronze"}},
		{name: "slo tenants without slo", flags: daemonFlags{sloTenants: "alice=gold"}, wantErr: "requires -slo"},
		{name: "slo default without slo", flags: daemonFlags{sloDefault: "gold"}, wantErr: "requires -slo"},
		{name: "slo watermark without slo", flags: daemonFlags{sloHigh: 3}, wantErr: "require -slo"},
		{name: "slo queue bound without slo", flags: daemonFlags{sloQueueBound: 4}, wantErr: "requires -slo"},
		{name: "slo budget without slo", flags: daemonFlags{sloBudget: 10}, wantErr: "requires -slo"},
		{name: "negative watermark", flags: daemonFlags{slo: true, sloLow: -1}, wantErr: "-slo-high/-slo-low"},
		{name: "inverted watermarks", flags: daemonFlags{slo: true, sloHigh: 1, sloLow: 2}, wantErr: "watermark"},
		{name: "high below default low", flags: daemonFlags{slo: true, sloHigh: 0.5}, wantErr: "watermark"},
		{name: "negative queue bound", flags: daemonFlags{slo: true, sloQueueBound: -1}, wantErr: "-slo-queue-bound"},
		{name: "negative budget", flags: daemonFlags{slo: true, sloBudget: -0.5}, wantErr: "-slo-budget"},
		{name: "malformed tenants", flags: daemonFlags{slo: true, sloTenants: "alice"}, wantErr: "tenant=class"},
		{name: "empty tenant class", flags: daemonFlags{slo: true, sloTenants: "alice="}, wantErr: "tenant=class"},
		{name: "duplicate tenant", flags: daemonFlags{slo: true, sloTenants: "a=gold,a=bronze"}, wantErr: "twice"},
		{name: "unknown tenant class", flags: daemonFlags{slo: true, sloTenants: "alice=platinum"}, wantErr: "platinum"},
		{name: "unknown default class", flags: daemonFlags{slo: true, sloDefault: "platinum"}, wantErr: "platinum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tenants, err := validateFlags(tc.flags)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags: unexpected error %v", err)
				}
				if tc.wantTenants != nil && !reflect.DeepEqual(tenants, tc.wantTenants) {
					t.Fatalf("validateFlags tenants = %v, want %v", tenants, tc.wantTenants)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags: want error naming %s, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags error %q does not name %s", err, tc.wantErr)
			}
		})
	}
}
