package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name            string
		retain          float64
		maxSeriesPoints int
		planWorkers     int
		rebalance       float64
		faults          float64
		maxRetries      int
		jobDeadline     float64
		wantErr         string
	}{
		{name: "defaults ok"},
		{name: "explicit ok", retain: 3600, maxSeriesPoints: 1 << 20, planWorkers: 4, rebalance: 30},
		{name: "faults ok", faults: 0.1, maxRetries: 4, jobDeadline: 1800},
		{name: "negative retain", retain: -1, wantErr: "-retain"},
		{name: "negative max-series-points", maxSeriesPoints: -5, wantErr: "-max-series-points"},
		{name: "negative plan-workers", planWorkers: -1, wantErr: "-plan-workers"},
		{name: "negative rebalance", rebalance: -0.5, wantErr: "-rebalance"},
		{name: "negative faults", faults: -0.1, wantErr: "-faults"},
		{name: "negative max-retries", maxRetries: -1, wantErr: "-max-retries"},
		{name: "negative job-deadline", jobDeadline: -30, wantErr: "-job-deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.retain, tc.maxSeriesPoints, tc.planWorkers, tc.rebalance,
				tc.faults, tc.maxRetries, tc.jobDeadline)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags: want error naming %s, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags error %q does not name %s", err, tc.wantErr)
			}
		})
	}
}
