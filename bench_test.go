// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation, plus the §3.3 overhead claim and the Figure 2
// multi-tenancy/rebalancing ablations. Each benchmark regenerates its
// artifact end to end (fresh simulated cluster, planner, optimizer,
// execution) and reports the paper's headline metrics as custom benchmark
// outputs, so `go test -bench=. -benchmem` doubles as the reproduction run.
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// BenchmarkFigure3 regenerates the four execution traces of Figure 3 and
// reports the headline speedup (paper: ~3.4×).
func BenchmarkFigure3(b *testing.B) {
	var last *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Speedup(), "speedup_x")
	b.ReportMetric(last.Rows[0].Report.MakespanS, "baseline_s")
	b.ReportMetric(last.Rows[2].Report.MakespanS, "murakkab_cpu_s")
}

// BenchmarkTable2 regenerates Table 2 (energy and time per STT config) and
// reports the energy-efficiency gain (paper: ~4.5×).
func BenchmarkTable2(b *testing.B) {
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.EnergyEfficiencyGain, "energy_gain_x")
	for _, row := range last.Rows {
		switch row.Config {
		case "Baseline":
			b.ReportMetric(row.EnergyWh, "baseline_Wh")
		case "Murakkab CPU":
			b.ReportMetric(row.EnergyWh, "murakkab_cpu_Wh")
		}
	}
}

// BenchmarkTable1 regenerates the Table 1 lever ablations and reports the
// number of direction mismatches against the paper (target: 0).
func BenchmarkTable1(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(len(last.Check())), "mismatches")
}

// BenchmarkPlannerOverhead measures the §3.3(b) claim: DAG creation takes
// less than 1% of workflow execution time.
func BenchmarkPlannerOverhead(b *testing.B) {
	var last *experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.PlanningLatencyFrac, "planning_pct")
	b.ReportMetric(float64(last.ProfilesBuilt), "profiles")
}

// BenchmarkMultiTenant measures Figure 2's multiplexing gain from
// co-scheduling independent workflows.
func BenchmarkMultiTenant(b *testing.B) {
	var last *experiments.MultiTenantResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiTenant()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MultiplexGain, "multiplex_gain_x")
}

// BenchmarkRebalanceAblation measures the value of workflow-aware cluster
// management (DAG-driven engine scaling).
func BenchmarkRebalanceAblation(b *testing.B) {
	var last *experiments.RebalanceAblationResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RebalanceAblation()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.SpeedupFromLookahead, "lookahead_speedup_x")
}

// BenchmarkQualityCheckpoints measures the §5 quality-control sweep:
// end-to-end correctness with greedy checkpoint placement.
func BenchmarkQualityCheckpoints(b *testing.B) {
	var last *experiments.QualityResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.QualityExperiment(3)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BaselineCorrectness, "base_correct")
	b.ReportMetric(last.Rows[len(last.Rows)-1].Correctness, "checked_correct")
}

// BenchmarkLoadSweep measures the AIWaaS operating curve at a moderate load.
func BenchmarkLoadSweep(b *testing.B) {
	var last *experiments.LoadSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.LoadSweep([]float64{0.02}, 400, 11)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Points[0].MeanLatencyS, "mean_latency_s")
	b.ReportMetric(last.Points[0].MeanQueueS, "mean_queue_s")
}

// BenchmarkLoadSweepHeavy measures the AIWaaS pipeline at production shape:
// ~420 Poisson jobs over a 2000 s horizon at 0.2 jobs/s. This is the
// regression guard for the O(events) telemetry/report path — per-job report
// finalization reads the cluster's running aggregates, plans and
// decompositions are memoized across the sweep's structurally-identical
// jobs, and profiling is shared across testbeds, so cost stays near-linear
// in simulated events instead of quadratic.
func BenchmarkLoadSweepHeavy(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.LoadSweepResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.LoadSweep([]float64{0.2}, 2000, 11)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	pt := last.Points[0]
	b.ReportMetric(float64(pt.Jobs), "jobs")
	b.ReportMetric(float64(pt.Completed), "completed")
	b.ReportMetric(pt.MeanLatencyS, "mean_latency_s")
	b.ReportMetric(pt.MeanQueueS, "mean_queue_s")
}

// BenchmarkServing replays the mixed-tenant Poisson trace through the HTTP
// surface against both serving architectures and reports wall-clock
// throughput, tail latency and the multiplexing gain of the shared runtime
// pool over per-request testbeds (target: ≥ 2×).
func BenchmarkServing(b *testing.B) {
	// Wall-clock throughput on a shared host is noisy one-sidedly (slowdowns
	// only), so report the best iteration — the sustained capability of each
	// architecture — rather than whichever ran last.
	var best *serving.Result
	for i := 0; i < b.N; i++ {
		res, err := serving.Run(serving.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if best == nil || res.ThroughputGainX > best.ThroughputGainX {
			best = res
		}
	}
	b.ReportMetric(best.ThroughputGainX, "serving_gain_x")
	b.ReportMetric(best.Shared.Throughput, "shared_jobs_per_s")
	b.ReportMetric(best.PerRequest.Throughput, "perreq_jobs_per_s")
	b.ReportMetric(best.Shared.P50LatencyMs, "shared_p50_ms")
	b.ReportMetric(best.Shared.P95LatencyMs, "shared_p95_ms")
	b.ReportMetric(float64(best.Shared.Completed), "jobs")
}

// BenchmarkCluster measures horizontal scale-out through the router tier:
// the identical waited trace replayed against 1-node and 3-node clusters,
// with throughput in simulated time (completed jobs over the slowest node's
// sim makespan) so the scaling factor is deterministic and host-independent.
// The churn arm — async load across a heartbeat, a replication-warmed join
// and a drained leave — must strand nothing.
func BenchmarkCluster(b *testing.B) {
	var last *serving.ClusterResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := serving.RunCluster(serving.DefaultClusterOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last.ScalingX < 1.7 {
		b.Fatalf("routed throughput scaling %.2fx < 1.7x at 3 nodes: %+v", last.ScalingX, last)
	}
	if last.Churn.Stranded != 0 {
		b.Fatalf("%d jobs stranded across join/leave churn: %+v", last.Churn.Stranded, last.Churn)
	}
	b.ReportMetric(last.ScalingX, "cluster_scaling_x")
	b.ReportMetric(float64(last.Churn.Stranded), "stranded_jobs")
	b.ReportMetric(last.OneNode.Throughput, "jobs_per_sim_s_1n")
	b.ReportMetric(last.ThreeNode.Throughput, "jobs_per_sim_s_3n")
	b.ReportMetric(float64(last.Churn.ReroutedJobs), "rerouted_jobs")
	b.ReportMetric(float64(last.Churn.NodeDownJobs), "node_down_jobs")
	b.ReportMetric(float64(last.Churn.TenantsMoved), "tenants_moved")
}

// BenchmarkEngine measures the raw event core: a steady-state
// schedule/cancel/fire mix at several pending-queue depths, on both the
// timer wheel (default) and the reference binary heap. Each op is one
// fired event; every firing schedules its replacement and every fourth
// also cancels a random pending event and replaces it, so the queue holds
// `depth` live events throughout and ns/op isolates queue maintenance —
// the cost PR 7's allocation work left on the hot loop.
func BenchmarkEngine(b *testing.B) {
	for _, arm := range []struct {
		name string
		heap bool
	}{{"wheel", false}, {"heap", true}} {
		for _, depth := range []int{64, 1024, 16384} {
			b.Run(fmt.Sprintf("%s/depth=%d", arm.name, depth), func(b *testing.B) {
				rng := rand.New(rand.NewSource(42))
				e := sim.NewEngine()
				if arm.heap {
					e.DisableEventWheel()
				}
				e.Reserve(depth + 1)
				ring := make([]*sim.Event, depth)
				fired := 0
				var fire func()
				fire = func() {
					ring[fired%depth] = e.After(sim.Duration(rng.Float64()*2), fire)
					fired++
					if fired%4 == 0 {
						// Ring slots can hold already-fired events; Cancel
						// is then a no-op returning false, and only a real
						// cancel schedules the compensating replacement
						// that keeps the live count at depth.
						if ev := ring[rng.Intn(depth)]; ev.Cancel() {
							ring[rng.Intn(depth)] = e.After(sim.Duration(rng.Float64()*2), fire)
						}
					}
				}
				for i := range ring {
					ring[i] = e.After(sim.Duration(rng.Float64()*2), fire)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !e.Step() {
						b.Fatal("event queue ran dry")
					}
				}
			})
		}
	}
}

// BenchmarkAdmission replays a bursty multi-tenant submission storm against
// one runtime shard under both admission architectures — plan search
// serialized inline on the shard loop vs. the off-loop worker pool with
// optimistic snapshot commit — and reports the plans/sec gain, submit-to-
// admission latency percentiles and the singleflight/conflict counters. On a
// host with ≥ 4 cores the parallel arm must hold a real speedup and conflict
// re-plans must stay rare; both are CI gates.
func BenchmarkAdmission(b *testing.B) {
	b.ReportAllocs()
	var best *serving.AdmissionComparison
	for i := 0; i < b.N; i++ {
		res, err := serving.RunAdmission(serving.DefaultAdmissionOptions())
		if err != nil {
			b.Fatal(err)
		}
		if res.Serial.SubmitErrors != 0 || res.Parallel.SubmitErrors != 0 {
			b.Fatalf("submission errors: serial %d parallel %d",
				res.Serial.SubmitErrors, res.Parallel.SubmitErrors)
		}
		if best == nil || res.SpeedupX > best.SpeedupX {
			best = res
		}
	}
	b.ReportMetric(best.SpeedupX, "admission_gain_x")
	b.ReportMetric(best.Parallel.PlansPerSec, "plans_per_s")
	b.ReportMetric(best.Serial.PlansPerSec, "serial_plans_per_s")
	b.ReportMetric(best.Parallel.SubmitP50Ms, "submit_p50_ms")
	b.ReportMetric(best.Parallel.SubmitP95Ms, "submit_p95_ms")
	b.ReportMetric(float64(best.Parallel.SingleflightHits), "singleflight_hits")
	b.ReportMetric(100*best.Parallel.ConflictFrac, "conflict_pct")
	if best.Parallel.ConflictFrac >= 0.10 {
		b.Errorf("conflict re-plans %.1f%% of admissions, want < 10%%", 100*best.Parallel.ConflictFrac)
	}
	if runtime.NumCPU() >= 4 && best.SpeedupX < 1.4 {
		b.Errorf("off-loop admission speedup %.2fx on %d cores, want >= 1.4x (target 2x)",
			best.SpeedupX, runtime.NumCPU())
	}
}

// BenchmarkReconfig replays the same video-heavy burst and the same
// fleet-churn trace (VMs arriving mid-run) against one runtime shard with
// mid-flight reconfiguration on and off. Both arms run entirely in simulated
// time, so the completion/energy gains are deterministic and
// machine-independent — the CI benchgate requires the completion gain.
func BenchmarkReconfig(b *testing.B) {
	b.ReportAllocs()
	var last *serving.ReconfigComparison
	for i := 0; i < b.N; i++ {
		res, err := serving.RunReconfig(serving.DefaultReconfigOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.CompletionGainX, "reconfig_gain_x")
	b.ReportMetric(last.EnergyGainX, "reconfig_energy_gain_x")
	b.ReportMetric(last.Off.MeanCompletionS, "off_mean_completion_s")
	b.ReportMetric(last.On.MeanCompletionS, "on_mean_completion_s")
	b.ReportMetric(float64(last.On.Reconfigs), "reconfig_evals")
	b.ReportMetric(float64(last.On.ReconfigWins), "reconfig_wins")
	b.ReportMetric(float64(last.On.ReconfigSkips), "reconfig_skips")
	if last.CompletionGainX < 1.2 {
		b.Errorf("reconfiguration completion gain %.3fx on the replayed churn trace, want >= 1.2x",
			last.CompletionGainX)
	}
}

// BenchmarkFaults replays the same job burst and the same seeded fault trace
// (engine crashes, worker losses, stage stalls, transient call errors)
// against one runtime shard with failure recovery on and off, and reports
// goodput: jobs completed successfully within the measurement horizon. Both
// arms run entirely in simulated time, so the gain is deterministic and the
// CI benchgate requires it; the zero-stranded contract is checked inside
// RunFaults (it errors on any non-terminal job after the drain).
func BenchmarkFaults(b *testing.B) {
	b.ReportAllocs()
	var last *serving.FaultsComparison
	for i := 0; i < b.N; i++ {
		res, err := serving.RunFaults(serving.DefaultFaultsOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.GoodputGainX, "faults_goodput_gain_x")
	b.ReportMetric(float64(last.Off.Goodput), "off_goodput_jobs")
	b.ReportMetric(float64(last.On.Goodput), "on_goodput_jobs")
	b.ReportMetric(float64(last.On.FaultsInjected), "faults_injected")
	b.ReportMetric(float64(last.On.TaskRetries), "task_retries")
	b.ReportMetric(float64(last.On.BreakerTrips), "breaker_trips")
	b.ReportMetric(float64(last.Off.Stranded+last.On.Stranded), "stranded_jobs")
	if last.GoodputGainX < 1.3 {
		b.Errorf("recovery goodput gain %.3fx on the replayed fault trace, want >= 1.3x",
			last.GoodputGainX)
	}
	if last.Off.Stranded != 0 || last.On.Stranded != 0 {
		b.Errorf("stranded jobs after drain: off=%d on=%d, want 0",
			last.Off.Stranded, last.On.Stranded)
	}
}

// BenchmarkOverload replays the same seeded 4×-overloaded burst against one
// runtime shard with plain FIFO admission and again with SLO tiers on
// (per-tenant queue bounds, admission-time degradation, typed shedding), and
// reports goodput: jobs completed within their tier's latency target. Both
// arms run entirely in simulated time, so the gain is deterministic and the
// CI benchgate requires it; bounded queue depth and the zero-stranded
// contract are checked inside RunOverload (it errors on either violation).
func BenchmarkOverload(b *testing.B) {
	b.ReportAllocs()
	var last *serving.OverloadComparison
	for i := 0; i < b.N; i++ {
		res, err := serving.RunOverload(serving.DefaultOverloadOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.GoodputGainX, "overload_goodput_gain_x")
	b.ReportMetric(float64(last.FIFO.Goodput), "fifo_goodput_jobs")
	b.ReportMetric(float64(last.Tiered.Goodput), "tiered_goodput_jobs")
	b.ReportMetric(float64(last.Tiered.Shed), "shed_jobs")
	b.ReportMetric(float64(last.Tiered.DegradedAdmits), "degraded_admits")
	b.ReportMetric(float64(last.Tiered.PeakQueueDepth), "peak_queue_depth")
	b.ReportMetric(float64(last.FIFO.Stranded+last.Tiered.Stranded), "stranded_jobs")
	if last.GoodputGainX < 1.2 {
		b.Errorf("tiered goodput gain %.3fx on the replayed overload burst, want >= 1.2x",
			last.GoodputGainX)
	}
	if last.FIFO.Stranded != 0 || last.Tiered.Stranded != 0 {
		b.Errorf("stranded jobs after drain: fifo=%d tiered=%d, want 0",
			last.FIFO.Stranded, last.Tiered.Stranded)
	}
}

// BenchmarkServingRetention replays the mixed-tenant trace against the
// shared pool with a retention window ~1/50th of the served simulated
// history, and reports the bounded-memory claim: retained telemetry
// points/bytes plateau (points_peak ≈ points_final, a small multiple of one
// retention window) while the unbounded baseline's footprint grows with
// history (contained_x), at no throughput cost versus BenchmarkServing's
// shared arm (jobs_per_s).
func BenchmarkServingRetention(b *testing.B) {
	b.ReportAllocs()
	var best *serving.RetentionResult
	for i := 0; i < b.N; i++ {
		res, err := serving.RunRetention(serving.DefaultRetentionOptions())
		if err != nil {
			b.Fatal(err)
		}
		if best == nil || res.Throughput > best.Throughput {
			best = res
		}
	}
	b.ReportMetric(float64(best.PeakPoints), "points_peak")
	b.ReportMetric(float64(best.FinalPoints), "points_final")
	b.ReportMetric(float64(best.PeakBytes), "bytes_peak")
	b.ReportMetric(float64(best.UnboundedPeakPoints), "unbounded_points_peak")
	b.ReportMetric(best.GrowthContainedX, "contained_x")
	b.ReportMetric(best.HistoryOverRetainX, "history_x_retention")
	b.ReportMetric(float64(best.CompactedPoints), "compacted_points")
	b.ReportMetric(float64(best.Recycles), "recycles")
	b.ReportMetric(best.Throughput, "jobs_per_s")
	b.ReportMetric(float64(best.Completed), "jobs")
}

// BenchmarkMultiCloud measures the §5 multi-platform placement comparison.
func BenchmarkMultiCloud(b *testing.B) {
	var last *experiments.MultiCloudResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiCloud(experiments.DefaultCloudOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(len(last.Rows)), "rows")
}

// BenchmarkBaselineRun measures one imperative (Listing 1) execution.
func BenchmarkBaselineRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBaseline(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMurakkabRun measures one declarative (Listing 2) execution under
// each constraint.
func BenchmarkMurakkabRun(b *testing.B) {
	for _, c := range []workflow.Constraint{
		workflow.MinCost, workflow.MinLatency, workflow.MinPower, workflow.MaxQuality,
	} {
		b.Run(c.String(), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				rep, _, err := experiments.RunMurakkabFree(c)
				if err != nil {
					b.Fatal(err)
				}
				makespan = rep.MakespanS
			}
			b.ReportMetric(makespan, "makespan_s")
		})
	}
}
