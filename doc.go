// Package repro is a from-scratch Go reproduction of "Towards
// Resource-Efficient Compound AI Systems" (HotOS 2025): the Murakkab
// declarative workflow programming model and adaptive runtime, together with
// every substrate its evaluation depends on, implemented over a
// deterministic discrete-event simulation of the paper's GPU/CPU testbed.
//
// The root package holds only the benchmark harness (bench_test.go); the
// implementation lives under internal/ and the runnable entry points under
// cmd/ and examples/. README.md documents the bench harness and the
// performance architecture.
//
// # Performance architecture
//
// The serving pipeline is engineered so simulation-to-report cost is
// O(events log n), never quadratic in simulated events, mirroring the
// paper's §3.3 amortization claims:
//
//   - telemetry.StepSeries carries a cumulative-integral index, so energy
//     and utilization window queries (Integral/Mean) are O(log n) instead of
//     full scans, and SumSeries/MeanSeries merge change points with a k-way
//     heap rather than per-point binary searches.
//
//   - internal/cluster maintains cluster-wide GPU/CPU power and utilization
//     aggregates incrementally — O(1) at each device sample — so
//     report.Finalize and GPUEnergyJoules read running aggregates instead of
//     re-merging every per-device series per execution.
//
//   - agents.SharedProfiles memoizes library profiling behind a
//     content-keyed store with copy-on-write views (§3.3(a): "profiling is
//     amortized over the lifetime of all the workflows"); each testbed and
//     load point reuses the first profiling pass.
//
//   - the runtime memoizes planner decompositions and optimizer plans,
//     keyed by job/DAG content, constraint, quality floor, pins and cluster
//     capacity class (§3.3(b,c)); structurally-identical jobs in a load
//     sweep plan once, and any capacity or profile change invalidates by
//     changing the key.
//
// BenchmarkLoadSweepHeavy (~420 jobs over a 2000 s horizon) guards the
// asymptotics; the per-figure benchmarks pin the paper metrics, which are
// bit-stable across these optimizations.
//
// # Serving architecture
//
// The §5 AIWaaS surface runs as a long-lived, sharded daemon
// (cmd/murakkabd): core.Runtime is the executor and core.Scheduler the
// admission layer with first-class job handles (submit → JobID, status,
// result, cancel); sim.Loop pumps each shard's event queue on a dedicated
// goroutine while HTTP handlers post submissions into it; api.Pool shards
// tenants across long-lived runtimes so concurrent jobs multiplex warm
// serving engines and generation-checked plan/decomposition/tool-call
// caches. BenchmarkServing replays a mixed-tenant Poisson trace through the
// HTTP surface and reports ≥ 2× the throughput of the per-request-testbed
// baseline (serving_gain_x), with p50/p95 latency.
//
// Admission itself is pipelined off the shard loop: the configuration
// search (decompose + optimizer enumerate/prune/score) runs on a
// plan-search worker pool (murakkabd -plan-workers, default GOMAXPROCS)
// against immutable generation-stamped cluster snapshots, deduped through a
// singleflight table, and commits optimistically back on the loop — the
// commit validates the capacity-class / profile / library generations and
// re-plans inline only on conflict, so plans are bit-identical to inline
// planning while bursts search in parallel. sim.Loop holds keep a draining
// shard alive until in-flight searches land. BenchmarkAdmission replays a
// bursty multi-tenant mix against both admission architectures and reports
// plans/sec, admission_gain_x, submit p50/p95 and conflict_pct.
//
// # Telemetry retention
//
// Shard memory is bounded by tiered retention instead of growing with
// served history: telemetry.StepSeries.CompactBefore drops change points
// behind a watermark while keeping the cumulative-integral index anchored,
// so retained-window Integral/Mean/Max stay bit-identical
// (property-tested); telemetry.RetainedSeries collapses compacted epochs
// into exact-integral rollup buckets on the cluster-wide aggregates;
// cluster.AdvanceEpoch compacts every per-device series and aggregate
// coherently; report.Finalize returns a typed WindowCompactedError for
// windows older than the watermark. The serving pool drives compaction
// from a sim.Loop tick, clamped to the oldest running job's start, and
// recycles a shard (drain → rebuild → swap; in-flight jobs complete) when
// its retained points exceed the configured budget (murakkabd -retain /
// -max-series-points). BenchmarkServingRetention shows the footprint
// plateau across ≥ 10× the retention window of served history
// (contained_x vs the unbounded baseline).
//
// # Runtime reconfiguration
//
// The paper's runtime-adaptation claim (§3.2) is implemented as mid-flight
// re-planning at stage boundaries: core.Execution runs as resumable
// per-stage segments with stage-local decision bindings and an explicit
// remaining-DAG view; a reconfiguration controller on the scheduler
// (core.Scheduler.EnableReconfig, murakkabd -reconfig) re-runs the
// optimizer over the remaining stages of running jobs whenever the plan
// environment moves — cluster.CapacityGen (fleet churn), the
// profile-store/library generations, or a clustermgr rebalance pass — and
// adopts the new plan only if it beats the current decisions re-scored over
// the same remaining DAG by a hysteresis margin. Completed stages stay
// pinned (paper integrals untouched), capabilities with tasks in flight
// keep their binding (mid-stage migration is rejected by design), and with
// off-loop plan search enabled the re-plan rides the same worker pool and
// optimistic generation-validated commit as admission. With the controller
// disabled, behavior is bit-identical to the pre-reconfiguration runtime.
// BenchmarkReconfig replays a bursty mix plus a deterministic fleet-churn
// trace (workload.ChurnTrace) through both arms entirely in simulated time
// and gates the completion/energy gains in CI.
//
// # Overload and SLO tiers
//
// Under sustained overload the daemon degrades gracefully instead of
// queueing unboundedly (murakkabd -slo): tenants carry SLO classes
// (core.SLOClass — latency target, cost budget, quality floor, queue
// bound), and a watermark-hysteresis overload controller on the scheduler
// (core.Scheduler.EnableSLO) applies a three-rung ladder as admission
// pressure grows — admit normally below the high watermark; above it,
// admit degradable tiers onto cheaper quality-cascade plans (floor- and
// degrade-latency-bounded) while running work re-plans via the
// reconfiguration controller; shed submissions beyond a tenant's queue
// bound or cost budget synchronously with typed errors (shed_overload,
// budget_exhausted → HTTP 429), so nothing strands. /v1/stats exposes
// per-tenant attainment and shed/degrade counters, folded monotonically
// across shard recycles. With -slo off every path is untouched — a
// differential test proves bit-identical paper metrics — and
// BenchmarkOverload gates tiered-vs-FIFO goodput (≥ 1.2× at 4× overload),
// bounded queue depth and zero stranded jobs in CI.
//
// # Horizontal scale-out
//
// Beyond one machine, murakkabd -router -nodes N serves a cluster of N
// identical in-process nodes behind a consistent-hash router tier
// (internal/router): tenants hash onto a ring of seeded virtual nodes
// (placement is a pure function of tenant, seed and membership —
// property-tested for balanced spread and ~1/N disruption on churn), job
// IDs route through a registry, /v1/stats fans out and merges under the
// pool's monotonic-fold discipline, and heartbeats route around unhealthy
// nodes. A joining node warms from the content-keyed profile store via
// generation deltas (zero rebuilds); a leaving node drains, re-submits
// still-queued jobs to survivors through the ring, and fails what runs past
// the drain deadline with typed node_down — nothing strands. With -router
// off the router package is never touched and single-node wire behavior is
// byte-identical. serving.RunCluster measures routed throughput in
// simulated time (completed jobs over the slowest node's makespan), so
// BenchmarkCluster's ≥ 1.7× scaling gate at 3 nodes holds on any host.
package repro
