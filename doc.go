// Package repro is a from-scratch Go reproduction of "Towards
// Resource-Efficient Compound AI Systems" (HotOS 2025): the Murakkab
// declarative workflow programming model and adaptive runtime, together with
// every substrate its evaluation depends on, implemented over a
// deterministic discrete-event simulation of the paper's GPU/CPU testbed.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The root package holds only
// the benchmark harness (bench_test.go); the implementation lives under
// internal/ and the runnable entry points under cmd/ and examples/.
package repro
