// Document question answering: the planner's third built-in template.
// Documents are embedded (fan-out), inserted into the vector database, and a
// retrieval-augmented answer is generated — the tail of the paper's §4
// pipeline (embeddings → VectorDB → question/answering) as its own workflow.
//
// The example runs the same job under MAX_QUALITY with execution-path
// replication (Table 1's "Execution Paths" lever) and shows the quality/cost
// movement.
//
//	go run ./examples/docqa
package main

import (
	"fmt"
	"log"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func docJob(c workflow.Constraint) workflow.Job {
	return workflow.Job{
		Description: "Answer questions about the research papers",
		Inputs: []workflow.Input{
			{Name: "murakkab.pdf", Kind: workflow.InputDoc, Attrs: map[string]float64{"tokens": 1400}},
			{Name: "quicksand.pdf", Kind: workflow.InputDoc, Attrs: map[string]float64{"tokens": 1100}},
			{Name: "paragon.pdf", Kind: workflow.InputDoc, Attrs: map[string]float64{"tokens": 900}},
			{Name: "sky.pdf", Kind: workflow.InputDoc, Attrs: map[string]float64{"tokens": 700}},
		},
		Constraint: c,
	}
}

func run(c workflow.Constraint, maxPaths int) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := rt.Submit(docJob(c), core.SubmitOptions{RelaxFloor: true, MaxPaths: maxPaths})
	if err != nil {
		log.Fatal(err)
	}
	se.Run()
	if ex.Err() != nil {
		log.Fatal(ex.Err())
	}
	rep := ex.Report()
	fmt.Printf("== %s (max paths %d) ==\n%s\n", c, maxPaths, rep.String())
	qa := ex.Plan().Decisions[string(agents.CapQA)]
	fmt.Printf("  answerer: %s @ %s paths=%d\n", qa.Implementation, qa.Config, qa.ExecutionPaths)
	fmt.Print(rep.Timeline(64))
	fmt.Println()
}

func main() {
	// The declarative job is identical; only the constraint changes.
	run(workflow.MinCost, 1)
	run(workflow.MaxQuality, 4)
}
