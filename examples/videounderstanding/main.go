// Video Understanding, both ways: the paper's Listing 1 (imperative, rigid
// bindings, sequential scenes) against Listing 2 (declarative, Murakkab) on
// identical inputs and cluster — the §4 evaluation as a program.
//
//	go run ./examples/videounderstanding
package main

import (
	"fmt"
	"log"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/imperative"
	"repro/internal/sim"
	"repro/internal/vectordb"
	"repro/internal/workflow"
)

func main() {
	videos := []workflow.Input{
		workflow.VideoInput("cats.mov", 240, 30, 24),
		workflow.VideoInput("formula_1.mov", 240, 30, 24),
	}

	// ---- Listing 1: today's imperative workflow --------------------------
	// Components are bound to specific models, provider keys and fixed
	// resources; every binding is held for the whole run.
	se1 := sim.NewEngine()
	cl1 := cluster.New(se1, hardware.DefaultCatalog())
	cl1.AddVM("vm0", hardware.NDv4SKUName, false)
	cl1.AddVM("vm1", hardware.NDv4SKUName, false)
	runner := imperative.NewRunner(se1, cl1, agents.DefaultLibrary())
	baseRep, err := runner.Run(imperative.DefaultVideoPipeline(), videos)
	if err != nil {
		log.Fatal(err)
	}
	se1.Run()

	fmt.Println("== Listing 1 (imperative baseline, OmAgent-derived) ==")
	fmt.Println(baseRep.String())
	fmt.Print(baseRep.Timeline(72))

	// ---- Listing 2: Murakkab ----------------------------------------------
	se2 := sim.NewEngine()
	cl2 := cluster.New(se2, hardware.DefaultCatalog())
	cl2.AddVM("vm0", hardware.NDv4SKUName, false)
	cl2.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := core.New(core.Config{Engine: se2, Cluster: cl2, Library: agents.DefaultLibrary()})
	if err != nil {
		log.Fatal(err)
	}
	job := workflow.Job{
		Description: "List objects shown/mentioned in the videos",
		Inputs:      videos,
		Constraint:  workflow.MinCost,
		MinQuality:  0.95,
	}
	ex, err := rt.Submit(job, core.SubmitOptions{
		Pinned:     experiments.PaperEnginePins(), // §4: NVLM on 8 + 2 GPUs
		RelaxFloor: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	se2.Run()
	muRep := ex.Report()

	fmt.Println("\n== Listing 2 (Murakkab, MIN_COST) ==")
	fmt.Println(muRep.String())
	fmt.Print(muRep.Timeline(72))

	fmt.Printf("\nSpeedup: %.1fx (paper reports ~3.4x)\n", baseRep.MakespanS/muRep.MakespanS)
	fmt.Printf("Energy efficiency: %.1fx (paper reports ~4.5x)\n", baseRep.GPUEnergyWh/muRep.GPUEnergyWh)
	fmt.Printf("Planning overhead: %.2f%% of workflow time (paper: <1%%)\n", 100*muRep.PlanningOverheadFrac)

	// Both executions populated a VectorDB with scene embeddings; ask it a
	// question to close the §4 loop (embeddings → question answering).
	db := rt.VectorDB()
	matches, err := db.Search(ex.Namespace(),
		queryVector(db.Dim()), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop scenes for query 'summary of cats.mov scene 0':")
	for _, m := range matches {
		fmt.Printf("  %.3f  %s\n", m.Score, m.Doc.Text)
	}
}

func queryVector(dim int) []float64 {
	// Embed the same text the runtime embedded for scene 0 of cats.mov.
	return vectordb.Embed("summary of cats.mov scene 0", dim)
}
