// Newsfeed: Figure 2's Workflow B — "Generate social media newsfeed for
// Alice" — as a declarative job. The planner fans out one web search per
// topic, ranks the results, generates the feed with the LLM and runs a
// sentiment filter, all without the program naming a single model or GPU.
//
// The example also sweeps all four constraints to show the same job
// executing under different objectives (the fungibility of §3).
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"log"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func newsfeedJob(c workflow.Constraint) workflow.Job {
	return workflow.Job{
		Description: "Generate social media newsfeed for Alice",
		Inputs: []workflow.Input{
			{Name: "alice", Kind: workflow.InputUser},
			{Name: "formula-1", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "cats", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "cooking", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "distributed-systems", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 2}},
		},
		Constraint: c,
	}
}

func main() {
	for _, c := range []workflow.Constraint{
		workflow.MinCost, workflow.MinLatency, workflow.MinPower, workflow.MaxQuality,
	} {
		se := sim.NewEngine()
		cl := cluster.New(se, hardware.DefaultCatalog())
		cl.AddVM("vm0", hardware.NDv4SKUName, false)
		cl.AddVM("vm1", hardware.NDv4SKUName, false)
		rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
		if err != nil {
			log.Fatal(err)
		}
		ex, err := rt.Submit(newsfeedJob(c), core.SubmitOptions{
			RelaxFloor: true,
			MaxPaths:   4, // lets MAX_QUALITY explore extra reasoning paths
		})
		if err != nil {
			log.Fatal(err)
		}
		se.Run()
		if ex.Err() != nil {
			log.Fatal(ex.Err())
		}
		rep := ex.Report()
		fmt.Printf("== %s ==\n%s\n", c, rep.String())
		sum := ex.Plan().Decisions[string(agents.CapSummarization)]
		fmt.Printf("  feed generator: %s @ %s (paths=%d)\n",
			sum.Implementation, sum.Config, sum.ExecutionPaths)
		fmt.Print(rep.Timeline(64))
		fmt.Println()
	}
}
