// Quickstart: the paper's Listing 2 in runnable form.
//
// A declarative Job — description, inputs, optional task hints, a
// constraint — is submitted to the Murakkab runtime, which decomposes it
// with the (simulated) orchestrator LLM, picks models and hardware via
// execution profiles, and runs it on a simulated two-VM A100 cluster.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func main() {
	// Provision the §4 testbed: two Standard_ND96amsr_A100_v4 VMs
	// (96 vCPUs + 8×A100 each) on a deterministic simulation clock.
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)

	rt, err := core.New(core.Config{
		Engine:  se,
		Cluster: cl,
		Library: agents.DefaultLibrary(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Listing 2: describe the job; don't pick models, providers or GPUs.
	job := workflow.Job{
		Description: "List objects shown/mentioned in the videos",
		Inputs: []workflow.Input{
			workflow.VideoInput("cats.mov", 240, 30, 24),
			workflow.VideoInput("formula_1.mov", 240, 30, 24),
		},
		Tasks: []string{
			"Extract frames from each video",
			"Run speech-to-text on all scenes",
			"Detect objects in the frames",
		},
		Constraint: workflow.MinCost,
		MinQuality: 0.95,
	}

	ex, err := rt.Submit(job, core.SubmitOptions{RelaxFloor: true})
	if err != nil {
		log.Fatal(err)
	}
	se.Run() // drive the simulation to completion

	rep := ex.Report()
	fmt.Println("== Result ==")
	fmt.Println(rep.String())

	fmt.Println("\n== Decisions the runtime made (Table 1 levers) ==")
	for cap, d := range rep.Decisions {
		fmt.Printf("  %-20s %s\n", cap, d)
	}

	fmt.Println("\n== How the orchestrator decomposed the job (ReAct) ==")
	for _, step := range ex.Decomposition().Trace {
		fmt.Printf("  Thought: %s\n  Action: %s (%s)\n", step.Thought, step.Action, step.Observation)
	}

	fmt.Println("\n== Execution timeline (Figure 3 style) ==")
	fmt.Print(rep.Timeline(72))
}
