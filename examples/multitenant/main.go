// Multi-tenant: Figure 2's core promise — independent workflows (two video
// tenants plus a newsfeed) co-scheduled on one cluster, multiplexing the
// shared NVLM engines and CPU pool, against running each with the cluster
// to itself. Also demonstrates the workflow-aware rebalancer growing an
// undersized engine, and spot-VM preemption recovery.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func main() {
	// Part 1: the multiplexing comparison from the experiments harness.
	mt, err := experiments.MultiTenant()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mt.String())

	// Part 2: workflow-aware rebalancing on an undersized engine.
	ra, err := experiments.RebalanceAblation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ra.String())

	// Part 3: spot-VM preemption. One of the two VMs is a spot instance
	// that gets evicted mid-run; Murakkab retries the lost tasks and
	// rebuilds the lost engine, completing the workflow regardless.
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("spot0", hardware.NDv4SKUName, true) // preemptible
	cl.AddVM("od0", hardware.NDv4SKUName, false)
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		log.Fatal(err)
	}
	job := experiments.PaperVideoJob(workflow.MinCost)
	ex, err := rt.Submit(job, core.SubmitOptions{RelaxFloor: true})
	if err != nil {
		log.Fatal(err)
	}
	se.Schedule(20, func() { cl.PreemptVM("spot0") })
	se.Run()
	if ex.Err() != nil {
		log.Fatal(ex.Err())
	}
	rep := ex.Report()
	fmt.Println("Spot-preemption run (spot VM evicted at t=20s):")
	fmt.Printf("  completed in %.1f s with %d task retries; %d/80 tasks done\n",
		rep.MakespanS, ex.Retries(), rep.TasksCompleted)
}
