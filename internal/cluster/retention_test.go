package cluster

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/sim"
)

// buildBusyCluster runs a little allocation history: GPUs and CPUs ramp up
// and down over [0, 400] so every series accumulates change points.
func buildBusyCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	se := sim.NewEngine()
	cl := New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	for i := 0; i < 20; i++ {
		start := float64(i * 20)
		se.Schedule(sim.Time(start), func() {
			g, err := cl.AllocGPUs(4, hardware.GPUA100)
			if err != nil {
				t.Errorf("alloc GPUs at %v: %v", start, err)
				return
			}
			g.SetIntensity(0.25 + 0.5*float64(i%3)/2)
			c, err := cl.AllocCPUs(16)
			if err != nil {
				t.Errorf("alloc CPUs at %v: %v", start, err)
				return
			}
			c.SetIntensity(0.5)
			se.After(15, func() { g.Release(); c.Release() })
		})
	}
	se.Run()
	return se, cl
}

// TestAdvanceEpochPreservesRetainedWindows: after compacting at a watermark,
// every report-path read over a window at or after it is bit-identical to
// the uncompacted cluster, the footprint shrinks, and full-history aggregate
// reads still answer (via rollups) to float accumulation error.
func TestAdvanceEpochPreservesRetainedWindows(t *testing.T) {
	_, cl := buildBusyCluster(t)
	now := cl.Engine().Now().Seconds()
	const w = 180.0

	type reads struct {
		gpuE, cpuE, gpuU, cpuU float64
	}
	read := func(t0, t1 float64) reads {
		return reads{
			gpuE: cl.GPUEnergyJoules(t0, t1),
			cpuE: cl.CPUEnergyJoules(t0, t1),
			gpuU: cl.MeanGPUUtilOver(t0, t1),
			cpuU: cl.MeanCPUUtilOver(t0, t1),
		}
	}
	wantLive := read(w, now)
	wantMid := read(250, 310)
	fullE := cl.GPUEnergyJoules(0, now)
	fullU := cl.MeanGPUUtilOver(0, now)
	before := cl.TelemetryFootprint()

	dropped := cl.AdvanceEpoch(w)
	if dropped == 0 {
		t.Fatal("AdvanceEpoch dropped nothing on a busy cluster")
	}
	if cl.Watermark() != w {
		t.Fatalf("watermark = %v, want %v", cl.Watermark(), w)
	}
	if cl.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", cl.Epoch())
	}
	after := cl.TelemetryFootprint()
	if after.Points >= before.Points || after.Bytes >= before.Bytes {
		t.Fatalf("footprint did not shrink: %+v -> %+v", before, after)
	}
	if after.RollupBuckets != 4 {
		t.Fatalf("rollup buckets = %d, want 4 (one per aggregate)", after.RollupBuckets)
	}

	if got := read(w, now); got != wantLive {
		t.Fatalf("retained-window reads diverged after compaction:\n got %+v\nwant %+v", got, wantLive)
	}
	if got := read(250, 310); got != wantMid {
		t.Fatalf("interior-window reads diverged after compaction:\n got %+v\nwant %+v", got, wantMid)
	}
	if got := cl.GPUEnergyJoules(0, now); math.Abs(got-fullE) > 1e-9*fullE {
		t.Fatalf("full-history energy via rollups = %v, want %v", got, fullE)
	}
	if got := cl.MeanGPUUtilOver(0, now); math.Abs(got-fullU) > 1e-9*math.Max(1, fullU) {
		t.Fatalf("full-history util via rollups = %v, want %v", got, fullU)
	}

	// A second epoch advances the watermark further; regressing it is a
	// no-op.
	if n := cl.AdvanceEpoch(100); n != 0 {
		t.Fatal("regressing the watermark must be a no-op")
	}
	if cl.AdvanceEpoch(300) == 0 {
		t.Fatal("second epoch dropped nothing")
	}
	if cl.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", cl.Epoch())
	}
}

// TestAdvanceEpochClampsToNow: a watermark beyond the current simulated time
// clamps to now instead of declaring future history compacted.
func TestAdvanceEpochClampsToNow(t *testing.T) {
	_, cl := buildBusyCluster(t)
	now := cl.Engine().Now().Seconds()
	cl.AdvanceEpoch(now + 1e6)
	if cl.Watermark() != now {
		t.Fatalf("watermark = %v, want clamped to now %v", cl.Watermark(), now)
	}
}

// TestCompactionKeepsRecordingConsistent: samples recorded after an epoch
// advance integrate seamlessly with the retained history.
func TestCompactionKeepsRecordingConsistent(t *testing.T) {
	se := sim.NewEngine()
	cl := New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	var a *GPUAlloc
	se.Schedule(10, func() {
		var err error
		a, err = cl.AllocGPUs(8, hardware.GPUA100)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		a.SetIntensity(1)
	})
	se.Schedule(50, func() { cl.AdvanceEpoch(40) })
	se.Schedule(100, func() { a.SetIntensity(0.5) })
	se.Schedule(200, func() { a.Release() })
	se.Run()

	spec := hardware.DefaultCatalog().MustGPU(hardware.GPUA100)
	// [40, 100]: 8 GPUs at peak; [100, 200]: 8 GPUs at 50% intensity.
	wantPeak := 8 * spec.PeakWatts * 60
	if got := cl.GPUEnergyJoules(40, 100); math.Abs(got-wantPeak) > 1e-6 {
		t.Fatalf("post-compaction energy [40,100] = %v, want %v", got, wantPeak)
	}
	if got := cl.MeanGPUUtilOver(100, 200); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("post-compaction util [100,200] = %v, want 0.5", got)
	}
}
