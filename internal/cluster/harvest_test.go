package cluster

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/sim"
)

func harvestVM(t *testing.T) (*sim.Engine, *Cluster, *VM) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, hardware.DefaultCatalog())
	vm := c.AddVM("harvest0", "Standard_HB120rs_v3", false)
	return e, c, vm
}

func TestHarvestGrowFreesCapacity(t *testing.T) {
	_, c, vm := harvestVM(t)
	if vm.CPUCapacity() != 120 {
		t.Fatalf("capacity = %d", vm.CPUCapacity())
	}
	if err := vm.SetCPUCapacity(160); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeCPUCores(); got != 160 {
		t.Fatalf("free = %d after grow, want 160", got)
	}
}

func TestHarvestGrowUnblocksQueuedViaHook(t *testing.T) {
	_, c, vm := harvestVM(t)
	a, _ := c.AllocCPUs(120)
	hookFired := false
	c.OnRelease(func() { hookFired = true })
	vm.SetCPUCapacity(150)
	if !hookFired {
		t.Fatal("grow did not fire the release hook")
	}
	if _, err := c.AllocCPUs(30); err != nil {
		t.Fatalf("allocation after grow failed: %v", err)
	}
	a.Release()
}

func TestHarvestShrinkWithinFreeEvictsNothing(t *testing.T) {
	_, c, vm := harvestVM(t)
	a, _ := c.AllocCPUs(40)
	if err := vm.SetCPUCapacity(60); err != nil {
		t.Fatal(err)
	}
	if a.Released() {
		t.Fatal("allocation evicted despite fitting in shrunk capacity")
	}
	if got := c.FreeCPUCores(); got != 20 {
		t.Fatalf("free = %d, want 20", got)
	}
}

func TestHarvestShrinkEvictsNewestFirst(t *testing.T) {
	_, c, vm := harvestVM(t)
	old, _ := c.AllocCPUs(60)
	newer, _ := c.AllocCPUs(60)
	var preempted []*CPUAlloc
	old.OnPreempt = func() { preempted = append(preempted, old) }
	newer.OnPreempt = func() { preempted = append(preempted, newer) }

	if err := vm.SetCPUCapacity(70); err != nil {
		t.Fatal(err)
	}
	if !newer.Released() {
		t.Fatal("newest allocation survived the shrink")
	}
	if old.Released() {
		t.Fatal("oldest allocation evicted although usage fit after one eviction")
	}
	if len(preempted) != 1 || preempted[0] != newer {
		t.Fatalf("preempt callbacks = %d, want newest only", len(preempted))
	}
	if got := vm.CPUCoresFree(); got != 10 {
		t.Fatalf("free on vm = %d, want 10", got)
	}
}

func TestHarvestShrinkToZeroEvictsAll(t *testing.T) {
	_, c, vm := harvestVM(t)
	a, _ := c.AllocCPUs(30)
	b, _ := c.AllocCPUs(30)
	if err := vm.SetCPUCapacity(0); err != nil {
		t.Fatal(err)
	}
	if !a.Released() || !b.Released() {
		t.Fatal("allocations survived zero capacity")
	}
	if got := c.FreeCPUCores(); got != 0 {
		t.Fatalf("free = %d", got)
	}
}

func TestHarvestUtilizationTracksCapacity(t *testing.T) {
	e, c, vm := harvestVM(t)
	a, _ := c.AllocCPUs(60)
	a.SetIntensity(1)
	e.Schedule(10, func() { vm.SetCPUCapacity(60) }) // now fully busy
	e.Schedule(20, func() {})
	e.Run()
	if got := vm.CPUUtil().Value(5); got != 0.5 {
		t.Fatalf("util before shrink = %v, want 0.5", got)
	}
	if got := vm.CPUUtil().Value(15); got != 1.0 {
		t.Fatalf("util after shrink = %v, want 1.0", got)
	}
}

func TestHarvestErrors(t *testing.T) {
	_, _, vm := harvestVM(t)
	if err := vm.SetCPUCapacity(-1); err == nil {
		t.Error("negative capacity accepted")
	}
	e := sim.NewEngine()
	c := New(e, hardware.DefaultCatalog())
	spot := c.AddVM("s", hardware.NDv4SKUName, true)
	c.PreemptVM("s")
	if err := spot.SetCPUCapacity(10); err == nil {
		t.Error("resize of preempted VM accepted")
	}
}
