package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// These tests pin the incrementally-maintained cluster aggregates to the
// seed's semantics: merging every per-device series from scratch. A random
// allocate/set-intensity/release/preempt schedule is driven through the
// cluster, then each aggregate is compared point-wise against the naive
// merge of the per-device series it summarizes.

// naiveGPUPower re-merges per-device power series (the seed's
// GPUPowerSeries).
func naiveGPUPower(c *Cluster) *telemetry.StepSeries {
	var all []*telemetry.StepSeries
	for _, vm := range c.VMs() {
		for _, g := range vm.GPUs() {
			all = append(all, g.Power())
		}
	}
	return telemetry.SumSeries(all...)
}

func naiveGPUUtil(c *Cluster) *telemetry.StepSeries {
	var all []*telemetry.StepSeries
	for _, vm := range c.VMs() {
		for _, g := range vm.GPUs() {
			all = append(all, g.Util())
		}
	}
	return telemetry.MeanSeries(all...)
}

func naiveCPUPower(c *Cluster) *telemetry.StepSeries {
	var all []*telemetry.StepSeries
	for _, vm := range c.VMs() {
		all = append(all, vm.cpuPower)
	}
	return telemetry.SumSeries(all...)
}

// seriesClose compares two step series on a fine grid.
func seriesClose(t *testing.T, name string, got, want *telemetry.StepSeries, t0, t1 float64) {
	t.Helper()
	const steps = 400
	dt := (t1 - t0) / steps
	for i := 0; i <= steps; i++ {
		x := t0 + float64(i)*dt
		g, w := got.Value(x), want.Value(x)
		if math.Abs(g-w) > 1e-6*math.Max(1, math.Abs(w)) {
			t.Fatalf("%s diverges at t=%v: aggregate %v, naive merge %v", name, x, g, w)
		}
	}
	gi, wi := got.Integral(t0, t1), want.Integral(t0, t1)
	if math.Abs(gi-wi) > 1e-6*math.Max(1, math.Abs(wi)) {
		t.Fatalf("%s integral diverges: aggregate %v, naive merge %v", name, gi, wi)
	}
}

func TestAggregatesMatchNaiveMerge(t *testing.T) {
	se := sim.NewEngine()
	cl := New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, true)

	rng := rand.New(rand.NewSource(3))
	var gpuAllocs []*GPUAlloc
	var cpuAllocs []*CPUAlloc
	tnow := 0.0
	for i := 0; i < 300; i++ {
		tnow += rng.Float64() * 5
		i := i
		se.Schedule(sim.Time(tnow), func() {
			switch op := rng.Intn(10); {
			case op < 4:
				if a, err := cl.AllocGPUs(1+rng.Intn(2), hardware.GPUA100); err == nil {
					a.SetIntensity(rng.Float64())
					gpuAllocs = append(gpuAllocs, a)
				}
			case op < 6:
				if a, err := cl.AllocCPUs(1 + rng.Intn(16)); err == nil {
					a.SetIntensity(rng.Float64())
					cpuAllocs = append(cpuAllocs, a)
				}
			case op < 8 && len(gpuAllocs) > 0:
				gpuAllocs[rng.Intn(len(gpuAllocs))].Release()
			case op < 9 && len(cpuAllocs) > 0:
				cpuAllocs[rng.Intn(len(cpuAllocs))].Release()
			default:
				if i == 200 {
					cl.PreemptVM("vm1")
				}
			}
		})
	}
	se.Run()
	end := se.Now().Seconds() + 1

	seriesClose(t, "GPU power", cl.GPUPowerSeries(), naiveGPUPower(cl), 0, end)
	seriesClose(t, "CPU power", cl.CPUPowerSeries(), naiveCPUPower(cl), 0, end)
	seriesClose(t, "GPU util", cl.GPUUtilSeries(), naiveGPUUtil(cl), 0, end)

	// CPU util: weighted mean Σ(load_i)/Σcores, rebuilt naively.
	totalCores := 0
	var loads []*telemetry.StepSeries
	for _, vm := range cl.VMs() {
		totalCores += vm.cpuTotal
		loads = append(loads, vm.cpuUtil.Scale(float64(vm.cpuTotal)))
	}
	want := telemetry.SumSeries(loads...).Scale(1 / float64(totalCores))
	seriesClose(t, "CPU util", cl.CPUUtilSeries(), want, 0, end)
}

func TestAggregateEnergyMatchesPerDeviceSum(t *testing.T) {
	se := sim.NewEngine()
	cl := New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)

	a, err := cl.AllocGPUs(2, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	se.Schedule(10, func() { a.SetIntensity(0.8) })
	se.Schedule(60, func() { a.Release() })
	se.Run()

	perDevice := 0.0
	for _, vm := range cl.VMs() {
		for _, g := range vm.GPUs() {
			perDevice += g.Power().Integral(0, 100)
		}
	}
	got := cl.GPUEnergyJoules(0, 100)
	if math.Abs(got-perDevice) > 1e-6*perDevice {
		t.Fatalf("aggregate energy %v, per-device sum %v", got, perDevice)
	}
}
