package cluster

import (
	"repro/internal/hardware"
	"repro/internal/telemetry"
)

// This file derives the quantities the paper's evaluation reports from the
// raw per-device series: GPU energy (Table 2), CPU/GPU utilization curves
// (Figure 3), and rental cost (the MIN_COST constraint's objective).

// GPUUtilSeries returns the cluster-wide average GPU utilization (0..1) —
// the "GPU Util. (%)" panel of Figure 3 divided by 100.
func (c *Cluster) GPUUtilSeries() *telemetry.StepSeries {
	var all []*telemetry.StepSeries
	for _, vm := range c.vms {
		for _, g := range vm.gpus {
			all = append(all, g.util)
		}
	}
	return telemetry.MeanSeries(all...)
}

// CPUUtilSeries returns the cluster-wide average CPU utilization (0..1),
// weighting each VM by its core count — the "CPU Util. (%)" panel of
// Figure 3 divided by 100.
func (c *Cluster) CPUUtilSeries() *telemetry.StepSeries {
	totalCores := 0
	for _, vm := range c.vms {
		totalCores += vm.cpuTotal
	}
	if totalCores == 0 {
		return telemetry.NewStepSeries(0)
	}
	// Weighted mean: sum(load_i) / sum(cores_i). Build from per-VM load
	// series (util × cores) then divide.
	var loads []*telemetry.StepSeries
	for _, vm := range c.vms {
		load := telemetry.NewStepSeries(0)
		// Scale the util series by core count via resample-free scaling:
		// replay its change points.
		replayScaled(vm.cpuUtil, load, float64(vm.cpuTotal))
		loads = append(loads, load)
	}
	sum := telemetry.SumSeries(loads...)
	out := telemetry.NewStepSeries(0)
	replayScaled(sum, out, 1/float64(totalCores))
	return out
}

// replayScaled copies src into dst with values multiplied by k. It relies on
// StepSeries exposing Value at its own change points via Resample-free
// iteration: we sample at integral-preserving points by reconstructing from
// Value() at a merged point set.
func replayScaled(src, dst *telemetry.StepSeries, k float64) {
	for _, t := range changeTimes(src) {
		dst.Set(t, src.Value(t)*k)
	}
}

func changeTimes(s *telemetry.StepSeries) []float64 {
	// StepSeries does not export its points; walk via SumSeries trick is
	// wasteful, so telemetry exports ChangeTimes for this purpose.
	return s.ChangeTimes()
}

// GPUPowerSeries returns total GPU power in watts across the cluster.
func (c *Cluster) GPUPowerSeries() *telemetry.StepSeries {
	var all []*telemetry.StepSeries
	for _, vm := range c.vms {
		for _, g := range vm.gpus {
			all = append(all, g.power)
		}
	}
	return telemetry.SumSeries(all...)
}

// CPUPowerSeries returns total CPU power in watts across the cluster.
func (c *Cluster) CPUPowerSeries() *telemetry.StepSeries {
	var all []*telemetry.StepSeries
	for _, vm := range c.vms {
		all = append(all, vm.cpuPower)
	}
	return telemetry.SumSeries(all...)
}

// GPUEnergyJoules integrates total GPU power over [t0, t1]. Table 2 reports
// exactly this quantity (converted to Wh): the paper measures only GPU
// energy "since that is the dominant source in the system".
func (c *Cluster) GPUEnergyJoules(t0, t1 float64) float64 {
	return c.GPUPowerSeries().Integral(t0, t1)
}

// CPUEnergyJoules integrates total CPU power over [t0, t1].
func (c *Cluster) CPUEnergyJoules(t0, t1 float64) float64 {
	return c.CPUPowerSeries().Integral(t0, t1)
}

// RentalCostUSD returns the cost of renting every VM in the cluster for
// [t0, t1], applying spot discounts. This is the platform-bill view of cost;
// per-allocation estimates used by the optimizer live in internal/profiles.
func (c *Cluster) RentalCostUSD(t0, t1 float64) float64 {
	hours := (t1 - t0) / 3600
	total := 0.0
	for _, vm := range c.vms {
		rate := vm.SKU.HourlyUSD
		if vm.Spot {
			rate *= 1 - vm.SKU.SpotDiscount
		}
		total += rate * hours
	}
	return total
}

// Snapshot is a point-in-time view of cluster capacity, the stats feed the
// paper's §3.2 "Resource-Aware Workflow Orchestration" requires the Cluster
// Manager to export.
type Snapshot struct {
	Time          float64
	FreeGPUs      map[hardware.GPUType]int
	TotalGPUs     map[hardware.GPUType]int
	FreeCPUCores  int
	TotalCPUCores int
	// MaxFreeCPUCoresOneVM bounds the largest single CPU allocation.
	MaxFreeCPUCoresOneVM int
	// MeanGPUUtil and MeanCPUUtil are instantaneous utilizations.
	MeanGPUUtil float64
	MeanCPUUtil float64
	// SpotVMs lists currently-live spot VM names (harvestable capacity).
	SpotVMs []string
}

// Snapshot captures current capacity and utilization.
func (c *Cluster) Snapshot() Snapshot {
	now := c.engine.Now().Seconds()
	s := Snapshot{
		Time:      now,
		FreeGPUs:  map[hardware.GPUType]int{},
		TotalGPUs: map[hardware.GPUType]int{},
	}
	gpuCount, gpuUtilSum := 0, 0.0
	coreCount, coreLoad := 0, 0.0
	for _, vm := range c.vms {
		if !vm.preempted {
			s.FreeCPUCores += vm.CPUCoresFree()
			if f := vm.CPUCoresFree(); f > s.MaxFreeCPUCoresOneVM {
				s.MaxFreeCPUCoresOneVM = f
			}
			if vm.Spot {
				s.SpotVMs = append(s.SpotVMs, vm.Name)
			}
		}
		s.TotalCPUCores += vm.cpuTotal
		coreCount += vm.cpuTotal
		coreLoad += vm.cpuLoad
		for _, g := range vm.gpus {
			s.TotalGPUs[g.Spec.Type]++
			gpuCount++
			gpuUtilSum += g.intensity
			if !vm.preempted && !g.allocated {
				s.FreeGPUs[g.Spec.Type]++
			}
		}
	}
	if gpuCount > 0 {
		s.MeanGPUUtil = gpuUtilSum / float64(gpuCount)
	}
	if coreCount > 0 {
		s.MeanCPUUtil = coreLoad / float64(coreCount)
	}
	return s
}
