package cluster

import (
	"repro/internal/hardware"
	"repro/internal/telemetry"
)

// This file derives the quantities the paper's evaluation reports from the
// raw per-device series: GPU energy (Table 2), CPU/GPU utilization curves
// (Figure 3), and rental cost (the MIN_COST constraint's objective).

// Every quantity here reads the cluster's incrementally-maintained running
// aggregates (updated O(1) at each device sample), so deriving a report is
// O(log n) per integral and O(n) per returned curve — the per-device series
// are never re-merged. The per-device series remain available through
// VM/GPU accessors for fine-grained inspection.

// GPUUtilSeries returns the cluster-wide average GPU utilization (0..1) —
// the "GPU Util. (%)" panel of Figure 3 divided by 100. Devices on VMs added
// later or preempted stay in the denominator, matching a fixed-fleet view.
func (c *Cluster) GPUUtilSeries() *telemetry.StepSeries {
	return c.UtilSource().GPUUtilSeries()
}

// CPUUtilSeries returns the cluster-wide average CPU utilization (0..1),
// weighting each VM by its core count — the "CPU Util. (%)" panel of
// Figure 3 divided by 100.
func (c *Cluster) CPUUtilSeries() *telemetry.StepSeries {
	return c.UtilSource().CPUUtilSeries()
}

// UtilSource is a lightweight handle for materializing the cluster-average
// utilization curves later without retaining the cluster itself: it holds
// only the two running aggregate series (shared, live-windowed) and the
// device/core counts at capture time. Reports store one of these so a
// retained report pins two series, never the engine or the VM fleet.
//
// The handles track the aggregates' live windows, which are clamped at the
// cluster's retention watermark: if the cluster compacts after capture, a
// lazily-materialized curve starts at the watermark rather than t=0.
type UtilSource struct {
	gpuSum  *telemetry.StepSeries
	loadSum *telemetry.StepSeries
	gpus    int
	cores   int
}

// UtilSource captures the current aggregate handles and fleet counts.
func (c *Cluster) UtilSource() UtilSource {
	s := UtilSource{gpuSum: c.gpuUtilSumAgg.Live(), loadSum: c.cpuLoadSumAgg.Live()}
	for _, vm := range c.vms {
		s.gpus += len(vm.gpus)
		s.cores += vm.cpuTotal
	}
	return s
}

// GPUUtilSeries materializes the average-GPU-utilization curve (snapshot
// copy).
func (s UtilSource) GPUUtilSeries() *telemetry.StepSeries {
	if s.gpus == 0 || s.gpuSum == nil {
		return telemetry.NewStepSeries(0)
	}
	return s.gpuSum.Scale(1 / float64(s.gpus))
}

// CPUUtilSeries materializes the core-weighted CPU-utilization curve
// (snapshot copy).
func (s UtilSource) CPUUtilSeries() *telemetry.StepSeries {
	if s.cores == 0 || s.loadSum == nil {
		return telemetry.NewStepSeries(0)
	}
	return s.loadSum.Scale(1 / float64(s.cores))
}

// MeanGPUUtilOver returns the time-weighted cluster-average GPU utilization
// over [t0, t1], read from the running aggregate in O(log n) — the report
// path uses this instead of materializing the full curve. Windows at or
// after the retention watermark are exact (bit-identical to full history);
// windows reaching behind it read the compacted epochs' rollup buckets.
func (c *Cluster) MeanGPUUtilOver(t0, t1 float64) float64 {
	n := 0
	for _, vm := range c.vms {
		n += len(vm.gpus)
	}
	if n == 0 {
		return 0
	}
	return c.gpuUtilSumAgg.Mean(t0, t1) / float64(n)
}

// MeanCPUUtilOver returns the time-weighted core-weighted CPU utilization
// over [t0, t1] in O(log n).
func (c *Cluster) MeanCPUUtilOver(t0, t1 float64) float64 {
	totalCores := 0
	for _, vm := range c.vms {
		totalCores += vm.cpuTotal
	}
	if totalCores == 0 {
		return 0
	}
	return c.cpuLoadSumAgg.Mean(t0, t1) / float64(totalCores)
}

// GPUPowerSeries returns total GPU power in watts across the cluster, as a
// snapshot copy of the running aggregate's live window (callers may hold or
// mutate it freely; energy accounting keeps reading the internal aggregate).
func (c *Cluster) GPUPowerSeries() *telemetry.StepSeries { return c.gpuPowerAgg.Live().Scale(1) }

// CPUPowerSeries returns total CPU power in watts across the cluster
// (snapshot copy, like GPUPowerSeries).
func (c *Cluster) CPUPowerSeries() *telemetry.StepSeries { return c.cpuPowerAgg.Live().Scale(1) }

// GPUEnergyJoules integrates total GPU power over [t0, t1]. Table 2 reports
// exactly this quantity (converted to Wh): the paper measures only GPU
// energy "since that is the dominant source in the system". Windows at or
// after the retention watermark are exact; older history comes from the
// compacted epochs' exact-integral rollups.
func (c *Cluster) GPUEnergyJoules(t0, t1 float64) float64 {
	return c.gpuPowerAgg.Integral(t0, t1)
}

// CPUEnergyJoules integrates total CPU power over [t0, t1].
func (c *Cluster) CPUEnergyJoules(t0, t1 float64) float64 {
	return c.cpuPowerAgg.Integral(t0, t1)
}

// RentalCostUSD returns the cost of renting every VM in the cluster for
// [t0, t1], applying spot discounts. This is the platform-bill view of cost;
// per-allocation estimates used by the optimizer live in internal/profiles.
func (c *Cluster) RentalCostUSD(t0, t1 float64) float64 {
	hours := (t1 - t0) / 3600
	total := 0.0
	for _, vm := range c.vms {
		rate := vm.SKU.HourlyUSD
		if vm.Spot {
			rate *= 1 - vm.SKU.SpotDiscount
		}
		total += rate * hours
	}
	return total
}

// Snapshot is a point-in-time view of cluster capacity, the stats feed the
// paper's §3.2 "Resource-Aware Workflow Orchestration" requires the Cluster
// Manager to export.
type Snapshot struct {
	Time          float64
	FreeGPUs      map[hardware.GPUType]int
	TotalGPUs     map[hardware.GPUType]int
	FreeCPUCores  int
	TotalCPUCores int
	// MaxFreeCPUCoresOneVM bounds the largest single CPU allocation.
	MaxFreeCPUCoresOneVM int
	// MeanGPUUtil and MeanCPUUtil are instantaneous utilizations.
	MeanGPUUtil float64
	MeanCPUUtil float64
	// SpotVMs lists currently-live spot VM names (harvestable capacity).
	SpotVMs []string
}

// Snapshot captures current capacity and utilization. The result is memoized
// on the cluster's state generation: every submission in a burst reads a
// snapshot, and between state changes they are all identical, so repeat calls
// return the cached value (with Time refreshed) instead of re-walking the
// fleet and re-allocating the maps. Callers — including the off-loop plan
// searchers the snapshot is handed to — must treat it as immutable; a state
// change builds a fresh snapshot rather than mutating a shared one.
func (c *Cluster) Snapshot() Snapshot {
	now := c.engine.Now().Seconds()
	if c.snapValid && c.snapGen == c.gen {
		s := c.snapCache
		s.Time = now
		return s
	}
	s := Snapshot{
		Time:      now,
		FreeGPUs:  make(map[hardware.GPUType]int, 2),
		TotalGPUs: make(map[hardware.GPUType]int, 2),
	}
	gpuCount, gpuUtilSum := 0, 0.0
	coreCount, coreLoad := 0, 0.0
	for _, vm := range c.vms {
		if !vm.preempted {
			s.FreeCPUCores += vm.CPUCoresFree()
			if f := vm.CPUCoresFree(); f > s.MaxFreeCPUCoresOneVM {
				s.MaxFreeCPUCoresOneVM = f
			}
			if vm.Spot {
				s.SpotVMs = append(s.SpotVMs, vm.Name)
			}
		}
		s.TotalCPUCores += vm.cpuTotal
		coreCount += vm.cpuTotal
		coreLoad += vm.cpuLoad
		for _, g := range vm.gpus {
			s.TotalGPUs[g.Spec.Type]++
			gpuCount++
			gpuUtilSum += g.intensity
			if !vm.preempted && !g.allocated {
				s.FreeGPUs[g.Spec.Type]++
			}
		}
	}
	if gpuCount > 0 {
		s.MeanGPUUtil = gpuUtilSum / float64(gpuCount)
	}
	if coreCount > 0 {
		s.MeanCPUUtil = coreLoad / float64(coreCount)
	}
	c.snapCache, c.snapGen, c.snapValid = s, c.gen, true
	return s
}
