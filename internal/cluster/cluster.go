// Package cluster simulates the hardware pool the paper's evaluation runs
// on: VMs holding GPUs and CPU cores, with per-device utilization tracking,
// power-model-driven energy accounting, rental-cost accounting, and spot-VM
// preemption. It is the substrate both the baseline (fixed allocations) and
// Murakkab (dynamic allocations) execute against.
//
// The cluster is passive: it grants or refuses resources synchronously and
// records what devices did over simulated time. Queueing, scaling policy and
// placement strategy live one layer up in internal/clustermgr.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// GPU is one simulated accelerator device.
type GPU struct {
	ID        string
	Spec      hardware.GPUSpec
	vm        *VM
	allocated bool
	intensity float64
	// util records the device's compute intensity over time (0 when idle or
	// unallocated); power records instantaneous watts. Both are step series
	// so energy is an exact integral, not a sampled approximation.
	util  *telemetry.StepSeries
	power *telemetry.StepSeries
}

// Util returns the device's utilization series (0..1).
func (g *GPU) Util() *telemetry.StepSeries { return g.util }

// Power returns the device's power series in watts.
func (g *GPU) Power() *telemetry.StepSeries { return g.power }

// setUtil records the device's utilization at now, keeping the cluster-wide
// utilization-sum aggregate in sync.
func (g *GPU) setUtil(now, u float64) {
	g.vm.cluster.gpuUtilSumAgg.AddDelta(now, u-g.util.Last())
	g.util.Set(now, u)
}

// setPower records the device's power draw at now, keeping the cluster-wide
// power aggregate in sync.
func (g *GPU) setPower(now, w float64) {
	g.vm.cluster.gpuPowerAgg.AddDelta(now, w-g.power.Last())
	g.power.Set(now, w)
}

// VM is one rented machine: a CPU-core pool plus zero or more GPUs.
type VM struct {
	Name string
	SKU  hardware.VMSKU
	// Spot marks the VM as preemptible (rented at SKU.SpotDiscount).
	Spot bool

	cluster  *Cluster
	gpus     []*GPU
	cpuSpec  hardware.CPUSpec
	cpuTotal int
	cpuInUse int
	cpuUtil  *telemetry.StepSeries // fraction of cores busy, weighted by intensity
	cpuPower *telemetry.StepSeries
	cpuLoad  float64 // Σ cores×intensity across live CPU allocations
	// sampledLoad is the load value most recently folded into the cluster's
	// load-sum aggregate (the delta base for the next sample).
	sampledLoad float64
	preempted   bool
}

// GPUs returns the VM's devices.
func (v *VM) GPUs() []*GPU { return v.gpus }

// CPUCoresFree returns unallocated cores.
func (v *VM) CPUCoresFree() int {
	if v.preempted {
		return 0
	}
	return v.cpuTotal - v.cpuInUse
}

// FreeGPUs returns the number of unallocated GPUs.
func (v *VM) FreeGPUs() int {
	if v.preempted {
		return 0
	}
	n := 0
	for _, g := range v.gpus {
		if !g.allocated {
			n++
		}
	}
	return n
}

// Preempted reports whether the VM has been taken away (spot eviction).
func (v *VM) Preempted() bool { return v.preempted }

// CPUUtil returns the VM's CPU utilization series (0..1 across all cores).
func (v *VM) CPUUtil() *telemetry.StepSeries { return v.cpuUtil }

// Cluster is a set of VMs sharing a simulation clock.
type Cluster struct {
	engine  *sim.Engine
	catalog *hardware.Catalog
	vms     []*VM
	// releaseHooks run whenever capacity is freed (release or resize); the
	// cluster manager uses them to retry queued requests.
	releaseHooks []func()
	// preemptHooks run with the VM that was just preempted.
	preemptHooks []func(*VM)
	// capacityHooks run whenever the capacity class changes (AddVM,
	// PreemptVM, SetCPUCapacity) — the reconfiguration controller's trigger.
	// They fire mid-mutation, so hooks must only schedule work (sim.Defer),
	// never read cluster state synchronously.
	capacityHooks []func()
	nextAllocID   int
	liveGPU       map[int]*GPUAlloc
	liveCPU       map[int]*CPUAlloc

	// Cluster-wide running aggregates, updated O(1) at every device sample so
	// report finalization reads them directly instead of re-merging every
	// per-device series per execution (§3.3's amortization applied to
	// telemetry). gpuPowerAgg/cpuPowerAgg total watts; gpuUtilSumAgg is the
	// unweighted Σ of per-GPU intensities; cpuLoadSumAgg is Σ cores×intensity
	// across VMs (the core-weighted load). They live under tiered retention:
	// AdvanceEpoch collapses history behind the watermark into rollup
	// buckets, so full-history reads (daemon stats, long-lived dashboards)
	// stay answerable after per-device points are dropped.
	gpuPowerAgg   *telemetry.RetainedSeries
	cpuPowerAgg   *telemetry.RetainedSeries
	gpuUtilSumAgg *telemetry.RetainedSeries
	cpuLoadSumAgg *telemetry.RetainedSeries

	// watermarkS is the telemetry retention watermark: per-device series
	// keep full-resolution change points only at or after it. Readers may no
	// longer assume history back to t=0 — window queries must start at or
	// after the watermark (report.Finalize fails loudly otherwise), and
	// full-history aggregate reads go through the rollup buckets.
	watermarkS float64
	epoch      int

	// gen counts state changes (alloc, free, intensity, preemption, resize,
	// epoch advance): Snapshot memoizes on it, and off-loop readers use it to
	// detect that a captured snapshot is stale. capacityGen moves only when
	// the capacity class itself changes (VM added, preempted or resized) —
	// the only snapshot content the optimizer's plan consumes — so it is the
	// validity check for optimistic plan commit.
	gen         uint64
	capacityGen uint64
	// snapCache memoizes the last Snapshot per gen (metrics.go); snapValid
	// distinguishes gen 0 from "never built".
	snapCache Snapshot
	snapGen   uint64
	snapValid bool
}

// New creates an empty cluster on the given engine and catalog.
func New(engine *sim.Engine, catalog *hardware.Catalog) *Cluster {
	if engine == nil || catalog == nil {
		panic("cluster: nil engine or catalog")
	}
	return &Cluster{
		engine:        engine,
		catalog:       catalog,
		liveGPU:       make(map[int]*GPUAlloc),
		liveCPU:       make(map[int]*CPUAlloc),
		gpuPowerAgg:   telemetry.NewRetained(0),
		cpuPowerAgg:   telemetry.NewRetained(0),
		gpuUtilSumAgg: telemetry.NewRetained(0),
		cpuLoadSumAgg: telemetry.NewRetained(0),
	}
}

// Engine returns the simulation engine the cluster runs on.
func (c *Cluster) Engine() *sim.Engine { return c.engine }

// Gen returns the cluster's state generation: it moves on every allocation,
// release, intensity change, preemption, resize and epoch advance. Two equal
// generations bracket a window in which Snapshot content cannot have changed.
func (c *Cluster) Gen() uint64 { return c.gen }

// CapacityGen returns the capacity-class generation, bumped only when the
// fleet itself changes (AddVM, PreemptVM, SetCPUCapacity). Plans are a pure
// function of the capacity class (plus profile/library generations), so an
// optimistically-searched plan commits cleanly iff CapacityGen is unchanged.
func (c *Cluster) CapacityGen() uint64 { return c.capacityGen }

// bump marks a cluster state change (invalidates the memoized snapshot).
func (c *Cluster) bump() { c.gen++ }

// bumpCapacity marks a capacity-class change (also a state change) and fires
// the capacity hooks.
func (c *Cluster) bumpCapacity() {
	c.gen++
	c.capacityGen++
	for _, fn := range c.capacityHooks {
		fn()
	}
}

// Watermark returns the telemetry retention watermark in simulated seconds:
// per-device series hold full-resolution history only at or after it (0
// until AdvanceEpoch is first called, i.e. full history).
func (c *Cluster) Watermark() float64 { return c.watermarkS }

// Epoch returns how many times AdvanceEpoch has compacted telemetry.
func (c *Cluster) Epoch() int { return c.epoch }

// AdvanceEpoch moves the retention watermark to t (clamped to [current
// watermark, now]) and compacts every per-GPU/VM series plus the four
// cluster-wide aggregates coherently: the aggregates roll the dropped epoch
// into exact-integral rollup buckets first, then everyone drops change
// points behind the watermark. Window queries at or after the watermark
// remain bit-identical to the uncompacted cluster; reads reaching behind it
// must use the aggregate (rollup-backed) paths. Returns the number of
// change points dropped.
//
// Like every Cluster method, AdvanceEpoch must run on the goroutine driving
// the simulation engine.
func (c *Cluster) AdvanceEpoch(t float64) int {
	if now := c.engine.Now().Seconds(); t > now {
		t = now
	}
	if t <= c.watermarkS {
		return 0
	}
	dropped := 0
	for _, vm := range c.vms {
		dropped += vm.cpuUtil.CompactBefore(t)
		dropped += vm.cpuPower.CompactBefore(t)
		for _, g := range vm.gpus {
			dropped += g.util.CompactBefore(t)
			dropped += g.power.CompactBefore(t)
		}
	}
	dropped += c.gpuPowerAgg.CompactBefore(t)
	dropped += c.cpuPowerAgg.CompactBefore(t)
	dropped += c.gpuUtilSumAgg.CompactBefore(t)
	dropped += c.cpuLoadSumAgg.CompactBefore(t)
	c.watermarkS = t
	c.epoch++
	c.bump()
	return dropped
}

// TelemetryFootprint is the cluster's retained-telemetry accounting: live
// change points across every per-device series and aggregate, the rollup
// buckets retained behind the watermark, and the resulting heap bytes
// (3 float64 slots per change point, 5 per bucket).
type TelemetryFootprint struct {
	Points        int
	RollupBuckets int
	Bytes         int
}

// TelemetryFootprint sums retained points/buckets across all series.
func (c *Cluster) TelemetryFootprint() TelemetryFootprint {
	var fp TelemetryFootprint
	for _, vm := range c.vms {
		fp.Points += vm.cpuUtil.Len() + vm.cpuPower.Len()
		for _, g := range vm.gpus {
			fp.Points += g.util.Len() + g.power.Len()
		}
	}
	for _, agg := range []*telemetry.RetainedSeries{
		c.gpuPowerAgg, c.cpuPowerAgg, c.gpuUtilSumAgg, c.cpuLoadSumAgg,
	} {
		fp.Points += agg.Len()
		fp.RollupBuckets += len(agg.Rollups())
	}
	fp.Bytes = fp.Points*3*8 + fp.RollupBuckets*5*8
	return fp
}

// Catalog returns the hardware catalog.
func (c *Cluster) Catalog() *hardware.Catalog { return c.catalog }

// AddVM provisions a VM of the named SKU. The VM's devices begin idle,
// drawing idle power (the machine is rented and powered whether or not work
// runs on it — exactly why the paper's baseline wastes energy).
func (c *Cluster) AddVM(name, skuName string, spot bool) *VM {
	sku := c.catalog.MustVM(skuName)
	for _, existing := range c.vms {
		if existing.Name == name {
			panic(fmt.Sprintf("cluster: duplicate VM name %q", name))
		}
	}
	vm := &VM{
		Name:     name,
		SKU:      sku,
		Spot:     spot,
		cluster:  c,
		cpuSpec:  c.catalog.MustCPU(sku.CPU),
		cpuTotal: sku.CPUCores,
		cpuUtil:  telemetry.NewStepSeries(0),
		cpuPower: telemetry.NewStepSeries(0),
	}
	for i := 0; i < sku.GPUCount; i++ {
		spec := c.catalog.MustGPU(sku.GPU)
		vm.gpus = append(vm.gpus, &GPU{
			ID:    fmt.Sprintf("%s/gpu%d", name, i),
			Spec:  spec,
			vm:    vm,
			util:  telemetry.NewStepSeries(0),
			power: telemetry.NewStepSeries(0),
		})
	}
	c.vms = append(c.vms, vm)
	c.bumpCapacity()
	// Record the idle draw through the sampling helpers so the cluster-wide
	// aggregates pick it up.
	now := c.engine.Now().Seconds()
	vm.sampleCPU(now, 0, 0, hardware.CPUPower(vm.cpuSpec, vm.cpuTotal, 0))
	for _, g := range vm.gpus {
		g.setPower(now, g.Spec.IdleWatts)
	}
	return vm
}

// VMs returns the cluster's VMs in provisioning order.
func (c *Cluster) VMs() []*VM { return c.vms }

// OnRelease registers a hook invoked whenever resources are freed.
func (c *Cluster) OnRelease(fn func()) { c.releaseHooks = append(c.releaseHooks, fn) }

// OnPreempt registers a hook invoked when a VM is preempted.
func (c *Cluster) OnPreempt(fn func(*VM)) { c.preemptHooks = append(c.preemptHooks, fn) }

// OnCapacityChange registers a hook invoked whenever the capacity class
// changes (CapacityGen moves: AddVM, PreemptVM, SetCPUCapacity). The hook
// runs in the middle of the mutation, before dependent releases and preempt
// callbacks — it must only schedule follow-up work (e.g. sim.Engine.Defer),
// never inspect cluster state synchronously.
func (c *Cluster) OnCapacityChange(fn func()) { c.capacityHooks = append(c.capacityHooks, fn) }

func (c *Cluster) notifyRelease() {
	for _, fn := range c.releaseHooks {
		fn()
	}
}

// GPUAlloc is a grant of one or more GPUs, all of one type (possibly spread
// across VMs). Intensity models how hard the devices compute, driving both
// the utilization trace and the power model.
type GPUAlloc struct {
	ID       int
	cluster  *Cluster
	gpus     []*GPU
	released bool
	// OnPreempt, if set, is invoked when a VM holding any of these GPUs is
	// preempted; the allocation is already released when it runs.
	OnPreempt func()
}

// GPUs returns the granted devices.
func (a *GPUAlloc) GPUs() []*GPU { return a.gpus }

// Count returns the number of granted devices.
func (a *GPUAlloc) Count() int { return len(a.gpus) }

// Released reports whether the allocation has ended.
func (a *GPUAlloc) Released() bool { return a.released }

// SetIntensity sets the compute intensity (clamped to [0,1]) on all granted
// devices from the current simulated time onward.
func (a *GPUAlloc) SetIntensity(x float64) {
	if a.released {
		panic("cluster: SetIntensity on released GPU allocation")
	}
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	now := a.cluster.engine.Now().Seconds()
	for _, g := range a.gpus {
		g.intensity = x
		g.setUtil(now, x)
		g.setPower(now, hardware.GPUPower(g.Spec, x))
	}
	a.cluster.bump()
}

// Release returns the devices to the pool. Idempotent.
func (a *GPUAlloc) Release() {
	if a.released {
		return
	}
	a.released = true
	delete(a.cluster.liveGPU, a.ID)
	now := a.cluster.engine.Now().Seconds()
	for _, g := range a.gpus {
		g.allocated = false
		g.intensity = 0
		g.setUtil(now, 0)
		if !g.vm.preempted {
			g.setPower(now, g.Spec.IdleWatts)
		}
	}
	a.cluster.bump()
	a.cluster.notifyRelease()
}

// AllocGPUs grants n GPUs of type t, preferring to pack them onto as few VMs
// as possible (packing reduces fragmentation, one of the paper's §1
// inefficiencies). Returns an error if fewer than n are free.
func (c *Cluster) AllocGPUs(n int, t hardware.GPUType) (*GPUAlloc, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: non-positive GPU count %d", n)
	}
	free := c.FreeGPUs(t)
	if free < n {
		return nil, fmt.Errorf("cluster: want %d %s GPUs, %d free", n, t, free)
	}
	// Best-fit: VMs with the fewest (but sufficient-for-progress) free GPUs
	// first is complex; we use most-free-first to co-locate multi-GPU grants,
	// falling back to spreading.
	remaining := n
	var grant []*GPU
	for remaining > 0 {
		vm := c.vmWithMostFree(t)
		if vm == nil {
			break
		}
		for _, g := range vm.gpus {
			if remaining == 0 {
				break
			}
			if !g.allocated && g.Spec.Type == t {
				g.allocated = true
				grant = append(grant, g)
				remaining--
			}
		}
	}
	if remaining > 0 {
		// Roll back (cannot happen if FreeGPUs was honest, but keep the
		// invariant airtight).
		for _, g := range grant {
			g.allocated = false
		}
		return nil, fmt.Errorf("cluster: allocation race for %d %s GPUs", n, t)
	}
	c.nextAllocID++
	a := &GPUAlloc{ID: c.nextAllocID, cluster: c, gpus: grant}
	c.liveGPU[a.ID] = a
	c.bump()
	a.SetIntensity(0)
	return a, nil
}

func (c *Cluster) vmWithMostFree(t hardware.GPUType) *VM {
	var best *VM
	bestFree := 0
	for _, vm := range c.vms {
		if vm.preempted || vm.SKU.GPUCount == 0 || vm.SKU.GPU != t {
			continue
		}
		if f := vm.FreeGPUs(); f > bestFree {
			best, bestFree = vm, f
		}
	}
	return best
}

// FreeGPUs counts unallocated GPUs of the given type cluster-wide.
func (c *Cluster) FreeGPUs(t hardware.GPUType) int {
	n := 0
	for _, vm := range c.vms {
		if vm.preempted {
			continue
		}
		for _, g := range vm.gpus {
			if !g.allocated && g.Spec.Type == t {
				n++
			}
		}
	}
	return n
}

// TotalGPUs counts all GPUs of the given type, allocated or not.
func (c *Cluster) TotalGPUs(t hardware.GPUType) int {
	n := 0
	for _, vm := range c.vms {
		for _, g := range vm.gpus {
			if g.Spec.Type == t {
				n++
			}
		}
	}
	return n
}

// CPUAlloc is a grant of CPU cores on a single VM.
type CPUAlloc struct {
	ID        int
	vm        *VM
	cores     int
	intensity float64
	released  bool
	OnPreempt func()
}

// Cores returns the granted core count.
func (a *CPUAlloc) Cores() int { return a.cores }

// VM returns the host VM.
func (a *CPUAlloc) VM() *VM { return a.vm }

// Released reports whether the allocation has ended.
func (a *CPUAlloc) Released() bool { return a.released }

// SetIntensity sets per-core compute intensity in [0,1] from now onward.
func (a *CPUAlloc) SetIntensity(x float64) {
	if a.released {
		panic("cluster: SetIntensity on released CPU allocation")
	}
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	a.vm.cpuLoad += float64(a.cores) * (x - a.intensity)
	a.intensity = x
	a.vm.refreshCPUSeries()
	a.vm.cluster.bump()
}

// Release returns the cores. Idempotent.
func (a *CPUAlloc) Release() {
	if a.released {
		return
	}
	a.released = true
	delete(a.vm.cluster.liveCPU, a.ID)
	if !a.vm.preempted {
		a.vm.cpuInUse -= a.cores
		a.vm.cpuLoad -= float64(a.cores) * a.intensity
		if a.vm.cpuInUse < 0 {
			panic("cluster: CPU in-use below zero")
		}
		a.vm.refreshCPUSeries()
	}
	a.vm.cluster.bump()
	a.vm.cluster.notifyRelease()
}

func (v *VM) refreshCPUSeries() {
	now := v.cluster.engine.Now().Seconds()
	util := 0.0
	if v.cpuTotal > 0 {
		util = v.cpuLoad / float64(v.cpuTotal)
	}
	v.sampleCPU(now, v.cpuLoad, util, hardware.CPUPower(v.cpuSpec, v.cpuTotal, util))
}

// sampleCPU records the VM's CPU load (Σ cores×intensity), utilization and
// power at now, updating the cluster-wide running aggregates by the deltas.
// Preemption passes zeros for all three (a gone machine draws nothing).
func (v *VM) sampleCPU(now, load, util, power float64) {
	c := v.cluster
	c.cpuLoadSumAgg.AddDelta(now, load-v.sampledLoad)
	v.sampledLoad = load
	c.cpuPowerAgg.AddDelta(now, power-v.cpuPower.Last())
	v.cpuUtil.Set(now, util)
	v.cpuPower.Set(now, power)
}

// AllocCPUs grants cores on one VM, choosing the VM with the most free cores
// (load spreading keeps per-VM thermal/power headroom realistic).
func (c *Cluster) AllocCPUs(cores int) (*CPUAlloc, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cluster: non-positive core count %d", cores)
	}
	var best *VM
	for _, vm := range c.vms {
		if vm.preempted || vm.CPUCoresFree() < cores {
			continue
		}
		if best == nil || vm.CPUCoresFree() > best.CPUCoresFree() {
			best = vm
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cluster: no VM with %d free cores (max free %d)", cores, c.MaxFreeCPUCores())
	}
	best.cpuInUse += cores
	c.nextAllocID++
	a := &CPUAlloc{ID: c.nextAllocID, vm: best, cores: cores}
	c.liveCPU[a.ID] = a
	c.bump()
	best.refreshCPUSeries()
	return a, nil
}

// FreeCPUCores counts free cores cluster-wide.
func (c *Cluster) FreeCPUCores() int {
	n := 0
	for _, vm := range c.vms {
		n += vm.CPUCoresFree()
	}
	return n
}

// MaxFreeCPUCores returns the largest single-VM free-core count (the biggest
// CPU allocation that could succeed).
func (c *Cluster) MaxFreeCPUCores() int {
	max := 0
	for _, vm := range c.vms {
		if f := vm.CPUCoresFree(); f > max {
			max = f
		}
	}
	return max
}

// FailAlloc simulates a single device/host fault: one live allocation —
// chosen by pick ∈ [0,1) over GPU allocations then CPU allocations, each
// sorted by ID so the choice is deterministic — is force-released and its
// OnPreempt fires, exactly as under preemption. Unlike PreemptVM the host
// stays up, so reacquisition can land on the same machine. Returns false
// when nothing is allocated.
func (c *Cluster) FailAlloc(pick float64) bool {
	var gpus []*GPUAlloc
	for _, a := range c.liveGPU {
		gpus = append(gpus, a)
	}
	var cpus []*CPUAlloc
	for _, a := range c.liveCPU {
		cpus = append(cpus, a)
	}
	sort.Slice(gpus, func(i, j int) bool { return gpus[i].ID < gpus[j].ID })
	sort.Slice(cpus, func(i, j int) bool { return cpus[i].ID < cpus[j].ID })
	n := len(gpus) + len(cpus)
	if n == 0 {
		return false
	}
	idx := int(pick * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	// Release first, then fire OnPreempt — the same contract PreemptVM
	// gives owners (the allocation is already gone when the callback runs).
	if idx < len(gpus) {
		a := gpus[idx]
		a.Release()
		if a.OnPreempt != nil {
			a.OnPreempt()
		}
	} else {
		a := cpus[idx-len(gpus)]
		a.Release()
		if a.OnPreempt != nil {
			a.OnPreempt()
		}
	}
	return true
}

// PreemptVM simulates a spot eviction: all allocations on the VM are
// released, their OnPreempt callbacks fire, and the VM stops granting.
// Preempting a non-spot VM panics — on-demand VMs are not evicted, and a
// test doing so is testing the wrong thing.
func (c *Cluster) PreemptVM(name string) {
	var vm *VM
	for _, v := range c.vms {
		if v.Name == name {
			vm = v
			break
		}
	}
	if vm == nil {
		panic(fmt.Sprintf("cluster: preempt of unknown VM %q", name))
	}
	if !vm.Spot {
		panic(fmt.Sprintf("cluster: preempt of on-demand VM %q", name))
	}
	if vm.preempted {
		return
	}
	vm.preempted = true
	c.bumpCapacity()
	now := c.engine.Now().Seconds()

	// Force-release every live allocation touching the VM, then fire its
	// OnPreempt so the owner can re-submit the work elsewhere. Multi-VM GPU
	// grants lose the whole allocation: partial grants would leave the owner
	// with an allocation object whose device set silently changed.
	var victimsGPU []*GPUAlloc
	for _, a := range c.liveGPU {
		for _, g := range a.gpus {
			if g.vm == vm {
				victimsGPU = append(victimsGPU, a)
				break
			}
		}
	}
	var victimsCPU []*CPUAlloc
	for _, a := range c.liveCPU {
		if a.vm == vm {
			victimsCPU = append(victimsCPU, a)
		}
	}
	// Map iteration order is random; sort by allocation ID so release hooks
	// fire deterministically (the whole simulation depends on it).
	sort.Slice(victimsGPU, func(i, j int) bool { return victimsGPU[i].ID < victimsGPU[j].ID })
	sort.Slice(victimsCPU, func(i, j int) bool { return victimsCPU[i].ID < victimsCPU[j].ID })
	for _, a := range victimsGPU {
		a.Release()
	}
	for _, a := range victimsCPU {
		a.Release()
	}

	for _, g := range vm.gpus {
		g.allocated = false
		g.intensity = 0
		g.setUtil(now, 0)
		g.setPower(now, 0) // powered off once evicted
	}
	vm.cpuInUse = 0
	vm.cpuLoad = 0
	vm.sampleCPU(now, 0, 0, 0)

	for _, a := range victimsGPU {
		if a.OnPreempt != nil {
			a.OnPreempt()
		}
	}
	for _, a := range victimsCPU {
		if a.OnPreempt != nil {
			a.OnPreempt()
		}
	}
	for _, fn := range c.preemptHooks {
		fn(vm)
	}
}
