package cluster

import (
	"fmt"
	"sort"
)

// This file models Harvest VMs (the paper's [2], "Providing SLOs for
// Resource-Harvesting VMs"): VMs whose CPU capacity varies at runtime as the
// primary tenant's load changes. Growing capacity simply adds free cores;
// shrinking below the allocated count evicts the newest allocations first
// (LIFO — the longest-running work is most worth protecting) and fires
// their OnPreempt callbacks so owners can resubmit.

// SetCPUCapacity changes the VM's core count from the current simulated time
// onward. Shrinking below current usage evicts allocations; growing frees
// queued requests via the cluster's release hooks. Preempted VMs cannot be
// resized.
func (v *VM) SetCPUCapacity(cores int) error {
	if cores < 0 {
		return fmt.Errorf("cluster: negative CPU capacity %d", cores)
	}
	if v.preempted {
		return fmt.Errorf("cluster: resize of preempted VM %q", v.Name)
	}
	if cores == v.cpuTotal {
		return nil
	}
	v.cpuTotal = cores
	v.cluster.bumpCapacity()

	if v.cpuInUse > cores {
		// Evict newest-first until usage fits.
		var victims []*CPUAlloc
		for _, a := range v.cluster.liveCPU {
			if a.vm == v {
				victims = append(victims, a)
			}
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].ID > victims[j].ID })
		for _, a := range victims {
			if v.cpuInUse <= cores {
				break
			}
			a.Release()
			if a.OnPreempt != nil {
				a.OnPreempt()
			}
		}
	}
	v.refreshCPUSeries()
	v.cluster.notifyRelease()
	return nil
}

// CPUCapacity returns the VM's current core count.
func (v *VM) CPUCapacity() int { return v.cpuTotal }
