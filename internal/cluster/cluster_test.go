package cluster

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func testbed(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, hardware.DefaultCatalog())
	// The paper's §4 setup: two ND96amsr_A100_v4 VMs.
	c.AddVM("vm0", hardware.NDv4SKUName, false)
	c.AddVM("vm1", hardware.NDv4SKUName, false)
	return e, c
}

func TestAddVMShape(t *testing.T) {
	_, c := testbed(t)
	if got := c.TotalGPUs(hardware.GPUA100); got != 16 {
		t.Fatalf("total A100s = %d, want 16 (2 VMs × 8)", got)
	}
	if got := c.FreeCPUCores(); got != 192 {
		t.Fatalf("free cores = %d, want 192", got)
	}
}

func TestDuplicateVMNamePanics(t *testing.T) {
	_, c := testbed(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate VM name did not panic")
		}
	}()
	c.AddVM("vm0", hardware.NDv4SKUName, false)
}

func TestGPUAllocPacksOntoOneVM(t *testing.T) {
	_, c := testbed(t)
	a, err := c.AllocGPUs(8, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	vm := a.GPUs()[0].vm
	for _, g := range a.GPUs() {
		if g.vm != vm {
			t.Fatal("8-GPU grant spread across VMs despite one VM having 8 free")
		}
	}
	if c.FreeGPUs(hardware.GPUA100) != 8 {
		t.Fatalf("free = %d after 8-GPU grant, want 8", c.FreeGPUs(hardware.GPUA100))
	}
}

func TestGPUAllocSpillsAcrossVMs(t *testing.T) {
	_, c := testbed(t)
	a, err := c.AllocGPUs(12, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != 12 {
		t.Fatalf("granted %d, want 12", a.Count())
	}
	if c.FreeGPUs(hardware.GPUA100) != 4 {
		t.Fatalf("free = %d, want 4", c.FreeGPUs(hardware.GPUA100))
	}
}

func TestGPUAllocInsufficient(t *testing.T) {
	_, c := testbed(t)
	if _, err := c.AllocGPUs(17, hardware.GPUA100); err == nil {
		t.Fatal("over-capacity grant succeeded")
	}
	if _, err := c.AllocGPUs(1, hardware.GPUH100); err == nil {
		t.Fatal("grant of absent GPU type succeeded")
	}
	if _, err := c.AllocGPUs(0, hardware.GPUA100); err == nil {
		t.Fatal("zero-GPU grant succeeded")
	}
}

func TestGPUReleaseIdempotent(t *testing.T) {
	_, c := testbed(t)
	a, _ := c.AllocGPUs(4, hardware.GPUA100)
	a.Release()
	a.Release()
	if c.FreeGPUs(hardware.GPUA100) != 16 {
		t.Fatalf("free = %d after double release, want 16", c.FreeGPUs(hardware.GPUA100))
	}
}

func TestIntensityDrivesUtilAndPower(t *testing.T) {
	e, c := testbed(t)
	a, _ := c.AllocGPUs(1, hardware.GPUA100)
	g := a.GPUs()[0]
	spec := g.Spec

	e.Schedule(10, func() { a.SetIntensity(1) })
	e.Schedule(20, func() { a.Release() })
	e.Run()

	if got := g.Util().Value(15); got != 1 {
		t.Errorf("util at t=15 = %v, want 1", got)
	}
	if got := g.Util().Value(25); got != 0 {
		t.Errorf("util at t=25 = %v, want 0 after release", got)
	}
	if got := g.Power().Value(15); got != spec.PeakWatts {
		t.Errorf("power at t=15 = %v, want peak %v", got, spec.PeakWatts)
	}
	if got := g.Power().Value(5); got != spec.IdleWatts {
		t.Errorf("power at t=5 = %v, want idle %v", got, spec.IdleWatts)
	}
	// Energy over [0,20]: 10s idle + 10s peak.
	want := spec.IdleWatts*10 + spec.PeakWatts*10
	got := g.Power().Integral(0, 20)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("device energy = %v J, want %v", got, want)
	}
}

func TestIntensityClamped(t *testing.T) {
	_, c := testbed(t)
	a, _ := c.AllocGPUs(1, hardware.GPUA100)
	a.SetIntensity(7)
	if got := a.GPUs()[0].intensity; got != 1 {
		t.Fatalf("intensity = %v, want clamped to 1", got)
	}
	a.SetIntensity(-2)
	if got := a.GPUs()[0].intensity; got != 0 {
		t.Fatalf("intensity = %v, want clamped to 0", got)
	}
}

func TestSetIntensityAfterReleasePanics(t *testing.T) {
	_, c := testbed(t)
	a, _ := c.AllocGPUs(1, hardware.GPUA100)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("SetIntensity after release did not panic")
		}
	}()
	a.SetIntensity(0.5)
}

func TestCPUAllocAndUtil(t *testing.T) {
	e, c := testbed(t)
	a, err := c.AllocCPUs(96)
	if err != nil {
		t.Fatal(err)
	}
	a.SetIntensity(1)
	e.Schedule(50, func() { a.Release() })
	e.Run()

	vm := a.VM()
	if got := vm.CPUUtil().Value(25); got != 1 {
		t.Errorf("vm cpu util = %v during full-load alloc, want 1", got)
	}
	if got := vm.CPUUtil().Value(60); got != 0 {
		t.Errorf("vm cpu util = %v after release, want 0", got)
	}
	// Cluster-wide CPU util averages over both VMs: 96 of 192 cores busy.
	if got := c.CPUUtilSeries().Value(25); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("cluster cpu util = %v, want 0.5", got)
	}
}

func TestCPUAllocTooLarge(t *testing.T) {
	_, c := testbed(t)
	if _, err := c.AllocCPUs(97); err == nil {
		t.Fatal("alloc larger than any single VM succeeded")
	}
	if got := c.MaxFreeCPUCores(); got != 96 {
		t.Fatalf("max free cores = %d, want 96", got)
	}
}

func TestCPUAllocSpreads(t *testing.T) {
	_, c := testbed(t)
	a1, _ := c.AllocCPUs(50)
	a2, _ := c.AllocCPUs(50)
	if a1.VM() == a2.VM() {
		t.Fatal("second 50-core alloc landed on the loaded VM; want spreading")
	}
}

func TestPartialCPUIntensity(t *testing.T) {
	_, c := testbed(t)
	a, _ := c.AllocCPUs(48) // half the VM
	a.SetIntensity(0.5)
	// Load = 48 × 0.5 = 24 of 96 cores → 0.25 VM util.
	if got := a.VM().CPUUtil().Last(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("vm util = %v, want 0.25", got)
	}
}

func TestGPUEnergyIdleBaseline(t *testing.T) {
	e, c := testbed(t)
	e.Schedule(100, func() {})
	e.Run()
	// 16 idle A100s for 100s.
	idle := hardware.DefaultCatalog().MustGPU(hardware.GPUA100).IdleWatts
	want := 16 * idle * 100
	got := c.GPUEnergyJoules(0, 100)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("idle energy = %v J, want %v", got, want)
	}
	// Sanity: Wh conversion matches Table 2's unit.
	if wh := telemetry.JoulesToWh(got); math.Abs(wh-want/3600) > 1e-9 {
		t.Fatalf("Wh conversion broken: %v", wh)
	}
}

func TestRentalCost(t *testing.T) {
	_, c := testbed(t)
	sku := hardware.DefaultCatalog().MustVM(hardware.NDv4SKUName)
	got := c.RentalCostUSD(0, 3600)
	want := 2 * sku.HourlyUSD
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("1h rental = $%v, want $%v", got, want)
	}
}

func TestSpotRentalDiscount(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, hardware.DefaultCatalog())
	c.AddVM("spot0", hardware.NDv4SKUName, true)
	sku := hardware.DefaultCatalog().MustVM(hardware.NDv4SKUName)
	got := c.RentalCostUSD(0, 3600)
	want := sku.HourlyUSD * (1 - sku.SpotDiscount)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("spot rental = $%v, want $%v", got, want)
	}
}

func TestOnReleaseHook(t *testing.T) {
	_, c := testbed(t)
	calls := 0
	c.OnRelease(func() { calls++ })
	a, _ := c.AllocGPUs(2, hardware.GPUA100)
	a.Release()
	if calls != 1 {
		t.Fatalf("release hook calls = %d, want 1", calls)
	}
	b, _ := c.AllocCPUs(4)
	b.Release()
	if calls != 2 {
		t.Fatalf("release hook calls = %d, want 2", calls)
	}
}

func TestSnapshot(t *testing.T) {
	_, c := testbed(t)
	a, _ := c.AllocGPUs(8, hardware.GPUA100)
	a.SetIntensity(1)
	b, _ := c.AllocCPUs(96)
	b.SetIntensity(0.5)

	s := c.Snapshot()
	if s.FreeGPUs[hardware.GPUA100] != 8 {
		t.Errorf("snapshot free GPUs = %d, want 8", s.FreeGPUs[hardware.GPUA100])
	}
	if s.TotalGPUs[hardware.GPUA100] != 16 {
		t.Errorf("snapshot total GPUs = %d, want 16", s.TotalGPUs[hardware.GPUA100])
	}
	if s.FreeCPUCores != 96 {
		t.Errorf("snapshot free cores = %d, want 96", s.FreeCPUCores)
	}
	if math.Abs(s.MeanGPUUtil-0.5) > 1e-9 {
		t.Errorf("mean gpu util = %v, want 0.5 (8 of 16 at full)", s.MeanGPUUtil)
	}
	if math.Abs(s.MeanCPUUtil-0.25) > 1e-9 {
		t.Errorf("mean cpu util = %v, want 0.25 (48 of 192 effective)", s.MeanCPUUtil)
	}
}

func TestPreemptReleasesAndNotifies(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, hardware.DefaultCatalog())
	c.AddVM("spot0", hardware.NDv4SKUName, true)
	c.AddVM("od0", hardware.NDv4SKUName, false)

	gpuPreempted, cpuPreempted := false, false
	a, _ := c.AllocGPUs(8, hardware.GPUA100) // lands on one VM
	a.OnPreempt = func() { gpuPreempted = true }
	b, _ := c.AllocCPUs(10)
	b.OnPreempt = func() { cpuPreempted = true }

	var hookVM *VM
	c.OnPreempt(func(vm *VM) { hookVM = vm })

	// Find which VM got the GPU grant; preempt that one if spot, else skip.
	victim := a.GPUs()[0].vm
	if !victim.Spot {
		t.Skip("grant landed on on-demand VM; packing picked od0")
	}
	c.PreemptVM(victim.Name)

	if !a.Released() {
		t.Error("GPU allocation not force-released on preemption")
	}
	if !gpuPreempted {
		t.Error("GPU OnPreempt not fired")
	}
	if b.VM() == victim {
		if !cpuPreempted || !b.Released() {
			t.Error("CPU allocation on victim not preempted")
		}
	}
	if hookVM != victim {
		t.Error("cluster preempt hook not fired with victim VM")
	}
	if victim.FreeGPUs() != 0 || victim.CPUCoresFree() != 0 {
		t.Error("preempted VM still offers capacity")
	}
	// Remaining capacity only from the surviving VM.
	if got := c.FreeGPUs(hardware.GPUA100); got != 8 {
		t.Errorf("free GPUs after preemption = %d, want 8", got)
	}
}

func TestPreemptOnDemandPanics(t *testing.T) {
	_, c := testbed(t)
	defer func() {
		if recover() == nil {
			t.Fatal("preempting on-demand VM did not panic")
		}
	}()
	c.PreemptVM("vm0")
}

func TestPreemptedGPUDrawsNoPower(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, hardware.DefaultCatalog())
	vm := c.AddVM("spot0", hardware.NDv4SKUName, true)
	e.Schedule(10, func() { c.PreemptVM("spot0") })
	e.Schedule(20, func() {})
	e.Run()
	g := vm.GPUs()[0]
	if got := g.Power().Value(15); got != 0 {
		t.Fatalf("preempted GPU draws %v W, want 0", got)
	}
	idle := g.Spec.IdleWatts
	want := idle * 10 // only the first 10s
	if got := g.Power().Integral(0, 20); math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

// Conservation property: random alloc/release sequences never let free+used
// diverge from total, and free is never negative.
func TestPropertyAllocationConservation(t *testing.T) {
	_, c := testbed(t)
	var live []*GPUAlloc
	seq := []int{3, 5, 2, 8, 1, 4, 6, 2, 7, 3}
	for i, n := range seq {
		if a, err := c.AllocGPUs(n, hardware.GPUA100); err == nil {
			live = append(live, a)
		}
		if i%2 == 1 && len(live) > 0 {
			live[0].Release()
			live = live[1:]
		}
		used := 0
		for _, a := range live {
			used += a.Count()
		}
		free := c.FreeGPUs(hardware.GPUA100)
		if free < 0 || free+used != 16 {
			t.Fatalf("step %d: free %d + used %d != 16", i, free, used)
		}
	}
}

// TestGenerationCounters: every state change must move Gen (so memoized
// snapshots invalidate), while CapacityGen moves only on fleet changes (the
// optimistic plan-commit validity check).
func TestGenerationCounters(t *testing.T) {
	_, c := testbed(t)
	g0, cg0 := c.Gen(), c.CapacityGen()

	a, _ := c.AllocGPUs(2, hardware.GPUA100)
	if c.Gen() == g0 {
		t.Error("AllocGPUs did not move Gen")
	}
	g1 := c.Gen()
	a.SetIntensity(0.7)
	if c.Gen() == g1 {
		t.Error("SetIntensity did not move Gen")
	}
	g2 := c.Gen()
	b, _ := c.AllocCPUs(8)
	if c.Gen() == g2 {
		t.Error("AllocCPUs did not move Gen")
	}
	g3 := c.Gen()
	b.Release()
	a.Release()
	if c.Gen() == g3 {
		t.Error("Release did not move Gen")
	}
	if c.CapacityGen() != cg0 {
		t.Errorf("capacity generation moved on alloc/free (%d → %d): plans would conflict needlessly",
			cg0, c.CapacityGen())
	}

	c.AddVM("vm2", hardware.NDv4SKUName, true)
	if c.CapacityGen() == cg0 {
		t.Error("AddVM did not move CapacityGen")
	}
	cg1 := c.CapacityGen()
	c.PreemptVM("vm2")
	if c.CapacityGen() == cg1 {
		t.Error("PreemptVM did not move CapacityGen")
	}
	cg2 := c.CapacityGen()
	if err := c.VMs()[0].SetCPUCapacity(48); err != nil {
		t.Fatal(err)
	}
	if c.CapacityGen() == cg2 {
		t.Error("SetCPUCapacity did not move CapacityGen")
	}
}

// TestSnapshotMemoization: repeat snapshots between state changes must return
// identical content (the maps may be shared — callers treat snapshots as
// immutable), refresh Time, and rebuild after any mutation.
func TestSnapshotMemoization(t *testing.T) {
	e, c := testbed(t)
	s1 := c.Snapshot()
	e.After(2, func() {})
	e.Run()
	s2 := c.Snapshot()
	if s2.Time != 2 {
		t.Errorf("memoized snapshot Time = %v, want refreshed 2", s2.Time)
	}
	if s2.FreeGPUs[hardware.GPUA100] != s1.FreeGPUs[hardware.GPUA100] ||
		s2.FreeCPUCores != s1.FreeCPUCores {
		t.Errorf("unchanged cluster, changed snapshot: %+v vs %+v", s1, s2)
	}

	a, _ := c.AllocGPUs(3, hardware.GPUA100)
	s3 := c.Snapshot()
	if s3.FreeGPUs[hardware.GPUA100] != 13 {
		t.Errorf("post-alloc snapshot free GPUs = %d, want 13", s3.FreeGPUs[hardware.GPUA100])
	}
	// The earlier snapshot must be immutable: the rebuild may not have
	// touched the maps a concurrent off-loop reader could still hold.
	if s1.FreeGPUs[hardware.GPUA100] != 16 {
		t.Errorf("captured snapshot mutated by later state change: free = %d, want 16",
			s1.FreeGPUs[hardware.GPUA100])
	}
	a.Release()
	if got := c.Snapshot().FreeGPUs[hardware.GPUA100]; got != 16 {
		t.Errorf("post-release snapshot free GPUs = %d, want 16", got)
	}
}

func TestOnCapacityChangeHookFires(t *testing.T) {
	se := sim.NewEngine()
	c := New(se, hardware.DefaultCatalog())
	fired := 0
	c.OnCapacityChange(func() { fired++ })
	c.AddVM("vm0", hardware.NDv4SKUName, true)
	if fired != 1 {
		t.Fatalf("AddVM fired %d hooks, want 1", fired)
	}
	gen := c.CapacityGen()
	c.PreemptVM("vm0")
	if fired != 2 {
		t.Fatalf("PreemptVM fired %d hooks total, want 2", fired)
	}
	if c.CapacityGen() != gen+1 {
		t.Fatalf("capacity gen = %d, want %d", c.CapacityGen(), gen+1)
	}
	// Allocation churn must not fire capacity hooks.
	c.AddVM("vm1", hardware.NDv4SKUName, false)
	before := fired
	a, err := c.AllocGPUs(2, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	a.SetIntensity(0.5)
	a.Release()
	if fired != before {
		t.Fatalf("alloc/free fired capacity hooks (%d -> %d)", before, fired)
	}
}
