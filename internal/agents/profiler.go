package agents

import (
	"fmt"
	"strings"

	"repro/internal/contentkey"
	"repro/internal/hardware"
	"repro/internal/profiles"
)

// Profiler implements §3.3(a): "To be able to offer different resource
// configurations, we need to profile the agents and tools on different
// hardware and configurations. However, this profiling is amortized over the
// lifetime of all the workflows."
//
// It measures each (implementation, candidate config) pair by running probe
// executions at two work sizes and fitting the affine latency model the
// optimizer consumes. Device intensities and quality are read from the
// implementation's declared characteristics (in the real system these come
// from hardware counters and eval suites respectively).
type Profiler struct {
	catalog *hardware.Catalog
	// ProbeSmall and ProbeLarge are the two probe work sizes; they must
	// differ. Defaults are 1 and 100 units.
	ProbeSmall, ProbeLarge float64
	// profiled counts probe executions performed (for the amortization
	// accounting in overhead reports).
	probes int
}

// NewProfiler returns a profiler over a catalog.
func NewProfiler(cat *hardware.Catalog) *Profiler {
	return &Profiler{catalog: cat, ProbeSmall: 1, ProbeLarge: 100}
}

// Probes returns how many probe executions have been run.
func (p *Profiler) Probes() int { return p.probes }

// ProfileImplementation measures one implementation under one config.
func (p *Profiler) ProfileImplementation(im *Implementation, cfg profiles.ResourceConfig) (profiles.Profile, error) {
	if p.ProbeSmall == p.ProbeLarge {
		return profiles.Profile{}, fmt.Errorf("agents: probe sizes must differ")
	}
	latSmall, err := im.Perf.LatencyS(p.ProbeSmall, cfg, p.catalog)
	if err != nil {
		return profiles.Profile{}, err
	}
	latLarge, err := im.Perf.LatencyS(p.ProbeLarge, cfg, p.catalog)
	if err != nil {
		return profiles.Profile{}, err
	}
	p.probes += 2
	perUnit := (latLarge - latSmall) / (p.ProbeLarge - p.ProbeSmall)
	base := latSmall - p.ProbeSmall*perUnit
	if base < 0 {
		base = 0
	}
	gpuIntensity := 0.0
	if cfg.GPUs > 0 {
		gpuIntensity = im.Perf.GPUIntensity
	}
	cpuIntensity := 0.0
	if cfg.CPUCores > 0 {
		cpuIntensity = im.Perf.CPUIntensity
	}
	return profiles.Profile{
		Implementation: im.Name,
		Capability:     string(im.Capability),
		Config:         cfg,
		BaseS:          base,
		PerUnitS:       perUnit,
		GPUIntensity:   gpuIntensity,
		CPUIntensity:   cpuIntensity,
		Quality:        im.Quality,
	}, nil
}

// SharedProfiles returns the profile store for (catalog, library), profiling
// at most once per distinct content and handing every caller a copy-on-write
// view of the memoized result — §3.3(a)'s "profiling is amortized over the
// lifetime of all the workflows" made literal. Experiments that build a
// fresh testbed per load point hit the same master store as long as their
// catalog and library contents match; callers that mutate their view
// (calibration tests) detach automatically and cannot perturb anyone else.
//
// The content key lives in profiles.Shared rather than taking the library
// directly because profiles must not import agents (agents consumes
// profiles).
func SharedProfiles(cat *hardware.Catalog, lib *Library) (*profiles.Store, error) {
	return SharedProfilesIn(nil, cat, lib)
}

// SharedProfilesIn is SharedProfiles against an explicit registry, for
// cluster nodes that keep per-node profile state and warm it by replication
// rather than through the process-wide default. A nil registry selects
// profiles.DefaultRegistry, making SharedProfilesIn(nil, ...) identical to
// SharedProfiles.
func SharedProfilesIn(reg *profiles.Registry, cat *hardware.Catalog, lib *Library) (*profiles.Store, error) {
	if reg == nil {
		reg = profiles.DefaultRegistry()
	}
	// Length-prefix both fingerprints so the joint key inherits their
	// injectivity (a bare separator could be forged by a name payload).
	var key strings.Builder
	contentkey.WriteString(&key, cat.Fingerprint())
	contentkey.WriteString(&key, lib.Fingerprint())
	return reg.Shared(key.String(), func() (*profiles.Store, error) {
		return NewProfiler(cat).ProfileLibrary(lib)
	})
}

// ProfileLibrary measures every implementation in the library across its
// candidate configs, returning the populated store. This is the "when a new
// one is added to the library" path, run once per library construction.
func (p *Profiler) ProfileLibrary(lib *Library) (*profiles.Store, error) {
	store := profiles.NewStore()
	for _, cap := range lib.Capabilities() {
		for _, im := range lib.ByCapability(cap) {
			for _, cfg := range im.CandidateConfigs(p.catalog) {
				prof, err := p.ProfileImplementation(im, cfg)
				if err != nil {
					return nil, fmt.Errorf("profiling %s on %v: %w", im.Name, cfg, err)
				}
				if err := store.Put(prof); err != nil {
					return nil, err
				}
			}
		}
	}
	return store, nil
}
