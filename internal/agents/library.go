package agents

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Library is the runtime's registry of implementations, "detailing their
// names, functionalities, and schemas" (§3.2 Task-to-Agent Mapping). The
// planner-LLM receives its summary as a system prompt; the optimizer
// enumerates its implementations per capability.
type Library struct {
	byName map[string]*Implementation
	byCap  map[Capability][]*Implementation
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{
		byName: make(map[string]*Implementation),
		byCap:  make(map[Capability][]*Implementation),
	}
}

// Register adds an implementation. Duplicate names are an error.
func (l *Library) Register(im Implementation) error {
	if err := im.Validate(); err != nil {
		return err
	}
	if _, dup := l.byName[im.Name]; dup {
		return fmt.Errorf("agents: duplicate implementation %q", im.Name)
	}
	cp := im
	l.byName[im.Name] = &cp
	l.byCap[im.Capability] = append(l.byCap[im.Capability], &cp)
	return nil
}

// MustRegister is Register for construction code.
func (l *Library) MustRegister(im Implementation) {
	if err := l.Register(im); err != nil {
		panic(err)
	}
}

// Get returns an implementation by name.
func (l *Library) Get(name string) (*Implementation, bool) {
	im, ok := l.byName[name]
	return im, ok
}

// ByCapability returns implementations providing a capability, sorted by
// name for determinism.
func (l *Library) ByCapability(c Capability) []*Implementation {
	list := make([]*Implementation, len(l.byCap[c]))
	copy(list, l.byCap[c])
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// Capabilities returns the capabilities with at least one implementation,
// sorted.
func (l *Library) Capabilities() []Capability {
	out := make([]Capability, 0, len(l.byCap))
	for c := range l.byCap {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the implementation count.
func (l *Library) Len() int { return len(l.byName) }

// SystemPrompt renders the library as the agent-catalog system prompt the
// paper describes feeding the orchestrator LLM ("Murakkab provides the agent
// library via the system prompt").
func (l *Library) SystemPrompt() string {
	var b strings.Builder
	b.WriteString("You are an orchestrator that decomposes jobs into tasks and assigns agents.\n")
	b.WriteString("Available agents:\n")
	for _, c := range l.Capabilities() {
		for _, im := range l.ByCapability(c) {
			fmt.Fprintf(&b, "- %s (%s, %s): capability=%s", im.Name, im.Kind, paramsLabel(im.ParamsB), c)
			if len(im.Args) > 0 {
				names := make([]string, len(im.Args))
				for i, a := range im.Args {
					suffix := ""
					if a.Required {
						suffix = "*"
					}
					names[i] = a.Name + ":" + a.Type + suffix
				}
				fmt.Fprintf(&b, " args(%s)", strings.Join(names, ", "))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func paramsLabel(b float64) string {
	if b == 0 {
		return "tool"
	}
	return strconv.FormatFloat(b, 'g', 3, 64) + "B params"
}

// ToolCall is an executable agent invocation the planner-LLM generates, e.g.
// FrameExtractor(start_time=0, end_time=60s, num_frames=10, file="cats.mov").
type ToolCall struct {
	Agent string
	Args  map[string]string
}

// String renders the call in function-call syntax (deterministic arg order).
func (tc ToolCall) String() string {
	keys := make([]string, 0, len(tc.Args))
	for k := range tc.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, tc.Args[k])
	}
	return fmt.Sprintf("%s(%s)", tc.Agent, strings.Join(parts, ", "))
}

// ValidateCall checks a tool call against the named agent's schema:
// the agent must exist, required args must be present, no unknown args, and
// typed args must parse.
func (l *Library) ValidateCall(tc ToolCall) error {
	im, ok := l.byName[tc.Agent]
	if !ok {
		return fmt.Errorf("agents: tool call to unknown agent %q", tc.Agent)
	}
	known := map[string]ArgSpec{}
	for _, a := range im.Args {
		known[a.Name] = a
		if a.Required {
			if _, present := tc.Args[a.Name]; !present {
				return fmt.Errorf("agents: call to %s missing required arg %q", tc.Agent, a.Name)
			}
		}
	}
	for name, val := range tc.Args {
		spec, ok := known[name]
		if !ok {
			return fmt.Errorf("agents: call to %s has unknown arg %q", tc.Agent, name)
		}
		switch spec.Type {
		case "int":
			if _, err := strconv.Atoi(val); err != nil {
				return fmt.Errorf("agents: call to %s arg %q = %q is not an int", tc.Agent, name, val)
			}
		case "float":
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("agents: call to %s arg %q = %q is not a float", tc.Agent, name, val)
			}
		case "string", "path":
			// any value accepted
		default:
			return fmt.Errorf("agents: schema of %s has unknown type %q", tc.Agent, spec.Type)
		}
	}
	return nil
}
