package agents

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/contentkey"
)

// Library is the runtime's registry of implementations, "detailing their
// names, functionalities, and schemas" (§3.2 Task-to-Agent Mapping). The
// planner-LLM receives its summary as a system prompt; the optimizer
// enumerates its implementations per capability.
type Library struct {
	byName map[string]*Implementation
	byCap  map[Capability][]*Implementation
	// gen counts registrations, letting caches keyed on library content
	// (plan cache, shared profile stores) detect additions in O(1).
	gen int
	// promptCache memoizes SystemPrompt for promptGen == gen; the planner
	// renders the prompt on every decomposition, and the library rarely
	// changes after construction. fpCache does the same for Fingerprint,
	// which every testbed construction consults for the shared profile key.
	promptCache string
	promptGen   int
	fpCache     string
	fpGen       int
	// sortedByCap / capsCache memoize the sorted per-capability lists and the
	// sorted capability set per generation: every planner/optimizer pass walks
	// them, and re-sorting per call dominated library allocations.
	sortedByCap map[Capability][]*Implementation
	sortedGen   int
	capsCache   []Capability
	capsGen     int
	// borrowed marks a copy-on-write view: the maps above are shared with
	// the template (and possibly other views on other goroutines), so they
	// are read-only until the first registration materializes this library's
	// own maps (ensureOwned). Scalar memo fields are per-copy and stay
	// writable.
	borrowed bool
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{
		byName: make(map[string]*Implementation),
		byCap:  make(map[Capability][]*Implementation),
	}
}

// ensureOwned materializes a borrowed view's own maps before its first
// mutation, so the template (and sibling views on other goroutines) never
// observe a write. byCap slices are capacity-capped so a later append
// reallocates instead of growing into a shared backing array; the sorted
// memo is dropped and rebuilt lazily into a fresh map.
func (l *Library) ensureOwned() {
	if !l.borrowed {
		return
	}
	l.borrowed = false
	byName := make(map[string]*Implementation, len(l.byName)+1)
	for name, im := range l.byName {
		byName[name] = im
	}
	l.byName = byName
	byCap := make(map[Capability][]*Implementation, len(l.byCap)+1)
	for c, list := range l.byCap {
		byCap[c] = list[:len(list):len(list)]
	}
	l.byCap = byCap
	l.sortedByCap = nil
}

// Register adds an implementation. Duplicate names are an error.
func (l *Library) Register(im Implementation) error {
	if err := im.Validate(); err != nil {
		return err
	}
	l.ensureOwned()
	if _, dup := l.byName[im.Name]; dup {
		return fmt.Errorf("agents: duplicate implementation %q", im.Name)
	}
	cp := im
	l.byName[im.Name] = &cp
	l.byCap[im.Capability] = append(l.byCap[im.Capability], &cp)
	l.gen++
	return nil
}

// Gen returns the library's registration generation.
func (l *Library) Gen() int { return l.gen }

// Fingerprint renders the library's full content deterministically and
// injectively: string fields are length-prefixed and numbers
// semicolon-terminated, so no two distinct libraries share a fingerprint
// even with adversarial names — the key contract behind SharedProfiles.
// Every Implementation field must be serialized here; a field added to the
// struct without a line below silently escapes content keying. The
// rendering is memoized until the next registration.
func (l *Library) Fingerprint() string {
	if l.fpCache != "" && l.fpGen == l.gen {
		return l.fpCache
	}
	var b strings.Builder
	str := func(s string) { contentkey.WriteString(&b, s) }
	num := func(f float64) { contentkey.WriteFloat(&b, f) }
	for _, c := range l.Capabilities() {
		for _, im := range l.byCapabilitySorted(c) {
			str(im.Name)
			str(string(im.Capability))
			str(string(im.Kind))
			num(im.ParamsB)
			num(im.Quality)
			p := im.Perf
			num(p.BaseS)
			num(p.GPUUnitS)
			num(p.CPUCoreUnitS)
			num(p.GPUParallelExp)
			num(p.CPUParallelExp)
			num(p.GPUIntensity)
			num(p.CPUIntensity)
			str(string(p.RefGPU))
			contentkey.WriteInt(&b, p.MinGPUs)
			contentkey.WriteInt(&b, p.MaxGPUs)
			contentkey.WriteInt(&b, p.MinCores)
			contentkey.WriteInt(&b, p.MaxCores)
			for _, a := range im.Args {
				str(a.Name)
				str(a.Type)
				if a.Required {
					b.WriteByte('!')
				}
				b.WriteByte(';')
			}
			b.WriteByte('|')
		}
	}
	l.fpCache = b.String()
	l.fpGen = l.gen
	return l.fpCache
}

// MustRegister is Register for construction code.
func (l *Library) MustRegister(im Implementation) {
	if err := l.Register(im); err != nil {
		panic(err)
	}
}

// Get returns an implementation by name. The returned value is a defensive
// copy (Args included): registered implementations are immutable, which is
// what lets the content-keyed caches (Fingerprint, SystemPrompt,
// SharedProfiles, the runtime's plan cache) trust the registration
// generation. Mutating the copy does not change the library; re-register
// under a new name instead.
func (l *Library) Get(name string) (*Implementation, bool) {
	im, ok := l.byName[name]
	if !ok {
		return nil, false
	}
	return im.clone(), true
}

// Lookup returns the registry's own pointer for an implementation — no
// defensive copy. It exists for hot read-only paths (the runtime's stage
// dispatch and engine-acquisition checks) where Get's per-call clone shows
// up in allocation profiles. The contract is strict: callers must treat the
// result (Args included) as immutable; use Get when a mutable copy is
// needed.
func (l *Library) Lookup(name string) (*Implementation, bool) {
	im, ok := l.byName[name]
	return im, ok
}

// clone deep-copies an implementation (the Args slice gets its own backing
// array so no mutation path back into the registry exists).
func (im *Implementation) clone() *Implementation {
	cp := *im
	if len(im.Args) > 0 {
		cp.Args = append([]ArgSpec(nil), im.Args...)
	}
	return &cp
}

// ByCapability returns implementations providing a capability, sorted by
// name for determinism. Like Get, the elements are defensive copies.
func (l *Library) ByCapability(c Capability) []*Implementation {
	raw := l.byCapabilitySorted(c)
	list := make([]*Implementation, len(raw))
	for i, im := range raw {
		list[i] = im.clone()
	}
	return list
}

// byCapabilitySorted returns the registry's own pointers sorted by name —
// for internal read-only iteration that must not pay the defensive clone.
// The result is memoized per registration generation.
func (l *Library) byCapabilitySorted(c Capability) []*Implementation {
	if l.sortedByCap != nil && l.sortedGen == l.gen {
		if list, ok := l.sortedByCap[c]; ok {
			return list
		}
	}
	if l.borrowed {
		// The memo map is shared (possibly across goroutines); compute
		// without caching. The template behind DefaultLibrary pre-warms
		// every registered capability, so this path only runs for
		// capabilities the library does not provide.
		return sortCapList(l.byCap[c])
	}
	if l.sortedByCap == nil || l.sortedGen != l.gen {
		l.sortedByCap = make(map[Capability][]*Implementation, len(l.byCap))
		l.sortedGen = l.gen
	}
	list := sortCapList(l.byCap[c])
	l.sortedByCap[c] = list
	return list
}

func sortCapList(raw []*Implementation) []*Implementation {
	list := make([]*Implementation, len(raw))
	copy(list, raw)
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// Implementations returns the registry's own implementation pointers for a
// capability, sorted by name. The returned slice and the pointed-to values
// are shared and must be treated as read-only — this is the no-copy fast
// path for read-heavy consumers (the optimizer's per-plan enumeration);
// anything that wants to mutate must use Get/ByCapability.
func (l *Library) Implementations(c Capability) []*Implementation {
	return l.byCapabilitySorted(c)
}

// HasCapability reports whether at least one implementation provides c,
// without the copying ByCapability does.
func (l *Library) HasCapability(c Capability) bool { return len(l.byCap[c]) > 0 }

// Capabilities returns the capabilities with at least one implementation,
// sorted. The returned slice is a shared memoized view; callers must not
// modify it.
func (l *Library) Capabilities() []Capability {
	if l.capsCache != nil && l.capsGen == l.gen {
		return l.capsCache
	}
	out := make([]Capability, 0, len(l.byCap))
	for c := range l.byCap {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	l.capsCache, l.capsGen = out, l.gen
	return out
}

// copyShared returns a copy-on-write view of the library: one struct copy
// sharing every map, slice and memoized view (fingerprint, prompt, sorted
// lists) with the template. Reads are safe from any number of views on any
// goroutine — the template behind DefaultLibrary is pre-warmed so read paths
// never write the shared memo maps. The first Register on a view
// materializes its own maps (ensureOwned), so the template and sibling views
// stay untouched.
func (l *Library) copyShared() *Library {
	cp := *l
	cp.borrowed = true
	return &cp
}

// Len returns the implementation count.
func (l *Library) Len() int { return len(l.byName) }

// SystemPrompt renders the library as the agent-catalog system prompt the
// paper describes feeding the orchestrator LLM ("Murakkab provides the agent
// library via the system prompt"). The rendering is memoized until the next
// registration.
func (l *Library) SystemPrompt() string {
	if l.promptCache != "" && l.promptGen == l.gen {
		return l.promptCache
	}
	var b strings.Builder
	b.WriteString("You are an orchestrator that decomposes jobs into tasks and assigns agents.\n")
	b.WriteString("Available agents:\n")
	for _, c := range l.Capabilities() {
		for _, im := range l.byCapabilitySorted(c) {
			fmt.Fprintf(&b, "- %s (%s, %s): capability=%s", im.Name, im.Kind, paramsLabel(im.ParamsB), c)
			if len(im.Args) > 0 {
				names := make([]string, len(im.Args))
				for i, a := range im.Args {
					suffix := ""
					if a.Required {
						suffix = "*"
					}
					names[i] = a.Name + ":" + a.Type + suffix
				}
				fmt.Fprintf(&b, " args(%s)", strings.Join(names, ", "))
			}
			b.WriteString("\n")
		}
	}
	l.promptCache = b.String()
	l.promptGen = l.gen
	return l.promptCache
}

func paramsLabel(b float64) string {
	if b == 0 {
		return "tool"
	}
	return strconv.FormatFloat(b, 'g', 3, 64) + "B params"
}

// ToolCall is an executable agent invocation the planner-LLM generates, e.g.
// FrameExtractor(start_time=0, end_time=60s, num_frames=10, file="cats.mov").
type ToolCall struct {
	Agent string
	Args  map[string]string
}

// String renders the call in function-call syntax (deterministic arg order).
func (tc ToolCall) String() string {
	keys := make([]string, 0, len(tc.Args))
	for k := range tc.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, tc.Args[k])
	}
	return fmt.Sprintf("%s(%s)", tc.Agent, strings.Join(parts, ", "))
}

// ValidateCall checks a tool call against the named agent's schema:
// the agent must exist, required args must be present, no unknown args, and
// typed args must parse.
func (l *Library) ValidateCall(tc ToolCall) error {
	im, ok := l.byName[tc.Agent]
	if !ok {
		return fmt.Errorf("agents: tool call to unknown agent %q", tc.Agent)
	}
	known := map[string]ArgSpec{}
	for _, a := range im.Args {
		known[a.Name] = a
		if a.Required {
			if _, present := tc.Args[a.Name]; !present {
				return fmt.Errorf("agents: call to %s missing required arg %q", tc.Agent, a.Name)
			}
		}
	}
	for name, val := range tc.Args {
		spec, ok := known[name]
		if !ok {
			return fmt.Errorf("agents: call to %s has unknown arg %q", tc.Agent, name)
		}
		switch spec.Type {
		case "int":
			if _, err := strconv.Atoi(val); err != nil {
				return fmt.Errorf("agents: call to %s arg %q = %q is not an int", tc.Agent, name, val)
			}
		case "float":
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				return fmt.Errorf("agents: call to %s arg %q = %q is not a float", tc.Agent, name, val)
			}
		case "string", "path":
			// any value accepted
		default:
			return fmt.Errorf("agents: schema of %s has unknown type %q", tc.Agent, spec.Type)
		}
	}
	return nil
}
