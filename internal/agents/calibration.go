package agents

import (
	"sync"

	"repro/internal/hardware"
)

// This file defines the default agent library with its calibration
// constants. Work units per capability:
//
//	frame-extraction    frames
//	speech-to-text      seconds of audio
//	object-detection    frames
//	scene-summarization tokens (prompt+completion, weighted)
//	embedding           tokens
//	question-answering  tokens
//	sentiment-analysis  documents
//	web-search          queries
//	ranking             items
//	calculator          expressions
//
// The constants are calibrated so the §4 Video Understanding workflow lands
// near the paper's absolute numbers (baseline ≈ 283 s; Murakkab 77–83 s;
// 34–43 Wh GPU energy). Relative behaviour — which config is fastest,
// which is cheapest, where GPUs beat CPUs — is emergent, not hard-coded:
// these are per-unit processing rates, not per-experiment outcomes.
// EXPERIMENTS.md records paper-vs-measured for every cell.

// Implementation names (referenced by the planner templates and tests).
const (
	ImplOpenCV        = "opencv-frame-extractor"
	ImplDALI          = "dali-frame-extractor"
	ImplWhisper       = "whisper-large-v3"
	ImplFastConformer = "fast-conformer"
	ImplDeepSpeech    = "deepspeech"
	ImplCLIP          = "clip-vit-l"
	ImplSigLIP        = "siglip-so400m"
	ImplNVLM          = "nvlm-d-72b"
	ImplLlama8B       = "llama-3.1-8b"
	ImplLlama70B      = "llama-3.1-70b"
	ImplNVLMEmbed     = "nvlm-embed"
	ImplMiniLMEmbed   = "minilm-embed"
	ImplDistilSent    = "distilbert-sentiment"
	ImplWebSearch     = "web-search"
	ImplBM25Rank      = "bm25-ranker"
	ImplCalculator    = "calculator"
)

// DefaultLibrary returns the agent library used throughout the evaluation.
// The registry content is built once per process into an immutable template;
// each call hands back a cheap independent copy sharing the implementation
// values and the memoized fingerprint/prompt/sorted views (see copyShared),
// so constructing a testbed no longer re-registers and re-renders the whole
// catalog. Registering additional implementations on a returned library
// affects only that copy.
func DefaultLibrary() *Library {
	defaultLibOnce.Do(func() {
		l := buildDefaultLibrary()
		// Warm every memoized view so copies inherit them fully rendered.
		l.Fingerprint()
		l.SystemPrompt()
		for _, c := range l.Capabilities() {
			l.byCapabilitySorted(c)
		}
		defaultLibTemplate = l
	})
	return defaultLibTemplate.copyShared()
}

var (
	defaultLibOnce     sync.Once
	defaultLibTemplate *Library
)

// buildDefaultLibrary registers the calibrated default catalog from scratch.
func buildDefaultLibrary() *Library {
	l := NewLibrary()

	// --- frame extraction ---------------------------------------------
	l.MustRegister(Implementation{
		Name: ImplOpenCV, Capability: CapFrameExtraction, Kind: KindTool,
		Quality: 1.0,
		Perf: PerfModel{
			BaseS:          0.10,
			CPUCoreUnitS:   0.065, // 24-frame scene on 1 core ≈ 1.7 s
			CPUParallelExp: 0.85,
			CPUIntensity:   0.95,
			MinCores:       1, MaxCores: 32,
		},
		Args: []ArgSpec{
			{Name: "file", Type: "path", Required: true},
			{Name: "start_time", Type: "float", Required: false},
			{Name: "end_time", Type: "float", Required: false},
			{Name: "num_frames", Type: "int", Required: true},
			{Name: "sampling_rate", Type: "int", Required: false},
		},
	})
	l.MustRegister(Implementation{
		Name: ImplDALI, Capability: CapFrameExtraction, Kind: KindTool,
		Quality: 1.0,
		Perf: PerfModel{
			BaseS:          0.25, // GPU context setup dominates small jobs
			GPUUnitS:       0.004,
			GPUParallelExp: 0.9,
			GPUIntensity:   0.60,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 1,
		},
		Args: []ArgSpec{
			{Name: "file", Type: "path", Required: true},
			{Name: "num_frames", Type: "int", Required: true},
		},
	})

	// --- speech-to-text -------------------------------------------------
	// Whisper supports all three Table 2 configurations: GPU, CPU and
	// GPU+CPU (rates add).
	l.MustRegister(Implementation{
		Name: ImplWhisper, Capability: CapSpeechToText, Kind: KindMLModel,
		ParamsB: 1.5, Quality: 0.95,
		Perf: PerfModel{
			BaseS:          0.30,
			GPUUnitS:       0.100, // RTF ≈ 10× realtime on one A100 (batched decode)
			CPUCoreUnitS:   7.6,   // RTF ≈ 0.13× per core; 64 cores ≈ 5.6×
			GPUParallelExp: 0.90,
			CPUParallelExp: 0.90,
			GPUIntensity:   0.92,
			CPUIntensity:   0.98,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 2,
			MinCores: 4, MaxCores: 64,
		},
		Args: []ArgSpec{
			{Name: "file", Type: "path", Required: true},
			{Name: "language", Type: "string", Required: false},
		},
	})
	l.MustRegister(Implementation{
		Name: ImplFastConformer, Capability: CapSpeechToText, Kind: KindMLModel,
		ParamsB: 0.6, Quality: 0.93,
		Perf: PerfModel{
			BaseS:          0.20,
			GPUUnitS:       0.055, // linearly-scalable attention: ~2.3× Whisper GPU rate
			GPUParallelExp: 0.90,
			GPUIntensity:   0.88,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 2,
		},
		Args: []ArgSpec{{Name: "file", Type: "path", Required: true}},
	})
	l.MustRegister(Implementation{
		Name: ImplDeepSpeech, Capability: CapSpeechToText, Kind: KindMLModel,
		ParamsB: 0.12, Quality: 0.82,
		Perf: PerfModel{
			BaseS:          0.20,
			CPUCoreUnitS:   4.2,
			CPUParallelExp: 0.88,
			CPUIntensity:   0.95,
			MinCores:       2, MaxCores: 32,
		},
		Args: []ArgSpec{{Name: "file", Type: "path", Required: true}},
	})

	// --- object detection ------------------------------------------------
	l.MustRegister(Implementation{
		Name: ImplCLIP, Capability: CapObjectDetection, Kind: KindMLModel,
		ParamsB: 0.43, Quality: 0.90,
		Perf: PerfModel{
			BaseS:          0.15,
			GPUUnitS:       0.006,
			CPUCoreUnitS:   0.22, // 24-frame scene on 2 cores ≈ 3.1 s
			GPUParallelExp: 0.9,
			CPUParallelExp: 0.85,
			GPUIntensity:   0.75,
			CPUIntensity:   0.95,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 1,
			MinCores: 1, MaxCores: 16,
		},
		Args: []ArgSpec{
			{Name: "frames", Type: "string", Required: true},
			{Name: "labels", Type: "string", Required: false},
		},
	})
	l.MustRegister(Implementation{
		Name: ImplSigLIP, Capability: CapObjectDetection, Kind: KindMLModel,
		ParamsB: 0.88, Quality: 0.93,
		Perf: PerfModel{
			BaseS:          0.15,
			GPUUnitS:       0.005,
			GPUParallelExp: 0.9,
			GPUIntensity:   0.80,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 1,
		},
		Args: []ArgSpec{{Name: "frames", Type: "string", Required: true}},
	})

	// --- LLMs (served by internal/llmsim engines at runtime) -------------
	l.MustRegister(Implementation{
		Name: ImplNVLM, Capability: CapSummarization, Kind: KindLLM,
		ParamsB: 72, Quality: 0.96,
		Perf: PerfModel{
			BaseS:          0.05,
			GPUUnitS:       0.055, // 8 GPUs^0.9 ≈ 6.5× → ≈ 118 tok/s single-stream
			GPUParallelExp: 0.90,
			GPUIntensity:   0.85,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        4, MaxGPUs: 8,
		},
		Args: []ArgSpec{
			{Name: "system_prompt", Type: "string", Required: false},
			{Name: "user_prompt", Type: "string", Required: true},
			{Name: "context_len", Type: "int", Required: false},
		},
	})
	l.MustRegister(Implementation{
		Name: ImplLlama70B, Capability: CapSummarization, Kind: KindLLM,
		ParamsB: 70, Quality: 0.94,
		Perf: PerfModel{
			BaseS:          0.05,
			GPUUnitS:       0.050,
			GPUParallelExp: 0.90,
			GPUIntensity:   0.85,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        4, MaxGPUs: 8,
		},
		Args: []ArgSpec{{Name: "user_prompt", Type: "string", Required: true}},
	})
	l.MustRegister(Implementation{
		Name: ImplLlama8B, Capability: CapSummarization, Kind: KindLLM,
		ParamsB: 8, Quality: 0.85,
		Perf: PerfModel{
			BaseS:          0.05,
			GPUUnitS:       0.0040, // ≈ 250 tok/s on one A100
			CPUCoreUnitS:   0.90,   // runnable on CPU but impractically slow
			GPUParallelExp: 0.90,
			CPUParallelExp: 0.85,
			GPUIntensity:   0.80,
			CPUIntensity:   1.0,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 2,
			MinCores: 16, MaxCores: 64,
		},
		Args: []ArgSpec{{Name: "user_prompt", Type: "string", Required: true}},
	})

	// --- embeddings -------------------------------------------------------
	l.MustRegister(Implementation{
		Name: ImplNVLMEmbed, Capability: CapEmbedding, Kind: KindLLM,
		ParamsB: 7, Quality: 0.95,
		Perf: PerfModel{
			BaseS:          0.02,
			GPUUnitS:       0.0011, // ≈ 1800 tok/s across the paper's 2-GPU deployment
			GPUParallelExp: 0.95,
			GPUIntensity:   0.55,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 2,
		},
		Args: []ArgSpec{{Name: "text", Type: "string", Required: true}},
	})
	l.MustRegister(Implementation{
		Name: ImplMiniLMEmbed, Capability: CapEmbedding, Kind: KindMLModel,
		ParamsB: 0.033, Quality: 0.84,
		Perf: PerfModel{
			BaseS:          0.02,
			CPUCoreUnitS:   0.012,
			CPUParallelExp: 0.9,
			CPUIntensity:   0.95,
			MinCores:       1, MaxCores: 16,
		},
		Args: []ArgSpec{{Name: "text", Type: "string", Required: true}},
	})

	// --- question answering ----------------------------------------------
	l.MustRegister(Implementation{
		Name: "nvlm-d-72b-qa", Capability: CapQA, Kind: KindLLM,
		ParamsB: 72, Quality: 0.95,
		Perf: PerfModel{
			BaseS:          0.05,
			GPUUnitS:       0.055,
			GPUParallelExp: 0.90,
			GPUIntensity:   0.85,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        4, MaxGPUs: 8,
		},
		Args: []ArgSpec{{Name: "question", Type: "string", Required: true}},
	})

	// --- sentiment --------------------------------------------------------
	l.MustRegister(Implementation{
		Name: ImplDistilSent, Capability: CapSentiment, Kind: KindMLModel,
		ParamsB: 0.066, Quality: 0.88,
		Perf: PerfModel{
			BaseS:          0.05,
			CPUCoreUnitS:   0.08,
			CPUParallelExp: 0.9,
			CPUIntensity:   0.9,
			MinCores:       1, MaxCores: 8,
		},
		Args: []ArgSpec{{Name: "text", Type: "string", Required: true}},
	})
	l.MustRegister(Implementation{
		Name: "llama-8b-sentiment", Capability: CapSentiment, Kind: KindLLM,
		ParamsB: 8, Quality: 0.93,
		Perf: PerfModel{
			BaseS:          0.05,
			GPUUnitS:       0.30, // ~75 docs-to-tokens equivalent
			GPUParallelExp: 0.9,
			GPUIntensity:   0.75,
			RefGPU:         hardware.GPUA100,
			MinGPUs:        1, MaxGPUs: 1,
		},
		Args: []ArgSpec{{Name: "text", Type: "string", Required: true}},
	})

	// --- tools --------------------------------------------------------------
	l.MustRegister(Implementation{
		Name: ImplWebSearch, Capability: CapWebSearch, Kind: KindTool,
		Quality: 0.90,
		Perf: PerfModel{
			BaseS:          0.40, // network round trip
			CPUCoreUnitS:   0.10,
			CPUParallelExp: 1.0,
			CPUIntensity:   0.20,
			MinCores:       1, MaxCores: 4,
		},
		Args: []ArgSpec{
			{Name: "query", Type: "string", Required: true},
			{Name: "top_k", Type: "int", Required: false},
		},
	})
	l.MustRegister(Implementation{
		Name: ImplBM25Rank, Capability: CapRanking, Kind: KindTool,
		Quality: 0.85,
		Perf: PerfModel{
			BaseS:          0.02,
			CPUCoreUnitS:   0.004,
			CPUParallelExp: 0.95,
			CPUIntensity:   0.9,
			MinCores:       1, MaxCores: 8,
		},
		Args: []ArgSpec{{Name: "items", Type: "string", Required: true}},
	})
	l.MustRegister(Implementation{
		Name: ImplCalculator, Capability: CapCalculator, Kind: KindTool,
		Quality: 1.0,
		Perf: PerfModel{
			BaseS:          0.001,
			CPUCoreUnitS:   0.0005,
			CPUParallelExp: 1.0,
			CPUIntensity:   0.5,
			MinCores:       1, MaxCores: 1,
		},
		Args: []ArgSpec{{Name: "expression", Type: "string", Required: true}},
	})

	return l
}
