package agents

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hardware"
	"repro/internal/profiles"
)

var cat = hardware.DefaultCatalog()

func whisper(t *testing.T) *Implementation {
	t.Helper()
	im, ok := DefaultLibrary().Get(ImplWhisper)
	if !ok {
		t.Fatal("default library missing whisper")
	}
	return im
}

func TestPerfModelGPURate(t *testing.T) {
	w := whisper(t)
	cfg := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}
	rate, err := w.Perf.Rate(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / w.Perf.GPUUnitS
	if math.Abs(rate-want) > 1e-9 {
		t.Fatalf("1-GPU rate = %v, want %v", rate, want)
	}
}

func TestPerfModelCPUScalingSublinear(t *testing.T) {
	w := whisper(t)
	r16, _ := w.Perf.Rate(profiles.ResourceConfig{CPUCores: 16}, cat)
	r64, _ := w.Perf.Rate(profiles.ResourceConfig{CPUCores: 64}, cat)
	speedup := r64 / r16
	if speedup >= 4 {
		t.Fatalf("64/16-core speedup = %v, want sublinear (<4)", speedup)
	}
	if speedup <= 1 {
		t.Fatalf("64/16-core speedup = %v, want >1", speedup)
	}
}

func TestPerfModelHybridRatesAdd(t *testing.T) {
	w := whisper(t)
	gpu := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}
	cpu := profiles.ResourceConfig{CPUCores: 32}
	hybrid := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100, CPUCores: 32}
	rg, _ := w.Perf.Rate(gpu, cat)
	rc, _ := w.Perf.Rate(cpu, cat)
	rh, _ := w.Perf.Rate(hybrid, cat)
	if math.Abs(rh-(rg+rc)) > 1e-9 {
		t.Fatalf("hybrid rate %v != GPU %v + CPU %v", rh, rg, rc)
	}
}

func TestPerfModelGPUGenerationSpeedup(t *testing.T) {
	w := whisper(t)
	a := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}
	h := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUH100}
	la, _ := w.Perf.LatencyS(100, a, cat)
	lh, _ := w.Perf.LatencyS(100, h, cat)
	if lh >= la {
		t.Fatalf("H100 latency %v not below A100 %v (Table 1 GPU-generation lever)", lh, la)
	}
}

func TestPerfModelEnvelopeRejected(t *testing.T) {
	w := whisper(t)
	bad := []profiles.ResourceConfig{
		{GPUs: 4, GPUType: hardware.GPUA100}, // MaxGPUs is 2
		{CPUCores: 2},                        // MinCores is 4
		{CPUCores: 128},                      // MaxCores is 64
		{},                                   // empty
	}
	for _, cfg := range bad {
		if _, err := w.Perf.Rate(cfg, cat); err == nil {
			t.Errorf("config %v accepted, want rejection", cfg)
		}
	}
}

func TestGPUOnlyModelRejectsCPU(t *testing.T) {
	lib := DefaultLibrary()
	fc, _ := lib.Get(ImplFastConformer)
	if _, err := fc.Perf.Rate(profiles.ResourceConfig{CPUCores: 8}, cat); err == nil {
		t.Fatal("GPU-only model accepted a CPU config")
	}
}

func TestLatencyDecreasesWithWork(t *testing.T) {
	w := whisper(t)
	cfg := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}
	l30, _ := w.Perf.LatencyS(30, cfg, cat)
	l60, _ := w.Perf.LatencyS(60, cfg, cat)
	if l60 <= l30 {
		t.Fatalf("latency not increasing in work: %v vs %v", l30, l60)
	}
	// 30 s of audio on one A100 at RTF ≈ 8 should take ≈ 4 s (baseline's
	// per-scene STT time in our Figure 3 reproduction).
	if l30 < 3 || l30 > 6 {
		t.Fatalf("whisper 30s-audio GPU latency = %v, want ≈ 4 s", l30)
	}
}

func TestCandidateConfigsCoverTable2(t *testing.T) {
	w := whisper(t)
	configs := w.CandidateConfigs(cat)
	var hasGPU, hasCPU64, hasHybrid bool
	for _, c := range configs {
		if c.GPUs == 1 && c.GPUType == hardware.GPUA100 && c.CPUCores == 0 {
			hasGPU = true
		}
		if c.GPUs == 0 && c.CPUCores == 64 {
			hasCPU64 = true
		}
		if c.GPUs == 1 && c.CPUCores == 32 && c.GPUType == hardware.GPUA100 {
			hasHybrid = true
		}
	}
	if !hasGPU || !hasCPU64 || !hasHybrid {
		t.Fatalf("candidate configs missing a Table 2 configuration: gpu=%v cpu64=%v hybrid=%v\n%v",
			hasGPU, hasCPU64, hasHybrid, configs)
	}
	// All candidates must be in-envelope.
	for _, c := range configs {
		if !w.Perf.SupportsConfig(c) {
			t.Errorf("candidate %v outside envelope", c)
		}
	}
}

func TestImplementationValidate(t *testing.T) {
	good := Implementation{
		Name: "x", Capability: CapCalculator, Kind: KindTool, Quality: 0.5,
		Perf: PerfModel{CPUCoreUnitS: 1, CPUParallelExp: 1, MinCores: 1, MaxCores: 1},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid implementation rejected: %v", err)
	}
	bad := good
	bad.Quality = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("quality > 1 accepted")
	}
	bad = good
	bad.Kind = "bogus"
	if err := bad.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	bad = good
	bad.Perf = PerfModel{}
	if err := bad.Validate(); err == nil {
		t.Error("no-device perf model accepted")
	}
}

func TestDefaultLibraryShape(t *testing.T) {
	lib := DefaultLibrary()
	if lib.Len() < 15 {
		t.Fatalf("library has %d implementations, want >= 15", lib.Len())
	}
	// The paper's §3.2 example: Speech-to-Text implementable by Whisper,
	// DeepSpeech, Fast Conformer.
	stt := lib.ByCapability(CapSpeechToText)
	if len(stt) != 3 {
		t.Fatalf("STT implementations = %d, want 3", len(stt))
	}
	names := map[string]bool{}
	for _, im := range stt {
		names[im.Name] = true
	}
	for _, want := range []string{ImplWhisper, ImplFastConformer, ImplDeepSpeech} {
		if !names[want] {
			t.Errorf("STT missing %s", want)
		}
	}
}

func TestQualityOrderingWithinSTT(t *testing.T) {
	lib := DefaultLibrary()
	w, _ := lib.Get(ImplWhisper)
	f, _ := lib.Get(ImplFastConformer)
	d, _ := lib.Get(ImplDeepSpeech)
	if !(w.Quality > f.Quality && f.Quality > d.Quality) {
		t.Fatalf("STT quality ordering broken: whisper %v, fastconformer %v, deepspeech %v",
			w.Quality, f.Quality, d.Quality)
	}
	// Table 1 "Model/Tool: more parameters → higher quality".
	if !(w.ParamsB > f.ParamsB && f.ParamsB > d.ParamsB) {
		t.Fatal("params not ordered with quality")
	}
}

func TestLibraryRegisterDuplicate(t *testing.T) {
	lib := NewLibrary()
	im := Implementation{
		Name: "x", Capability: CapCalculator, Kind: KindTool, Quality: 1,
		Perf: PerfModel{CPUCoreUnitS: 1, CPUParallelExp: 1, MinCores: 1, MaxCores: 1},
	}
	if err := lib.Register(im); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(im); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestSystemPromptListsAgents(t *testing.T) {
	sp := DefaultLibrary().SystemPrompt()
	for _, want := range []string{ImplWhisper, ImplCLIP, ImplNVLM, "capability=speech-to-text"} {
		if !strings.Contains(sp, want) {
			t.Errorf("system prompt missing %q", want)
		}
	}
}

func TestToolCallString(t *testing.T) {
	tc := ToolCall{Agent: "FrameExtractor", Args: map[string]string{
		"file": "cats.mov", "num_frames": "10",
	}}
	got := tc.String()
	want := `FrameExtractor(file="cats.mov", num_frames="10")`
	if got != want {
		t.Fatalf("ToolCall.String() = %q, want %q", got, want)
	}
}

func TestValidateCall(t *testing.T) {
	lib := DefaultLibrary()
	ok := ToolCall{Agent: ImplOpenCV, Args: map[string]string{
		"file": "cats.mov", "num_frames": "24",
	}}
	if err := lib.ValidateCall(ok); err != nil {
		t.Fatalf("valid call rejected: %v", err)
	}
	cases := []ToolCall{
		{Agent: "no-such-agent", Args: map[string]string{}},
		{Agent: ImplOpenCV, Args: map[string]string{"num_frames": "24"}},                       // missing file
		{Agent: ImplOpenCV, Args: map[string]string{"file": "x", "num_frames": "ten"}},         // bad int
		{Agent: ImplOpenCV, Args: map[string]string{"file": "x", "num_frames": "1", "z": "1"}}, // unknown arg
	}
	for i, tc := range cases {
		if err := lib.ValidateCall(tc); err == nil {
			t.Errorf("case %d: invalid call accepted: %v", i, tc)
		}
	}
}

func TestProfilerRecoversGroundTruth(t *testing.T) {
	w := whisper(t)
	p := NewProfiler(cat)
	cfg := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}
	prof, err := p.ProfileImplementation(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, work := range []float64{1, 30, 480} {
		truth, _ := w.Perf.LatencyS(work, cfg, cat)
		est := prof.LatencyS(work)
		if math.Abs(truth-est) > 1e-6*truth+1e-9 {
			t.Fatalf("work %v: profile %v vs truth %v", work, est, truth)
		}
	}
	if prof.Quality != w.Quality {
		t.Fatalf("profile quality %v != impl quality %v", prof.Quality, w.Quality)
	}
	if prof.GPUIntensity != w.Perf.GPUIntensity {
		t.Fatal("profile GPU intensity not carried over")
	}
	if p.Probes() != 2 {
		t.Fatalf("probes = %d, want 2", p.Probes())
	}
}

func TestProfileLibraryCoversEverything(t *testing.T) {
	lib := DefaultLibrary()
	store, err := NewProfiler(cat).ProfileLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range lib.Capabilities() {
		for _, im := range lib.ByCapability(c) {
			if len(store.ForImplementation(im.Name)) == 0 {
				t.Errorf("no profiles for %s", im.Name)
			}
		}
	}
	// Every candidate config of whisper must be present.
	w, _ := lib.Get(ImplWhisper)
	for _, cfg := range w.CandidateConfigs(cat) {
		if _, ok := store.Get(ImplWhisper, cfg); !ok {
			t.Errorf("missing whisper profile for %v", cfg)
		}
	}
}

func TestTable2ShapeFromProfiles(t *testing.T) {
	// The three whisper configs must reproduce the Table 2 ordering on a
	// 480-second audio workload: CPU slowest but lowest energy, GPU fastest,
	// hybrid fastest-or-equal with energy between CPU and GPU.
	w := whisper(t)
	p := NewProfiler(cat)
	gpuCfg := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}
	cpuCfg := profiles.ResourceConfig{CPUCores: 64}
	hybCfg := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100, CPUCores: 32}

	profGPU, _ := p.ProfileImplementation(w, gpuCfg)
	profCPU, _ := p.ProfileImplementation(w, cpuCfg)
	profHyb, _ := p.ProfileImplementation(w, hybCfg)

	const work = 480 // 16 scenes × 30 s
	latGPU := profGPU.LatencyS(work)
	latCPU := profCPU.LatencyS(work)
	latHyb := profHyb.LatencyS(work)
	if !(latCPU > latGPU) {
		t.Fatalf("CPU STT (%.1fs) not slower than GPU (%.1fs)", latCPU, latGPU)
	}
	if latHyb > latGPU {
		t.Fatalf("hybrid STT (%.1fs) slower than GPU-only (%.1fs)", latHyb, latGPU)
	}
	eGPU := profGPU.EnergyJ(cat, hardware.EPYC7V12, work)
	eCPU := profCPU.EnergyJ(cat, hardware.EPYC7V12, work)
	if !(eCPU < eGPU) {
		t.Fatalf("CPU STT energy (%.0fJ) not below GPU (%.0fJ)", eCPU, eGPU)
	}
}
