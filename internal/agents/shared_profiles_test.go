package agents

import (
	"reflect"
	"testing"

	"repro/internal/hardware"
	"repro/internal/profiles"
)

// TestSharedProfilesEqualAcrossCalls pins the §3.3(a) amortization contract:
// repeated calls — including with distinct but content-equal catalog/library
// instances — return stores with identical contents.
func TestSharedProfilesEqualAcrossCalls(t *testing.T) {
	a, err := SharedProfiles(hardware.DefaultCatalog(), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedProfiles(hardware.DefaultCatalog(), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("shared store is empty")
	}
	if a.Len() != b.Len() {
		t.Fatalf("store sizes differ across calls: %d vs %d", a.Len(), b.Len())
	}
	fresh, err := NewProfiler(hardware.DefaultCatalog()).ProfileLibrary(DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range fresh.Implementations() {
		if !reflect.DeepEqual(a.ForImplementation(impl), fresh.ForImplementation(impl)) {
			t.Fatalf("shared store diverges from fresh profiling for %s", impl)
		}
		if !reflect.DeepEqual(a.ForImplementation(impl), b.ForImplementation(impl)) {
			t.Fatalf("two shared views diverge for %s", impl)
		}
	}
}

// TestSharedProfilesCopyOnWrite verifies that mutating one view (as a
// calibration-tweaking test would) never leaks into sibling views or later
// calls.
func TestSharedProfilesCopyOnWrite(t *testing.T) {
	a, err := SharedProfiles(hardware.DefaultCatalog(), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	cfg := profiles.ResourceConfig{CPUCores: 4}
	orig, ok := a.Get(ImplWhisper, cfg)
	if !ok {
		t.Fatalf("no %s profile for %v", ImplWhisper, cfg)
	}
	mutated := orig
	mutated.BaseS = orig.BaseS + 42
	if err := a.Put(mutated); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Get(ImplWhisper, cfg); got.BaseS != orig.BaseS+42 {
		t.Fatalf("mutation did not stick on the mutated view: %v", got.BaseS)
	}
	if a.Gen() == 0 {
		t.Fatal("mutation did not bump the view's generation")
	}

	b, err := SharedProfiles(hardware.DefaultCatalog(), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Get(ImplWhisper, cfg); got.BaseS != orig.BaseS {
		t.Fatalf("mutation leaked into a sibling view: BaseS %v, want %v", got.BaseS, orig.BaseS)
	}
	if b.Gen() != 0 {
		t.Fatalf("fresh view has non-zero generation %d", b.Gen())
	}
}

// TestSharedProfilesDistinctContentDistinctStores ensures the content key
// actually separates different libraries.
func TestSharedProfilesDistinctContentDistinctStores(t *testing.T) {
	small := NewLibrary()
	small.MustRegister(Implementation{
		Name: "only-tool", Capability: CapFrameExtraction, Kind: KindTool,
		Quality: 1.0,
		Perf: PerfModel{
			BaseS: 0.1, CPUCoreUnitS: 0.1, CPUParallelExp: 1, CPUIntensity: 0.5,
			MinCores: 1, MaxCores: 4,
		},
	})
	s, err := SharedProfiles(hardware.DefaultCatalog(), small)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SharedProfiles(hardware.DefaultCatalog(), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == full.Len() {
		t.Fatalf("distinct libraries mapped to the same store (%d profiles)", s.Len())
	}
}
