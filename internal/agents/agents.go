// Package agents implements the paper's "flexible library of agents" (§3.2):
// abstract capabilities (Speech-to-Text, Object Detection, ...), concrete
// implementations (Whisper, FastConformer, CLIP, NVLM, ...), their argument
// schemas for LLM tool-call generation, and ground-truth performance models
// the profiler measures.
//
// The split matters: the optimizer sees only measured profiles
// (internal/profiles), never these ground-truth models — mirroring the real
// system, where the runtime knows models only through profiling.
package agents

import (
	"fmt"
	"math"

	"repro/internal/hardware"
	"repro/internal/profiles"
)

// Capability names an abstract agent interface. Tasks require capabilities;
// implementations provide them.
type Capability string

// Capabilities used by the paper's workloads (video understanding, Fig. 2's
// newsfeed) plus generic tools from Figure 2's model/tool library.
const (
	CapFrameExtraction Capability = "frame-extraction"    // unit: frames
	CapSpeechToText    Capability = "speech-to-text"      // unit: audio seconds
	CapObjectDetection Capability = "object-detection"    // unit: frames
	CapSummarization   Capability = "scene-summarization" // unit: tokens
	CapEmbedding       Capability = "embedding"           // unit: tokens
	CapQA              Capability = "question-answering"  // unit: tokens
	CapSentiment       Capability = "sentiment-analysis"  // unit: documents
	CapWebSearch       Capability = "web-search"          // unit: queries
	CapRanking         Capability = "ranking"             // unit: items
	CapCalculator      Capability = "calculator"          // unit: expressions
)

// LLMCapabilities lists capabilities served by a shared LLM serving engine
// (internal/llmsim) rather than per-task allocations.
func LLMCapabilities() map[Capability]bool { return llmCapabilities }

// llmCapabilities is built once; LLMCapabilities is consulted on every plan
// pass, and callers only read it.
var llmCapabilities = map[Capability]bool{
	CapSummarization: true,
	CapEmbedding:     true,
	CapQA:            true,
}

// PerfModel is the ground truth of how an implementation executes on
// hardware. Latency is BaseS plus work divided by the aggregate processing
// rate; GPU and CPU rates add when a hybrid config grants both (this is how
// the Table 2 "GPU + CPU" Speech-to-Text configuration arises).
type PerfModel struct {
	// BaseS is fixed per-invocation overhead.
	BaseS float64
	// GPUUnitS is GPU-seconds per work unit on one RefGPU. Zero means the
	// implementation cannot use GPUs.
	GPUUnitS float64
	// CPUCoreUnitS is core-seconds per work unit. Zero means CPUs unusable.
	CPUCoreUnitS float64
	// GPUParallelExp / CPUParallelExp in (0,1] set multi-device scaling:
	// rate ∝ count^exp (1 = perfect scaling).
	GPUParallelExp float64
	CPUParallelExp float64
	// GPUIntensity / CPUIntensity are sustained device utilizations in [0,1].
	GPUIntensity float64
	CPUIntensity float64
	// RefGPU anchors GPUUnitS; other generations scale by FLOPS ratio.
	RefGPU hardware.GPUType
	// Device count bounds.
	MinGPUs, MaxGPUs   int
	MinCores, MaxCores int
}

// SupportsGPU reports whether the model can run on GPUs.
func (m PerfModel) SupportsGPU() bool { return m.GPUUnitS > 0 && m.MaxGPUs > 0 }

// SupportsCPU reports whether the model can run on CPU cores.
func (m PerfModel) SupportsCPU() bool { return m.CPUCoreUnitS > 0 && m.MaxCores > 0 }

// SupportsConfig reports whether cfg is within the model's envelope.
func (m PerfModel) SupportsConfig(cfg profiles.ResourceConfig) bool {
	if cfg.Validate() != nil {
		return false
	}
	if cfg.GPUs > 0 {
		if !m.SupportsGPU() || cfg.GPUs < m.MinGPUs || cfg.GPUs > m.MaxGPUs {
			return false
		}
	}
	if cfg.CPUCores > 0 {
		if !m.SupportsCPU() || cfg.CPUCores < m.MinCores || cfg.CPUCores > m.MaxCores {
			return false
		}
	}
	return true
}

// Rate returns processing rate in work units per second for cfg, or an error
// if the config is outside the envelope.
func (m PerfModel) Rate(cfg profiles.ResourceConfig, cat *hardware.Catalog) (float64, error) {
	if !m.SupportsConfig(cfg) {
		return 0, fmt.Errorf("agents: config %v unsupported", cfg)
	}
	rate := 0.0
	if cfg.GPUs > 0 {
		speedup := cat.SpeedupVs(cfg.GPUType, m.RefGPU)
		rate += math.Pow(float64(cfg.GPUs), m.GPUParallelExp) * speedup / m.GPUUnitS
	}
	if cfg.CPUCores > 0 {
		rate += math.Pow(float64(cfg.CPUCores), m.CPUParallelExp) / m.CPUCoreUnitS
	}
	if rate <= 0 {
		return 0, fmt.Errorf("agents: config %v yields zero rate", cfg)
	}
	return rate, nil
}

// LatencyS returns ground-truth execution latency for work units under cfg.
func (m PerfModel) LatencyS(work float64, cfg profiles.ResourceConfig, cat *hardware.Catalog) (float64, error) {
	rate, err := m.Rate(cfg, cat)
	if err != nil {
		return 0, err
	}
	return m.BaseS + work/rate, nil
}

// ArgSpec describes one tool-call argument for schema validation.
type ArgSpec struct {
	Name     string
	Type     string // "string" | "int" | "float" | "path"
	Required bool
}

// Implementation is one concrete model or tool in the library.
type Implementation struct {
	Name       string
	Capability Capability
	// Kind distinguishes LLMs, ML models and classical tools (Listing 1's
	// LLM / MLModel / Tool constructors).
	Kind Kind
	// ParamsB is model size in billions of parameters (0 for tools) — the
	// Table 1 "Model/Tool: more parameters" lever.
	ParamsB float64
	// Quality is result quality in [0,1] (task-normalized accuracy).
	Quality float64
	// Perf is the ground-truth performance model.
	Perf PerfModel
	// Args is the tool-call schema the planner-LLM fills in.
	Args []ArgSpec
}

// Kind classifies implementations.
type Kind string

// Implementation kinds, matching Listing 1's component constructors.
const (
	KindLLM     Kind = "llm"
	KindMLModel Kind = "ml-model"
	KindTool    Kind = "tool"
)

// Validate checks an implementation definition.
func (im *Implementation) Validate() error {
	if im.Name == "" || im.Capability == "" {
		return fmt.Errorf("agents: implementation missing name or capability")
	}
	if im.Quality < 0 || im.Quality > 1 {
		return fmt.Errorf("agents: %s quality %v outside [0,1]", im.Name, im.Quality)
	}
	if !im.Perf.SupportsGPU() && !im.Perf.SupportsCPU() {
		return fmt.Errorf("agents: %s supports neither GPU nor CPU", im.Name)
	}
	switch im.Kind {
	case KindLLM, KindMLModel, KindTool:
	default:
		return fmt.Errorf("agents: %s has unknown kind %q", im.Name, im.Kind)
	}
	return nil
}

// CandidateConfigs enumerates the resource configurations the optimizer
// should consider for this implementation: power-of-two GPU counts within
// the envelope for every catalog GPU generation, power-of-two core counts,
// and (when both sides are supported) hybrid GPU+CPU configs — the paper's
// three STT configurations all appear in this enumeration.
func (im *Implementation) CandidateConfigs(cat *hardware.Catalog) []profiles.ResourceConfig {
	var out []profiles.ResourceConfig
	m := im.Perf
	if m.SupportsGPU() {
		for _, gt := range cat.GPUTypes() {
			for n := max(1, m.MinGPUs); n <= m.MaxGPUs; n *= 2 {
				out = append(out, profiles.ResourceConfig{GPUs: n, GPUType: gt})
			}
		}
	}
	if m.SupportsCPU() {
		for c := max(1, m.MinCores); c <= m.MaxCores; c *= 2 {
			if c >= m.MinCores {
				out = append(out, profiles.ResourceConfig{CPUCores: c})
			}
		}
	}
	if m.SupportsGPU() && m.SupportsCPU() {
		for _, gt := range cat.GPUTypes() {
			n := max(1, m.MinGPUs)
			for _, c := range []int{m.MinCores, m.MaxCores / 2} {
				if c >= m.MinCores {
					out = append(out, profiles.ResourceConfig{GPUs: n, GPUType: gt, CPUCores: c})
				}
			}
		}
	}
	return out
}
