package telemetry

import (
	"strings"
	"testing"
)

func TestTracerStartEnd(t *testing.T) {
	tr := NewTracer()
	id := tr.Start("STT", "scene-0", 1)
	if tr.OpenCount() != 1 {
		t.Fatalf("open = %d, want 1", tr.OpenCount())
	}
	tr.End(id, 4)
	if tr.OpenCount() != 0 {
		t.Fatalf("open = %d after End, want 0", tr.OpenCount())
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Track != "STT" || sp.Label != "scene-0" || sp.Start != 1 || sp.End != 4 {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Duration() != 3 {
		t.Fatalf("duration = %v, want 3", sp.Duration())
	}
}

func TestTracerUnknownEndPanics(t *testing.T) {
	tr := NewTracer()
	defer func() {
		if recover() == nil {
			t.Fatal("End of unknown span did not panic")
		}
	}()
	tr.End(99, 1)
}

func TestTracerReversedSpanPanics(t *testing.T) {
	tr := NewTracer()
	id := tr.Start("x", "y", 10)
	defer func() {
		if recover() == nil {
			t.Fatal("reversed span did not panic")
		}
	}()
	tr.End(id, 5)
}

func TestSpansSortedByStart(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Track: "b", Start: 5, End: 6})
	tr.Add(Span{Track: "a", Start: 1, End: 2})
	tr.Add(Span{Track: "a", Start: 5, End: 7})
	spans := tr.Spans()
	if spans[0].Start != 1 {
		t.Fatalf("first span starts at %v, want 1", spans[0].Start)
	}
	// Tie at start=5 broken by track name.
	if spans[1].Track != "a" || spans[2].Track != "b" {
		t.Fatalf("tie-break order wrong: %+v", spans[1:])
	}
}

func TestMakespan(t *testing.T) {
	tr := NewTracer()
	if tr.Makespan() != 0 {
		t.Fatal("empty tracer makespan != 0")
	}
	tr.Add(Span{Track: "a", Start: 0, End: 10})
	tr.Add(Span{Track: "b", Start: 5, End: 30})
	if tr.Makespan() != 30 {
		t.Fatalf("makespan = %v, want 30", tr.Makespan())
	}
}

func TestTrackBusyMergesOverlaps(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Track: "stt", Start: 0, End: 10})
	tr.Add(Span{Track: "stt", Start: 5, End: 15})  // overlap: union [0,15]
	tr.Add(Span{Track: "stt", Start: 20, End: 25}) // disjoint
	tr.Add(Span{Track: "other", Start: 0, End: 100})
	if got := tr.TrackBusy("stt"); got != 20 {
		t.Fatalf("TrackBusy = %v, want 20", got)
	}
	if got := tr.TrackBusy("missing"); got != 0 {
		t.Fatalf("TrackBusy(missing) = %v, want 0", got)
	}
}

func TestTracksFirstSeenOrder(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Track: "LLM (Text)", Start: 0, End: 1})
	tr.Add(Span{Track: "Speech-to-Text", Start: 0, End: 1})
	tr.Add(Span{Track: "LLM (Text)", Start: 2, End: 3})
	tracks := tr.Tracks()
	if len(tracks) != 2 || tracks[0] != "LLM (Text)" || tracks[1] != "Speech-to-Text" {
		t.Fatalf("tracks = %v", tracks)
	}
}

func TestGanttRendersAllTracks(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Track: "Speech-to-Text", Label: "s0", Start: 0, End: 50})
	tr.Add(Span{Track: "LLM (Text)", Label: "s0", Start: 50, End: 100})
	out := Gantt(tr, 40)
	if !strings.Contains(out, "Speech-to-Text") || !strings.Contains(out, "LLM (Text)") {
		t.Fatalf("gantt missing tracks:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("gantt has no bars:\n%s", out)
	}
	if !strings.Contains(out, "100s") {
		t.Fatalf("gantt missing makespan label:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := Gantt(NewTracer(), 40); got != "(no spans)\n" {
		t.Fatalf("empty gantt = %q", got)
	}
}

func TestSpansCSV(t *testing.T) {
	tr := NewTracer()
	tr.Add(Span{Track: "a,b", Label: `say "hi"`, Start: 1, End: 2})
	out := SpansCSV(tr)
	if !strings.HasPrefix(out, "track,label,start_s,end_s\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("comma not escaped: %q", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quotes not escaped: %q", out)
	}
}

func TestSeriesCSV(t *testing.T) {
	a := NewStepSeries(0)
	a.Set(5, 100)
	out := SeriesCSV([]string{"cpu"}, []*StepSeries{a}, 0, 10, 5)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), out)
	}
	if lines[0] != "time_s,cpu" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "5.000,100.0000") {
		t.Fatalf("second row = %q", lines[2])
	}
}

func TestSeriesCSVMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched names/series did not panic")
		}
	}()
	SeriesCSV([]string{"a", "b"}, []*StepSeries{NewStepSeries(0)}, 0, 1, 1)
}
