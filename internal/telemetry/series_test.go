package telemetry

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStepSeriesValue(t *testing.T) {
	s := NewStepSeries(1)
	s.Set(10, 5)
	s.Set(20, 2)
	cases := []struct{ t, want float64 }{
		{0, 1}, {5, 1}, {10, 5}, {15, 5}, {20, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := s.Value(c.t); got != c.want {
			t.Errorf("Value(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepSeriesSetSameInstantOverwrites(t *testing.T) {
	s := NewStepSeries(0)
	s.Set(5, 1)
	s.Set(5, 9)
	if got := s.Value(5); got != 9 {
		t.Fatalf("Value(5) = %v, want last-write 9", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (no duplicate points)", s.Len())
	}
}

func TestStepSeriesDedupEqualValues(t *testing.T) {
	s := NewStepSeries(3)
	s.Set(5, 3) // no change
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after redundant Set", s.Len())
	}
}

func TestStepSeriesRewindPanics(t *testing.T) {
	s := NewStepSeries(0)
	s.Set(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set in the past did not panic")
		}
	}()
	s.Set(5, 2)
}

func TestIntegral(t *testing.T) {
	s := NewStepSeries(2) // 2 on [0,10), 4 on [10,20), 0 after
	s.Set(10, 4)
	s.Set(20, 0)
	cases := []struct{ t0, t1, want float64 }{
		{0, 10, 20},
		{0, 20, 60},
		{5, 15, 30},
		{0, 30, 60},
		{20, 30, 0},
		{7, 7, 0},
	}
	for _, c := range cases {
		if got := s.Integral(c.t0, c.t1); !almost(got, c.want) {
			t.Errorf("Integral(%v,%v) = %v, want %v", c.t0, c.t1, got, c.want)
		}
	}
}

func TestMeanAndMax(t *testing.T) {
	s := NewStepSeries(0)
	s.Set(10, 10)
	if got := s.Mean(0, 20); !almost(got, 5) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Max(0, 20); got != 10 {
		t.Errorf("Max = %v, want 10", got)
	}
	if got := s.Max(0, 5); got != 0 {
		t.Errorf("Max over flat prefix = %v, want 0", got)
	}
}

func TestResample(t *testing.T) {
	s := NewStepSeries(0)
	s.Set(5, 100) // 0 for [0,5), 100 after
	got := s.Resample(0, 10, 5)
	if len(got) != 2 || !almost(got[0], 0) || !almost(got[1], 100) {
		t.Fatalf("Resample = %v, want [0 100]", got)
	}
	// Bucket straddling the step: mean of half 0, half 100.
	got = s.Resample(0, 10, 10)
	if len(got) != 1 || !almost(got[0], 50) {
		t.Fatalf("straddling Resample = %v, want [50]", got)
	}
}

func TestSumAndMeanSeries(t *testing.T) {
	a := NewStepSeries(1)
	a.Set(10, 3)
	b := NewStepSeries(2)
	b.Set(5, 0)
	sum := SumSeries(a, b)
	if got := sum.Value(0); !almost(got, 3) {
		t.Errorf("sum at 0 = %v, want 3", got)
	}
	if got := sum.Value(7); !almost(got, 1) {
		t.Errorf("sum at 7 = %v, want 1", got)
	}
	if got := sum.Value(12); !almost(got, 3) {
		t.Errorf("sum at 12 = %v, want 3", got)
	}
	mean := MeanSeries(a, b)
	if got := mean.Value(12); !almost(got, 1.5) {
		t.Errorf("mean at 12 = %v, want 1.5", got)
	}
}

func TestJoulesToWh(t *testing.T) {
	if got := JoulesToWh(3600); got != 1 {
		t.Fatalf("3600 J = %v Wh, want 1", got)
	}
}

// Property: the integral over [a,c] equals integral [a,b] + [b,c] for any
// split point (additivity), and is nonnegative for nonnegative series.
func TestPropertyIntegralAdditive(t *testing.T) {
	f := func(vals []uint8, split uint8) bool {
		s := NewStepSeries(1)
		t0 := 0.0
		for i, v := range vals {
			t0 += 1 + float64(v%7)
			s.Set(t0, float64(v%50))
			_ = i
		}
		end := t0 + 10
		mid := float64(split) / 255 * end
		whole := s.Integral(0, end)
		parts := s.Integral(0, mid) + s.Integral(mid, end)
		return math.Abs(whole-parts) < 1e-6 && whole >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 50, 100}, 100)
	if len([]rune(got)) != 3 {
		t.Fatalf("sparkline rune count = %d, want 3", len([]rune(got)))
	}
	if !strings.HasSuffix(got, "█") {
		t.Fatalf("sparkline %q does not end at full block", got)
	}
	if !strings.HasPrefix(got, "▁") {
		t.Fatalf("sparkline %q does not start at empty block", got)
	}
}

// TestSparklineDegenerateInputs pins the guards: non-positive or non-finite
// scales and NaN/±Inf values must render in-range runes (a NaN-to-int
// conversion is platform-defined and used to index out of range), never
// garbage.
func TestSparklineDegenerateInputs(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name   string
		values []float64
		max    float64
		want   string
	}{
		{"zero max", []float64{0, 1, 2}, 0, "▁██"},
		{"negative max", []float64{0.5, 1}, -3, "▄█"},
		{"NaN max", []float64{0.5, 1}, nan, "▄█"},
		{"+Inf max", []float64{1, 1e300}, inf, "▁▁"},
		{"NaN value", []float64{nan, 1}, 1, "▁█"},
		{"+Inf value", []float64{inf, 0}, 1, "█▁"},
		{"-Inf value", []float64{math.Inf(-1), 1}, 1, "▁█"},
		{"negative values clamp", []float64{-5, 5}, 5, "▁█"},
		{"empty", nil, 1, ""},
	}
	for _, tc := range cases {
		if got := Sparkline(tc.values, tc.max); got != tc.want {
			t.Errorf("%s: Sparkline(%v, %v) = %q, want %q", tc.name, tc.values, tc.max, got, tc.want)
		}
	}
}
