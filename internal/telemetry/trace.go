package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one agent execution interval on a named track — one bar in the
// Figure 3 timeline. Track groups spans onto a row (e.g. "Speech-to-Text"),
// Label annotates the individual execution (e.g. "scene 3").
type Span struct {
	Track string
	Label string
	Start float64
	End   float64
}

// Duration returns the span length in seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Tracer accumulates spans. It is not goroutine-safe; the simulation is
// single-threaded by construction.
type Tracer struct {
	spans []Span
	open  map[int]Span
	next  int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{open: make(map[int]Span)}
}

// Start opens a span at time t and returns its id for the matching End call.
func (tr *Tracer) Start(track, label string, t float64) int {
	id := tr.next
	tr.next++
	tr.open[id] = Span{Track: track, Label: label, Start: t}
	return id
}

// End closes the span with the given id at time t. Unknown ids and reversed
// intervals panic: they indicate broken instrumentation, not a runtime
// condition to tolerate.
func (tr *Tracer) End(id int, t float64) {
	sp, ok := tr.open[id]
	if !ok {
		panic(fmt.Sprintf("telemetry: End of unknown span %d", id))
	}
	if t < sp.Start {
		panic(fmt.Sprintf("telemetry: span %d ends at %v before start %v", id, t, sp.Start))
	}
	delete(tr.open, id)
	sp.End = t
	tr.spans = append(tr.spans, sp)
}

// Add records a complete span directly.
func (tr *Tracer) Add(sp Span) {
	if sp.End < sp.Start {
		panic("telemetry: span with negative duration")
	}
	tr.spans = append(tr.spans, sp)
}

// Spans returns completed spans sorted by start time (ties by track then
// label, for deterministic output).
func (tr *Tracer) Spans() []Span {
	out := make([]Span, len(tr.spans))
	copy(out, tr.spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// OpenCount reports spans started but not ended — nonzero after a run means
// an agent never completed.
func (tr *Tracer) OpenCount() int { return len(tr.open) }

// Tracks returns the distinct track names in first-seen order.
func (tr *Tracer) Tracks() []string {
	seen := map[string]bool{}
	var tracks []string
	for _, sp := range tr.spans {
		if !seen[sp.Track] {
			seen[sp.Track] = true
			tracks = append(tracks, sp.Track)
		}
	}
	return tracks
}

// Makespan returns the latest span end time (the workflow completion time
// when the tracer covers a whole run).
func (tr *Tracer) Makespan() float64 {
	max := 0.0
	for _, sp := range tr.spans {
		if sp.End > max {
			max = sp.End
		}
	}
	return max
}

// TrackBusy returns total busy time on a track, counting overlapping spans
// once (union of intervals).
func (tr *Tracer) TrackBusy(track string) float64 {
	type iv struct{ s, e float64 }
	var ivs []iv
	for _, sp := range tr.spans {
		if sp.Track == track {
			ivs = append(ivs, iv{sp.Start, sp.End})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	busy, end := 0.0, -1.0
	start := 0.0
	active := false
	for _, v := range ivs {
		if !active {
			start, end, active = v.s, v.e, true
			continue
		}
		if v.s <= end {
			if v.e > end {
				end = v.e
			}
		} else {
			busy += end - start
			start, end = v.s, v.e
		}
	}
	if active {
		busy += end - start
	}
	return busy
}

// Gantt renders the spans as an ASCII timeline, one row per track, matching
// the layout of the paper's Figure 3 execution traces. width is the number of
// character columns used for the time axis.
func Gantt(tr *Tracer, width int) string {
	spans := tr.Spans()
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width < 10 {
		width = 10
	}
	makespan := tr.Makespan()
	if makespan <= 0 {
		makespan = 1
	}
	scale := float64(width) / makespan

	tracks := tr.Tracks()
	nameWidth := 0
	for _, t := range tracks {
		if len(t) > nameWidth {
			nameWidth = len(t)
		}
	}

	var b strings.Builder
	for _, track := range tracks {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range spans {
			if sp.Track != track {
				continue
			}
			lo := int(sp.Start * scale)
			hi := int(sp.End * scale)
			if hi >= width {
				hi = width - 1
			}
			if lo > hi {
				lo = hi
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameWidth, track, string(row))
	}
	fmt.Fprintf(&b, "%-*s  0%*s%.0fs\n", nameWidth, "", width-1, "", makespan)
	return b.String()
}

// SpansCSV renders spans as CSV (track,label,start,end) for external
// plotting of the Figure 3 traces.
func SpansCSV(tr *Tracer) string {
	var b strings.Builder
	b.WriteString("track,label,start_s,end_s\n")
	for _, sp := range tr.Spans() {
		fmt.Fprintf(&b, "%s,%s,%.3f,%.3f\n",
			csvEscape(sp.Track), csvEscape(sp.Label), sp.Start, sp.End)
	}
	return b.String()
}

// SeriesCSV renders named step series resampled on a shared grid, e.g. the
// CPU/GPU utilization curves of Figure 3.
func SeriesCSV(names []string, series []*StepSeries, t0, t1, dt float64) string {
	if len(names) != len(series) {
		panic("telemetry: names/series length mismatch")
	}
	var b strings.Builder
	b.WriteString("time_s")
	for _, n := range names {
		b.WriteString("," + csvEscape(n))
	}
	b.WriteString("\n")
	cols := make([][]float64, len(series))
	for i, s := range series {
		cols[i] = s.Resample(t0, t1, dt)
	}
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	for row := 0; row < n; row++ {
		fmt.Fprintf(&b, "%.3f", t0+float64(row)*dt)
		for i := range cols {
			fmt.Fprintf(&b, ",%.4f", cols[i][row])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
