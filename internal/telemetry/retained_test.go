package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// TestRetainedLivePathBitIdentical: while no compaction has happened (and
// for windows at or after the watermark afterwards), a RetainedSeries must
// answer exactly like the bare StepSeries it wraps.
func TestRetainedLivePathBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := NewRetained(3)
	ref := NewStepSeries(3)
	tm := 0.0
	for i := 0; i < 100; i++ {
		tm += rng.Float64() * 2
		v := rng.Float64() * 40
		r.Set(tm, v)
		ref.Set(tm, v)
	}
	for q := 0; q < 50; q++ {
		t0 := rng.Float64() * tm
		t1 := t0 + rng.Float64()*(tm-t0)
		if r.Integral(t0, t1) != ref.Integral(t0, t1) ||
			r.Mean(t0, t1) != ref.Mean(t0, t1) ||
			r.Max(t0, t1) != ref.Max(t0, t1) {
			t.Fatalf("uncompacted RetainedSeries diverged from StepSeries on [%v,%v]", t0, t1)
		}
	}
}

// TestRetainedRollupsAnswerBehindWatermark: after compaction, full-history
// integrals combine exact bucket integrals with the live tail; bucket-
// boundary windows are exact to float accumulation error, and Max behind
// the watermark is a conservative epoch-max bound.
func TestRetainedRollupsAnswerBehindWatermark(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r := NewRetained(5)
	ref := NewStepSeries(5)
	tm := 0.0
	set := func(n int) {
		for i := 0; i < n; i++ {
			tm += rng.Float64() * 2
			v := rng.Float64() * 40
			r.Set(tm, v)
			ref.Set(tm, v)
		}
	}
	set(80)
	w1 := tm * 0.4
	r.CompactBefore(w1)
	set(60)
	w2 := tm * 0.7
	r.CompactBefore(w2)
	set(40)
	end := tm + 1

	if r.Watermark() != w2 {
		t.Fatalf("watermark = %v, want %v", r.Watermark(), w2)
	}
	if got := len(r.Rollups()); got != 2 {
		t.Fatalf("rollup buckets = %d, want 2", got)
	}
	if r.DroppedPoints() == 0 || r.Len() >= ref.Len() {
		t.Fatal("compaction dropped nothing")
	}

	// Full-history integral across both buckets plus the live tail.
	got, want := r.Integral(0, end), ref.Integral(0, end)
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("full-history Integral = %v, want %v", got, want)
	}
	// Bucket-boundary window: exact bucket integral.
	got, want = r.Integral(0, w1), ref.Integral(0, w1)
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("bucket-aligned Integral = %v, want %v", got, want)
	}
	// Partial-bucket windows are mean-prorated: sane, not exact.
	mid := w1 / 2
	if est := r.Integral(mid, end); est <= 0 {
		t.Fatalf("prorated Integral = %v, want > 0", est)
	}
	// Mean over full history agrees to the same tolerance.
	gm, wm := r.Mean(0, end), ref.Mean(0, end)
	if math.Abs(gm-wm) > 1e-9*math.Max(1, math.Abs(wm)) {
		t.Fatalf("full-history Mean = %v, want %v", gm, wm)
	}
	// Max behind the watermark: conservative upper bound, and equal at
	// full coverage (every epoch max is attained somewhere in history).
	if gmax, wmax := r.Max(0, end), ref.Max(0, end); gmax != wmax {
		t.Fatalf("full-history Max = %v, want %v", gmax, wmax)
	}
	if r.Max(0, w1) < ref.Max(0, w1) {
		t.Fatal("bucket Max lost the epoch maximum")
	}

	// Live-side queries stay bit-identical after both compactions.
	for q := 0; q < 30; q++ {
		t0 := w2 + rng.Float64()*(end-w2)
		t1 := t0 + rng.Float64()*(end-t0)
		if r.Integral(t0, t1) != ref.Integral(t0, t1) {
			t.Fatalf("live-window Integral diverged on [%v,%v]", t0, t1)
		}
	}
}

// TestRetainedRollupCapBoundsBuckets: the bucket list must stay bounded
// across arbitrarily many epochs (the oldest buckets merge), and the merged
// deep history must keep answering full-span integrals exactly — otherwise
// rollups reintroduce the unbounded-growth mode retention exists to kill.
func TestRetainedRollupCapBoundsBuckets(t *testing.T) {
	r := NewRetained(2)
	ref := NewStepSeries(2)
	tm := 0.0
	rng := rand.New(rand.NewSource(31))
	const epochs = 500
	for e := 0; e < epochs; e++ {
		for i := 0; i < 3; i++ {
			tm += 0.5 + rng.Float64()
			v := rng.Float64() * 10
			r.Set(tm, v)
			ref.Set(tm, v)
		}
		r.CompactBefore(tm)
	}
	if got := len(r.Rollups()); got > maxRollups {
		t.Fatalf("bucket list grew to %d across %d epochs, cap is %d", got, epochs, maxRollups)
	}
	got, want := r.Integral(0, tm), ref.Integral(0, tm)
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("full-history Integral through merged buckets = %v, want %v", got, want)
	}
	if gmax, wmax := r.Max(0, tm), ref.Max(0, tm); gmax != wmax {
		t.Fatalf("full-history Max through merged buckets = %v, want %v", gmax, wmax)
	}
	// Buckets must tile [0, watermark] with no gaps after merging.
	bs := r.Rollups()
	if bs[0].StartS != 0 || bs[len(bs)-1].EndS != r.Watermark() {
		t.Fatalf("buckets span [%v,%v], want [0,%v]", bs[0].StartS, bs[len(bs)-1].EndS, r.Watermark())
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].StartS != bs[i-1].EndS {
			t.Fatalf("bucket gap at %d: %v != %v", i, bs[i].StartS, bs[i-1].EndS)
		}
	}
}

// TestRetainedCompactNoop: compacting at or behind the watermark, or on an
// empty epoch, must not grow the bucket list spuriously.
func TestRetainedCompactNoop(t *testing.T) {
	r := NewRetained(1)
	r.Set(10, 2)
	r.CompactBefore(5)
	if n := r.CompactBefore(5); n != 0 {
		t.Fatalf("re-compacting at the watermark dropped %d points", n)
	}
	if n := r.CompactBefore(3); n != 0 {
		t.Fatal("compacting behind the watermark must be a no-op")
	}
	if len(r.Rollups()) != 1 {
		t.Fatalf("buckets = %d, want 1", len(r.Rollups()))
	}
}
