package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the optimized StepSeries machinery to the seed's naive
// implementations: the k-way heap merge behind SumSeries/MeanSeries must be
// bit-identical to the per-point Σ Value(t) merge (same float operation
// order), and the cumulative-index Integral must agree with the full-segment
// scan to float accumulation error.

// naiveIntegral is the seed's full-scan implementation, kept verbatim as the
// reference semantics.
func naiveIntegral(s *StepSeries, t0, t1 float64) float64 {
	if len(s.times) == 0 || t0 == t1 {
		return 0
	}
	total := 0.0
	for i := 0; i < len(s.times); i++ {
		segStart := s.times[i]
		segEnd := math.Inf(1)
		if i+1 < len(s.times) {
			segEnd = s.times[i+1]
		}
		lo := math.Max(segStart, t0)
		hi := math.Min(segEnd, t1)
		if i == 0 && t0 < segStart {
			total += s.values[0] * (math.Min(segStart, t1) - t0)
		}
		if hi > lo {
			total += s.values[i] * (hi - lo)
		}
	}
	return total
}

// naiveMax is the seed's full-scan max.
func naiveMax(s *StepSeries, t0, t1 float64) float64 {
	if len(s.times) == 0 {
		return 0
	}
	max := s.Value(t0)
	for i, t := range s.times {
		if t > t0 && t <= t1 && s.values[i] > max {
			max = s.values[i]
		}
	}
	return max
}

// naiveChangePoints and naiveMerge are the seed's map-and-sort union merge.
func naiveChangePoints(series []*StepSeries) []float64 {
	seen := map[float64]bool{0: true}
	var pts []float64
	pts = append(pts, 0)
	for _, s := range series {
		for _, t := range s.times {
			if !seen[t] {
				seen[t] = true
				pts = append(pts, t)
			}
		}
	}
	sort.Float64s(pts)
	return pts
}

func naiveSum(series ...*StepSeries) *StepSeries {
	pts := naiveChangePoints(series)
	out := NewStepSeries(0)
	for _, t := range pts {
		total := 0.0
		for _, s := range series {
			total += s.Value(t)
		}
		out.Set(t, total)
	}
	return out
}

func naiveMean(series ...*StepSeries) *StepSeries {
	if len(series) == 0 {
		return NewStepSeries(0)
	}
	pts := naiveChangePoints(series)
	out := NewStepSeries(0)
	for _, t := range pts {
		total := 0.0
		for _, s := range series {
			total += s.Value(t)
		}
		out.Set(t, total/float64(len(series)))
	}
	return out
}

// randomSeries builds a series with random change points; shareTimes makes
// collisions across series likely (the simulation sets many samples at the
// same event instant).
func randomSeries(rng *rand.Rand, points int, shareTimes bool) *StepSeries {
	s := NewStepSeries(rng.Float64() * 10)
	t := 0.0
	for i := 0; i < points; i++ {
		if shareTimes {
			t += float64(rng.Intn(4)) // repeats and integer collisions
		} else {
			t += rng.Float64() * 3
		}
		s.Set(t, rng.Float64()*100-20)
	}
	return s
}

func seriesEqual(a, b *StepSeries) bool {
	if len(a.times) != len(b.times) {
		return false
	}
	for i := range a.times {
		if a.times[i] != b.times[i] || a.values[i] != b.values[i] {
			return false
		}
	}
	return true
}

func TestSumMeanSeriesBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(6)
		shared := trial%2 == 0
		var series []*StepSeries
		for i := 0; i < n; i++ {
			series = append(series, randomSeries(rng, rng.Intn(40), shared))
		}
		gotSum := SumSeries(series...)
		wantSum := naiveSum(series...)
		if !seriesEqual(gotSum, wantSum) {
			t.Fatalf("trial %d: SumSeries diverged from naive merge\n got %v %v\nwant %v %v",
				trial, gotSum.times, gotSum.values, wantSum.times, wantSum.values)
		}
		gotMean := MeanSeries(series...)
		wantMean := naiveMean(series...)
		if !seriesEqual(gotMean, wantMean) {
			t.Fatalf("trial %d: MeanSeries diverged from naive merge", trial)
		}
	}
}

func TestIndexedIntegralMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		s := randomSeries(rng, 1+rng.Intn(60), trial%2 == 0)
		span := s.times[len(s.times)-1] + 5
		for q := 0; q < 20; q++ {
			t0 := rng.Float64() * span
			t1 := t0 + rng.Float64()*span
			got := s.Integral(t0, t1)
			want := naiveIntegral(s, t0, t1)
			// The cumulative index accumulates from t=0 while the naive scan
			// accumulates per-window, so the two differ only by float
			// rounding of mathematically identical sums.
			tol := 1e-9 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("trial %d: Integral(%v,%v) = %v, naive %v", trial, t0, t1, got, want)
			}
			if m := s.Max(t0, t1); m != naiveMax(s, t0, t1) {
				t.Fatalf("trial %d: Max(%v,%v) = %v, naive %v", trial, t0, t1, m, naiveMax(s, t0, t1))
			}
		}
	}
}

func TestScaleMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		s := randomSeries(rng, rng.Intn(50), false)
		k := rng.Float64()*4 - 2
		sc := s.Scale(k)
		if sc.Len() != s.Len() {
			t.Fatalf("Scale changed the change-point count: %d vs %d", sc.Len(), s.Len())
		}
		for i, tm := range s.times {
			if sc.values[i] != s.values[i]*k {
				t.Fatalf("Scale value mismatch at %v", tm)
			}
		}
		// The scaled series' integral index must stay self-consistent.
		end := s.times[len(s.times)-1] + 1
		got := sc.Integral(0, end)
		want := naiveIntegral(sc, 0, end)
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("scaled integral %v, naive %v", got, want)
		}
	}
}

// cloneSeries deep-copies a series, cum index included.
func cloneSeries(s *StepSeries) *StepSeries {
	c := &StepSeries{
		times:  append([]float64(nil), s.times...),
		values: append([]float64(nil), s.values...),
		cum:    append([]float64(nil), s.cum...),
	}
	return c
}

// TestCompactBeforeBitIdentical pins the retention contract: for random
// series and random watermarks, compacting and then querying any window that
// starts at or after the watermark returns bit-identical Integral/Mean/Max
// (float equality, not tolerance) to the uncompacted series — the binary
// searches must land on the same change points and the retained cum entries
// must be the original ones.
func TestCompactBeforeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		full := randomSeries(rng, 1+rng.Intn(60), trial%2 == 0)
		span := full.times[len(full.times)-1] + 5
		w := rng.Float64() * span
		compacted := cloneSeries(full)
		dropped := compacted.CompactBefore(w)
		if got := full.Len() - compacted.Len(); got != dropped {
			t.Fatalf("trial %d: CompactBefore reported %d dropped, len shrank by %d", trial, dropped, got)
		}
		// The retained head must carry the value in effect at the watermark.
		if compacted.Value(w) != full.Value(w) {
			t.Fatalf("trial %d: Value(%v) = %v after compaction, want %v",
				trial, w, compacted.Value(w), full.Value(w))
		}
		if compacted.Last() != full.Last() {
			t.Fatalf("trial %d: Last changed across compaction", trial)
		}
		for q := 0; q < 30; q++ {
			t0 := w + rng.Float64()*(span-w)
			t1 := t0 + rng.Float64()*(span-t0)
			if got, want := compacted.Integral(t0, t1), full.Integral(t0, t1); got != want {
				t.Fatalf("trial %d: Integral(%v,%v) = %v after CompactBefore(%v), want bit-identical %v",
					trial, t0, t1, got, w, want)
			}
			if got, want := compacted.Mean(t0, t1), full.Mean(t0, t1); got != want {
				t.Fatalf("trial %d: Mean(%v,%v) diverged after compaction", trial, t0, t1)
			}
			if got, want := compacted.Max(t0, t1), full.Max(t0, t1); got != want {
				t.Fatalf("trial %d: Max(%v,%v) = %v after compaction, want %v", trial, t0, t1, got, want)
			}
		}
		// Query exactly at the retained head: this exercises integralTo's
		// t <= times[0] branch, which must respect the retained cum anchor.
		h := compacted.times[0]
		if got, want := compacted.Integral(h, span), full.Integral(h, span); got != want {
			t.Fatalf("trial %d: Integral at retained head %v = %v, want %v", trial, h, got, want)
		}
		// Appending after compaction must keep the index consistent. Anchor
		// the tail past both the retained head and the watermark so the
		// closing window stays within the bit-identical region.
		tail := math.Max(compacted.times[compacted.Len()-1], w) + 1 + rng.Float64()
		v := rng.Float64() * 50
		compacted.Set(tail, v)
		full.Set(tail, v)
		if got, want := compacted.Integral(w, tail+2), full.Integral(w, tail+2); got != want {
			t.Fatalf("trial %d: post-compaction append diverged: %v vs %v", trial, got, want)
		}
	}
}

func TestAddDelta(t *testing.T) {
	s := NewStepSeries(2)
	s.AddDelta(1, 3)
	s.AddDelta(2, -5)
	if got := s.Value(0.5); got != 2 {
		t.Fatalf("Value(0.5) = %v, want 2", got)
	}
	if got := s.Value(1.5); got != 5 {
		t.Fatalf("Value(1.5) = %v, want 5", got)
	}
	if got := s.Value(3); got != 0 {
		t.Fatalf("Value(3) = %v, want 0", got)
	}
	if got, want := s.Integral(0, 3), 2*1+5*1+0*1.0; got != want {
		t.Fatalf("Integral = %v, want %v", got, want)
	}
}
