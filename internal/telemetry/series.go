// Package telemetry records what the simulated cluster did: piecewise-
// constant time series (utilization, power), integrated quantities (energy,
// cost), and per-agent execution spans. It also renders the artifacts the
// paper's Figure 3 shows — per-agent Gantt timelines and CPU/GPU utilization
// curves — as ASCII and CSV.
package telemetry

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"
)

// StepSeries is a right-continuous piecewise-constant function of simulated
// time: the value set at time t holds on [t, next-set-time). Samples must be
// appended in nondecreasing time order, which every simulation source
// naturally satisfies.
//
// Alongside the change points the series maintains a cumulative-integral
// index (cum[i] = ∫ from times[0] to times[i]), kept up to date in O(1) per
// append, so Integral/Mean over any window are O(log n) rather than a full
// scan — the telemetry analogue of aggregating online instead of re-merging
// raw samples at report time.
type StepSeries struct {
	times  []float64
	values []float64
	// cum[i] is the integral of the series from times[0] to times[i]; it only
	// depends on values[0..i-1], so overwriting the value at the last change
	// point never invalidates it.
	cum []float64
}

// initialSeriesCap is the change-point capacity a fresh series starts with.
// Most per-device series in the benchmarks accumulate tens of points, so a
// small starting slab absorbs the first few doublings that otherwise
// dominate the allocation profile of Set.
const initialSeriesCap = 8

// seriesBox fuses a fresh series' header and initial slab into one
// allocation; grow replaces the slices with a heap slab and the inline
// buffer rides along unused (192 B, only on series that outgrow it).
type seriesBox struct {
	s   StepSeries
	buf [3 * initialSeriesCap]float64
}

// NewStepSeries returns a series with an initial value holding from t=0.
// The header and the initial change-point slab come from a single
// allocation; clusters build dozens of gauge series per testbed, so the
// constructor's object count shows up directly in serving-path profiles.
func NewStepSeries(initial float64) *StepSeries {
	b := &seriesBox{}
	s := &b.s
	c := initialSeriesCap
	s.times = b.buf[0:1:c]
	s.values = b.buf[c : c+1 : 2*c]
	s.cum = b.buf[2*c : 2*c+1 : 3*c]
	s.values[0] = initial
	return s
}

// initStepSeries is NewStepSeries into caller-owned storage (a value field),
// sharing the same single-slab layout via realloc.
func (s *StepSeries) initStepSeries(initial float64) {
	s.realloc(initialSeriesCap, 1)
	s.values[0] = initial
}

// realloc carves times/values/cum (each length n, capacity c) out of one
// backing array: a series costs one slab allocation instead of three, and a
// capacity doubling moves all three slices in a single copy. Existing
// contents are preserved. The full-slice expressions cap each slice so an
// append past c can never bleed into its neighbour.
func (s *StepSeries) realloc(c, n int) {
	buf := make([]float64, 3*c)
	nt := buf[0:n:c]
	nv := buf[c : c+n : 2*c]
	nc := buf[2*c : 2*c+n : 3*c]
	copy(nt, s.times)
	copy(nv, s.values)
	copy(nc, s.cum)
	s.times, s.values, s.cum = nt, nv, nc
}

// grow extends all three slices by one slot, reallocating the shared slab
// when full.
func (s *StepSeries) grow() {
	n := len(s.times)
	if n == cap(s.times) {
		c := 2 * cap(s.times)
		if c < initialSeriesCap {
			c = initialSeriesCap
		}
		s.realloc(c, n)
	}
	s.times = s.times[:n+1]
	s.values = s.values[:n+1]
	s.cum = s.cum[:n+1]
}

// Set records that the series takes value v from time t onward. Setting at a
// time earlier than the last sample panics (simulation time never rewinds).
// Setting the same time twice overwrites — the last write at an instant wins,
// matching event-queue semantics.
func (s *StepSeries) Set(t, v float64) {
	n := len(s.times)
	if n > 0 {
		last := s.times[n-1]
		if t < last {
			panic(fmt.Sprintf("telemetry: Set at t=%v before last sample t=%v", t, last))
		}
		if t == last {
			s.values[n-1] = v
			return
		}
		if s.values[n-1] == v {
			return // no change; keep the series minimal
		}
		s.grow()
		s.cum[n] = s.cum[n-1] + s.values[n-1]*(t-last)
	} else {
		s.grow()
		s.cum[n] = 0
	}
	s.times[n] = t
	s.values[n] = v
}

// AddDelta shifts the series by d from time t onward: Set(t, Last()+d). It is
// the primitive incremental aggregates are built from — each device sample
// updates a cluster-wide running series in O(1) instead of the cluster
// re-merging every per-device series at report time.
func (s *StepSeries) AddDelta(t, d float64) {
	s.Set(t, s.Last()+d)
}

// Value returns the series value at time t. Times before the first sample
// return the first value.
func (s *StepSeries) Value(t float64) float64 {
	if len(s.times) == 0 {
		return 0
	}
	// Find the last sample with time <= t.
	i := sort.SearchFloat64s(s.times, t)
	if i < len(s.times) && s.times[i] == t {
		return s.values[i]
	}
	if i == 0 {
		return s.values[0]
	}
	return s.values[i-1]
}

// Last returns the most recent value.
func (s *StepSeries) Last() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Len returns the number of stored change points.
func (s *StepSeries) Len() int { return len(s.times) }

// CompactBefore drops every change point strictly older than the last one at
// or before t, copying the retained tail into fresh slices so the dropped
// prefix is actually freed. The point covering t is kept — it carries the
// value in effect at the watermark — and the cumulative-integral index is
// retained verbatim (cum stays anchored at the original t=0 origin), so
// Integral/Mean/Max over any window that starts at or after t are
// bit-identical to the uncompacted series: the binary searches resolve to
// the same change points and the same cum entries, and the origin anchor
// cancels in the window subtraction. Queries reaching before the retained
// region extrapolate the oldest retained value; readers that need history
// behind the watermark must hold a RetainedSeries. Returns the number of
// change points dropped.
func (s *StepSeries) CompactBefore(t float64) int {
	if len(s.times) == 0 {
		return 0
	}
	// k = last index with times[k] <= t.
	k := sort.SearchFloat64s(s.times, t)
	if k == len(s.times) || s.times[k] > t {
		k--
	}
	if k <= 0 {
		return 0
	}
	// One shared slab for the retained tail (see realloc) so compaction costs
	// a single allocation and actually frees the dropped prefix.
	n := len(s.times) - k
	tail := *s
	s.times, s.values, s.cum = nil, nil, nil
	s.realloc(n, 0)
	s.times = append(s.times, tail.times[k:]...)
	s.values = append(s.values, tail.values[k:]...)
	s.cum = append(s.cum, tail.cum[k:]...)
	return k
}

// integralTo returns ∫ s(x) dx from the series origin to t using the
// cumulative index; the first value extends back before times[0] (negative
// area for t < times[0]). cum[0] is 0 until CompactBefore drops a prefix,
// after which it anchors the retained index at the original origin — the
// addition is exact (+0) in the uncompacted case, keeping window integrals
// bit-identical either way.
func (s *StepSeries) integralTo(t float64) float64 {
	if t <= s.times[0] {
		return s.cum[0] + s.values[0]*(t-s.times[0])
	}
	// Last index j with times[j] <= t.
	j := sort.SearchFloat64s(s.times, t)
	if j == len(s.times) || s.times[j] > t {
		j--
	}
	return s.cum[j] + s.values[j]*(t-s.times[j])
}

// Integral returns ∫ s(t) dt over [t0, t1]. For a power series in watts this
// is energy in joules. t0 > t1 panics. The cumulative index makes this an
// O(log n) window query.
func (s *StepSeries) Integral(t0, t1 float64) float64 {
	if t0 > t1 {
		panic(fmt.Sprintf("telemetry: integral over reversed interval [%v,%v]", t0, t1))
	}
	if len(s.times) == 0 || t0 == t1 {
		return 0
	}
	return s.integralTo(t1) - s.integralTo(t0)
}

// Mean returns the time-weighted mean over [t0, t1]; zero if the interval is
// empty.
func (s *StepSeries) Mean(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	return s.Integral(t0, t1) / (t1 - t0)
}

// Max returns the maximum value attained in [t0, t1]. The window bounds are
// located by binary search so only change points inside the window are
// visited.
func (s *StepSeries) Max(t0, t1 float64) float64 {
	if len(s.times) == 0 {
		return 0
	}
	max := s.Value(t0)
	// First index with times[i] > t0.
	i := sort.SearchFloat64s(s.times, t0)
	for i < len(s.times) && s.times[i] <= t0 {
		i++
	}
	for ; i < len(s.times) && s.times[i] <= t1; i++ {
		if s.values[i] > max {
			max = s.values[i]
		}
	}
	return max
}

// Scale returns a new series with every value multiplied by k (same change
// points). It replaces the change-point replay dance callers previously used
// to build weighted aggregates.
func (s *StepSeries) Scale(k float64) *StepSeries {
	out := &StepSeries{}
	out.realloc(len(s.times), len(s.times))
	copy(out.times, s.times)
	for i, v := range s.values {
		out.values[i] = v * k
	}
	// Rebuild the cumulative index from the scaled values so the index stays
	// self-consistent with the recurrence Set maintains.
	for i := range out.times {
		if i == 0 {
			out.cum[i] = 0
			continue
		}
		out.cum[i] = out.cum[i-1] + out.values[i-1]*(out.times[i]-out.times[i-1])
	}
	return out
}

// Resample evaluates the series on a regular grid [t0, t1] with step dt,
// returning one value per grid point (inclusive of t0, exclusive of points
// beyond t1). Each grid value is the time-weighted mean over its bucket,
// which is what a utilization plot wants.
func (s *StepSeries) Resample(t0, t1, dt float64) []float64 {
	if dt <= 0 {
		panic("telemetry: non-positive resample step")
	}
	var out []float64
	for t := t0; t < t1; t += dt {
		end := math.Min(t+dt, t1)
		out = append(out, s.Mean(t, end))
	}
	return out
}

// SumSeries point-wise adds step series, producing a new series with change
// points at the union of inputs' change points. Used to aggregate per-device
// power into cluster power.
func SumSeries(series ...*StepSeries) *StepSeries {
	return mergeSeries(series, 1)
}

// MeanSeries point-wise averages step series (e.g. per-device utilization →
// average device utilization). Empty input returns a zero series.
func MeanSeries(series ...*StepSeries) *StepSeries {
	if len(series) == 0 {
		return NewStepSeries(0)
	}
	return mergeSeries(series, float64(len(series)))
}

// mergePoint is one pending change point in the k-way merge heap.
type mergePoint struct {
	t      float64
	series int // index into the input slice
	idx    int // index of the change point within that series
}

type mergeHeap []mergePoint

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].series < h[j].series
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergePoint)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// mergeSeries is the k-way heap merge behind SumSeries/MeanSeries: change
// points are visited once each in global time order (O(P log S) for P total
// points across S series), and at every union point the current values are
// re-summed in input order — that keeps the float operation order, and hence
// the result, bit-identical to the naive per-point Σ Value(t) merge while
// dropping its per-point binary searches. div divides the per-point total
// (1 for a sum, len(series) for a mean).
func mergeSeries(series []*StepSeries, div float64) *StepSeries {
	cur := make([]float64, len(series))
	h := make(mergeHeap, 0, len(series))
	for i, s := range series {
		if s.Len() > 0 {
			// The first value extends back to t=0, matching Value().
			cur[i] = s.values[0]
			h = append(h, mergePoint{t: s.times[0], series: i, idx: 0})
		}
	}
	heap.Init(&h)
	out := NewStepSeries(0)
	emit := func(t float64) {
		total := 0.0
		for _, v := range cur {
			total += v
		}
		if div != 1 {
			total /= div
		}
		out.Set(t, total)
	}
	// The union point set always includes t=0 (every aggregate starts at the
	// beginning of simulated time).
	if len(h) == 0 || h[0].t > 0 {
		emit(0)
	}
	for len(h) > 0 {
		t := h[0].t
		// Apply every change at this instant before emitting once.
		for len(h) > 0 && h[0].t == t {
			p := heap.Pop(&h).(mergePoint)
			s := series[p.series]
			cur[p.series] = s.values[p.idx]
			if p.idx+1 < s.Len() {
				heap.Push(&h, mergePoint{t: s.times[p.idx+1], series: p.series, idx: p.idx + 1})
			}
		}
		emit(t)
	}
	return out
}

// JoulesToWh converts joules to watt-hours (the unit Table 2 reports).
func JoulesToWh(j float64) float64 { return j / 3600 }

// Sparkline renders values as a one-line unicode sparkline, a quick terminal
// stand-in for the utilization plots in Figure 3. Non-finite or non-positive
// scales fall back to 1, and NaN values render as the lowest level — a
// float-to-int conversion of NaN is platform-defined and would index out of
// range.
func Sparkline(values []float64, max float64) string {
	if max <= 0 || math.IsNaN(max) {
		max = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		frac := v / max
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		idx := int(frac * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}
