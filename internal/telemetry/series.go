// Package telemetry records what the simulated cluster did: piecewise-
// constant time series (utilization, power), integrated quantities (energy,
// cost), and per-agent execution spans. It also renders the artifacts the
// paper's Figure 3 shows — per-agent Gantt timelines and CPU/GPU utilization
// curves — as ASCII and CSV.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// StepSeries is a right-continuous piecewise-constant function of simulated
// time: the value set at time t holds on [t, next-set-time). Samples must be
// appended in nondecreasing time order, which every simulation source
// naturally satisfies.
type StepSeries struct {
	times  []float64
	values []float64
}

// NewStepSeries returns a series with an initial value holding from t=0.
func NewStepSeries(initial float64) *StepSeries {
	return &StepSeries{times: []float64{0}, values: []float64{initial}}
}

// Set records that the series takes value v from time t onward. Setting at a
// time earlier than the last sample panics (simulation time never rewinds).
// Setting the same time twice overwrites — the last write at an instant wins,
// matching event-queue semantics.
func (s *StepSeries) Set(t, v float64) {
	n := len(s.times)
	if n > 0 {
		last := s.times[n-1]
		if t < last {
			panic(fmt.Sprintf("telemetry: Set at t=%v before last sample t=%v", t, last))
		}
		if t == last {
			s.values[n-1] = v
			return
		}
		if s.values[n-1] == v {
			return // no change; keep the series minimal
		}
	}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
}

// Value returns the series value at time t. Times before the first sample
// return the first value.
func (s *StepSeries) Value(t float64) float64 {
	if len(s.times) == 0 {
		return 0
	}
	// Find the last sample with time <= t.
	i := sort.SearchFloat64s(s.times, t)
	if i < len(s.times) && s.times[i] == t {
		return s.values[i]
	}
	if i == 0 {
		return s.values[0]
	}
	return s.values[i-1]
}

// Last returns the most recent value.
func (s *StepSeries) Last() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.values[len(s.values)-1]
}

// Len returns the number of stored change points.
func (s *StepSeries) Len() int { return len(s.times) }

// ChangeTimes returns a copy of the series' change-point times in order.
func (s *StepSeries) ChangeTimes() []float64 {
	out := make([]float64, len(s.times))
	copy(out, s.times)
	return out
}

// Integral returns ∫ s(t) dt over [t0, t1]. For a power series in watts this
// is energy in joules. t0 > t1 panics.
func (s *StepSeries) Integral(t0, t1 float64) float64 {
	if t0 > t1 {
		panic(fmt.Sprintf("telemetry: integral over reversed interval [%v,%v]", t0, t1))
	}
	if len(s.times) == 0 || t0 == t1 {
		return 0
	}
	total := 0.0
	for i := 0; i < len(s.times); i++ {
		segStart := s.times[i]
		segEnd := math.Inf(1)
		if i+1 < len(s.times) {
			segEnd = s.times[i+1]
		}
		lo := math.Max(segStart, t0)
		hi := math.Min(segEnd, t1)
		if i == 0 && t0 < segStart {
			// The initial value extends back to t0.
			total += s.values[0] * (math.Min(segStart, t1) - t0)
		}
		if hi > lo {
			total += s.values[i] * (hi - lo)
		}
	}
	return total
}

// Mean returns the time-weighted mean over [t0, t1]; zero if the interval is
// empty.
func (s *StepSeries) Mean(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	return s.Integral(t0, t1) / (t1 - t0)
}

// Max returns the maximum value attained in [t0, t1].
func (s *StepSeries) Max(t0, t1 float64) float64 {
	if len(s.times) == 0 {
		return 0
	}
	max := s.Value(t0)
	for i, t := range s.times {
		if t > t0 && t <= t1 && s.values[i] > max {
			max = s.values[i]
		}
	}
	return max
}

// Resample evaluates the series on a regular grid [t0, t1] with step dt,
// returning one value per grid point (inclusive of t0, exclusive of points
// beyond t1). Each grid value is the time-weighted mean over its bucket,
// which is what a utilization plot wants.
func (s *StepSeries) Resample(t0, t1, dt float64) []float64 {
	if dt <= 0 {
		panic("telemetry: non-positive resample step")
	}
	var out []float64
	for t := t0; t < t1; t += dt {
		end := math.Min(t+dt, t1)
		out = append(out, s.Mean(t, end))
	}
	return out
}

// SumSeries point-wise adds step series, producing a new series with change
// points at the union of inputs' change points. Used to aggregate per-device
// power into cluster power.
func SumSeries(series ...*StepSeries) *StepSeries {
	pts := changePoints(series)
	out := NewStepSeries(0)
	for _, t := range pts {
		total := 0.0
		for _, s := range series {
			total += s.Value(t)
		}
		out.Set(t, total)
	}
	return out
}

// MeanSeries point-wise averages step series (e.g. per-device utilization →
// average device utilization). Empty input returns a zero series.
func MeanSeries(series ...*StepSeries) *StepSeries {
	if len(series) == 0 {
		return NewStepSeries(0)
	}
	pts := changePoints(series)
	out := NewStepSeries(0)
	for _, t := range pts {
		total := 0.0
		for _, s := range series {
			total += s.Value(t)
		}
		out.Set(t, total/float64(len(series)))
	}
	return out
}

func changePoints(series []*StepSeries) []float64 {
	seen := map[float64]bool{0: true}
	var pts []float64
	pts = append(pts, 0)
	for _, s := range series {
		for _, t := range s.times {
			if !seen[t] {
				seen[t] = true
				pts = append(pts, t)
			}
		}
	}
	sort.Float64s(pts)
	return pts
}

// JoulesToWh converts joules to watt-hours (the unit Table 2 reports).
func JoulesToWh(j float64) float64 { return j / 3600 }

// Sparkline renders values as a one-line unicode sparkline, a quick terminal
// stand-in for the utilization plots in Figure 3.
func Sparkline(values []float64, max float64) string {
	if max <= 0 {
		max = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		frac := v / max
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		idx := int(frac * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}
