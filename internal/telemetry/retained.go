package telemetry

import (
	"fmt"
	"math"
)

// Rollup summarizes one compacted epoch of a series: the exact integral over
// [StartS, EndS) plus the max and time-weighted mean attained in it. Rollups
// are computed from the live series immediately before its points are
// dropped, so the integral is exact and the max is the true epoch max.
type Rollup struct {
	StartS   float64
	EndS     float64
	Integral float64
	Max      float64
	Mean     float64
}

// RetainedSeries is a StepSeries under tiered retention: full-resolution
// change points are kept only at or after a watermark, while everything
// older is collapsed into per-epoch Rollup buckets. Window queries that stay
// at or after the watermark hit the live series and are bit-identical to the
// never-compacted series (CompactBefore preserves the cumulative-integral
// index exactly); queries reaching behind the watermark combine bucket
// rollups with the live tail — exact at bucket boundaries, mean-prorated
// inside a partially-covered bucket, and conservative (an upper bound) for
// Max.
//
// Like StepSeries it is single-goroutine: the simulation engine owns it.
type RetainedSeries struct {
	// live is held by value so a retained series is a single allocation
	// (plus the live series' slab).
	live      StepSeries
	watermark float64
	buckets   []Rollup
	dropped   int
}

// NewRetained returns a retained series with an initial value from t=0 and
// an empty rollup history.
func NewRetained(initial float64) *RetainedSeries {
	r := &RetainedSeries{}
	r.live.initStepSeries(initial)
	return r
}

// Live returns the full-resolution series covering [watermark, now]. Its
// oldest change point is the last one at or before the watermark (it carries
// the value in effect there).
func (r *RetainedSeries) Live() *StepSeries { return &r.live }

// Watermark returns the retention watermark: full-resolution history exists
// only at or after it.
func (r *RetainedSeries) Watermark() float64 { return r.watermark }

// Rollups returns the compacted-epoch buckets, oldest first. The returned
// slice is the internal one; callers must not mutate it.
func (r *RetainedSeries) Rollups() []Rollup { return r.buckets }

// DroppedPoints returns the total change points compacted away so far.
func (r *RetainedSeries) DroppedPoints() int { return r.dropped }

// Len returns live change points retained (rollup buckets not included).
func (r *RetainedSeries) Len() int { return r.live.Len() }

// Set, AddDelta, Last and Value delegate to the live series.
func (r *RetainedSeries) Set(t, v float64)      { r.live.Set(t, v) }
func (r *RetainedSeries) AddDelta(t, d float64) { r.live.AddDelta(t, d) }
func (r *RetainedSeries) Last() float64         { return r.live.Last() }
func (r *RetainedSeries) Value(t float64) float64 {
	return r.live.Value(t)
}

// maxRollups bounds the bucket list: without a cap, one bucket per epoch
// per series is a small but unbounded leak — the exact growth mode tiered
// retention exists to kill. Past the cap the two oldest buckets merge
// (integrals add exactly, maxes take the max), so the oldest bucket absorbs
// deep history at ever-coarser granularity while recent epochs stay sharp.
const maxRollups = 64

// CompactBefore advances the watermark to t: the epoch [old watermark, t) is
// summarized into one rollup bucket (computed from the still-complete live
// series, so its integral is exact), then the live points before t are
// dropped. Compacting at or behind the current watermark is a no-op.
// Returns the number of live change points dropped.
func (r *RetainedSeries) CompactBefore(t float64) int {
	if t <= r.watermark || r.live.Len() == 0 {
		return 0
	}
	r.buckets = append(r.buckets, Rollup{
		StartS:   r.watermark,
		EndS:     t,
		Integral: r.live.Integral(r.watermark, t),
		Max:      r.live.Max(r.watermark, t),
		Mean:     r.live.Mean(r.watermark, t),
	})
	if len(r.buckets) > maxRollups {
		a, b := r.buckets[0], r.buckets[1]
		merged := Rollup{
			StartS:   a.StartS,
			EndS:     b.EndS,
			Integral: a.Integral + b.Integral,
			Max:      math.Max(a.Max, b.Max),
		}
		if span := merged.EndS - merged.StartS; span > 0 {
			merged.Mean = merged.Integral / span
		}
		r.buckets = append(r.buckets[:1], r.buckets[2:]...)
		r.buckets[0] = merged
	}
	n := r.live.CompactBefore(t)
	r.dropped += n
	r.watermark = t
	return n
}

// Integral returns ∫ over [t0, t1]. At or after the watermark it is the live
// series' exact (bit-identical) answer; behind it, fully-covered buckets
// contribute their exact integrals and a partially-covered bucket is
// prorated by its mean.
func (r *RetainedSeries) Integral(t0, t1 float64) float64 {
	if t0 > t1 {
		panic(fmt.Sprintf("telemetry: integral over reversed interval [%v,%v]", t0, t1))
	}
	if t0 >= r.watermark {
		return r.live.Integral(t0, t1)
	}
	total := 0.0
	for _, b := range r.buckets {
		lo, hi := math.Max(b.StartS, t0), math.Min(b.EndS, t1)
		if hi <= lo {
			continue
		}
		if lo == b.StartS && hi == b.EndS {
			total += b.Integral
		} else {
			total += b.Mean * (hi - lo)
		}
	}
	if t1 > r.watermark {
		total += r.live.Integral(r.watermark, t1)
	}
	return total
}

// Mean returns the time-weighted mean over [t0, t1]; zero for an empty
// window. On the live side it reproduces StepSeries.Mean bit-for-bit.
func (r *RetainedSeries) Mean(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	return r.Integral(t0, t1) / (t1 - t0)
}

// Max returns the maximum attained in [t0, t1]. Behind the watermark it
// takes the max over the covered buckets' epoch maxima, which is an upper
// bound on (and at bucket granularity equal to) the true window max.
func (r *RetainedSeries) Max(t0, t1 float64) float64 {
	if t0 >= r.watermark {
		return r.live.Max(t0, t1)
	}
	max := math.Inf(-1)
	covered := false
	for _, b := range r.buckets {
		if math.Min(b.EndS, t1) > math.Max(b.StartS, t0) {
			covered = true
			if b.Max > max {
				max = b.Max
			}
		}
	}
	if t1 > r.watermark {
		if m := r.live.Max(r.watermark, t1); m > max {
			max = m
		}
		covered = true
	}
	if !covered {
		return r.live.Value(t0)
	}
	return max
}
