package report

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestFinalizeComputesClusterQuantities(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	a, err := cl.AllocGPUs(8, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	a.SetIntensity(1)
	se.Schedule(100, func() { a.Release() })
	se.Run()

	r := &Report{Name: "test", MakespanS: 100}
	if err := Finalize(r, cl); err != nil {
		t.Fatal(err)
	}

	spec := hardware.DefaultCatalog().MustGPU(hardware.GPUA100)
	wantJ := 8 * spec.PeakWatts * 100 // busy GPUs at peak
	// Idle GPUs (0 here: VM has 8, all allocated)... VM has 8 GPUs total.
	if gotWh := r.GPUEnergyWh; gotWh < telemetry.JoulesToWh(wantJ)*0.99 {
		t.Fatalf("GPU energy = %v Wh, want >= %v", gotWh, telemetry.JoulesToWh(wantJ))
	}
	if r.CostUSD <= 0 {
		t.Fatal("cost not computed")
	}
	if r.MeanGPUUtil != 1 {
		t.Fatalf("mean GPU util = %v, want 1 (all devices busy whole window)", r.MeanGPUUtil)
	}
	if r.GPUUtil() == nil || r.CPUUtil() == nil {
		t.Fatal("utilization series missing")
	}
	if got := r.GPUUtil().Mean(0, 100); math.Abs(got-r.MeanGPUUtil) > 1e-9 {
		t.Fatalf("lazy curve mean %v disagrees with finalized MeanGPUUtil %v", got, r.MeanGPUUtil)
	}
}

// TestFinalizeFailsLoudlyBehindWatermark: a finalization window that begins
// before the cluster's retention watermark must return the typed error with
// both bounds, not silently integrate missing history to zeros.
func TestFinalizeFailsLoudlyBehindWatermark(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	a, err := cl.AllocGPUs(2, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	a.SetIntensity(1)
	se.Schedule(200, func() { a.Release() })
	se.Run()
	cl.AdvanceEpoch(150)

	r := &Report{Name: "stale", StartS: 50, MakespanS: 100}
	err = Finalize(r, cl)
	var typed *WindowCompactedError
	if !errors.As(err, &typed) {
		t.Fatalf("Finalize = %v, want *WindowCompactedError", err)
	}
	if typed.StartS != 50 || typed.WatermarkS != 150 {
		t.Fatalf("error bounds = %+v, want StartS 50, WatermarkS 150", typed)
	}
	if r.GPUEnergyWh != 0 || r.CostUSD != 0 {
		t.Fatal("a failed Finalize must leave cluster-derived fields zero")
	}

	// At or after the watermark the same report finalizes cleanly.
	r2 := &Report{Name: "fresh", StartS: 150, MakespanS: 50}
	if err := Finalize(r2, cl); err != nil {
		t.Fatalf("Finalize at the watermark: %v", err)
	}
	if r2.GPUEnergyWh <= 0 {
		t.Fatal("retained-window finalize produced no energy")
	}
}

func TestStringIncludesHeadlineFields(t *testing.T) {
	r := &Report{
		Name: "x", MakespanS: 12.5, GPUEnergyWh: 3.25, CPUEnergyWh: 1,
		CostUSD: 0.5, MeanGPUUtil: 0.5, MeanCPUUtil: 0.25,
		Quality: 0.9, PlanningOverheadFrac: 0.005,
	}
	s := r.String()
	for _, want := range []string{"12.5s", "3.2 Wh", "$0.500", "quality 0.90", "planning 0.50%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// Optional fields omitted when zero.
	r2 := &Report{Name: "y", MakespanS: 1}
	if strings.Contains(r2.String(), "quality") || strings.Contains(r2.String(), "planning") {
		t.Errorf("zero optional fields rendered: %q", r2.String())
	}
}

func TestTimelineWithoutTracer(t *testing.T) {
	r := &Report{}
	if got := r.Timeline(40); got != "(no trace)\n" {
		t.Fatalf("Timeline = %q", got)
	}
	tr := telemetry.NewTracer()
	tr.Add(telemetry.Span{Track: "stt", Start: 0, End: 5})
	r.Tracer = tr
	if !strings.Contains(r.Timeline(40), "stt") {
		t.Fatal("timeline missing track")
	}
}

func TestUtilizationCSV(t *testing.T) {
	r := &Report{MakespanS: 10}
	if got := r.UtilizationCSV(1); got != "" {
		t.Fatalf("CSV without series = %q", got)
	}
	g := telemetry.NewStepSeries(0)
	g.Set(5, 1)
	r.SetUtilSeries(g, telemetry.NewStepSeries(0.5))
	out := r.UtilizationCSV(5)
	if !strings.HasPrefix(out, "time_s,cpu_util,gpu_util\n") {
		t.Fatalf("CSV header = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV rows = %d, want header + 2", len(lines))
	}
}
