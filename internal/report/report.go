// Package report defines the common result record produced by both the
// baseline imperative executor and the Murakkab runtime, carrying exactly
// the quantities the paper's evaluation reports: completion time and energy
// (Table 2), execution traces and utilization curves (Figure 3), plus cost
// and quality estimates for the optimizer ablations.
package report

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

// Report summarizes one workflow execution.
type Report struct {
	Name string
	// StartS is the simulated time the workflow started. It anchors the
	// energy/cost/utilization window: standalone experiment runs start at 0,
	// but jobs admitted into a long-lived serving runtime start mid-history,
	// and their reports must integrate [StartS, StartS+MakespanS] — not the
	// cluster's distant past.
	StartS float64
	// MakespanS is workflow completion time in seconds (Table 2 "Time").
	MakespanS float64
	// GPUEnergyWh is GPU energy over the run (Table 2 "Energy"): the paper
	// measures "only the GPU energy consumption since that is the dominant
	// source in the system".
	GPUEnergyWh float64
	// CPUEnergyWh is CPU energy over the run (reported for completeness).
	CPUEnergyWh float64
	// CostUSD is the cluster rental bill for the run.
	CostUSD float64
	// MeanGPUUtil / MeanCPUUtil are run-averaged utilizations in [0,1]
	// (Figure 3's utilization panels, collapsed).
	MeanGPUUtil float64
	MeanCPUUtil float64
	// Quality is the estimated result quality in [0,1].
	Quality float64
	// PlanningOverheadFrac is planning time / makespan (§3.3(b): < 1%).
	PlanningOverheadFrac float64
	// TasksCompleted counts executed DAG nodes / pipeline steps.
	TasksCompleted int

	// Tracer holds per-agent spans (Figure 3 timelines).
	Tracer *telemetry.Tracer

	// Decisions records the chosen configuration per capability
	// ("<impl> @ <config> ×<parallelism>"), empty for the baseline.
	Decisions map[string]string

	// utilSrc backs the lazily-materialized utilization curves: a load
	// sweep finalizes hundreds of reports but only figure-rendering callers
	// ever read the curves, so Finalize must not pay the O(n) copy per job.
	// The handle holds only the two aggregate series, never the cluster.
	utilSrc cluster.UtilSource
	gpuUtil *telemetry.StepSeries
	cpuUtil *telemetry.StepSeries
}

// WindowCompactedError reports a finalization window that begins behind the
// cluster's telemetry retention watermark: the full-resolution history it
// would integrate has been compacted away, so the exact per-job quantities
// are unrecoverable. Callers must keep the watermark behind every live
// job's start (the serving pool clamps its compaction tick to the oldest
// running job) — hitting this error means the retention policy and the job
// lifecycle disagree, and it is surfaced loudly rather than silently
// reporting zeros integrated over missing history.
type WindowCompactedError struct {
	// StartS is the requested window start; WatermarkS the cluster
	// watermark it fell behind.
	StartS     float64
	WatermarkS float64
}

func (e *WindowCompactedError) Error() string {
	return fmt.Sprintf("report: window start %.3fs predates telemetry watermark %.3fs (history compacted)",
		e.StartS, e.WatermarkS)
}

// Finalize fills the cluster-derived fields (energy, cost, utilization) for
// the window [StartS, StartS+MakespanS]. Every read is an O(log n) query
// against the cluster's running aggregates; the utilization curves
// materialize lazily on first access (GPUUtil/CPUUtil). It returns a
// *WindowCompactedError — leaving the report's cluster-derived fields zero —
// when the window begins behind the cluster's retention watermark, where
// the per-job integrals can no longer be answered exactly.
func Finalize(r *Report, cl *cluster.Cluster) error {
	start, end := r.StartS, r.StartS+r.MakespanS
	if wm := cl.Watermark(); start < wm {
		return &WindowCompactedError{StartS: start, WatermarkS: wm}
	}
	r.utilSrc = cl.UtilSource()
	r.GPUEnergyWh = telemetry.JoulesToWh(cl.GPUEnergyJoules(start, end))
	r.CPUEnergyWh = telemetry.JoulesToWh(cl.CPUEnergyJoules(start, end))
	r.CostUSD = cl.RentalCostUSD(start, end)
	if r.MakespanS > 0 {
		r.MeanGPUUtil = cl.MeanGPUUtilOver(start, end)
		r.MeanCPUUtil = cl.MeanCPUUtilOver(start, end)
	}
	return nil
}

// GPUUtil returns the cluster-average GPU utilization curve (Figure 3),
// materialized and cached on first call; nil before Finalize unless
// injected via SetUtilSeries.
func (r *Report) GPUUtil() *telemetry.StepSeries {
	r.materializeUtil()
	return r.gpuUtil
}

// CPUUtil returns the core-weighted CPU utilization curve (Figure 3), with
// the same laziness as GPUUtil.
func (r *Report) CPUUtil() *telemetry.StepSeries {
	r.materializeUtil()
	return r.cpuUtil
}

func (r *Report) materializeUtil() {
	src := r.utilSrc
	if src == (cluster.UtilSource{}) {
		return
	}
	if r.gpuUtil == nil {
		r.gpuUtil = src.GPUUtilSeries()
	}
	if r.cpuUtil == nil {
		r.cpuUtil = src.CPUUtilSeries()
	}
	r.utilSrc = cluster.UtilSource{}
}

// SetUtilSeries injects explicit utilization curves (synthetic reports,
// tests).
func (r *Report) SetUtilSeries(gpu, cpu *telemetry.StepSeries) {
	r.gpuUtil, r.cpuUtil = gpu, cpu
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.1fs, GPU %.1f Wh, CPU %.1f Wh, $%.3f, util GPU %.0f%% CPU %.0f%%",
		r.Name, r.MakespanS, r.GPUEnergyWh, r.CPUEnergyWh, r.CostUSD,
		100*r.MeanGPUUtil, 100*r.MeanCPUUtil)
	if r.Quality > 0 {
		fmt.Fprintf(&b, ", quality %.2f", r.Quality)
	}
	if r.PlanningOverheadFrac > 0 {
		fmt.Fprintf(&b, ", planning %.2f%%", 100*r.PlanningOverheadFrac)
	}
	return b.String()
}

// Timeline renders the Figure 3 execution trace as ASCII.
func (r *Report) Timeline(width int) string {
	if r.Tracer == nil {
		return "(no trace)\n"
	}
	return telemetry.Gantt(r.Tracer, width)
}

// UtilizationCSV renders the Figure 3 utilization panels as CSV on a dt grid.
func (r *Report) UtilizationCSV(dt float64) string {
	gpu, cpu := r.GPUUtil(), r.CPUUtil()
	if gpu == nil || cpu == nil {
		return ""
	}
	return telemetry.SeriesCSV(
		[]string{"cpu_util", "gpu_util"},
		[]*telemetry.StepSeries{cpu, gpu},
		0, r.MakespanS, dt,
	)
}
