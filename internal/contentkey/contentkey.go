// Package contentkey provides the injective encoding shared by every
// content-keyed cache in the repository (catalog/library fingerprints, the
// runtime's plan and decomposition caches): strings are length-prefixed and
// numbers semicolon-terminated, so concatenated fields can never be
// re-segmented into a different value sequence — no crafted name collides
// with another key. Keeping the contract in one leaf package means a format
// change cannot drift between producers.
package contentkey

import (
	"strconv"
	"strings"
)

// WriteString appends s as "<len>:<s>".
func WriteString(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

// WriteFloat appends f in shortest round-trip form, ';'-terminated (';'
// cannot occur in a formatted number).
func WriteFloat(b *strings.Builder, f float64) {
	b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	b.WriteByte(';')
}

// WriteInt appends n ';'-terminated.
func WriteInt(b *strings.Builder, n int) {
	b.WriteString(strconv.Itoa(n))
	b.WriteByte(';')
}
