// Package contentkey provides the injective encoding shared by every
// content-keyed cache in the repository (catalog/library fingerprints, the
// runtime's plan and decomposition caches): strings are length-prefixed and
// numbers semicolon-terminated, so concatenated fields can never be
// re-segmented into a different value sequence — no crafted name collides
// with another key. Keeping the contract in one leaf package means a format
// change cannot drift between producers.
package contentkey

import (
	"strconv"
	"strings"
)

// WriteString appends s as "<len>:<s>".
func WriteString(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

// WriteFloat appends f in shortest round-trip form, ';'-terminated (';'
// cannot occur in a formatted number).
func WriteFloat(b *strings.Builder, f float64) {
	b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	b.WriteByte(';')
}

// WriteInt appends n ';'-terminated.
func WriteInt(b *strings.Builder, n int) {
	b.WriteString(strconv.Itoa(n))
	b.WriteByte(';')
}

// AppendString appends s as "<len>:<s>" to key and returns the extended
// slice. The Append* variants mirror the Write* ones but target a reusable
// []byte scratch buffer, so a hot path can rebuild a key with zero
// allocations and look it up with the no-alloc m[string(key)] map pattern.
func AppendString(key []byte, s string) []byte {
	key = strconv.AppendInt(key, int64(len(s)), 10)
	key = append(key, ':')
	return append(key, s...)
}

// AppendFloat appends f in shortest round-trip form, ';'-terminated.
func AppendFloat(key []byte, f float64) []byte {
	key = strconv.AppendFloat(key, f, 'g', -1, 64)
	return append(key, ';')
}

// AppendInt appends n ';'-terminated.
func AppendInt(key []byte, n int) []byte {
	key = strconv.AppendInt(key, int64(n), 10)
	return append(key, ';')
}

// Interner dedups the key strings the content-keyed caches are indexed by.
// Admission rebuilds the same job/plan/decomposition keys for every request
// of a given shape; interning materializes each distinct key string once and
// hands the canonical copy back on every later build, so steady-state key
// construction allocates nothing (the probe is a m[string(buf)] lookup,
// which Go compiles without a conversion allocation).
//
// An Interner is not goroutine-safe; each owner (one per scheduler loop or
// per plan-search worker) keeps its own.
type Interner struct {
	m     map[string]string
	limit int
	hits  uint64
	miss  uint64
}

// DefaultInternerLimit bounds how many distinct keys an interner retains
// before it resets. Distinct key shapes are few (per workflow kind ×
// capacity class), so the bound exists only to keep a pathological workload
// from growing the table without end.
const DefaultInternerLimit = 4096

// NewInterner returns an interner retaining at most limit distinct keys
// (<=0 means DefaultInternerLimit).
func NewInterner(limit int) *Interner {
	if limit <= 0 {
		limit = DefaultInternerLimit
	}
	// No size hint: short-lived runtimes (per-request testbeds) intern only
	// a handful of keys, and a hinted map eagerly allocates its bucket array.
	return &Interner{m: make(map[string]string), limit: limit}
}

// Intern returns the canonical string for key, materializing the string at
// most once per distinct key. When the table is full it resets rather than
// evicting — deterministic, and re-warming costs one allocation per live
// key.
func (in *Interner) Intern(key []byte) string {
	if s, ok := in.m[string(key)]; ok {
		in.hits++
		return s
	}
	in.miss++
	if len(in.m) >= in.limit {
		in.m = make(map[string]string)
	}
	s := string(key)
	in.m[s] = s
	return s
}

// Stats reports lifetime hit/miss counters (misses count distinct key
// materializations, including re-warming after a reset).
func (in *Interner) Stats() (hits, misses uint64) { return in.hits, in.miss }

// Len reports the number of live canonical keys.
func (in *Interner) Len() int { return len(in.m) }
