package sim

// This file provides small coordination helpers layered on the raw event
// engine: countdown latches, periodic tickers, and resource tokens. They keep
// higher-level packages (cluster manager, runtime) free of ad-hoc event
// bookkeeping.

// Latch invokes its callback once a fixed number of Done calls have arrived.
// It is the simulation analogue of sync.WaitGroup + Wait, expressed as a
// completion callback because the engine is single-threaded.
type Latch struct {
	remaining int
	fired     bool
	engine    *Engine
	onDone    func()
}

// NewLatch creates a latch expecting n completions. If n is zero the callback
// fires on the next tick (deferred, so the caller can finish wiring first).
func NewLatch(e *Engine, n int, onDone func()) *Latch {
	if n < 0 {
		panic("sim: latch with negative count")
	}
	l := &Latch{remaining: n, engine: e, onDone: onDone}
	if n == 0 {
		e.Defer(l.fire)
	}
	return l
}

// Add increases the expected completion count. Adding after the latch fired
// panics: the coordination it guarded has already proceeded.
func (l *Latch) Add(n int) {
	if l.fired {
		panic("sim: Latch.Add after fire")
	}
	l.remaining += n
}

// Done records one completion, firing the callback when the count reaches
// zero.
func (l *Latch) Done() {
	if l.fired {
		panic("sim: Latch.Done after fire")
	}
	l.remaining--
	if l.remaining < 0 {
		panic("sim: Latch.Done below zero")
	}
	if l.remaining == 0 {
		l.fire()
	}
}

// Remaining returns the outstanding completion count.
func (l *Latch) Remaining() int { return l.remaining }

func (l *Latch) fire() {
	if l.fired {
		return
	}
	l.fired = true
	if l.onDone != nil {
		l.onDone()
	}
}

// Ticker invokes a callback at a fixed period until stopped. The callback
// receives the tick time. Tickers drive utilization sampling and the cluster
// manager's rebalancing loop.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func(Time)
	next    *Event
	stopped bool
	// tickFn is the onTick method value, materialized once — arm() runs
	// every period, and a literal closure there would allocate per tick.
	tickFn func()
}

// NewTicker starts a ticker firing every period seconds, with the first tick
// one period from now. A non-positive period panics.
func NewTicker(e *Engine, period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tickFn = t.onTick
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.next = t.engine.After(t.period, t.tickFn)
}

func (t *Ticker) onTick() {
	if t.stopped {
		return
	}
	now := t.engine.Now()
	t.fn(now)
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}

// Tokens is a counted resource with a FIFO wait queue: Acquire either grants
// immediately or parks the callback until Release makes capacity available.
// The cluster allocator and LLM admission control are built on it.
type Tokens struct {
	engine   *Engine
	capacity int
	inUse    int
	waiters  []tokenWaiter
}

type tokenWaiter struct {
	n  int
	fn func()
}

// NewTokens creates a token pool with the given capacity.
func NewTokens(e *Engine, capacity int) *Tokens {
	if capacity < 0 {
		panic("sim: negative token capacity")
	}
	return &Tokens{engine: e, capacity: capacity}
}

// Capacity returns the total token count.
func (tk *Tokens) Capacity() int { return tk.capacity }

// InUse returns the number of tokens currently held.
func (tk *Tokens) InUse() int { return tk.inUse }

// Available returns the number of free tokens.
func (tk *Tokens) Available() int { return tk.capacity - tk.inUse }

// QueueLen returns the number of parked acquisitions.
func (tk *Tokens) QueueLen() int { return len(tk.waiters) }

// Resize changes capacity. Shrinking below the in-use count is allowed — the
// pool simply stops granting until enough tokens are released. Growth drains
// the wait queue.
func (tk *Tokens) Resize(capacity int) {
	if capacity < 0 {
		panic("sim: negative token capacity")
	}
	tk.capacity = capacity
	tk.drain()
}

// Acquire requests n tokens and invokes granted when they are held. Grants
// are FIFO; a large request at the head blocks later small ones (no
// starvation). Requests larger than capacity panic: they could never be
// granted.
func (tk *Tokens) Acquire(n int, granted func()) {
	if n < 0 {
		panic("sim: negative token acquire")
	}
	if n > tk.capacity && tk.capacity > 0 {
		panic("sim: token acquire exceeds capacity")
	}
	tk.waiters = append(tk.waiters, tokenWaiter{n: n, fn: granted})
	tk.drain()
}

// Release returns n tokens to the pool.
func (tk *Tokens) Release(n int) {
	if n < 0 {
		panic("sim: negative token release")
	}
	tk.inUse -= n
	if tk.inUse < 0 {
		panic("sim: token release below zero")
	}
	tk.drain()
}

func (tk *Tokens) drain() {
	for len(tk.waiters) > 0 {
		w := tk.waiters[0]
		if tk.inUse+w.n > tk.capacity {
			return
		}
		tk.waiters = tk.waiters[1:]
		tk.inUse += w.n
		// Defer the grant so the callback observes a consistent pool and
		// cannot recursively reorder the queue mid-drain.
		tk.engine.Defer(w.fn)
	}
}
