package sim

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLoopExecutesPostedWorkAndEvents(t *testing.T) {
	eng := NewEngine()
	l := NewLoop(eng)
	go l.Run()

	var fired atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	ok := l.Post(func() {
		eng.After(1.5, func() {
			fired.Add(1)
			wg.Done()
		})
	})
	if !ok {
		t.Fatal("Post rejected before Close")
	}
	wg.Wait()
	l.Close()
	if fired.Load() != 1 {
		t.Fatalf("fired = %d, want 1", fired.Load())
	}
	if eng.Now() != 1.5 {
		t.Fatalf("now = %v, want 1.5", eng.Now())
	}
}

func TestLoopConcurrentPosters(t *testing.T) {
	eng := NewEngine()
	l := NewLoop(eng)
	go l.Run()

	const posters, perPoster = 8, 50
	var done atomic.Int32
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				if !l.Post(func() {
					eng.After(0.1, func() { done.Add(1) })
				}) {
					t.Error("Post rejected mid-run")
					return
				}
			}
		}()
	}
	wg.Wait()
	l.Close() // drains every cascaded event before returning
	if got := done.Load(); got != posters*perPoster {
		t.Fatalf("events executed = %d, want %d", got, posters*perPoster)
	}
}

func TestLoopCloseDrainsAndRejectsNewPosts(t *testing.T) {
	eng := NewEngine()
	l := NewLoop(eng)
	go l.Run()

	var chain atomic.Int32
	l.Post(func() {
		// A three-deep event cascade: Close must wait for all of it.
		eng.After(1, func() {
			chain.Add(1)
			eng.After(1, func() {
				chain.Add(1)
				eng.After(1, func() { chain.Add(1) })
			})
		})
	})
	l.Close()
	if chain.Load() != 3 {
		t.Fatalf("cascade executed %d of 3 before Close returned", chain.Load())
	}
	if l.Post(func() {}) {
		t.Fatal("Post accepted after Close")
	}
	l.Close() // idempotent
}

func TestStepReentrancyPanics(t *testing.T) {
	eng := NewEngine()
	eng.After(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Step did not panic")
			}
		}()
		eng.Step()
	})
	eng.Run()
}

// TestLoopHoldKeepsDrainAlive: Close must not complete while a hold is
// outstanding — the held completion still lands (even though plain Posts are
// already rejected) and its cascaded events run before Run exits.
func TestLoopHoldKeepsDrainAlive(t *testing.T) {
	eng := NewEngine()
	l := NewLoop(eng)
	go l.Run()

	var hold *LoopHold
	took := make(chan struct{})
	l.Post(func() {
		hold = l.Hold() // on the loop goroutine, as the contract requires
		close(took)
	})
	<-took

	closed := make(chan struct{})
	go func() { l.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with a hold outstanding")
	default:
	}

	// Plain posts are rejected while draining; the held completion is not.
	var fired, cascaded atomic.Int32
	for l.Post(func() {}) { // wait until Close has latched the loop
	}
	hold.Post(func() {
		fired.Add(1)
		eng.After(1, func() { cascaded.Add(1) })
	})
	<-closed
	if fired.Load() != 1 || cascaded.Load() != 1 {
		t.Fatalf("fired=%d cascaded=%d, want 1/1 (held completion must drain)",
			fired.Load(), cascaded.Load())
	}
}

// TestLoopHoldRelease: an abandoned hold unblocks drain without posting.
func TestLoopHoldRelease(t *testing.T) {
	eng := NewEngine()
	l := NewLoop(eng)
	go l.Run()

	var hold *LoopHold
	took := make(chan struct{})
	l.Post(func() { hold = l.Hold(); close(took) })
	<-took
	go hold.Release()
	l.Close()      // would deadlock if Release did not count down
	hold.Release() // idempotent after resolution
}

// TestLoopHoldDoublePostPanics: a hold is a promise of exactly one completion.
func TestLoopHoldDoublePostPanics(t *testing.T) {
	eng := NewEngine()
	l := NewLoop(eng)
	go l.Run()
	defer l.Close()

	var hold *LoopHold
	took := make(chan struct{})
	l.Post(func() { hold = l.Hold(); close(took) })
	<-took
	hold.Post(func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Post on a resolved hold did not panic")
		}
	}()
	hold.Post(func() {})
}
