// Package sim provides a deterministic discrete-event simulation engine.
//
// Every timed behaviour in the repository — agent execution, LLM token
// generation, cluster scaling, utilization sampling — is driven by a single
// sim.Engine. The engine is strictly single-threaded: events execute in
// (time, sequence) order on the caller's goroutine, which makes every run
// bit-for-bit reproducible. Simulated time is a float64 number of seconds
// with no relation to the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration float64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Forever is a sentinel for "no deadline".
const Forever = Time(math.MaxFloat64)

// Event is a scheduled callback. It is returned by Schedule/After so the
// caller can cancel it before it fires.
type Event struct {
	at  Time
	seq uint64
	// tick is the wheel bucket key, tickOf(at), set once at scheduling
	// (unused by the heap arm).
	tick uint64
	// next links events within one wheel bucket (intrusive, so filing an
	// event allocates nothing); nil outside a bucket and on the heap arm.
	next     *Event
	index    int // heap index (heap arm); <0 once fired or cancelled
	owner    *Engine
	fn       func()
	canceled bool
}

// At returns the simulated time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing and releases its callback (and
// whatever the callback closes over) immediately. On the timer wheel this
// is O(1): the event is marked dead where it sits, skipped lazily when its
// bucket is reached, and drained eagerly whenever it surfaces at a bucket
// head; the live-event counter drops right away, so Pending never counts
// it. On the heap arm (DisableEventWheel) the event is removed from the
// queue eagerly via its stored heap index. Cancelling an event that
// already fired or was already cancelled is a no-op. Cancel returns true
// if the event had been pending.
func (e *Event) Cancel() bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	own := e.owner
	if own.noWheel {
		heap.Remove(&own.queue, e.index)
	} else {
		own.wheel.live--
		own.wheel.cancelsLazy++
	}
	e.index = -1
	e.fn = nil
	return true
}

// Engine is the discrete-event simulator core. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	running bool
	// processed counts events executed since construction; useful for
	// runaway detection in tests.
	processed uint64
	// maxEvents aborts Run after this many events when non-zero.
	maxEvents uint64
	// slab is the current event allocation block: events are carved out of
	// pre-sized slabs so scheduling costs one heap allocation per
	// eventSlabSize events instead of one each. A block is reclaimed by the
	// GC once every event in it has fired or been cancelled and no caller
	// holds a handle.
	slab    []Event
	slabOff int
	// peakPending records the high-water mark of the pending queue, the
	// sizing hint a rebuilt engine's Reserve call uses.
	peakPending int
	// noSlab allocates each event individually — the differential test's
	// reference configuration proving slab carving changes nothing.
	noSlab bool

	// The event queue has two arms. The default is the hierarchical timer
	// wheel (see wheel.go): O(1) amortized schedule/cancel, pops found by
	// bitmap scan instead of O(log n) heap comparisons. noWheel switches to
	// the reference binary-heap queue, kept alive so the differential and
	// property tests can prove the wheel changes nothing observable.
	noWheel bool
	queue   eventQueue // heap arm
	wheel   wheel      // wheel arm
}

// DisableEventWheel, when set before engines are constructed, routes every
// NewEngine onto the reference binary-heap event queue instead of the
// hierarchical timer wheel. Like core.DisableAllocReuse it exists for the
// differential tests (wheel on vs off must be byte-identical) and as an
// operational escape hatch; it is not a tuning knob.
var DisableEventWheel bool

// DisableEventWheel switches this engine onto the heap queue. It must be
// called before any event is scheduled; the two arms file pending events
// in incompatible structures.
func (e *Engine) DisableEventWheel() {
	if e.seq != 0 {
		panic("sim: DisableEventWheel after events were scheduled")
	}
	e.noWheel = true
}

// DisableEventSlab makes the engine allocate every event individually
// instead of carving pre-sized slabs. Scheduling semantics are unchanged; it
// exists so the differential test can run a no-reuse reference stack.
func (e *Engine) DisableEventSlab() { e.noSlab = true }

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	e := &Engine{}
	if DisableEventWheel {
		e.noWheel = true
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// WheelEvents returns how many scheduled events were filed into the timer
// wheel's near-future levels (zero on the heap arm).
func (e *Engine) WheelEvents() uint64 { return e.wheel.wheelEvents }

// OverflowEvents returns how many scheduled events were parked in the
// wheel's far-future overflow heap (zero on the heap arm).
func (e *Engine) OverflowEvents() uint64 { return e.wheel.overflowEvents }

// CancelsLazy returns how many cancels were handled as O(1) dead marks to
// be skipped lazily (zero on the heap arm, which removes eagerly).
func (e *Engine) CancelsLazy() uint64 { return e.wheel.cancelsLazy }

// SetEventLimit makes Run panic after n events; 0 disables the limit.
// It exists to catch accidental infinite event loops in tests.
func (e *Engine) SetEventLimit(n uint64) { e.maxEvents = n }

// eventSlabSize is the number of events per allocation block.
const eventSlabSize = 64

// newEvent carves the next event out of the current slab.
func (e *Engine) newEvent(at Time, fn func()) *Event {
	if e.noSlab {
		e.seq++
		return &Event{at: at, seq: e.seq, owner: e, fn: fn}
	}
	if e.slabOff == len(e.slab) {
		e.slab = make([]Event, eventSlabSize)
		e.slabOff = 0
	}
	ev := &e.slab[e.slabOff]
	e.slabOff++
	e.seq++
	*ev = Event{at: at, seq: e.seq, owner: e, fn: fn}
	return ev
}

// enqueue files a freshly created event into whichever queue arm is active
// and maintains the pending high-water mark.
func (e *Engine) enqueue(ev *Event) {
	if e.noWheel {
		heap.Push(&e.queue, ev)
		if n := len(e.queue); n > e.peakPending {
			e.peakPending = n
		}
		return
	}
	ev.tick = tickOf(ev.at)
	e.wheel.schedule(ev)
	if e.wheel.live > e.peakPending {
		e.peakPending = e.wheel.live
	}
}

// Schedule arranges for fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality. Ties at the same instant fire
// in scheduling order.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := e.newEvent(at, fn)
	e.enqueue(ev)
	return ev
}

// BatchItem is one (time, callback) entry for ScheduleBatch.
type BatchItem struct {
	At Time
	Fn func()
}

// ScheduleBatch schedules every item, taking consecutive sequence numbers
// exactly as if Schedule had been called per item, so firing order is
// identical to sequential Schedule calls. On the wheel arm each insert is
// already O(1), so the batch is a plain loop; the heap arm appends all
// items and restores the heap invariant with a single O(queue) fix-up pass
// instead of O(batch × log queue) sift-ups. Items fire in slice order at
// equal times. Past times and nil callbacks panic, as in Schedule.
func (e *Engine) ScheduleBatch(items []BatchItem) {
	if len(items) == 0 {
		return
	}
	for _, it := range items {
		if it.At < e.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", it.At, e.now))
		}
		if it.Fn == nil {
			panic("sim: schedule with nil callback")
		}
		ev := e.newEvent(it.At, it.Fn)
		if e.noWheel {
			ev.index = len(e.queue)
			e.queue = append(e.queue, ev)
			continue
		}
		ev.tick = tickOf(ev.at)
		e.wheel.schedule(ev)
	}
	if e.noWheel {
		heap.Init(&e.queue)
		if n := len(e.queue); n > e.peakPending {
			e.peakPending = n
		}
		return
	}
	if e.wheel.live > e.peakPending {
		e.peakPending = e.wheel.live
	}
}

// Reserve grows the pending-queue capacity to hold at least n events without
// reallocation — a rebuilt engine pre-sizes from its predecessor's
// PeakPending so warm-up stops paying growth copies. On the wheel arm this
// pre-sizes the active-bucket and overflow heaps; wheel buckets grow (and
// keep) their backing arrays on demand.
func (e *Engine) Reserve(n int) {
	if e.noWheel {
		if cap(e.queue) >= n {
			return
		}
		q := make(eventQueue, len(e.queue), n)
		copy(q, e.queue)
		e.queue = q
		return
	}
	e.wheel.reserve(n)
}

// PeakPending returns the high-water mark of the pending event queue.
func (e *Engine) PeakPending() int { return e.peakPending }

// After arranges for fn to run d seconds from now. Negative durations panic.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Defer arranges for fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation analogue of
// "process this on the next tick".
func (e *Engine) Defer(fn func()) *Event { return e.Schedule(e.now, fn) }

// Pending reports the number of undelivered live events. The wheel arm
// answers from its live-event counter — cancelled events stop counting the
// moment Cancel marks them dead, without any queue scan; the heap arm
// removes cancelled events eagerly, so its queue length is exact too.
func (e *Engine) Pending() int {
	if e.noWheel {
		return e.queue.Len()
	}
	return e.wheel.live
}

// step executes the earliest pending event. It returns false when the queue
// holds no live events.
func (e *Engine) step() bool {
	var ev *Event
	if e.noWheel {
		// The cancelled-event check is defensive: the heap arm's Cancel
		// removes events eagerly, so none should be observed here.
		for e.queue.Len() > 0 {
			next := heap.Pop(&e.queue).(*Event)
			next.index = -1
			if !next.canceled {
				ev = next
				break
			}
		}
	} else {
		ev = e.wheel.pop()
		if ev != nil {
			ev.index = -1
		}
	}
	if ev == nil {
		return false
	}
	if ev.at < e.now {
		panic("sim: event queue went backwards")
	}
	e.now = ev.at
	e.processed++
	if e.maxEvents != 0 && e.processed > e.maxEvents {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.maxEvents, e.now))
	}
	fn := ev.fn
	// Release the closure before running it: the event's slab block may
	// outlive the event, and fn can close over a whole job's state.
	ev.fn = nil
	fn()
	return true
}

// Step executes the earliest pending event and reports whether one fired.
// It is the unit of the service-drivable stepping mode (see Loop): a daemon
// goroutine can interleave bounded batches of Step calls with externally
// injected work instead of committing to a full Run.
func (e *Engine) Step() bool {
	if e.running {
		panic("sim: Step called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	return e.step()
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.step() {
	}
}

// nextAt reports the earliest live event's firing time without executing
// anything.
func (e *Engine) nextAt() (Time, bool) {
	if e.noWheel {
		ev := e.queue.peekLive()
		if ev == nil {
			return 0, false
		}
		return ev.at, true
	}
	return e.wheel.nextAt()
}

// RunUntil executes events with firing time ≤ deadline, then advances the
// clock to exactly deadline (even if no event fired there). Events scheduled
// beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		at, ok := e.nextAt()
		if !ok || at > deadline {
			break
		}
		e.step()
	}
	e.now = deadline
}

// eventQueue is a min-heap ordered by (at, seq): the engine's reference
// queue arm, selected by DisableEventWheel.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// peekLive returns the earliest non-cancelled event without removing it,
// draining any cancelled events it passes over (defensive: the heap arm
// cancels eagerly, so the head is never dead).
func (q *eventQueue) peekLive() *Event {
	for q.Len() > 0 {
		ev := (*q)[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(q)
	}
	return nil
}
