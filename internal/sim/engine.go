// Package sim provides a deterministic discrete-event simulation engine.
//
// Every timed behaviour in the repository — agent execution, LLM token
// generation, cluster scaling, utilization sampling — is driven by a single
// sim.Engine. The engine is strictly single-threaded: events execute in
// (time, sequence) order on the caller's goroutine, which makes every run
// bit-for-bit reproducible. Simulated time is a float64 number of seconds
// with no relation to the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in seconds since the start of the run.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration float64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Seconds returns the duration as a float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Forever is a sentinel for "no deadline".
const Forever = Time(math.MaxFloat64)

// Event is a scheduled callback. It is returned by Schedule/After so the
// caller can cancel it before it fires.
type Event struct {
	at       Time
	seq      uint64
	index    int // heap index, -1 once popped or cancelled
	owner    *Engine
	fn       func()
	canceled bool
}

// At returns the simulated time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing and removes it from the engine's
// queue immediately via its stored heap index — a cancelled event releases
// its memory (including whatever its callback closes over) right away
// instead of lingering until its firing time is popped. Cancelling an event
// that already fired or was already cancelled is a no-op. Cancel returns
// true if the event had been pending.
func (e *Event) Cancel() bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	heap.Remove(&e.owner.queue, e.index)
	e.index = -1
	e.fn = nil
	return true
}

// Engine is the discrete-event simulator core. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	// processed counts events executed since construction; useful for
	// runaway detection in tests.
	processed uint64
	// maxEvents aborts Run after this many events when non-zero.
	maxEvents uint64
	// slab is the current event allocation block: events are carved out of
	// pre-sized slabs so scheduling costs one heap allocation per
	// eventSlabSize events instead of one each. A block is reclaimed by the
	// GC once every event in it has fired or been cancelled and no caller
	// holds a handle.
	slab    []Event
	slabOff int
	// peakPending records the high-water mark of the pending queue, the
	// sizing hint a rebuilt engine's Reserve call uses.
	peakPending int
	// noSlab allocates each event individually — the differential test's
	// reference configuration proving slab carving changes nothing.
	noSlab bool
}

// DisableEventSlab makes the engine allocate every event individually
// instead of carving pre-sized slabs. Scheduling semantics are unchanged; it
// exists so the differential test can run a no-reuse reference stack.
func (e *Engine) DisableEventSlab() { e.noSlab = true }

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetEventLimit makes Run panic after n events; 0 disables the limit.
// It exists to catch accidental infinite event loops in tests.
func (e *Engine) SetEventLimit(n uint64) { e.maxEvents = n }

// eventSlabSize is the number of events per allocation block.
const eventSlabSize = 64

// newEvent carves the next event out of the current slab.
func (e *Engine) newEvent(at Time, fn func()) *Event {
	if e.noSlab {
		e.seq++
		return &Event{at: at, seq: e.seq, owner: e, fn: fn}
	}
	if e.slabOff == len(e.slab) {
		e.slab = make([]Event, eventSlabSize)
		e.slabOff = 0
	}
	ev := &e.slab[e.slabOff]
	e.slabOff++
	e.seq++
	*ev = Event{at: at, seq: e.seq, owner: e, fn: fn}
	return ev
}

// notePending updates the queue high-water mark after an insertion.
func (e *Engine) notePending() {
	if n := len(e.queue); n > e.peakPending {
		e.peakPending = n
	}
}

// Schedule arranges for fn to run at absolute time at. Scheduling in the past
// panics: it would silently reorder causality. Ties at the same instant fire
// in scheduling order.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	ev := e.newEvent(at, fn)
	heap.Push(&e.queue, ev)
	e.notePending()
	return ev
}

// BatchItem is one (time, callback) entry for ScheduleBatch.
type BatchItem struct {
	At Time
	Fn func()
}

// ScheduleBatch schedules every item with a single heap-fix pass: the items
// are appended to the queue in order (taking consecutive sequence numbers,
// exactly as if Schedule had been called per item) and the heap invariant is
// restored once, O(queue) instead of O(batch × log queue). Firing order is
// identical to sequential Schedule calls — the queue pops in strict
// (time, sequence) order regardless of internal heap layout. Items fire in
// slice order at equal times. Past times and nil callbacks panic, as in
// Schedule.
func (e *Engine) ScheduleBatch(items []BatchItem) {
	if len(items) == 0 {
		return
	}
	for _, it := range items {
		if it.At < e.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", it.At, e.now))
		}
		if it.Fn == nil {
			panic("sim: schedule with nil callback")
		}
		ev := e.newEvent(it.At, it.Fn)
		ev.index = len(e.queue)
		e.queue = append(e.queue, ev)
	}
	heap.Init(&e.queue)
	e.notePending()
}

// Reserve grows the pending-queue capacity to hold at least n events without
// reallocation — a rebuilt engine pre-sizes from its predecessor's
// PeakPending so warm-up stops paying growth copies.
func (e *Engine) Reserve(n int) {
	if cap(e.queue) >= n {
		return
	}
	q := make(eventQueue, len(e.queue), n)
	copy(q, e.queue)
	e.queue = q
}

// PeakPending returns the high-water mark of the pending event queue.
func (e *Engine) PeakPending() int { return e.peakPending }

// After arranges for fn to run d seconds from now. Negative durations panic.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Defer arranges for fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation analogue of
// "process this on the next tick".
func (e *Engine) Defer(fn func()) *Event { return e.Schedule(e.now, fn) }

// Pending reports the number of undelivered live events. Cancelled events
// are removed from the queue eagerly and never counted.
func (e *Engine) Pending() int { return e.queue.Len() }

// step executes the earliest pending event. It returns false when the queue
// holds no live events. The cancelled-event check is defensive: Cancel
// removes events from the heap eagerly, so none should be observed here.
func (e *Engine) step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		e.processed++
		if e.maxEvents != 0 && e.processed > e.maxEvents {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", e.maxEvents, e.now))
		}
		fn := ev.fn
		// Release the closure before running it: the event's slab block may
		// outlive the event, and fn can close over a whole job's state.
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Step executes the earliest pending event and reports whether one fired.
// It is the unit of the service-drivable stepping mode (see Loop): a daemon
// goroutine can interleave bounded batches of Step calls with externally
// injected work instead of committing to a full Run.
func (e *Engine) Step() bool {
	if e.running {
		panic("sim: Step called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	return e.step()
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.step() {
	}
}

// RunUntil executes events with firing time ≤ deadline, then advances the
// clock to exactly deadline (even if no event fired there). Events scheduled
// beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	if deadline < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", deadline, e.now))
	}
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		ev := e.queue.peekLive()
		if ev == nil || ev.at > deadline {
			break
		}
		e.step()
	}
	e.now = deadline
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// peekLive returns the earliest non-cancelled event without removing it,
// draining any cancelled events it passes over.
func (q *eventQueue) peekLive() *Event {
	for q.Len() > 0 {
		ev := (*q)[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(q)
	}
	return nil
}
