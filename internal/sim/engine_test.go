package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine at %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine has %d pending events", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final time %v, want 3", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(5, func() { order = append(order, "a") })
	e.Schedule(5, func() { order = append(order, "b") })
	e.Schedule(5, func() { order = append(order, "c") })
	e.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tie order = %q, want abc", got)
	}
}

func TestAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(2, func() {
		times = append(times, e.Now())
		e.After(3, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 2 || times[1] != 5 {
		t.Fatalf("times = %v, want [2 5]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	later := e.Schedule(10, func() { fired = true })
	e.Schedule(1, func() { later.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event fired despite cancellation at t=1")
	}
	if e.Now() != 1 {
		t.Fatalf("clock advanced to %v; cancelled event should not move time", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1..3", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v after second RunUntil", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %v, want 10 (deadline with no events)", e.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(3, func() { fired = true })
	e.RunUntil(3)
	if !fired {
		t.Fatal("event exactly at deadline did not fire")
	}
}

func TestDeferRunsAtSameInstantAfterQueued(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(1, func() {
		e.Defer(func() { order = append(order, "deferred") })
		order = append(order, "first")
	})
	e.Schedule(1, func() { order = append(order, "second") })
	e.Run()
	want := []string{"first", "second", "deferred"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 1 {
		t.Fatalf("defer moved the clock to %v", e.Now())
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway loop did not trip the event limit")
		}
	}()
	e.Run()
}

// Property: for any set of scheduled times, events fire in nondecreasing time
// order and the engine finishes at the maximum time.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		var max Time
		for _, r := range raw {
			if Time(r) > max {
				max = Time(r)
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving random cancellations never breaks ordering of the
// surviving events, and cancelled events never fire.
func TestPropertyCancelSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(40)
		events := make([]*Event, n)
		firedIdx := map[int]bool{}
		for i := 0; i < n; i++ {
			i := i
			events[i] = e.Schedule(Time(rng.Intn(100)), func() { firedIdx[i] = true })
		}
		cancelled := map[int]bool{}
		for i := 0; i < n/2; i++ {
			k := rng.Intn(n)
			if events[k].Cancel() {
				cancelled[k] = true
			}
		}
		e.Run()
		for k := range cancelled {
			if firedIdx[k] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, k)
			}
		}
		if len(firedIdx)+len(cancelled) != n {
			t.Fatalf("trial %d: fired %d + cancelled %d != scheduled %d",
				trial, len(firedIdx), len(cancelled), n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := rand.New(rand.NewSource(42))
		var fired []Time
		for i := 0; i < 200; i++ {
			e.Schedule(Time(rng.Float64()*1000), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return fired
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestCancelRemovesFromQueue pins the eager-removal contract: a cancelled
// event leaves the heap (and Pending) immediately instead of lingering until
// its firing time is popped.
func TestCancelRemovesFromQueue(t *testing.T) {
	e := NewEngine()
	keep := 0
	var evs []*Event
	for i := 0; i < 100; i++ {
		evs = append(evs, e.Schedule(Time(i), func() { keep++ }))
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	// Cancel every other event, including the current heap root.
	cancelled := 0
	for i := 0; i < 100; i += 2 {
		if !evs[i].Cancel() {
			t.Fatalf("Cancel of pending event %d returned false", i)
		}
		cancelled++
		if got, want := e.Pending(), 100-cancelled; got != want {
			t.Fatalf("after %d cancels Pending = %d, want %d", cancelled, got, want)
		}
	}
	e.Run()
	if keep != 50 {
		t.Fatalf("%d events fired, want 50", keep)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

// TestCancelMidHeapPreservesOrder cancels from the middle of the heap and
// verifies remaining events still fire in (time, seq) order.
func TestCancelMidHeapPreservesOrder(t *testing.T) {
	e := NewEngine()
	var fired []int
	var evs []*Event
	for i := 0; i < 50; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(50-i), func() { fired = append(fired, 50-i) }))
	}
	for _, i := range []int{3, 17, 29, 41, 49} {
		evs[i].Cancel()
	}
	e.Run()
	if len(fired) != 45 {
		t.Fatalf("%d events fired, want 45", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of order: %v", fired)
		}
	}
}
