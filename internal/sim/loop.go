package sim

import "sync"

// Loop is the service-drivable stepping mode of an Engine: a long-lived
// daemon goroutine pumps the event queue while other goroutines inject work.
//
// The engine itself stays strictly single-threaded — every callback and every
// injected closure executes on the goroutine that called Run — so nothing in
// the simulation needs locks and per-shard determinism is preserved for a
// fixed submission order. Other goroutines interact with the simulation only
// through Post, which enqueues a closure for the loop goroutine to execute at
// the current simulated instant.
//
// The loop alternates between draining the post inbox and executing a bounded
// batch of simulation events, so submissions arriving mid-backlog are admitted
// promptly instead of waiting for the queue to empty. When both the inbox and
// the event queue are empty the loop blocks; simulated time only advances
// while events execute.
type Loop struct {
	eng *Engine

	// tick, when set, runs on the loop goroutine after every batch of
	// simulation events (see SetTick). It is read without the mutex, so it
	// must be installed before Run starts.
	tick func()

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []func()
	posted uint64
	closed bool
	// holds counts outstanding LoopHolds: external completions the loop has
	// promised to wait for before draining (see Hold).
	holds int
	done  chan struct{}
}

// stepBatch bounds how many simulation events execute between inbox drains.
const stepBatch = 256

// NewLoop wraps an engine for daemon-driven stepping. The caller must start
// exactly one goroutine executing Run; the engine must not be driven through
// Run/RunUntil/Step by anyone else afterwards.
func NewLoop(eng *Engine) *Loop {
	l := &Loop{eng: eng, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// SetTick installs a maintenance hook the loop invokes on its own goroutine
// after each batch of executed events, while the simulation is quiescent at
// the current instant. It is how periodic housekeeping (telemetry
// compaction, budget checks) rides the loop without scheduling simulation
// events of its own — a permanently re-armed sim timer would keep the event
// queue non-empty forever and defeat drain-on-Close. The hook must be cheap
// (it runs once per pump iteration) and must be installed before the Run
// goroutine starts; it never runs concurrently with simulation callbacks.
func (l *Loop) SetTick(fn func()) { l.tick = fn }

// Post schedules fn to execute on the loop goroutine at the current simulated
// time. It is safe to call from any goroutine and returns false (dropping fn)
// once the loop is closing — callers should surface that as "shutting down".
func (l *Loop) Post(fn func()) bool {
	if fn == nil {
		panic("sim: Post with nil closure")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.inbox = append(l.inbox, fn)
	l.posted++
	l.cond.Signal()
	return true
}

// LoopHold is a promise of exactly one future completion post. It exists for
// work the loop hands off to other goroutines (off-loop plan search): a plain
// Post races with Close — once the loop starts draining, Post drops the
// closure and the handed-off work's result would be lost, leaving its waiters
// stranded forever. A hold taken before the hand-off keeps Run from exiting
// until the completion lands, so drain-on-Close still covers work that is
// momentarily outside the simulation.
type LoopHold struct {
	l    *Loop
	done bool // guarded by l.mu
}

// Hold reserves the loop for one future completion. It must be called on the
// loop goroutine (from an executing closure or simulation callback), which
// guarantees Run cannot have exited yet. Every hold must eventually be
// resolved by exactly one Post or Release, or Close blocks forever.
func (l *Loop) Hold() *LoopHold {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.holds++
	return &LoopHold{l: l}
}

// Post delivers the held completion: fn is enqueued for the loop goroutine
// even when the loop is already draining (that is the point of the hold), and
// the hold is released. Safe to call from any goroutine; using a hold twice
// panics.
func (h *LoopHold) Post(fn func()) {
	if fn == nil {
		panic("sim: LoopHold.Post with nil closure")
	}
	l := h.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if h.done {
		panic("sim: LoopHold resolved twice")
	}
	h.done = true
	l.holds--
	l.inbox = append(l.inbox, fn)
	l.posted++
	l.cond.Signal()
}

// Release abandons the hold without posting. Idempotent after the hold is
// resolved.
func (h *LoopHold) Release() {
	l := h.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if h.done {
		return
	}
	h.done = true
	l.holds--
	l.cond.Signal()
}

// Posted reports the total number of closures accepted so far
// (observability; also lets tests sequence posts deterministically against
// a deliberately stalled loop, where inbox depth would depend on how many
// the loop already batched out).
func (l *Loop) Posted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.posted
}

// Run pumps the loop until Close is called and both the inbox and the event
// queue have drained. It blocks; run it on a dedicated goroutine.
func (l *Loop) Run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.inbox) == 0 && l.eng.Pending() == 0 && (!l.closed || l.holds > 0) {
			l.cond.Wait()
		}
		batch := l.inbox
		l.inbox = nil
		closing := l.closed
		l.mu.Unlock()

		for _, fn := range batch {
			fn()
		}
		for i := 0; i < stepBatch && l.eng.Step(); i++ {
		}
		if l.tick != nil {
			l.tick()
		}

		if closing && l.eng.Pending() == 0 {
			l.mu.Lock()
			drained := len(l.inbox) == 0 && l.holds == 0
			l.mu.Unlock()
			if drained {
				return
			}
		}
	}
}

// Close stops the loop after in-flight work drains: posts already accepted,
// every simulation event they cascade into, and every outstanding Hold's
// completion still execute, then Run returns. Close blocks until the loop
// goroutine has exited and is safe to call more than once.
func (l *Loop) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
}
