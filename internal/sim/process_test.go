package sim

import (
	"testing"
)

func TestLatchFiresAtZero(t *testing.T) {
	e := NewEngine()
	fired := false
	l := NewLatch(e, 3, func() { fired = true })
	l.Done()
	l.Done()
	if fired {
		t.Fatal("latch fired early")
	}
	l.Done()
	if !fired {
		t.Fatal("latch did not fire after final Done")
	}
}

func TestLatchZeroCountFiresDeferred(t *testing.T) {
	e := NewEngine()
	fired := false
	NewLatch(e, 0, func() { fired = true })
	if fired {
		t.Fatal("zero latch fired synchronously; want deferred")
	}
	e.Run()
	if !fired {
		t.Fatal("zero latch never fired")
	}
}

func TestLatchAdd(t *testing.T) {
	e := NewEngine()
	fired := false
	l := NewLatch(e, 1, func() { fired = true })
	l.Add(2)
	l.Done()
	l.Done()
	if fired {
		t.Fatal("fired before all Done calls")
	}
	l.Done()
	if !fired {
		t.Fatal("never fired")
	}
}

func TestLatchDoneBelowZeroPanics(t *testing.T) {
	e := NewEngine()
	l := NewLatch(e, 1, nil)
	l.Done()
	defer func() {
		if recover() == nil {
			t.Fatal("Done below zero did not panic")
		}
	}()
	l.Done()
}

func TestTickerPeriodAndStop(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(e, 10, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, want := range []Time{10, 20, 30} {
		if ticks[i] != want {
			t.Fatalf("ticks = %v, want [10 20 30]", ticks)
		}
	}
}

func TestTickerStopBeforeFirstTick(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := NewTicker(e, 5, func(Time) { count++ })
	tk.Stop()
	e.Run()
	if count != 0 {
		t.Fatalf("stopped ticker ticked %d times", count)
	}
}

func TestTokensImmediateGrant(t *testing.T) {
	e := NewEngine()
	tk := NewTokens(e, 4)
	granted := false
	tk.Acquire(2, func() { granted = true })
	e.Run()
	if !granted {
		t.Fatal("acquire within capacity was not granted")
	}
	if tk.InUse() != 2 || tk.Available() != 2 {
		t.Fatalf("inUse=%d available=%d, want 2/2", tk.InUse(), tk.Available())
	}
}

func TestTokensQueueingFIFO(t *testing.T) {
	e := NewEngine()
	tk := NewTokens(e, 2)
	var order []string
	tk.Acquire(2, func() { order = append(order, "first") })
	tk.Acquire(1, func() { order = append(order, "second") })
	tk.Acquire(1, func() { order = append(order, "third") })
	e.Run()
	if len(order) != 1 || order[0] != "first" {
		t.Fatalf("order = %v, want only first granted", order)
	}
	tk.Release(2)
	e.Run()
	if len(order) != 3 || order[1] != "second" || order[2] != "third" {
		t.Fatalf("order = %v, want FIFO grant of second then third", order)
	}
}

func TestTokensHeadOfLineBlocking(t *testing.T) {
	e := NewEngine()
	tk := NewTokens(e, 4)
	var order []string
	tk.Acquire(3, func() { order = append(order, "big1") })
	tk.Acquire(3, func() { order = append(order, "big2") }) // must wait
	tk.Acquire(1, func() { order = append(order, "small") })
	e.Run()
	// big2 needs 3 but only 1 free; small must NOT jump the queue.
	if len(order) != 1 {
		t.Fatalf("order = %v, want only big1 (no starvation bypass)", order)
	}
	tk.Release(3)
	e.Run()
	if len(order) != 3 || order[1] != "big2" || order[2] != "small" {
		t.Fatalf("order = %v, want big1,big2,small", order)
	}
}

func TestTokensResizeGrowDrainsQueue(t *testing.T) {
	e := NewEngine()
	tk := NewTokens(e, 1)
	granted := 0
	tk.Acquire(1, func() { granted++ })
	tk.Acquire(1, func() { granted++ })
	e.Run()
	if granted != 1 {
		t.Fatalf("granted=%d, want 1 before resize", granted)
	}
	tk.Resize(2)
	e.Run()
	if granted != 2 {
		t.Fatalf("granted=%d, want 2 after growth", granted)
	}
}

func TestTokensShrinkBelowInUse(t *testing.T) {
	e := NewEngine()
	tk := NewTokens(e, 4)
	tk.Acquire(4, func() {})
	e.Run()
	tk.Resize(2) // oversubscribed now
	if tk.Available() != -2 {
		t.Fatalf("available=%d, want -2 while oversubscribed", tk.Available())
	}
	granted := false
	tk.Acquire(1, func() { granted = true })
	e.Run()
	if granted {
		t.Fatal("grant while oversubscribed")
	}
	tk.Release(4)
	e.Run()
	if !granted {
		t.Fatal("no grant after oversubscription cleared")
	}
	if tk.InUse() != 1 {
		t.Fatalf("inUse=%d, want 1", tk.InUse())
	}
}

func TestTokensReleaseBelowZeroPanics(t *testing.T) {
	e := NewEngine()
	tk := NewTokens(e, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("release below zero did not panic")
		}
	}()
	tk.Release(1)
}

// Property: conservation — after any sequence of acquire/release, inUse equals
// acquired-minus-released and never exceeds capacity at grant time.
func TestPropertyTokenConservation(t *testing.T) {
	e := NewEngine()
	tk := NewTokens(e, 8)
	held := 0
	var releases []int
	for i := 0; i < 100; i++ {
		n := 1 + i%4
		tk.Acquire(n, func() {
			held += n
			if held > 8 {
				t.Fatalf("grant pushed held=%d above capacity", held)
			}
			releases = append(releases, n)
		})
		e.Run()
		// Release half of what we hold, FIFO.
		for len(releases) > 1 {
			r := releases[0]
			releases = releases[1:]
			held -= r
			tk.Release(r)
		}
		e.Run()
	}
	if tk.InUse() != held {
		t.Fatalf("pool inUse=%d, model held=%d", tk.InUse(), held)
	}
}
