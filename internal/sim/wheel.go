package sim

import "math/bits"

// This file implements the engine's default event queue: a hierarchical
// timer wheel. The binary heap it replaces (eventQueue, kept alive behind
// DisableEventWheel) pays O(log n) pointer-chasing comparisons on every
// push and pop of the hottest loop in the repository; the wheel files
// near-future events into tick-indexed buckets in O(1) and pops them by
// scanning occupancy bitmaps, so per-event cost no longer grows with the
// pending-queue depth.
//
// # Geometry
//
// Simulated time quantizes to integer ticks at 4096 ticks per simulated
// second (a power of two, so the float64 scaling is exact and monotone:
// at1 <= at2 always implies tickOf(at1) <= tickOf(at2)). Three levels of
// 256 slots each cover a sliding window of 2^24 ticks (= 4096 simulated
// seconds) ahead of the cursor:
//
//	level 0: 256 slots x 1 tick        (buckets hold exactly one tick)
//	level 1: 256 slots x 256 ticks
//	level 2: 256 slots x 65536 ticks
//
// Events beyond the top-level window park in an overflow min-heap keyed
// (at, seq) and drain into the wheel when the window advances past them.
// Every whole simulated workload in this repository (load sweeps run
// ~2000 s) fits inside one window, so overflow traffic is rare.
//
// # Determinism
//
// The wheel reproduces the heap's pop order bit-for-bit by construction.
// A level-0 bucket holds events of exactly one tick; when the cursor
// reaches it, the bucket is loaded into a small "active" min-heap ordered
// by (at, seq) — the same key the global heap used — and fired from
// there, so events inside one tick (including same-instant Defer storms,
// which push into the active heap mid-fire) keep exact (time, sequence)
// order. Across buckets, order follows from the window invariants: the
// active heap holds the cursor tick, level 0 holds strictly later ticks in
// its window, each higher level holds strictly later ticks than the whole
// window below it, and the overflow heap holds strictly later ticks than
// the whole wheel. Since tick quantization is monotone in time, bucket
// order composed with in-bucket (at, seq) order is exactly global
// (at, seq) order.
//
// # Anchors only move at pop time
//
// Each level k covers the absolute tick range [anchor[k], anchor[k] +
// 256^(k+1)), and insertion routes by those windows, not by distance from
// the cursor — so a level's array never wraps and re-anchoring a level is
// legal only while it is empty. Anchors advance exclusively inside pop()
// (cascading a higher-level bucket down, or jumping to the overflow
// heap's horizon): immediately after pop returns, the engine advances
// `now` to the popped event's time, so every later insert satisfies
// tick >= curTick >= anchor[0] and the window arithmetic never underflows.
// nextAt (the peek RunUntil needs) must therefore not cascade; it reads
// the minimum straight out of the first occupied bucket instead.
//
// # Cancellation
//
// Cancel is O(1): mark the event dead, release its closure, and decrement
// the live counter (Pending's fast path). Dead events are skipped lazily
// when popped and drained eagerly whenever they surface at a bucket head —
// loading a bucket filters them out, and nextAt discards all-dead buckets
// and dead heap tops on sight — so no O(n) dead-event scan survives on
// either the pop or the peek path.
const (
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits
	wheelLevels   = 3
	// wheelSpanBits is the log2 of the tick span covered by all levels.
	wheelSpanBits = wheelSlotBits * wheelLevels
	// tickHzBits scales simulated seconds to ticks: 2^12 = 4096 ticks/s,
	// fine enough that same-bucket events are genuinely near-simultaneous,
	// coarse enough that a whole load-sweep horizon fits in one window.
	tickHzBits = 12
	tickHz     = 1 << tickHzBits
)

// sentinelTick marks times too large for tick arithmetic (e.g. events
// scheduled near Forever). Sentinel events live in the overflow heap
// forever and fire straight from it in (at, seq) order.
const sentinelTick = ^uint64(0)

// maxTickFloat bounds at*tickHz so the uint64 conversion cannot overflow;
// 2^62 ticks is ~10^15 simulated seconds, far beyond any workload.
const maxTickFloat = float64(uint64(1) << 62)

// tickOf quantizes a simulated time to a wheel tick.
func tickOf(t Time) uint64 {
	f := float64(t) * tickHz
	if f >= maxTickFloat {
		return sentinelTick
	}
	return uint64(f)
}

// eventHeap is a min-heap of events ordered by (at, seq), used for the
// active bucket and the overflow region. It is a hand-rolled heap rather
// than container/heap so pushes and pops stay free of interface
// conversions and index writes on the hot path.
type eventHeap []*Event

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *Event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() *Event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	if n > 0 {
		siftDown(s, 0)
	}
	return top
}

func siftDown(s []*Event, i int) {
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && eventLess(s[r], s[l]) {
			m = r
		}
		if !eventLess(s[m], s[i]) {
			return
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// heapify restores the heap invariant over the whole slice, O(n).
func (h eventHeap) heapify() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// wheelLevel is one ring of buckets plus an occupancy bitmap; firstSet
// finds the earliest occupied slot in a handful of word scans. Buckets are
// intrusive singly-linked lists through Event.next — filing an event is a
// pointer write, no per-bucket slice allocation, and the slab blocks from
// PR 7 double as the node storage. List order is scheduling-reversed
// (push-front) and does not matter: level-0 buckets are re-sorted through
// the active heap and higher-level buckets are re-filed by cascading.
type wheelLevel struct {
	buckets [wheelSlots]*Event
	bitmap  [wheelSlots / 64]uint64
}

func (l *wheelLevel) set(i int)   { l.bitmap[i>>6] |= 1 << (uint(i) & 63) }
func (l *wheelLevel) clear(i int) { l.bitmap[i>>6] &^= 1 << (uint(i) & 63) }

func (l *wheelLevel) firstSet() int {
	for w, word := range l.bitmap {
		if word != 0 {
			return w<<6 | bits.TrailingZeros64(word)
		}
	}
	return -1
}

// wheel is the hierarchical timer wheel state embedded in an Engine.
type wheel struct {
	levels [wheelLevels]wheelLevel
	// anchor[k] is the absolute tick where level k's window starts; the
	// window spans 256^(k+1) ticks. Invariant: anchor[2] <= anchor[1] <=
	// anchor[0] <= curTick, and a level re-anchors only while empty.
	anchor  [wheelLevels]uint64
	curTick uint64
	// active holds the not-yet-fired events of tick curTick.
	active eventHeap
	// overflow holds events beyond the top-level window, keyed (at, seq).
	overflow eventHeap
	// live counts pending non-cancelled events: the Pending fast path.
	live int

	// Observability counters, surfaced per shard in /v1/stats.
	wheelEvents    uint64 // events filed into a wheel level or the active bucket
	overflowEvents uint64 // events parked in the far-future overflow heap
	cancelsLazy    uint64 // cancels handled as O(1) dead marks
}

// schedule files a freshly created event (ev.tick already set).
func (w *wheel) schedule(ev *Event) {
	w.live++
	if w.insert(ev) {
		w.overflowEvents++
	} else {
		w.wheelEvents++
	}
}

// insert routes an event to the active heap, a wheel level, or overflow by
// the window invariants. It is shared by schedule, cascading, and overflow
// drain, so it touches no counters. Reports whether the event overflowed.
func (w *wheel) insert(ev *Event) bool {
	tick := ev.tick
	switch {
	case tick == w.curTick && tick != sentinelTick:
		w.active.push(ev)
	case tick < w.anchor[0]+wheelSlots:
		w.place(0, ev)
	case tick < w.anchor[1]+1<<(2*wheelSlotBits):
		w.place(1, ev)
	case tick < w.anchor[2]+1<<wheelSpanBits:
		w.place(2, ev)
	default:
		w.overflow.push(ev)
		return true
	}
	return false
}

func (w *wheel) place(level int, ev *Event) {
	slot := int((ev.tick - w.anchor[level]) >> uint(level*wheelSlotBits))
	l := &w.levels[level]
	ev.next = l.buckets[slot]
	l.buckets[slot] = ev
	l.set(slot)
}

// pop removes and returns the earliest live event, or nil when none
// remain. All anchor movement happens here (see the file comment).
func (w *wheel) pop() *Event {
	for {
		for len(w.active) > 0 {
			ev := w.active.pop()
			if ev.canceled {
				continue
			}
			w.live--
			return ev
		}
		if w.advance() {
			continue
		}
		// Wheel fully empty: the overflow heap owns whatever is left.
		for len(w.overflow) > 0 && w.overflow[0].canceled {
			w.overflow.pop()
		}
		if len(w.overflow) == 0 {
			return nil
		}
		if top := w.overflow[0]; top.tick == sentinelTick {
			// Beyond tick arithmetic: fire straight from the heap. Every
			// other live event is also in overflow, so heap order is
			// global order.
			w.live--
			return w.overflow.pop()
		}
		w.reanchor(w.overflow[0].tick)
	}
}

// advance makes one unit of wheel progress: load the earliest level-0
// bucket into the active heap, or cascade the earliest occupied bucket of
// a higher level down one level. Returns false when all levels are empty.
func (w *wheel) advance() bool {
	if j := w.levels[0].firstSet(); j >= 0 {
		w.loadBucket(j)
		return true
	}
	if j := w.levels[1].firstSet(); j >= 0 {
		w.anchor[0] = w.anchor[1] + uint64(j)<<wheelSlotBits
		w.cascade(1, j)
		return true
	}
	if j := w.levels[2].firstSet(); j >= 0 {
		w.anchor[1] = w.anchor[2] + uint64(j)<<(2*wheelSlotBits)
		w.anchor[0] = w.anchor[1]
		w.cascade(2, j)
		return true
	}
	return false
}

// loadBucket moves level-0 bucket j (one tick's events) into the active
// heap, dropping dead events eagerly, and advances the cursor to it.
func (w *wheel) loadBucket(j int) {
	l := &w.levels[0]
	w.curTick = w.anchor[0] + uint64(j)
	for ev := l.buckets[j]; ev != nil; {
		nx := ev.next
		ev.next = nil
		if !ev.canceled {
			w.active = append(w.active, ev)
		}
		ev = nx
	}
	w.active.heapify()
	l.buckets[j] = nil
	l.clear(j)
}

// cascade redistributes bucket j of the given level into the level(s)
// below, after the caller re-anchored those levels to the bucket's range.
// Dead events are dropped instead of re-filed.
func (w *wheel) cascade(level, j int) {
	l := &w.levels[level]
	head := l.buckets[j]
	l.buckets[j] = nil
	l.clear(j)
	for ev := head; ev != nil; {
		nx := ev.next
		ev.next = nil
		if !ev.canceled {
			w.insert(ev)
		}
		ev = nx
	}
}

// reanchor jumps the (empty) wheel's window to the overflow heap's next
// event and drains every overflow event inside the new window into the
// levels. Called only from pop, with tick != sentinelTick.
func (w *wheel) reanchor(tick uint64) {
	base := tick &^ (1<<wheelSpanBits - 1)
	w.anchor[2], w.anchor[1], w.anchor[0] = base, base, base
	horizon := base + 1<<wheelSpanBits
	for len(w.overflow) > 0 {
		top := w.overflow[0]
		if top.canceled {
			w.overflow.pop()
			continue
		}
		if top.tick >= horizon {
			break
		}
		w.insert(w.overflow.pop())
	}
}

// nextAt reports the earliest live event's time without firing it. It
// never moves anchors (see the file comment): the minimum is read straight
// out of the first occupied bucket, which the window invariants guarantee
// contains the global minimum. All-dead buckets and dead heap tops are
// drained eagerly as they surface.
func (w *wheel) nextAt() (Time, bool) {
	for len(w.active) > 0 {
		if !w.active[0].canceled {
			return w.active[0].at, true
		}
		w.active.pop()
	}
	for lvl := 0; lvl < wheelLevels; lvl++ {
		l := &w.levels[lvl]
		for {
			j := l.firstSet()
			if j < 0 {
				break
			}
			// Scan for the bucket's live minimum, unlinking dead events in
			// passing so repeated peeks never rescan them.
			var min *Event
			prev := &l.buckets[j]
			for ev := *prev; ev != nil; ev = *prev {
				if ev.canceled {
					*prev = ev.next
					ev.next = nil
					continue
				}
				if min == nil || eventLess(ev, min) {
					min = ev
				}
				prev = &ev.next
			}
			if min != nil {
				return min.at, true
			}
			// Every event in the bucket was cancelled: release the slot.
			l.clear(j)
		}
	}
	for len(w.overflow) > 0 {
		if !w.overflow[0].canceled {
			return w.overflow[0].at, true
		}
		w.overflow.pop()
	}
	return 0, false
}

// reserve pre-sizes the active and overflow heaps from a predecessor
// engine's high-water mark, the wheel-arm analogue of growing the heap's
// backing array.
func (w *wheel) reserve(n int) {
	if a := min(n, wheelSlots); cap(w.active) < a {
		act := make(eventHeap, len(w.active), a)
		copy(act, w.active)
		w.active = act
	}
	if cap(w.overflow) < n {
		ovf := make(eventHeap, len(w.overflow), n)
		copy(ovf, w.overflow)
		w.overflow = ovf
	}
}
