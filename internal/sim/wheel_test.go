package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// newHeapEngine returns an engine pinned to the reference binary-heap
// queue, regardless of the package default.
func newHeapEngine() *Engine {
	e := NewEngine()
	if !e.noWheel {
		e.DisableEventWheel()
	}
	return e
}

// newWheelEngine returns an engine pinned to the timer wheel.
func newWheelEngine() *Engine {
	e := NewEngine()
	e.noWheel = false
	return e
}

func TestTickOfMonotone(t *testing.T) {
	times := []Time{0, 1e-9, 1.0 / tickHz, 2.0 / tickHz, 0.5, 1, 1.0000001,
		4096, 4097, 1 << 24, 1e12, Time(maxTickFloat / tickHz), Forever}
	for i := 1; i < len(times); i++ {
		lo, hi := tickOf(times[i-1]), tickOf(times[i])
		if lo > hi {
			t.Fatalf("tickOf not monotone: tickOf(%v)=%d > tickOf(%v)=%d",
				times[i-1], lo, times[i], hi)
		}
	}
	if tickOf(Forever) != sentinelTick {
		t.Fatalf("tickOf(Forever) = %d, want sentinel", tickOf(Forever))
	}
	if tickOf(0.9/tickHz) != 0 || tickOf(1.1/tickHz) != 1 {
		t.Fatalf("sub-tick quantization wrong: %d, %d",
			tickOf(0.9/tickHz), tickOf(1.1/tickHz))
	}
}

// wheelHarness drives one engine through a scripted random workload and
// records the exact firing sequence. Two harnesses built from the same
// seed make identical decisions as long as their engines fire events in
// the same order — any ordering divergence contaminates the RNG stream
// and shows up as a log mismatch.
type wheelHarness struct {
	e       *Engine
	rng     *rand.Rand
	log     []string
	events  []*Event
	created int
	budget  int
}

func newWheelHarness(e *Engine, seed int64, budget int) *wheelHarness {
	return &wheelHarness{e: e, rng: rand.New(rand.NewSource(seed)), budget: budget}
}

// spawn schedules one event drawn from the shared distribution: same-tick
// bursts (Defer and sub-tick offsets), near-future, cross-level
// far-future, overflow-range, and occasionally beyond tick arithmetic.
func (h *wheelHarness) spawn() {
	id := h.created
	h.created++
	var delta Duration
	switch h.rng.Intn(10) {
	case 0: // Defer storm: exact current instant
		delta = 0
	case 1, 2: // same or adjacent tick, distinct sub-tick times
		delta = Duration(h.rng.Float64() * 2 / tickHz)
	case 3, 4, 5: // near future: level 0/1 territory
		delta = Duration(h.rng.Float64() * 10)
	case 6, 7: // level 2 territory
		delta = Duration(10 + h.rng.Float64()*3000)
	case 8: // beyond the wheel window: overflow heap
		delta = Duration(5000 + h.rng.Float64()*1e6)
	case 9: // beyond tick arithmetic entirely
		delta = Duration(1e16 * (1 + h.rng.Float64()))
	}
	ev := h.e.After(delta, func() { h.fire(id) })
	h.events = append(h.events, ev)
}

func (h *wheelHarness) fire(id int) {
	h.log = append(h.log, fmt.Sprintf("%d@%.9g", id, h.e.Now().Seconds()))
	for h.budget > 0 && h.rng.Float64() < 0.55 {
		h.budget--
		if h.rng.Intn(4) == 0 && len(h.events) > 0 {
			// Cancel a random earlier event (often already fired: no-op,
			// exercised on both arms identically).
			h.events[h.rng.Intn(len(h.events))].Cancel()
			continue
		}
		h.spawn()
	}
}

// TestWheelHeapPropertyDifferential is the ordering contract of the PR:
// for randomized schedule/cancel/re-schedule traces — including
// adversarial same-tick Defer storms and far-future events crossing wheel
// levels into the overflow heap — the wheel and the heap must produce
// identical (time, seq) pop sequences, identical Pending counts, and
// identical final clocks, whether driven by Run or by RunUntil slices.
func TestWheelHeapPropertyDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runArm := func(e *Engine) *wheelHarness {
				h := newWheelHarness(e, seed, 400)
				// Deterministic seed workload, partly batched so
				// ScheduleBatch's arm-specific bulk path is covered too.
				var batch []BatchItem
				for i := 0; i < 40; i++ {
					if i%3 == 0 {
						id := h.created
						h.created++
						at := Time(h.rng.Float64() * 20)
						batch = append(batch, BatchItem{At: at, Fn: func() { h.fire(id) }})
						h.events = append(h.events, nil)
						continue
					}
					h.spawn()
				}
				e.ScheduleBatch(batch)
				// Drive through RunUntil slices first (peek path), then
				// drain; cancel a few pending events between slices.
				for _, deadline := range []Time{0.001, 1, 2.5, 100, 5000} {
					e.RunUntil(deadline)
					h.log = append(h.log, fmt.Sprintf("pending=%d@%v", e.Pending(), e.Now()))
					for i := 0; i < 3 && len(h.events) > 0; i++ {
						if ev := h.events[h.rng.Intn(len(h.events))]; ev != nil {
							ev.Cancel()
						}
					}
				}
				e.Run()
				h.log = append(h.log, fmt.Sprintf("end@%.9g processed=%d pending=%d",
					e.Now().Seconds(), e.Processed(), e.Pending()))
				return h
			}

			heapArm := runArm(newHeapEngine())
			wheelArm := runArm(newWheelEngine())

			if len(heapArm.log) != len(wheelArm.log) {
				t.Fatalf("log lengths diverged: heap %d, wheel %d\nheap tail: %v\nwheel tail: %v",
					len(heapArm.log), len(wheelArm.log),
					tail(heapArm.log), tail(wheelArm.log))
			}
			for i := range heapArm.log {
				if heapArm.log[i] != wheelArm.log[i] {
					t.Fatalf("pop sequence diverged at %d: heap %q, wheel %q",
						i, heapArm.log[i], wheelArm.log[i])
				}
			}
		})
	}
}

func tail(s []string) []string {
	if len(s) <= 5 {
		return s
	}
	return s[len(s)-5:]
}

// TestWheelDeferStormSingleTick pins the adversarial case the active
// bucket exists for: a cascade of Defers and sub-tick schedules landing
// at one instant must fire strictly in scheduling order on both arms.
func TestWheelDeferStormSingleTick(t *testing.T) {
	for _, mk := range []func() *Engine{newWheelEngine, newHeapEngine} {
		e := mk()
		var order []int
		n := 0
		var storm func()
		storm = func() {
			id := n
			n++
			order = append(order, id)
			if n < 500 {
				e.Defer(storm)
			}
		}
		e.Schedule(1, storm)
		e.Run()
		if len(order) != 500 {
			t.Fatalf("fired %d, want 500", len(order))
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("defer storm fired out of order at %d: %v", i, order[:i+1])
			}
		}
		if e.Now() != 1 {
			t.Fatalf("defer storm moved the clock to %v", e.Now())
		}
	}
}

// TestWheelCrossLevelCascade schedules events across every wheel level
// and the overflow heap, then checks global firing order and that the
// far-future events really took the overflow route.
func TestWheelCrossLevelCascade(t *testing.T) {
	e := newWheelEngine()
	deltas := []Duration{
		1e-4,    // level 0
		0.5,     // level 1
		30,      // level 2
		3000,    // level 2, near window edge
		5000,    // overflow: beyond the 4096 s window
		2000000, // deep overflow: several window jumps
	}
	var fired []Duration
	for _, d := range deltas {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	if e.OverflowEvents() != 2 {
		t.Fatalf("overflow events = %d, want 2", e.OverflowEvents())
	}
	if e.WheelEvents() != 4 {
		t.Fatalf("wheel events = %d, want 4", e.WheelEvents())
	}
	e.Run()
	for i := range deltas {
		if fired[i] != deltas[i] {
			t.Fatalf("cross-level order: fired %v, want %v", fired, deltas)
		}
	}
	if e.Now() != Time(2000000) {
		t.Fatalf("final clock %v", e.Now())
	}
}

// TestWheelLazyCancelCounters pins the O(1)-cancel observables: Pending
// drops immediately, CancelsLazy counts the dead marks, and an all-dead
// bucket is drained at the head without firing anything.
func TestWheelLazyCancelCounters(t *testing.T) {
	e := newWheelEngine()
	var evs []*Event
	for i := 0; i < 64; i++ {
		evs = append(evs, e.Schedule(Time(1+i), func() { t.Error("cancelled event fired") }))
	}
	for i, ev := range evs {
		if !ev.Cancel() {
			t.Fatalf("Cancel %d returned false", i)
		}
		if got, want := e.Pending(), 63-i; got != want {
			t.Fatalf("Pending after %d cancels = %d, want %d", i+1, got, want)
		}
	}
	if e.CancelsLazy() != 64 {
		t.Fatalf("CancelsLazy = %d, want 64", e.CancelsLazy())
	}
	survivor := false
	e.Schedule(100, func() { survivor = true })
	e.Run()
	if !survivor {
		t.Fatal("live event after dead buckets did not fire")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d", e.Pending())
	}
}

// TestWheelRunUntilPeekDoesNotReanchor pins the subtle invariant behind
// RunUntil: peeking at a far-future event must not move the wheel's
// anchors, so scheduling near-past-the-deadline events afterwards still
// files them correctly ahead of the far event.
func TestWheelRunUntilPeekDoesNotReanchor(t *testing.T) {
	e := newWheelEngine()
	var fired []string
	e.After(9000, func() { fired = append(fired, "far") }) // overflow range
	e.RunUntil(10)                                         // peeks at the far event, fires nothing
	if len(fired) != 0 {
		t.Fatal("far event fired early")
	}
	e.After(5, func() { fired = append(fired, "near") })
	e.Defer(func() { fired = append(fired, "now") })
	e.Run()
	want := []string{"now", "near", "far"}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestWheelSentinelTimes exercises events beyond tick arithmetic (near
// Forever): they must fire last, in (time, seq) order, on both arms.
func TestWheelSentinelTimes(t *testing.T) {
	for _, mk := range []func() *Engine{newWheelEngine, newHeapEngine} {
		e := mk()
		var fired []string
		e.Schedule(Time(3e15), func() {
			fired = append(fired, "a")
			// Once the clock is beyond tick range, everything is sentinel:
			// pure heap order must still hold.
			e.After(2e15, func() { fired = append(fired, "d") })
			e.After(1e15, func() { fired = append(fired, "c") })
		})
		e.Schedule(1, func() { fired = append(fired, "near") })
		e.Schedule(Time(4e15), func() { fired = append(fired, "b") })
		e.Run()
		want := "[near a b c d]"
		if fmt.Sprint(fired) != want {
			t.Fatalf("sentinel order %v, want %v", fired, want)
		}
	}
}

// TestWheelPendingDrainInteraction mirrors the Loop drain contract: a
// queue holding only dead events must report Pending()==0 (so Close can
// drain) while still releasing the dead buckets on the next step.
func TestWheelPendingDrainInteraction(t *testing.T) {
	e := newWheelEngine()
	ev := e.Schedule(50, func() {})
	ev.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d with only a dead event queued", e.Pending())
	}
	if e.Step() {
		t.Fatal("Step fired something in an all-dead queue")
	}
	if e.Now() != 0 {
		t.Fatalf("draining dead events moved the clock to %v", e.Now())
	}
}
