package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func server(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := server(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestLibraryListing(t *testing.T) {
	srv := server(t)
	resp, err := http.Get(srv.URL + "/v1/library")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []LibraryEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) < 15 {
		t.Fatalf("library entries = %d, want >= 15", len(entries))
	}
	var whisper *LibraryEntry
	for i := range entries {
		if entries[i].Name == "whisper-large-v3" {
			whisper = &entries[i]
		}
	}
	if whisper == nil {
		t.Fatal("library missing whisper")
	}
	if whisper.Capability != "speech-to-text" || whisper.Quality != 0.95 {
		t.Fatalf("whisper entry = %+v", whisper)
	}
	found := false
	for _, a := range whisper.Args {
		if a == "file:path*" {
			found = true
		}
	}
	if !found {
		t.Fatalf("whisper schema args = %v, want required file:path", whisper.Args)
	}
}

func videoJobJSON() string {
	return `{
		"description": "List objects shown/mentioned in the videos",
		"constraint": "MIN_COST",
		"min_quality": 0.95,
		"inputs": [
			{"name": "cats.mov", "kind": "video",
			 "attrs": {"duration_s": 240, "scene_len_s": 30, "frames_per_scene": 24}},
			{"name": "formula_1.mov", "kind": "video",
			 "attrs": {"duration_s": 240, "scene_len_s": 30, "frames_per_scene": 24}}
		]
	}`
}

func TestRunVideoJob(t *testing.T) {
	srv := server(t)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(videoJobJSON()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TasksCompleted != 80 {
		t.Fatalf("tasks = %d, want 80", out.TasksCompleted)
	}
	if out.MakespanS <= 0 || out.GPUEnergyWh <= 0 || out.CostUSD <= 0 {
		t.Fatalf("incomplete response: %+v", out)
	}
	if out.Template != "video-understanding" {
		t.Fatalf("template = %q", out.Template)
	}
	if !strings.Contains(out.Timeline, "Speech-to-Text") {
		t.Fatal("timeline missing STT track")
	}
	if _, ok := out.Decisions["speech-to-text"]; !ok {
		t.Fatalf("decisions = %v", out.Decisions)
	}
}

func TestRunNewsfeedJob(t *testing.T) {
	srv := server(t)
	body := `{
		"description": "Generate social media newsfeed for Alice",
		"constraint": "MIN_LATENCY",
		"inputs": [
			{"name": "alice", "kind": "user-profile"},
			{"name": "cats", "kind": "topic"}
		]
	}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out JobResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if out.Template != "newsfeed" || out.TasksCompleted != 4 {
		t.Fatalf("response = %+v", out)
	}
}

func TestJobValidationErrors(t *testing.T) {
	srv := server(t)
	cases := map[string]string{
		"bad json":           `{`,
		"unknown field":      `{"nope": 1}`,
		"unknown constraint": `{"description":"x","constraint":"FASTEST","inputs":[{"name":"a","kind":"text"}]}`,
		"video no attrs":     `{"description":"videos with objects","inputs":[{"name":"a.mov","kind":"video"}]}`,
		"no inputs":          `{"description":"x","constraint":"MIN_COST"}`,
	}
	for name, body := range cases {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestUnplannableJobIs422(t *testing.T) {
	srv := server(t)
	body := `{"description":"do wonderful things","constraint":"MIN_COST",
	          "inputs":[{"name":"x","kind":"text"}]}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e.Error, "cannot decompose") {
		t.Fatalf("error = %q", e.Error)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := server(t)
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/library", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/library = %d, want 405", resp.StatusCode)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	srv := server(t)
	resp, err := http.Get(srv.URL + "/v1/experiments/table2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "MIN_COST selection") {
		t.Fatalf("table2 output missing selection line:\n%s", buf.String())
	}
	resp, _ = http.Get(srv.URL + "/v1/experiments/nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment = %d, want 404", resp.StatusCode)
	}
}

func TestDeterministicAcrossRequests(t *testing.T) {
	srv := server(t)
	run := func() JobResponse {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(videoJobJSON()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out JobResponse
		json.NewDecoder(resp.Body).Decode(&out)
		return out
	}
	a, b := run(), run()
	if a.MakespanS != b.MakespanS || a.GPUEnergyWh != b.GPUEnergyWh {
		t.Fatalf("non-deterministic service: %+v vs %+v", a, b)
	}
}
