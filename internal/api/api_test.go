package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// server starts a shared-mode daemon with the given pool config.
func server(t *testing.T, cfg PoolConfig) *httptest.Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return srv
}

func defaultServer(t *testing.T) *httptest.Server { return server(t, PoolConfig{}) }

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, JobStatusResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return resp, out
}

func getJob(t *testing.T, srv *httptest.Server, id string) (int, JobStatusResponse) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobStatusResponse
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func pollDone(t *testing.T, srv *httptest.Server, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, st := getJob(t, srv, id)
		if code != http.StatusOK {
			t.Fatalf("GET %s = %d", id, code)
		}
		switch st.Status {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return JobStatusResponse{}
}

func videoJobJSON(extra string) string {
	return `{
		"description": "List objects shown/mentioned in the videos",
		"constraint": "MIN_COST",
		"min_quality": 0.95,` + extra + `
		"inputs": [
			{"name": "cats.mov", "kind": "video",
			 "attrs": {"duration_s": 240, "scene_len_s": 30, "frames_per_scene": 24}},
			{"name": "formula_1.mov", "kind": "video",
			 "attrs": {"duration_s": 240, "scene_len_s": 30, "frames_per_scene": 24}}
		]
	}`
}

func TestHealthz(t *testing.T) {
	srv := defaultServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestLibraryListing(t *testing.T) {
	srv := defaultServer(t)
	resp, err := http.Get(srv.URL + "/v1/library")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []LibraryEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) < 15 {
		t.Fatalf("library entries = %d, want >= 15", len(entries))
	}
	var whisper *LibraryEntry
	for i := range entries {
		if entries[i].Name == "whisper-large-v3" {
			whisper = &entries[i]
		}
	}
	if whisper == nil {
		t.Fatal("library missing whisper")
	}
	if whisper.Capability != "speech-to-text" || whisper.Quality != 0.95 {
		t.Fatalf("whisper entry = %+v", whisper)
	}
	found := false
	for _, a := range whisper.Args {
		if a == "file:path*" {
			found = true
		}
	}
	if !found {
		t.Fatalf("whisper schema args = %v, want required file:path", whisper.Args)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	srv := defaultServer(t)
	resp, st := postJob(t, srv, videoJobJSON(`"tenant": "alice", "timeline": true,`))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Tenant != "alice" {
		t.Fatalf("submit response = %+v", st)
	}
	if st.Result != nil {
		t.Fatal("async submit returned an inline result")
	}
	final := pollDone(t, srv, st.ID)
	if final.Status != "done" || final.Result == nil {
		t.Fatalf("final = %+v", final)
	}
	out := final.Result
	if out.TasksCompleted != 80 {
		t.Fatalf("tasks = %d, want 80", out.TasksCompleted)
	}
	if out.MakespanS <= 0 || out.GPUEnergyWh <= 0 || out.CostUSD <= 0 {
		t.Fatalf("incomplete result: %+v", out)
	}
	if out.Template != "video-understanding" {
		t.Fatalf("template = %q", out.Template)
	}
	if !strings.Contains(out.Timeline, "Speech-to-Text") {
		t.Fatal("timeline missing STT track")
	}
	if _, ok := out.Decisions["speech-to-text"]; !ok {
		t.Fatalf("decisions = %v", out.Decisions)
	}
	// The timeline is opt-in: a request without the flag omits it.
	resp2, st2 := postJob(t, srv, videoJobJSON(`"tenant": "alice", "wait": true,`))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit = %d", resp2.StatusCode)
	}
	if st2.Result == nil || st2.Result.Timeline != "" {
		t.Fatalf("timeline rendered without opt-in: %+v", st2.Result)
	}
}

func TestWaitModeReturnsResultInline(t *testing.T) {
	srv := defaultServer(t)
	body := `{
		"description": "Generate social media newsfeed for Alice",
		"constraint": "MIN_LATENCY",
		"wait": true,
		"inputs": [
			{"name": "alice", "kind": "user-profile"},
			{"name": "cats", "kind": "topic"}
		]
	}`
	resp, st := postJob(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if st.Status != "done" || st.Result == nil {
		t.Fatalf("wait response = %+v", st)
	}
	if st.Result.Template != "newsfeed" || st.Result.TasksCompleted != 4 {
		t.Fatalf("result = %+v", st.Result)
	}
}

func TestSharedRuntimeMultiplexesAcrossRequests(t *testing.T) {
	srv := server(t, PoolConfig{Shards: 1})
	// Three identical jobs back to back on one shard: the decomposition and
	// plan must be computed once and reused, and the serving engines stay
	// warm, so later jobs see identical makespans.
	var runs []JobStatusResponse
	for i := 0; i < 3; i++ {
		resp, st := postJob(t, srv, videoJobJSON(`"tenant": "alice", "wait": true,`))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d status = %d", i, resp.StatusCode)
		}
		runs = append(runs, st)
	}
	// Warm runs agree to float accumulation noise (the absolute sim clock
	// differs per run, so the last ulp can wobble).
	m1, m2 := runs[1].Result.MakespanS, runs[2].Result.MakespanS
	if diff := m1 - m2; diff < -1e-6 || diff > 1e-6 {
		t.Fatalf("warm runs diverge: %v vs %v", m1, m2)
	}
	if runs[1].Result.TasksCompleted != runs[2].Result.TasksCompleted {
		t.Fatalf("warm runs completed different work: %+v vs %+v", runs[1].Result, runs[2].Result)
	}
	var stats PoolStats
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "shared" || stats.Submitted != 3 || stats.Completed != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	sh := stats.Shards[0]
	if sh.DecompCacheHits < 2 || sh.PlanCacheHits < 2 {
		t.Fatalf("caches cold across requests: %+v", sh)
	}
	if len(sh.Engines) == 0 {
		t.Fatal("no warm engines after jobs (KeepEngines)")
	}
	if sh.SimTimeS <= 0 {
		t.Fatalf("shard sim clock did not advance: %+v", sh)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, err := NewServer(PoolConfig{Shards: 1, MaxConcurrentPerShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	// The shard drains jobs in microseconds of wall time, so an HTTP DELETE
	// issued after an HTTP POST races job completion. Gate the shard loop:
	// everything posted while the gate is down executes back to back in one
	// inbox batch, before any simulation event (the scheduler's pump is a
	// deferred event), so the cancel deterministically observes a queued job.
	sh := s.pool.shards[0]
	gate := make(chan struct{})
	sh.loop.Post(func() { <-gate })

	_, first := postJob(t, srv, videoJobJSON(`"tenant": "alice",`))
	_, second := postJob(t, srv, videoJobJSON(`"tenant": "alice",`))

	// Issue the DELETE while the gate is still down, then lift the gate once
	// the cancel has certainly been posted behind the two submissions.
	type delResult struct {
		code int
		st   JobStatusResponse
	}
	delCh := make(chan delResult, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+second.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			delCh <- delResult{}
			return
		}
		defer resp.Body.Close()
		var st JobStatusResponse
		json.NewDecoder(resp.Body).Decode(&st)
		delCh <- delResult{resp.StatusCode, st}
	}()
	// Lift the gate only once all four closures (gate, submit, submit,
	// cancel) have been accepted. However the loop batched them, the cancel
	// executes at most one step-batch after the second submission — the job
	// is still queued (or at worst just started), and both are cancelable.
	for sh.loop.Posted() < 4 {
		time.Sleep(time.Millisecond)
	}
	close(gate)

	del := <-delCh
	if del.code != http.StatusOK || del.st.Status != "canceled" {
		t.Fatalf("DELETE = %d %+v", del.code, del.st)
	}

	// Canceling a terminal job conflicts.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+second.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE = %d, want 409", resp.StatusCode)
	}

	if final := pollDone(t, srv, first.ID); final.Status != "done" {
		t.Fatalf("first job = %+v", final)
	}
	if code, st := getJob(t, srv, second.ID); code != http.StatusOK || st.Status != "canceled" {
		t.Fatalf("canceled job reads back as %d %+v", code, st)
	}
}

func TestJobNotFound(t *testing.T) {
	srv := defaultServer(t)
	code, _ := getJob(t, srv, "job-99999999")
	if code != http.StatusNotFound {
		t.Fatalf("GET unknown = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/job-99999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown = %d, want 404", resp.StatusCode)
	}
}

func TestJobValidationErrors(t *testing.T) {
	srv := defaultServer(t)
	cases := map[string]struct {
		body    string
		wantMsg string
	}{
		"bad json":           {`{`, "invalid JSON"},
		"unknown field":      {`{"nope": 1}`, "unknown field"},
		"unknown constraint": {`{"description":"x","constraint":"FASTEST","inputs":[{"name":"a","kind":"text"}]}`, "allowed: MIN_COST, MIN_LATENCY, MIN_POWER, MAX_QUALITY"},
		"unknown kind":       {`{"description":"x","inputs":[{"name":"a","kind":"audio"}]}`, "allowed: video, text, user-profile, topic, document"},
		"video no attrs":     {`{"description":"videos with objects","inputs":[{"name":"a.mov","kind":"video"}]}`, "needs duration_s"},
		"no inputs":          {`{"description":"x","constraint":"MIN_COST"}`, ""},
		"vms in shared mode": {`{"description":"x","vms":4,"inputs":[{"name":"a","kind":"text"}]}`, "per-request mode"},
	}
	for name, tc := range cases {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorBody
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
		if tc.wantMsg != "" && !strings.Contains(e.Error, tc.wantMsg) {
			t.Errorf("%s: error = %q, want it to mention %q", name, e.Error, tc.wantMsg)
		}
	}
}

func TestUnplannableJobIs422(t *testing.T) {
	srv := defaultServer(t)
	body := `{"description":"do wonderful things","constraint":"MIN_COST","wait":true,
	          "inputs":[{"name":"x","kind":"text"}]}`
	resp, st := postJob(t, srv, body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	if st.Status != "failed" || !strings.Contains(st.Error, "cannot decompose") {
		t.Fatalf("response = %+v", st)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := defaultServer(t)
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/library", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/library = %d, want 405", resp.StatusCode)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	srv := defaultServer(t)
	resp, err := http.Get(srv.URL + "/v1/experiments/table2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "MIN_COST selection") {
		t.Fatalf("table2 output missing selection line:\n%s", buf.String())
	}
	resp, _ = http.Get(srv.URL + "/v1/experiments/nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment = %d, want 404", resp.StatusCode)
	}
}

func TestPerRequestModeIsDeterministic(t *testing.T) {
	s, err := NewServer(PoolConfig{PerRequest: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	run := func() JobStatusResponse {
		resp, st := postJob(t, srv, videoJobJSON(""))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		return st
	}
	a, b := run(), run()
	if a.Result == nil || b.Result == nil {
		t.Fatal("per-request mode did not return inline results")
	}
	if a.Result.MakespanS != b.Result.MakespanS || a.Result.GPUEnergyWh != b.Result.GPUEnergyWh {
		t.Fatalf("non-deterministic service: %+v vs %+v", a.Result, b.Result)
	}
	if a.Shard != -1 {
		t.Fatalf("per-request job reports shard %d, want -1", a.Shard)
	}

	// The throwaway-cluster size is capped: one request must not be able to
	// provision an arbitrarily large simulated cluster.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"description":"x","vms":100000000,"inputs":[{"name":"a","kind":"text"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized vms = %d, want 400", resp.StatusCode)
	}
}

func TestJobHistoryEviction(t *testing.T) {
	s, err := NewServer(PoolConfig{Shards: 1, JobHistoryLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	var ids []string
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{
			"description": "Generate social media newsfeed for user%d",
			"wait": true,
			"inputs": [{"name": "u%d", "kind": "user-profile"},
			           {"name": "cats", "kind": "topic"}]
		}`, i, i)
		resp, st := postJob(t, srv, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d status = %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	if code, _ := getJob(t, srv, ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job not evicted: GET = %d", code)
	}
	if code, _ := getJob(t, srv, ids[2]); code != http.StatusOK {
		t.Fatalf("recent job evicted: GET = %d", code)
	}
}
