package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// sloServer starts a shared-mode daemon with SLO tiers on and the given
// per-tenant queue bound, sized so one slow slot builds real queue pressure.
func sloServer(t *testing.T, cfg PoolConfig) *httptest.Server {
	t.Helper()
	cfg.SLO = true
	return server(t, cfg)
}

// qualityJobJSON is a MAX_QUALITY video job: the plans pick the large
// high-quality models, so admission-time degradation has real headroom and
// planning is heavy enough that submissions queue behind it.
func qualityJobJSON(tenant, extra string) string {
	return fmt.Sprintf(`{
		"tenant": %q,%s
		"description": "List objects shown in the videos",
		"constraint": "MAX_QUALITY",
		"inputs": [{"name": "a.mov", "kind": "video",
		            "attrs": {"duration_s": 120, "scene_len_s": 30, "frames_per_scene": 24}}]
	}`, tenant, extra)
}

// TestErrorCodeEnumWireRoundTrip fabricates a settled job for every stable
// error code — including this PR's shed_overload and budget_exhausted — and
// asserts each round-trips through the GET /v1/jobs/{id} JSON wire format
// verbatim. The raw-substring check makes the wire spelling itself the
// contract, not just Go-side symmetry.
func TestErrorCodeEnumWireRoundTrip(t *testing.T) {
	s, err := NewServer(PoolConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	codes := []core.ErrorCode{
		core.CodeRetriesExhausted,
		core.CodeDeadlineExceeded,
		core.CodeWindowCompacted,
		core.CodeCanceled,
		core.CodeTaskFailed,
		core.CodeShedOverload,
		core.CodeBudgetExhausted,
		core.CodeNodeDown,
		core.CodeInternal,
	}
	pool := s.Pool()
	for i, code := range codes {
		rec := &jobRecord{
			id:     fmt.Sprintf("job-code-%d", i),
			tenant: "enum",
			done:   make(chan struct{}),
		}
		rec.settle(core.JobFailed, "synthetic "+string(code), string(code), nil, 0)
		pool.register(rec)
	}
	for i, code := range codes {
		resp, err := http.Get(srv.URL + fmt.Sprintf("/v1/jobs/job-code-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: GET = %d", code, resp.StatusCode)
		}
		want := fmt.Sprintf(`"error_code":%q`, code)
		if !strings.Contains(string(raw), want) {
			t.Fatalf("%s: wire body missing %s: %s", code, want, raw)
		}
		var st JobStatusResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.ErrorCode != string(code) || st.Status != "failed" {
			t.Fatalf("%s: decoded error_code %q status %q", code, st.ErrorCode, st.Status)
		}
	}
}

// TestSLOShedReturns429 drives one tenant past its queue bound: the excess
// submissions must come back 429 with Retry-After and a settled, pollable
// job envelope carrying shed_overload — never an unbounded queue, never a
// strand.
func TestSLOShedReturns429(t *testing.T) {
	srv := sloServer(t, PoolConfig{
		Shards:                1,
		MaxConcurrentPerShard: 1,
		SLOQueueBound:         1,
		SLOTenantTiers:        map[string]string{"burst": "bronze"},
	})

	// Concurrent burst: one job runs, one holds the single queue slot, and
	// the rest find the bound reached. Sequential posts would let each job
	// start (freeing the slot) before the next arrives.
	const n = 8
	var mu sync.Mutex
	var accepted, shed []string
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
				strings.NewReader(qualityJobJSON("burst", "")))
			if err != nil {
				t.Error(err)
				return
			}
			var st JobStatusResponse
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
					return
				}
				if st.ErrorCode != string(core.CodeShedOverload) || st.Status != "failed" {
					t.Errorf("shed envelope = status %q code %q", st.Status, st.ErrorCode)
					return
				}
				mu.Lock()
				shed = append(shed, st.ID)
				mu.Unlock()
			default:
				t.Errorf("POST = %d (%+v)", resp.StatusCode, st)
			}
		}()
	}
	wg.Wait()
	if len(accepted) == 0 {
		t.Fatal("no submission admitted")
	}
	if len(shed) == 0 {
		t.Fatal("queue bound 1 never shed in a concurrent burst of 8")
	}
	// Shed jobs are terminal immediately and stay pollable by id.
	for _, id := range shed {
		code, st := getJob(t, srv, id)
		if code != http.StatusOK || st.Status != "failed" || st.ErrorCode != string(core.CodeShedOverload) {
			t.Fatalf("shed job %s: GET = %d status %q code %q", id, code, st.Status, st.ErrorCode)
		}
	}
	for _, id := range accepted {
		if st := pollDone(t, srv, id); st.Status != "done" {
			t.Fatalf("admitted job %s = %q (%s)", id, st.Status, st.Error)
		}
	}
	st := fetchStats(t, srv)
	if st.SLOShed != len(shed) || st.Completed != len(accepted) {
		t.Fatalf("stats shed %d completed %d, want %d/%d", st.SLOShed, st.Completed, len(shed), len(accepted))
	}
	if len(st.TenantSLO) != 1 || st.TenantSLO[0].Tenant != "burst" ||
		st.TenantSLO[0].Class != "bronze" || st.TenantSLO[0].Shed != len(shed) {
		t.Fatalf("tenant rows = %+v", st.TenantSLO)
	}
}

// TestSLOClassValidation: slo_class is rejected without SLO tiers and for
// unknown names; a valid per-job override rides an admitted submission.
func TestSLOClassValidation(t *testing.T) {
	plain := defaultServer(t)
	resp, _ := postJob(t, plain, qualityJobJSON("v", `"slo_class": "gold",`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("slo_class without -slo: POST = %d", resp.StatusCode)
	}

	srv := sloServer(t, PoolConfig{Shards: 1})
	resp, _ = postJob(t, srv, qualityJobJSON("v", `"slo_class": "platinum",`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown slo_class: POST = %d", resp.StatusCode)
	}
	resp, st := postJob(t, srv, qualityJobJSON("v", `"slo_class": "gold", "wait": true,`))
	if resp.StatusCode != http.StatusOK || st.Status != "done" {
		t.Fatalf("gold override: POST = %d status %q err %q", resp.StatusCode, st.Status, st.Error)
	}
}

// TestSLOCountersMonotonicAcrossRecycles extends the recycle-monotonicity
// pattern to the SLO counters: per-tenant attainment and shed/degrade
// accounting fold into the pool when a displaced shard finishes draining,
// so samples taken while shards churn must never go backwards.
func TestSLOCountersMonotonicAcrossRecycles(t *testing.T) {
	srv := sloServer(t, PoolConfig{
		Shards:                1,
		MaxConcurrentPerShard: 1,
		RetainSimSeconds:      -1,
		MaxSeriesPoints:       64, // every busy shard overruns: recycles guaranteed
		SLOQueueBound:         1,
		SLOTenantTiers:        map[string]string{"churn": "bronze"},
	})

	var last PoolStats
	totalShed := 0
	for wave := 0; wave < 6; wave++ {
		// Concurrent wait:true submissions: one runs, one queues, the rest
		// shed on the bound — every wave exercises both outcomes while the
		// tight series budget recycles the shard underneath.
		const burst = 4
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(qualityJobJSON("churn", `"wait": true,`)))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					if st.ErrorCode != string(core.CodeShedOverload) {
						t.Errorf("429 code = %q", st.ErrorCode)
						return
					}
					mu.Lock()
					totalShed++
					mu.Unlock()
				default:
					t.Errorf("POST = %d (%+v)", resp.StatusCode, st)
				}
			}()
		}
		wg.Wait()
		st := fetchStats(t, srv)
		if st.SLOShed < last.SLOShed || st.SLOMet+st.SLOMissed < last.SLOMet+last.SLOMissed ||
			st.SLODegradedAdmits < last.SLODegradedAdmits {
			t.Fatalf("wave %d: SLO counters went backwards: shed %d->%d attainment %d->%d degraded %d->%d",
				wave, last.SLOShed, st.SLOShed, last.SLOMet+last.SLOMissed, st.SLOMet+st.SLOMissed,
				last.SLODegradedAdmits, st.SLODegradedAdmits)
		}
		if len(st.TenantSLO) > 0 {
			row := st.TenantSLO[0]
			var prev TenantSLOJSON
			if len(last.TenantSLO) > 0 {
				prev = last.TenantSLO[0]
			}
			if row.Admitted < prev.Admitted || row.Shed < prev.Shed || row.CostSpentUSD < prev.CostSpentUSD {
				t.Fatalf("wave %d: tenant row went backwards: %+v -> %+v", wave, prev, row)
			}
		}
		last = st
	}
	st := fetchStats(t, srv)
	if st.Recycles == 0 {
		t.Fatalf("workload never recycled a shard; monotonicity across recycles untested: %+v", st)
	}
	if st.SLOShed == 0 || totalShed == 0 {
		t.Fatalf("queue bound never shed across the waves (stats %d, observed %d)", st.SLOShed, totalShed)
	}
	if st.SLOShed != totalShed {
		t.Fatalf("pool shed counter %d != observed 429s %d", st.SLOShed, totalShed)
	}
	if st.SLOMet+st.SLOMissed == 0 {
		t.Fatal("no completions classified against the latency target")
	}
}

// TestShedUnderRecycleRace hammers one SLO-bounded tenant with concurrent
// clients while tight retention churns the shard underneath (run with -race,
// as CI does): every submission must either complete or come back as a typed
// shed, the counters must reconcile exactly, and nothing may strand.
func TestShedUnderRecycleRace(t *testing.T) {
	srv := sloServer(t, PoolConfig{
		Shards:                1,
		MaxConcurrentPerShard: 2,
		RetainSimSeconds:      -1,
		MaxSeriesPoints:       64,
		SLOQueueBound:         2,
	})

	const clients, perClient = 6, 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	done, shed := 0, 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(qualityJobJSON("stampede", `"wait": true,`)))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					done++
					mu.Unlock()
				case http.StatusTooManyRequests:
					if st.Status != "failed" || st.ErrorCode != string(core.CodeShedOverload) {
						t.Errorf("shed envelope = status %q code %q", st.Status, st.ErrorCode)
						return
					}
					mu.Lock()
					shed++
					mu.Unlock()
				default:
					t.Errorf("client %d: POST = %d (%+v)", c, resp.StatusCode, st)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := fetchStats(t, srv)
	if done+shed != clients*perClient {
		t.Fatalf("%d done + %d shed != %d submissions", done, shed, clients*perClient)
	}
	if st.Completed != done || st.Failed != shed || st.SLOShed != shed {
		t.Fatalf("counters do not reconcile: completed %d/%d failed %d shed %d/%d",
			st.Completed, done, st.Failed, st.SLOShed, shed)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stranded work after settle: running %d queued %d", st.Running, st.Queued)
	}
}
