package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func fetchStats(t *testing.T, srv *httptest.Server) PoolStats {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats PoolStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func waitBody(tenant string) string {
	return fmt.Sprintf(`{
		"tenant": %q, "wait": true,
		"description": "Generate social media newsfeed for %s",
		"constraint": "MIN_LATENCY",
		"inputs": [{"name": %q, "kind": "user-profile"},
		           {"name": "cats", "kind": "topic"}]
	}`, tenant, tenant, tenant)
}

// TestStatsExposeTelemetryRetention: /v1/stats must surface per-shard
// telemetry points/bytes, the retention watermark, compaction progress and
// the pool recycle count; with a short retention window the watermark must
// actually advance and drop points as served history accumulates.
func TestStatsExposeTelemetryRetention(t *testing.T) {
	s, err := NewServer(PoolConfig{
		Shards:           1,
		RetainSimSeconds: 2,  // a few simulated seconds: jobs are ~3 s each
		MaxSeriesPoints:  -1, // isolate compaction from recycling
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	for i := 0; i < 6; i++ {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(waitBody("alice")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: POST = %d", i, resp.StatusCode)
		}
	}

	stats := fetchStats(t, srv)
	if len(stats.Shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(stats.Shards))
	}
	sh := stats.Shards[0]
	if sh.TelemetryPoints <= 0 || sh.TelemetryBytes <= 0 {
		t.Fatalf("telemetry accounting missing: %+v", sh)
	}
	if stats.TelemetryPoints != sh.TelemetryPoints || stats.TelemetryBytes != sh.TelemetryBytes {
		t.Fatalf("pool totals %d/%d disagree with shard %d/%d",
			stats.TelemetryPoints, stats.TelemetryBytes, sh.TelemetryPoints, sh.TelemetryBytes)
	}
	if sh.WatermarkS <= 0 || sh.Epoch == 0 || sh.CompactedPoints == 0 {
		t.Fatalf("short retention never compacted: %+v", sh)
	}
	if sh.WatermarkS >= sh.SimTimeS {
		t.Fatalf("watermark %v at or beyond sim time %v", sh.WatermarkS, sh.SimTimeS)
	}
	if sh.RollupBuckets == 0 {
		t.Fatalf("no rollup buckets after compaction: %+v", sh)
	}
	if stats.Recycles != 0 {
		t.Fatalf("recycles = %d with recycling disabled", stats.Recycles)
	}
	// Full-history utilization must still answer from the rollups.
	if sh.MeanGPUUtil <= 0 {
		t.Fatalf("mean GPU util lost behind the watermark: %+v", sh)
	}
}

// TestShardRecycleKeepsServingJobs: with a telemetry budget small enough
// that every active shard overruns it, shards recycle while a concurrent
// job stream runs — and every job still completes with a full report. This
// is the drain → rebuild → swap path under fire; run with -race.
func TestShardRecycleKeepsServingJobs(t *testing.T) {
	s, err := NewServer(PoolConfig{
		Shards:           1,
		RetainSimSeconds: -1, // compaction off: only recycling can bound memory
		MaxSeriesPoints:  64, // below even one busy job's footprint
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	const clients, perClient = 6, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(waitBody(tenant)))
				if err != nil {
					errs <- err
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || st.Status != "done" {
					errs <- fmt.Errorf("%s/%d: POST = %d status %q err %q",
						tenant, i, resp.StatusCode, st.Status, st.Error)
					return
				}
				if st.Result == nil || st.Result.TasksCompleted == 0 {
					errs <- fmt.Errorf("%s/%d: empty result", tenant, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Lifecycle counters are pool-level and settle before each wait:true
	// response returns, so they must reconcile immediately — even though
	// the shards that served most of these jobs have been recycled (some
	// possibly still draining).
	stats := fetchStats(t, srv)
	total := clients * perClient
	if stats.Submitted != total || stats.Completed != total {
		t.Fatalf("stats lost recycled-shard history: %+v, want %d submitted+completed",
			stats, total)
	}
	if stats.Recycles == 0 {
		t.Fatalf("budget overrun never recycled a shard: %+v", stats)
	}
	if stats.Running != 0 || stats.Queued != 0 {
		t.Fatalf("residual work after quiescence: %+v", stats)
	}
}
