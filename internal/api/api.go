// Package api exposes the Murakkab runtime over HTTP — the service surface
// of the §5 AIWaaS vision. Each job request provisions a fresh simulated
// testbed, runs the workflow to completion, and returns the report; the
// handler is therefore stateless and safe under concurrent requests.
//
// Endpoints:
//
//	GET  /healthz                     liveness
//	GET  /v1/library                  the agent library (capabilities, schemas)
//	POST /v1/jobs                     run a declarative job, returns the report
//	GET  /v1/experiments/{name}       regenerate a table/figure (text/plain)
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	Description string         `json:"description"`
	Constraint  string         `json:"constraint"` // MIN_COST | MIN_LATENCY | MIN_POWER | MAX_QUALITY
	MinQuality  float64        `json:"min_quality,omitempty"`
	Tasks       []string       `json:"tasks,omitempty"`
	Inputs      []InputRequest `json:"inputs"`
	// VMs sizes the simulated cluster (default 2 ND96amsr_A100_v4).
	VMs int `json:"vms,omitempty"`
	// MaxPaths enables execution-path replication under MAX_QUALITY.
	MaxPaths int `json:"max_paths,omitempty"`
}

// InputRequest is one typed job input.
type InputRequest struct {
	Name  string             `json:"name"`
	Kind  string             `json:"kind"` // video | text | user-profile | topic | document
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// JobResponse is the POST /v1/jobs reply.
type JobResponse struct {
	Name                 string            `json:"name"`
	MakespanS            float64           `json:"makespan_s"`
	GPUEnergyWh          float64           `json:"gpu_energy_wh"`
	CPUEnergyWh          float64           `json:"cpu_energy_wh"`
	CostUSD              float64           `json:"cost_usd"`
	MeanGPUUtil          float64           `json:"mean_gpu_util"`
	MeanCPUUtil          float64           `json:"mean_cpu_util"`
	Quality              float64           `json:"quality"`
	PlanningOverheadFrac float64           `json:"planning_overhead_frac"`
	TasksCompleted       int               `json:"tasks_completed"`
	Decisions            map[string]string `json:"decisions"`
	Timeline             string            `json:"timeline"`
	Template             string            `json:"template"`
}

// LibraryEntry describes one implementation in GET /v1/library.
type LibraryEntry struct {
	Name       string   `json:"name"`
	Capability string   `json:"capability"`
	Kind       string   `json:"kind"`
	ParamsB    float64  `json:"params_b"`
	Quality    float64  `json:"quality"`
	Args       []string `json:"args"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler returns the service's http.Handler.
func NewHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealth)
	mux.HandleFunc("/v1/library", handleLibrary)
	mux.HandleFunc("/v1/jobs", handleJobs)
	mux.HandleFunc("/v1/experiments/", handleExperiments)
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleLibrary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	lib := agents.DefaultLibrary()
	var out []LibraryEntry
	for _, c := range lib.Capabilities() {
		for _, im := range lib.ByCapability(c) {
			entry := LibraryEntry{
				Name:       im.Name,
				Capability: string(im.Capability),
				Kind:       string(im.Kind),
				ParamsB:    im.ParamsB,
				Quality:    im.Quality,
			}
			for _, a := range im.Args {
				suffix := ""
				if a.Required {
					suffix = "*"
				}
				entry.Args = append(entry.Args, a.Name+":"+a.Type+suffix)
			}
			out = append(out, entry)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	job, err := req.toJob()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	vms := req.VMs
	if vms <= 0 {
		vms = 2
	}
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	for i := 0; i < vms; i++ {
		cl.AddVM(fmt.Sprintf("vm%d", i), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ex, err := rt.Submit(job, core.SubmitOptions{RelaxFloor: true, MaxPaths: req.MaxPaths})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	se.Run()
	if ex.Err() != nil {
		writeError(w, http.StatusInternalServerError, ex.Err())
		return
	}
	rep := ex.Report()
	writeJSON(w, http.StatusOK, JobResponse{
		Name:                 rep.Name,
		MakespanS:            rep.MakespanS,
		GPUEnergyWh:          rep.GPUEnergyWh,
		CPUEnergyWh:          rep.CPUEnergyWh,
		CostUSD:              rep.CostUSD,
		MeanGPUUtil:          rep.MeanGPUUtil,
		MeanCPUUtil:          rep.MeanCPUUtil,
		Quality:              rep.Quality,
		PlanningOverheadFrac: rep.PlanningOverheadFrac,
		TasksCompleted:       rep.TasksCompleted,
		Decisions:            rep.Decisions,
		Timeline:             rep.Timeline(72),
		Template:             ex.Decomposition().Template,
	})
}

func (req JobRequest) toJob() (workflow.Job, error) {
	var c workflow.Constraint
	switch strings.ToUpper(req.Constraint) {
	case "MIN_COST", "":
		c = workflow.MinCost
	case "MIN_LATENCY":
		c = workflow.MinLatency
	case "MIN_POWER":
		c = workflow.MinPower
	case "MAX_QUALITY":
		c = workflow.MaxQuality
	default:
		return workflow.Job{}, fmt.Errorf("unknown constraint %q", req.Constraint)
	}
	job := workflow.Job{
		Description: req.Description,
		Tasks:       req.Tasks,
		Constraint:  c,
		MinQuality:  req.MinQuality,
	}
	for _, in := range req.Inputs {
		if in.Kind == string(workflow.InputVideo) && in.Attrs["scenes"] == 0 {
			// Convenience: duration_s + scene_len_s + frames_per_scene.
			dur := in.Attrs["duration_s"]
			sl := in.Attrs["scene_len_s"]
			fps := int(in.Attrs["frames_per_scene"])
			if dur <= 0 || sl <= 0 || fps <= 0 {
				return workflow.Job{}, fmt.Errorf(
					"video input %q needs duration_s, scene_len_s and frames_per_scene", in.Name)
			}
			job.Inputs = append(job.Inputs, workflow.VideoInput(in.Name, dur, sl, fps))
			continue
		}
		job.Inputs = append(job.Inputs, workflow.Input{
			Name:  in.Name,
			Kind:  workflow.InputKind(in.Kind),
			Attrs: in.Attrs,
		})
	}
	return job, job.Validate()
}

func handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	var out string
	var err error
	switch name {
	case "fig3":
		var res *experiments.Figure3Result
		if res, err = experiments.Figure3(); err == nil {
			out = res.String()
		}
	case "table1":
		var res *experiments.Table1Result
		if res, err = experiments.Table1(); err == nil {
			out = res.String()
		}
	case "table2":
		var res *experiments.Table2Result
		if res, err = experiments.Table2(); err == nil {
			out = res.String()
		}
	case "overhead":
		var res *experiments.OverheadResult
		if res, err = experiments.Overhead(); err == nil {
			out = res.String()
		}
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", name))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
