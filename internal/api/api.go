// Package api exposes the Murakkab runtime over HTTP — the service surface
// of the §5 AIWaaS vision, rebuilt as a long-lived, sharded serving daemon.
// Jobs are admitted asynchronously into a pool of shared runtimes (one
// sim-loop goroutine per shard, tenants hashed across shards), so concurrent
// submissions multiplex warm serving engines and reuse generation-checked
// plan/decomposition caches instead of provisioning a throwaway testbed per
// request.
//
// Endpoints:
//
//	GET    /healthz                   liveness
//	GET    /v1/library                the agent library (capabilities, schemas)
//	POST   /v1/jobs                   submit a job → 202 + job id ("wait":true blocks for the result)
//	GET    /v1/jobs/{id}              job status / result
//	DELETE /v1/jobs/{id}              cancel a queued or running job
//	GET    /v1/stats                  multiplexing, cache and utilization counters
//	GET    /v1/experiments/{name}     regenerate a table/figure (text/plain)
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/agents"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workflow"
)

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Tenant namespaces the job; tenants hash to runtime shards ("default"
	// when empty).
	Tenant      string         `json:"tenant,omitempty"`
	Description string         `json:"description"`
	Constraint  string         `json:"constraint"` // MIN_COST | MIN_LATENCY | MIN_POWER | MAX_QUALITY
	MinQuality  float64        `json:"min_quality,omitempty"`
	Tasks       []string       `json:"tasks,omitempty"`
	Inputs      []InputRequest `json:"inputs"`
	// MaxPaths enables execution-path replication under MAX_QUALITY.
	MaxPaths int `json:"max_paths,omitempty"`
	// SLOClass overrides the tenant's SLO tier for this job ("gold",
	// "silver", "bronze"). Rejected when the daemon runs without SLO tiers.
	SLOClass string `json:"slo_class,omitempty"`
	// Wait blocks the request until the job completes and returns the result
	// inline (per-request mode always behaves this way).
	Wait bool `json:"wait,omitempty"`
	// Timeline includes the rendered execution timeline in the result.
	// Off by default: it is a debugging artifact, and rendering plus
	// serializing it is measurable at serving rates.
	Timeline bool `json:"timeline,omitempty"`
	// VMs sizes the throwaway cluster in per-request mode (default 2). It is
	// rejected in shared mode, where shard clusters are sized at daemon start.
	VMs int `json:"vms,omitempty"`
}

// InputRequest is one typed job input.
type InputRequest struct {
	Name  string             `json:"name"`
	Kind  string             `json:"kind"` // video | text | user-profile | topic | document
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// maxRequestVMs caps the client-supplied throwaway-cluster size in
// per-request mode: provisioning is synchronous on the handler goroutine,
// so an unbounded count would let one request exhaust daemon memory.
const maxRequestVMs = 16

// maxRequestPaths caps MAX_QUALITY execution-path replication per request:
// every LLM task replicates up to this factor on the tenant's shared shard,
// so an unbounded value would let one request monopolize it.
const maxRequestPaths = 8

// JobResponse is a finished job's result payload.
//
// CostUSD, GPUEnergyWh, CPUEnergyWh and the utilization means are
// cluster-wide quantities over the job's execution window: in shared mode
// the window covers everything the shard's cluster ran concurrently, so
// overlapping tenants each observe the shared total (summing cost_usd
// across jobs double-counts the rental). EstCostUSD is the per-job metering
// figure — the optimizer's estimate of the resources this job alone
// committed — and is what aiwaas-style billing charges.
type JobResponse struct {
	Name                 string            `json:"name"`
	MakespanS            float64           `json:"makespan_s"`
	GPUEnergyWh          float64           `json:"gpu_energy_wh"`
	CPUEnergyWh          float64           `json:"cpu_energy_wh"`
	CostUSD              float64           `json:"cost_usd"`
	EstCostUSD           float64           `json:"est_cost_usd"`
	MeanGPUUtil          float64           `json:"mean_gpu_util"`
	MeanCPUUtil          float64           `json:"mean_cpu_util"`
	Quality              float64           `json:"quality"`
	PlanningOverheadFrac float64           `json:"planning_overhead_frac"`
	TasksCompleted       int               `json:"tasks_completed"`
	Decisions            map[string]string `json:"decisions"`
	Timeline             string            `json:"timeline,omitempty"`
	Template             string            `json:"template"`
}

// JobStatusResponse is the async job envelope (POST 202 and GET /v1/jobs/{id}).
// ErrorCode is the stable machine-readable failure class — one of
// retries_exhausted, deadline_exceeded, window_compacted, canceled,
// task_failed, shed_overload, budget_exhausted, internal — while Error stays
// the human-readable chain.
type JobStatusResponse struct {
	ID            string        `json:"id"`
	Tenant        string        `json:"tenant"`
	Shard         int           `json:"shard"`
	Status        string        `json:"status"`
	QueueDelayS   float64       `json:"queue_delay_s"`
	SubmittedSimS float64       `json:"submitted_sim_s"`
	FinishedSimS  float64       `json:"finished_sim_s,omitempty"`
	Error         string        `json:"error,omitempty"`
	ErrorCode     string        `json:"error_code,omitempty"`
	Attempts      []AttemptJSON `json:"attempts,omitempty"`
	Result        *JobResponse  `json:"result,omitempty"`
}

// AttemptJSON is one recorded task failure in a job's attempt history.
type AttemptJSON struct {
	AtS            float64 `json:"at_s"`
	Task           string  `json:"task"`
	Capability     string  `json:"capability"`
	Implementation string  `json:"implementation"`
	Attempt        int     `json:"attempt"`
	BackoffS       float64 `json:"backoff_s,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// LibraryEntry describes one implementation in GET /v1/library.
type LibraryEntry struct {
	Name       string   `json:"name"`
	Capability string   `json:"capability"`
	Kind       string   `json:"kind"`
	ParamsB    float64  `json:"params_b"`
	Quality    float64  `json:"quality"`
	Args       []string `json:"args"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Server is the serving daemon: a runtime pool plus its HTTP surface. Close
// it to drain the shard loops.
type Server struct {
	pool *Pool
	mux  *http.ServeMux
}

// NewServer provisions the pool and wires the routes.
func NewServer(cfg PoolConfig) (*Server, error) {
	pool, err := NewPool(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{pool: pool, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/library", handleLibrary)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/experiments/{name}", handleExperiments)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Pool exposes the runtime pool (for stats and tests).
func (s *Server) Pool() *Pool { return s.pool }

// Close drains the pool's shard loops.
func (s *Server) Close() { s.pool.Close() }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// A draining (closed) pool rejects submissions, so report it unhealthy:
	// the router tier probes this endpoint to steer traffic to live nodes.
	if s.pool.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func handleLibrary(w http.ResponseWriter, r *http.Request) {
	lib := agents.DefaultLibrary()
	var out []LibraryEntry
	for _, c := range lib.Capabilities() {
		for _, im := range lib.ByCapability(c) {
			entry := LibraryEntry{
				Name:       im.Name,
				Capability: string(im.Capability),
				Kind:       string(im.Kind),
				ParamsB:    im.ParamsB,
				Quality:    im.Quality,
			}
			for _, a := range im.Args {
				suffix := ""
				if a.Required {
					suffix = "*"
				}
				entry.Args = append(entry.Args, a.Name+":"+a.Type+suffix)
			}
			out = append(out, entry)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if req.VMs != 0 && !s.pool.PerRequest() {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"vms applies only to per-request mode; shard cluster size is fixed at daemon start"))
		return
	}
	if req.VMs < 0 || req.VMs > maxRequestVMs {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"vms must be in [1, %d] (0 for the default)", maxRequestVMs))
		return
	}
	if req.MaxPaths < 0 || req.MaxPaths > maxRequestPaths {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"max_paths must be in [1, %d] (0 disables path replication)", maxRequestPaths))
		return
	}
	if req.SLOClass != "" {
		if !s.pool.SLOEnabled() {
			writeError(w, http.StatusBadRequest, fmt.Errorf(
				"slo_class requires the daemon to run with SLO tiers (-slo)"))
			return
		}
		if _, ok := core.DefaultSLOClasses()[req.SLOClass]; !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf(
				"unknown slo_class %q (allowed: %s)", req.SLOClass, allowedSLOClasses))
			return
		}
	}
	job, err := req.toJob()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	rec, err := s.pool.Submit(tenant, job, core.SubmitOptions{
		RelaxFloor: true, MaxPaths: req.MaxPaths, SLOClass: req.SLOClass,
	}, submitExtras{vms: req.VMs, timeline: req.Timeline})
	if err != nil {
		switch core.ErrorCodeOf(err) {
		case core.CodeShedOverload:
			// Backpressure, not failure: the tenant's bounded queue is full
			// under overload. Retry-After tells well-behaved clients when to
			// come back; the settled job envelope carries the typed code.
			w.Header().Set("Retry-After", "1")
			writeTooMany(w, rec, err)
		case core.CodeBudgetExhausted:
			// Also 429 (the canonical quota answer), but without Retry-After:
			// backing off does not refill a spent budget.
			writeTooMany(w, rec, err)
		default:
			writeError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	if req.Wait || s.pool.PerRequest() {
		select {
		case <-rec.Done():
		case <-r.Context().Done():
			// Client gave up; the job keeps running and stays pollable.
			writeJSON(w, http.StatusAccepted, statusResponse(rec.snapshot()))
			return
		}
		st := rec.snapshot()
		if st.Status == core.JobFailed {
			writeJSON(w, http.StatusUnprocessableEntity, statusResponse(st))
			return
		}
		writeJSON(w, http.StatusOK, statusResponse(st))
		return
	}
	writeJSON(w, http.StatusAccepted, statusResponse(rec.snapshot()))
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, statusResponse(st))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, canceled, ok := s.pool.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if !canceled {
		writeJSON(w, http.StatusConflict, statusResponse(st))
		return
	}
	writeJSON(w, http.StatusOK, statusResponse(st))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Stats())
}

func statusResponse(st JobState) JobStatusResponse {
	out := JobStatusResponse{
		ID:            st.ID,
		Tenant:        st.Tenant,
		Shard:         st.Shard,
		Status:        st.Status.String(),
		QueueDelayS:   st.QueueDelayS,
		SubmittedSimS: st.SubmittedSimS,
		FinishedSimS:  st.FinishedSimS,
		Error:         st.Error,
		ErrorCode:     st.ErrorCode,
		Result:        st.Result,
	}
	for _, a := range st.Attempts {
		out.Attempts = append(out.Attempts, AttemptJSON{
			AtS:            a.AtS,
			Task:           a.Task,
			Capability:     a.Capability,
			Implementation: a.Implementation,
			Attempt:        a.Attempt,
			BackoffS:       a.BackoffS,
			Error:          a.Err,
		})
	}
	return out
}

// writeTooMany renders an SLO admission rejection (shed or budget): 429 with
// the settled job envelope when the pool returned a record, else the error.
func writeTooMany(w http.ResponseWriter, rec *jobRecord, err error) {
	if rec != nil {
		writeJSON(w, http.StatusTooManyRequests, statusResponse(rec.snapshot()))
		return
	}
	writeError(w, http.StatusTooManyRequests, err)
}

// allowedConstraints and allowedKinds gate request validation up front, so
// malformed submissions fail with 400 and the permitted values instead of
// surfacing as runtime errors mid-admission.
var allowedConstraints = "MIN_COST, MIN_LATENCY, MIN_POWER, MAX_QUALITY"

// allowedSLOClasses lists the built-in SLO tiers for validation errors.
var allowedSLOClasses = "bronze, gold, silver"

var allowedKindOrder = []workflow.InputKind{
	workflow.InputVideo, workflow.InputText, workflow.InputUser,
	workflow.InputTopic, workflow.InputDoc,
}

var allowedKinds = func() map[workflow.InputKind]bool {
	m := make(map[workflow.InputKind]bool, len(allowedKindOrder))
	for _, k := range allowedKindOrder {
		m[k] = true
	}
	return m
}()

func allowedKindList() string {
	out := make([]string, len(allowedKindOrder))
	for i, k := range allowedKindOrder {
		out[i] = string(k)
	}
	return strings.Join(out, ", ")
}

func (req JobRequest) toJob() (workflow.Job, error) {
	var c workflow.Constraint
	switch strings.ToUpper(req.Constraint) {
	case "MIN_COST", "":
		c = workflow.MinCost
	case "MIN_LATENCY":
		c = workflow.MinLatency
	case "MIN_POWER":
		c = workflow.MinPower
	case "MAX_QUALITY":
		c = workflow.MaxQuality
	default:
		return workflow.Job{}, fmt.Errorf("unknown constraint %q (allowed: %s)",
			req.Constraint, allowedConstraints)
	}
	job := workflow.Job{
		Description: req.Description,
		Tasks:       req.Tasks,
		Constraint:  c,
		MinQuality:  req.MinQuality,
	}
	for _, in := range req.Inputs {
		if !allowedKinds[workflow.InputKind(in.Kind)] {
			return workflow.Job{}, fmt.Errorf("unknown input kind %q for %q (allowed: %s)",
				in.Kind, in.Name, allowedKindList())
		}
		if in.Kind == string(workflow.InputVideo) && in.Attrs["scenes"] == 0 {
			// Convenience: duration_s + scene_len_s + frames_per_scene.
			dur := in.Attrs["duration_s"]
			sl := in.Attrs["scene_len_s"]
			fps := int(in.Attrs["frames_per_scene"])
			if dur <= 0 || sl <= 0 || fps <= 0 {
				return workflow.Job{}, fmt.Errorf(
					"video input %q needs duration_s, scene_len_s and frames_per_scene", in.Name)
			}
			job.Inputs = append(job.Inputs, workflow.VideoInput(in.Name, dur, sl, fps))
			continue
		}
		job.Inputs = append(job.Inputs, workflow.Input{
			Name:  in.Name,
			Kind:  workflow.InputKind(in.Kind),
			Attrs: in.Attrs,
		})
	}
	return job, job.Validate()
}

func handleExperiments(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var out string
	var err error
	switch name {
	case "fig3":
		var res *experiments.Figure3Result
		if res, err = experiments.Figure3(); err == nil {
			out = res.String()
		}
	case "table1":
		var res *experiments.Table1Result
		if res, err = experiments.Table1(); err == nil {
			out = res.String()
		}
	case "table2":
		var res *experiments.Table2Result
		if res, err = experiments.Table2(); err == nil {
			out = res.String()
		}
	case "overhead":
		var res *experiments.OverheadResult
		if res, err = experiments.Overhead(); err == nil {
			out = res.String()
		}
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", name))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Compact encoding: the daemon serves high request rates, and indented
	// output measurably inflates encode time and response bytes.
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}
