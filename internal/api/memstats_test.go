package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestStatsMemoryHealth: GET /v1/stats reports live heap health — non-zero
// heap gauges and, once a collection has run, a GC cycle count and a pause
// percentile that parse as numbers (not absent fields).
func TestStatsMemoryHealth(t *testing.T) {
	s, err := NewServer(PoolConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	mustServe(t, srv, waitBody("tenant-mem"))
	runtime.GC() // the server is in-process: guarantee NumGC >= 1

	// Decode the raw JSON rather than PoolStats so the wire field names are
	// part of the contract.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Memory struct {
			HeapAllocBytes uint64   `json:"heap_alloc_bytes"`
			HeapObjects    uint64   `json:"heap_objects"`
			NumGC          uint32   `json:"num_gc"`
			GCPauseP95Us   *float64 `json:"gc_pause_p95_us"`
		} `json:"memory"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	m := raw.Memory
	if m.HeapAllocBytes == 0 || m.HeapObjects == 0 {
		t.Fatalf("heap gauges missing: %+v", m)
	}
	if m.NumGC == 0 {
		t.Fatalf("num_gc = 0 after an explicit runtime.GC()")
	}
	if m.GCPauseP95Us == nil || *m.GCPauseP95Us < 0 {
		t.Fatalf("gc_pause_p95_us missing or negative: %+v", m)
	}
}

// TestScratchPoolCountersMonotonicAcrossRecycles: the scratch-pool and
// key-interner counters are lifetime totals folded into the pool when a
// shard is recycled, so repeated samples while shards churn must never go
// backwards — and a serving pool that ran real work must show reuse hits.
func TestScratchPoolCountersMonotonicAcrossRecycles(t *testing.T) {
	s, err := NewServer(PoolConfig{
		Shards:           1,
		RetainSimSeconds: -1,
		MaxSeriesPoints:  64, // every busy shard overruns: recycles guaranteed
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	var lastHits, lastMisses, lastIntern uint64
	for wave := 0; wave < 6; wave++ {
		mustServe(t, srv, waitBody(fmt.Sprintf("tenant-%d", wave)))
		st := fetchStats(t, srv)
		hits, misses := st.ScratchPoolHits, st.ScratchPoolMisses
		intern := st.KeyInternHits + st.KeyInternMisses
		if hits < lastHits || misses < lastMisses || intern < lastIntern {
			t.Fatalf("wave %d: counters went backwards: hits %d->%d misses %d->%d intern %d->%d",
				wave, lastHits, hits, lastMisses, misses, lastIntern, intern)
		}
		lastHits, lastMisses, lastIntern = hits, misses, intern
	}
	st := fetchStats(t, srv)
	if st.Recycles == 0 {
		t.Fatalf("workload never recycled a shard; monotonicity across recycles untested: %+v", st)
	}
	if st.ScratchPoolMisses == 0 {
		t.Fatalf("no scratch-pool activity recorded: %+v", st)
	}
	if st.ScratchPoolHits == 0 {
		t.Fatalf("serving workload never reused pooled scratch: %+v", st)
	}
}

// TestScratchPoolRecycleRace hammers the runtime scratch pools where their
// lifecycle is most delicate: jobs submitted and canceled concurrently while
// the telemetry budget recycles shards underneath, so pooled workers and
// LLM-task barriers are retired by cancellation paths, drained shards, and
// normal completion all at once. The pools are engine-goroutine-only by
// design; this test (run under -race in CI) is the proof. Every job must
// still settle as done or canceled, and the folded counters must show the
// pools were actually exercised across the churn.
func TestScratchPoolRecycleRace(t *testing.T) {
	s, err := NewServer(PoolConfig{
		Shards:           2,
		RetainSimSeconds: -1, // compaction off: only recycling bounds memory
		MaxSeriesPoints:  64, // below one busy job's footprint: recycles guaranteed
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	const clients, perClient = 6, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf(`{
					"tenant": %q,
					"description": "Detect objects in every video scene",
					"constraint": "MIN_LATENCY",
					"inputs": [{"name": "v%d-%d.mov", "kind": "video",
					            "attrs": {"duration_s": 120, "scene_len_s": 30, "frames_per_scene": 8}}]
				}`, tenant, c, i)
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("%s/%d: POST = %d (%+v)", tenant, i, resp.StatusCode, st)
					return
				}
				if i%2 == 1 {
					// Cancellation can land while the job's pooled workers
					// are mid-task; the retire-to-pool path must not race
					// the loop still running them.
					req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
						t.Errorf("%s/%d: DELETE = %d", tenant, i, resp.StatusCode)
						return
					}
				}
				for settled := false; !settled; {
					code, cur := getJob(t, srv, st.ID)
					if code != http.StatusOK {
						t.Errorf("%s/%d: GET = %d", tenant, i, code)
						return
					}
					switch cur.Status {
					case "done", "canceled":
						settled = true
					case "failed":
						t.Errorf("%s/%d: failed: %s", tenant, i, cur.Error)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	st := fetchStats(t, srv)
	total := clients * perClient
	if st.Completed+st.Canceled != total || st.Failed != 0 {
		t.Fatalf("counters do not reconcile: %+v, want %d settled", st, total)
	}
	if st.Recycles == 0 {
		t.Fatalf("no shard recycled; the race this test exists for never ran: %+v", st)
	}
	if st.ScratchPoolHits == 0 || st.ScratchPoolMisses == 0 {
		t.Fatalf("scratch pools not exercised across the churn: %+v", st)
	}
}

func mustServe(t *testing.T, srv *httptest.Server, body string) {
	t.Helper()
	resp, st := postJob(t, srv, body)
	if resp.StatusCode != http.StatusOK || st.Status != "done" {
		t.Fatalf("POST /v1/jobs = %d status %q err %q", resp.StatusCode, st.Status, st.Error)
	}
}
