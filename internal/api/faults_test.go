package api

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// failOneJob submits hour-long video jobs (wait=true) until one settles
// failed and returns its status. The job must span many loop batches: fault
// replay rides the between-batch tick, so a job that fits inside one
// 256-event batch finishes before any fault can land on it.
func failOneJob(t *testing.T, srv *httptest.Server) JobStatusResponse {
	t.Helper()
	for i := 0; i < 12; i++ {
		resp, st := postJob(t, srv, `{
			"tenant": "alice",
			"description": "List objects shown in the videos",
			"constraint": "MIN_LATENCY",
			"inputs": [{"name": "cats.mov", "kind": "video",
			            "attrs": {"duration_s": 3600, "scene_len_s": 30,
			                      "frames_per_scene": 24}}],
			"wait": true
		}`)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("POST %d = %d (%+v)", i, resp.StatusCode, st)
		}
		if st.Status == "failed" {
			return st
		}
	}
	t.Fatal("no job failed under a heavy fault trace; injection is not reaching the shard")
	return JobStatusResponse{}
}

// TestJobErrorCodeAndAttemptsSurface drives a one-attempt-budget shard under
// a heavy fault trace and checks the job API surfaces the typed failure: a
// stable error_code, a populated attempt history, and both visible in the
// raw JSON of GET /v1/jobs/{id}.
func TestJobErrorCodeAndAttemptsSurface(t *testing.T) {
	srv := server(t, PoolConfig{
		Shards:     1,
		FaultRate:  0.4,
		FaultSeed:  3,
		MaxRetries: 1,
	})
	st := failOneJob(t, srv)
	if st.ErrorCode != "retries_exhausted" {
		t.Fatalf("error_code = %q (error %q), want retries_exhausted", st.ErrorCode, st.Error)
	}
	if st.Error == "" {
		t.Fatal("failed job has no human-readable error alongside the code")
	}
	if len(st.Attempts) == 0 {
		t.Fatal("failed job surfaces no attempt history")
	}
	for _, a := range st.Attempts {
		if a.Task == "" || a.Capability == "" || a.Implementation == "" || a.Attempt < 1 {
			t.Fatalf("malformed attempt %+v", a)
		}
	}
	// The wire format must carry the documented field names.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{`"error_code":"retries_exhausted"`, `"attempts":[`, `"at_s":`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("job JSON missing %s:\n%s", key, raw)
		}
	}

	stats := fetchStats(t, srv)
	if stats.FaultsInjected == 0 {
		t.Fatalf("stats = %+v: no faults injected", stats)
	}
	if stats.RetriesExhausted == 0 {
		t.Fatalf("stats = %+v: a job failed retries_exhausted but the counter is zero", stats)
	}
}

// TestFaultWithoutRecoveryYieldsTaskFailed: with injection on but recovery
// off, a fault is a terminal job error carrying the task_failed code — the
// pre-recovery behaviour, now typed.
func TestFaultWithoutRecoveryYieldsTaskFailed(t *testing.T) {
	srv := server(t, PoolConfig{
		Shards:    1,
		FaultRate: 0.4,
		FaultSeed: 3,
	})
	st := failOneJob(t, srv)
	if st.ErrorCode != "task_failed" {
		t.Fatalf("error_code = %q (error %q), want task_failed", st.ErrorCode, st.Error)
	}
	if len(st.Attempts) != 0 {
		t.Fatalf("recovery disabled but attempts recorded: %+v", st.Attempts)
	}
	stats := fetchStats(t, srv)
	if stats.TaskRetries != 0 || stats.RetriesExhausted != 0 {
		t.Fatalf("stats = %+v: recovery counters moved while recovery is off", stats)
	}
}

// TestStatsSurfaceFaultCounterKeys pins the /v1/stats wire format for the
// fault/recovery counters (README documents them).
func TestStatsSurfaceFaultCounterKeys(t *testing.T) {
	srv := server(t, PoolConfig{Shards: 1})
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{
		`"faults_injected"`, `"task_retries"`, `"retries_exhausted"`,
		`"deadlines_exceeded"`, `"degradations"`, `"stage_timeouts"`,
		`"breaker_trips"`, `"breaker_open"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("stats JSON missing %s:\n%s", key, raw)
		}
	}
}
