package api

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Pool is the serving daemon's runtime layer: a set of long-lived simulated
// clusters ("shards"), each owned by one sim.Loop goroutine and fronted by a
// core.Scheduler. Tenants hash to shards, so every job a tenant submits lands
// in the same shared cluster and multiplexes its warm serving engines,
// plan/decomposition caches and worker pools — instead of provisioning a
// fresh testbed per HTTP request.
//
// HTTP handler goroutines never touch a shard's engine or runtime directly:
// submissions, cancels and stats reads are posted into the shard's loop and
// results come back through the mutex-guarded job registry, so the whole
// surface is race-free under concurrent requests.
//
// A Pool can also run in per-request mode (PoolConfig.PerRequest), the
// pre-daemon baseline: every job synchronously provisions a throwaway
// testbed, runs to completion and tears it down. It exists as the comparison
// arm for the serving experiment and benchmarks.
//
// Known limit: a shard's cluster telemetry (per-device power/utilization
// series) is append-only, so a shard's memory grows with the simulated
// history it has served; JobHistoryLimit bounds the job registry but not
// the telemetry. Long-lived deployments need series retention/rollup or
// periodic shard recycling — tracked as an open item.
type Pool struct {
	cfg    PoolConfig
	shards []*shard

	nextJob atomic.Uint64

	mu      sync.Mutex
	jobs    map[string]*jobRecord
	retired []string // terminal job ids, oldest first, for history eviction
	closed  bool

	// per-request mode counters (atomics: submissions run on handler
	// goroutines, not on a shard loop).
	prSubmitted atomic.Int64
	prCompleted atomic.Int64
	prFailed    atomic.Int64
}

// PoolConfig sizes the pool.
type PoolConfig struct {
	// Shards is the number of independent runtime shards (default 2).
	Shards int
	// VMsPerShard sizes each shard's cluster in ND96amsr_A100_v4 VMs
	// (default 2, the paper's §4 testbed).
	VMsPerShard int
	// MaxConcurrentPerShard bounds jobs admitted concurrently into one
	// shard's runtime (default 4); excess queues in the shard's scheduler.
	MaxConcurrentPerShard int
	// JobHistoryLimit bounds retained terminal job records (default 4096);
	// the oldest are evicted so the registry cannot grow without bound.
	JobHistoryLimit int
	// PerRequest switches the pool to the per-request-testbed baseline.
	PerRequest bool
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.VMsPerShard <= 0 {
		c.VMsPerShard = 2
	}
	if c.MaxConcurrentPerShard <= 0 {
		c.MaxConcurrentPerShard = 4
	}
	if c.JobHistoryLimit <= 0 {
		c.JobHistoryLimit = 4096
	}
	return c
}

// shard is one long-lived runtime plus the loop goroutine that owns it.
type shard struct {
	idx   int
	eng   *sim.Engine
	cl    *cluster.Cluster
	rt    *core.Runtime
	sched *core.Scheduler
	loop  *sim.Loop
}

// errShuttingDown is returned once Close has been called.
var errShuttingDown = fmt.Errorf("api: pool is shutting down")

// NewPool provisions the shards and starts their loop goroutines.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, jobs: map[string]*jobRecord{}}
	if cfg.PerRequest {
		return p, nil
	}
	for i := 0; i < cfg.Shards; i++ {
		se := sim.NewEngine()
		cl := cluster.New(se, hardware.DefaultCatalog())
		for v := 0; v < cfg.VMsPerShard; v++ {
			cl.AddVM(fmt.Sprintf("s%d-vm%d", i, v), hardware.NDv4SKUName, false)
		}
		rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
		if err != nil {
			return nil, fmt.Errorf("api: provisioning shard %d: %w", i, err)
		}
		sh := &shard{
			idx:   i,
			eng:   se,
			cl:    cl,
			rt:    rt,
			sched: core.NewScheduler(se, rt, cfg.MaxConcurrentPerShard),
			loop:  sim.NewLoop(se),
		}
		p.shards = append(p.shards, sh)
		go sh.loop.Run()
	}
	return p, nil
}

// Close drains every shard loop (in-flight and queued jobs run to completion)
// and stops accepting submissions. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, sh := range p.shards {
		sh.loop.Close()
	}
}

// PerRequest reports whether the pool runs the baseline mode.
func (p *Pool) PerRequest() bool { return p.cfg.PerRequest }

// Shards returns the shard count (0 in per-request mode).
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor maps a tenant to its home shard. The modulo happens in uint32 so
// the index stays non-negative on 32-bit platforms.
func (p *Pool) shardFor(tenant string) *shard {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return p.shards[int(h.Sum32()%uint32(len(p.shards)))]
}

// submitExtras carries request options that are not scheduler options.
type submitExtras struct {
	// vms sizes the throwaway cluster in per-request mode.
	vms int
	// timeline includes the rendered execution timeline in the result.
	timeline bool
}

// Submit admits a job for a tenant and returns its registry record. In
// shared mode this is asynchronous: the record starts queued and settles when
// the shard completes the job. In per-request mode it blocks while a fresh
// testbed runs the job.
func (p *Pool) Submit(tenant string, job workflow.Job, opts core.SubmitOptions, extras submitExtras) (*jobRecord, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errShuttingDown
	}
	p.mu.Unlock()

	id := fmt.Sprintf("job-%08d", p.nextJob.Add(1))
	if p.cfg.PerRequest {
		return p.submitPerRequest(id, tenant, job, opts, extras)
	}

	// Engines stay warm across jobs in the shared runtime — the daemon owns
	// their lifecycle, and successive jobs multiplex them.
	opts.KeepEngines = true
	sh := p.shardFor(tenant)
	rec := &jobRecord{
		id:     id,
		tenant: tenant,
		shard:  sh.idx,
		status: core.JobQueued,
		done:   make(chan struct{}),
	}
	posted := sh.loop.Post(func() {
		h, err := sh.sched.Submit(tenant, job, opts)
		if err != nil {
			// Pre-validated by the handler; this is a safety net.
			rec.settle(core.JobFailed, err.Error(), nil, sh.eng.Now().Seconds())
			p.retire(rec)
			return
		}
		rec.mu.Lock()
		rec.handle = h
		rec.submittedSimS = sh.eng.Now().Seconds()
		rec.mu.Unlock()
		// Status transitions push into the record, so HTTP status reads are
		// mutex-only and never round-trip through the shard loop.
		h.OnStart(func(h *core.Handle) {
			rec.mu.Lock()
			rec.status = core.JobRunning
			rec.queueDelayS = h.QueueDelayS()
			rec.mu.Unlock()
		})
		h.OnDone(func(h *core.Handle) {
			var resp *JobResponse
			errMsg := ""
			if h.Status() == core.JobDone {
				resp = jobResponseFrom(h.Execution(), extras.timeline)
			} else if h.Err() != nil {
				errMsg = h.Err().Error()
			}
			rec.mu.Lock()
			rec.queueDelayS = h.QueueDelayS()
			rec.mu.Unlock()
			rec.settle(h.Status(), errMsg, resp, sh.eng.Now().Seconds())
			p.retire(rec)
		})
	})
	if !posted {
		return nil, errShuttingDown
	}
	// Register only after the submission closure is enqueued: the shard
	// inbox is FIFO, so any later posted cancel observes the handle.
	p.mu.Lock()
	p.jobs[id] = rec
	p.mu.Unlock()
	return rec, nil
}

// submitPerRequest is the baseline path: fresh testbed, synchronous run.
func (p *Pool) submitPerRequest(id, tenant string, job workflow.Job, opts core.SubmitOptions, extras submitExtras) (*jobRecord, error) {
	p.prSubmitted.Add(1)
	vms := extras.vms
	if vms <= 0 {
		vms = 2
	}
	rec := &jobRecord{
		id:     id,
		tenant: tenant,
		shard:  -1,
		done:   make(chan struct{}),
	}
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	for i := 0; i < vms; i++ {
		cl.AddVM(fmt.Sprintf("vm%d", i), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		return nil, err
	}
	ex, err := rt.Submit(job, opts)
	if err != nil {
		p.prFailed.Add(1)
		rec.settle(core.JobFailed, err.Error(), nil, se.Now().Seconds())
		p.register(rec)
		return rec, nil
	}
	se.Run()
	if ex.Err() != nil {
		p.prFailed.Add(1)
		rec.settle(core.JobFailed, ex.Err().Error(), nil, se.Now().Seconds())
	} else {
		p.prCompleted.Add(1)
		rec.settle(core.JobDone, "", jobResponseFrom(ex, extras.timeline), se.Now().Seconds())
	}
	p.register(rec)
	return rec, nil
}

func (p *Pool) register(rec *jobRecord) {
	p.mu.Lock()
	p.jobs[rec.id] = rec
	p.mu.Unlock()
	p.retire(rec)
}

// retire records a terminal job for history eviction.
func (p *Pool) retire(rec *jobRecord) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retired = append(p.retired, rec.id)
	for len(p.retired) > p.cfg.JobHistoryLimit {
		delete(p.jobs, p.retired[0])
		p.retired = p.retired[1:]
	}
}

// Get returns a snapshot of a job's state. Status transitions are pushed
// into the record by the owning shard (OnStart/OnDone), so this is a
// mutex-only read.
func (p *Pool) Get(id string) (JobState, bool) {
	p.mu.Lock()
	rec, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return JobState{}, false
	}
	return rec.snapshot(), true
}

// Cancel terminates a job (queued or running). It reports the post-cancel
// state, whether the cancel took effect, and whether the job exists.
func (p *Pool) Cancel(id string) (JobState, bool, bool) {
	p.mu.Lock()
	rec, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return JobState{}, false, false
	}
	if p.cfg.PerRequest {
		// Per-request jobs complete within their own request; nothing to do.
		return rec.snapshot(), false, true
	}
	sh := p.shards[rec.shard]
	reply := make(chan bool, 1)
	if !sh.loop.Post(func() {
		rec.mu.Lock()
		h := rec.handle
		rec.mu.Unlock()
		reply <- h != nil && h.Cancel()
	}) {
		return rec.snapshot(), false, true
	}
	canceled := <-reply
	return rec.snapshot(), canceled, true
}

// JobState is a point-in-time view of one job.
type JobState struct {
	ID            string
	Tenant        string
	Shard         int
	Status        core.JobStatus
	QueueDelayS   float64
	SubmittedSimS float64
	FinishedSimS  float64
	Error         string
	Result        *JobResponse
}

// jobRecord is the registry entry behind a JobState.
type jobRecord struct {
	id     string
	tenant string
	shard  int
	done   chan struct{}

	mu            sync.Mutex
	status        core.JobStatus
	queueDelayS   float64
	submittedSimS float64
	finishedSimS  float64
	errMsg        string
	result        *JobResponse
	// handle is only touched on the owning shard's loop goroutine.
	handle *core.Handle
}

// Done closes when the job reaches a terminal state.
func (r *jobRecord) Done() <-chan struct{} { return r.done }

// ID returns the registry id.
func (r *jobRecord) ID() string { return r.id }

func (r *jobRecord) settle(st core.JobStatus, errMsg string, resp *JobResponse, simNowS float64) {
	r.mu.Lock()
	r.status = st
	r.errMsg = errMsg
	r.result = resp
	r.finishedSimS = simNowS
	r.mu.Unlock()
	close(r.done)
}

func (r *jobRecord) snapshot() JobState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return JobState{
		ID:            r.id,
		Tenant:        r.tenant,
		Shard:         r.shard,
		Status:        r.status,
		QueueDelayS:   r.queueDelayS,
		SubmittedSimS: r.submittedSimS,
		FinishedSimS:  r.finishedSimS,
		Error:         r.errMsg,
		Result:        r.result,
	}
}

// jobResponseFrom builds the result payload from a finished execution. It
// must run on the goroutine owning the execution's engine.
func jobResponseFrom(ex *core.Execution, timeline bool) *JobResponse {
	rep := ex.Report()
	resp := &JobResponse{
		Name:                 rep.Name,
		MakespanS:            rep.MakespanS,
		GPUEnergyWh:          rep.GPUEnergyWh,
		CPUEnergyWh:          rep.CPUEnergyWh,
		CostUSD:              rep.CostUSD,
		EstCostUSD:           ex.Plan().EstCostUSD,
		MeanGPUUtil:          rep.MeanGPUUtil,
		MeanCPUUtil:          rep.MeanCPUUtil,
		Quality:              rep.Quality,
		PlanningOverheadFrac: rep.PlanningOverheadFrac,
		TasksCompleted:       rep.TasksCompleted,
		Decisions:            rep.Decisions,
		Template:             ex.Decomposition().Template,
	}
	if timeline {
		resp.Timeline = rep.Timeline(72)
	}
	return resp
}

// ShardStats is one shard's slice of GET /v1/stats.
type ShardStats struct {
	Shard           int              `json:"shard"`
	SimTimeS        float64          `json:"sim_time_s"`
	Submitted       int              `json:"submitted"`
	Completed       int              `json:"completed"`
	Failed          int              `json:"failed"`
	Canceled        int              `json:"canceled"`
	Running         int              `json:"running"`
	Queued          int              `json:"queued"`
	PeakRunning     int              `json:"peak_running"`
	PlanCacheHits   int              `json:"plan_cache_hits"`
	DecompCacheHits int              `json:"decomp_cache_hits"`
	MeanGPUUtil     float64          `json:"mean_gpu_util"`
	Engines         []EngineStatJSON `json:"engines"`
}

// EngineStatJSON describes one warm serving engine.
type EngineStatJSON struct {
	Model      string `json:"model"`
	Capability string `json:"capability"`
	GPUs       int    `json:"gpus"`
	QueueDepth int    `json:"queue_depth"`
	Active     int    `json:"active"`
}

// PoolStats aggregates the shards for GET /v1/stats.
type PoolStats struct {
	Mode        string       `json:"mode"` // "shared" | "per-request"
	Shards      []ShardStats `json:"shards,omitempty"`
	Submitted   int          `json:"submitted"`
	Completed   int          `json:"completed"`
	Failed      int          `json:"failed"`
	Canceled    int          `json:"canceled"`
	Running     int          `json:"running"`
	Queued      int          `json:"queued"`
	EnginesUp   int          `json:"engines_up"`
	JobsTracked int          `json:"jobs_tracked"`
}

// Stats gathers a consistent per-shard view (each shard snapshot is taken on
// its own loop goroutine) and aggregates it.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	tracked := len(p.jobs)
	p.mu.Unlock()
	out := PoolStats{Mode: "shared", JobsTracked: tracked}
	if p.cfg.PerRequest {
		out.Mode = "per-request"
		out.Submitted = int(p.prSubmitted.Load())
		out.Completed = int(p.prCompleted.Load())
		out.Failed = int(p.prFailed.Load())
		return out
	}
	// Fan the snapshot closures out to every shard first, then collect:
	// each shard takes its snapshot on its own loop goroutine concurrently,
	// so stats latency is the slowest shard's round trip, not the sum.
	replies := make([]chan ShardStats, 0, len(p.shards))
	for _, sh := range p.shards {
		sh := sh
		reply := make(chan ShardStats, 1)
		if !sh.loop.Post(func() {
			st := sh.sched.Stats()
			now := sh.eng.Now().Seconds()
			ss := ShardStats{
				Shard:           sh.idx,
				SimTimeS:        now,
				Submitted:       st.Submitted,
				Completed:       st.Completed,
				Failed:          st.Failed,
				Canceled:        st.Canceled,
				Running:         st.Running,
				Queued:          st.Queued,
				PeakRunning:     st.PeakRunning,
				PlanCacheHits:   sh.rt.PlanCacheHits(),
				DecompCacheHits: sh.rt.DecompCacheHits(),
			}
			if now > 0 {
				ss.MeanGPUUtil = sh.cl.MeanGPUUtilOver(0, now)
			}
			mgr := sh.rt.Manager().Stats()
			for name, es := range mgr.Engines {
				ss.Engines = append(ss.Engines, EngineStatJSON{
					Model:      name,
					Capability: es.Capability,
					GPUs:       es.GPUs,
					QueueDepth: es.QueueDepth,
					Active:     es.Active,
				})
			}
			sort.Slice(ss.Engines, func(i, j int) bool {
				return ss.Engines[i].Model < ss.Engines[j].Model
			})
			reply <- ss
		}) {
			continue // shutting down: report what we have
		}
		replies = append(replies, reply)
	}
	for _, reply := range replies {
		ss := <-reply
		out.Shards = append(out.Shards, ss)
		out.Submitted += ss.Submitted
		out.Completed += ss.Completed
		out.Failed += ss.Failed
		out.Canceled += ss.Canceled
		out.Running += ss.Running
		out.Queued += ss.Queued
		out.EnginesUp += len(ss.Engines)
	}
	return out
}
