package api

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/profiles"
	"repro/internal/sim"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// Pool is the serving daemon's runtime layer: a set of long-lived simulated
// clusters ("shards"), each owned by one sim.Loop goroutine and fronted by a
// core.Scheduler. Tenants hash to shards, so every job a tenant submits lands
// in the same shared cluster and multiplexes its warm serving engines,
// plan/decomposition caches and worker pools — instead of provisioning a
// fresh testbed per HTTP request.
//
// HTTP handler goroutines never touch a shard's engine or runtime directly:
// submissions, cancels and stats reads are posted into the shard's loop and
// results come back through the mutex-guarded job registry, so the whole
// surface is race-free under concurrent requests.
//
// A Pool can also run in per-request mode (PoolConfig.PerRequest), the
// pre-daemon baseline: every job synchronously provisions a throwaway
// testbed, runs to completion and tears it down. It exists as the comparison
// arm for the serving experiment and benchmarks.
//
// Shard memory is bounded by tiered telemetry retention: a compaction tick
// riding each shard's loop advances the cluster's retention watermark to
// now − RetainSimSeconds (never past the oldest running job's start, so
// report finalization windows stay exact), collapsing older history into
// rollup buckets. If a shard's retained telemetry still exceeds
// MaxSeriesPoints — long-running jobs pinning the watermark, or an
// operator-chosen tight budget — the shard is recycled: a warm replacement
// is built and swapped in for new submissions while the old shard drains
// its in-flight jobs to completion in the background.
type Pool struct {
	cfg    PoolConfig
	shards []*shard // guarded by mu: recycling swaps entries

	// draining holds shards displaced by a recycle that are still running
	// their in-flight jobs down in the background. Stats fans out to them
	// too, so their cumulative counters never disappear from the totals:
	// each stays here until its loop exits and its final counters fold into
	// the retired atomics in one mu critical section. Guarded by mu.
	draining []*shard

	nextJob atomic.Uint64

	mu      sync.Mutex
	jobs    map[string]*jobRecord
	retired []string // terminal job ids, oldest first, for history eviction
	closed  bool

	// Pool-level lifecycle counters for shared mode, maintained by the
	// pool's own submit/settle path rather than summed from per-shard
	// schedulers: they stay monotonic and complete while a recycled shard
	// drains in the background (when its scheduler is in no shard list).
	shSubmitted atomic.Int64
	shCompleted atomic.Int64
	shFailed    atomic.Int64
	shCanceled  atomic.Int64

	// recycles counts shard recycles, incremented at swap time (the drain
	// completes in the background). drains joins those background drains so
	// Close can honor its everything-ran-to-completion contract.
	recycles atomic.Int64
	drains   sync.WaitGroup

	// Retired admission counters: when a recycled shard finishes draining,
	// its final plan-search/singleflight/conflict counts fold in here so the
	// pool totals stay monotonic across recycles (like the lifecycle
	// counters above) instead of resetting with the shard.
	retSearches     atomic.Int64
	retSingleflight atomic.Int64
	retConflicts    atomic.Int64
	// Retired reconfiguration counters, folded the same way.
	retReconfigs         atomic.Int64
	retReconfigWins      atomic.Int64
	retReconfigSkips     atomic.Int64
	retReconfigConflicts atomic.Int64
	// Retired key-interner counters, folded the same way so the pool's
	// scratch-reuse hit rate stays monotonic across recycles.
	retInternHits   atomic.Uint64
	retInternMisses atomic.Uint64
	// Retired scratch-pool (worker + LLM-task recycling) counters.
	retScratchHits   atomic.Uint64
	retScratchMisses atomic.Uint64
	// Retired event-engine counters: how many events each displaced shard's
	// sim engine fired, how its schedules split between the timer wheel and
	// the far-future overflow heap, and how many cancels were lazy
	// mark-dead. Folded after drain like the others so the pool's event
	// totals stay monotonic across recycles. retPeakPending is a running
	// max, not a sum: the deepest pending queue any shard generation saw.
	retEventsProcessed atomic.Uint64
	retWheelEvents     atomic.Uint64
	retOverflowEvents  atomic.Uint64
	retCancelsLazy     atomic.Uint64
	retPeakPending     atomic.Int64
	// Retired fault/recovery counters, folded the same way. BreakerOpen is
	// a live gauge and is not folded.
	retTaskRetries       atomic.Int64
	retRetriesExhausted  atomic.Int64
	retDeadlinesExceeded atomic.Int64
	retDegradations      atomic.Int64
	retStageTimeouts     atomic.Int64
	retFaultsInjected    atomic.Int64
	retBreakerTrips      atomic.Int64
	// Retired SLO/overload counters, folded the same way; OverloadActive is
	// a live gauge and is not folded. retTenantSLO accumulates displaced
	// shards' per-tenant SLO accounting (guarded by mu) so the tenant rows
	// in /v1/stats stay monotonic across recycles too.
	retSLOShed        atomic.Int64
	retSLOBudget      atomic.Int64
	retSLODegraded    atomic.Int64
	retSLOMet         atomic.Int64
	retSLOMissed      atomic.Int64
	retOverloadEnters atomic.Int64
	retOverloadExits  atomic.Int64
	retTenantSLO      map[string]core.TenantSLOStats

	// peakHints remembers each shard index's event-queue high-water mark,
	// recorded when a shard is recycled, so its replacement pre-sizes the
	// pending heap and skips warm-up growth copies. Guarded by mu.
	peakHints map[int]int

	// started anchors the uptime_s stats field (wall clock).
	started time.Time

	// per-request mode counters (atomics: submissions run on handler
	// goroutines, not on a shard loop).
	prSubmitted atomic.Int64
	prCompleted atomic.Int64
	prFailed    atomic.Int64
}

// PoolConfig sizes the pool.
type PoolConfig struct {
	// Shards is the number of independent runtime shards (default 2).
	Shards int
	// VMsPerShard sizes each shard's cluster in ND96amsr_A100_v4 VMs
	// (default 2, the paper's §4 testbed).
	VMsPerShard int
	// MaxConcurrentPerShard bounds jobs admitted concurrently into one
	// shard's runtime (default 4); excess queues in the shard's scheduler.
	MaxConcurrentPerShard int
	// JobHistoryLimit bounds retained terminal job records (default 4096);
	// the oldest are evicted so the registry cannot grow without bound.
	JobHistoryLimit int
	// RetainSimSeconds is each shard's telemetry retention window in
	// simulated seconds: the compaction tick keeps full-resolution series
	// only over roughly the last RetainSimSeconds of shard history (older
	// epochs collapse into rollup buckets), clamped so the watermark never
	// passes a running job's start. 0 selects the default (3600); negative
	// disables compaction (the pre-retention append-only behaviour).
	RetainSimSeconds float64
	// MaxSeriesPoints is a shard's retained-telemetry budget in change
	// points; a shard still exceeding it after compaction is recycled
	// (drain → rebuild → swap) without failing in-flight jobs. 0 selects
	// the default (1<<20, ~24 MiB of series data); negative disables
	// recycling.
	MaxSeriesPoints int
	// PlanWorkers sizes each shard's off-loop plan-search pool: admission's
	// configuration search runs on these workers against an immutable
	// cluster snapshot and commits optimistically on the shard loop, so
	// bursts plan in parallel instead of serializing on the loop goroutine.
	// 0 selects the default (GOMAXPROCS); negative disables off-loop search
	// (the serial inline-planning baseline).
	PlanWorkers int
	// Reconfig enables each shard's mid-flight reconfiguration controller:
	// when the shard's fleet churns (capacity generation moves) or its
	// cluster manager rebalances, running jobs' remaining stages are
	// re-planned and re-bound at stage boundaries if the new plan beats the
	// current one by ReconfigHysteresis. Off by default — disabled shards
	// behave bit-identically to the pre-reconfiguration daemon.
	Reconfig bool
	// ReconfigHysteresis is the minimum relative objective improvement
	// before a re-plan is adopted (0 selects the default 0.05).
	ReconfigHysteresis float64
	// RebalancePeriodS enables each shard's workflow-aware rebalancing loop
	// (engine grow/shrink from DAG lookahead) with the given period in
	// simulated seconds — the fleet-churn source reconfiguration reacts to.
	// 0 disables it (the pre-churn daemon behaviour).
	RebalancePeriodS float64
	// PerRequest switches the pool to the per-request-testbed baseline.
	PerRequest bool
	// FaultRate enables deterministic fault injection on each shard: a
	// seeded, replayable trace of engine crashes, worker losses, stage
	// stalls and transient call errors totalling FaultRate events per
	// simulated second (split evenly across the four kinds), applied by the
	// shard's tick as sim time advances. 0 disables injection (default);
	// disabled shards are bit-identical to the pre-fault daemon.
	FaultRate float64
	// FaultSeed seeds the per-shard fault traces (offset by shard index so
	// shards draw independent streams) and the recovery jitter streams.
	FaultSeed int64
	// MaxRetries enables failure recovery with this per-task attempt
	// budget: failed stages retry with capped exponential backoff on a
	// re-planned binding, repeated failures trip per-implementation
	// circuit breakers and degrade jobs to cheaper plans. 0 disables
	// recovery (a failed task is a terminal job error).
	MaxRetries int
	// JobDeadlineS fails any job still running after this many simulated
	// seconds with deadline_exceeded (0 = no deadline). Setting it alone
	// also enables recovery, with the default attempt budget.
	JobDeadlineS float64
	// SLO enables SLO-tiered serving on every shard scheduler: tenants
	// carry gold/silver/bronze classes, an overload controller watches
	// admission pressure against a watermark hysteresis band, degradable
	// tiers are admitted onto cheaper degraded plans while it is engaged,
	// and per-tenant queue bounds shed excess submissions with a typed
	// shed_overload error (HTTP 429 + Retry-After). Off by default —
	// disabled pools are bit-identical to the pre-SLO daemon.
	SLO bool
	// SLOTenantTiers maps tenants to SLO class names ("gold", "silver",
	// "bronze"); unmapped tenants take SLODefaultClass (default "silver").
	SLOTenantTiers  map[string]string
	SLODefaultClass string
	// SLOHighWatermark engages each shard's overload controller when
	// admission pressure — (running + queued) / MaxConcurrentPerShard —
	// reaches it (default 2.0); SLOLowWatermark disengages it again at or
	// below (default 1.0).
	SLOHighWatermark float64
	SLOLowWatermark  float64
	// SLOQueueBound > 0 overrides every class's per-tenant queue bound;
	// SLOBudgetUSD > 0 overrides every class's tenant cost budget.
	SLOQueueBound int
	SLOBudgetUSD  float64
	// JobIDNamespace, when non-empty, is spliced into minted job IDs
	// ("job-<ns>-%08d") so pools embedded as cluster nodes mint IDs that
	// cannot collide across nodes. Empty keeps the single-node "job-%08d"
	// format byte-identical.
	JobIDNamespace string
	// ProfileRegistry scopes the amortized profiling pass: cluster nodes
	// pass a per-node registry (warmed by replication on join) instead of
	// sharing the process-wide default. Nil uses the default registry.
	ProfileRegistry *profiles.Registry
}

// sloConfig assembles the core-layer SLO configuration from the pool knobs.
func (c PoolConfig) sloConfig() core.SLOConfig {
	return core.SLOConfig{
		TenantTiers:   c.SLOTenantTiers,
		DefaultClass:  c.SLODefaultClass,
		HighWatermark: c.SLOHighWatermark,
		LowWatermark:  c.SLOLowWatermark,
		QueueBound:    c.SLOQueueBound,
		BudgetUSD:     c.SLOBudgetUSD,
	}
}

// Retention defaults: an hour of simulated history at full resolution, and
// a ~24 MiB per-shard point budget that only a watermark-pinning workload
// can reach.
const (
	defaultRetainSimSeconds = 3600
	defaultMaxSeriesPoints  = 1 << 20
)

// Fault-injection trace parameters: a day of simulated horizon (far past any
// shard's realistic lifetime before recycling), a one-minute stall per
// stage-timeout event and an 8 s engine reload after a crash.
const (
	faultHorizonS     = 86400.0
	faultStallS       = 60.0
	faultCrashReloadS = 8.0
	maxJobAttemptLog  = 32
)

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.VMsPerShard <= 0 {
		c.VMsPerShard = 2
	}
	if c.MaxConcurrentPerShard <= 0 {
		c.MaxConcurrentPerShard = 4
	}
	if c.JobHistoryLimit <= 0 {
		c.JobHistoryLimit = 4096
	}
	if c.RetainSimSeconds == 0 {
		c.RetainSimSeconds = defaultRetainSimSeconds
	}
	if c.MaxSeriesPoints == 0 {
		c.MaxSeriesPoints = defaultMaxSeriesPoints
	}
	return c
}

// shard is one long-lived runtime plus the loop goroutine that owns it.
type shard struct {
	idx   int
	eng   *sim.Engine
	cl    *cluster.Cluster
	rt    *core.Runtime
	sched *core.Scheduler
	loop  *sim.Loop

	// Retention state, owned by the shard's loop goroutine (written only in
	// the tick): compactStride is how far the watermark must lag the target
	// before compaction runs (retention/4 — amortizes the O(points) copy),
	// droppedPoints counts change points compacted away, recycling latches
	// once a recycle has been requested.
	compactStride float64
	droppedPoints int
	recycling     bool

	// Fault replay state, also owned by the loop goroutine: the shard's
	// pre-generated fault trace and the cursor of the next event to apply.
	// The tick injects every event whose timestamp the simulation has
	// reached, so replay is deterministic in sim time regardless of
	// wall-clock batching.
	faults   []workload.FaultEvent
	faultIdx int
}

// close drains the shard's loop (plan searches in flight resolve first — Run
// waits on their holds — then queued and running jobs complete) and stops its
// plan-search workers. Blocks until both are down.
func (sh *shard) close() {
	sh.loop.Close()
	sh.sched.StopPlanSearch()
}

// errShuttingDown is returned once Close has been called.
var errShuttingDown = fmt.Errorf("api: pool is shutting down")

// NewPool provisions the shards and starts their loop goroutines.
func NewPool(cfg PoolConfig) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.SLO {
		if err := cfg.sloConfig().Validate(); err != nil {
			return nil, fmt.Errorf("api: %w", err)
		}
	}
	p := &Pool{cfg: cfg, jobs: map[string]*jobRecord{}, peakHints: map[int]int{}, started: time.Now()}
	if cfg.PerRequest {
		return p, nil
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := p.newShard(i)
		if err != nil {
			return nil, err
		}
		p.shards = append(p.shards, sh)
	}
	return p, nil
}

// newShard builds one warm runtime shard and starts its loop goroutine.
// Recycling builds replacement shards through the same path, so a recycled
// shard comes back identically provisioned (profiling is content-memoized,
// making the rebuild cheap).
func (p *Pool) newShard(idx int) (*shard, error) {
	cfg := p.cfg
	se := sim.NewEngine()
	if core.DisableAllocReuse {
		se.DisableEventSlab()
	}
	p.mu.Lock()
	hint := p.peakHints[idx]
	p.mu.Unlock()
	if hint > 0 {
		// Pre-size the pending heap from the predecessor shard's high-water
		// mark so the rebuilt engine skips warm-up growth copies.
		se.Reserve(hint)
	}
	cl := cluster.New(se, hardware.DefaultCatalog())
	for v := 0; v < cfg.VMsPerShard; v++ {
		cl.AddVM(fmt.Sprintf("s%d-vm%d", idx, v), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{
		Engine: se, Cluster: cl, Library: agents.DefaultLibrary(),
		RebalancePeriod: sim.Duration(cfg.RebalancePeriodS),
		ProfileRegistry: cfg.ProfileRegistry,
	})
	if err != nil {
		return nil, fmt.Errorf("api: provisioning shard %d: %w", idx, err)
	}
	sh := &shard{
		idx:   idx,
		eng:   se,
		cl:    cl,
		rt:    rt,
		sched: core.NewScheduler(se, rt, cfg.MaxConcurrentPerShard),
		loop:  sim.NewLoop(se),
	}
	if cfg.PlanWorkers >= 0 {
		// Off-loop admission: plan search runs on a worker pool against
		// immutable snapshots and commits on the loop (0 = GOMAXPROCS).
		sh.sched.EnablePlanSearch(sh.loop, cfg.PlanWorkers)
	}
	if cfg.Reconfig {
		// Mid-flight reconfiguration: fleet churn and rebalance passes
		// re-plan running jobs' remaining stages at stage boundaries.
		sh.sched.EnableReconfig(core.ReconfigConfig{Hysteresis: cfg.ReconfigHysteresis})
	}
	if cfg.MaxRetries > 0 || cfg.JobDeadlineS > 0 {
		// Failure recovery: retries with capped backoff on re-planned
		// bindings, per-implementation breakers, deadline enforcement.
		sh.sched.EnableRecovery(core.FaultPolicy{
			MaxAttempts:  cfg.MaxRetries,
			JobDeadlineS: cfg.JobDeadlineS,
			Seed:         cfg.FaultSeed,
		})
	}
	if cfg.SLO {
		// SLO tiers: per-tenant budgets and queue bounds, overload-driven
		// degraded admissions, shed with typed errors past the bound.
		sh.sched.EnableSLO(cfg.sloConfig())
	}
	if cfg.FaultRate > 0 {
		faults, err := workload.FaultTrace(workload.FaultSpec{
			EngineCrashRate:  cfg.FaultRate / 4,
			WorkerLossRate:   cfg.FaultRate / 4,
			StageTimeoutRate: cfg.FaultRate / 4,
			CallErrorRate:    cfg.FaultRate / 4,
			StallS:           faultStallS,
			CrashReloadS:     faultCrashReloadS,
			HorizonS:         faultHorizonS,
			Seed:             cfg.FaultSeed + int64(idx),
		})
		if err != nil {
			return nil, fmt.Errorf("api: fault trace for shard %d: %w", idx, err)
		}
		sh.faults = faults
	}
	if cfg.RetainSimSeconds >= 0 {
		sh.compactStride = cfg.RetainSimSeconds / 4
	}
	if cfg.RetainSimSeconds >= 0 || cfg.MaxSeriesPoints > 0 || len(sh.faults) > 0 {
		// The retention tick rides the loop (SetTick must precede Run): it
		// runs after each event batch, so it never interleaves with
		// simulation callbacks and needs no locks for shard state.
		sh.loop.SetTick(func() { p.shardTick(sh) })
	}
	go sh.loop.Run()
	return sh, nil
}

// shardTick is the background compaction tick: advance the retention
// watermark once it lags the target by a stride, then check the telemetry
// budget. Runs on the shard's loop goroutine after every event batch.
func (p *Pool) shardTick(sh *shard) {
	// Replay every fault event the simulation has reached. The tick runs at
	// a quiescent instant between event batches, so injection (which may
	// schedule reload/retry events) composes with the heap like any other
	// same-instant work; each event fires exactly once.
	for sh.faultIdx < len(sh.faults) && sh.faults[sh.faultIdx].AtS <= sh.eng.Now().Seconds() {
		sh.sched.Inject(sh.faults[sh.faultIdx])
		sh.faultIdx++
	}
	if p.cfg.RetainSimSeconds >= 0 {
		target := sh.eng.Now().Seconds() - p.cfg.RetainSimSeconds
		// Never compact past a running job's execution window: Finalize
		// integrates from the job's start, and a window behind the
		// watermark is a loud typed error.
		if min, ok := sh.sched.MinRunningStartS(); ok && min < target {
			target = min
		}
		if target-sh.cl.Watermark() >= sh.compactStride {
			sh.droppedPoints += sh.cl.AdvanceEpoch(target)
		}
	}
	if p.cfg.MaxSeriesPoints > 0 && !sh.recycling {
		if fp := sh.cl.TelemetryFootprint(); fp.Points > p.cfg.MaxSeriesPoints {
			sh.recycling = true
			// The Add happens on the loop goroutine, which Close joins
			// before waiting on drains — so no recycle can slip past a
			// completed Close.
			p.drains.Add(1)
			go func() {
				defer p.drains.Done()
				p.recycleShard(sh)
			}()
		}
	}
}

// shardCounters is a snapshot of one shard's cumulative scalar counters —
// everything that folds into the pool's retired totals when the shard is
// displaced by a recycle or torn down by Close. Every field is monotone on a
// live shard.
type shardCounters struct {
	planSearches      int64
	singleflightHits  int64
	planConflicts     int64
	reconfigs         int64
	reconfigWins      int64
	reconfigSkips     int64
	reconfigConflicts int64
	taskRetries       int64
	retriesExhausted  int64
	deadlinesExceeded int64
	degradations      int64
	stageTimeouts     int64
	faultsInjected    int64
	breakerTrips      int64
	sloShed           int64
	sloBudget         int64
	sloDegraded       int64
	sloMet            int64
	sloMissed         int64
	overloadEnters    int64
	overloadExits     int64
	internHits        uint64
	internMisses      uint64
	scratchHits       uint64
	scratchMisses     uint64
	events            uint64
	wheelEvents       uint64
	overflowEvents    uint64
	cancelsLazy       uint64
}

// readShardCounters snapshots sh's cumulative counters. The caller must be
// the shard's loop goroutine, or its sole remaining accessor after the loop
// has exited.
func readShardCounters(sh *shard) shardCounters {
	st := sh.sched.Stats()
	c := shardCounters{
		planSearches:      int64(st.PlanSearches),
		singleflightHits:  int64(st.SingleflightHits),
		planConflicts:     int64(st.PlanConflicts),
		reconfigs:         int64(st.Reconfigs),
		reconfigWins:      int64(st.ReconfigWins),
		reconfigSkips:     int64(st.ReconfigSkips),
		reconfigConflicts: int64(st.ReconfigConflicts),
		taskRetries:       int64(st.TaskRetries),
		retriesExhausted:  int64(st.RetriesExhausted),
		deadlinesExceeded: int64(st.DeadlinesExceeded),
		degradations:      int64(st.Degradations),
		stageTimeouts:     int64(st.StageTimeouts),
		faultsInjected:    int64(st.FaultsInjected),
		breakerTrips:      int64(st.BreakerTrips),
		sloShed:           int64(st.SLOShed),
		sloBudget:         int64(st.SLOBudgetExhausted),
		sloDegraded:       int64(st.SLODegradedAdmits),
		sloMet:            int64(st.SLOMet),
		sloMissed:         int64(st.SLOMissed),
		overloadEnters:    int64(st.OverloadEnters),
		overloadExits:     int64(st.OverloadExits),
		events:            sh.eng.Processed(),
		wheelEvents:       sh.eng.WheelEvents(),
		overflowEvents:    sh.eng.OverflowEvents(),
		cancelsLazy:       sh.eng.CancelsLazy(),
	}
	c.internHits, c.internMisses = sh.rt.KeyInternStats()
	c.scratchHits, c.scratchMisses = sh.rt.ScratchPoolStats()
	return c
}

// foldShardCounters adds a final counter snapshot into the retired totals.
// Callers fold inside the mu critical section that also removes the shard
// from the Stats fan-out (p.shards or p.draining), so a concurrent Stats
// snapshot sees the shard live or its counters retired — never neither.
func (p *Pool) foldShardCounters(c shardCounters) {
	p.retSearches.Add(c.planSearches)
	p.retSingleflight.Add(c.singleflightHits)
	p.retConflicts.Add(c.planConflicts)
	p.retReconfigs.Add(c.reconfigs)
	p.retReconfigWins.Add(c.reconfigWins)
	p.retReconfigSkips.Add(c.reconfigSkips)
	p.retReconfigConflicts.Add(c.reconfigConflicts)
	p.retTaskRetries.Add(c.taskRetries)
	p.retRetriesExhausted.Add(c.retriesExhausted)
	p.retDeadlinesExceeded.Add(c.deadlinesExceeded)
	p.retDegradations.Add(c.degradations)
	p.retStageTimeouts.Add(c.stageTimeouts)
	p.retFaultsInjected.Add(c.faultsInjected)
	p.retBreakerTrips.Add(c.breakerTrips)
	p.retSLOShed.Add(c.sloShed)
	p.retSLOBudget.Add(c.sloBudget)
	p.retSLODegraded.Add(c.sloDegraded)
	p.retSLOMet.Add(c.sloMet)
	p.retSLOMissed.Add(c.sloMissed)
	p.retOverloadEnters.Add(c.overloadEnters)
	p.retOverloadExits.Add(c.overloadExits)
	p.retInternHits.Add(c.internHits)
	p.retInternMisses.Add(c.internMisses)
	p.retScratchHits.Add(c.scratchHits)
	p.retScratchMisses.Add(c.scratchMisses)
	p.retEventsProcessed.Add(c.events)
	p.retWheelEvents.Add(c.wheelEvents)
	p.retOverflowEvents.Add(c.overflowEvents)
	p.retCancelsLazy.Add(c.cancelsLazy)
}

// foldShardTail folds the parts of a retired shard that are not scalar sums:
// the per-tenant SLO map and the peak-pending high-water mark. Called after
// the shard's loop has exited, by its sole remaining accessor.
func (p *Pool) foldShardTail(old *shard) {
	if tenants := old.sched.SLOTenants(); len(tenants) > 0 {
		p.mu.Lock()
		if p.retTenantSLO == nil {
			p.retTenantSLO = map[string]core.TenantSLOStats{}
		}
		for _, t := range tenants {
			agg := p.retTenantSLO[t.Tenant]
			agg.Tenant, agg.Class = t.Tenant, t.Class
			agg.Admitted += t.Admitted
			agg.Shed += t.Shed
			agg.BudgetExhausted += t.BudgetExhausted
			agg.DegradedAdmits += t.DegradedAdmits
			agg.SLOMet += t.SLOMet
			agg.SLOMissed += t.SLOMissed
			agg.CostSpentUSD += t.CostSpentUSD
			p.retTenantSLO[t.Tenant] = agg
		}
		p.mu.Unlock()
	}
	atomicMaxInt64(&p.retPeakPending, int64(old.eng.PeakPending()))
}

// removeDrainingLocked drops sh from the draining list. Caller holds mu.
func (p *Pool) removeDrainingLocked(sh *shard) {
	for i, cur := range p.draining {
		if cur == sh {
			p.draining = append(p.draining[:i], p.draining[i+1:]...)
			return
		}
	}
}

// recycleShard replaces a shard whose telemetry outgrew its budget: build a
// warm replacement, swap it in so new submissions land there, then drain
// the displaced shard — posts already accepted and every in-flight job run
// to completion (their records settle normally; cancels still reach the
// draining loop through the records' shard pointers).
func (p *Pool) recycleShard(old *shard) {
	// Read the displaced shard's event-queue high-water mark on its own loop
	// goroutine (the engine is loop-owned) so the replacement can pre-size
	// its pending heap from real history.
	reply := make(chan int, 1)
	if old.loop.Post(func() { reply <- old.eng.PeakPending() }) {
		hint := <-reply
		p.mu.Lock()
		p.peakHints[old.idx] = hint
		p.mu.Unlock()
	}
	fresh, err := p.newShard(old.idx)
	if err != nil {
		// Rebuild failed (same config that provisioned the pool, so this is
		// effectively unreachable); keep serving from the old shard and let
		// a later tick retry.
		old.loop.Post(func() { old.recycling = false })
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		fresh.close()
		return
	}
	p.shards[old.idx] = fresh
	p.draining = append(p.draining, old)
	p.recycles.Add(1)
	p.mu.Unlock()
	// Drain in the background: the displaced shard stays on p.draining, so
	// its cumulative counters remain visible to Stats while it winds down
	// and its jobs settle through the pool-level counters.
	old.close()
	// The loop goroutine has exited; this recycler goroutine is the shard's
	// sole remaining accessor, so reading its final counters is race-free.
	// The fold and the removal from the fan-out share one critical section,
	// keeping the pool totals monotonic through the hand-off.
	final := readShardCounters(old)
	p.mu.Lock()
	p.removeDrainingLocked(old)
	p.foldShardCounters(final)
	p.mu.Unlock()
	p.foldShardTail(old)
}

// atomicMaxInt64 raises a to at least v (recyclers can race each other).
func atomicMaxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Close drains every shard loop (in-flight and queued jobs run to completion)
// and stops accepting submissions. Safe to call more than once. Shards
// displaced by an in-progress recycle are drained by their recycler
// goroutine, which Close joins: setting closed first guarantees no further
// swaps land after the snapshot below, closing the live loops quiesces the
// ticks that could start new recycles, and the final Wait covers drains
// already in flight.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	shards := append([]*shard(nil), p.shards...)
	p.mu.Unlock()
	for _, sh := range shards {
		sh.close()
		// The loop has exited and no recycler owns this shard (recyclers
		// abort once closed is set), so this goroutine is its sole accessor.
		// Fold the final counters and drop the shard from the fan-out in one
		// critical section, mirroring the recycle hand-off: post-Close Stats
		// reports the true final totals instead of losing the live shards'
		// counters.
		final := readShardCounters(sh)
		p.mu.Lock()
		for i, cur := range p.shards {
			if cur == sh {
				p.shards = append(p.shards[:i], p.shards[i+1:]...)
				break
			}
		}
		p.foldShardCounters(final)
		p.mu.Unlock()
		p.foldShardTail(sh)
	}
	p.drains.Wait()
}

// Closed reports whether Close has begun: a closed (or draining) pool
// rejects new submissions. The router tier's health checks use this to
// steer traffic away from departing nodes.
func (p *Pool) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Done returns the completion channel of a registered job: it is closed when
// the job settles terminal. The second result is false for unknown (or
// already evicted) IDs. The router tier's drain path selects on these
// channels to wait out a departing node's in-flight jobs.
func (p *Pool) Done(id string) (<-chan struct{}, bool) {
	p.mu.Lock()
	rec, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return nil, false
	}
	return rec.done, true
}

// PerRequest reports whether the pool runs the baseline mode.
func (p *Pool) PerRequest() bool { return p.cfg.PerRequest }

// Shards returns the shard count (0 in per-request mode).
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor maps a tenant to its home shard. The modulo happens in uint32 so
// the index stays non-negative on 32-bit platforms. Callers must hold p.mu:
// recycling swaps slice entries.
func (p *Pool) shardFor(tenant string) *shard {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return p.shards[int(h.Sum32()%uint32(len(p.shards)))]
}

// submitExtras carries request options that are not scheduler options.
type submitExtras struct {
	// vms sizes the throwaway cluster in per-request mode.
	vms int
	// timeline includes the rendered execution timeline in the result.
	timeline bool
}

// formatJobID renders "job-%08d" (or "job-<ns>-%08d" under a namespace)
// without fmt's reflection and boxing — the ID is minted on every admission,
// so the Sprintf showed up in allocation profiles. IDs past eight digits
// widen naturally, matching Sprintf.
func formatJobID(ns string, n uint64) string {
	var b [12]byte
	copy(b[:], "job-00000000")
	i := len(b)
	for n > 0 && i > 4 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	digits := string(b[4:])
	if n > 0 {
		digits = strconv.FormatUint(n, 10) + digits
	}
	if ns != "" {
		return "job-" + ns + "-" + digits
	}
	return "job-" + digits
}

// Submit admits a job for a tenant and returns its registry record. In
// shared mode this is asynchronous: the record starts queued and settles when
// the shard completes the job. In per-request mode it blocks while a fresh
// testbed runs the job.
func (p *Pool) Submit(tenant string, job workflow.Job, opts core.SubmitOptions, extras submitExtras) (*jobRecord, error) {
	id := formatJobID(p.cfg.JobIDNamespace, p.nextJob.Add(1))
	if p.cfg.PerRequest {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errShuttingDown
		}
		p.mu.Unlock()
		return p.submitPerRequest(id, tenant, job, opts, extras)
	}

	// Engines stay warm across jobs in the shared runtime — the daemon owns
	// their lifecycle, and successive jobs multiplex them.
	opts.KeepEngines = true
	rec := &jobRecord{
		id:     id,
		tenant: tenant,
		status: core.JobQueued,
		done:   make(chan struct{}),
	}
	// With SLO tiers on, admission is synchronous: the handler needs the
	// typed shed/budget rejection to answer 429 while the client is still
	// on the wire, so the submit closure reports the admission outcome back
	// through a reply channel. With SLO off the channel stays nil and the
	// path is the untouched fire-and-forget one.
	var admitted chan struct{}
	var admitErr error
	if p.cfg.SLO {
		admitted = make(chan struct{})
	}
	// A recycle can swap the tenant's home shard between picking it and
	// posting (the displaced loop rejects posts once it starts draining), so
	// retry against the replacement; one retry suffices per concurrent
	// recycle, and the bound only guards against a pathological storm.
	for attempt := 0; ; attempt++ {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errShuttingDown
		}
		sh := p.shardFor(tenant)
		p.mu.Unlock()
		rec.sh = sh
		rec.shard = sh.idx
		posted := sh.loop.Post(func() {
			h, err := sh.sched.Submit(tenant, job, opts)
			if err != nil {
				// SLO shed/budget rejections land here; otherwise the
				// handler pre-validated and this is a safety net. Either
				// way the record settles terminal with the typed code, so
				// a shed job is immediately pollable and can never strand:
				// it was never enqueued.
				p.shFailed.Add(1)
				rec.settle(core.JobFailed, err.Error(), string(core.ErrorCodeOf(err)), nil, sh.eng.Now().Seconds())
				p.retire(rec)
				if admitted != nil {
					admitErr = err
					close(admitted)
				}
				return
			}
			rec.mu.Lock()
			rec.handle = h
			rec.submittedSimS = sh.eng.Now().Seconds()
			rec.mu.Unlock()
			// Stream the attempt history into the record so status polls
			// see retries while the job is still running.
			h.OnAttempt(rec.recordAttempt)
			// Status transitions push into the record, so HTTP status reads are
			// mutex-only and never round-trip through the shard loop.
			h.OnStart(func(h *core.Handle) {
				rec.mu.Lock()
				rec.status = core.JobRunning
				rec.queueDelayS = h.QueueDelayS()
				rec.mu.Unlock()
			})
			h.OnDone(func(h *core.Handle) {
				var resp *JobResponse
				errMsg := ""
				switch h.Status() {
				case core.JobDone:
					resp = jobResponseFrom(h.Execution(), extras.timeline)
					p.shCompleted.Add(1)
				case core.JobCanceled:
					p.shCanceled.Add(1)
					if h.Err() != nil {
						errMsg = h.Err().Error()
					}
				default:
					p.shFailed.Add(1)
					if h.Err() != nil {
						errMsg = h.Err().Error()
					}
				}
				rec.mu.Lock()
				rec.queueDelayS = h.QueueDelayS()
				rec.mu.Unlock()
				rec.settle(h.Status(), errMsg, string(core.ErrorCodeOf(h.Err())), resp, sh.eng.Now().Seconds())
				p.retire(rec)
			})
			if admitted != nil {
				close(admitted)
			}
		})
		if posted {
			p.shSubmitted.Add(1)
			break
		}
		if attempt >= 8 {
			return nil, errShuttingDown
		}
	}
	// Register only after the submission closure is enqueued: the shard
	// inbox is FIFO, so any later posted cancel observes the handle.
	p.mu.Lock()
	p.jobs[id] = rec
	p.mu.Unlock()
	if admitted != nil {
		<-admitted
		if admitErr != nil {
			// Shed or budget-rejected: the settled record is returned with
			// the typed error so the handler can render the job envelope
			// alongside the 429.
			return rec, admitErr
		}
	}
	return rec, nil
}

// SLOEnabled reports whether the pool runs with SLO tiers (shared mode
// only; the per-request baseline has no shared queue to protect).
func (p *Pool) SLOEnabled() bool { return p.cfg.SLO && !p.cfg.PerRequest }

// submitPerRequest is the baseline path: fresh testbed, synchronous run.
func (p *Pool) submitPerRequest(id, tenant string, job workflow.Job, opts core.SubmitOptions, extras submitExtras) (*jobRecord, error) {
	p.prSubmitted.Add(1)
	vms := extras.vms
	if vms <= 0 {
		vms = 2
	}
	rec := &jobRecord{
		id:     id,
		tenant: tenant,
		shard:  -1,
		done:   make(chan struct{}),
	}
	se := sim.NewEngine()
	if core.DisableAllocReuse {
		se.DisableEventSlab()
	}
	cl := cluster.New(se, hardware.DefaultCatalog())
	for i := 0; i < vms; i++ {
		cl.AddVM(fmt.Sprintf("vm%d", i), hardware.NDv4SKUName, false)
	}
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary(), ProfileRegistry: p.cfg.ProfileRegistry})
	if err != nil {
		return nil, err
	}
	ex, err := rt.Submit(job, opts)
	if err != nil {
		p.prFailed.Add(1)
		rec.settle(core.JobFailed, err.Error(), string(core.ErrorCodeOf(err)), nil, se.Now().Seconds())
		p.register(rec)
		return rec, nil
	}
	se.Run()
	if ex.Err() != nil {
		p.prFailed.Add(1)
		rec.settle(core.JobFailed, ex.Err().Error(), string(core.ErrorCodeOf(ex.Err())), nil, se.Now().Seconds())
	} else {
		p.prCompleted.Add(1)
		rec.settle(core.JobDone, "", "", jobResponseFrom(ex, extras.timeline), se.Now().Seconds())
	}
	p.register(rec)
	return rec, nil
}

func (p *Pool) register(rec *jobRecord) {
	p.mu.Lock()
	p.jobs[rec.id] = rec
	p.mu.Unlock()
	p.retire(rec)
}

// retire records a terminal job for history eviction.
func (p *Pool) retire(rec *jobRecord) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retired = append(p.retired, rec.id)
	for len(p.retired) > p.cfg.JobHistoryLimit {
		delete(p.jobs, p.retired[0])
		p.retired = p.retired[1:]
	}
}

// Get returns a snapshot of a job's state. Status transitions are pushed
// into the record by the owning shard (OnStart/OnDone), so this is a
// mutex-only read.
func (p *Pool) Get(id string) (JobState, bool) {
	p.mu.Lock()
	rec, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return JobState{}, false
	}
	return rec.snapshot(), true
}

// Cancel terminates a job (queued or running). It reports the post-cancel
// state, whether the cancel took effect, and whether the job exists.
func (p *Pool) Cancel(id string) (JobState, bool, bool) {
	p.mu.Lock()
	rec, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return JobState{}, false, false
	}
	if p.cfg.PerRequest {
		// Per-request jobs complete within their own request; nothing to do.
		return rec.snapshot(), false, true
	}
	// The record pins its owning shard directly: after a recycle the index
	// points at the replacement, but the job (and its handle) live on the
	// displaced shard until its drain completes.
	sh := rec.sh
	reply := make(chan bool, 1)
	if !sh.loop.Post(func() {
		rec.mu.Lock()
		h := rec.handle
		rec.mu.Unlock()
		reply <- h != nil && h.Cancel()
	}) {
		return rec.snapshot(), false, true
	}
	canceled := <-reply
	return rec.snapshot(), canceled, true
}

// JobState is a point-in-time view of one job.
type JobState struct {
	ID            string
	Tenant        string
	Shard         int
	Status        core.JobStatus
	QueueDelayS   float64
	SubmittedSimS float64
	FinishedSimS  float64
	Error         string
	// ErrorCode is the stable machine-readable failure class
	// (core.ErrorCode: retries_exhausted, deadline_exceeded, …); empty for
	// non-terminal and successful jobs.
	ErrorCode string
	// Attempts is the job's recorded task-failure history (bounded), live
	// while the job runs.
	Attempts []core.AttemptRecord
	Result   *JobResponse
}

// jobRecord is the registry entry behind a JobState.
type jobRecord struct {
	id     string
	tenant string
	// sh is the owning shard (nil in per-request mode), pinned at submit so
	// cancels keep reaching a shard displaced by recycling; shard is its
	// index at submit time (-1 in per-request mode), for display.
	sh    *shard
	shard int
	done  chan struct{}

	mu            sync.Mutex
	status        core.JobStatus
	queueDelayS   float64
	submittedSimS float64
	finishedSimS  float64
	errMsg        string
	errCode       string
	attempts      []core.AttemptRecord
	result        *JobResponse
	// handle is only touched on the owning shard's loop goroutine.
	handle *core.Handle
}

// Done closes when the job reaches a terminal state.
func (r *jobRecord) Done() <-chan struct{} { return r.done }

// ID returns the registry id.
func (r *jobRecord) ID() string { return r.id }

func (r *jobRecord) settle(st core.JobStatus, errMsg, errCode string, resp *JobResponse, simNowS float64) {
	r.mu.Lock()
	r.status = st
	r.errMsg = errMsg
	r.errCode = errCode
	r.result = resp
	r.finishedSimS = simNowS
	r.mu.Unlock()
	close(r.done)
}

// recordAttempt appends one task-failure record (bounded; pushed by the
// owning shard through Handle.OnAttempt).
func (r *jobRecord) recordAttempt(a core.AttemptRecord) {
	r.mu.Lock()
	if len(r.attempts) < maxJobAttemptLog {
		r.attempts = append(r.attempts, a)
	}
	r.mu.Unlock()
}

func (r *jobRecord) snapshot() JobState {
	r.mu.Lock()
	defer r.mu.Unlock()
	var attempts []core.AttemptRecord
	if len(r.attempts) > 0 {
		// Copy: the shard keeps appending while the job runs.
		attempts = append(attempts, r.attempts...)
	}
	return JobState{
		ID:            r.id,
		Tenant:        r.tenant,
		Shard:         r.shard,
		Status:        r.status,
		QueueDelayS:   r.queueDelayS,
		SubmittedSimS: r.submittedSimS,
		FinishedSimS:  r.finishedSimS,
		Error:         r.errMsg,
		ErrorCode:     r.errCode,
		Attempts:      attempts,
		Result:        r.result,
	}
}

// jobResponseFrom builds the result payload from a finished execution. It
// must run on the goroutine owning the execution's engine.
func jobResponseFrom(ex *core.Execution, timeline bool) *JobResponse {
	rep := ex.Report()
	resp := &JobResponse{
		Name:                 rep.Name,
		MakespanS:            rep.MakespanS,
		GPUEnergyWh:          rep.GPUEnergyWh,
		CPUEnergyWh:          rep.CPUEnergyWh,
		CostUSD:              rep.CostUSD,
		EstCostUSD:           ex.Plan().EstCostUSD,
		MeanGPUUtil:          rep.MeanGPUUtil,
		MeanCPUUtil:          rep.MeanCPUUtil,
		Quality:              rep.Quality,
		PlanningOverheadFrac: rep.PlanningOverheadFrac,
		TasksCompleted:       rep.TasksCompleted,
		Decisions:            rep.Decisions,
		Template:             ex.Decomposition().Template,
	}
	if timeline {
		resp.Timeline = rep.Timeline(72)
	}
	return resp
}

// ShardStats is one shard's slice of GET /v1/stats.
type ShardStats struct {
	Shard           int     `json:"shard"`
	SimTimeS        float64 `json:"sim_time_s"`
	Submitted       int     `json:"submitted"`
	Completed       int     `json:"completed"`
	Failed          int     `json:"failed"`
	Canceled        int     `json:"canceled"`
	Running         int     `json:"running"`
	Queued          int     `json:"queued"`
	PeakRunning     int     `json:"peak_running"`
	PlanCacheHits   int     `json:"plan_cache_hits"`
	DecompCacheHits int     `json:"decomp_cache_hits"`
	// Off-loop admission accounting: searches dispatched to the shard's
	// plan-search workers, submissions deduped onto an identical in-flight
	// search, admissions whose optimistic commit was invalidated by a
	// capacity-class change (re-planned inline), and the live in-flight
	// gauge. All zero when PlanWorkers is negative (serial admission).
	PlanWorkers        int `json:"plan_workers"`
	PlanSearches       int `json:"plan_searches"`
	SingleflightHits   int `json:"singleflight_hits"`
	PlanConflicts      int `json:"plan_conflicts"`
	PlanSearchInflight int `json:"plan_search_inflight"`
	// Fleet-churn observability: the shard cluster's state and capacity-class
	// generations (capacity_gen moving is exactly what triggers mid-flight
	// reconfiguration), plus the reconfiguration controller's counters —
	// running-job evaluations, adopted re-plans, kept-current-plan skips and
	// generation-drift conflicts. All four counters are zero with -reconfig
	// off.
	ClusterGen        uint64 `json:"cluster_gen"`
	CapacityGen       uint64 `json:"capacity_gen"`
	Reconfigs         int    `json:"reconfigs"`
	ReconfigWins      int    `json:"reconfig_wins"`
	ReconfigSkips     int    `json:"reconfig_skips"`
	ReconfigConflicts int    `json:"reconfig_conflicts"`
	// Fault/recovery observability: injected fault events, task retries,
	// jobs failed on the attempt budget or deadline, adopted degradation
	// re-plans, watchdog firings, circuit-breaker trips and the live count
	// of breakers not currently closed. All zero with faults and recovery
	// disabled.
	FaultsInjected    int `json:"faults_injected"`
	TaskRetries       int `json:"task_retries"`
	RetriesExhausted  int `json:"retries_exhausted"`
	DeadlinesExceeded int `json:"deadlines_exceeded"`
	Degradations      int `json:"degradations"`
	StageTimeouts     int `json:"stage_timeouts"`
	BreakerTrips      int `json:"breaker_trips"`
	BreakerOpen       int `json:"breaker_open"`
	// SLO/overload observability: submissions shed on the tenant queue
	// bound or rejected on the tenant budget, admissions launched on
	// degraded cheaper plans, completions classified against the tier
	// latency target, the overload controller's transition counters and
	// its live engaged gauge, plus per-tenant accounting rows. All
	// zero/empty with SLO tiers disabled.
	SLOShed            int             `json:"slo_shed"`
	SLOBudgetExhausted int             `json:"slo_budget_exhausted"`
	SLODegradedAdmits  int             `json:"slo_degraded_admits"`
	SLOMet             int             `json:"slo_met"`
	SLOMissed          int             `json:"slo_missed"`
	OverloadEnters     int             `json:"overload_enters"`
	OverloadExits      int             `json:"overload_exits"`
	OverloadActive     bool            `json:"overload_active"`
	TenantSLO          []TenantSLOJSON `json:"tenant_slo,omitempty"`
	MeanGPUUtil        float64         `json:"mean_gpu_util"`
	// Allocation-reuse observability: the shard runtime's key-interner
	// hit/miss counters (every cache key or report label served from the
	// canonical table instead of a fresh allocation) and the sim engine's
	// pending-queue high-water mark (the Reserve hint a recycled
	// replacement pre-sizes from).
	KeyInternHits   uint64 `json:"key_intern_hits"`
	KeyInternMisses uint64 `json:"key_intern_misses"`
	// Scratch-pool counters: acquisitions served by recycling a retired
	// worker or LLM-task barrier (hits) vs fresh allocations (misses).
	ScratchPoolHits   uint64 `json:"scratch_pool_hits"`
	ScratchPoolMisses uint64 `json:"scratch_pool_misses"`
	PeakPending       int    `json:"peak_pending"`
	// Event-engine observability: events the shard's sim engine has fired,
	// how its schedules routed (near-future timer-wheel buckets vs the
	// far-future overflow heap), and cancels handled as O(1) lazy
	// mark-dead. All zero on the heap escape hatch except events_processed.
	EventsProcessed uint64 `json:"events_processed"`
	WheelEvents     uint64 `json:"wheel_events"`
	OverflowEvents  uint64 `json:"overflow_events"`
	CancelsLazy     uint64 `json:"cancels_lazy"`
	// Telemetry retention accounting: live change points and their bytes
	// retained by the shard's cluster, the rollup buckets summarizing
	// compacted epochs, the retention watermark and epoch count, and the
	// points dropped by compaction so far.
	TelemetryPoints int              `json:"telemetry_points"`
	TelemetryBytes  int              `json:"telemetry_bytes"`
	RollupBuckets   int              `json:"rollup_buckets"`
	WatermarkS      float64          `json:"watermark_s"`
	Epoch           int              `json:"epoch"`
	CompactedPoints int              `json:"compacted_points"`
	Engines         []EngineStatJSON `json:"engines"`
}

// TenantSLOJSON is one tenant's SLO accounting row in GET /v1/stats.
type TenantSLOJSON struct {
	Tenant          string `json:"tenant"`
	Class           string `json:"class"`
	Admitted        int    `json:"admitted"`
	DegradedAdmits  int    `json:"degraded_admits"`
	Shed            int    `json:"shed"`
	BudgetExhausted int    `json:"budget_exhausted"`
	SLOMet          int    `json:"slo_met"`
	SLOMissed       int    `json:"slo_missed"`
	// Attainment is SLOMet / (SLOMet + SLOMissed); 0 when the tier's
	// latency target is untracked or nothing completed yet.
	Attainment   float64 `json:"attainment"`
	CostSpentUSD float64 `json:"cost_spent_usd"`
}

// tenantSLORow converts core accounting to the wire row (attainment filled).
func tenantSLORow(t core.TenantSLOStats) TenantSLOJSON {
	row := TenantSLOJSON{
		Tenant:          t.Tenant,
		Class:           t.Class,
		Admitted:        t.Admitted,
		DegradedAdmits:  t.DegradedAdmits,
		Shed:            t.Shed,
		BudgetExhausted: t.BudgetExhausted,
		SLOMet:          t.SLOMet,
		SLOMissed:       t.SLOMissed,
		CostSpentUSD:    t.CostSpentUSD,
	}
	if n := t.SLOMet + t.SLOMissed; n > 0 {
		row.Attainment = float64(t.SLOMet) / float64(n)
	}
	return row
}

// EngineStatJSON describes one warm serving engine.
type EngineStatJSON struct {
	Model      string `json:"model"`
	Capability string `json:"capability"`
	GPUs       int    `json:"gpus"`
	QueueDepth int    `json:"queue_depth"`
	Active     int    `json:"active"`
}

// PoolStats aggregates the shards for GET /v1/stats.
type PoolStats struct {
	Mode        string       `json:"mode"` // "shared" | "per-request"
	Shards      []ShardStats `json:"shards,omitempty"`
	Submitted   int          `json:"submitted"`
	Completed   int          `json:"completed"`
	Failed      int          `json:"failed"`
	Canceled    int          `json:"canceled"`
	Running     int          `json:"running"`
	Queued      int          `json:"queued"`
	EnginesUp   int          `json:"engines_up"`
	JobsTracked int          `json:"jobs_tracked"`
	// TelemetryPoints/TelemetryBytes total the live shards' retained
	// telemetry; Recycles counts shards replaced after exceeding
	// MaxSeriesPoints (incremented at swap; the displaced shard drains in
	// the background). The pool-level lifecycle counters above are
	// maintained by the pool's own submit/settle path, so they are
	// monotonic and include jobs served by recycled shards even while one
	// is still draining; Running/Queued (and the per-shard rows) are
	// live-shard gauges and can transiently exclude a draining shard's
	// in-flight jobs.
	TelemetryPoints int `json:"telemetry_points"`
	TelemetryBytes  int `json:"telemetry_bytes"`
	Recycles        int `json:"recycles"`
	// Off-loop admission totals: live shards plus drained recycled shards
	// (their final counts fold into pool atomics at drain completion, so
	// these stay monotonic across recycles; a shard mid-drain is briefly
	// invisible, like the Running/Queued gauges). PlanSearchInflight is a
	// live-shard gauge.
	PlanSearches       int `json:"plan_searches"`
	SingleflightHits   int `json:"singleflight_hits"`
	PlanConflicts      int `json:"plan_conflicts"`
	PlanSearchInflight int `json:"plan_search_inflight"`
	// Reconfiguration totals, folded across recycled shards like the
	// admission counters above.
	Reconfigs         int `json:"reconfigs"`
	ReconfigWins      int `json:"reconfig_wins"`
	ReconfigSkips     int `json:"reconfig_skips"`
	ReconfigConflicts int `json:"reconfig_conflicts"`
	// Fault/recovery totals, folded the same way; BreakerOpen is a
	// live-shard gauge.
	FaultsInjected    int `json:"faults_injected"`
	TaskRetries       int `json:"task_retries"`
	RetriesExhausted  int `json:"retries_exhausted"`
	DeadlinesExceeded int `json:"deadlines_exceeded"`
	Degradations      int `json:"degradations"`
	StageTimeouts     int `json:"stage_timeouts"`
	BreakerTrips      int `json:"breaker_trips"`
	BreakerOpen       int `json:"breaker_open"`
	// SLO/overload totals, folded across recycled shards like the fault
	// counters above, so shed/degrade accounting and the per-tenant rows
	// stay monotonic while shards churn. OverloadActive is a live-shard
	// gauge: true when any live shard's controller is engaged.
	SLOShed            int             `json:"slo_shed"`
	SLOBudgetExhausted int             `json:"slo_budget_exhausted"`
	SLODegradedAdmits  int             `json:"slo_degraded_admits"`
	SLOMet             int             `json:"slo_met"`
	SLOMissed          int             `json:"slo_missed"`
	OverloadEnters     int             `json:"overload_enters"`
	OverloadExits      int             `json:"overload_exits"`
	OverloadActive     bool            `json:"overload_active"`
	TenantSLO          []TenantSLOJSON `json:"tenant_slo,omitempty"`
	// Key-interner totals, folded across recycled shards like the other
	// counters, so hit rate stays monotonic while shards churn.
	KeyInternHits   uint64 `json:"key_intern_hits"`
	KeyInternMisses uint64 `json:"key_intern_misses"`
	// Scratch-pool totals, also folded across recycles: how often the
	// serving hot path reused pooled per-task scratch instead of
	// allocating fresh.
	ScratchPoolHits   uint64 `json:"scratch_pool_hits"`
	ScratchPoolMisses uint64 `json:"scratch_pool_misses"`
	// Event-engine totals, folded across recycles like the counters above:
	// events fired by every shard generation's sim engine, schedule routing
	// (timer-wheel buckets vs overflow heap), and lazy cancels. PeakPending
	// is the deepest pending event queue any shard generation reached — a
	// max across live shards and retired generations, not a sum.
	EventsProcessed uint64 `json:"events_processed"`
	WheelEvents     uint64 `json:"wheel_events"`
	OverflowEvents  uint64 `json:"overflow_events"`
	CancelsLazy     uint64 `json:"cancels_lazy"`
	PeakPending     int    `json:"peak_pending"`
	// Memory is the process's live heap health (see MemoryStats).
	Memory MemoryStats `json:"memory"`
	// UptimeS is the daemon pool's wall-clock age in seconds.
	UptimeS float64 `json:"uptime_s"`
}

// MemoryStats is the process-wide memory-health slice of GET /v1/stats,
// read from runtime.ReadMemStats at stats time: live heap bytes and objects,
// completed GC cycles, and the 95th-percentile GC pause over the runtime's
// recent-pause ring (up to the last 256 cycles).
type MemoryStats struct {
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapObjects    uint64  `json:"heap_objects"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseP95Us   float64 `json:"gc_pause_p95_us"`
}

// readMemoryStats snapshots the Go heap for the stats endpoint.
func readMemoryStats() MemoryStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := MemoryStats{
		HeapAllocBytes: ms.HeapAlloc,
		HeapObjects:    ms.HeapObjects,
		NumGC:          ms.NumGC,
	}
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	if n > 0 {
		pauses := make([]uint64, n)
		copy(pauses, ms.PauseNs[:n])
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		// Nearest-rank p95 over the retained cycles.
		idx := (n*95 + 99) / 100
		if idx > 0 {
			idx--
		}
		out.GCPauseP95Us = float64(pauses[idx]) / 1e3
	}
	return out
}

// Stats gathers a consistent per-shard view (each shard snapshot is taken on
// its own loop goroutine) and aggregates it.
func (p *Pool) Stats() PoolStats {
	for {
		if out, ok := p.statsOnce(); ok {
			return out
		}
		// A snapshotted shard's loop exited between the snapshot and the
		// fan-out: its counters are mid-fold into the retired totals (by its
		// recycler, or by Close). Re-snapshot — the folded state is complete
		// and the exited shard is off the fan-out lists — so the counters
		// reported here never transiently regress.
		time.Sleep(50 * time.Microsecond)
	}
}

// statsOnce takes one snapshot attempt; ok is false if a shard's loop exited
// mid-fan-out and the caller should retry.
func (p *Pool) statsOnce() (PoolStats, bool) {
	out := PoolStats{Mode: "shared", UptimeS: time.Since(p.started).Seconds()}
	out.Memory = readMemoryStats()
	if p.cfg.PerRequest {
		p.mu.Lock()
		out.JobsTracked = len(p.jobs)
		p.mu.Unlock()
		out.Mode = "per-request"
		out.Submitted = int(p.prSubmitted.Load())
		out.Completed = int(p.prCompleted.Load())
		out.Failed = int(p.prFailed.Load())
		return out, true
	}
	// The shard-list snapshot and the retired-counter reads share one
	// critical section: recycle and close fold a shard's final counters into
	// the retired atomics inside the same section that removes it from these
	// lists, so this snapshot counts every shard exactly once.
	p.mu.Lock()
	out.JobsTracked = len(p.jobs)
	shards := append([]*shard(nil), p.shards...)
	draining := append([]*shard(nil), p.draining...)
	tenantAgg := make(map[string]TenantSLOJSON, len(p.retTenantSLO))
	for name, t := range p.retTenantSLO {
		tenantAgg[name] = tenantSLORow(t)
	}
	out.Recycles = int(p.recycles.Load())
	out.PlanSearches = int(p.retSearches.Load())
	out.SingleflightHits = int(p.retSingleflight.Load())
	out.PlanConflicts = int(p.retConflicts.Load())
	out.Reconfigs = int(p.retReconfigs.Load())
	out.ReconfigWins = int(p.retReconfigWins.Load())
	out.ReconfigSkips = int(p.retReconfigSkips.Load())
	out.ReconfigConflicts = int(p.retReconfigConflicts.Load())
	out.FaultsInjected = int(p.retFaultsInjected.Load())
	out.TaskRetries = int(p.retTaskRetries.Load())
	out.RetriesExhausted = int(p.retRetriesExhausted.Load())
	out.DeadlinesExceeded = int(p.retDeadlinesExceeded.Load())
	out.Degradations = int(p.retDegradations.Load())
	out.StageTimeouts = int(p.retStageTimeouts.Load())
	out.BreakerTrips = int(p.retBreakerTrips.Load())
	out.SLOShed = int(p.retSLOShed.Load())
	out.SLOBudgetExhausted = int(p.retSLOBudget.Load())
	out.SLODegradedAdmits = int(p.retSLODegraded.Load())
	out.SLOMet = int(p.retSLOMet.Load())
	out.SLOMissed = int(p.retSLOMissed.Load())
	out.OverloadEnters = int(p.retOverloadEnters.Load())
	out.OverloadExits = int(p.retOverloadExits.Load())
	out.KeyInternHits = p.retInternHits.Load()
	out.KeyInternMisses = p.retInternMisses.Load()
	out.ScratchPoolHits = p.retScratchHits.Load()
	out.ScratchPoolMisses = p.retScratchMisses.Load()
	out.EventsProcessed = p.retEventsProcessed.Load()
	out.WheelEvents = p.retWheelEvents.Load()
	out.OverflowEvents = p.retOverflowEvents.Load()
	out.CancelsLazy = p.retCancelsLazy.Load()
	out.PeakPending = int(p.retPeakPending.Load())
	out.Submitted = int(p.shSubmitted.Load())
	out.Completed = int(p.shCompleted.Load())
	out.Failed = int(p.shFailed.Load())
	out.Canceled = int(p.shCanceled.Load())
	p.mu.Unlock()
	// Fan the snapshot closures out to every shard first, then collect:
	// each shard takes its snapshot on its own loop goroutine concurrently,
	// so stats latency is the slowest shard's round trip, not the sum.
	// Draining shards contribute their cumulative counters (but no shard
	// row: their capacity has already been replaced and their telemetry
	// footprint is winding down, not serving).
	drainReplies := make([]chan shardCounters, 0, len(draining))
	for _, sh := range draining {
		sh := sh
		reply := make(chan shardCounters, 1)
		if !sh.loop.Post(func() { reply <- readShardCounters(sh) }) {
			return out, false
		}
		drainReplies = append(drainReplies, reply)
	}
	replies := make([]chan ShardStats, 0, len(shards))
	for _, sh := range shards {
		sh := sh
		reply := make(chan ShardStats, 1)
		if !sh.loop.Post(func() {
			st := sh.sched.Stats()
			now := sh.eng.Now().Seconds()
			ss := ShardStats{
				Shard:              sh.idx,
				SimTimeS:           now,
				Submitted:          st.Submitted,
				Completed:          st.Completed,
				Failed:             st.Failed,
				Canceled:           st.Canceled,
				Running:            st.Running,
				Queued:             st.Queued,
				PeakRunning:        st.PeakRunning,
				PlanCacheHits:      sh.rt.PlanCacheHits(),
				DecompCacheHits:    sh.rt.DecompCacheHits(),
				PlanWorkers:        sh.sched.PlanWorkers(),
				PlanSearches:       st.PlanSearches,
				SingleflightHits:   st.SingleflightHits,
				PlanConflicts:      st.PlanConflicts,
				PlanSearchInflight: st.PlanSearchInflight,
				ClusterGen:         sh.cl.Gen(),
				CapacityGen:        sh.cl.CapacityGen(),
				Reconfigs:          st.Reconfigs,
				ReconfigWins:       st.ReconfigWins,
				ReconfigSkips:      st.ReconfigSkips,
				ReconfigConflicts:  st.ReconfigConflicts,
				FaultsInjected:     st.FaultsInjected,
				TaskRetries:        st.TaskRetries,
				RetriesExhausted:   st.RetriesExhausted,
				DeadlinesExceeded:  st.DeadlinesExceeded,
				Degradations:       st.Degradations,
				StageTimeouts:      st.StageTimeouts,
				BreakerTrips:       st.BreakerTrips,
				BreakerOpen:        st.BreakerOpen,
				SLOShed:            st.SLOShed,
				SLOBudgetExhausted: st.SLOBudgetExhausted,
				SLODegradedAdmits:  st.SLODegradedAdmits,
				SLOMet:             st.SLOMet,
				SLOMissed:          st.SLOMissed,
				OverloadEnters:     st.OverloadEnters,
				OverloadExits:      st.OverloadExits,
				OverloadActive:     st.OverloadActive,
				PeakPending:        sh.eng.PeakPending(),
				EventsProcessed:    uint64(sh.eng.Processed()),
				WheelEvents:        sh.eng.WheelEvents(),
				OverflowEvents:     sh.eng.OverflowEvents(),
				CancelsLazy:        sh.eng.CancelsLazy(),
			}
			ss.KeyInternHits, ss.KeyInternMisses = sh.rt.KeyInternStats()
			ss.ScratchPoolHits, ss.ScratchPoolMisses = sh.rt.ScratchPoolStats()
			if now > 0 {
				// Full-history mean: epochs behind the watermark come from
				// the aggregate's rollup buckets.
				ss.MeanGPUUtil = sh.cl.MeanGPUUtilOver(0, now)
			}
			fp := sh.cl.TelemetryFootprint()
			ss.TelemetryPoints = fp.Points
			ss.TelemetryBytes = fp.Bytes
			ss.RollupBuckets = fp.RollupBuckets
			ss.WatermarkS = sh.cl.Watermark()
			ss.Epoch = sh.cl.Epoch()
			ss.CompactedPoints = sh.droppedPoints
			for _, t := range sh.sched.SLOTenants() {
				ss.TenantSLO = append(ss.TenantSLO, tenantSLORow(t))
			}
			mgr := sh.rt.Manager().Stats()
			for name, es := range mgr.Engines {
				ss.Engines = append(ss.Engines, EngineStatJSON{
					Model:      name,
					Capability: es.Capability,
					GPUs:       es.GPUs,
					QueueDepth: es.QueueDepth,
					Active:     es.Active,
				})
			}
			sort.Slice(ss.Engines, func(i, j int) bool {
				return ss.Engines[i].Model < ss.Engines[j].Model
			})
			reply <- ss
		}) {
			return out, false
		}
		replies = append(replies, reply)
	}
	for _, reply := range drainReplies {
		c := <-reply
		out.PlanSearches += int(c.planSearches)
		out.SingleflightHits += int(c.singleflightHits)
		out.PlanConflicts += int(c.planConflicts)
		out.Reconfigs += int(c.reconfigs)
		out.ReconfigWins += int(c.reconfigWins)
		out.ReconfigSkips += int(c.reconfigSkips)
		out.ReconfigConflicts += int(c.reconfigConflicts)
		out.FaultsInjected += int(c.faultsInjected)
		out.TaskRetries += int(c.taskRetries)
		out.RetriesExhausted += int(c.retriesExhausted)
		out.DeadlinesExceeded += int(c.deadlinesExceeded)
		out.Degradations += int(c.degradations)
		out.StageTimeouts += int(c.stageTimeouts)
		out.BreakerTrips += int(c.breakerTrips)
		out.SLOShed += int(c.sloShed)
		out.SLOBudgetExhausted += int(c.sloBudget)
		out.SLODegradedAdmits += int(c.sloDegraded)
		out.SLOMet += int(c.sloMet)
		out.SLOMissed += int(c.sloMissed)
		out.OverloadEnters += int(c.overloadEnters)
		out.OverloadExits += int(c.overloadExits)
		out.KeyInternHits += c.internHits
		out.KeyInternMisses += c.internMisses
		out.ScratchPoolHits += c.scratchHits
		out.ScratchPoolMisses += c.scratchMisses
		out.EventsProcessed += c.events
		out.WheelEvents += c.wheelEvents
		out.OverflowEvents += c.overflowEvents
		out.CancelsLazy += c.cancelsLazy
	}
	for _, reply := range replies {
		ss := <-reply
		out.Shards = append(out.Shards, ss)
		out.Running += ss.Running
		out.Queued += ss.Queued
		out.EnginesUp += len(ss.Engines)
		out.TelemetryPoints += ss.TelemetryPoints
		out.TelemetryBytes += ss.TelemetryBytes
		out.PlanSearches += ss.PlanSearches
		out.SingleflightHits += ss.SingleflightHits
		out.PlanConflicts += ss.PlanConflicts
		out.PlanSearchInflight += ss.PlanSearchInflight
		out.Reconfigs += ss.Reconfigs
		out.ReconfigWins += ss.ReconfigWins
		out.ReconfigSkips += ss.ReconfigSkips
		out.ReconfigConflicts += ss.ReconfigConflicts
		out.FaultsInjected += ss.FaultsInjected
		out.TaskRetries += ss.TaskRetries
		out.RetriesExhausted += ss.RetriesExhausted
		out.DeadlinesExceeded += ss.DeadlinesExceeded
		out.Degradations += ss.Degradations
		out.StageTimeouts += ss.StageTimeouts
		out.BreakerTrips += ss.BreakerTrips
		out.BreakerOpen += ss.BreakerOpen
		out.SLOShed += ss.SLOShed
		out.SLOBudgetExhausted += ss.SLOBudgetExhausted
		out.SLODegradedAdmits += ss.SLODegradedAdmits
		out.SLOMet += ss.SLOMet
		out.SLOMissed += ss.SLOMissed
		out.OverloadEnters += ss.OverloadEnters
		out.OverloadExits += ss.OverloadExits
		out.OverloadActive = out.OverloadActive || ss.OverloadActive
		for _, row := range ss.TenantSLO {
			agg := tenantAgg[row.Tenant]
			agg.Tenant, agg.Class = row.Tenant, row.Class
			agg.Admitted += row.Admitted
			agg.DegradedAdmits += row.DegradedAdmits
			agg.Shed += row.Shed
			agg.BudgetExhausted += row.BudgetExhausted
			agg.SLOMet += row.SLOMet
			agg.SLOMissed += row.SLOMissed
			agg.CostSpentUSD += row.CostSpentUSD
			tenantAgg[row.Tenant] = agg
		}
		out.KeyInternHits += ss.KeyInternHits
		out.KeyInternMisses += ss.KeyInternMisses
		out.ScratchPoolHits += ss.ScratchPoolHits
		out.ScratchPoolMisses += ss.ScratchPoolMisses
		out.EventsProcessed += ss.EventsProcessed
		out.WheelEvents += ss.WheelEvents
		out.OverflowEvents += ss.OverflowEvents
		out.CancelsLazy += ss.CancelsLazy
		out.PeakPending = max(out.PeakPending, ss.PeakPending)
	}
	for _, row := range tenantAgg {
		// Recompute attainment over the merged counts: per-source rows
		// carry independent ratios that do not sum.
		row.Attainment = 0
		if n := row.SLOMet + row.SLOMissed; n > 0 {
			row.Attainment = float64(row.SLOMet) / float64(n)
		}
		out.TenantSLO = append(out.TenantSLO, row)
	}
	sort.Slice(out.TenantSLO, func(i, j int) bool {
		return out.TenantSLO[i].Tenant < out.TenantSLO[j].Tenant
	})
	return out, true
}
