package api

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestStatsExposeChurnObservability verifies the fleet-churn surface of
// GET /v1/stats: pool uptime, per-shard cluster/capacity generations (the
// reconfiguration trigger), and the reconfiguration counters — all present
// in the JSON body by name, so operators can watch churn from outside.
func TestStatsExposeChurnObservability(t *testing.T) {
	srv := server(t, PoolConfig{Shards: 1, Reconfig: true, RebalancePeriodS: 30})
	resp, st := postJob(t, srv, videoJobJSON(`"tenant": "alice", "wait": true,`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status = %d (%+v)", resp.StatusCode, st)
	}
	raw, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	var buf strings.Builder
	var stats PoolStats
	if err := json.NewDecoder(io.TeeReader(raw.Body, &buf)).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, field := range []string{
		`"uptime_s"`, `"cluster_gen"`, `"capacity_gen"`,
		`"reconfigs"`, `"reconfig_wins"`, `"reconfig_skips"`, `"reconfig_conflicts"`,
	} {
		if !strings.Contains(body, field) {
			t.Errorf("stats body missing %s", field)
		}
	}
	if stats.UptimeS <= 0 {
		t.Fatalf("uptime_s = %v", stats.UptimeS)
	}
	sh := stats.Shards[0]
	// Provisioning alone moved the capacity class (one bump per AddVM), and
	// the job's allocations moved the state generation past it.
	if sh.CapacityGen == 0 || sh.ClusterGen < sh.CapacityGen {
		t.Fatalf("generations not exposed: cluster=%d capacity=%d", sh.ClusterGen, sh.CapacityGen)
	}
	// A single job on a static fleet gives the controller nothing to do —
	// but the counters must be present and consistent.
	if sh.Reconfigs != sh.ReconfigWins+sh.ReconfigSkips+sh.ReconfigConflicts {
		t.Fatalf("reconfig accounting leaks: %+v", sh)
	}
}
