package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSubmissionsShareRuntimePool fires parallel POST /v1/jobs plus
// status polls and stats reads against one shared runtime pool. Run with
// -race (CI does): it asserts both data-race freedom across the HTTP surface,
// the shard loops and the job registry, and consistency of the final reports
// and counters.
func TestConcurrentSubmissionsShareRuntimePool(t *testing.T) {
	s, err := NewServer(PoolConfig{Shards: 2, MaxConcurrentPerShard: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	tenants := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	const jobsPerTenant = 3

	// Jobs within a tenant are structurally identical, so the shard's
	// decomposition/plan caches must serve repeats.
	newsfeedBody := func(tenant string, _ int) string {
		return fmt.Sprintf(`{
			"tenant": %q,
			"description": "Generate social media newsfeed for %s",
			"constraint": "MIN_LATENCY",
			"inputs": [{"name": %q, "kind": "user-profile"},
			           {"name": "cats", "kind": "topic"}]
		}`, tenant, tenant, tenant)
	}

	var (
		mu      sync.Mutex
		results []JobStatusResponse
	)
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		for i := 0; i < jobsPerTenant; i++ {
			wg.Add(1)
			go func(tenant string, i int) {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(newsfeedBody(tenant, i)))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("%s/%d: POST = %d (%+v)", tenant, i, resp.StatusCode, st)
					return
				}
				// Poll with interleaved stats reads to stress the registry
				// and the shard loops from many goroutines at once.
				for {
					code, cur := getJob(t, srv, st.ID)
					if code != http.StatusOK {
						t.Errorf("%s/%d: GET = %d", tenant, i, code)
						return
					}
					if cur.Status == "done" || cur.Status == "failed" || cur.Status == "canceled" {
						mu.Lock()
						results = append(results, cur)
						mu.Unlock()
						return
					}
					if resp, err := http.Get(srv.URL + "/v1/stats"); err == nil {
						resp.Body.Close()
					}
				}
			}(tenant, i)
		}
	}
	wg.Wait()

	total := len(tenants) * jobsPerTenant
	if len(results) != total {
		t.Fatalf("settled %d of %d jobs", len(results), total)
	}
	byTenant := map[string]int{}
	for _, r := range results {
		if r.Status != "done" {
			t.Errorf("job %s (%s): status %s err %q", r.ID, r.Tenant, r.Status, r.Error)
			continue
		}
		if r.Result == nil || r.Result.TasksCompleted != 4 || r.Result.MakespanS <= 0 {
			t.Errorf("job %s: inconsistent report %+v", r.ID, r.Result)
		}
		byTenant[r.Tenant]++
	}
	for _, tenant := range tenants {
		if byTenant[tenant] != jobsPerTenant {
			t.Errorf("tenant %s completed %d of %d", tenant, byTenant[tenant], jobsPerTenant)
		}
	}

	// Counters must reconcile exactly once the system is quiescent.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats PoolStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != total || stats.Completed != total {
		t.Fatalf("stats = %+v, want %d submitted+completed", stats, total)
	}
	if stats.Running != 0 || stats.Queued != 0 {
		t.Fatalf("stats show residual work: %+v", stats)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("shards = %d", len(stats.Shards))
	}
	// Repeat submissions must reuse admission work, through either cache: a
	// repeat that arrives after the first decomposition landed hits the
	// decomp cache, while one that arrives during it coalesces through the
	// plan-search singleflight instead — which path each repeat takes is a
	// scheduling race, but every repeat must take one of them.
	reuse := 0
	for _, sh := range stats.Shards {
		reuse += sh.DecompCacheHits + sh.SingleflightHits
	}
	if reuse == 0 {
		t.Error("no admission reuse (decomp cache or singleflight) across concurrent submissions")
	}
}

// TestConcurrentSubmitCancelRecycleWithPlanSearch races the full off-loop
// admission surface under -race: structurally-distinct submissions (every one
// dispatches a real plan search to the shard's worker pool) racing
// cancellations that can land while the search is still in flight, on a pool
// whose telemetry budget is small enough that shards recycle underneath both.
// Every job must settle as done or canceled — never failed, never stranded —
// and the pool-level counters must reconcile across the recycles.
func TestConcurrentSubmitCancelRecycleWithPlanSearch(t *testing.T) {
	s, err := NewServer(PoolConfig{
		Shards:                2,
		MaxConcurrentPerShard: 2,
		RetainSimSeconds:      -1, // compaction off: force budget recycles
		MaxSeriesPoints:       64, // below even one busy job's footprint
		PlanWorkers:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	distinctBody := func(tenant string, c, i int) string {
		// Distinct description, topic fan-out and quality floor per
		// submission: no plan-cache or singleflight hit can absorb it, so
		// each one exercises dispatch → off-loop search → optimistic commit.
		return fmt.Sprintf(`{
			"tenant": %q,
			"description": "Generate social media newsfeed variant %d-%d",
			"constraint": "MIN_LATENCY",
			"min_quality": %.9f,
			"inputs": [{"name": %q, "kind": "user-profile"},
			           {"name": "t%d", "kind": "topic", "attrs": {"queries": %d}}]
		}`, tenant, c, i, 0.05+float64(c*100+i)*1e-9, tenant, i, 2+i%3)
	}

	const clients, perClient = 6, 5
	var (
		mu       sync.Mutex
		done     int
		canceled int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(distinctBody(tenant, c, i)))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("%s/%d: POST = %d (%+v)", tenant, i, resp.StatusCode, st)
					return
				}
				if i%2 == 0 {
					// Cancel immediately: depending on the race this lands
					// while the plan search is in flight (queued), mid-run, or
					// after completion (409) — all must leave consistent state.
					req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
						t.Errorf("%s/%d: DELETE = %d", tenant, i, resp.StatusCode)
						return
					}
				}
				for settled := false; !settled; {
					code, cur := getJob(t, srv, st.ID)
					if code != http.StatusOK {
						t.Errorf("%s/%d: GET = %d", tenant, i, code)
						return
					}
					switch cur.Status {
					case "done":
						mu.Lock()
						done++
						mu.Unlock()
						settled = true
					case "canceled":
						mu.Lock()
						canceled++
						mu.Unlock()
						settled = true
					case "failed":
						t.Errorf("%s/%d: failed: %s", tenant, i, cur.Error)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	total := clients * perClient
	if done+canceled != total {
		t.Fatalf("settled %d done + %d canceled of %d", done, canceled, total)
	}
	stats := fetchStats(t, srv)
	if stats.Submitted != total {
		t.Fatalf("submitted = %d, want %d", stats.Submitted, total)
	}
	if stats.Completed+stats.Canceled != total || stats.Failed != 0 {
		t.Fatalf("counters do not reconcile: %+v (client view: %d done, %d canceled)",
			stats, done, canceled)
	}
	if stats.Completed != done || stats.Canceled != canceled {
		t.Fatalf("pool counters %d/%d disagree with client view %d/%d",
			stats.Completed, stats.Canceled, done, canceled)
	}
	if stats.Running != 0 || stats.Queued != 0 || stats.PlanSearchInflight != 0 {
		t.Fatalf("residual work after quiescence: %+v", stats)
	}
}

// TestConcurrentSubmitCancelRecycleWithFaults is the drain-during-retry race:
// fault injection keeps stages failing into backoff while the tiny telemetry
// budget recycles shards underneath them and clients race cancels on top, all
// under -race in CI. A shard drain (recycle or Close) must join cleanly with
// retries mid-backoff — the pending retry events fire during the drain and
// run to a terminal state, so every job settles as done, canceled or failed
// (failures are legitimate here: the trace can exhaust a task's budget) and
// nothing strands or double-settles.
func TestConcurrentSubmitCancelRecycleWithFaults(t *testing.T) {
	s, err := NewServer(PoolConfig{
		Shards:                2,
		MaxConcurrentPerShard: 2,
		RetainSimSeconds:      -1, // compaction off: force budget recycles
		MaxSeriesPoints:       64, // below even one busy job's footprint
		PlanWorkers:           4,
		FaultRate:             0.8, // one fault per 1.25 simulated seconds
		FaultSeed:             11,
		MaxRetries:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	if !s.Pool().shards[0].sched.RecoveryEnabled() {
		t.Fatal("recovery not enabled by MaxRetries")
	}

	distinctBody := func(tenant string, c, i int) string {
		return fmt.Sprintf(`{
			"tenant": %q,
			"description": "Generate social media newsfeed variant %d-%d",
			"constraint": "MIN_LATENCY",
			"min_quality": %.9f,
			"inputs": [{"name": %q, "kind": "user-profile"},
			           {"name": "t%d", "kind": "topic", "attrs": {"queries": %d}}]
		}`, tenant, c, i, 0.05+float64(c*100+i)*1e-9, tenant, i, 2+i%3)
	}

	const clients, perClient = 6, 5
	var (
		mu       sync.Mutex
		done     int
		canceled int
		failed   int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(distinctBody(tenant, c, i)))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("%s/%d: POST = %d (%+v)", tenant, i, resp.StatusCode, st)
					return
				}
				if i%3 == 0 {
					// Race a cancel against retries mid-backoff: the cancel
					// must reap the pending retry events, not leak them into
					// the drain.
					req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
						t.Errorf("%s/%d: DELETE = %d", tenant, i, resp.StatusCode)
						return
					}
				}
				for settled := false; !settled; {
					code, cur := getJob(t, srv, st.ID)
					if code != http.StatusOK {
						t.Errorf("%s/%d: GET = %d", tenant, i, code)
						return
					}
					switch cur.Status {
					case "done":
						mu.Lock()
						done++
						mu.Unlock()
						settled = true
					case "canceled":
						mu.Lock()
						canceled++
						mu.Unlock()
						settled = true
					case "failed":
						// A terminal failure must carry a stable code.
						if cur.ErrorCode == "" {
							t.Errorf("%s/%d: failed without error_code: %q", tenant, i, cur.Error)
						}
						mu.Lock()
						failed++
						mu.Unlock()
						settled = true
					}
				}
			}
		}(c)
	}
	wg.Wait()

	total := clients * perClient
	if done+canceled+failed != total {
		t.Fatalf("settled %d done + %d canceled + %d failed of %d", done, canceled, failed, total)
	}
	stats := fetchStats(t, srv)
	if stats.Submitted != total {
		t.Fatalf("submitted = %d, want %d", stats.Submitted, total)
	}
	if stats.Completed != done || stats.Canceled != canceled || stats.Failed != failed {
		t.Fatalf("pool counters %d/%d/%d disagree with client view %d/%d/%d",
			stats.Completed, stats.Canceled, stats.Failed, done, canceled, failed)
	}
	if stats.Running != 0 || stats.Queued != 0 || stats.PlanSearchInflight != 0 {
		t.Fatalf("residual work after quiescence: %+v", stats)
	}
	if stats.FaultsInjected == 0 {
		t.Fatal("fault trace never landed: the race has no faults to race")
	}
}
