package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSubmissionsShareRuntimePool fires parallel POST /v1/jobs plus
// status polls and stats reads against one shared runtime pool. Run with
// -race (CI does): it asserts both data-race freedom across the HTTP surface,
// the shard loops and the job registry, and consistency of the final reports
// and counters.
func TestConcurrentSubmissionsShareRuntimePool(t *testing.T) {
	s, err := NewServer(PoolConfig{Shards: 2, MaxConcurrentPerShard: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	tenants := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	const jobsPerTenant = 3

	// Jobs within a tenant are structurally identical, so the shard's
	// decomposition/plan caches must serve repeats.
	newsfeedBody := func(tenant string, _ int) string {
		return fmt.Sprintf(`{
			"tenant": %q,
			"description": "Generate social media newsfeed for %s",
			"constraint": "MIN_LATENCY",
			"inputs": [{"name": %q, "kind": "user-profile"},
			           {"name": "cats", "kind": "topic"}]
		}`, tenant, tenant, tenant)
	}

	var (
		mu      sync.Mutex
		results []JobStatusResponse
	)
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		for i := 0; i < jobsPerTenant; i++ {
			wg.Add(1)
			go func(tenant string, i int) {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
					strings.NewReader(newsfeedBody(tenant, i)))
				if err != nil {
					t.Error(err)
					return
				}
				var st JobStatusResponse
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("%s/%d: POST = %d (%+v)", tenant, i, resp.StatusCode, st)
					return
				}
				// Poll with interleaved stats reads to stress the registry
				// and the shard loops from many goroutines at once.
				for {
					code, cur := getJob(t, srv, st.ID)
					if code != http.StatusOK {
						t.Errorf("%s/%d: GET = %d", tenant, i, code)
						return
					}
					if cur.Status == "done" || cur.Status == "failed" || cur.Status == "canceled" {
						mu.Lock()
						results = append(results, cur)
						mu.Unlock()
						return
					}
					if resp, err := http.Get(srv.URL + "/v1/stats"); err == nil {
						resp.Body.Close()
					}
				}
			}(tenant, i)
		}
	}
	wg.Wait()

	total := len(tenants) * jobsPerTenant
	if len(results) != total {
		t.Fatalf("settled %d of %d jobs", len(results), total)
	}
	byTenant := map[string]int{}
	for _, r := range results {
		if r.Status != "done" {
			t.Errorf("job %s (%s): status %s err %q", r.ID, r.Tenant, r.Status, r.Error)
			continue
		}
		if r.Result == nil || r.Result.TasksCompleted != 4 || r.Result.MakespanS <= 0 {
			t.Errorf("job %s: inconsistent report %+v", r.ID, r.Result)
		}
		byTenant[r.Tenant]++
	}
	for _, tenant := range tenants {
		if byTenant[tenant] != jobsPerTenant {
			t.Errorf("tenant %s completed %d of %d", tenant, byTenant[tenant], jobsPerTenant)
		}
	}

	// Counters must reconcile exactly once the system is quiescent.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats PoolStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != total || stats.Completed != total {
		t.Fatalf("stats = %+v, want %d submitted+completed", stats, total)
	}
	if stats.Running != 0 || stats.Queued != 0 {
		t.Fatalf("stats show residual work: %+v", stats)
	}
	if len(stats.Shards) != 2 {
		t.Fatalf("shards = %d", len(stats.Shards))
	}
	decompHits := 0
	for _, sh := range stats.Shards {
		decompHits += sh.DecompCacheHits
	}
	if decompHits == 0 {
		t.Error("no decomposition reuse across concurrent submissions")
	}
}
