package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestStatsExposeEventEngineCounters: GET /v1/stats surfaces the sim
// engine's event accounting per shard and pool-wide — events fired, the
// timer-wheel vs overflow-heap routing split, lazy cancels, and the
// pending-queue high-water mark. Decodes raw JSON so the wire field names
// are part of the contract.
func TestStatsExposeEventEngineCounters(t *testing.T) {
	s, err := NewServer(PoolConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	mustServe(t, srv, waitBody("tenant-engine"))

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type engineCounters struct {
		EventsProcessed *uint64 `json:"events_processed"`
		WheelEvents     *uint64 `json:"wheel_events"`
		OverflowEvents  *uint64 `json:"overflow_events"`
		CancelsLazy     *uint64 `json:"cancels_lazy"`
		PeakPending     *int    `json:"peak_pending"`
	}
	var raw struct {
		engineCounters
		Shards []engineCounters `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	check := func(where string, c engineCounters) {
		t.Helper()
		if c.EventsProcessed == nil || c.WheelEvents == nil ||
			c.OverflowEvents == nil || c.CancelsLazy == nil || c.PeakPending == nil {
			t.Fatalf("%s: event-engine counters missing from wire format: %+v", where, c)
		}
		if *c.EventsProcessed == 0 {
			t.Fatalf("%s: events_processed = 0 after a served job", where)
		}
		if *c.WheelEvents == 0 {
			t.Fatalf("%s: wheel_events = 0 — schedules never routed through the wheel", where)
		}
		if *c.PeakPending == 0 {
			t.Fatalf("%s: peak_pending = 0 after a served job", where)
		}
	}
	if len(raw.Shards) != 1 {
		t.Fatalf("expected 1 shard row, got %d", len(raw.Shards))
	}
	check("shard", raw.Shards[0])
	check("pool", raw.engineCounters)
}

// TestEventCountersMonotonicAcrossRecycles: the event-engine totals are
// folded into the pool when a shard is recycled (and peak_pending is kept
// as a running max), so repeated samples while shards churn must never go
// backwards even though each replacement shard starts its engine at zero.
func TestEventCountersMonotonicAcrossRecycles(t *testing.T) {
	s, err := NewServer(PoolConfig{
		Shards:           1,
		RetainSimSeconds: -1,
		MaxSeriesPoints:  64, // every busy shard overruns: recycles guaranteed
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() { srv.Close(); s.Close() })

	var lastProcessed, lastWheel uint64
	var lastPeak int
	for wave := 0; wave < 6; wave++ {
		mustServe(t, srv, waitBody(fmt.Sprintf("tenant-%d", wave)))
		st := fetchStats(t, srv)
		if st.EventsProcessed < lastProcessed || st.WheelEvents < lastWheel || st.PeakPending < lastPeak {
			t.Fatalf("wave %d: event counters went backwards: processed %d->%d wheel %d->%d peak %d->%d",
				wave, lastProcessed, st.EventsProcessed, lastWheel, st.WheelEvents,
				lastPeak, st.PeakPending)
		}
		lastProcessed, lastWheel, lastPeak = st.EventsProcessed, st.WheelEvents, st.PeakPending
	}
	st := fetchStats(t, srv)
	if st.Recycles == 0 {
		t.Fatalf("workload never recycled a shard; monotonicity across recycles untested: %+v", st)
	}
	if st.EventsProcessed == 0 || st.WheelEvents == 0 {
		t.Fatalf("no event-engine activity recorded: %+v", st)
	}
}
