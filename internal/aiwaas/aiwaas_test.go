package aiwaas

import (
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func service(t *testing.T, maxConcurrent int) (*sim.Engine, *Service) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	return se, New(se, rt, maxConcurrent)
}

func smallVideoJob() workflow.Job {
	return workflow.Job{
		Description: "List objects shown in the videos",
		Inputs:      []workflow.Input{workflow.VideoInput("a.mov", 120, 30, 24)},
		Constraint:  workflow.MinCost,
		MinQuality:  0.9,
	}
}

func newsfeed() workflow.Job {
	return workflow.Job{
		Description: "Generate social media newsfeed for Alice",
		Inputs: []workflow.Input{
			{Name: "alice", Kind: workflow.InputUser},
			{Name: "cats", Kind: workflow.InputTopic},
		},
		Constraint: workflow.MinLatency,
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	se, s := service(t, 2)
	tk, err := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Status() != StatusQueued {
		t.Fatalf("status = %v before pump", tk.Status())
	}
	se.Run()
	if tk.Status() != StatusDone {
		t.Fatalf("status = %v, err=%v", tk.Status(), tk.Err())
	}
	if tk.Report() == nil || tk.Report().MakespanS <= 0 {
		t.Fatal("no report")
	}
	u := s.Usage()
	if len(u) != 1 || u[0].Completed != 1 || u[0].TotalBillUSD <= 0 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestConcurrencyLimitQueues(t *testing.T) {
	se, s := service(t, 1)
	t1, _ := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	t2, _ := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	se.RunUntil(1)
	if t1.Status() != StatusRunning {
		t.Fatalf("t1 = %v, want running", t1.Status())
	}
	if t2.Status() != StatusQueued {
		t.Fatalf("t2 = %v, want queued (limit 1)", t2.Status())
	}
	if s.QueueDepth() != 1 || s.Running() != 1 {
		t.Fatalf("queue=%d running=%d", s.QueueDepth(), s.Running())
	}
	se.Run()
	if t2.Status() != StatusDone {
		t.Fatalf("t2 = %v after drain, err=%v", t2.Status(), t2.Err())
	}
	if t2.QueueDelayS() <= 0 {
		t.Fatal("queued ticket shows no queue delay")
	}
}

func TestFairShareAcrossTenants(t *testing.T) {
	se, s := service(t, 1)
	// Alice floods; Bob submits one job after. Fair share must run Bob's
	// job before Alice's remaining backlog.
	a1, _ := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	a2, _ := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	a3, _ := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	b1, _ := s.Submit("bob", newsfeed(), core.SubmitOptions{RelaxFloor: true})

	var order []string
	for _, tk := range []*Ticket{a1, a2, a3, b1} {
		tk := tk
		tk.OnDone(func(*Ticket) { order = append(order, tk.Tenant) })
	}
	se.Run()
	if len(order) != 4 {
		t.Fatalf("completed %d of 4", len(order))
	}
	// a1 runs first (admitted immediately); bob must be next.
	if order[0] != "alice" || order[1] != "bob" {
		t.Fatalf("completion order = %v, want alice,bob,alice,alice", order)
	}
}

func TestUsageMetering(t *testing.T) {
	se, s := service(t, 4)
	s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	s.Submit("alice", newsfeed(), core.SubmitOptions{RelaxFloor: true})
	s.Submit("bob", newsfeed(), core.SubmitOptions{RelaxFloor: true})
	se.Run()
	usage := s.Usage()
	if len(usage) != 2 {
		t.Fatalf("tenants = %d", len(usage))
	}
	alice, bob := usage[0], usage[1]
	if alice.Tenant != "alice" || bob.Tenant != "bob" {
		t.Fatalf("sorted order wrong: %v", usage)
	}
	if alice.Submitted != 2 || alice.Completed != 2 {
		t.Fatalf("alice usage %+v", alice)
	}
	if alice.TotalBillUSD <= bob.TotalBillUSD {
		t.Fatal("alice (video+feed) should owe more than bob (feed only)")
	}
	if alice.TotalLatencyS <= 0 || alice.TotalEnergyWh <= 0 {
		t.Fatalf("metering incomplete: %+v", alice)
	}
}

func TestBadSubmissions(t *testing.T) {
	_, s := service(t, 1)
	if _, err := s.Submit("", smallVideoJob(), core.SubmitOptions{}); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if _, err := s.Submit("alice", workflow.Job{}, core.SubmitOptions{}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestFailedJobMarksTicket(t *testing.T) {
	se, s := service(t, 1)
	// A job the planner cannot decompose fails at start time (after
	// admission), surfacing on the ticket rather than panicking the pump.
	bad := workflow.Job{
		Description: "Do mysterious things",
		Inputs:      []workflow.Input{{Name: "x", Kind: workflow.InputText}},
		Constraint:  workflow.MinCost,
	}
	tk, err := s.Submit("alice", bad, core.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if tk.Status() != StatusFailed || tk.Err() == nil {
		t.Fatalf("status = %v err = %v, want failed", tk.Status(), tk.Err())
	}
	u := s.Usage()[0]
	if u.Failed != 1 || u.Completed != 0 {
		t.Fatalf("usage %+v", u)
	}
	// The service keeps admitting after a failure.
	ok, _ := s.Submit("alice", newsfeed(), core.SubmitOptions{RelaxFloor: true})
	se.Run()
	if ok.Status() != StatusDone {
		t.Fatalf("follow-up job = %v", ok.Status())
	}
}

func TestOnDoneAfterCompletionFiresImmediately(t *testing.T) {
	se, s := service(t, 1)
	tk, _ := s.Submit("alice", newsfeed(), core.SubmitOptions{RelaxFloor: true})
	se.Run()
	fired := false
	tk.OnDone(func(*Ticket) { fired = true })
	if !fired {
		t.Fatal("OnDone on completed ticket did not fire")
	}
}

func TestCancelQueuedTicketMetersAsCanceled(t *testing.T) {
	se, s := service(t, 1)
	t1, _ := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	t2, _ := s.Submit("alice", smallVideoJob(), core.SubmitOptions{RelaxFloor: true})
	se.RunUntil(1)
	if !t2.Cancel() {
		t.Fatal("queued ticket not cancelable")
	}
	if t2.Status() != StatusCanceled {
		t.Fatalf("t2 = %v, want canceled", t2.Status())
	}
	se.Run()
	if t1.Status() != StatusDone {
		t.Fatalf("t1 = %v after drain", t1.Status())
	}
	u := s.Usage()[0]
	if u.Canceled != 1 || u.Completed != 1 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusQueued: "queued", StatusRunning: "running",
		StatusDone: "done", StatusFailed: "failed",
		StatusCanceled: "canceled", Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
