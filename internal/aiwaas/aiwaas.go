// Package aiwaas implements the paper's §5 "AI Workflows-as-a-Service"
// vision: a multi-tenant front end over the Murakkab runtime, analogous to
// FaaS. Tenants submit declarative jobs; admission (bounded concurrency with
// fair-share ordering across tenants) is delegated to the core scheduler —
// the scheduler/executor split — while this layer keeps serving engines warm
// between jobs and meters per-tenant usage (jobs, estimated spend, energy,
// latency) — "developers focus solely on application logic, without needing
// to manage model or resource details".
package aiwaas

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Status is a ticket's lifecycle state.
type Status int

// Ticket states.
const (
	StatusQueued Status = iota
	StatusRunning
	StatusDone
	StatusFailed
	StatusCanceled
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Ticket tracks one submitted job through the service. It is a tenant-facing
// view over the core scheduler's job handle.
type Ticket struct {
	ID     int
	Tenant string
	Job    workflow.Job
	Opts   core.SubmitOptions

	h *core.Handle
}

// Status returns the current state.
func (t *Ticket) Status() Status {
	switch t.h.Status() {
	case core.JobQueued:
		return StatusQueued
	case core.JobRunning:
		return StatusRunning
	case core.JobDone:
		return StatusDone
	case core.JobCanceled:
		return StatusCanceled
	default:
		return StatusFailed
	}
}

// Err returns the terminal error for failed tickets.
func (t *Ticket) Err() error { return t.h.Err() }

// Report returns the execution report once done.
func (t *Ticket) Report() *report.Report { return t.h.Report() }

// QueueDelayS is time spent waiting for admission.
func (t *Ticket) QueueDelayS() float64 { return t.h.QueueDelayS() }

// Cancel terminates the ticket's job (queued or running); it reports whether
// the job was still cancelable.
func (t *Ticket) Cancel() bool { return t.h.Cancel() }

// OnDone registers a completion callback (fires for done, failed and
// canceled).
func (t *Ticket) OnDone(fn func(*Ticket)) {
	t.h.OnDone(func(*core.Handle) { fn(t) })
}

// TenantUsage is the §5 metering record for one tenant.
type TenantUsage struct {
	Tenant        string
	Submitted     int
	Completed     int
	Failed        int
	Canceled      int
	TotalBillUSD  float64
	TotalEnergyWh float64
	TotalLatencyS float64
	TotalQueueS   float64
}

// Service is the AIWaaS front end.
type Service struct {
	sched *core.Scheduler

	nextID int
	usage  map[string]*TenantUsage
}

// New creates a service over a runtime with the given admission concurrency.
func New(se *sim.Engine, rt *core.Runtime, maxConcurrent int) *Service {
	return &Service{
		sched: core.NewScheduler(se, rt, maxConcurrent),
		usage: map[string]*TenantUsage{},
	}
}

// Scheduler exposes the admission layer (for stats).
func (s *Service) Scheduler() *core.Scheduler { return s.sched }

// Submit enqueues a job for a tenant. Validation errors return immediately;
// planning/execution errors surface on the ticket.
func (s *Service) Submit(tenant string, job workflow.Job, opts core.SubmitOptions) (*Ticket, error) {
	// Engines stay warm across jobs: the service owns their lifecycle.
	opts.KeepEngines = true
	h, err := s.sched.Submit(tenant, job, opts)
	if err != nil {
		return nil, err
	}
	s.nextID++
	t := &Ticket{
		ID:     s.nextID,
		Tenant: tenant,
		Job:    job,
		Opts:   opts,
		h:      h,
	}
	s.tenantUsage(tenant).Submitted++
	// Metering registers first, so usage is settled before any tenant
	// callbacks observe the terminal state.
	h.OnDone(func(h *core.Handle) { s.meter(t, h) })
	return t, nil
}

func (s *Service) tenantUsage(tenant string) *TenantUsage {
	u, ok := s.usage[tenant]
	if !ok {
		u = &TenantUsage{Tenant: tenant}
		s.usage[tenant] = u
	}
	return u
}

func (s *Service) meter(t *Ticket, h *core.Handle) {
	u := s.tenantUsage(t.Tenant)
	u.TotalQueueS += h.QueueDelayS()
	switch h.Status() {
	case core.JobCanceled:
		u.Canceled++
	case core.JobFailed:
		u.Failed++
	case core.JobDone:
		u.Completed++
		// Billing uses the optimizer's per-decision resource-seconds
		// estimates (cloud-style metering of what the job committed), not
		// the whole-cluster rental, which is shared across tenants.
		u.TotalBillUSD += h.Execution().Plan().EstCostUSD
		if rep := h.Report(); rep != nil {
			u.TotalEnergyWh += rep.GPUEnergyWh
			u.TotalLatencyS += rep.MakespanS
		}
	}
}

// QueueDepth returns queued (unadmitted) tickets.
func (s *Service) QueueDepth() int { return s.sched.QueueDepth() }

// Running returns currently-admitted jobs.
func (s *Service) Running() int { return s.sched.Running() }

// Usage returns per-tenant usage records, sorted by tenant.
func (s *Service) Usage() []TenantUsage {
	out := make([]TenantUsage, 0, len(s.usage))
	for _, u := range s.usage {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
