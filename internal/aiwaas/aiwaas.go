// Package aiwaas implements the paper's §5 "AI Workflows-as-a-Service"
// vision: a multi-tenant front end over the Murakkab runtime, analogous to
// FaaS. Tenants submit declarative jobs; the service handles admission
// (bounded concurrency with fair-share ordering across tenants), keeps
// serving engines warm between jobs, and meters per-tenant usage (jobs,
// estimated spend, energy, latency) — "developers focus solely on
// application logic, without needing to manage model or resource details".
package aiwaas

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Status is a ticket's lifecycle state.
type Status int

// Ticket states.
const (
	StatusQueued Status = iota
	StatusRunning
	StatusDone
	StatusFailed
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Ticket tracks one submitted job through the service.
type Ticket struct {
	ID     int
	Tenant string
	Job    workflow.Job
	Opts   core.SubmitOptions

	status      Status
	submittedAt sim.Time
	startedAt   sim.Time
	exec        *core.Execution
	err         error
	onDone      []func(*Ticket)
}

// Status returns the current state.
func (t *Ticket) Status() Status { return t.status }

// Err returns the terminal error for failed tickets.
func (t *Ticket) Err() error { return t.err }

// Report returns the execution report once done.
func (t *Ticket) Report() *report.Report {
	if t.exec == nil || !t.exec.Done() {
		return nil
	}
	return t.exec.Report()
}

// QueueDelayS is time spent waiting for admission.
func (t *Ticket) QueueDelayS() float64 { return t.startedAt.Sub(t.submittedAt).Seconds() }

// OnDone registers a completion callback (fires for done and failed).
func (t *Ticket) OnDone(fn func(*Ticket)) {
	if t.status == StatusDone || t.status == StatusFailed {
		fn(t)
		return
	}
	t.onDone = append(t.onDone, fn)
}

// TenantUsage is the §5 metering record for one tenant.
type TenantUsage struct {
	Tenant        string
	Submitted     int
	Completed     int
	Failed        int
	TotalBillUSD  float64
	TotalEnergyWh float64
	TotalLatencyS float64
	TotalQueueS   float64
}

// Service is the AIWaaS front end.
type Service struct {
	se *sim.Engine
	rt *core.Runtime
	// maxConcurrent bounds simultaneously-running jobs; further submissions
	// queue with fair-share ordering.
	maxConcurrent int

	nextID  int
	queue   []*Ticket
	running int
	usage   map[string]*TenantUsage
	// inFlight counts running jobs per tenant; admitted counts total jobs
	// ever admitted per tenant. Together they order fair-share admission.
	inFlight map[string]int
	admitted map[string]int
}

// New creates a service over a runtime.
func New(se *sim.Engine, rt *core.Runtime, maxConcurrent int) *Service {
	if maxConcurrent <= 0 {
		panic("aiwaas: non-positive concurrency limit")
	}
	return &Service{
		se:            se,
		rt:            rt,
		maxConcurrent: maxConcurrent,
		usage:         map[string]*TenantUsage{},
		inFlight:      map[string]int{},
		admitted:      map[string]int{},
	}
}

// Submit enqueues a job for a tenant. Validation errors return immediately;
// planning/execution errors surface on the ticket.
func (s *Service) Submit(tenant string, job workflow.Job, opts core.SubmitOptions) (*Ticket, error) {
	if tenant == "" {
		return nil, fmt.Errorf("aiwaas: empty tenant")
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	// Engines stay warm across jobs: the service owns their lifecycle.
	opts.KeepEngines = true
	s.nextID++
	t := &Ticket{
		ID:          s.nextID,
		Tenant:      tenant,
		Job:         job,
		Opts:        opts,
		status:      StatusQueued,
		submittedAt: s.se.Now(),
	}
	s.tenantUsage(tenant).Submitted++
	s.queue = append(s.queue, t)
	s.se.Defer(s.pump)
	return t, nil
}

func (s *Service) tenantUsage(tenant string) *TenantUsage {
	u, ok := s.usage[tenant]
	if !ok {
		u = &TenantUsage{Tenant: tenant}
		s.usage[tenant] = u
	}
	return u
}

// pump admits queued tickets up to the concurrency limit, fair-share: the
// tenant with the fewest in-flight jobs goes first, ties broken by the
// least total service received (jobs ever admitted), then submission order —
// so one tenant's burst cannot starve others.
func (s *Service) pump() {
	for s.running < s.maxConcurrent && len(s.queue) > 0 {
		idx := s.pickNext()
		t := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.start(t)
	}
}

func (s *Service) pickNext() int {
	best := 0
	key := func(i int) (int, int) {
		t := s.queue[i].Tenant
		return s.inFlight[t], s.admitted[t]
	}
	for i := 1; i < len(s.queue); i++ {
		fi, ai := key(i)
		fb, ab := key(best)
		if fi < fb || (fi == fb && ai < ab) {
			best = i
		}
	}
	return best
}

func (s *Service) start(t *Ticket) {
	t.status = StatusRunning
	t.startedAt = s.se.Now()
	s.running++
	s.inFlight[t.Tenant]++
	s.admitted[t.Tenant]++
	ex, err := s.rt.Submit(t.Job, t.Opts)
	if err != nil {
		s.finish(t, nil, err)
		return
	}
	t.exec = ex
	ex.OnDone(func(rep *report.Report, err error) {
		s.finish(t, rep, err)
	})
}

func (s *Service) finish(t *Ticket, rep *report.Report, err error) {
	s.running--
	s.inFlight[t.Tenant]--
	u := s.tenantUsage(t.Tenant)
	u.TotalQueueS += t.QueueDelayS()
	if err != nil {
		t.status = StatusFailed
		t.err = err
		u.Failed++
	} else {
		t.status = StatusDone
		u.Completed++
		// Billing uses the optimizer's per-decision resource-seconds
		// estimates (cloud-style metering of what the job committed), not
		// the whole-cluster rental, which is shared across tenants.
		u.TotalBillUSD += t.exec.Plan().EstCostUSD
		if rep != nil {
			u.TotalEnergyWh += rep.GPUEnergyWh
			u.TotalLatencyS += rep.MakespanS
		}
	}
	for _, fn := range t.onDone {
		fn(t)
	}
	s.se.Defer(s.pump)
}

// QueueDepth returns queued (unadmitted) tickets.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Running returns currently-admitted jobs.
func (s *Service) Running() int { return s.running }

// Usage returns per-tenant usage records, sorted by tenant.
func (s *Service) Usage() []TenantUsage {
	out := make([]TenantUsage, 0, len(s.usage))
	for _, u := range s.usage {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
