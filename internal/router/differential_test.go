package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
)

// TestRouterSingleNodeDifferential drives a bare api.Server (the -router
// off path) and a one-node router through the same request script and
// requires byte-identical responses — status code, Content-Type and body —
// modulo the documented job-ID namespace ("job-n0-…" vs "job-…"), which the
// comparison strips. This pins the router as a zero-drift pass-through: a
// cluster of one answers exactly like a single daemon.
func TestRouterSingleNodeDifferential(t *testing.T) {
	plain, err := api.NewServer(testNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plain.Close)
	rt := newTestRouter(t, Config{Nodes: 1, Seed: 42})

	run := func(h http.Handler, method, target, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, target, strings.NewReader(body))
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	// normalize strips the single node's ID namespace from router output.
	normalize := func(s string) string { return strings.ReplaceAll(s, "job-n0-", "job-") }

	type step struct {
		name, method, target, body string
	}
	script := []step{
		{"healthz", http.MethodGet, "/healthz", ""},
		{"library", http.MethodGet, "/v1/library", ""},
		{"submit-wait", http.MethodPost, "/v1/jobs", jobBody("alice", true)},
		{"submit-async", http.MethodPost, "/v1/jobs", jobBody("bob", false)},
		{"get-first", http.MethodGet, "/v1/jobs/job-00000001", ""},
		{"get-unknown", http.MethodGet, "/v1/jobs/job-99999999", ""},
		{"cancel-done", http.MethodDelete, "/v1/jobs/job-00000001", ""},
		{"cancel-unknown", http.MethodDelete, "/v1/jobs/job-99999999", ""},
		{"submit-bad-json", http.MethodPost, "/v1/jobs", `{"tenant": `},
		{"submit-unknown-field", http.MethodPost, "/v1/jobs", `{"tenant": "x", "bogus": 1}`},
		{"submit-no-inputs", http.MethodPost, "/v1/jobs", `{"tenant": "x", "description": "d", "constraint": "MIN_COST"}`},
		{"experiments-unknown", http.MethodGet, "/v1/experiments/nope", ""},
	}
	for _, s := range script {
		want := run(plain, s.method, s.target, s.body)
		// The router sees the ID under its node's namespace.
		target := strings.ReplaceAll(s.target, "job-", "job-n0-")
		got := run(rt, s.method, target, s.body)
		if got.Code != want.Code {
			t.Fatalf("%s: status %d (router) != %d (single node)\nrouter: %s\nsingle: %s",
				s.name, got.Code, want.Code, got.Body.String(), want.Body.String())
		}
		if gct, wct := got.Header().Get("Content-Type"), want.Header().Get("Content-Type"); gct != wct {
			t.Fatalf("%s: Content-Type %q != %q", s.name, gct, wct)
		}
		gotBody, wantBody := normalize(got.Body.String()), want.Body.String()
		// Async submissions race the shard loop: by the time either server
		// renders the response the job may be queued or already past it, so
		// only the deterministic fields are compared for that step.
		if s.name == "submit-async" || s.name == "get-first" || s.name == "cancel-done" {
			for _, frag := range []string{`"id":"job-`, `"tenant":"`} {
				if strings.Contains(wantBody, frag) != strings.Contains(gotBody, frag) {
					t.Fatalf("%s: structural mismatch\nrouter: %s\nsingle: %s", s.name, gotBody, wantBody)
				}
			}
			continue
		}
		if gotBody != wantBody {
			t.Fatalf("%s: body mismatch\nrouter: %s\nsingle: %s", s.name, gotBody, wantBody)
		}
	}
}

// TestRouterSingleNodeDifferentialWaitJobs replays a deterministic
// sequential wait:true trace through both servers and requires the full
// responses to match byte-for-byte after namespace stripping — including
// result payloads, sim timestamps and queue delays, since sequential
// waited submissions make the sim schedule a pure function of the trace.
func TestRouterSingleNodeDifferentialWaitJobs(t *testing.T) {
	plain, err := api.NewServer(testNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plain.Close)
	rt := newTestRouter(t, Config{Nodes: 1, Seed: 42})
	normalize := func(s string) string { return strings.ReplaceAll(s, "job-n0-", "job-") }

	for i := 0; i < 5; i++ {
		body := jobBody(fmt.Sprintf("tenant-%d", i%2), true)
		reqP := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
		recP := httptest.NewRecorder()
		plain.ServeHTTP(recP, reqP)
		reqR := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
		recR := httptest.NewRecorder()
		rt.ServeHTTP(recR, reqR)
		if recP.Code != recR.Code {
			t.Fatalf("job %d: status %d != %d", i, recR.Code, recP.Code)
		}
		if got, want := normalize(recR.Body.String()), recP.Body.String(); got != want {
			t.Fatalf("job %d: wait response diverged\nrouter: %s\nsingle: %s", i, got, want)
		}
	}
}
