package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/profiles"
)

// DefaultDrainDeadline bounds how long Leave waits for a departing node's
// in-flight jobs before rerouting what is still queued and typing what is
// still running as node_down.
const DefaultDrainDeadline = 30 * time.Second

// defaultJobHistory bounds the router's routed-job registry; the oldest
// entries are evicted first (a GET for an evicted ID falls back to probing
// the nodes directly).
const defaultJobHistory = 1 << 16

// Config sizes a Router.
type Config struct {
	// Nodes is the initial node count (default 1); nodes are named
	// "n0".."n{N-1}" and built from the Node template.
	Nodes int
	// Node is the per-node pool configuration. PerRequest must be off and
	// JobIDNamespace/ProfileRegistry empty — the router owns both (each
	// node mints IDs under its own name and profiles replicate through the
	// router's canonical registry).
	Node api.PoolConfig
	// VNodes is the ring's virtual-node count per node (default
	// DefaultVNodes); Seed seeds ring placement.
	VNodes int
	Seed   int64
	// DrainDeadline bounds Leave's wait for in-flight jobs. 0 selects
	// DefaultDrainDeadline; negative expires immediately (every outstanding
	// job takes the reroute/node_down path — the harness uses this to pin
	// the deadline behaviour deterministically).
	DrainDeadline time.Duration
	// JobHistoryLimit bounds the routed-job registry (default 65536).
	JobHistoryLimit int
}

// node is one cluster member: an api.Server (Pool behind its mux) plus the
// router's view of its health.
type node struct {
	name string
	srv  *api.Server
	reg  *profiles.Registry
	// healthy is the last heartbeat verdict; draining is set by Leave.
	// Both are guarded by the router mutex.
	healthy  bool
	draining bool
	// lastBeatSimS is the node's max shard sim-time at the last heartbeat —
	// the harness's sim-time liveness stamp.
	lastBeatSimS float64
}

// jobEntry tracks one routed job: which node owns it, the original request
// body (retained until the job is observed terminal, so a queued job can
// re-enter a surviving node if its node leaves), and any terminal response
// the router itself imposed (node_down, or the departed node's final state).
type jobEntry struct {
	id     string
	node   string
	tenant string
	body   []byte
	// aliasTo is the replacement ID after a reroute: reads forward there.
	aliasTo string
	// override, when set, is the cached terminal response (status code +
	// JSON body) served for this ID after its node left the cluster.
	override     []byte
	overrideCode int
	terminal     bool
}

// Router fronts a set of in-process murakkabd nodes with the single-node
// HTTP surface: job traffic routes by tenant over a consistent-hash ring,
// stats fan out and merge with the pool's monotonic-fold discipline, and
// join/leave reassigns only the tenants whose ring successor moved.
type Router struct {
	cfg Config
	mux *http.ServeMux

	mu    sync.Mutex
	ring  *Ring
	nodes map[string]*node
	// reg is the canonical profile registry every joining node replicates
	// from (and publishes back to), so profiling runs once cluster-wide.
	reg   *profiles.Registry
	jobs  map[string]*jobEntry
	order []string // entry IDs oldest-first, for eviction
	// tenants maps every observed tenant to its current ring owner
	// (health-blind), so membership changes can account exactly which
	// tenants moved.
	tenants map[string]string
	closed  bool

	// ret folds departed nodes' final pool counters so cluster totals stay
	// monotonic across leaves, mirroring the pool's recycled-shard fold.
	ret ClusterTotals

	// Counters (guarded by mu).
	routedSubmits, routedReads, routedCancels int64
	rerouted, nodeDownJobs                    int64
	tenantsMoved                              int64
	joins, leaves, heartbeats                 int64
	replKeys, replProfiles                    int64
}

// New builds a router over cfg.Nodes fresh in-process nodes.
func New(cfg Config) (*Router, error) {
	if cfg.Node.PerRequest {
		return nil, fmt.Errorf("router: per-request nodes are not routable (each request builds a throwaway testbed; there is nothing to shard)")
	}
	if cfg.Node.JobIDNamespace != "" || cfg.Node.ProfileRegistry != nil {
		return nil, fmt.Errorf("router: Node.JobIDNamespace and Node.ProfileRegistry are router-owned; leave them unset")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.JobHistoryLimit <= 0 {
		cfg.JobHistoryLimit = defaultJobHistory
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.VNodes, cfg.Seed),
		nodes:   make(map[string]*node),
		reg:     profiles.NewRegistry(),
		jobs:    make(map[string]*jobEntry),
		tenants: make(map[string]string),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /v1/library", rt.handleForwardAny)
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJobCancel)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/experiments/{name}", rt.handleForwardAny)
	rt.mux = mux
	for i := 0; i < cfg.Nodes; i++ {
		if err := rt.Join(fmt.Sprintf("n%d", i)); err != nil {
			rt.Close()
			return nil, err
		}
	}
	return rt, nil
}

// ServeHTTP implements http.Handler with the same surface as a single node.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// drainDeadline resolves the configured deadline.
func (rt *Router) drainDeadline() time.Duration {
	switch {
	case rt.cfg.DrainDeadline == 0:
		return DefaultDrainDeadline
	case rt.cfg.DrainDeadline < 0:
		return 0
	default:
		return rt.cfg.DrainDeadline
	}
}

// Join builds a fresh node, warms its profile registry by replication from
// the cluster's canonical registry (content-keyed generation deltas — no
// re-profiling), adds it to the ring, and accounts exactly which observed
// tenants the ring reassigned to it.
func (rt *Router) Join(name string) error {
	if name == "" {
		return fmt.Errorf("router: empty node name")
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return fmt.Errorf("router: closed")
	}
	if _, ok := rt.nodes[name]; ok {
		rt.mu.Unlock()
		return fmt.Errorf("router: node %q already present", name)
	}
	rt.mu.Unlock()

	// Warm the joining node before it builds anything: replicated keys make
	// the pool's profiling pass a registry hit, so the node provisions
	// without recomputation (its registry's build counter stays zero).
	reg := profiles.NewRegistry()
	repl := reg.ReplicateFrom(rt.reg)
	cfg := rt.cfg.Node
	cfg.JobIDNamespace = name
	cfg.ProfileRegistry = reg
	srv, err := api.NewServer(cfg)
	if err != nil {
		return fmt.Errorf("router: provisioning node %q: %w", name, err)
	}
	// Publish back whatever this node did build — the first node seeds the
	// canonical registry for everyone after it.
	rt.reg.ReplicateFrom(reg)

	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed || rt.nodes[name] != nil {
		rt.mu.Unlock()
		srv.Close()
		rt.mu.Lock()
		return fmt.Errorf("router: node %q raced a close or duplicate join", name)
	}
	rt.nodes[name] = &node{name: name, srv: srv, reg: reg, healthy: true}
	rt.ring.Add(name)
	rt.remapTenantsLocked()
	rt.joins++
	rt.replKeys += int64(repl.KeysAdded + repl.KeysUpdated)
	rt.replProfiles += int64(repl.Profiles)
	return nil
}

// Leave removes a node: the ring reassigns its tenants (and only its
// tenants), in-flight jobs drain against the deadline, still-queued jobs
// re-enter surviving nodes, still-running jobs are canceled and typed
// node_down, and the node's final counters fold into the cluster's retired
// totals so /v1/stats stays monotonic.
func (rt *Router) Leave(name string) error {
	rt.mu.Lock()
	n, ok := rt.nodes[name]
	if !ok || n.draining {
		rt.mu.Unlock()
		return fmt.Errorf("router: node %q not present", name)
	}
	live := 0
	for _, m := range rt.nodes {
		if !m.draining {
			live++
		}
	}
	if live <= 1 {
		rt.mu.Unlock()
		return fmt.Errorf("router: refusing to remove the last node %q", name)
	}
	n.draining = true
	rt.ring.Remove(name)
	rt.remapTenantsLocked()
	var outstanding []*jobEntry
	for _, e := range rt.jobs {
		if e.node == name && !e.terminal && e.aliasTo == "" && e.override == nil {
			outstanding = append(outstanding, e)
		}
	}
	sort.Slice(outstanding, func(i, j int) bool { return outstanding[i].id < outstanding[j].id })
	rt.mu.Unlock()

	// Phase 1: give in-flight work the drain deadline.
	pool := n.srv.Pool()
	if deadline := rt.drainDeadline(); deadline > 0 && len(outstanding) > 0 {
		timer := time.NewTimer(deadline)
		for _, e := range outstanding {
			ch, ok := pool.Done(e.id)
			if !ok {
				continue
			}
			expired := false
			select {
			case <-ch:
			case <-timer.C:
				expired = true
			}
			if expired {
				break
			}
		}
		timer.Stop()
	}

	// Phase 2: classify what outlived the deadline. Queued jobs re-enter a
	// surviving node (the capacity-event path: cancel on the departing node,
	// resubmit the retained body); running jobs cancel and surface the typed
	// node_down error.
	type expiredJob struct {
		e       *jobEntry
		tenant  string
		body    []byte
		reroute bool
	}
	var expired []expiredJob
	for _, e := range outstanding {
		st, ok := pool.Get(e.id)
		if !ok || st.Status.Terminal() {
			continue
		}
		// Snapshot the retained body under the lock before canceling: a
		// concurrent status read that observes the cancel settle frees
		// e.body, and the resubmit below must not race that.
		rt.mu.Lock()
		tenant, body := e.tenant, e.body
		rt.mu.Unlock()
		reroute := st.Status == core.JobQueued && body != nil
		pool.Cancel(e.id)
		expired = append(expired, expiredJob{e: e, tenant: tenant, body: body, reroute: reroute})
	}

	// Close drains everything that remains to completion, so every job on
	// the node is terminal before its final state is captured below.
	n.srv.Close()

	for _, x := range expired {
		// Re-check now that the node is fully drained: a job that raced to
		// a genuine terminal state (done, or failed on its own) drained
		// fine — rerouting would run it twice and node_down would be a lie.
		// Likewise one whose entry already settled through the client path
		// (a concurrent DELETE beat our drain cancel): the client saw the
		// canceled response, so the record stands as-is. Only jobs our
		// cancel actually stopped take the handoff paths.
		st, ok := pool.Get(x.e.id)
		if ok && (st.Status == core.JobDone || st.Status == core.JobFailed) {
			continue
		}
		rt.mu.Lock()
		settled := x.e.terminal || x.e.aliasTo != "" || x.e.override != nil
		rt.mu.Unlock()
		if settled {
			continue
		}
		if x.reroute {
			if newID := rt.resubmit(x.e, x.tenant, x.body); newID != "" {
				continue
			}
		}
		rt.overrideNodeDown(n, x.e)
	}

	// Phase 3: cache every remaining entry's final response so history
	// stays queryable after the node is gone, then fold the node's final
	// counters into the retired totals and drop it.
	rt.mu.Lock()
	var remaining []*jobEntry
	for _, e := range rt.jobs {
		if e.node == name && e.aliasTo == "" && e.override == nil {
			remaining = append(remaining, e)
		}
	}
	rt.mu.Unlock()
	for _, e := range remaining {
		rb := forward(n.srv, http.MethodGet, "/v1/jobs/"+e.id, nil)
		rt.mu.Lock()
		e.override = rb.buf.Bytes()
		e.overrideCode = rb.code
		e.terminal = true
		e.body = nil
		rt.mu.Unlock()
	}

	final := pool.Stats()
	rt.mu.Lock()
	rt.ret.addPool(final)
	delete(rt.nodes, name)
	rt.leaves++
	rt.mu.Unlock()
	return nil
}

// resubmit re-enters an expired queued job on a surviving node and aliases
// the old ID to the new one. It returns the new ID, or "" if no node could
// take the job.
func (rt *Router) resubmit(e *jobEntry, tenant string, body []byte) string {
	rb, n := rt.routeSubmit(tenant, body)
	if rb == nil || rb.code != http.StatusOK && rb.code != http.StatusAccepted {
		return ""
	}
	var jr struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if json.Unmarshal(rb.buf.Bytes(), &jr) != nil || jr.ID == "" {
		return ""
	}
	rt.mu.Lock()
	rt.registerLocked(jr.ID, n.name, tenant, body, jr.Status)
	e.aliasTo = jr.ID
	e.terminal = true
	e.body = nil
	rt.rerouted++
	rt.mu.Unlock()
	return jr.ID
}

// overrideNodeDown caches a node_down terminal response for a job that was
// still in flight on a departed node when the drain deadline expired.
func (rt *Router) overrideNodeDown(n *node, e *jobEntry) {
	resp := api.JobStatusResponse{ID: e.id, Tenant: e.tenant, Shard: -1, Status: core.JobFailed.String()}
	if st, ok := n.srv.Pool().Get(e.id); ok {
		resp = statusJSON(st)
	}
	resp.Status = core.JobFailed.String()
	resp.Error = fmt.Sprintf("core: job: node_down: node %q left the cluster before the job finished (drain deadline expired)", n.name)
	resp.ErrorCode = string(core.CodeNodeDown)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_ = enc.Encode(resp)
	rt.mu.Lock()
	e.override = buf.Bytes()
	e.overrideCode = http.StatusOK
	e.terminal = true
	e.body = nil
	rt.nodeDownJobs++
	rt.mu.Unlock()
}

// statusJSON mirrors the api server's JobState → JobStatusResponse mapping.
func statusJSON(st api.JobState) api.JobStatusResponse {
	out := api.JobStatusResponse{
		ID:            st.ID,
		Tenant:        st.Tenant,
		Shard:         st.Shard,
		Status:        st.Status.String(),
		QueueDelayS:   st.QueueDelayS,
		SubmittedSimS: st.SubmittedSimS,
		FinishedSimS:  st.FinishedSimS,
		Error:         st.Error,
		ErrorCode:     st.ErrorCode,
		Result:        st.Result,
	}
	for _, a := range st.Attempts {
		out.Attempts = append(out.Attempts, api.AttemptJSON{
			AtS:            a.AtS,
			Task:           a.Task,
			Capability:     a.Capability,
			Implementation: a.Implementation,
			Attempt:        a.Attempt,
			BackoffS:       a.BackoffS,
			Error:          a.Err,
		})
	}
	return out
}

// remapTenantsLocked recomputes every observed tenant's ring owner after a
// membership change and counts the moves — the minimal-disruption ledger.
func (rt *Router) remapTenantsLocked() {
	for tenant, owner := range rt.tenants {
		now, ok := rt.ring.NodeFor(tenant)
		if !ok {
			continue
		}
		if now != owner {
			rt.tenants[tenant] = now
			rt.tenantsMoved++
		}
	}
}

// SetNodeHealth force-marks a node's health (the harness's fault lever);
// heartbeats overwrite it. It reports whether the node exists.
func (rt *Router) SetNodeHealth(name string, healthy bool) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n, ok := rt.nodes[name]
	if !ok {
		return false
	}
	n.healthy = healthy
	return true
}

// HeartbeatOnce probes every node's /healthz through its mux, stamps each
// live node with its current sim time, and returns how many nodes are up.
func (rt *Router) HeartbeatOnce() int {
	rt.mu.Lock()
	members := make([]*node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		members = append(members, n)
	}
	rt.heartbeats++
	rt.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })
	up := 0
	for _, n := range members {
		rb := forward(n.srv, http.MethodGet, "/healthz", nil)
		healthy := rb.code == http.StatusOK
		simS := maxShardSimS(n.srv.Pool().Stats())
		rt.mu.Lock()
		n.healthy = healthy
		n.lastBeatSimS = simS
		rt.mu.Unlock()
		if healthy {
			up++
		}
	}
	return up
}

// maxShardSimS is a node's sim-time high-water mark across its shards.
func maxShardSimS(ps api.PoolStats) float64 {
	max := 0.0
	for _, sh := range ps.Shards {
		if sh.SimTimeS > max {
			max = sh.SimTimeS
		}
	}
	return max
}

// NodeNames returns the current member names, sorted.
func (rt *Router) NodeNames() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.nodes))
	for name := range rt.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NodeBuilds returns how many profile builds a node actually ran — zero for
// a node warmed by replication.
func (rt *Router) NodeBuilds(name string) (int, bool) {
	rt.mu.Lock()
	n, ok := rt.nodes[name]
	rt.mu.Unlock()
	if !ok {
		return 0, false
	}
	return n.reg.Builds(), true
}

// Close drains every node. Safe to call more than once.
func (rt *Router) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	members := make([]*node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		members = append(members, n)
	}
	rt.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })
	for _, n := range members {
		n.srv.Close()
	}
}

// registerLocked records a routed job. Callers hold rt.mu.
func (rt *Router) registerLocked(id, nodeName, tenant string, body []byte, status string) {
	e := &jobEntry{id: id, node: nodeName, tenant: tenant}
	if status == "queued" || status == "running" {
		// Retain the request body so a leave can re-enter the job elsewhere;
		// terminal jobs need only the routing hint.
		e.body = body
	} else {
		e.terminal = true
	}
	rt.jobs[id] = e
	rt.order = append(rt.order, id)
	for len(rt.jobs) > rt.cfg.JobHistoryLimit && len(rt.order) > 0 {
		oldest := rt.order[0]
		rt.order = rt.order[1:]
		delete(rt.jobs, oldest)
	}
}
