package router

import (
	"net/http"
	"sort"

	"repro/internal/api"
)

// ClusterTotals is the cluster-wide lifecycle fold: live nodes' pool
// counters plus the final counters of every departed node (folded at leave,
// the same discipline the pool applies to recycled shards), so every field
// is monotonic across membership changes. Submitted counts node-level
// admissions and therefore includes leave-time re-entries (a rerouted job is
// admitted twice); the router's routed_submits counter is the client-facing
// count.
type ClusterTotals struct {
	Submitted       int    `json:"submitted"`
	Completed       int    `json:"completed"`
	Failed          int    `json:"failed"`
	Canceled        int    `json:"canceled"`
	PlanSearches    int    `json:"plan_searches"`
	Reconfigs       int    `json:"reconfigs"`
	Recycles        int    `json:"recycles"`
	EventsProcessed uint64 `json:"events_processed"`
}

// addPool folds one pool's monotonic totals in.
func (t *ClusterTotals) addPool(ps api.PoolStats) {
	t.Submitted += ps.Submitted
	t.Completed += ps.Completed
	t.Failed += ps.Failed
	t.Canceled += ps.Canceled
	t.PlanSearches += ps.PlanSearches
	t.Reconfigs += ps.Reconfigs
	t.Recycles += ps.Recycles
	t.EventsProcessed += ps.EventsProcessed
}

// NodeStats is one member's row in the cluster stats fan-in.
type NodeStats struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	// Tenants counts observed tenants whose ring owner this node is.
	Tenants int `json:"tenants"`
	// SimTimeS is the node's sim-time high-water mark across its shards;
	// LastBeatSimS is the stamp taken at the last heartbeat.
	SimTimeS     float64       `json:"sim_time_s"`
	LastBeatSimS float64       `json:"last_beat_sim_s"`
	Pool         api.PoolStats `json:"pool"`
}

// ClusterStats is the router's /v1/stats document: the per-node fan-out plus
// merged cluster totals and the router's own routing/handoff/replication
// counters.
type ClusterStats struct {
	Mode          string      `json:"mode"` // always "cluster"
	Nodes         []NodeStats `json:"nodes"`
	NodesUp       int         `json:"nodes_up"`
	NodesDraining int         `json:"nodes_draining"`
	RingVNodes    int         `json:"ring_vnodes"`
	RingSeed      int64       `json:"ring_seed"`

	TenantsObserved int   `json:"tenants_observed"`
	TenantsMoved    int64 `json:"tenants_moved"`

	RoutedSubmits     int64 `json:"routed_submits"`
	RoutedStatusReads int64 `json:"routed_status_reads"`
	RoutedCancels     int64 `json:"routed_cancels"`
	ReroutedJobs      int64 `json:"rerouted_jobs"`
	NodeDownJobs      int64 `json:"node_down_jobs"`

	Joins      int64 `json:"joins"`
	Leaves     int64 `json:"leaves"`
	Heartbeats int64 `json:"heartbeats"`

	ProfileKeysReplicated    int64 `json:"profile_keys_replicated"`
	ProfileEntriesReplicated int64 `json:"profile_entries_replicated"`

	JobsTracked int           `json:"jobs_tracked"`
	Totals      ClusterTotals `json:"totals"`
}

// Stats fans out to every node's pool (each pool snapshot is itself taken on
// its shard loops) and merges: totals are retired folds plus live sums, so
// repeated reads are monotonic across joins, leaves and recycles.
func (rt *Router) Stats() ClusterStats {
	rt.mu.Lock()
	names := make([]string, 0, len(rt.nodes))
	for name := range rt.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	members := make([]*node, 0, len(names))
	for _, name := range names {
		members = append(members, rt.nodes[name])
	}
	tenantsPerNode := make(map[string]int, len(members))
	for _, owner := range rt.tenants {
		tenantsPerNode[owner]++
	}
	out := ClusterStats{
		Mode:                     "cluster",
		RingVNodes:               rt.ring.vnodes,
		RingSeed:                 rt.cfg.Seed,
		TenantsObserved:          len(rt.tenants),
		TenantsMoved:             rt.tenantsMoved,
		RoutedSubmits:            rt.routedSubmits,
		RoutedStatusReads:        rt.routedReads,
		RoutedCancels:            rt.routedCancels,
		ReroutedJobs:             rt.rerouted,
		NodeDownJobs:             rt.nodeDownJobs,
		Joins:                    rt.joins,
		Leaves:                   rt.leaves,
		Heartbeats:               rt.heartbeats,
		ProfileKeysReplicated:    rt.replKeys,
		ProfileEntriesReplicated: rt.replProfiles,
		JobsTracked:              len(rt.jobs),
		Totals:                   rt.ret,
	}
	rt.mu.Unlock()

	for _, n := range members {
		ps := n.srv.Pool().Stats()
		rt.mu.Lock()
		row := NodeStats{
			Name:         n.name,
			Healthy:      n.healthy,
			Draining:     n.draining,
			Tenants:      tenantsPerNode[n.name],
			SimTimeS:     maxShardSimS(ps),
			LastBeatSimS: n.lastBeatSimS,
			Pool:         ps,
		}
		rt.mu.Unlock()
		out.Nodes = append(out.Nodes, row)
		if row.Healthy && !row.Draining {
			out.NodesUp++
		}
		if row.Draining {
			out.NodesDraining++
		}
		out.Totals.addPool(ps)
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}
