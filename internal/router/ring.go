// Package router is the horizontal scale-out tier: a consistent-hash ring
// maps tenants onto a set of in-process murakkabd nodes (each node is an
// api.Server — a Pool behind its mux), and a Router fronts the set with the
// same HTTP surface a single node exposes. Job traffic routes by tenant,
// stats fan out and merge with the pool's monotonic-fold discipline, and
// node join/leave moves only the tenants the ring reassigns: a leave drains
// the departing node against a deadline, re-enters still-queued jobs on
// surviving nodes, and types anything that cannot finish as node_down.
package router

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
	"strconv"
)

// ringPoint is one virtual node on the ring: a hash position owned by a
// physical node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes and seeded placement.
// Each node contributes VNodes points, placed by hashing seed|name|index;
// a tenant maps to the first point clockwise from its own hash. With the
// same seed and membership, placement is identical across processes, and
// adding or removing a node moves only the tenants whose successor point
// belonged to that node — the minimal-disruption property the tests pin.
//
// Ring is not goroutine-safe; the Router guards it with its own mutex.
type Ring struct {
	vnodes int
	seed   int64
	points []ringPoint // sorted by (hash, node)
	nodes  []string    // sorted member names
}

// DefaultVNodes is the default virtual-node count per physical node: enough
// that tenant spread stays within ~±25% of fair share (see the balance
// property test) while keeping membership changes cheap.
const DefaultVNodes = 128

// NewRing returns an empty ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int, seed int64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, seed: seed}
}

// hash64 hashes the ring seed plus a label with FNV-1a, then finalizes with
// a SplitMix64-style mixer: FNV alone leaves short sequential labels
// ("n0#1", "n0#2", …) correlated in the high bits, which skews point
// placement badly; the finalizer's avalanche restores uniform spread.
func (r *Ring) hash64(label string, vnode int) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(r.seed))
	h.Write(seed[:])
	h.Write([]byte(label))
	if vnode >= 0 {
		h.Write([]byte("#"))
		h.Write([]byte(strconv.Itoa(vnode)))
	}
	return mix64(h.Sum64())
}

// mix64 is the SplitMix64 finalizer (Steele et al.): a bijective avalanche
// over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a node's virtual points. It reports false if the node is
// already a member.
func (r *Ring) Add(name string) bool {
	i := sort.SearchStrings(r.nodes, name)
	if i < len(r.nodes) && r.nodes[i] == name {
		return false
	}
	r.nodes = append(r.nodes, "")
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = name
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: r.hash64(name, v), node: name})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return true
}

// Remove deletes a node's virtual points. It reports false if the node is
// not a member.
func (r *Ring) Remove(name string) bool {
	i := sort.SearchStrings(r.nodes, name)
	if i == len(r.nodes) || r.nodes[i] != name {
		return false
	}
	r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
	kept := r.points[:0]
	for _, pt := range r.points {
		if pt.node != name {
			kept = append(kept, pt)
		}
	}
	r.points = kept
	return true
}

// Has reports membership.
func (r *Ring) Has(name string) bool {
	i := sort.SearchStrings(r.nodes, name)
	return i < len(r.nodes) && r.nodes[i] == name
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// NodeFor maps a tenant to its owning node: the first virtual point
// clockwise from the tenant's hash. It reports false on an empty ring.
func (r *Ring) NodeFor(tenant string) (string, bool) {
	return r.NodeForWhere(tenant, nil)
}

// NodeForWhere maps a tenant to the first node clockwise from its hash that
// passes ok (nil accepts every node). The walk visits each distinct node at
// most once, in ring order, so a draining or unhealthy owner's tenants spill
// deterministically onto its clockwise successors. It reports false when no
// member passes.
func (r *Ring) NodeForWhere(tenant string, ok func(string) bool) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := r.hash64(tenant, -1)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if ok == nil {
		return r.points[start%len(r.points)].node, true
	}
	// Each distinct node is asked once, in ring order from the tenant's
	// position; rejected nodes are remembered (node counts are small, so a
	// linear scan beats a map here).
	tried := make([]string, 0, 8)
	for i := 0; i < len(r.points) && len(tried) < len(r.nodes); i++ {
		pt := r.points[(start+i)%len(r.points)]
		seen := false
		for _, name := range tried {
			if name == pt.node {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		if ok(pt.node) {
			return pt.node, true
		}
		tried = append(tried, pt.node)
	}
	return "", false
}
