package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

func testNodeConfig() api.PoolConfig {
	return api.PoolConfig{Shards: 1, VMsPerShard: 2, MaxConcurrentPerShard: 4}
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Node.Shards == 0 {
		cfg.Node = testNodeConfig()
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func jobBody(tenant string, wait bool) string {
	return fmt.Sprintf(`{
		"tenant": %q, "wait": %v,
		"description": "List objects shown in the videos",
		"constraint": "MAX_QUALITY",
		"inputs": [{"name": "a.mov", "kind": "video",
		            "attrs": {"duration_s": 120, "scene_len_s": 30, "frames_per_scene": 24}}]
	}`, tenant, wait)
}

// do runs one request through the router handler.
func do(rt *Router, method, target, body string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, target, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec
}

type wireStatus struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	Status    string `json:"status"`
	Error     string `json:"error"`
	ErrorCode string `json:"error_code"`
}

func decodeStatus(t *testing.T, rec *httptest.ResponseRecorder) wireStatus {
	t.Helper()
	var st wireStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return st
}

func TestRouterRoutesByTenantAndNamespacesIDs(t *testing.T) {
	rt := newTestRouter(t, Config{Nodes: 3, Seed: 42})
	owners := map[string]string{}
	for i := 0; i < 6; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		rec := do(rt, http.MethodPost, "/v1/jobs", jobBody(tenant, true))
		if rec.Code != http.StatusOK {
			t.Fatalf("submit %s = %d: %s", tenant, rec.Code, rec.Body.String())
		}
		st := decodeStatus(t, rec)
		if st.Status != "done" {
			t.Fatalf("wait-submit status = %q", st.Status)
		}
		// The minted ID carries the owning node's namespace, and that node
		// must be the ring owner for the tenant.
		want, _ := rt.ring.NodeFor(tenant)
		if !strings.HasPrefix(st.ID, "job-"+want+"-") {
			t.Fatalf("tenant %s: job id %q not namespaced to ring owner %s", tenant, st.ID, want)
		}
		owners[tenant] = want

		// Reads route back through the registry to the same record.
		get := do(rt, http.MethodGet, "/v1/jobs/"+st.ID, "")
		if get.Code != http.StatusOK || decodeStatus(t, get).ID != st.ID {
			t.Fatalf("GET %s = %d: %s", st.ID, get.Code, get.Body.String())
		}
		// Canceling a finished job is the same 409 a single node reports.
		del := do(rt, http.MethodDelete, "/v1/jobs/"+st.ID, "")
		if del.Code != http.StatusConflict {
			t.Fatalf("DELETE done job = %d: %s", del.Code, del.Body.String())
		}
	}
	// With 6 tenants over 3 nodes and seed 42 at least two nodes should own
	// traffic; this guards against the ring degenerating to one node.
	distinct := map[string]bool{}
	for _, n := range owners {
		distinct[n] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all tenants landed on one node: %v", owners)
	}

	if rec := do(rt, http.MethodGet, "/v1/jobs/job-nope", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job GET = %d", rec.Code)
	}
	if rec := do(rt, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := do(rt, http.MethodGet, "/v1/library", ""); rec.Code != http.StatusOK {
		t.Fatalf("library = %d", rec.Code)
	}
}

func TestRouterStatsFanInMonotonic(t *testing.T) {
	rt := newTestRouter(t, Config{Nodes: 2, Seed: 7})
	for i := 0; i < 4; i++ {
		rec := do(rt, http.MethodPost, "/v1/jobs", jobBody(fmt.Sprintf("tenant-%d", i), true))
		if rec.Code != http.StatusOK {
			t.Fatalf("submit = %d", rec.Code)
		}
	}
	s1 := rt.Stats()
	if s1.Mode != "cluster" || s1.NodesUp != 2 || len(s1.Nodes) != 2 {
		t.Fatalf("stats shape: %+v", s1)
	}
	if s1.Totals.Submitted != 4 || s1.Totals.Completed != 4 {
		t.Fatalf("totals = %+v, want 4 submitted/completed", s1.Totals)
	}
	if s1.RoutedSubmits != 4 || s1.TenantsObserved != 4 {
		t.Fatalf("router counters: %+v", s1)
	}
	// The HTTP endpoint serves the same document.
	rec := do(rt, http.MethodGet, "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", rec.Code)
	}
	var viaHTTP ClusterStats
	if err := json.Unmarshal(rec.Body.Bytes(), &viaHTTP); err != nil {
		t.Fatal(err)
	}
	if viaHTTP.Totals.Submitted != s1.Totals.Submitted {
		t.Fatalf("HTTP stats disagree: %+v vs %+v", viaHTTP.Totals, s1.Totals)
	}
	// More work strictly advances the fold.
	if rec := do(rt, http.MethodPost, "/v1/jobs", jobBody("tenant-9", true)); rec.Code != http.StatusOK {
		t.Fatalf("submit = %d", rec.Code)
	}
	s2 := rt.Stats()
	if s2.Totals.Submitted < s1.Totals.Submitted || s2.Totals.Completed < s1.Totals.Completed ||
		s2.Totals.EventsProcessed < s1.Totals.EventsProcessed {
		t.Fatalf("totals regressed: %+v -> %+v", s1.Totals, s2.Totals)
	}
}

func TestRouterJoinWarmsWithoutRecomputation(t *testing.T) {
	rt := newTestRouter(t, Config{Nodes: 1, Seed: 1})
	// The seed node had to profile (it built the canonical registry).
	if builds, ok := rt.NodeBuilds("n0"); !ok || builds == 0 {
		t.Fatalf("seed node builds = %d ok=%v, want > 0", builds, ok)
	}
	if err := rt.Join("warm"); err != nil {
		t.Fatal(err)
	}
	// The joining node replicated content-keyed deltas instead of
	// re-profiling: its build counter stays zero.
	if builds, ok := rt.NodeBuilds("warm"); !ok || builds != 0 {
		t.Fatalf("joined node builds = %d ok=%v, want 0 (warmed by replication)", builds, ok)
	}
	s := rt.Stats()
	if s.ProfileKeysReplicated == 0 || s.ProfileEntriesReplicated == 0 {
		t.Fatalf("replication counters empty: %+v", s)
	}
	if s.Joins != 2 {
		t.Fatalf("joins = %d, want 2 (seed + warm)", s.Joins)
	}
	// The new node serves traffic for tenants the ring hands it.
	found := false
	for i := 0; i < 64 && !found; i++ {
		tenant := fmt.Sprintf("probe-%d", i)
		if owner, _ := rt.ring.NodeFor(tenant); owner == "warm" {
			rec := do(rt, http.MethodPost, "/v1/jobs", jobBody(tenant, true))
			if rec.Code != http.StatusOK {
				t.Fatalf("submit to joined node = %d: %s", rec.Code, rec.Body.String())
			}
			if id := decodeStatus(t, rec).ID; !strings.HasPrefix(id, "job-warm-") {
				t.Fatalf("id %q not on joined node", id)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("ring handed the joined node no tenants out of 64 probes")
	}
}

// TestRouterLeaveDrainReroutesAndTypesNodeDown pins the leave contract with
// an immediately-expiring drain deadline: still-queued jobs re-enter
// surviving nodes, still-running jobs surface the typed node_down error,
// nothing strands, and cluster totals stay monotonic across the fold.
func TestRouterLeaveDrainReroutesAndTypesNodeDown(t *testing.T) {
	// Whether the leave finds jobs in flight is a real-time race against the
	// shard loops (async submissions normally enqueue far faster than jobs
	// complete, but a starved submitter goroutine can lose). Retry the whole
	// scenario on a fresh cluster until a leave catches work mid-air —
	// virtually always the first attempt; bounded for slow or contended
	// machines.
	var rt *Router
	var ids []string
	var before ClusterStats
	for attempt := 0; ; attempt++ {
		rt = newTestRouter(t, Config{Nodes: 2, Seed: 42, DrainDeadline: -1})
		// Flood one departing node with async jobs.
		var victimTenants []string
		for i := 0; len(victimTenants) < 4 && i < 256; i++ {
			tenant := fmt.Sprintf("flood-%d", i)
			if owner, _ := rt.ring.NodeFor(tenant); owner == "n0" {
				victimTenants = append(victimTenants, tenant)
			}
		}
		if len(victimTenants) < 4 {
			t.Fatal("could not find tenants owned by n0")
		}
		ids = ids[:0]
		for i := 0; i < 40; i++ {
			rec := do(rt, http.MethodPost, "/v1/jobs", jobBody(victimTenants[i%len(victimTenants)], false))
			if rec.Code != http.StatusAccepted {
				t.Fatalf("async submit = %d: %s", rec.Code, rec.Body.String())
			}
			ids = append(ids, decodeStatus(t, rec).ID)
		}
		before = rt.Stats()

		if err := rt.Leave("n0"); err != nil {
			t.Fatal(err)
		}
		if s := rt.Stats(); s.ReroutedJobs+s.NodeDownJobs > 0 {
			break
		}
		if attempt == 9 {
			t.Fatal("no leave caught jobs in flight in 10 attempts")
		}
		rt.Close()
	}
	if err := rt.Leave("n1"); err == nil {
		t.Fatal("removing the last node must refuse")
	}

	// Every submitted job must reach a terminal state reachable through the
	// router — drained, rerouted (alias), or typed node_down. Rerouted jobs
	// finish asynchronously on the survivor, so poll with a deadline.
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			rec := do(rt, http.MethodGet, "/v1/jobs/"+id, "")
			if rec.Code != http.StatusOK {
				t.Fatalf("GET %s = %d: %s", id, rec.Code, rec.Body.String())
			}
			st := decodeStatus(t, rec)
			if terminalStatus(st.Status) {
				if st.ErrorCode == string("node_down") && !strings.Contains(st.Error, "node_down") {
					t.Fatalf("node_down job lost its typed error: %+v", st)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stranded non-terminal: %+v", id, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	after := rt.Stats()
	if after.Leaves != 1 || len(after.Nodes) != 1 {
		t.Fatalf("post-leave shape: %+v", after)
	}
	// The drain must have exercised the deadline paths: with an immediate
	// deadline and 40 in-flight jobs, reroutes and/or node_down are certain.
	if after.ReroutedJobs == 0 && after.NodeDownJobs == 0 {
		t.Fatalf("leave exercised no handoff: %+v", after)
	}
	// Monotonic fold: the departed node's final counters are in the
	// retired totals, so nothing regresses.
	if after.Totals.Submitted < before.Totals.Submitted ||
		after.Totals.Completed < before.Totals.Completed ||
		after.Totals.Canceled < before.Totals.Canceled ||
		after.Totals.EventsProcessed < before.Totals.EventsProcessed {
		t.Fatalf("totals regressed across leave: %+v -> %+v", before.Totals, after.Totals)
	}
	// Only the departed node's tenants moved.
	if after.TenantsMoved == 0 {
		t.Fatal("leave moved no tenants despite n0 owning traffic")
	}
	// The healthz aggregate stays up on the survivor.
	if rec := do(rt, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz after leave = %d", rec.Code)
	}
}

func TestRouterHeartbeatAndHealthGating(t *testing.T) {
	rt := newTestRouter(t, Config{Nodes: 2, Seed: 7})
	if up := rt.HeartbeatOnce(); up != 2 {
		t.Fatalf("heartbeat up = %d, want 2", up)
	}
	// Force one node unhealthy: its tenants spill to the live node.
	if !rt.SetNodeHealth("n0", false) {
		t.Fatal("SetNodeHealth failed")
	}
	var spilled string
	for i := 0; i < 64 && spilled == ""; i++ {
		tenant := fmt.Sprintf("hb-%d", i)
		if owner, _ := rt.ring.NodeFor(tenant); owner == "n0" {
			spilled = tenant
		}
	}
	if spilled == "" {
		t.Fatal("no tenant owned by n0")
	}
	rec := do(rt, http.MethodPost, "/v1/jobs", jobBody(spilled, true))
	if rec.Code != http.StatusOK {
		t.Fatalf("spill submit = %d", rec.Code)
	}
	if id := decodeStatus(t, rec).ID; !strings.HasPrefix(id, "job-n1-") {
		t.Fatalf("unhealthy owner still served: id %q", id)
	}
	// Both nodes down: the router reports unavailable rather than routing.
	rt.SetNodeHealth("n1", false)
	if rec := do(rt, http.MethodGet, "/healthz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with all down = %d", rec.Code)
	}
	if rec := do(rt, http.MethodPost, "/v1/jobs", jobBody("hb-x", true)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with all down = %d", rec.Code)
	}
	// A heartbeat restores health (the pools are actually fine).
	if up := rt.HeartbeatOnce(); up != 2 {
		t.Fatalf("heartbeat after recovery = %d", up)
	}
	s := rt.Stats()
	if s.Heartbeats != 2 {
		t.Fatalf("heartbeats = %d", s.Heartbeats)
	}
	for _, n := range s.Nodes {
		if !n.Healthy {
			t.Fatalf("node %s still unhealthy after heartbeat", n.Name)
		}
	}
}
