package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
)

// respBuf is a minimal in-memory http.ResponseWriter: the router forwards
// requests into node muxes and copies status, headers and body out verbatim,
// so a single-node cluster stays byte-identical to a bare api.Server.
type respBuf struct {
	code        int
	header      http.Header
	buf         bytes.Buffer
	wroteHeader bool
}

func newRespBuf() *respBuf {
	return &respBuf{code: http.StatusOK, header: make(http.Header)}
}

func (b *respBuf) Header() http.Header { return b.header }

func (b *respBuf) WriteHeader(code int) {
	if b.wroteHeader {
		return
	}
	b.code = code
	b.wroteHeader = true
}

func (b *respBuf) Write(p []byte) (int, error) {
	b.wroteHeader = true
	return b.buf.Write(p)
}

// copyTo replays the recorded response onto a real writer.
func (b *respBuf) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		w.Header()[k] = vs
	}
	w.WriteHeader(b.code)
	_, _ = w.Write(b.buf.Bytes())
}

// forward runs one synthetic request through a node's handler. target is the
// path (plus optional query); body may be nil.
func forward(h http.Handler, method, target string, body []byte) *respBuf {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, target, rd)
	if err != nil {
		rb := newRespBuf()
		rb.code = http.StatusInternalServerError
		return rb
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rb := newRespBuf()
	h.ServeHTTP(rb, req)
	return rb
}

// writeJSON mirrors the api server's compact encoding (Encoder.Encode, so a
// trailing newline) for the router's own responses.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody matches the api server's error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeRaw replays cached response bytes (already api-shaped JSON).
func writeRaw(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// terminalStatus reports whether a wire status string is final.
func terminalStatus(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	up := 0
	for _, n := range rt.nodes {
		if n.healthy && !n.draining {
			up++
		}
	}
	rt.mu.Unlock()
	if up == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleForwardAny forwards node-independent reads (library, experiments) to
// the first live node in name order — deterministic and byte-identical to a
// single node.
func (rt *Router) handleForwardAny(w http.ResponseWriter, r *http.Request) {
	n := rt.firstLiveNode()
	if n == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "router: no healthy nodes"})
		return
	}
	target := r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	forward(n.srv, r.Method, target, nil).copyTo(w)
}

// firstLiveNode returns the healthy, non-draining node with the smallest
// name, or nil.
func (rt *Router) firstLiveNode() *node {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, 0, len(rt.nodes))
	for name, n := range rt.nodes {
		if n.healthy && !n.draining {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	return rt.nodes[names[0]]
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "router: reading request body: " + err.Error()})
		return
	}
	// Routing needs only the tenant; full decode (and its error surface)
	// stays the node's job so responses match a single node byte-for-byte.
	var meta struct {
		Tenant string `json:"tenant"`
	}
	_ = json.Unmarshal(body, &meta)
	rt.mu.Lock()
	rt.routedSubmits++
	rt.mu.Unlock()
	rb, n := rt.routeSubmit(meta.Tenant, body)
	if rb == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "router: no healthy nodes"})
		return
	}
	var jr struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if json.Unmarshal(rb.buf.Bytes(), &jr) == nil && jr.ID != "" {
		rt.mu.Lock()
		rt.registerLocked(jr.ID, n.name, meta.Tenant, body, jr.Status)
		rt.mu.Unlock()
	}
	rb.copyTo(w)
}

// routeSubmit picks the tenant's node (ring walk over live nodes) and
// forwards the submission, re-picking when a node rejects because it began
// draining between the pick and the forward.
func (rt *Router) routeSubmit(tenant string, body []byte) (*respBuf, *node) {
	var last *respBuf
	var lastNode *node
	for attempt := 0; attempt < 3; attempt++ {
		rt.mu.Lock()
		name, ok := rt.ring.NodeForWhere(tenant, func(nm string) bool {
			m := rt.nodes[nm]
			return m != nil && m.healthy && !m.draining
		})
		if !ok {
			rt.mu.Unlock()
			return last, lastNode
		}
		n := rt.nodes[name]
		// First sight of a tenant: record its ring owner so later
		// membership changes can account exactly which tenants moved.
		if _, seen := rt.tenants[tenant]; !seen {
			if owner, ok := rt.ring.NodeFor(tenant); ok {
				rt.tenants[tenant] = owner
			}
		}
		rt.mu.Unlock()
		rb := forward(n.srv, http.MethodPost, "/v1/jobs", body)
		if rb.code == http.StatusServiceUnavailable {
			// The node started draining under us; try its successor.
			last, lastNode = rb, n
			continue
		}
		return rb, n
	}
	return last, lastNode
}

func (rt *Router) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	rt.routedReads++
	e := rt.resolveLocked(id)
	var n *node
	var override []byte
	overrideCode := http.StatusOK
	if e != nil {
		if e.override != nil {
			override, overrideCode = e.override, e.overrideCode
		} else {
			n = rt.nodes[e.node]
		}
	}
	rt.mu.Unlock()
	if override != nil {
		writeRaw(w, overrideCode, override)
		return
	}
	if n != nil {
		rb := forward(n.srv, http.MethodGet, "/v1/jobs/"+e.id, nil)
		if rb.code == http.StatusOK {
			var jr struct {
				Status string `json:"status"`
			}
			if json.Unmarshal(rb.buf.Bytes(), &jr) == nil && terminalStatus(jr.Status) {
				rt.mu.Lock()
				e.terminal = true
				e.body = nil
				rt.mu.Unlock()
			}
		}
		rb.copyTo(w)
		return
	}
	rt.probe(w, http.MethodGet, "/v1/jobs/"+id)
}

func (rt *Router) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	rt.routedCancels++
	e := rt.resolveLocked(id)
	var n *node
	var override []byte
	if e != nil {
		if e.override != nil {
			// The job's node left the cluster; it is terminal, so a cancel
			// is the same conflict a single node reports.
			override = e.override
		} else {
			n = rt.nodes[e.node]
		}
	}
	rt.mu.Unlock()
	if override != nil {
		writeRaw(w, http.StatusConflict, override)
		return
	}
	if n != nil {
		rb := forward(n.srv, http.MethodDelete, "/v1/jobs/"+e.id, nil)
		if rb.code == http.StatusOK || rb.code == http.StatusConflict {
			rt.mu.Lock()
			e.terminal = true
			e.body = nil
			rt.mu.Unlock()
		}
		rb.copyTo(w)
		return
	}
	rt.probe(w, http.MethodDelete, "/v1/jobs/"+id)
}

// resolveLocked follows an ID's alias chain (bounded). Callers hold rt.mu.
func (rt *Router) resolveLocked(id string) *jobEntry {
	e := rt.jobs[id]
	for hops := 0; e != nil && e.aliasTo != ""; hops++ {
		if hops >= 8 {
			return nil
		}
		e = rt.jobs[e.aliasTo]
	}
	return e
}

// probe forwards an un-tracked job request to every node in name order and
// replays the first non-404 answer (or the last 404, which carries the same
// "unknown job" body a single node produces).
func (rt *Router) probe(w http.ResponseWriter, method, target string) {
	rt.mu.Lock()
	names := make([]string, 0, len(rt.nodes))
	for name := range rt.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	members := make([]*node, 0, len(names))
	for _, name := range names {
		members = append(members, rt.nodes[name])
	}
	rt.mu.Unlock()
	var last *respBuf
	for _, n := range members {
		rb := forward(n.srv, method, target, nil)
		if rb.code != http.StatusNotFound {
			rb.copyTo(w)
			return
		}
		last = rb
	}
	if last == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "router: no healthy nodes"})
		return
	}
	last.copyTo(w)
}
