package router

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// TestRouterLeaveRaceUnderChurn hammers the departing node's worst case:
// submissions, cancels and stats reads in flight from several goroutines, a
// shard-recycle storm on every node (MaxSeriesPoints far below one job's
// telemetry footprint), and a Leave racing all of it with an
// immediately-expiring drain deadline. The invariants: no accepted job
// strands non-terminal, and cluster totals never regress. Run under
// -race -shuffle=on in CI.
func TestRouterLeaveRaceUnderChurn(t *testing.T) {
	rt := newTestRouter(t, Config{
		Nodes:         3,
		Seed:          42,
		DrainDeadline: -1,
		Node: api.PoolConfig{
			Shards:                1,
			VMsPerShard:           2,
			MaxConcurrentPerShard: 2,
			MaxSeriesPoints:       64, // below one busy job's footprint: recycles guaranteed
		},
	})

	var (
		mu  sync.Mutex
		ids []string
	)
	addID := func(id string) {
		mu.Lock()
		ids = append(ids, id)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	// Submitters: async jobs across tenants that span every node.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tenant := fmt.Sprintf("race-%d-%d", w, i%7)
				rec := do(rt, http.MethodPost, "/v1/jobs", jobBody(tenant, false))
				switch rec.Code {
				case http.StatusAccepted, http.StatusOK:
					if id := decodeStatus(t, rec).ID; id != "" {
						addID(id)
					}
				default:
					t.Errorf("submit = %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	// Canceler: deletes whatever has been accepted so far; 200 (canceled),
	// 409 (already terminal) and 404 (id raced the registry) are all legal.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			mu.Lock()
			var id string
			if len(ids) > 0 {
				id = ids[i%len(ids)]
			}
			mu.Unlock()
			if id == "" {
				time.Sleep(time.Millisecond)
				continue
			}
			rec := do(rt, http.MethodDelete, "/v1/jobs/"+id, "")
			switch rec.Code {
			case http.StatusOK, http.StatusConflict, http.StatusNotFound:
			default:
				t.Errorf("cancel %s = %d: %s", id, rec.Code, rec.Body.String())
			}
		}
	}()
	// Stats poller: totals must be monotonic while nodes churn underneath.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev ClusterTotals
		for i := 0; i < 15; i++ {
			tot := rt.Stats().Totals
			if tot.Submitted < prev.Submitted || tot.Completed < prev.Completed ||
				tot.Failed < prev.Failed || tot.Canceled < prev.Canceled ||
				tot.EventsProcessed < prev.EventsProcessed || tot.Recycles < prev.Recycles {
				t.Errorf("totals regressed mid-churn: %+v -> %+v", prev, tot)
			}
			prev = tot
			time.Sleep(time.Millisecond)
		}
	}()
	// The leave, racing everything above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		if err := rt.Leave("n0"); err != nil {
			t.Errorf("leave: %v", err)
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Zero stranded: every accepted job reaches a terminal state through
	// the router (drained, rerouted or node_down).
	deadline := time.Now().Add(90 * time.Second)
	mu.Lock()
	all := append([]string(nil), ids...)
	mu.Unlock()
	for _, id := range all {
		for {
			rec := do(rt, http.MethodGet, "/v1/jobs/"+id, "")
			if rec.Code == http.StatusNotFound {
				// Evicted from a node's bounded history after terminal —
				// not stranded. (History limits are generous here, so this
				// is unexpected; flag it.)
				t.Fatalf("job %s vanished", id)
			}
			if rec.Code != http.StatusOK {
				t.Fatalf("GET %s = %d: %s", id, rec.Code, rec.Body.String())
			}
			if terminalStatus(decodeStatus(t, rec).Status) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stranded: %s", id, rec.Body.String())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The recycle storm must actually have fired, or the test lost its bite.
	s := rt.Stats()
	if s.Totals.Recycles == 0 {
		t.Fatalf("no shard recycles under MaxSeriesPoints=64: %+v", s.Totals)
	}
	if s.Leaves != 1 || len(s.Nodes) != 2 {
		t.Fatalf("post-race shape: leaves=%d nodes=%d", s.Leaves, len(s.Nodes))
	}
}
