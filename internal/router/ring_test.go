package router

import (
	"fmt"
	"testing"
)

func ringWith(vnodes int, seed int64, nodes ...string) *Ring {
	r := NewRing(vnodes, seed)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i)
	}
	return out
}

// assign maps numbered tenants onto the ring.
func assign(r *Ring, tenants int) map[string]string {
	out := make(map[string]string, tenants)
	for i := 0; i < tenants; i++ {
		t := fmt.Sprintf("tenant-%d", i)
		n, ok := r.NodeFor(t)
		if !ok {
			panic("empty ring")
		}
		out[t] = n
	}
	return out
}

// TestRingBalancedSpread pins the balance property: at 10k tenants, every
// node's share stays within [0.5x, 1.5x] of fair share across node counts
// and seeds.
func TestRingBalancedSpread(t *testing.T) {
	const tenants = 10000
	for _, nodes := range []int{2, 3, 5, 8} {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("nodes=%d/seed=%d", nodes, seed), func(t *testing.T) {
				r := ringWith(0, seed, nodeNames(nodes)...)
				load := make(map[string]int)
				for _, owner := range assign(r, tenants) {
					load[owner]++
				}
				if len(load) != nodes {
					t.Fatalf("only %d of %d nodes received tenants: %v", len(load), nodes, load)
				}
				mean := float64(tenants) / float64(nodes)
				for name, got := range load {
					if f := float64(got); f > 1.5*mean || f < 0.5*mean {
						t.Errorf("node %s holds %d tenants, outside [%.0f, %.0f] (mean %.0f): %v",
							name, got, 0.5*mean, 1.5*mean, mean, load)
					}
				}
			})
		}
	}
}

// TestRingMinimalDisruptionOnAdd pins consistent hashing's defining
// property: adding one node moves tenants only onto the new node — no
// tenant is shuffled between surviving nodes.
func TestRingMinimalDisruptionOnAdd(t *testing.T) {
	const tenants = 10000
	for _, tc := range []struct {
		nodes int
		seed  int64
	}{{2, 1}, {3, 7}, {5, 42}} {
		t.Run(fmt.Sprintf("nodes=%d/seed=%d", tc.nodes, tc.seed), func(t *testing.T) {
			r := ringWith(0, tc.seed, nodeNames(tc.nodes)...)
			before := assign(r, tenants)
			newNode := fmt.Sprintf("n%d", tc.nodes)
			r.Add(newNode)
			after := assign(r, tenants)
			moved := 0
			for tenant, owner := range after {
				if owner != before[tenant] {
					moved++
					if owner != newNode {
						t.Fatalf("tenant %s moved %s -> %s, not to the new node %s",
							tenant, before[tenant], owner, newNode)
					}
				}
			}
			// The new node must take roughly its fair share (1/(n+1)).
			fair := float64(tenants) / float64(tc.nodes+1)
			if f := float64(moved); f < 0.5*fair || f > 1.5*fair {
				t.Fatalf("add moved %d tenants, want within [%.0f, %.0f]", moved, 0.5*fair, 1.5*fair)
			}
		})
	}
}

// TestRingMinimalDisruptionOnRemove: removing one node moves exactly that
// node's tenants and nobody else.
func TestRingMinimalDisruptionOnRemove(t *testing.T) {
	const tenants = 10000
	for _, tc := range []struct {
		nodes int
		seed  int64
	}{{3, 1}, {4, 7}, {6, 42}} {
		t.Run(fmt.Sprintf("nodes=%d/seed=%d", tc.nodes, tc.seed), func(t *testing.T) {
			r := ringWith(0, tc.seed, nodeNames(tc.nodes)...)
			before := assign(r, tenants)
			const victim = "n0"
			r.Remove(victim)
			after := assign(r, tenants)
			for tenant, owner := range after {
				was := before[tenant]
				if was == victim {
					if owner == victim {
						t.Fatalf("tenant %s still maps to removed node", tenant)
					}
					continue
				}
				if owner != was {
					t.Fatalf("tenant %s moved %s -> %s though %s was unaffected by the removal",
						tenant, was, owner, was)
				}
			}
		})
	}
}

// TestRingSeededDeterminism: placement is a pure function of (seed,
// membership) — insertion order is irrelevant, and different seeds give
// different placements.
func TestRingSeededDeterminism(t *testing.T) {
	a := ringWith(0, 42, "n0", "n1", "n2")
	b := ringWith(0, 42, "n2", "n0", "n1")
	assignA, assignB := assign(a, 1000), assign(b, 1000)
	for tenant, owner := range assignA {
		if assignB[tenant] != owner {
			t.Fatalf("tenant %s: order-dependent placement %s vs %s", tenant, owner, assignB[tenant])
		}
	}
	c := ringWith(0, 43, "n0", "n1", "n2")
	diff := 0
	for tenant, owner := range assign(c, 1000) {
		if assignA[tenant] != owner {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed change did not move any tenant — placement ignores the seed")
	}
}

// TestRingNodeForWhere: a rejected owner's tenants spill deterministically
// to a live successor; rejecting everyone reports false.
func TestRingNodeForWhere(t *testing.T) {
	r := ringWith(0, 7, "n0", "n1", "n2")
	for i := 0; i < 200; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		owner, _ := r.NodeFor(tenant)
		alt1, ok := r.NodeForWhere(tenant, func(n string) bool { return n != owner })
		if !ok || alt1 == owner {
			t.Fatalf("tenant %s: spill failed (owner %s, got %s ok=%v)", tenant, owner, alt1, ok)
		}
		alt2, ok := r.NodeForWhere(tenant, func(n string) bool { return n != owner })
		if !ok || alt2 != alt1 {
			t.Fatalf("tenant %s: spill not deterministic: %s vs %s", tenant, alt1, alt2)
		}
		if _, ok := r.NodeForWhere(tenant, func(string) bool { return false }); ok {
			t.Fatal("NodeForWhere accepted with all nodes rejected")
		}
	}
	if _, ok := NewRing(0, 1).NodeFor("x"); ok {
		t.Fatal("empty ring returned a node")
	}
}
