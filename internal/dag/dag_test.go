package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds a -> {b, c} -> d with the given work values.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.MustAddNode(Node{ID: "a", Capability: "extract", Work: 1})
	g.MustAddNode(Node{ID: "b", Capability: "stt", Work: 10})
	g.MustAddNode(Node{ID: "c", Capability: "detect", Work: 3})
	g.MustAddNode(Node{ID: "d", Capability: "summarize", Work: 5})
	g.MustAddEdge("a", "b")
	g.MustAddEdge("a", "c")
	g.MustAddEdge("b", "d")
	g.MustAddEdge("c", "d")
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddNodeErrors(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{ID: ""}); err == nil {
		t.Error("empty ID accepted")
	}
	g.MustAddNode(Node{ID: "x"})
	if err := g.AddNode(Node{ID: "x"}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: "a"})
	if err := g.AddEdge("a", "a"); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge("a", "ghost"); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge("ghost", "a"); err == nil {
		t.Error("edge from unknown node accepted")
	}
}

func TestFreezeDetectsCycle(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: "a"})
	g.MustAddNode(Node{ID: "b"})
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "a")
	if err := g.Freeze(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Freeze = %v, want cycle error", err)
	}
}

func TestMutationAfterFreezeFails(t *testing.T) {
	g := diamond(t)
	if err := g.AddNode(Node{ID: "z"}); err == nil {
		t.Error("AddNode after freeze accepted")
	}
	if err := g.AddEdge("a", "d"); err == nil {
		t.Error("AddEdge after freeze accepted")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := diamond(t)
	order := g.TopoOrder()
	pos := map[NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, n := range g.Nodes() {
		for _, s := range g.Successors(n.ID) {
			if pos[n.ID] >= pos[s] {
				t.Fatalf("topo order %v violates edge %s->%s", order, n.ID, s)
			}
		}
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g := diamond(t)
	if r := g.Roots(); len(r) != 1 || r[0] != "a" {
		t.Fatalf("roots = %v, want [a]", r)
	}
	if l := g.Leaves(); len(l) != 1 || l[0] != "d" {
		t.Fatalf("leaves = %v, want [d]", l)
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond(t)
	path, work := g.CriticalPath()
	// a(1) -> b(10) -> d(5) = 16 beats a -> c(3) -> d = 9.
	if work != 16 {
		t.Fatalf("critical work = %v, want 16", work)
	}
	want := []NodeID{"a", "b", "d"}
	if len(path) != 3 {
		t.Fatalf("critical path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", path, want)
		}
	}
}

func TestTotalAndCapabilityWork(t *testing.T) {
	g := diamond(t)
	if got := g.TotalWork(); got != 19 {
		t.Fatalf("total work = %v, want 19", got)
	}
	cw := g.CapabilityWork()
	if cw["stt"] != 10 || cw["summarize"] != 5 {
		t.Fatalf("capability work = %v", cw)
	}
}

func TestStringContainsEdges(t *testing.T) {
	g := diamond(t)
	s := g.String()
	if !strings.Contains(s, "a[extract] -> b,c") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTrackerFrontierFlow(t *testing.T) {
	g := diamond(t)
	tr := NewTracker(g)

	if r := tr.Ready(); len(r) != 1 || r[0] != "a" {
		t.Fatalf("initial ready = %v, want [a]", r)
	}
	if err := tr.Start("a"); err != nil {
		t.Fatal(err)
	}
	newly, err := tr.Complete("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 2 {
		t.Fatalf("newly ready after a = %v, want [b c]", newly)
	}
	// d is not ready until BOTH b and c complete.
	tr.Start("b")
	newly, _ = tr.Complete("b")
	if len(newly) != 0 {
		t.Fatalf("d became ready with c outstanding: %v", newly)
	}
	tr.Start("c")
	newly, _ = tr.Complete("c")
	if len(newly) != 1 || newly[0] != "d" {
		t.Fatalf("newly after c = %v, want [d]", newly)
	}
	tr.Start("d")
	tr.Complete("d")
	if !tr.Done() {
		t.Fatal("tracker not done after all nodes complete")
	}
}

func TestTrackerStateErrors(t *testing.T) {
	g := diamond(t)
	tr := NewTracker(g)
	if err := tr.Start("d"); err == nil {
		t.Error("started pending node")
	}
	if _, err := tr.Complete("a"); err == nil {
		t.Error("completed non-running node")
	}
	tr.Start("a")
	if err := tr.Start("a"); err == nil {
		t.Error("double start accepted")
	}
}

func TestTrackerFailRetry(t *testing.T) {
	g := diamond(t)
	tr := NewTracker(g)
	tr.Start("a")
	if err := tr.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if r := tr.Ready(); len(r) != 1 || r[0] != "a" {
		t.Fatalf("ready after fail = %v, want [a]", r)
	}
	// Retry succeeds.
	tr.Start("a")
	if _, err := tr.Complete("a"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Fail("a"); err == nil {
		t.Error("failed a done node")
	}
}

func TestRemainingCapabilityWork(t *testing.T) {
	g := diamond(t)
	tr := NewTracker(g)
	tr.Start("a")
	tr.Complete("a")
	rem := tr.RemainingCapabilityWork()
	if _, has := rem["extract"]; has {
		t.Error("completed capability still in remaining work")
	}
	if rem["stt"] != 10 {
		t.Errorf("remaining stt work = %v, want 10", rem["stt"])
	}
}

func TestUpcomingCapabilities(t *testing.T) {
	g := diamond(t)
	tr := NewTracker(g)
	up := tr.UpcomingCapabilities(0)
	if !up["extract"] || up["stt"] {
		t.Fatalf("horizon 0 = %v, want only extract", up)
	}
	up = tr.UpcomingCapabilities(1)
	if !up["extract"] || !up["stt"] || !up["detect"] || up["summarize"] {
		t.Fatalf("horizon 1 = %v, want extract+stt+detect", up)
	}
	up = tr.UpcomingCapabilities(2)
	if !up["summarize"] {
		t.Fatalf("horizon 2 = %v, want summarize included", up)
	}
}

// Property: random DAGs (edges only forward in insertion order, so acyclic)
// always freeze, and driving the tracker to completion visits every node
// exactly once in an order consistent with the edges.
func TestPropertyTrackerCompletesRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New()
		ids := make([]NodeID, n)
		for i := 0; i < n; i++ {
			ids[i] = NodeID(rune('A'+i%26)) + NodeID(rune('0'+i/26))
			g.MustAddNode(Node{ID: ids[i], Capability: "c", Work: 1})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					g.MustAddEdge(ids[i], ids[j])
				}
			}
		}
		if err := g.Freeze(); err != nil {
			return false
		}
		tr := NewTracker(g)
		completed := map[NodeID]bool{}
		for !tr.Done() {
			ready := tr.Ready()
			if len(ready) == 0 {
				return false // deadlock
			}
			id := ready[rng.Intn(len(ready))]
			if completed[id] {
				return false
			}
			if err := tr.Start(id); err != nil {
				return false
			}
			// Every predecessor must already be complete.
			for _, p := range g.Predecessors(id) {
				if !completed[p] {
					return false
				}
			}
			if _, err := tr.Complete(id); err != nil {
				return false
			}
			completed[id] = true
		}
		return len(completed) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTrackerUnfrozenPanics(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: "a"})
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker on unfrozen graph did not panic")
		}
	}()
	NewTracker(g)
}

func TestTrackerRemainingNodes(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: "a", Capability: "x", Work: 1})
	g.MustAddNode(Node{ID: "b", Capability: "y", Work: 2})
	g.MustAddNode(Node{ID: "c", Capability: "y", Work: 3})
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(g)
	if got := len(tr.RemainingNodes()); got != 3 {
		t.Fatalf("remaining = %d at start", got)
	}
	if err := tr.Start("a"); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.RemainingNodes()); got != 3 {
		t.Fatalf("remaining = %d with a running (running is not done)", got)
	}
	if _, err := tr.Complete("a"); err != nil {
		t.Fatal(err)
	}
	rem := tr.RemainingNodes()
	if len(rem) != 2 || rem[0].ID != "b" || rem[1].ID != "c" {
		t.Fatalf("remaining after a = %v", rem)
	}
}
