// Package dag implements the directed-acyclic-graph workflow representation
// the paper's planner produces (§3.1): nodes are agent tasks, edges are
// dataflow. The runtime consumes it through frontier iteration (which tasks
// are ready), and the cluster manager consumes it through lookahead queries
// (which capabilities will be needed soon — the §3.2 "Workflow-Aware Cluster
// Management" contract).
package dag

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within one graph.
type NodeID string

// Node is one task in the workflow graph.
type Node struct {
	ID NodeID
	// Capability names the abstract agent interface the task needs
	// (e.g. "speech-to-text"), not a concrete model — fungibility (§3).
	Capability string
	// Label is a human-readable description (shows up in traces).
	Label string
	// Work quantifies the task for profiles (seconds of audio, frame count,
	// token counts...). Interpretation is capability-specific.
	Work float64
	// Metadata carries planner-extracted arguments (e.g. scene index).
	Metadata map[string]string
}

// Graph is a mutable DAG under construction; Freeze validates it. The
// zero value is not usable; call New.
type Graph struct {
	nodes map[NodeID]*Node
	// succ and pred are adjacency sets.
	succ map[NodeID]map[NodeID]bool
	pred map[NodeID]map[NodeID]bool
	// order preserves insertion order for deterministic iteration.
	order  []NodeID
	frozen bool

	// Freeze-time memos. A frozen graph is immutable, so the sorted adjacency
	// lists, the topological order, the node list and the dense node index are
	// computed once at Freeze and shared by every later query — per-job
	// scheduling stops re-sorting and re-allocating them. The returned slices
	// are read-only views; callers must not modify them.
	topo       []NodeID
	nodesList  []*Node
	succSorted map[NodeID][]NodeID
	predSorted map[NodeID][]NodeID
	index      map[NodeID]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		succ:  make(map[NodeID]map[NodeID]bool),
		pred:  make(map[NodeID]map[NodeID]bool),
	}
}

// AddNode inserts a node. Duplicate IDs and empty IDs are errors.
func (g *Graph) AddNode(n Node) error {
	if g.frozen {
		return fmt.Errorf("dag: AddNode on frozen graph")
	}
	if n.ID == "" {
		return fmt.Errorf("dag: node with empty ID")
	}
	if _, dup := g.nodes[n.ID]; dup {
		return fmt.Errorf("dag: duplicate node %q", n.ID)
	}
	cp := n
	g.nodes[n.ID] = &cp
	// Adjacency sets are created lazily by AddEdge: most graphs have many
	// root/leaf/pass-through nodes whose empty maps would otherwise be two
	// dead allocations per node. A nil set reads as empty everywhere
	// (len, range, lookups).
	g.order = append(g.order, n.ID)
	return nil
}

// MustAddNode is AddNode for construction code where failure is a bug.
func (g *Graph) MustAddNode(n Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

// AddEdge inserts a dataflow edge from → to. Unknown endpoints and self
// edges are errors; cycle detection happens at Freeze.
func (g *Graph) AddEdge(from, to NodeID) error {
	if g.frozen {
		return fmt.Errorf("dag: AddEdge on frozen graph")
	}
	if from == to {
		return fmt.Errorf("dag: self edge on %q", from)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("dag: edge from unknown node %q", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("dag: edge to unknown node %q", to)
	}
	if g.succ[from] == nil {
		g.succ[from] = map[NodeID]bool{}
	}
	if g.pred[to] == nil {
		g.pred[to] = map[NodeID]bool{}
	}
	g.succ[from][to] = true
	g.pred[to][from] = true
	return nil
}

// MustAddEdge is AddEdge for construction code where failure is a bug.
func (g *Graph) MustAddEdge(from, to NodeID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// Freeze validates acyclicity and locks the graph. It must be called before
// scheduling queries; mutating after Freeze errors.
func (g *Graph) Freeze() error {
	// The sorted adjacency memos are built first (topoOrder consumes them
	// through Successors for deterministic tie-breaking) and all lists are
	// carved out of ONE slab sized to the exact edge count — two slice
	// headers per node collapse into two map inserts plus a shared backing
	// array. Capacity-capped views keep a later append from bleeding into
	// the neighbouring list.
	edges := 0
	for _, id := range g.order {
		edges += len(g.succ[id])
	}
	slab := make([]NodeID, 0, 2*edges)
	g.succSorted = make(map[NodeID][]NodeID, len(g.order))
	g.predSorted = make(map[NodeID][]NodeID, len(g.order))
	for _, id := range g.order {
		slab, g.succSorted[id] = carveSorted(slab, g.succ[id])
		slab, g.predSorted[id] = carveSorted(slab, g.pred[id])
	}
	topo, err := g.topoOrder()
	if err != nil {
		// The graph stays mutable after a failed Freeze; stale memos would
		// shadow later edge inserts.
		g.succSorted, g.predSorted = nil, nil
		return err
	}
	g.frozen = true
	g.topo = topo
	g.nodesList = make([]*Node, len(g.order))
	g.index = make(map[NodeID]int, len(g.order))
	for i, id := range g.order {
		g.nodesList[i] = g.nodes[id]
		g.index[id] = i
	}
	return nil
}

// carveSorted appends m's keys to slab, sorts that region in place, and
// returns the grown slab plus a capacity-capped view of the region.
func carveSorted(slab []NodeID, m map[NodeID]bool) ([]NodeID, []NodeID) {
	start := len(slab)
	for id := range m {
		slab = append(slab, id)
	}
	list := slab[start:len(slab):len(slab)]
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	return slab, list
}

// Frozen reports whether Freeze succeeded.
func (g *Graph) Frozen() bool { return g.frozen }

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes in insertion order. After Freeze the returned
// slice is a shared read-only view; callers must not modify it.
func (g *Graph) Nodes() []*Node {
	if g.nodesList != nil {
		return g.nodesList
	}
	out := make([]*Node, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	return out
}

// Successors returns the IDs downstream of id, sorted. After Freeze the
// returned slice is a shared read-only view; callers must not modify it.
func (g *Graph) Successors(id NodeID) []NodeID {
	if g.succSorted != nil {
		return g.succSorted[id]
	}
	return sortedKeys(g.succ[id])
}

// Predecessors returns the IDs upstream of id, sorted. After Freeze the
// returned slice is a shared read-only view; callers must not modify it.
func (g *Graph) Predecessors(id NodeID) []NodeID {
	if g.predSorted != nil {
		return g.predSorted[id]
	}
	return sortedKeys(g.pred[id])
}

func sortedKeys(m map[NodeID]bool) []NodeID {
	out := make([]NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roots returns nodes with no predecessors, in insertion order.
func (g *Graph) Roots() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns nodes with no successors, in insertion order.
func (g *Graph) Leaves() []NodeID {
	var out []NodeID
	for _, id := range g.order {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// topoOrder returns a topological order or an error naming a cycle member.
func (g *Graph) topoOrder() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for _, id := range g.order {
		indeg[id] = len(g.pred[id])
	}
	// out doubles as the BFS queue (head is the read cursor): pre-sized to
	// the node count, the whole pass allocates only it and the indeg map.
	out := make([]NodeID, 0, len(g.order))
	for _, id := range g.order {
		if indeg[id] == 0 {
			out = append(out, id)
		}
	}
	for head := 0; head < len(out); head++ {
		for _, s := range g.Successors(out[head]) {
			indeg[s]--
			if indeg[s] == 0 {
				out = append(out, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		for id, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("dag: cycle through node %q", id)
			}
		}
	}
	return out, nil
}

// TopoOrder returns a deterministic topological order (insertion order among
// ready nodes). Panics on an unfrozen graph: callers must validate first.
// The returned slice is the shared order computed at Freeze; callers must
// not modify it.
func (g *Graph) TopoOrder() []NodeID {
	g.mustBeFrozen("TopoOrder")
	return g.topo
}

func (g *Graph) mustBeFrozen(op string) {
	if !g.frozen {
		panic("dag: " + op + " on unfrozen graph")
	}
}

// CriticalPath returns the path with the greatest total Work and that total.
// It lower-bounds workflow latency given unlimited parallelism — the
// quantity Murakkab's execution-path expansion tries to approach.
func (g *Graph) CriticalPath() ([]NodeID, float64) {
	g.mustBeFrozen("CriticalPath")
	dist := map[NodeID]float64{}
	via := map[NodeID]NodeID{}
	var best NodeID
	bestDist := -1.0
	for _, id := range g.TopoOrder() {
		d := g.nodes[id].Work
		for _, p := range g.Predecessors(id) {
			if dist[p]+g.nodes[id].Work > d {
				d = dist[p] + g.nodes[id].Work
				via[id] = p
			}
		}
		dist[id] = d
		if d > bestDist {
			best, bestDist = id, d
		}
	}
	if bestDist < 0 {
		return nil, 0
	}
	var path []NodeID
	for at := best; ; {
		path = append([]NodeID{at}, path...)
		p, ok := via[at]
		if !ok {
			break
		}
		at = p
	}
	return path, bestDist
}

// TotalWork sums Work across all nodes.
func (g *Graph) TotalWork() float64 {
	total := 0.0
	for _, n := range g.nodes {
		total += n.Work
	}
	return total
}

// CapabilityWork sums Work per capability — the demand signal the cluster
// manager uses for proactive scaling.
func (g *Graph) CapabilityWork() map[string]float64 {
	out := map[string]float64{}
	for _, n := range g.nodes {
		out[n.Capability] += n.Work
	}
	return out
}

// String renders a compact description for logs and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	for _, id := range g.order {
		n := g.nodes[id]
		fmt.Fprintf(&b, "%s[%s]", id, n.Capability)
		if succ := g.Successors(id); len(succ) > 0 {
			parts := make([]string, len(succ))
			for i, s := range succ {
				parts[i] = string(s)
			}
			fmt.Fprintf(&b, " -> %s", strings.Join(parts, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}
