package dag

import "fmt"

// Tracker drives execution over a frozen graph: it hands out ready nodes
// (the frontier) as their predecessors complete, and answers the cluster
// manager's lookahead queries about remaining capability demand.
//
// State machine per node: pending → ready → running → done. Failed nodes may
// be retried (returned to ready) — the runtime's failure-injection tests
// exercise this path.
type Tracker struct {
	g *Graph
	// cells is indexed by the graph's freeze-time node index: dense state
	// instead of two per-node maps, so a tracker costs two allocations and
	// state transitions never hash.
	cells []trackerCell
	done  int
}

type trackerCell struct {
	state   nodeState
	waiting int32 // unfinished predecessor count
}

type nodeState int32

const (
	statePending nodeState = iota
	stateReady
	stateRunning
	stateDone
)

// NewTracker creates a tracker over a frozen graph.
func NewTracker(g *Graph) *Tracker {
	g.mustBeFrozen("NewTracker")
	t := &Tracker{g: g, cells: make([]trackerCell, g.Len())}
	for i, n := range g.Nodes() {
		np := len(g.Predecessors(n.ID))
		t.cells[i].waiting = int32(np)
		if np == 0 {
			t.cells[i].state = stateReady
		}
	}
	return t
}

// cell returns the tracker cell for id, or nil for an unknown node.
func (t *Tracker) cell(id NodeID) *trackerCell {
	i, ok := t.g.index[id]
	if !ok {
		return nil
	}
	return &t.cells[i]
}

// Graph returns the underlying graph.
func (t *Tracker) Graph() *Graph { return t.g }

// Ready returns IDs currently ready to run, in graph insertion order.
func (t *Tracker) Ready() []NodeID { return t.AppendReady(nil) }

// AppendReady appends the currently-ready IDs to buf (graph insertion
// order) and returns the extended slice, letting hot paths reuse a scratch
// buffer instead of allocating one per frontier scan.
func (t *Tracker) AppendReady(buf []NodeID) []NodeID {
	for i, n := range t.g.Nodes() {
		if t.cells[i].state == stateReady {
			buf = append(buf, n.ID)
		}
	}
	return buf
}

// Start transitions a ready node to running.
func (t *Tracker) Start(id NodeID) error {
	c := t.cell(id)
	if c == nil || c.state != stateReady {
		return fmt.Errorf("dag: Start(%q) in state %v", id, t.stateOf(id))
	}
	c.state = stateRunning
	return nil
}

// stateOf reports the state for error messages; unknown nodes read as
// pending, matching the old map-backed zero value.
func (t *Tracker) stateOf(id NodeID) nodeState {
	if c := t.cell(id); c != nil {
		return c.state
	}
	return statePending
}

// Complete transitions a running node to done and returns any newly-ready
// successors (in deterministic order).
func (t *Tracker) Complete(id NodeID) ([]NodeID, error) {
	return t.CompleteAppend(id, nil)
}

// CompleteAppend is Complete with a caller-supplied scratch buffer: newly
// ready successors are appended to buf and the extended slice returned, so a
// hot dispatch loop completes nodes without allocating a frontier slice per
// task.
func (t *Tracker) CompleteAppend(id NodeID, buf []NodeID) ([]NodeID, error) {
	c := t.cell(id)
	if c == nil || c.state != stateRunning {
		return buf, fmt.Errorf("dag: Complete(%q) in state %v", id, t.stateOf(id))
	}
	c.state = stateDone
	t.done++
	newlyReady := buf
	for _, s := range t.g.Successors(id) {
		sc := t.cell(s)
		sc.waiting--
		if sc.waiting < 0 {
			panic("dag: predecessor count below zero")
		}
		if sc.waiting == 0 && sc.state == statePending {
			sc.state = stateReady
			newlyReady = append(newlyReady, s)
		}
	}
	return newlyReady, nil
}

// Fail returns a running node to ready so it can be retried (e.g. after a
// spot preemption killed its resources).
func (t *Tracker) Fail(id NodeID) error {
	c := t.cell(id)
	if c == nil || c.state != stateRunning {
		return fmt.Errorf("dag: Fail(%q) in state %v", id, t.stateOf(id))
	}
	c.state = stateReady
	return nil
}

// Done reports whether every node completed.
func (t *Tracker) Done() bool { return t.done == t.g.Len() }

// CompletedCount returns the number of completed nodes.
func (t *Tracker) CompletedCount() int { return t.done }

// Running returns IDs currently running, in graph insertion order.
func (t *Tracker) Running() []NodeID {
	var out []NodeID
	for i, n := range t.g.Nodes() {
		if t.cells[i].state == stateRunning {
			out = append(out, n.ID)
		}
	}
	return out
}

// RemainingNodes returns the nodes that have not completed (pending, ready
// or running), in graph insertion order — the "remaining DAG" view the
// reconfiguration controller re-plans over at stage boundaries.
func (t *Tracker) RemainingNodes() []*Node {
	var out []*Node
	for i, n := range t.g.Nodes() {
		if t.cells[i].state != stateDone {
			out = append(out, n)
		}
	}
	return out
}

// RemainingCapabilityWork sums Work per capability over nodes that are not
// yet done. This is the §3.2 lookahead signal: "if no workflows are expected
// to require a Speech-To-Text agent soon, [the Cluster Manager] can
// reallocate GPU resources from Whisper to Llama".
func (t *Tracker) RemainingCapabilityWork() map[string]float64 {
	out := map[string]float64{}
	for i, n := range t.g.Nodes() {
		if t.cells[i].state != stateDone {
			out[n.Capability] += n.Work
		}
	}
	return out
}

// UpcomingCapabilities returns capabilities of pending+ready nodes whose
// remaining depth from the frontier is at most horizon hops. horizon 0 means
// only ready nodes.
func (t *Tracker) UpcomingCapabilities(horizon int) map[string]bool {
	depth := map[NodeID]int{}
	// BFS from ready/running nodes through pending successors.
	var queue []NodeID
	for i, n := range t.g.Nodes() {
		switch t.cells[i].state {
		case stateReady, stateRunning:
			depth[n.ID] = 0
			queue = append(queue, n.ID)
		}
	}
	out := map[string]bool{}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		d := depth[id]
		if t.stateOf(id) != stateDone && d <= horizon {
			node, _ := t.g.Node(id)
			out[node.Capability] = true
		}
		if d == horizon {
			continue
		}
		for _, s := range t.g.Successors(id) {
			if _, seen := depth[s]; !seen {
				depth[s] = d + 1
				queue = append(queue, s)
			}
		}
	}
	return out
}
