package dag

import "fmt"

// Tracker drives execution over a frozen graph: it hands out ready nodes
// (the frontier) as their predecessors complete, and answers the cluster
// manager's lookahead queries about remaining capability demand.
//
// State machine per node: pending → ready → running → done. Failed nodes may
// be retried (returned to ready) — the runtime's failure-injection tests
// exercise this path.
type Tracker struct {
	g       *Graph
	state   map[NodeID]nodeState
	waiting map[NodeID]int // unfinished predecessor count
	done    int
}

type nodeState int

const (
	statePending nodeState = iota
	stateReady
	stateRunning
	stateDone
)

// NewTracker creates a tracker over a frozen graph.
func NewTracker(g *Graph) *Tracker {
	g.mustBeFrozen("NewTracker")
	t := &Tracker{
		g:       g,
		state:   make(map[NodeID]nodeState, g.Len()),
		waiting: make(map[NodeID]int, g.Len()),
	}
	for _, n := range g.Nodes() {
		preds := g.Predecessors(n.ID)
		t.waiting[n.ID] = len(preds)
		if len(preds) == 0 {
			t.state[n.ID] = stateReady
		} else {
			t.state[n.ID] = statePending
		}
	}
	return t
}

// Graph returns the underlying graph.
func (t *Tracker) Graph() *Graph { return t.g }

// Ready returns IDs currently ready to run, in graph insertion order.
func (t *Tracker) Ready() []NodeID {
	var out []NodeID
	for _, n := range t.g.Nodes() {
		if t.state[n.ID] == stateReady {
			out = append(out, n.ID)
		}
	}
	return out
}

// Start transitions a ready node to running.
func (t *Tracker) Start(id NodeID) error {
	if t.state[id] != stateReady {
		return fmt.Errorf("dag: Start(%q) in state %v", id, t.state[id])
	}
	t.state[id] = stateRunning
	return nil
}

// Complete transitions a running node to done and returns any newly-ready
// successors (in deterministic order).
func (t *Tracker) Complete(id NodeID) ([]NodeID, error) {
	if t.state[id] != stateRunning {
		return nil, fmt.Errorf("dag: Complete(%q) in state %v", id, t.state[id])
	}
	t.state[id] = stateDone
	t.done++
	var newlyReady []NodeID
	for _, s := range t.g.Successors(id) {
		t.waiting[s]--
		if t.waiting[s] < 0 {
			panic("dag: predecessor count below zero")
		}
		if t.waiting[s] == 0 && t.state[s] == statePending {
			t.state[s] = stateReady
			newlyReady = append(newlyReady, s)
		}
	}
	return newlyReady, nil
}

// Fail returns a running node to ready so it can be retried (e.g. after a
// spot preemption killed its resources).
func (t *Tracker) Fail(id NodeID) error {
	if t.state[id] != stateRunning {
		return fmt.Errorf("dag: Fail(%q) in state %v", id, t.state[id])
	}
	t.state[id] = stateReady
	return nil
}

// Done reports whether every node completed.
func (t *Tracker) Done() bool { return t.done == t.g.Len() }

// CompletedCount returns the number of completed nodes.
func (t *Tracker) CompletedCount() int { return t.done }

// Running returns IDs currently running, in graph insertion order.
func (t *Tracker) Running() []NodeID {
	var out []NodeID
	for _, n := range t.g.Nodes() {
		if t.state[n.ID] == stateRunning {
			out = append(out, n.ID)
		}
	}
	return out
}

// RemainingNodes returns the nodes that have not completed (pending, ready
// or running), in graph insertion order — the "remaining DAG" view the
// reconfiguration controller re-plans over at stage boundaries.
func (t *Tracker) RemainingNodes() []*Node {
	var out []*Node
	for _, n := range t.g.Nodes() {
		if t.state[n.ID] != stateDone {
			out = append(out, n)
		}
	}
	return out
}

// RemainingCapabilityWork sums Work per capability over nodes that are not
// yet done. This is the §3.2 lookahead signal: "if no workflows are expected
// to require a Speech-To-Text agent soon, [the Cluster Manager] can
// reallocate GPU resources from Whisper to Llama".
func (t *Tracker) RemainingCapabilityWork() map[string]float64 {
	out := map[string]float64{}
	for _, n := range t.g.Nodes() {
		if t.state[n.ID] != stateDone {
			out[n.Capability] += n.Work
		}
	}
	return out
}

// UpcomingCapabilities returns capabilities of pending+ready nodes whose
// remaining depth from the frontier is at most horizon hops. horizon 0 means
// only ready nodes.
func (t *Tracker) UpcomingCapabilities(horizon int) map[string]bool {
	depth := map[NodeID]int{}
	// BFS from ready/running nodes through pending successors.
	var queue []NodeID
	for _, n := range t.g.Nodes() {
		switch t.state[n.ID] {
		case stateReady, stateRunning:
			depth[n.ID] = 0
			queue = append(queue, n.ID)
		}
	}
	out := map[string]bool{}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		d := depth[id]
		if t.state[id] != stateDone && d <= horizon {
			node, _ := t.g.Node(id)
			out[node.Capability] = true
		}
		if d == horizon {
			continue
		}
		for _, s := range t.g.Successors(id) {
			if _, seen := depth[s]; !seen {
				depth[s] = d + 1
				queue = append(queue, s)
			}
		}
	}
	return out
}
