package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// FaultKind classifies one injected fault.
type FaultKind int

// Fault kinds. Each names the layer the fault lands in; the victim within
// that layer is chosen at fire time by the event's Pick value, so a trace
// stays replayable even though the set of candidate victims depends on the
// run's own history.
const (
	// FaultEngineCrash takes one serving engine down: active sequences lose
	// their KV cache and re-queue, and the engine reloads weights for the
	// event's DurationS before serving again.
	FaultEngineCrash FaultKind = iota
	// FaultWorkerLoss force-releases one live device allocation (a worker's
	// grant or an engine's), as if only that grant's hardware failed — the
	// host VM stays up.
	FaultWorkerLoss
	// FaultStageTimeout stalls one in-flight worker task by DurationS — a
	// hung stage call that only a watchdog can cut short.
	FaultStageTimeout
	// FaultCallError fails one in-flight or queued engine request with a
	// transient error the caller may retry.
	FaultCallError
)

// String renders the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultEngineCrash:
		return "engine-crash"
	case FaultWorkerLoss:
		return "worker-loss"
	case FaultStageTimeout:
		return "stage-timeout"
	case FaultCallError:
		return "call-error"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one replayable fault: at AtS, a fault of Kind fires against
// the victim selected by Pick. Like FleetEvent traces, a fault trace is
// captured once and replayed identically against every arm of a comparison.
type FaultEvent struct {
	AtS  float64
	Kind FaultKind
	// Pick ∈ [0,1) selects the victim among the candidates alive at fire
	// time (index = floor(Pick·n)): the trace pins the random choice without
	// having to know the future victim population.
	Pick float64
	// DurationS is kind-specific: the weight-reload delay for engine
	// crashes, the stall length for stage timeouts, zero otherwise.
	DurationS float64
}

// FaultSpec parameterizes a FaultTrace: independent Poisson processes per
// fault kind over [0, HorizonS).
type FaultSpec struct {
	// Per-kind mean rates in faults/second; zero disables a kind. At least
	// one must be positive.
	EngineCrashRate  float64
	WorkerLossRate   float64
	StageTimeoutRate float64
	CallErrorRate    float64
	// StallS is the stage-timeout stall length; CrashReloadS the engine
	// reload delay after a crash.
	StallS       float64
	CrashReloadS float64
	// HorizonS bounds the trace; Seed makes it replayable.
	HorizonS float64
	Seed     int64
}

// FaultTrace generates a deterministic fault schedule: each enabled kind
// arrives as an independent Poisson process, all drawn from one seeded
// stream in fixed kind order, merged and sorted by time. A fixed spec
// replays the identical fault history.
func FaultTrace(spec FaultSpec) ([]FaultEvent, error) {
	if spec.HorizonS <= 0 {
		return nil, fmt.Errorf("workload: fault trace horizon must be positive")
	}
	rates := []struct {
		kind FaultKind
		rate float64
		dur  float64
	}{
		{FaultEngineCrash, spec.EngineCrashRate, spec.CrashReloadS},
		{FaultWorkerLoss, spec.WorkerLossRate, 0},
		{FaultStageTimeout, spec.StageTimeoutRate, spec.StallS},
		{FaultCallError, spec.CallErrorRate, 0},
	}
	total := 0.0
	for _, r := range rates {
		if r.rate < 0 {
			return nil, fmt.Errorf("workload: negative %s rate %v", r.kind, r.rate)
		}
		total += r.rate
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: fault trace with all rates zero")
	}
	if spec.StageTimeoutRate > 0 && spec.StallS <= 0 {
		return nil, fmt.Errorf("workload: stage-timeout faults need a positive StallS")
	}
	if spec.EngineCrashRate > 0 && spec.CrashReloadS < 0 {
		return nil, fmt.Errorf("workload: negative CrashReloadS %v", spec.CrashReloadS)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var out []FaultEvent
	for _, r := range rates {
		if r.rate == 0 {
			continue
		}
		t := 0.0
		for {
			t += expSample(rng, r.rate)
			if t >= spec.HorizonS {
				break
			}
			out = append(out, FaultEvent{AtS: t, Kind: r.kind, Pick: rng.Float64(), DurationS: r.dur})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AtS != out[j].AtS {
			return out[i].AtS < out[j].AtS
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Pick < out[j].Pick
	})
	return out, nil
}
