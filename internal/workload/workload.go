// Package workload generates synthetic job streams for scale experiments:
// parameterized video-understanding and newsfeed jobs, mixed-tenant traces
// with Poisson arrivals, and deterministic seeding throughout. The paper's
// evaluation runs one workflow at a time; these generators drive the
// multi-tenant and load-sweep extensions (Figure 2's vision at scale).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/workflow"
)

// VideoJob builds a video-understanding job with the given shape.
func VideoJob(videos, scenesPerVideo int, sceneLenS float64, framesPerScene int,
	c workflow.Constraint) workflow.Job {
	job := workflow.Job{
		Description: "List objects shown/mentioned in the videos",
		Constraint:  c,
		MinQuality:  0.95,
	}
	for i := 0; i < videos; i++ {
		job.Inputs = append(job.Inputs, workflow.VideoInput(
			fmt.Sprintf("video%d.mov", i),
			float64(scenesPerVideo)*sceneLenS, sceneLenS, framesPerScene))
	}
	return job
}

// NewsfeedJob builds a newsfeed job for a user with n topics.
func NewsfeedJob(user string, topics int, c workflow.Constraint) workflow.Job {
	job := workflow.Job{
		Description: "Generate social media newsfeed for " + user,
		Constraint:  c,
		Inputs: []workflow.Input{
			{Name: user, Kind: workflow.InputUser},
		},
	}
	for i := 0; i < topics; i++ {
		job.Inputs = append(job.Inputs, workflow.Input{
			Name:  fmt.Sprintf("topic%d", i),
			Kind:  workflow.InputTopic,
			Attrs: map[string]float64{"queries": 3},
		})
	}
	return job
}

// DocQAJob builds a document question-answering job over n documents.
func DocQAJob(docs int, tokensPerDoc float64, c workflow.Constraint) workflow.Job {
	job := workflow.Job{
		Description: "Answer questions about the documents",
		Constraint:  c,
	}
	for i := 0; i < docs; i++ {
		job.Inputs = append(job.Inputs, workflow.Input{
			Name:  fmt.Sprintf("doc%d.pdf", i),
			Kind:  workflow.InputDoc,
			Attrs: map[string]float64{"tokens": tokensPerDoc},
		})
	}
	return job
}

// Arrival is one job arriving at a simulated time for a tenant.
type Arrival struct {
	AtS    float64
	Tenant string
	Job    workflow.Job
}

// MixSpec weights job kinds in a trace.
type MixSpec struct {
	// VideoWeight / NewsfeedWeight / DocQAWeight are relative frequencies;
	// they need not sum to 1.
	VideoWeight    float64
	NewsfeedWeight float64
	DocQAWeight    float64
	// Tenants is the tenant population; arrivals round-robin with jitter.
	Tenants []string
	// Constraint applies to every generated job.
	Constraint workflow.Constraint
	// VideoScenes overrides the per-video scene count (default 4).
	VideoScenes int
	// NewsfeedTopics pins the topic count when > 0; otherwise topics vary
	// uniformly in [2,4] per arrival.
	NewsfeedTopics int
	// DocQADocs pins the document count when > 0; otherwise it varies
	// uniformly in [2,4] per arrival.
	DocQADocs int
}

// DefaultMix is a video-heavy mix over three tenants.
func DefaultMix() MixSpec {
	return MixSpec{
		VideoWeight:    0.5,
		NewsfeedWeight: 0.35,
		DocQAWeight:    0.15,
		Tenants:        []string{"alice", "bob", "carol"},
		Constraint:     workflow.MinCost,
	}
}

// ServiceMix is the serving-daemon request mix: a larger tenant population
// (so tenant→shard hashing spreads load) issuing small, highly-repetitive
// requests — the high-rate regime an AIWaaS front end actually sees, where
// per-request testbed provisioning and planning dominate and a shared
// runtime's warm engines and caches pay off.
func ServiceMix() MixSpec {
	return MixSpec{
		VideoWeight:    0.3,
		NewsfeedWeight: 0.45,
		DocQAWeight:    0.25,
		Tenants: []string{
			"alice", "bob", "carol", "dave",
			"erin", "frank", "grace", "heidi",
		},
		Constraint:     workflow.MinCost,
		VideoScenes:    2,
		NewsfeedTopics: 2,
		DocQADocs:      2,
	}
}

// PoissonTrace generates arrivals with exponential inter-arrival times at
// the given mean rate (jobs/second) over [0, horizonS). Deterministic for a
// fixed seed.
func PoissonTrace(mix MixSpec, rate, horizonS float64, seed int64) ([]Arrival, error) {
	if rate <= 0 || horizonS <= 0 {
		return nil, fmt.Errorf("workload: rate and horizon must be positive")
	}
	total := mix.VideoWeight + mix.NewsfeedWeight + mix.DocQAWeight
	if total <= 0 {
		return nil, fmt.Errorf("workload: mix has no weight")
	}
	if len(mix.Tenants) == 0 {
		return nil, fmt.Errorf("workload: mix has no tenants")
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Arrival
	t := 0.0
	for {
		t += expSample(rng, rate)
		if t >= horizonS {
			break
		}
		tenant := mix.Tenants[rng.Intn(len(mix.Tenants))]
		u := rng.Float64() * total
		scenes := mix.VideoScenes
		if scenes <= 0 {
			scenes = 4
		}
		var job workflow.Job
		switch {
		case u < mix.VideoWeight:
			// Small videos keep trace experiments fast: 1 video per job.
			job = VideoJob(1, scenes, 30, 24, mix.Constraint)
		case u < mix.VideoWeight+mix.NewsfeedWeight:
			topics := mix.NewsfeedTopics
			if topics <= 0 {
				topics = 2 + rng.Intn(3)
			}
			job = NewsfeedJob(tenant, topics, mix.Constraint)
		default:
			docs := mix.DocQADocs
			if docs <= 0 {
				docs = 2 + rng.Intn(3)
			}
			job = DocQAJob(docs, 800, mix.Constraint)
		}
		out = append(out, Arrival{AtS: t, Tenant: tenant, Job: job})
	}
	return out, nil
}

// FleetEventKind classifies one fleet-churn event.
type FleetEventKind int

// Fleet-churn event kinds.
const (
	// FleetAddVM provisions a new VM (capacity grows).
	FleetAddVM FleetEventKind = iota
	// FleetPreemptVM evicts a previously-added spot VM (capacity shrinks).
	FleetPreemptVM
)

// FleetEvent is one replayable fleet-churn event: a VM arriving or a spot VM
// being evicted at a simulated time. Traces of these events drive the
// reconfiguration harness the way CGReplay drives gaming workloads — captured
// once, replayed identically against every arm, so runs are deterministic and
// comparable.
type FleetEvent struct {
	AtS  float64
	Kind FleetEventKind
	// VM is the machine's name; SKU its catalog entry; Spot whether it is
	// preemptible (preempt events only ever name spot VMs).
	VM   string
	SKU  string
	Spot bool
}

// ChurnTrace generates a deterministic fleet-churn schedule over [0,
// horizonS): adds Poisson-arriving spot VMs of the given SKU at addRate
// (VMs/second), and preempts each added VM after an exponential lifetime with
// the given mean (0 disables preemption — pure growth). Events are returned
// in time order; a fixed seed replays the identical fleet history.
func ChurnTrace(skuName string, addRate, meanLifetimeS, horizonS float64, seed int64) ([]FleetEvent, error) {
	if addRate <= 0 || horizonS <= 0 {
		return nil, fmt.Errorf("workload: churn addRate and horizon must be positive")
	}
	if skuName == "" {
		return nil, fmt.Errorf("workload: churn trace needs a VM SKU")
	}
	rng := rand.New(rand.NewSource(seed))
	var out []FleetEvent
	t, n := 0.0, 0
	for {
		t += expSample(rng, addRate)
		if t >= horizonS {
			break
		}
		name := fmt.Sprintf("churn-vm%d", n)
		n++
		out = append(out, FleetEvent{AtS: t, Kind: FleetAddVM, VM: name, SKU: skuName, Spot: true})
		if meanLifetimeS > 0 {
			if gone := t + expSample(rng, 1/meanLifetimeS); gone < horizonS {
				out = append(out, FleetEvent{AtS: gone, Kind: FleetPreemptVM, VM: name, SKU: skuName, Spot: true})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AtS != out[j].AtS {
			return out[i].AtS < out[j].AtS
		}
		return out[i].VM < out[j].VM
	})
	return out, nil
}

func expSample(rng *rand.Rand, rate float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}
