package workload

import (
	"math"
	"testing"

	"repro/internal/workflow"
)

func TestChurnTraceDeterministicAndOrdered(t *testing.T) {
	a, err := ChurnTrace("sku", 0.05, 200, 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnTrace("sku", 0.05, 200, 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty churn trace")
	}
	if len(a) != len(b) {
		t.Fatalf("replay length diverged: %d vs %d", len(a), len(b))
	}
	added := map[string]float64{}
	for i, ev := range a {
		if ev != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, ev, b[i])
		}
		if i > 0 && ev.AtS < a[i-1].AtS {
			t.Fatalf("events out of order at %d", i)
		}
		switch ev.Kind {
		case FleetAddVM:
			if !ev.Spot {
				t.Fatalf("churn add %q is not a spot VM", ev.VM)
			}
			added[ev.VM] = ev.AtS
		case FleetPreemptVM:
			at, ok := added[ev.VM]
			if !ok || ev.AtS <= at {
				t.Fatalf("preempt of %q before its add", ev.VM)
			}
		}
	}
	if other, _ := ChurnTrace("sku", 0.05, 200, 600, 43); len(other) == len(a) {
		same := true
		for i := range other {
			if other[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestChurnTraceNoPreemptsWithoutLifetime(t *testing.T) {
	evs, err := ChurnTrace("sku", 0.05, 0, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev.Kind == FleetPreemptVM {
			t.Fatalf("lifetime 0 produced a preempt: %+v", ev)
		}
	}
	if _, err := ChurnTrace("", 0.05, 0, 600, 1); err == nil {
		t.Fatal("empty SKU accepted")
	}
	if _, err := ChurnTrace("sku", 0, 0, 600, 1); err == nil {
		t.Fatal("zero add rate accepted")
	}
}

func TestVideoJobShape(t *testing.T) {
	job := VideoJob(2, 8, 30, 24, workflow.MinCost)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(job.Inputs) != 2 {
		t.Fatalf("inputs = %d", len(job.Inputs))
	}
	if got := job.Inputs[0].Attr("scenes", 0); got != 8 {
		t.Fatalf("scenes = %v", got)
	}
}

func TestNewsfeedJobShape(t *testing.T) {
	job := NewsfeedJob("alice", 3, workflow.MinLatency)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 user + 3 topics.
	if len(job.Inputs) != 4 {
		t.Fatalf("inputs = %d", len(job.Inputs))
	}
	if job.Inputs[0].Kind != workflow.InputUser {
		t.Fatal("first input not the user profile")
	}
}

func TestDocQAJobShape(t *testing.T) {
	job := DocQAJob(3, 500, workflow.MaxQuality)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(job.Inputs) != 3 || job.Inputs[0].Attr("tokens", 0) != 500 {
		t.Fatalf("inputs = %+v", job.Inputs)
	}
}

func TestPoissonTraceDeterministic(t *testing.T) {
	a, err := PoissonTrace(DefaultMix(), 0.1, 600, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := PoissonTrace(DefaultMix(), 0.1, 600, 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].AtS != b[i].AtS || a[i].Tenant != b[i].Tenant ||
			a[i].Job.Description != b[i].Job.Description {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	c, _ := PoissonTrace(DefaultMix(), 0.1, 600, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].AtS != c[i].AtS {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestPoissonTraceRate(t *testing.T) {
	// Mean arrivals over a long horizon ≈ rate × horizon.
	arr, err := PoissonTrace(DefaultMix(), 0.5, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 10000
	if math.Abs(float64(len(arr))-want) > 0.1*want {
		t.Fatalf("arrivals = %d, want ≈ %.0f", len(arr), want)
	}
	// Ordered in time, inside the horizon.
	for i, a := range arr {
		if a.AtS < 0 || a.AtS >= 10000 {
			t.Fatalf("arrival %d at %v outside horizon", i, a.AtS)
		}
		if i > 0 && arr[i-1].AtS > a.AtS {
			t.Fatal("arrivals not time-ordered")
		}
	}
}

func TestPoissonTraceMixCoverage(t *testing.T) {
	arr, _ := PoissonTrace(DefaultMix(), 1, 2000, 3)
	kinds := map[string]int{}
	tenants := map[string]int{}
	for _, a := range arr {
		kinds[a.Job.Description]++
		tenants[a.Tenant]++
		if err := a.Job.Validate(); err != nil {
			t.Fatalf("generated invalid job: %v", err)
		}
	}
	if len(kinds) < 3 {
		t.Fatalf("only %d job kinds generated: %v", len(kinds), kinds)
	}
	if len(tenants) != 3 {
		t.Fatalf("tenants = %v", tenants)
	}
}

func TestPoissonTraceErrors(t *testing.T) {
	if _, err := PoissonTrace(DefaultMix(), 0, 100, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := PoissonTrace(DefaultMix(), 1, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := DefaultMix()
	bad.Tenants = nil
	if _, err := PoissonTrace(bad, 1, 100, 1); err == nil {
		t.Error("tenantless mix accepted")
	}
	bad = DefaultMix()
	bad.VideoWeight, bad.NewsfeedWeight, bad.DocQAWeight = 0, 0, 0
	if _, err := PoissonTrace(bad, 1, 100, 1); err == nil {
		t.Error("weightless mix accepted")
	}
}
