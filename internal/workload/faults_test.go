package workload

import (
	"reflect"
	"sort"
	"testing"
)

func faultSpec() FaultSpec {
	return FaultSpec{
		EngineCrashRate:  0.01,
		WorkerLossRate:   0.01,
		StageTimeoutRate: 0.02,
		CallErrorRate:    0.05,
		StallS:           60,
		CrashReloadS:     8,
		HorizonS:         2000,
		Seed:             42,
	}
}

func TestFaultTraceDeterministicAndOrdered(t *testing.T) {
	a, err := FaultTrace(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultTrace(faultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty fault trace at these rates over 2000s")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical specs produced different traces")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].AtS < a[j].AtS }) {
		t.Fatal("fault trace not time-sorted")
	}
	kinds := map[FaultKind]int{}
	for _, ev := range a {
		kinds[ev.Kind]++
		if ev.AtS < 0 || ev.AtS >= faultSpec().HorizonS {
			t.Fatalf("event at %v outside [0, %v)", ev.AtS, faultSpec().HorizonS)
		}
		if ev.Pick < 0 || ev.Pick >= 1 {
			t.Fatalf("pick %v outside [0,1)", ev.Pick)
		}
		switch ev.Kind {
		case FaultEngineCrash:
			if ev.DurationS != 8 {
				t.Fatalf("crash event carries reload %v, want 8", ev.DurationS)
			}
		case FaultStageTimeout:
			if ev.DurationS != 60 {
				t.Fatalf("stall event carries %v, want 60", ev.DurationS)
			}
		default:
			if ev.DurationS != 0 {
				t.Fatalf("%s event carries duration %v, want 0", ev.Kind, ev.DurationS)
			}
		}
	}
	for _, k := range []FaultKind{FaultEngineCrash, FaultWorkerLoss, FaultStageTimeout, FaultCallError} {
		if kinds[k] == 0 {
			t.Fatalf("no %s events in a 2000s trace", k)
		}
	}
}

func TestFaultTraceSeedChangesTrace(t *testing.T) {
	spec := faultSpec()
	a, err := FaultTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed++
	b, err := FaultTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFaultTraceErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FaultSpec)
	}{
		{"zero horizon", func(s *FaultSpec) { s.HorizonS = 0 }},
		{"negative rate", func(s *FaultSpec) { s.CallErrorRate = -1 }},
		{"all rates zero", func(s *FaultSpec) {
			s.EngineCrashRate, s.WorkerLossRate, s.StageTimeoutRate, s.CallErrorRate = 0, 0, 0, 0
		}},
		{"timeouts without stall", func(s *FaultSpec) { s.StallS = 0 }},
		{"negative reload", func(s *FaultSpec) { s.CrashReloadS = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := faultSpec()
			tc.mut(&spec)
			if _, err := FaultTrace(spec); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestFaultKindString(t *testing.T) {
	want := map[FaultKind]string{
		FaultEngineCrash:  "engine-crash",
		FaultWorkerLoss:   "worker-loss",
		FaultStageTimeout: "stage-timeout",
		FaultCallError:    "call-error",
		FaultKind(99):     "FaultKind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("FaultKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
