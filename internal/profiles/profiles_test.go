package profiles

import (
	"math"
	"testing"

	"repro/internal/hardware"
)

func cfgGPU(n int) ResourceConfig {
	return ResourceConfig{GPUs: n, GPUType: hardware.GPUA100}
}

func TestResourceConfigValidate(t *testing.T) {
	cases := []struct {
		cfg ResourceConfig
		ok  bool
	}{
		{ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}, true},
		{ResourceConfig{CPUCores: 8}, true},
		{ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100, CPUCores: 8}, true},
		{ResourceConfig{}, false},
		{ResourceConfig{GPUs: 1}, false},                   // type missing
		{ResourceConfig{GPUType: hardware.GPUA100}, false}, // GPUs missing
		{ResourceConfig{GPUs: -1, GPUType: hardware.GPUA100}, false},
		{ResourceConfig{CPUCores: -4}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestResourceConfigString(t *testing.T) {
	cases := []struct {
		cfg  ResourceConfig
		want string
	}{
		{ResourceConfig{GPUs: 2, GPUType: hardware.GPUA100}, "2xA100-80GB"},
		{ResourceConfig{CPUCores: 64}, "64c"},
		{ResourceConfig{GPUs: 1, GPUType: hardware.GPUH100, CPUCores: 32}, "1xH100+32c"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}

func TestHourlyUSD(t *testing.T) {
	cat := hardware.DefaultCatalog()
	gpuRate := cat.MustGPU(hardware.GPUA100).HourlyUSD
	coreRate := cat.MustCPU(hardware.EPYC7V12).HourlyUSDPerCore
	cfg := ResourceConfig{GPUs: 2, GPUType: hardware.GPUA100, CPUCores: 10}
	want := 2*gpuRate + 10*coreRate
	if got := cfg.HourlyUSD(cat, hardware.EPYC7V12); math.Abs(got-want) > 1e-9 {
		t.Fatalf("HourlyUSD = %v, want %v", got, want)
	}
}

func TestProfileLatency(t *testing.T) {
	p := Profile{BaseS: 2, PerUnitS: 0.5}
	if got := p.LatencyS(10); got != 7 {
		t.Fatalf("LatencyS(10) = %v, want 7", got)
	}
	if got := p.LatencyS(0); got != 2 {
		t.Fatalf("LatencyS(0) = %v, want BaseS", got)
	}
}

func TestProfilePowerIsMarginal(t *testing.T) {
	cat := hardware.DefaultCatalog()
	spec := cat.MustGPU(hardware.GPUA100)
	p := Profile{Config: cfgGPU(2), GPUIntensity: 1}
	want := 2 * (spec.PeakWatts - spec.IdleWatts)
	if got := p.PowerW(cat, hardware.EPYC7V12); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PowerW = %v, want marginal %v", got, want)
	}
	// Zero intensity → zero attributable power.
	p.GPUIntensity = 0
	if got := p.PowerW(cat, hardware.EPYC7V12); got != 0 {
		t.Fatalf("PowerW at idle intensity = %v, want 0", got)
	}
}

func TestProfileEnergyAndCost(t *testing.T) {
	cat := hardware.DefaultCatalog()
	p := Profile{Config: cfgGPU(1), GPUIntensity: 1, BaseS: 0, PerUnitS: 1}
	spec := cat.MustGPU(hardware.GPUA100)
	wantE := (spec.PeakWatts - spec.IdleWatts) * 10
	if got := p.EnergyJ(cat, hardware.EPYC7V12, 10); math.Abs(got-wantE) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want %v", got, wantE)
	}
	wantC := spec.HourlyUSD * 10 / 3600
	if got := p.CostUSD(cat, hardware.EPYC7V12, 10); math.Abs(got-wantC) > 1e-12 {
		t.Fatalf("CostUSD = %v, want %v", got, wantC)
	}
}

func TestStorePutGetReplace(t *testing.T) {
	s := NewStore()
	p := Profile{Implementation: "whisper", Capability: "stt", Config: cfgGPU(1), PerUnitS: 1}
	if err := s.Put(p); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("whisper", cfgGPU(1))
	if !ok || got.PerUnitS != 1 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	p.PerUnitS = 2
	if err := s.Put(p); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", s.Len())
	}
	got, _ = s.Get("whisper", cfgGPU(1))
	if got.PerUnitS != 2 {
		t.Fatalf("replace did not take: %v", got.PerUnitS)
	}
	if _, ok := s.Get("whisper", cfgGPU(2)); ok {
		t.Fatal("Get of absent config succeeded")
	}
}

func TestStorePutRejectsInvalid(t *testing.T) {
	s := NewStore()
	bad := []Profile{
		{Capability: "x", Config: cfgGPU(1)},     // no impl
		{Implementation: "a", Config: cfgGPU(1)}, // no capability
		{Implementation: "a", Capability: "x"},   // empty config
		{Implementation: "a", Capability: "x", Config: cfgGPU(1), PerUnitS: -1},
	}
	for i, p := range bad {
		if err := s.Put(p); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestStoreListingsSorted(t *testing.T) {
	s := NewStore()
	s.MustPut(Profile{Implementation: "b", Capability: "x", Config: cfgGPU(1)})
	s.MustPut(Profile{Implementation: "a", Capability: "x", Config: cfgGPU(1)})
	s.MustPut(Profile{Implementation: "a", Capability: "x", Config: ResourceConfig{CPUCores: 8}})
	impls := s.Implementations()
	if len(impls) != 2 || impls[0] != "a" || impls[1] != "b" {
		t.Fatalf("Implementations = %v", impls)
	}
	ps := s.ForImplementation("a")
	if len(ps) != 2 {
		t.Fatalf("ForImplementation(a) len = %d", len(ps))
	}
}
