package profiles

import (
	"fmt"
	"reflect"
	"testing"
)

func testProfile(impl string, cores int, quality float64) Profile {
	return Profile{
		Implementation: impl,
		Capability:     "cap",
		Config:         ResourceConfig{CPUCores: cores},
		BaseS:          1,
		PerUnitS:       0.1,
		CPUIntensity:   0.5,
		Quality:        quality,
	}
}

func storeOf(t *testing.T, ps ...Profile) *Store {
	t.Helper()
	st := NewStore()
	for _, p := range ps {
		if err := st.Put(p); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestRegistrySharedBuildsOnce(t *testing.T) {
	reg := NewRegistry()
	builds := 0
	build := func() (*Store, error) {
		builds++
		return storeOf(t, testProfile("m", 4, 0.9)), nil
	}
	for i := 0; i < 3; i++ {
		st, err := reg.Shared("k", build)
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != 1 {
			t.Fatalf("call %d: Len = %d, want 1", i, st.Len())
		}
	}
	if builds != 1 || reg.Builds() != 1 {
		t.Fatalf("builds = %d, reg.Builds() = %d, want 1/1", builds, reg.Builds())
	}
	if got := reg.Keys(); !reflect.DeepEqual(got, []string{"k"}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestRegistryReplicateWarmsWithoutRebuild(t *testing.T) {
	src := NewRegistry()
	for _, key := range []string{"ka", "kb"} {
		key := key
		if _, err := src.Shared(key, func() (*Store, error) {
			return storeOf(t, testProfile("m-"+key, 4, 0.9), testProfile("m-"+key, 8, 0.9)), nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	dst := NewRegistry()
	stats := dst.ReplicateFrom(src)
	if stats.KeysAdded != 2 || stats.KeysUpdated != 0 || stats.KeysCurrent != 0 || stats.Profiles != 4 {
		t.Fatalf("first replication stats = %+v", stats)
	}
	if !reflect.DeepEqual(dst.Keys(), src.Keys()) {
		t.Fatalf("dst keys %v != src keys %v", dst.Keys(), src.Keys())
	}

	// The warmed key must not rebuild: the builder would be recomputation.
	st, err := dst.Shared("ka", func() (*Store, error) {
		return nil, fmt.Errorf("builder ran on a replicated key")
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("replicated store Len = %d, want 2", st.Len())
	}
	if dst.Builds() != 0 {
		t.Fatalf("dst.Builds() = %d, want 0 (warmed by replication)", dst.Builds())
	}

	// Re-replicating identical content takes the generation fast path.
	stats = dst.ReplicateFrom(src)
	if stats.KeysCurrent != 2 || stats.KeysAdded != 0 || stats.KeysUpdated != 0 || stats.Profiles != 0 {
		t.Fatalf("second replication stats = %+v", stats)
	}
}

func TestRegistryReplicateAppliesDelta(t *testing.T) {
	src := NewRegistry()
	if _, err := src.Shared("k", func() (*Store, error) {
		return storeOf(t,
			testProfile("m", 4, 0.9),
			testProfile("m", 8, 0.9),
			testProfile("n", 4, 0.7)), nil
	}); err != nil {
		t.Fatal(err)
	}
	dst := NewRegistry()
	if _, err := dst.Shared("k", func() (*Store, error) {
		// Same key, strict subset plus one stale entry (different quality).
		return storeOf(t,
			testProfile("m", 4, 0.9),
			testProfile("n", 4, 0.5)), nil
	}); err != nil {
		t.Fatal(err)
	}

	stats := dst.ReplicateFrom(src)
	if stats.KeysUpdated != 1 || stats.Profiles != 2 {
		t.Fatalf("delta replication stats = %+v (want 1 key updated, 2 profiles shipped)", stats)
	}
	st, err := dst.Shared("k", func() (*Store, error) {
		return nil, fmt.Errorf("builder ran on a replicated key")
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Fatalf("post-delta Len = %d, want 3", st.Len())
	}
	if p, ok := st.Get("n", ResourceConfig{CPUCores: 4}); !ok || p.Quality != 0.7 {
		t.Fatalf("stale entry not overwritten: %+v ok=%v", p, ok)
	}
}

func TestStoreDiffFromAndEntries(t *testing.T) {
	a := storeOf(t, testProfile("m", 4, 0.9), testProfile("m", 8, 0.9), testProfile("n", 4, 0.7))
	b := storeOf(t, testProfile("m", 4, 0.9))
	delta := a.DiffFrom(b)
	if len(delta) != 2 {
		t.Fatalf("DiffFrom len = %d, want 2: %+v", len(delta), delta)
	}
	if got := a.DiffFrom(a); len(got) != 0 {
		t.Fatalf("self-diff = %+v, want empty", got)
	}
	ents := a.Entries()
	if len(ents) != 3 {
		t.Fatalf("Entries len = %d", len(ents))
	}
	// Deterministic flattening: implementation then config order.
	if ents[0].Implementation != "m" || ents[2].Implementation != "n" {
		t.Fatalf("Entries order: %+v", ents)
	}
}
