package profiles

import (
	"sort"
	"sync"
)

// Registry is a content-keyed collection of memoized profile stores. The
// process-wide Shared function delegates to a default Registry; cluster
// nodes own one Registry each so that profile state can replicate between
// nodes explicitly (as generation deltas) instead of leaking through a
// global. A Registry is goroutine-safe; the build function passed to Shared
// runs while the registry lock is held and must not call back into the same
// Registry.
type Registry struct {
	mu     sync.Mutex
	stores map[string]*Store
	builds int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stores: make(map[string]*Store)}
}

// Shared memoizes store construction under a content key (see the
// package-level Shared for the full contract). The builder runs at most once
// per key per registry; replicated keys never rebuild.
func (g *Registry) Shared(key string, build func() (*Store, error)) (*Store, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if master, ok := g.stores[key]; ok {
		return master.View(), nil
	}
	st, err := build()
	if err != nil {
		return nil, err
	}
	g.builds++
	g.stores[key] = st
	return st.View(), nil
}

// Builds returns how many times a builder actually ran in this registry —
// the recomputation count replication is meant to drive to zero on joining
// nodes.
func (g *Registry) Builds() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.builds
}

// Keys returns the content keys present, sorted.
func (g *Registry) Keys() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.stores))
	for k := range g.stores {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of memoized stores.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.stores)
}

// ReplicationStats accounts one ReplicateFrom call: how many keys were
// touched, how many profile entries actually shipped, and how many keys were
// already current (generation fast path — nothing copied).
type ReplicationStats struct {
	// KeysAdded counts keys absent from the destination that were created.
	KeysAdded int
	// KeysUpdated counts keys present but stale whose delta was applied.
	KeysUpdated int
	// KeysCurrent counts keys skipped because content already matched.
	KeysCurrent int
	// Profiles counts individual profile entries shipped across.
	Profiles int
}

// ReplicateFrom copies every store in src into g as a content-keyed
// generation delta: keys whose destination content already matches are
// skipped outright, and stale keys receive only the entries that differ.
// After replication, g.Shared on any replicated key returns the warmed store
// without running the builder — a joining node warms without recomputation.
// src and g must be distinct registries.
func (g *Registry) ReplicateFrom(src *Registry) ReplicationStats {
	// Snapshot src under its own lock, then apply under g's lock; views are
	// copy-on-write, so the snapshots stay immutable from g's side.
	src.mu.Lock()
	snap := make(map[string]*Store, len(src.stores))
	for k, st := range src.stores {
		snap[k] = st.View()
	}
	src.mu.Unlock()

	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var stats ReplicationStats
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, k := range keys {
		from := snap[k]
		dst, ok := g.stores[k]
		if !ok {
			dst = NewStore()
			delta := from.DiffFrom(dst)
			for _, p := range delta {
				dst.MustPut(p)
			}
			g.stores[k] = dst
			stats.KeysAdded++
			stats.Profiles += len(delta)
			continue
		}
		delta := from.DiffFrom(dst)
		if len(delta) == 0 {
			stats.KeysCurrent++
			continue
		}
		for _, p := range delta {
			dst.MustPut(p)
		}
		stats.KeysUpdated++
		stats.Profiles += len(delta)
	}
	return stats
}

// Entries returns every profile in the store, ordered by implementation name
// then config string — a deterministic flattening used by replication.
func (s *Store) Entries() []Profile {
	impls := s.Implementations()
	out := make([]Profile, 0, s.Len())
	for _, impl := range impls {
		out = append(out, s.byImpl[impl]...)
	}
	return out
}

// DiffFrom returns the entries of s that are absent from base or differ in
// content — the generation delta that, applied to base via Put, makes base's
// content a superset of s. Entries present only in base are left alone
// (replication is additive; profile stores never shrink).
func (s *Store) DiffFrom(base *Store) []Profile {
	var delta []Profile
	for _, impl := range s.Implementations() {
		for _, p := range s.byImpl[impl] {
			have, ok := base.Get(impl, p.Config)
			if !ok || have != p {
				delta = append(delta, p)
			}
		}
	}
	return delta
}

// defaultRegistry backs the package-level Shared for single-process callers.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry that the package-level
// Shared delegates to.
func DefaultRegistry() *Registry { return defaultRegistry }
