// Package profiles implements the execution-profile layer of §3.2: for every
// (implementation, hardware configuration) pair the runtime keeps a profile
// capturing the efficiency-vs-quality surface — latency, power, monetary
// cost, and result quality. Profiles are the *only* information the
// optimizer consumes about an implementation, which is what makes the agent
// library extensible: registering a new model means registering profiles,
// never touching scheduling code.
package profiles

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/hardware"
)

// ResourceConfig is a concrete hardware assignment for one agent execution:
// a number of GPUs of one type and/or a number of CPU cores. It is a valid
// map key (used to index profile stores).
type ResourceConfig struct {
	GPUs     int
	GPUType  hardware.GPUType
	CPUCores int
}

// IsZero reports an empty config.
func (r ResourceConfig) IsZero() bool { return r.GPUs == 0 && r.CPUCores == 0 }

// Validate checks internal consistency.
func (r ResourceConfig) Validate() error {
	if r.GPUs < 0 || r.CPUCores < 0 {
		return fmt.Errorf("profiles: negative resources in %v", r)
	}
	if r.GPUs > 0 && r.GPUType == "" {
		return fmt.Errorf("profiles: GPUs without a GPU type in %v", r)
	}
	if r.GPUs == 0 && r.GPUType != "" {
		return fmt.Errorf("profiles: GPU type without GPUs in %v", r)
	}
	if r.IsZero() {
		return fmt.Errorf("profiles: empty resource config")
	}
	return nil
}

// String renders e.g. "2xA100-80GB+32c" / "64c" / "1xH100". It is on the
// optimizer's enumeration hot path, so it concatenates directly rather than
// going through fmt.
func (r ResourceConfig) String() string {
	switch {
	case r.GPUs > 0 && r.CPUCores > 0:
		return strconv.Itoa(r.GPUs) + "x" + string(r.GPUType) + "+" + strconv.Itoa(r.CPUCores) + "c"
	case r.GPUs > 0:
		return strconv.Itoa(r.GPUs) + "x" + string(r.GPUType)
	default:
		return strconv.Itoa(r.CPUCores) + "c"
	}
}

// AppendTo renders the config exactly as String into buf and returns the
// extended slice, for callers building larger labels or cache keys into a
// reusable scratch.
func (r ResourceConfig) AppendTo(buf []byte) []byte {
	switch {
	case r.GPUs > 0 && r.CPUCores > 0:
		buf = strconv.AppendInt(buf, int64(r.GPUs), 10)
		buf = append(buf, 'x')
		buf = append(buf, r.GPUType...)
		buf = append(buf, '+')
		buf = strconv.AppendInt(buf, int64(r.CPUCores), 10)
		return append(buf, 'c')
	case r.GPUs > 0:
		buf = strconv.AppendInt(buf, int64(r.GPUs), 10)
		buf = append(buf, 'x')
		return append(buf, r.GPUType...)
	default:
		buf = strconv.AppendInt(buf, int64(r.CPUCores), 10)
		return append(buf, 'c')
	}
}

// HourlyUSD prices the config from the catalog: GPUs at their hourly rate
// plus cores at theirs. This is the fractional-rental view the optimizer
// uses to estimate per-task cost.
func (r ResourceConfig) HourlyUSD(cat *hardware.Catalog, cpu hardware.CPUType) float64 {
	total := 0.0
	if r.GPUs > 0 {
		total += float64(r.GPUs) * cat.MustGPU(r.GPUType).HourlyUSD
	}
	if r.CPUCores > 0 {
		total += float64(r.CPUCores) * cat.MustCPU(cpu).HourlyUSDPerCore
	}
	return total
}

// Profile is one measured (implementation, config) execution profile.
// Latency is affine in work: Latency(w) = BaseS + w·PerUnitS. Work units are
// capability-specific (audio seconds, frames, tokens); callers must be
// consistent.
type Profile struct {
	Implementation string
	Capability     string
	Config         ResourceConfig

	// BaseS is fixed per-invocation overhead (model load, dispatch).
	BaseS float64
	// PerUnitS is marginal seconds per work unit.
	PerUnitS float64
	// GPUIntensity / CPUIntensity are the device utilizations the execution
	// sustains, in [0,1]; they drive the power model.
	GPUIntensity float64
	CPUIntensity float64
	// Quality is the result-quality score in [0,1] for this implementation
	// (configs do not change quality — the paper's Table 1 shows hardware
	// levers as quality-neutral).
	Quality float64
}

// LatencyS predicts execution latency for the given work.
func (p Profile) LatencyS(work float64) float64 {
	return p.BaseS + work*p.PerUnitS
}

// PowerW predicts sustained power draw during execution.
func (p Profile) PowerW(cat *hardware.Catalog, cpu hardware.CPUType) float64 {
	total := 0.0
	if p.Config.GPUs > 0 {
		spec := cat.MustGPU(p.Config.GPUType)
		// Marginal power above idle: the devices idle anyway while rented,
		// so a task's attributable power is the active delta.
		total += float64(p.Config.GPUs) * (hardware.GPUPower(spec, p.GPUIntensity) - spec.IdleWatts)
	}
	if p.Config.CPUCores > 0 {
		spec := cat.MustCPU(cpu)
		total += hardware.CPUPower(spec, p.Config.CPUCores, p.CPUIntensity) -
			hardware.CPUPower(spec, p.Config.CPUCores, 0)
	}
	return total
}

// EnergyJ predicts attributable energy for the given work.
func (p Profile) EnergyJ(cat *hardware.Catalog, cpu hardware.CPUType, work float64) float64 {
	return p.PowerW(cat, cpu) * p.LatencyS(work)
}

// CostUSD predicts monetary cost for the given work: config hourly price ×
// occupancy time.
func (p Profile) CostUSD(cat *hardware.Catalog, cpu hardware.CPUType, work float64) float64 {
	return p.Config.HourlyUSD(cat, cpu) * p.LatencyS(work) / 3600
}

// Store indexes profiles by implementation and config.
//
// Stores returned by Shared are copy-on-write views over a memoized master:
// reads share the master's data, and the first mutation transparently
// detaches a private deep copy, so calibration-mutating callers stay
// isolated while everyone else amortizes profiling (§3.3(a)).
type Store struct {
	byImpl map[string][]Profile
	// cow marks the backing data as shared; the first write detaches.
	cow bool
	// gen counts mutations, letting caches keyed on profile content (e.g.
	// the runtime's plan cache) detect staleness in O(1).
	gen int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byImpl: make(map[string][]Profile)}
}

// View returns a copy-on-write view of the store: reads are shared, the
// first mutation detaches a private copy.
func (s *Store) View() *Store {
	return &Store{byImpl: s.byImpl, cow: true}
}

// Gen returns the store's mutation generation (0 for a never-mutated store
// or a fresh view).
func (s *Store) Gen() int { return s.gen }

// detach deep-copies shared backing data before the first write.
func (s *Store) detach() {
	if !s.cow {
		return
	}
	m := make(map[string][]Profile, len(s.byImpl))
	for k, v := range s.byImpl {
		cp := make([]Profile, len(v))
		copy(cp, v)
		m[k] = cp
	}
	s.byImpl = m
	s.cow = false
}

// Put inserts or replaces the profile for (implementation, config).
func (s *Store) Put(p Profile) error {
	if p.Implementation == "" || p.Capability == "" {
		return fmt.Errorf("profiles: profile missing implementation or capability")
	}
	if err := p.Config.Validate(); err != nil {
		return err
	}
	if p.PerUnitS < 0 || p.BaseS < 0 {
		return fmt.Errorf("profiles: negative latency terms in %s/%v", p.Implementation, p.Config)
	}
	s.detach()
	s.gen++
	list := s.byImpl[p.Implementation]
	for i := range list {
		if list[i].Config == p.Config {
			list[i] = p
			return nil
		}
	}
	// Keep each implementation's list sorted by config string so the
	// optimizer's per-enumeration reads need no per-call sort.
	key := p.Config.String()
	i := sort.Search(len(list), func(i int) bool { return list[i].Config.String() > key })
	list = append(list, Profile{})
	copy(list[i+1:], list[i:])
	list[i] = p
	s.byImpl[p.Implementation] = list
	return nil
}

// MustPut is Put for registration code where failure is a bug.
func (s *Store) MustPut(p Profile) {
	if err := s.Put(p); err != nil {
		panic(err)
	}
}

// Get returns the profile for (implementation, config).
func (s *Store) Get(impl string, cfg ResourceConfig) (Profile, bool) {
	for _, p := range s.byImpl[impl] {
		if p.Config == cfg {
			return p, true
		}
	}
	return Profile{}, false
}

// ForImplementation returns all profiles of one implementation, sorted by
// config string for determinism. The list is maintained sorted at Put time,
// so this is a straight copy.
func (s *Store) ForImplementation(impl string) []Profile {
	out := make([]Profile, len(s.byImpl[impl]))
	copy(out, s.byImpl[impl])
	return out
}

// Implementations returns the implementation names present, sorted.
func (s *Store) Implementations() []string {
	out := make([]string, 0, len(s.byImpl))
	for k := range s.byImpl {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the total profile count.
func (s *Store) Len() int {
	n := 0
	for _, l := range s.byImpl {
		n += len(l)
	}
	return n
}

// Shared memoizes store construction under a content key, implementing the
// paper's §3.3(a) amortization: profiling runs once per distinct
// (catalog, library) content and every later caller — each experiment, each
// load point, each testbed — receives a copy-on-write view of the same
// master in O(1). The key must capture everything the builder reads (use
// the catalog/library fingerprints); the builder runs at most once per key.
//
// The registry itself is mutex-guarded; the build function runs while the
// lock is held, so it must not call Shared recursively. Note that callers
// typically derive the key from Library/Catalog fingerprints, and those
// types (like the rest of the simulation) are not goroutine-safe — share a
// Library across goroutines only with external synchronization.
//
// Shared delegates to the process-wide DefaultRegistry; cluster nodes that
// need isolated, replicable profile state hold their own Registry instead.
func Shared(key string, build func() (*Store, error)) (*Store, error) {
	return defaultRegistry.Shared(key, build)
}
