// Package profiles implements the execution-profile layer of §3.2: for every
// (implementation, hardware configuration) pair the runtime keeps a profile
// capturing the efficiency-vs-quality surface — latency, power, monetary
// cost, and result quality. Profiles are the *only* information the
// optimizer consumes about an implementation, which is what makes the agent
// library extensible: registering a new model means registering profiles,
// never touching scheduling code.
package profiles

import (
	"fmt"
	"sort"

	"repro/internal/hardware"
)

// ResourceConfig is a concrete hardware assignment for one agent execution:
// a number of GPUs of one type and/or a number of CPU cores. It is a valid
// map key (used to index profile stores).
type ResourceConfig struct {
	GPUs     int
	GPUType  hardware.GPUType
	CPUCores int
}

// IsZero reports an empty config.
func (r ResourceConfig) IsZero() bool { return r.GPUs == 0 && r.CPUCores == 0 }

// Validate checks internal consistency.
func (r ResourceConfig) Validate() error {
	if r.GPUs < 0 || r.CPUCores < 0 {
		return fmt.Errorf("profiles: negative resources in %v", r)
	}
	if r.GPUs > 0 && r.GPUType == "" {
		return fmt.Errorf("profiles: GPUs without a GPU type in %v", r)
	}
	if r.GPUs == 0 && r.GPUType != "" {
		return fmt.Errorf("profiles: GPU type without GPUs in %v", r)
	}
	if r.IsZero() {
		return fmt.Errorf("profiles: empty resource config")
	}
	return nil
}

// String renders e.g. "2xA100-80GB+32c" / "64c" / "1xH100".
func (r ResourceConfig) String() string {
	switch {
	case r.GPUs > 0 && r.CPUCores > 0:
		return fmt.Sprintf("%dx%s+%dc", r.GPUs, r.GPUType, r.CPUCores)
	case r.GPUs > 0:
		return fmt.Sprintf("%dx%s", r.GPUs, r.GPUType)
	default:
		return fmt.Sprintf("%dc", r.CPUCores)
	}
}

// HourlyUSD prices the config from the catalog: GPUs at their hourly rate
// plus cores at theirs. This is the fractional-rental view the optimizer
// uses to estimate per-task cost.
func (r ResourceConfig) HourlyUSD(cat *hardware.Catalog, cpu hardware.CPUType) float64 {
	total := 0.0
	if r.GPUs > 0 {
		total += float64(r.GPUs) * cat.MustGPU(r.GPUType).HourlyUSD
	}
	if r.CPUCores > 0 {
		total += float64(r.CPUCores) * cat.MustCPU(cpu).HourlyUSDPerCore
	}
	return total
}

// Profile is one measured (implementation, config) execution profile.
// Latency is affine in work: Latency(w) = BaseS + w·PerUnitS. Work units are
// capability-specific (audio seconds, frames, tokens); callers must be
// consistent.
type Profile struct {
	Implementation string
	Capability     string
	Config         ResourceConfig

	// BaseS is fixed per-invocation overhead (model load, dispatch).
	BaseS float64
	// PerUnitS is marginal seconds per work unit.
	PerUnitS float64
	// GPUIntensity / CPUIntensity are the device utilizations the execution
	// sustains, in [0,1]; they drive the power model.
	GPUIntensity float64
	CPUIntensity float64
	// Quality is the result-quality score in [0,1] for this implementation
	// (configs do not change quality — the paper's Table 1 shows hardware
	// levers as quality-neutral).
	Quality float64
}

// LatencyS predicts execution latency for the given work.
func (p Profile) LatencyS(work float64) float64 {
	return p.BaseS + work*p.PerUnitS
}

// PowerW predicts sustained power draw during execution.
func (p Profile) PowerW(cat *hardware.Catalog, cpu hardware.CPUType) float64 {
	total := 0.0
	if p.Config.GPUs > 0 {
		spec := cat.MustGPU(p.Config.GPUType)
		// Marginal power above idle: the devices idle anyway while rented,
		// so a task's attributable power is the active delta.
		total += float64(p.Config.GPUs) * (hardware.GPUPower(spec, p.GPUIntensity) - spec.IdleWatts)
	}
	if p.Config.CPUCores > 0 {
		spec := cat.MustCPU(cpu)
		total += hardware.CPUPower(spec, p.Config.CPUCores, p.CPUIntensity) -
			hardware.CPUPower(spec, p.Config.CPUCores, 0)
	}
	return total
}

// EnergyJ predicts attributable energy for the given work.
func (p Profile) EnergyJ(cat *hardware.Catalog, cpu hardware.CPUType, work float64) float64 {
	return p.PowerW(cat, cpu) * p.LatencyS(work)
}

// CostUSD predicts monetary cost for the given work: config hourly price ×
// occupancy time.
func (p Profile) CostUSD(cat *hardware.Catalog, cpu hardware.CPUType, work float64) float64 {
	return p.Config.HourlyUSD(cat, cpu) * p.LatencyS(work) / 3600
}

// Store indexes profiles by implementation and config.
type Store struct {
	byImpl map[string][]Profile
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byImpl: make(map[string][]Profile)}
}

// Put inserts or replaces the profile for (implementation, config).
func (s *Store) Put(p Profile) error {
	if p.Implementation == "" || p.Capability == "" {
		return fmt.Errorf("profiles: profile missing implementation or capability")
	}
	if err := p.Config.Validate(); err != nil {
		return err
	}
	if p.PerUnitS < 0 || p.BaseS < 0 {
		return fmt.Errorf("profiles: negative latency terms in %s/%v", p.Implementation, p.Config)
	}
	list := s.byImpl[p.Implementation]
	for i := range list {
		if list[i].Config == p.Config {
			list[i] = p
			return nil
		}
	}
	s.byImpl[p.Implementation] = append(list, p)
	return nil
}

// MustPut is Put for registration code where failure is a bug.
func (s *Store) MustPut(p Profile) {
	if err := s.Put(p); err != nil {
		panic(err)
	}
}

// Get returns the profile for (implementation, config).
func (s *Store) Get(impl string, cfg ResourceConfig) (Profile, bool) {
	for _, p := range s.byImpl[impl] {
		if p.Config == cfg {
			return p, true
		}
	}
	return Profile{}, false
}

// ForImplementation returns all profiles of one implementation, sorted by
// config string for determinism.
func (s *Store) ForImplementation(impl string) []Profile {
	out := make([]Profile, len(s.byImpl[impl]))
	copy(out, s.byImpl[impl])
	sort.Slice(out, func(i, j int) bool {
		return out[i].Config.String() < out[j].Config.String()
	})
	return out
}

// Implementations returns the implementation names present, sorted.
func (s *Store) Implementations() []string {
	out := make([]string, 0, len(s.byImpl))
	for k := range s.byImpl {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the total profile count.
func (s *Store) Len() int {
	n := 0
	for _, l := range s.byImpl {
		n += len(l)
	}
	return n
}
