// Package optimizer implements Murakkab's configuration search (§3.2
// Model/Tool Selection + Resource Allocation, §3.3(c)): given a workflow
// DAG, the profile store and current cluster capacity, it chooses — per
// capability — an implementation, a per-worker hardware configuration, a
// degree of task parallelism and (for MAX_QUALITY) a number of redundant
// execution paths, optimizing the job's declared constraint subject to a
// quality floor.
//
// The search is the paper's "greedy search using hierarchy of optimization
// functions": capabilities are decided in descending order of total work
// (the dominant stage first), candidates are pruned by Pareto dominance
// before scoring, and LLM-served capabilities are decided first because
// their engines reserve GPUs that other stages then cannot use.
package optimizer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/hardware"
	"repro/internal/profiles"
	"repro/internal/workflow"
)

// Decision is the chosen execution configuration for one capability.
type Decision struct {
	Capability     string
	Implementation string
	// Config is the per-worker resource grant.
	Config profiles.ResourceConfig
	// Parallelism is the number of concurrent workers for the stage (for
	// LLM capabilities it is the admission width; the engine batches).
	Parallelism int
	// ExecutionPaths > 1 replicates each task across independent reasoning
	// paths and keeps the best result (§3.2 Execution Paths).
	ExecutionPaths int
	// Pinned marks decisions forced by the caller rather than searched.
	Pinned bool
	// AllowScaling permits the cluster manager to autoscale the serving
	// engine behind a pinned LLM decision (pins fix the initial size only).
	AllowScaling bool

	// Estimates backing the decision (per stage, all tasks).
	EstLatencyS float64
	EstCostUSD  float64
	EstEnergyJ  float64
	Quality     float64
}

// Plan is a full workflow execution plan.
type Plan struct {
	Constraint workflow.Constraint
	Decisions  map[string]Decision
	// EstQuality is the work-weighted mean stage quality.
	EstQuality float64
	// EstCostUSD / EstEnergyJ aggregate stage estimates.
	EstCostUSD float64
	EstEnergyJ float64
	// EstLatencyS sums per-stage latency estimates — a stage-serialized upper
	// bound on completion time. It is the completion-objective scalar the
	// reconfiguration controller compares plans by (consistent across plans
	// over the same DAG, which is all a relative comparison needs).
	EstLatencyS float64
}

// Objective collapses a plan's estimates to one lower-is-better scalar for
// the given constraint: cost in USD, energy in joules, completion as the
// stage-serialized latency sum, and quality negated (higher quality = lower
// objective). The reconfiguration controller compares the objective of a
// re-planned remaining DAG against the current plan's over the same DAG.
func (p *Plan) Objective(c workflow.Constraint) float64 {
	switch c {
	case workflow.MinCost:
		return p.EstCostUSD
	case workflow.MinPower:
		return p.EstEnergyJ
	case workflow.MaxQuality:
		return -p.EstQuality
	default: // MinLatency and any future constraint: completion time
		return p.EstLatencyS
	}
}

// Pin forces a capability's implementation and configuration (used by the
// Figure 3 / Table 2 experiments to sweep specific STT configurations, and
// by the §4 setup's fixed NVLM deployment sizes). Parallelism 0 lets the
// optimizer choose the worker count.
type Pin struct {
	Implementation string
	Config         profiles.ResourceConfig
	Parallelism    int
	// ExecutionPaths pins top-k replication (0 or 1 = none). The
	// reconfiguration controller pins in-flight capabilities to their full
	// current decision, which must include replication or re-scoring would
	// understate the quality the plan already bought.
	ExecutionPaths int
	// AllowScaling lets the cluster manager autoscale the engine created
	// for a pinned LLM decision; the pin then fixes only the initial size.
	AllowScaling bool
}

// Options configure one planning pass.
type Options struct {
	Constraint workflow.Constraint
	// MinQuality floors per-stage quality; candidates below it are
	// discarded. Zero disables the floor.
	MinQuality float64
	// RelaxFloor degrades gracefully: when no implementation of a
	// capability meets MinQuality, the highest-quality feasible candidates
	// are used instead of failing the whole plan. Without it, an
	// unsatisfiable floor is an error.
	RelaxFloor bool
	// Pinned forces configurations per capability.
	Pinned map[string]Pin
	// MaxPaths caps execution-path replication under MAX_QUALITY (default 1
	// = no replication).
	MaxPaths int
}

// Optimizer performs configuration search.
//
// An Optimizer carries per-instance scratch state (candidate buffers and
// generation-checked library/profile views), so a single instance must not
// run Plan concurrently from multiple goroutines; concurrent searchers each
// take their own via Clone.
type Optimizer struct {
	cat     *hardware.Catalog
	lib     *agents.Library
	store   *profiles.Store
	cpuType hardware.CPUType

	// implsByCap / profsByImpl memoize the library's and store's defensive
	// copies per generation: enumerate runs once per capability per planned
	// job, and re-cloning the implementation list and profile slices on every
	// search dominated its allocations.
	implsByCap  map[string][]*agents.Implementation
	implsGen    int
	profsByImpl map[string][]profiles.Profile
	profsGen    int
	// enumBuf / pruneBuf are reused across decide calls: candidates are
	// consumed (picked from) before the next capability's enumeration, so the
	// backing arrays amortize to zero allocation per plan. Sized by
	// implementations × profiles × parallelism ladder × execution paths.
	enumBuf  []candidate
	pruneBuf []candidate
	// Per-plan arena scratch, reset (not reallocated) at every Plan call so
	// the buffers survive across stages and re-plans: demand accumulation,
	// the availability GPU map, and the parallelism/paths ladders inside
	// enumerate.
	demandBuf []capDemand
	demandIdx map[string]int
	availGPUs map[hardware.GPUType]int
	ladderBuf []int
	pathsBuf  []int
}

// New creates an optimizer.
func New(cat *hardware.Catalog, lib *agents.Library, store *profiles.Store, cpuType hardware.CPUType) *Optimizer {
	if cat == nil || lib == nil || store == nil {
		panic("optimizer: nil dependency")
	}
	return &Optimizer{cat: cat, lib: lib, store: store, cpuType: cpuType}
}

// Clone returns an optimizer over the same (immutable) catalog, library and
// profile store but with its own scratch state — the way an off-loop plan
// searcher gets a goroutine-local instance.
func (o *Optimizer) Clone() *Optimizer {
	return New(o.cat, o.lib, o.store, o.cpuType)
}

// implementations returns the library's implementations for a capability,
// memoized per library generation.
func (o *Optimizer) implementations(capability string) []*agents.Implementation {
	if o.implsByCap == nil || o.implsGen != o.lib.Gen() {
		o.implsByCap = make(map[string][]*agents.Implementation, 8)
		o.implsGen = o.lib.Gen()
	}
	if impls, ok := o.implsByCap[capability]; ok {
		return impls
	}
	impls := o.lib.Implementations(agents.Capability(capability))
	o.implsByCap[capability] = impls
	return impls
}

// profilesFor returns the store's profiles for an implementation, memoized
// per store generation.
func (o *Optimizer) profilesFor(impl string) []profiles.Profile {
	if o.profsByImpl == nil || o.profsGen != o.store.Gen() {
		o.profsByImpl = make(map[string][]profiles.Profile, 16)
		o.profsGen = o.store.Gen()
	}
	if profs, ok := o.profsByImpl[impl]; ok {
		return profs
	}
	profs := o.store.ForImplementation(impl)
	o.profsByImpl[impl] = profs
	return profs
}

// capDemand summarizes one capability's tasks in a DAG.
type capDemand struct {
	capability string
	tasks      int
	totalWork  float64
	avgWork    float64
	isLLM      bool
}

// Plan chooses a Decision per capability present in the graph.
func (o *Optimizer) Plan(g *dag.Graph, snap cluster.Snapshot, opts Options) (*Plan, error) {
	if !g.Frozen() {
		return nil, fmt.Errorf("optimizer: graph not frozen")
	}
	if opts.MaxPaths <= 0 {
		opts.MaxPaths = 1
	}
	demands := o.demands(g)
	// Hierarchy: LLM capabilities first (their engines reserve GPUs), then
	// by descending total work.
	sort.SliceStable(demands, func(i, j int) bool {
		if demands[i].isLLM != demands[j].isLLM {
			return demands[i].isLLM
		}
		if demands[i].totalWork != demands[j].totalWork {
			return demands[i].totalWork > demands[j].totalWork
		}
		return demands[i].capability < demands[j].capability
	})

	if o.availGPUs == nil {
		o.availGPUs = make(map[hardware.GPUType]int, 4)
	}
	clear(o.availGPUs)
	avail := availability{
		gpus:  o.availGPUs,
		cores: snap.TotalCPUCores,
	}
	for t, n := range snap.TotalGPUs {
		avail.gpus[t] = n
	}

	plan := &Plan{Constraint: opts.Constraint, Decisions: map[string]Decision{}}
	for _, d := range demands {
		dec, err := o.decide(d, avail, opts)
		if err != nil {
			return nil, err
		}
		if d.isLLM {
			// The engine holds its GPUs for the workflow's duration.
			avail.gpus[dec.Config.GPUType] -= dec.Config.GPUs
		}
		plan.Decisions[d.capability] = dec
		plan.EstCostUSD += dec.EstCostUSD
		plan.EstEnergyJ += dec.EstEnergyJ
		plan.EstLatencyS += dec.EstLatencyS
	}

	// Work-weighted quality.
	totalWork, weighted := 0.0, 0.0
	for _, d := range demands {
		dec := plan.Decisions[d.capability]
		totalWork += d.totalWork
		weighted += d.totalWork * dec.Quality
	}
	if totalWork > 0 {
		plan.EstQuality = weighted / totalWork
	}
	return plan, nil
}

// demands summarizes per-capability task demand. The returned slice aliases
// the optimizer's reusable demand arena; it is valid until the next Plan
// call. (Plan's subsequent sort fully orders it, so accumulation order does
// not affect the result.)
func (o *Optimizer) demands(g *dag.Graph) []capDemand {
	if o.demandIdx == nil {
		o.demandIdx = make(map[string]int, 8)
	}
	clear(o.demandIdx)
	llm := agents.LLMCapabilities()
	out := o.demandBuf[:0]
	for _, n := range g.Nodes() {
		i, ok := o.demandIdx[n.Capability]
		if !ok {
			i = len(out)
			o.demandIdx[n.Capability] = i
			out = append(out, capDemand{capability: n.Capability, isLLM: llm[agents.Capability(n.Capability)]})
		}
		out[i].tasks++
		out[i].totalWork += n.Work
	}
	for i := range out {
		out[i].avgWork = out[i].totalWork / float64(out[i].tasks)
	}
	o.demandBuf = out
	return out
}

// availability tracks remaining capacity during the greedy pass.
type availability struct {
	gpus  map[hardware.GPUType]int
	cores int
}

func (a availability) fits(cfg profiles.ResourceConfig) bool {
	if cfg.GPUs > 0 && a.gpus[cfg.GPUType] < cfg.GPUs {
		return false
	}
	return cfg.CPUCores <= a.cores
}

// maxParallel returns how many workers of cfg fit in the availability.
func (a availability) maxParallel(cfg profiles.ResourceConfig) int {
	k := math.MaxInt32
	if cfg.GPUs > 0 {
		k = min(k, a.gpus[cfg.GPUType]/cfg.GPUs)
	}
	if cfg.CPUCores > 0 {
		k = min(k, a.cores/cfg.CPUCores)
	}
	if k == math.MaxInt32 {
		return 0
	}
	return k
}

// candidate is one scored (impl, config, parallelism, paths) option.
type candidate struct {
	impl     string
	cfg      profiles.ResourceConfig
	parallel int
	paths    int
	latency  float64
	cost     float64
	energy   float64
	quality  float64
}

func (o *Optimizer) decide(d capDemand, avail availability, opts Options) (Decision, error) {
	if pin, ok := opts.Pinned[d.capability]; ok {
		return o.applyPin(d, avail, pin)
	}
	cands := o.enumerate(d, avail, opts)
	if len(cands) == 0 && opts.MinQuality > 0 && opts.RelaxFloor {
		// No implementation clears the floor: fall back to the best
		// quality available rather than failing the plan.
		relaxed := opts
		relaxed.MinQuality = 0
		all := o.enumerate(d, avail, relaxed)
		best := 0.0
		for _, c := range all {
			if c.quality > best {
				best = c.quality
			}
		}
		// In-place filter over the shared enumeration buffer (the write index
		// never passes the read index).
		cands = all[:0]
		for _, c := range all {
			if c.quality == best {
				cands = append(cands, c)
			}
		}
	}
	if len(cands) == 0 {
		return Decision{}, fmt.Errorf("optimizer: no feasible configuration for capability %q (quality floor %.2f)",
			d.capability, opts.MinQuality)
	}
	o.pruneBuf = prunedominatedInto(o.pruneBuf[:0], cands)
	cands = o.pruneBuf
	best := pick(cands, opts.Constraint)
	return Decision{
		Capability:     d.capability,
		Implementation: best.impl,
		Config:         best.cfg,
		Parallelism:    best.parallel,
		ExecutionPaths: best.paths,
		EstLatencyS:    best.latency,
		EstCostUSD:     best.cost,
		EstEnergyJ:     best.energy,
		Quality:        best.quality,
	}, nil
}

func (o *Optimizer) applyPin(d capDemand, avail availability, pin Pin) (Decision, error) {
	prof, ok := o.store.Get(pin.Implementation, pin.Config)
	if !ok {
		return Decision{}, fmt.Errorf("optimizer: pinned %s/%v has no profile", pin.Implementation, pin.Config)
	}
	if prof.Capability != d.capability {
		return Decision{}, fmt.Errorf("optimizer: pinned %s provides %q, capability %q required",
			pin.Implementation, prof.Capability, d.capability)
	}
	if !avail.fits(pin.Config) {
		return Decision{}, fmt.Errorf("optimizer: pinned config %v does not fit the cluster", pin.Config)
	}
	k := pin.Parallelism
	if k <= 0 {
		k = min(d.tasks, avail.maxParallel(pin.Config))
		if k == 0 {
			k = 1
		}
	}
	paths := max(pin.ExecutionPaths, 1)
	c := o.score(d, prof, k, paths)
	return Decision{
		Capability:     d.capability,
		Implementation: pin.Implementation,
		Config:         pin.Config,
		Parallelism:    k,
		ExecutionPaths: paths,
		Pinned:         true,
		AllowScaling:   pin.AllowScaling,
		EstLatencyS:    c.latency,
		EstCostUSD:     c.cost,
		EstEnergyJ:     c.energy,
		Quality:        c.quality,
	}, nil
}

// enumerate produces scored candidates across implementations, configs,
// parallelism levels and (under MAX_QUALITY) execution paths. The returned
// slice aliases the optimizer's reusable enumeration buffer; it is valid
// until the next enumerate call.
func (o *Optimizer) enumerate(d capDemand, avail availability, opts Options) []candidate {
	out := o.enumBuf[:0]
	for _, im := range o.implementations(d.capability) {
		for _, prof := range o.profilesFor(im.Name) {
			if prof.Capability != d.capability || !avail.fits(prof.Config) {
				continue
			}
			if opts.MinQuality > 0 && prof.Quality < opts.MinQuality {
				continue
			}
			maxK := min(d.tasks, avail.maxParallel(prof.Config))
			if maxK < 1 {
				continue
			}
			// Parallelism ladder: 1, 2, 4, ... maxK (always include maxK).
			o.ladderBuf = appendParallelLadder(o.ladderBuf[:0], maxK)
			for _, k := range o.ladderBuf {
				paths := append(o.pathsBuf[:0], 1)
				if opts.Constraint == workflow.MaxQuality && opts.MaxPaths > 1 &&
					d.isLLM {
					for p := 2; p <= opts.MaxPaths; p *= 2 {
						paths = append(paths, p)
					}
				}
				o.pathsBuf = paths
				for _, p := range paths {
					out = append(out, o.score(d, prof, k, p))
				}
			}
		}
	}
	o.enumBuf = out
	return out
}

func parallelLadder(maxK int) []int { return appendParallelLadder(nil, maxK) }

// appendParallelLadder appends 1, 2, 4, ... maxK (always including maxK) to
// ks, letting enumerate reuse one ladder buffer across candidates.
func appendParallelLadder(ks []int, maxK int) []int {
	for k := 1; k < maxK; k *= 2 {
		ks = append(ks, k)
	}
	return append(ks, maxK)
}

// score estimates a stage's latency, cost, energy and quality under one
// candidate. Waves = ceil(tasks/k); each wave costs one per-task profile
// latency. Execution paths multiply per-task cost and energy, add a small
// synchronization latency overhead, and lift quality as independent
// attempts: q' = 1-(1-q)^paths.
func (o *Optimizer) score(d capDemand, prof profiles.Profile, k, paths int) candidate {
	perTask := prof.LatencyS(d.avgWork)
	waves := math.Ceil(float64(d.tasks) / float64(k))
	latency := waves * perTask
	costPerTask := prof.CostUSD(o.cat, o.cpuType, d.avgWork)
	energyPerTask := prof.EnergyJ(o.cat, o.cpuType, d.avgWork)
	quality := prof.Quality
	if paths > 1 {
		latency *= 1.05 // top-k selection barrier
		quality = 1 - math.Pow(1-quality, float64(paths))
	}
	return candidate{
		impl:     prof.Implementation,
		cfg:      prof.Config,
		parallel: k,
		paths:    paths,
		latency:  latency,
		cost:     costPerTask * float64(d.tasks) * float64(paths),
		energy:   energyPerTask * float64(d.tasks) * float64(paths),
		quality:  quality,
	}
}

// prunedominated removes candidates strictly dominated on
// (latency, cost, energy, -quality) — the greedy space reduction of §3.3(c).
func prunedominated(cands []candidate) []candidate {
	return prunedominatedInto(nil, cands)
}

// prunedominatedInto appends the non-dominated candidates to out (which must
// not alias cands: every element of cands is read for every dominance check).
func prunedominatedInto(out, cands []candidate) []candidate {
	for i, c := range cands {
		dominated := false
		for j, d := range cands {
			if i == j {
				continue
			}
			if d.latency <= c.latency && d.cost <= c.cost && d.energy <= c.energy && d.quality >= c.quality &&
				(d.latency < c.latency || d.cost < c.cost || d.energy < c.energy || d.quality > c.quality) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// pick selects the constraint-optimal candidate with deterministic
// tie-breaking.
func pick(cands []candidate, c workflow.Constraint) candidate {
	best := cands[0]
	for _, cand := range cands[1:] {
		if better(cand, best, c) {
			best = cand
		}
	}
	return best
}

func better(a, b candidate, c workflow.Constraint) bool {
	var ka, kb [4]float64
	switch c {
	case workflow.MinCost:
		ka = [4]float64{a.cost, a.latency, a.energy, -a.quality}
		kb = [4]float64{b.cost, b.latency, b.energy, -b.quality}
	case workflow.MinLatency:
		ka = [4]float64{a.latency, a.cost, a.energy, -a.quality}
		kb = [4]float64{b.latency, b.cost, b.energy, -b.quality}
	case workflow.MinPower:
		ka = [4]float64{a.energy, a.cost, a.latency, -a.quality}
		kb = [4]float64{b.energy, b.cost, b.latency, -b.quality}
	case workflow.MaxQuality:
		ka = [4]float64{-a.quality, a.latency, a.cost, a.energy}
		kb = [4]float64{-b.quality, b.latency, b.cost, b.energy}
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	// Full tie: prefer the lexicographically smaller impl/config for
	// determinism.
	if a.impl != b.impl {
		return a.impl < b.impl
	}
	return a.cfg.String() < b.cfg.String()
}
