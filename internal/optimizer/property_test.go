package optimizer

import (
	"testing"

	"repro/internal/agents"
	"repro/internal/workflow"
)

// TestPropertyDecisionsAlwaysFeasible: across all constraints and quality
// floors, every decision's per-worker config times its parallelism fits the
// cluster, the implementation provides the right capability, and constraint
// optima are consistent (MIN_X plans never beat themselves on X when
// re-scored).
func TestPropertyDecisionsAlwaysFeasible(t *testing.T) {
	opt, snap, res := setup(t)
	lib := agents.DefaultLibrary()
	floors := []float64{0, 0.85, 0.9, 0.95}
	constraints := []workflow.Constraint{
		workflow.MinCost, workflow.MinLatency, workflow.MinPower, workflow.MaxQuality,
	}
	for _, c := range constraints {
		for _, floor := range floors {
			plan, err := opt.Plan(res.Graph, snap, Options{
				Constraint: c, MinQuality: floor, RelaxFloor: true, MaxPaths: 4,
			})
			if err != nil {
				t.Fatalf("%s floor %.2f: %v", c, floor, err)
			}
			gpuCommit := map[string]int{}
			for cap, d := range plan.Decisions {
				im, ok := lib.Get(d.Implementation)
				if !ok {
					t.Fatalf("%s/%s: unknown impl %s", c, cap, d.Implementation)
				}
				if string(im.Capability) != cap {
					t.Fatalf("%s: impl %s serves %s, assigned to %s",
						c, d.Implementation, im.Capability, cap)
				}
				if !im.Perf.SupportsConfig(d.Config) {
					t.Fatalf("%s/%s: config %v outside envelope", c, cap, d.Config)
				}
				if d.Parallelism < 1 {
					t.Fatalf("%s/%s: parallelism %d", c, cap, d.Parallelism)
				}
				if d.Config.GPUs > 0 {
					gpuCommit[string(d.Config.GPUType)] += d.Config.GPUs * d.Parallelism
				}
				// Worker fleet must fit cluster totals.
				if d.Config.CPUCores*d.Parallelism > snap.TotalCPUCores {
					t.Fatalf("%s/%s: %d×%dc exceeds %d cores",
						c, cap, d.Parallelism, d.Config.CPUCores, snap.TotalCPUCores)
				}
				if d.Config.GPUs > 0 && d.Config.GPUs*d.Parallelism > snap.TotalGPUs[d.Config.GPUType] {
					t.Fatalf("%s/%s: %d×%d GPUs exceeds cluster", c, cap, d.Parallelism, d.Config.GPUs)
				}
				if floor > 0 && d.Quality < floor {
					// RelaxFloor allows this only when no impl meets the
					// floor; verify that's the case.
					best := 0.0
					for _, im2 := range lib.ByCapability(agents.Capability(cap)) {
						if im2.Quality > best {
							best = im2.Quality
						}
					}
					if best >= floor {
						t.Fatalf("%s/%s: quality %.2f below satisfiable floor %.2f",
							c, cap, d.Quality, floor)
					}
				}
			}
		}
	}
}

// TestPropertyConstraintDominance: for each objective, the plan optimized
// for it is at least as good on that objective as plans optimized for the
// other constraints.
func TestPropertyConstraintDominance(t *testing.T) {
	opt, snap, res := setup(t)
	constraints := []workflow.Constraint{
		workflow.MinCost, workflow.MinLatency, workflow.MinPower,
	}
	plans := map[workflow.Constraint]*Plan{}
	for _, c := range constraints {
		p, err := opt.Plan(res.Graph, snap, Options{Constraint: c, MinQuality: 0.9, RelaxFloor: true})
		if err != nil {
			t.Fatal(err)
		}
		plans[c] = p
	}
	objective := func(p *Plan, c workflow.Constraint) float64 {
		switch c {
		case workflow.MinCost:
			return p.EstCostUSD
		case workflow.MinPower:
			return p.EstEnergyJ
		default: // MinLatency: sum of stage latency estimates
			total := 0.0
			for _, d := range p.Decisions {
				total += d.EstLatencyS
			}
			return total
		}
	}
	for _, target := range constraints {
		best := objective(plans[target], target)
		for _, other := range constraints {
			if other == target {
				continue
			}
			if got := objective(plans[other], target); got < best-1e-9 {
				t.Errorf("plan for %s scores %.4f on %s, beating the %s-optimized plan's %.4f",
					other, got, target, target, best)
			}
		}
	}
}
