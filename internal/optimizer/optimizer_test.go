package optimizer

import (
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/planner"
	"repro/internal/profiles"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// setup builds the full stack: catalog, library, profiled store, the §4
// two-VM cluster snapshot, and the video-understanding DAG.
func setup(t *testing.T) (*Optimizer, cluster.Snapshot, *planner.Result) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	lib := agents.DefaultLibrary()
	store, err := agents.NewProfiler(cat).ProfileLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	se := sim.NewEngine()
	cl := cluster.New(se, cat)
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	job := workflow.Job{
		Description: "List objects shown/mentioned in the videos",
		Inputs: []workflow.Input{
			workflow.VideoInput("cats.mov", 240, 30, 24),
			workflow.VideoInput("formula_1.mov", 240, 30, 24),
		},
		Constraint: workflow.MinCost,
	}
	res, err := planner.New(lib).Decompose(job)
	if err != nil {
		t.Fatal(err)
	}
	return New(cat, lib, store, hardware.EPYC7V12), cl.Snapshot(), res
}

func TestPlanCoversAllCapabilities(t *testing.T) {
	opt, snap, res := setup(t)
	plan, err := opt.Plan(res.Graph, snap, Options{Constraint: workflow.MinCost})
	if err != nil {
		t.Fatal(err)
	}
	for cap := range res.Graph.CapabilityWork() {
		if _, ok := plan.Decisions[cap]; !ok {
			t.Errorf("no decision for capability %s", cap)
		}
	}
	for cap, d := range plan.Decisions {
		if d.Parallelism < 1 {
			t.Errorf("%s parallelism = %d", cap, d.Parallelism)
		}
		if d.EstLatencyS <= 0 || d.EstCostUSD <= 0 {
			t.Errorf("%s has non-positive estimates: %+v", cap, d)
		}
	}
}

func TestMinCostWithQualityFloorPicksWhisperOnCPU(t *testing.T) {
	opt, snap, res := setup(t)
	plan, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinCost,
		MinQuality: 0.95,
		RelaxFloor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stt := plan.Decisions[string(agents.CapSpeechToText)]
	// Table 2: "Murakkab selects the CPU configuration to satisfy the
	// MIN_COST constraint". With the quality floor only Whisper qualifies,
	// and its cheapest profile is CPU-only.
	if stt.Implementation != agents.ImplWhisper {
		t.Fatalf("MIN_COST+floor chose %s, want whisper", stt.Implementation)
	}
	if stt.Config.GPUs != 0 {
		t.Fatalf("MIN_COST chose GPU config %v, want CPU-only", stt.Config)
	}
	if stt.Quality < 0.95 {
		t.Fatalf("decision quality %v below floor", stt.Quality)
	}
}

func TestMinCostWithoutFloorPicksCheapestModel(t *testing.T) {
	opt, snap, res := setup(t)
	plan, err := opt.Plan(res.Graph, snap, Options{Constraint: workflow.MinCost})
	if err != nil {
		t.Fatal(err)
	}
	stt := plan.Decisions[string(agents.CapSpeechToText)]
	// Without a floor a cheaper, lower-quality model wins over Whisper —
	// the §5 "Quantifying and Controlling Quality" trade-off made visible.
	if stt.Implementation == agents.ImplWhisper {
		t.Fatal("unfloored MIN_COST still chose whisper")
	}
	if stt.Quality >= 0.95 {
		t.Fatalf("unfloored MIN_COST quality = %v, want a cheaper lower-quality pick", stt.Quality)
	}
	floored, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinCost, MinQuality: 0.95, RelaxFloor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stt.EstCostUSD > floored.Decisions[string(agents.CapSpeechToText)].EstCostUSD {
		t.Fatal("unfloored pick costs more than the floored whisper pick")
	}
}

func TestMinLatencyPicksGPUSTT(t *testing.T) {
	opt, snap, res := setup(t)
	plan, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinLatency,
		MinQuality: 0.95,
		RelaxFloor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stt := plan.Decisions[string(agents.CapSpeechToText)]
	if stt.Config.GPUs == 0 {
		t.Fatalf("MIN_LATENCY chose CPU-only STT %v", stt.Config)
	}
	// And its estimated latency must beat the MIN_COST pick's.
	costPlan, _ := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinCost, MinQuality: 0.95, RelaxFloor: true,
	})
	if stt.EstLatencyS >= costPlan.Decisions[string(agents.CapSpeechToText)].EstLatencyS {
		t.Fatal("MIN_LATENCY STT estimate not faster than MIN_COST's")
	}
}

func TestMinPowerMatchesTable2Direction(t *testing.T) {
	opt, snap, res := setup(t)
	power, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinPower, MinQuality: 0.95, RelaxFloor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	latency, _ := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinLatency, MinQuality: 0.95, RelaxFloor: true,
	})
	sttP := power.Decisions[string(agents.CapSpeechToText)]
	sttL := latency.Decisions[string(agents.CapSpeechToText)]
	if sttP.EstEnergyJ > sttL.EstEnergyJ {
		t.Fatalf("MIN_POWER energy %v exceeds MIN_LATENCY's %v", sttP.EstEnergyJ, sttL.EstEnergyJ)
	}
	if sttP.Config.GPUs != 0 {
		t.Fatalf("MIN_POWER chose a GPU config %v; CPU is the low-energy option (Table 2)", sttP.Config)
	}
}

func TestMaxQualityUsesExecutionPaths(t *testing.T) {
	opt, snap, res := setup(t)
	plan, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MaxQuality,
		MaxPaths:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := plan.Decisions[string(agents.CapSummarization)]
	if sum.ExecutionPaths < 2 {
		t.Fatalf("MAX_QUALITY kept paths = %d, want >= 2", sum.ExecutionPaths)
	}
	single, _ := opt.Plan(res.Graph, snap, Options{Constraint: workflow.MaxQuality})
	if sum.Quality <= single.Decisions[string(agents.CapSummarization)].Quality {
		t.Fatal("extra paths did not raise quality")
	}
	if sum.EstCostUSD <= single.Decisions[string(agents.CapSummarization)].EstCostUSD {
		t.Fatal("extra paths did not raise cost (Table 1 says they must)")
	}
}

func TestPinnedConfigsRespected(t *testing.T) {
	opt, snap, res := setup(t)
	pin := Pin{
		Implementation: agents.ImplWhisper,
		Config:         profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100},
		Parallelism:    1,
	}
	plan, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinCost,
		MinQuality: 0.95,
		RelaxFloor: true,
		Pinned:     map[string]Pin{string(agents.CapSpeechToText): pin},
	})
	if err != nil {
		t.Fatal(err)
	}
	stt := plan.Decisions[string(agents.CapSpeechToText)]
	if !stt.Pinned || stt.Implementation != agents.ImplWhisper || stt.Config != pin.Config || stt.Parallelism != 1 {
		t.Fatalf("pin not respected: %+v", stt)
	}
}

func TestPinErrors(t *testing.T) {
	opt, snap, res := setup(t)
	cases := map[string]Pin{
		"unknown impl": {Implementation: "ghost", Config: profiles.ResourceConfig{CPUCores: 4}},
		"wrong cap":    {Implementation: agents.ImplOpenCV, Config: profiles.ResourceConfig{CPUCores: 4}},
		"unfit config": {Implementation: agents.ImplWhisper, Config: profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUH100}},
	}
	for name, pin := range cases {
		_, err := opt.Plan(res.Graph, snap, Options{
			Constraint: workflow.MinCost,
			Pinned:     map[string]Pin{string(agents.CapSpeechToText): pin},
		})
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestImpossibleQualityFloorErrors(t *testing.T) {
	opt, snap, res := setup(t)
	if _, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinCost,
		MinQuality: 0.999,
	}); err == nil {
		t.Fatal("unsatisfiable quality floor accepted")
	}
}

func TestLLMEngineReservationReducesAvailability(t *testing.T) {
	opt, snap, res := setup(t)
	// Pin NVLM to all 16 A100s: nothing left for GPU STT; a quality floor
	// then forces whisper onto CPUs even under MIN_LATENCY.
	plan, err := opt.Plan(res.Graph, snap, Options{
		Constraint: workflow.MinLatency,
		MinQuality: 0.95,
		RelaxFloor: true,
		Pinned: map[string]Pin{
			string(agents.CapSummarization): {
				Implementation: agents.ImplNVLM,
				Config:         profiles.ResourceConfig{GPUs: 8, GPUType: hardware.GPUA100},
			},
			string(agents.CapEmbedding): {
				Implementation: agents.ImplNVLMEmbed,
				Config:         profiles.ResourceConfig{GPUs: 2, GPUType: hardware.GPUA100},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 16 - 8 - 2 = 6 GPUs left; STT can still use GPUs here. Now reserve
	// more via a bigger summarize pin is impossible (max 8); instead verify
	// the accounting: parallelism × GPUs of STT must be ≤ 6.
	stt := plan.Decisions[string(agents.CapSpeechToText)]
	if stt.Config.GPUs > 0 && stt.Parallelism*stt.Config.GPUs > 6 {
		t.Fatalf("STT over-committed GPUs: %d workers × %d GPUs with only 6 free",
			stt.Parallelism, stt.Config.GPUs)
	}
}

func TestPruneDominated(t *testing.T) {
	cands := []candidate{
		{impl: "a", latency: 10, cost: 10, energy: 10, quality: 0.9},
		{impl: "b", latency: 12, cost: 12, energy: 12, quality: 0.9}, // dominated by a
		{impl: "c", latency: 5, cost: 20, energy: 20, quality: 0.9},  // pareto (fast, pricey)
		{impl: "d", latency: 20, cost: 5, energy: 5, quality: 0.8},   // pareto (cheap)
	}
	out := prunedominated(cands)
	names := map[string]bool{}
	for _, c := range out {
		names[c.impl] = true
	}
	if names["b"] {
		t.Fatal("dominated candidate survived")
	}
	for _, want := range []string{"a", "c", "d"} {
		if !names[want] {
			t.Fatalf("pareto candidate %s pruned", want)
		}
	}
}

func TestDeterministicPlans(t *testing.T) {
	opt, snap, res := setup(t)
	a, err := opt.Plan(res.Graph, snap, Options{Constraint: workflow.MinCost, MinQuality: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := opt.Plan(res.Graph, snap, Options{Constraint: workflow.MinCost, MinQuality: 0.9})
	for cap, da := range a.Decisions {
		db := b.Decisions[cap]
		if da != db {
			t.Fatalf("plan not deterministic for %s: %+v vs %+v", cap, da, db)
		}
	}
}

func TestParallelLadder(t *testing.T) {
	got := parallelLadder(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("ladder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
	got = parallelLadder(5)
	if got[len(got)-1] != 5 {
		t.Fatalf("ladder(5) = %v, must end at 5", got)
	}
	if got2 := parallelLadder(1); len(got2) != 1 || got2[0] != 1 {
		t.Fatalf("ladder(1) = %v", got2)
	}
}

func TestPlanObjectiveSelectsConstraintComponent(t *testing.T) {
	p := &Plan{EstCostUSD: 2, EstEnergyJ: 3, EstLatencyS: 4, EstQuality: 0.9}
	if got := p.Objective(workflow.MinCost); got != 2 {
		t.Fatalf("MinCost objective = %v", got)
	}
	if got := p.Objective(workflow.MinPower); got != 3 {
		t.Fatalf("MinPower objective = %v", got)
	}
	if got := p.Objective(workflow.MinLatency); got != 4 {
		t.Fatalf("MinLatency objective = %v", got)
	}
	if got := p.Objective(workflow.MaxQuality); got != -0.9 {
		t.Fatalf("MaxQuality objective = %v", got)
	}
}
