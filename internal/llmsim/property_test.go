package llmsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
)

// TestPropertyKVConservation drives an engine with randomized request
// streams, resizes and interleavings, and checks the invariants that make
// the simulation trustworthy:
//
//   - KV usage never exceeds capacity at admission time and returns to zero
//     once everything drains;
//   - every submitted request completes exactly once;
//   - completions never run before their admission;
//   - tokens served equals the total submitted work (within float noise).
func TestPropertyKVConservation(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		se := sim.NewEngine()
		cat := hardware.DefaultCatalog()
		cl := cluster.New(se, cat)
		cl.AddVM("vm0", hardware.NDv4SKUName, false)

		spec := simpleSpec()
		spec.KVTokensPerGPU = 500 + rng.Intn(1500)
		spec.MaxBatch = 1 + rng.Intn(8)
		startGPUs := 1 + rng.Intn(4)
		alloc, err := cl.AllocGPUs(startGPUs, hardware.GPUA100)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(se, cat, spec, alloc)
		if err != nil {
			t.Fatal(err)
		}

		n := 5 + rng.Intn(25)
		completed := map[string]int{}
		totalWork := 0.0
		capacityFloor := spec.KVTokensPerGPU // capacity at 1 GPU (resize floor)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("t%d-r%d", trial, i)
			prompt := rng.Intn(capacityFloor / 2)
			output := rng.Intn(capacityFloor / 4)
			totalWork += float64(prompt)*spec.PrefillWeight + float64(output)
			req := &Request{ID: id, PromptTokens: prompt, OutputTokens: output}
			req.OnComplete = func(r *Request) {
				completed[r.ID]++
				if r.CompletedAt < r.AdmittedAt {
					t.Fatalf("trial %d: %s completed before admission", trial, r.ID)
				}
			}
			at := sim.Time(rng.Float64() * 20)
			se.Schedule(at, func() {
				// A shrink may leave usage above the new capacity (admission
				// stalls until it drains); the invariant is that *admission*
				// never grows usage beyond capacity.
				before := eng.KVUsed()
				eng.Submit(req)
				after := eng.KVUsed()
				if after > eng.KVCapacity() && after > before {
					t.Fatalf("trial %d: admission pushed KV %d→%d over capacity %d",
						trial, before, after, eng.KVCapacity())
				}
			})
		}
		// Random resizes between 1 and 4 GPUs.
		for i := 0; i < 3; i++ {
			at := sim.Time(rng.Float64() * 30)
			gpus := 1 + rng.Intn(4)
			se.Schedule(at, func() {
				if cl.FreeGPUs(hardware.GPUA100)+eng.GPUs() < gpus {
					return
				}
				old := engineAllocSwapSafe(t, cl, eng, gpus)
				if old != nil {
					old.Release()
				}
			})
		}
		se.SetEventLimit(1_000_000)
		se.Run()

		if eng.Completed() != n {
			t.Fatalf("trial %d: completed %d of %d", trial, eng.Completed(), n)
		}
		for id, c := range completed {
			if c != 1 {
				t.Fatalf("trial %d: request %s completed %d times", trial, id, c)
			}
		}
		if eng.KVUsed() != 0 {
			t.Fatalf("trial %d: KV not drained: %d", trial, eng.KVUsed())
		}
		if eng.ActiveCount() != 0 || eng.QueueDepth() != 0 {
			t.Fatalf("trial %d: engine not idle", trial)
		}
		served := eng.TokensServed()
		if served < totalWork-1e-3 {
			t.Fatalf("trial %d: served %.3f < submitted %.3f", trial, served, totalWork)
		}
	}
}

func engineAllocSwapSafe(t *testing.T, cl *cluster.Cluster, e *Engine, gpus int) *cluster.GPUAlloc {
	t.Helper()
	old := e.alloc
	// Release first so the new allocation can reuse the devices; the
	// simulation is single-threaded, so nothing intervenes.
	old.Release()
	alloc, err := cl.AllocGPUs(gpus, hardware.GPUA100)
	if err != nil {
		// Restore.
		alloc, err = cl.AllocGPUs(old.Count(), hardware.GPUA100)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Resize(alloc); err != nil {
		t.Fatal(err)
	}
	return nil
}

// TestPropertyLatencyMonotoneInLoad: adding a competing request never makes
// an existing request finish earlier.
func TestPropertyLatencyMonotoneInLoad(t *testing.T) {
	base := func(competitors int) float64 {
		se, _, eng := newTestEngine(t, 1, simpleSpec())
		var done float64
		eng.Submit(&Request{ID: "probe", OutputTokens: 100,
			OnComplete: func(r *Request) { done = r.Latency().Seconds() }})
		for i := 0; i < competitors; i++ {
			eng.Submit(&Request{ID: fmt.Sprintf("c%d", i), OutputTokens: 100})
		}
		se.Run()
		return done
	}
	prev := base(0)
	for c := 1; c <= 6; c++ {
		cur := base(c)
		if cur < prev-1e-9 {
			t.Fatalf("probe latency decreased with load: %d competitors %.3f < %d competitors %.3f",
				c, cur, c-1, prev)
		}
		prev = cur
	}
}
