package llmsim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
)

func newTestEngine(t *testing.T, gpus int, spec ModelSpec) (*sim.Engine, *cluster.Cluster, *Engine) {
	t.Helper()
	se := sim.NewEngine()
	cat := hardware.DefaultCatalog()
	cl := cluster.New(se, cat)
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	alloc, err := cl.AllocGPUs(gpus, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(se, cat, spec, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return se, cl, eng
}

// simpleSpec: 100 units/s per GPU aggregate, 50 units/s per sequence cap.
func simpleSpec() ModelSpec {
	return ModelSpec{
		Name: "test-model", ParamsB: 1,
		AggTokensPerGPUSec: 100, SeqTokensPerSec: 50,
		PrefillWeight: 0.5, KVTokensPerGPU: 1000, MaxBatch: 8,
		RefGPU: hardware.GPUA100, Intensity: 1.0,
	}
}

func TestSingleRequestLatency(t *testing.T) {
	se, _, eng := newTestEngine(t, 1, simpleSpec())
	var done *Request
	r := &Request{ID: "r0", PromptTokens: 100, OutputTokens: 50,
		OnComplete: func(r *Request) { done = r }}
	eng.Submit(r)
	se.Run()
	if done == nil {
		t.Fatal("request never completed")
	}
	// Work = 100×0.5 + 50 = 100 units at per-seq cap 50 u/s → 2 s.
	if got := done.Latency().Seconds(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("latency = %v, want 2", got)
	}
	if eng.Completed() != 1 {
		t.Fatalf("completed = %d", eng.Completed())
	}
	if eng.KVUsed() != 0 {
		t.Fatalf("KV not freed: %d", eng.KVUsed())
	}
}

func TestContinuousBatchingSharesThroughput(t *testing.T) {
	se, _, eng := newTestEngine(t, 1, simpleSpec())
	// 4 concurrent requests of 100 units each: aggregate 100 u/s, per-seq
	// share 25 u/s (below the 50 cap) → all finish together at t=4.
	var finishes []float64
	for i := 0; i < 4; i++ {
		eng.Submit(&Request{
			ID: fmt.Sprintf("r%d", i), PromptTokens: 0, OutputTokens: 100,
			OnComplete: func(r *Request) { finishes = append(finishes, se.Now().Seconds()) },
		})
	}
	se.Run()
	if len(finishes) != 4 {
		t.Fatalf("finished %d, want 4", len(finishes))
	}
	for _, f := range finishes {
		if math.Abs(f-4) > 1e-6 {
			t.Fatalf("finish times %v, want all ≈ 4", finishes)
		}
	}
}

func TestPerSequenceCapLimitsSingleStream(t *testing.T) {
	se, _, eng := newTestEngine(t, 4, simpleSpec())
	// 4 GPUs → aggregate 400 u/s, but a single stream is capped at 50 u/s.
	var latency float64
	eng.Submit(&Request{ID: "solo", OutputTokens: 100,
		OnComplete: func(r *Request) { latency = r.Latency().Seconds() }})
	se.Run()
	if math.Abs(latency-2) > 1e-9 {
		t.Fatalf("solo latency = %v, want 2 (cap-bound, not 0.25)", latency)
	}
}

func TestUtilizationReflectsBatching(t *testing.T) {
	spec := simpleSpec()
	se, cl, eng := newTestEngine(t, 1, spec)
	// Single stream: util = 50/100 = 0.5. Device intensity = util × 1.0.
	eng.Submit(&Request{ID: "a", OutputTokens: 500})
	se.RunUntil(1)
	g := cl.VMs()[0].GPUs()
	var active *cluster.GPU
	for _, gpu := range g {
		if gpu.Util().Last() > 0 {
			active = gpu
		}
	}
	if active == nil {
		t.Fatal("no GPU shows utilization")
	}
	if got := active.Util().Last(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("single-stream util = %v, want 0.5", got)
	}
	// Add a second stream: per-seq 50 each → aggregate 100 → util 1.0.
	eng.Submit(&Request{ID: "b", OutputTokens: 500})
	se.RunUntil(2)
	if got := active.Util().Last(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("two-stream util = %v, want 1.0", got)
	}
}

func TestKVAdmissionQueues(t *testing.T) {
	se, _, eng := newTestEngine(t, 1, simpleSpec()) // KV capacity 1000
	// First request reserves 900 KV tokens; second (200) must wait.
	first := &Request{ID: "big", PromptTokens: 800, OutputTokens: 100}
	second := &Request{ID: "small", PromptTokens: 100, OutputTokens: 100}
	var secondAdmitDelay float64
	second.OnComplete = func(r *Request) { secondAdmitDelay = r.QueueDelay().Seconds() }
	eng.Submit(first)
	eng.Submit(second)
	if eng.ActiveCount() != 1 || eng.QueueDepth() != 1 {
		t.Fatalf("active=%d queue=%d, want 1/1 (KV admission)", eng.ActiveCount(), eng.QueueDepth())
	}
	se.Run()
	if secondAdmitDelay <= 0 {
		t.Fatalf("second request admitted without queueing (delay %v)", secondAdmitDelay)
	}
	if eng.Completed() != 2 {
		t.Fatalf("completed = %d, want 2", eng.Completed())
	}
}

func TestImpossibleRequestPanics(t *testing.T) {
	_, _, eng := newTestEngine(t, 1, simpleSpec())
	defer func() {
		if recover() == nil {
			t.Fatal("request exceeding total KV capacity did not panic")
		}
	}()
	eng.Submit(&Request{ID: "huge", PromptTokens: 2000, OutputTokens: 0})
}

func TestMaxBatchCap(t *testing.T) {
	spec := simpleSpec()
	spec.MaxBatch = 2
	spec.KVTokensPerGPU = 100000
	_, _, eng := newTestEngine(t, 1, spec)
	for i := 0; i < 5; i++ {
		eng.Submit(&Request{ID: fmt.Sprintf("r%d", i), OutputTokens: 100})
	}
	if eng.ActiveCount() != 2 || eng.QueueDepth() != 3 {
		t.Fatalf("active=%d queue=%d, want 2/3", eng.ActiveCount(), eng.QueueDepth())
	}
}

func TestZeroTokenRequestCompletes(t *testing.T) {
	se, _, eng := newTestEngine(t, 1, simpleSpec())
	done := false
	eng.Submit(&Request{ID: "empty", OnComplete: func(*Request) { done = true }})
	se.Run()
	if !done {
		t.Fatal("zero-token request never completed")
	}
}

func TestResizeGrowSpeedsUp(t *testing.T) {
	spec := simpleSpec()
	se, cl, eng := newTestEngine(t, 1, spec)
	// 8 concurrent: per-seq share 12.5 u/s; work 100 → 8 s unresized.
	for i := 0; i < 8; i++ {
		eng.Submit(&Request{ID: fmt.Sprintf("r%d", i), OutputTokens: 100})
	}
	// At t=4 (halfway), grow to 4 GPUs: aggregate 400, per-seq 50 (cap) →
	// remaining 50 units take 1 s. Finish at 5 s, not 8.
	se.Schedule(4, func() {
		alloc, err := cl.AllocGPUs(4, hardware.GPUA100)
		if err != nil {
			t.Fatal(err)
		}
		old := engineAllocSwap(eng, alloc)
		old.Release()
	})
	se.Run()
	if got := se.Now().Seconds(); math.Abs(got-5) > 1e-6 {
		t.Fatalf("completion at %v, want 5 (grow halved remaining time)", got)
	}
}

// engineAllocSwap resizes and returns the old alloc (test helper mirroring
// what clustermgr does).
func engineAllocSwap(e *Engine, next *cluster.GPUAlloc) *cluster.GPUAlloc {
	old := e.alloc
	if err := e.Resize(next); err != nil {
		panic(err)
	}
	return old
}

func TestResizeShrinkStallsAdmission(t *testing.T) {
	spec := simpleSpec()
	spec.KVTokensPerGPU = 500
	se, cl, eng := newTestEngine(t, 2, spec)                           // capacity 1000
	eng.Submit(&Request{ID: "a", PromptTokens: 700, OutputTokens: 50}) // KV 750
	// Shrink to 1 GPU (capacity 500): active request keeps running
	// (kvUsed 750 > 500), and a new 300-KV request must wait for the drain.
	alloc, err := cl.AllocGPUs(1, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	old := engineAllocSwap(eng, alloc)
	old.Release()
	waited := &Request{ID: "b", PromptTokens: 250, OutputTokens: 50}
	eng.Submit(waited)
	if eng.ActiveCount() != 1 || eng.QueueDepth() != 1 {
		t.Fatalf("active=%d queue=%d after shrink, want 1/1", eng.ActiveCount(), eng.QueueDepth())
	}
	se.Run()
	if eng.Completed() != 2 {
		t.Fatalf("completed = %d, want 2 (stall must clear)", eng.Completed())
	}
	if waited.QueueDelay() <= 0 {
		t.Fatal("queued request shows no admission delay")
	}
}

func TestOnDrained(t *testing.T) {
	se, _, eng := newTestEngine(t, 1, simpleSpec())
	drains := 0
	eng.OnDrained(func() { drains++ })
	se.Run()
	if drains != 1 {
		t.Fatalf("drain callbacks on idle engine = %d, want 1 (deferred)", drains)
	}
	eng.Submit(&Request{ID: "a", OutputTokens: 50})
	eng.OnDrained(func() { drains++ })
	se.Run()
	if drains != 2 {
		t.Fatalf("drain after work = %d, want 2", drains)
	}
}

func TestFIFOAdmission(t *testing.T) {
	spec := simpleSpec()
	spec.MaxBatch = 1
	se, _, eng := newTestEngine(t, 1, spec)
	var order []string
	for _, id := range []string{"a", "b", "c"} {
		id := id
		eng.Submit(&Request{ID: id, OutputTokens: 10,
			OnComplete: func(*Request) { order = append(order, id) }})
	}
	se.Run()
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("completion order = %v, want FIFO", order)
	}
}

func TestDefaultSpecsValid(t *testing.T) {
	for _, spec := range []ModelSpec{NVLMText(), NVLMEmbed(), Llama8B()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestBaselineVsBatchedScenario(t *testing.T) {
	// The §4 insight in miniature: 16 sequential summarizations on an
	// 8-GPU NVLM engine vs 16 concurrent ones. Concurrency must give a
	// large speedup because a single stream can't utilize the engine.
	const scenes = 16
	mkReq := func(i int) *Request {
		return &Request{ID: fmt.Sprintf("s%d", i), PromptTokens: 1800, OutputTokens: 500}
	}

	// Sequential.
	seSeq, _, engSeq := newTestEngine(t, 8, NVLMText())
	var submitNext func(i int)
	submitNext = func(i int) {
		if i == scenes {
			return
		}
		r := mkReq(i)
		r.OnComplete = func(*Request) { submitNext(i + 1) }
		engSeq.Submit(r)
	}
	submitNext(0)
	seSeq.Run()
	seqTime := seSeq.Now().Seconds()

	// Concurrent.
	sePar, _, engPar := newTestEngine(t, 8, NVLMText())
	for i := 0; i < scenes; i++ {
		engPar.Submit(mkReq(i))
	}
	sePar.Run()
	parTime := sePar.Now().Seconds()

	if engSeq.Completed() != scenes || engPar.Completed() != scenes {
		t.Fatal("not all requests completed")
	}
	speedup := seqTime / parTime
	if speedup < 3 {
		t.Fatalf("batching speedup = %.2f (seq %.1fs, par %.1fs), want > 3",
			speedup, seqTime, parTime)
	}
	// Sequential must badly underutilize: mean util below 20%.
	if u := engSeq.MeanUtilization(sim.Duration(seqTime)); u > 0.2 {
		t.Fatalf("sequential mean utilization = %.2f, want < 0.2", u)
	}
}
