package llmsim

import "repro/internal/hardware"

// Default model specs for the paper's deployments. Rates are calibrated so
// that (a) a single summarization stream keeps an 8-GPU engine ~11%
// utilized — the baseline's underutilization — while (b) sixteen concurrent
// streams saturate it, which is where Murakkab's intra-workflow parallelism
// gets its speedup.

// NVLMText is the NVLM-D-72B text-completion deployment (8×A100 in §4).
func NVLMText() ModelSpec {
	return ModelSpec{
		Name:               "nvlm-d-72b",
		ParamsB:            72,
		AggTokensPerGPUSec: 80,
		SeqTokensPerSec:    82,
		PrefillWeight:      0.10,
		KVTokensPerGPU:     25000,
		MaxBatch:           64,
		RefGPU:             hardware.GPUA100,
		Intensity:          0.95,
		ActivePowerFloor:   0.45,
	}
}

// NVLMEmbed is the NVLM embeddings deployment (2×A100 in §4). Embedding
// requests are all-prefill (PrefillWeight 1, OutputTokens 0).
func NVLMEmbed() ModelSpec {
	return ModelSpec{
		Name:               "nvlm-embed",
		ParamsB:            7,
		AggTokensPerGPUSec: 900,
		SeqTokensPerSec:    800,
		PrefillWeight:      1.0,
		KVTokensPerGPU:     120000,
		MaxBatch:           128,
		RefGPU:             hardware.GPUA100,
		Intensity:          0.55,
		ActivePowerFloor:   0.30,
	}
}

// Llama8B is a small text model servable on one GPU, used by ablations and
// the newsfeed workload.
func Llama8B() ModelSpec {
	return ModelSpec{
		Name:               "llama-3.1-8b",
		ParamsB:            8,
		AggTokensPerGPUSec: 700,
		SeqTokensPerSec:    250,
		PrefillWeight:      0.08,
		KVTokensPerGPU:     90000,
		MaxBatch:           128,
		RefGPU:             hardware.GPUA100,
		Intensity:          0.85,
		ActivePowerFloor:   0.50,
	}
}
