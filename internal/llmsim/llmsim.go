// Package llmsim simulates an LLM serving engine — the substrate behind the
// paper's NVLM deployment (8 GPUs for text completion, 2 for embeddings).
// It models the serving behaviours the runtime's decisions depend on:
//
//   - continuous batching: concurrent sequences share aggregate throughput,
//     so utilization (and energy) rises with load while per-request latency
//     degrades gracefully;
//   - KV-cache admission control: a request is admitted only when device
//     memory can hold its context; otherwise it queues;
//   - resizable GPU allocations: the workflow-aware cluster manager can
//     grow or shrink an engine, which scales both throughput and KV space —
//     the cross-component GPU/KV co-scheduling lever.
//
// The token-level model: each request carries work = prompt·prefillWeight +
// output tokens. Active sequences process work under processor sharing with
// a per-sequence cap (single-stream decode is memory-bandwidth bound; the
// aggregate is compute bound), re-planned event-by-event.
package llmsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
)

// ErrInjected marks a request failed by fault injection (FailNext) — the
// transient call error a caller may retry.
var ErrInjected = errors.New("llmsim: injected call failure")

// ModelSpec describes the served model's performance envelope on the
// reference GPU.
type ModelSpec struct {
	Name string
	// ParamsB is model size in billions of parameters.
	ParamsB float64
	// AggTokensPerGPUSec is aggregate token throughput per GPU at full batch.
	AggTokensPerGPUSec float64
	// SeqTokensPerSec caps single-sequence decode speed.
	SeqTokensPerSec float64
	// PrefillWeight converts prompt tokens to work units (prefill is much
	// cheaper per token than decode; typically 0.05–0.2).
	PrefillWeight float64
	// KVTokensPerGPU is KV-cache capacity contributed by each GPU.
	KVTokensPerGPU int
	// MaxBatch caps concurrent sequences regardless of KV headroom.
	MaxBatch int
	// RefGPU anchors the rates; other generations scale by FLOPS ratio.
	RefGPU hardware.GPUType
	// Intensity is device utilization when the engine is saturated.
	Intensity float64
	// ActivePowerFloor is the fraction of Intensity drawn whenever at least
	// one sequence is decoding, regardless of batch size. Batch-1 decode is
	// memory-bandwidth bound but still keeps the SMs busy: a mostly-empty
	// engine burns most of its TDP — which is where the paper's baseline
	// loses its energy (Table 2). Zero models a perfectly proportional
	// device.
	ActivePowerFloor float64
}

// Validate checks the spec.
func (m ModelSpec) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("llmsim: model without name")
	}
	if m.AggTokensPerGPUSec <= 0 || m.SeqTokensPerSec <= 0 {
		return fmt.Errorf("llmsim: %s has non-positive throughput", m.Name)
	}
	if m.PrefillWeight <= 0 || m.KVTokensPerGPU <= 0 || m.MaxBatch <= 0 {
		return fmt.Errorf("llmsim: %s has non-positive capacity parameters", m.Name)
	}
	if m.Intensity <= 0 || m.Intensity > 1 {
		return fmt.Errorf("llmsim: %s intensity %v outside (0,1]", m.Name, m.Intensity)
	}
	if m.ActivePowerFloor < 0 || m.ActivePowerFloor > 1 {
		return fmt.Errorf("llmsim: %s active power floor %v outside [0,1]", m.Name, m.ActivePowerFloor)
	}
	return nil
}

// Request is one inference call.
type Request struct {
	ID           string
	PromptTokens int
	OutputTokens int
	// OnComplete fires when the last token is generated — or, under fault
	// injection, when the request fails (Err is then non-nil).
	OnComplete func(*Request)

	// Err is the request's terminal error: nil on success, ErrInjected when
	// fault injection failed the call. Callers decide whether to retry.
	Err error

	// Metrics populated by the engine.
	EnqueuedAt  sim.Time
	AdmittedAt  sim.Time
	CompletedAt sim.Time

	work      float64 // remaining work units
	totalWork float64
	kvTokens  int // reserved KV space
	admitted  bool
	done      bool
}

// QueueDelay returns time spent waiting for admission.
func (r *Request) QueueDelay() sim.Duration { return r.AdmittedAt.Sub(r.EnqueuedAt) }

// Latency returns end-to-end latency.
func (r *Request) Latency() sim.Duration { return r.CompletedAt.Sub(r.EnqueuedAt) }

// Engine is one serving deployment bound to a GPU allocation.
type Engine struct {
	model  ModelSpec
	engine *sim.Engine
	cat    *hardware.Catalog

	alloc *cluster.GPUAlloc
	gpus  int
	// speedup is the FLOPS ratio of the allocated GPU type vs RefGPU.
	speedup float64

	queue  []*Request
	active []*Request
	kvUsed int

	// replan event for the next completion under current rates.
	nextDone   *sim.Event
	lastUpdate sim.Time

	// down marks the engine crashed and reloading weights: admission and
	// rate planning pause until the reload completes. Requests submitted
	// meanwhile queue normally.
	down bool

	// Stats.
	completed      int
	failed         int
	crashes        int
	tokensServed   float64
	busyIntegral   float64 // ∫ utilization dt, for mean-utilization stats
	drainCallbacks []func()
}

// NewEngine creates an engine serving model on the given allocation. The
// allocation must be non-empty and homogeneous (cluster guarantees type
// homogeneity per alloc).
func NewEngine(se *sim.Engine, cat *hardware.Catalog, model ModelSpec, alloc *cluster.GPUAlloc) (*Engine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if alloc == nil || alloc.Count() == 0 {
		return nil, fmt.Errorf("llmsim: engine %s needs at least one GPU", model.Name)
	}
	e := &Engine{
		model:  model,
		engine: se,
		cat:    cat,
		// Pre-size the request lists past the append growth ramp; serving
		// engines see continuous traffic from their first admission.
		queue:  make([]*Request, 0, 16),
		active: make([]*Request, 0, 16),
	}
	e.adoptAlloc(alloc)
	return e, nil
}

func (e *Engine) adoptAlloc(alloc *cluster.GPUAlloc) {
	e.alloc = alloc
	e.gpus = alloc.Count()
	gt := alloc.GPUs()[0].Spec.Type
	e.speedup = e.cat.SpeedupVs(gt, e.model.RefGPU)
	e.lastUpdate = e.engine.Now()
}

// Model returns the served model spec.
func (e *Engine) Model() ModelSpec { return e.model }

// GPUs returns the current GPU count.
func (e *Engine) GPUs() int { return e.gpus }

// KVCapacity returns total KV-cache token capacity.
func (e *Engine) KVCapacity() int { return e.gpus * e.model.KVTokensPerGPU }

// KVUsed returns reserved KV tokens.
func (e *Engine) KVUsed() int { return e.kvUsed }

// QueueDepth returns requests waiting for admission.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// ActiveCount returns requests currently being served.
func (e *Engine) ActiveCount() int { return len(e.active) }

// Completed returns the number of finished requests.
func (e *Engine) Completed() int { return e.completed }

// TokensServed returns total work units processed.
func (e *Engine) TokensServed() float64 { return e.tokensServed }

// aggregateRate returns total work-units/s the engine can process now.
func (e *Engine) aggregateRate() float64 {
	return float64(e.gpus) * e.model.AggTokensPerGPUSec * e.speedup
}

// perSeqCap returns the single-sequence rate cap.
func (e *Engine) perSeqCap() float64 {
	return e.model.SeqTokensPerSec * e.speedup
}

// currentRates returns the per-sequence processing rate under processor
// sharing with a per-sequence cap, and the implied utilization.
func (e *Engine) currentRates() (perSeq float64, util float64) {
	n := len(e.active)
	if n == 0 {
		return 0, 0
	}
	agg := e.aggregateRate()
	perSeq = math.Min(e.perSeqCap(), agg/float64(n))
	util = perSeq * float64(n) / agg
	return perSeq, util
}

// Submit enqueues a request. Requests with no tokens at all complete
// immediately (deferred, to keep callback ordering sane).
func (e *Engine) Submit(r *Request) {
	if r == nil {
		panic("llmsim: nil request")
	}
	if r.PromptTokens < 0 || r.OutputTokens < 0 {
		panic(fmt.Sprintf("llmsim: request %s with negative tokens", r.ID))
	}
	r.EnqueuedAt = e.engine.Now()
	r.totalWork = float64(r.PromptTokens)*e.model.PrefillWeight + float64(r.OutputTokens)
	r.work = r.totalWork
	r.kvTokens = r.PromptTokens + r.OutputTokens
	if r.totalWork == 0 {
		r.AdmittedAt = r.EnqueuedAt
		e.engine.Defer(func() { e.complete(r) })
		return
	}
	e.queue = append(e.queue, r)
	e.advance()
	e.admit()
	e.replan()
}

// admit moves queued requests into the active set while KV space and batch
// slots allow, FIFO. KV is reserved for prompt+output up front: a request
// that could exhaust memory mid-generation is never admitted (vLLM-style
// conservative admission).
func (e *Engine) admit() {
	if e.down {
		return
	}
	for len(e.queue) > 0 {
		r := e.queue[0]
		if len(e.active) >= e.model.MaxBatch {
			return
		}
		if r.kvTokens > e.KVCapacity() {
			// Impossible request: fail loudly rather than deadlock the queue.
			panic(fmt.Sprintf("llmsim: request %s needs %d KV tokens, engine capacity %d",
				r.ID, r.kvTokens, e.KVCapacity()))
		}
		if e.kvUsed+r.kvTokens > e.KVCapacity() {
			return
		}
		e.queue = e.queue[1:]
		e.kvUsed += r.kvTokens
		r.admitted = true
		r.AdmittedAt = e.engine.Now()
		e.active = append(e.active, r)
	}
}

// advance applies progress accrued since lastUpdate under the previous rate
// plan, and updates utilization-driven device intensity.
func (e *Engine) advance() {
	now := e.engine.Now()
	dt := now.Sub(e.lastUpdate).Seconds()
	if dt > 0 && len(e.active) > 0 {
		perSeq, util := e.currentRates()
		for _, r := range e.active {
			r.work -= perSeq * dt
			if r.work < -1e-6 {
				r.work = 0
			}
			e.tokensServed += perSeq * dt
		}
		e.busyIntegral += util * dt
	}
	e.lastUpdate = now
}

// replan schedules the next completion event under current rates and sets
// device intensity accordingly.
func (e *Engine) replan() {
	if e.nextDone != nil {
		e.nextDone.Cancel()
		e.nextDone = nil
	}
	if e.down {
		// Crashed: nothing progresses until the reload event resumes the
		// engine (Crash already zeroed device intensity).
		return
	}
	perSeq, util := e.currentRates()
	if !e.alloc.Released() {
		power := 0.0
		if len(e.active) > 0 {
			floor := e.model.ActivePowerFloor
			power = e.model.Intensity * (floor + (1-floor)*util)
		}
		e.alloc.SetIntensity(power)
	}
	if len(e.active) == 0 {
		e.notifyDrained()
		return
	}
	// Earliest finisher under the shared rate.
	soonest := math.Inf(1)
	for _, r := range e.active {
		t := r.work / perSeq
		if t < soonest {
			soonest = t
		}
	}
	if soonest < 0 {
		soonest = 0
	}
	e.nextDone = e.engine.After(sim.Duration(soonest), e.onCompletionEvent)
}

func (e *Engine) onCompletionEvent() {
	e.nextDone = nil
	e.advance()
	// Complete every request whose work hit zero (ties complete together).
	var still []*Request
	var finished []*Request
	for _, r := range e.active {
		if r.work <= 1e-9 {
			finished = append(finished, r)
		} else {
			still = append(still, r)
		}
	}
	e.active = still
	for _, r := range finished {
		e.kvUsed -= r.kvTokens
		if e.kvUsed < 0 {
			panic("llmsim: KV accounting below zero")
		}
		e.complete(r)
	}
	e.admit()
	e.replan()
}

func (e *Engine) complete(r *Request) {
	if r.done {
		panic(fmt.Sprintf("llmsim: request %s completed twice", r.ID))
	}
	r.done = true
	r.CompletedAt = e.engine.Now()
	if r.Err == nil {
		e.completed++
	}
	if r.OnComplete != nil {
		r.OnComplete(r)
	}
}

// Resize rebinds the engine to a new allocation (grow or shrink). In-flight
// work continues; rates and KV capacity change from now on. If KV usage
// exceeds the shrunk capacity, admission stalls until enough requests
// finish — exactly the co-scheduling pressure the cluster manager reasons
// about. The old allocation is released by the caller (clustermgr owns it).
func (e *Engine) Resize(alloc *cluster.GPUAlloc) error {
	if alloc == nil || alloc.Count() == 0 {
		return fmt.Errorf("llmsim: resize of %s to empty allocation", e.model.Name)
	}
	e.advance()
	e.adoptAlloc(alloc)
	e.admit()
	e.replan()
	return nil
}

// Crash simulates the serving process dying: every active sequence loses
// its KV cache and all generation progress, re-queues ahead of waiting
// requests, and the engine spends reloadS seconds reloading weights before
// admitting again. Requests are never lost — they restart from scratch once
// the engine is back. Crashing a crashed engine is a no-op (the reload in
// progress covers it).
func (e *Engine) Crash(reloadS float64) {
	if e.down {
		return
	}
	e.advance()
	for _, r := range e.active {
		r.work = r.totalWork
		r.admitted = false
	}
	e.queue = append(append([]*Request{}, e.active...), e.queue...)
	e.active = nil
	e.kvUsed = 0
	e.down = true
	e.crashes++
	if e.nextDone != nil {
		e.nextDone.Cancel()
		e.nextDone = nil
	}
	if !e.alloc.Released() {
		e.alloc.SetIntensity(0)
	}
	if reloadS < 0 {
		reloadS = 0
	}
	e.engine.After(sim.Duration(reloadS), func() {
		e.down = false
		e.advance()
		e.admit()
		e.replan()
	})
}

// Down reports whether the engine is crashed and reloading.
func (e *Engine) Down() bool { return e.down }

// Crashes returns the number of injected crashes.
func (e *Engine) Crashes() int { return e.crashes }

// Failed returns the number of requests failed by injection.
func (e *Engine) Failed() int { return e.failed }

// FailNext fails one in-flight or queued request with ErrInjected — a
// transient call error. pick ∈ [0,1) selects the victim over active then
// queued requests; the request's OnComplete fires with Err set so the
// caller can retry. Returns false when the engine holds no requests.
func (e *Engine) FailNext(pick float64) bool {
	e.advance()
	n := len(e.active) + len(e.queue)
	if n == 0 {
		return false
	}
	idx := int(pick * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	var r *Request
	if idx < len(e.active) {
		r = e.active[idx]
		e.active = append(e.active[:idx], e.active[idx+1:]...)
		e.kvUsed -= r.kvTokens
		if e.kvUsed < 0 {
			panic("llmsim: KV accounting below zero")
		}
	} else {
		qi := idx - len(e.active)
		r = e.queue[qi]
		e.queue = append(e.queue[:qi], e.queue[qi+1:]...)
	}
	e.failed++
	r.Err = ErrInjected
	e.complete(r)
	e.admit()
	e.replan()
	return true
}

// OnDrained registers a one-shot callback for the next time the engine has
// no active or queued requests.
func (e *Engine) OnDrained(fn func()) {
	if len(e.active) == 0 && len(e.queue) == 0 {
		e.engine.Defer(fn)
		return
	}
	e.drainCallbacks = append(e.drainCallbacks, fn)
}

func (e *Engine) notifyDrained() {
	if len(e.queue) > 0 || len(e.active) > 0 {
		return
	}
	cbs := e.drainCallbacks
	e.drainCallbacks = nil
	for _, fn := range cbs {
		fn()
	}
}

// Utilization returns the engine's instantaneous throughput utilization.
func (e *Engine) Utilization() float64 {
	_, util := e.currentRates()
	return util
}

// MeanUtilization returns time-averaged engine utilization since t0 (engine
// creation if t0 is zero).
func (e *Engine) MeanUtilization(span sim.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return e.busyIntegral / span.Seconds()
}
