// Package quality implements the paper's §5 "Quantifying and Controlling
// Quality" discussion: end-to-end workflow quality under cascading errors,
// correctness checkpoints that catch early-stage hallucinations, and a
// stage-impact analysis that "narrow[s] the search space by identifying
// stages with the greatest impact on cost and accuracy".
//
// The error model: each stage i has per-task error probability
// e_i = 1 - quality_i. Errors cascade — a hallucinated transcript derails
// every downstream stage consuming it — so without checkpoints the
// probability a task's final output is correct is Π(1-e_i) along its
// dependency chain. A checkpoint after stage i validates the output with a
// given detection rate and triggers a re-execution on detection, converting
// silent corruption into bounded retry cost.
package quality

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dag"
)

// StageQuality maps capability → per-task success probability in [0,1].
type StageQuality map[string]float64

// ChainCorrectness returns the probability that a leaf task's output is
// correct when errors cascade along its longest dependency chain, with no
// checkpoints. The graph must be frozen.
func ChainCorrectness(g *dag.Graph, q StageQuality) float64 {
	correct := map[dag.NodeID]float64{}
	for _, id := range g.TopoOrder() {
		node, _ := g.Node(id)
		sq, ok := q[node.Capability]
		if !ok {
			sq = 1
		}
		// A node is correct iff its own execution is correct AND every
		// predecessor's output was correct (worst-case AND across inputs).
		p := sq
		for _, pre := range g.Predecessors(id) {
			p *= correct[pre]
		}
		correct[id] = p
	}
	// Workflow correctness: product over leaves (all final outputs correct)
	// is too pessimistic for reporting; use the minimum leaf (the weakest
	// final artifact), matching "hallucinations in early stages can derail
	// workflows".
	min := 1.0
	for _, leaf := range g.Leaves() {
		if correct[leaf] < min {
			min = correct[leaf]
		}
	}
	return min
}

// Checkpoint is a validator placed after one capability's tasks.
type Checkpoint struct {
	Capability string
	// DetectionRate is the probability a corrupted output is caught.
	DetectionRate float64
	// CostS is validator latency per task (e.g. a small-LLM judge call).
	CostS float64
}

// Policy is a set of checkpoints.
type Policy struct {
	Checkpoints []Checkpoint
}

// ByCapability returns the checkpoint for a capability, if any.
func (p Policy) ByCapability(cap string) (Checkpoint, bool) {
	for _, c := range p.Checkpoints {
		if c.Capability == cap {
			return c, true
		}
	}
	return Checkpoint{}, false
}

// Validate checks the policy.
func (p Policy) Validate() error {
	seen := map[string]bool{}
	for _, c := range p.Checkpoints {
		if c.Capability == "" {
			return fmt.Errorf("quality: checkpoint without capability")
		}
		if seen[c.Capability] {
			return fmt.Errorf("quality: duplicate checkpoint for %q", c.Capability)
		}
		seen[c.Capability] = true
		if c.DetectionRate < 0 || c.DetectionRate > 1 {
			return fmt.Errorf("quality: detection rate %v outside [0,1]", c.DetectionRate)
		}
		if c.CostS < 0 {
			return fmt.Errorf("quality: negative checkpoint cost")
		}
	}
	return nil
}

// Outcome summarizes a Monte-Carlo evaluation of a policy on a graph.
type Outcome struct {
	// Correctness is the mean fraction of correct final artifacts (leaf
	// outputs) per trial — comparable to ChainCorrectness when leaves share
	// the same dependency structure.
	Correctness float64
	// MeanRetries is the average number of stage re-executions per trial.
	MeanRetries float64
	// CheckpointCostS is the total validator latency added per trial.
	CheckpointCostS float64
}

// Simulate Monte-Carlo evaluates a checkpoint policy: each trial samples
// per-node errors, applies checkpoints (detected errors re-execute the node,
// up to maxRetries), and reports end-to-end correctness and retry cost. The
// seed makes runs reproducible.
func Simulate(g *dag.Graph, q StageQuality, p Policy, trials, maxRetries int, seed int64) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	if trials <= 0 {
		return Outcome{}, fmt.Errorf("quality: non-positive trials")
	}
	rng := rand.New(rand.NewSource(seed))
	leafFractionSum := 0.0
	totalRetries := 0
	totalCheckCost := 0.0

	order := g.TopoOrder()
	for t := 0; t < trials; t++ {
		nodeOK := map[dag.NodeID]bool{}
		for _, id := range order {
			node, _ := g.Node(id)
			sq, ok := q[node.Capability]
			if !ok {
				sq = 1
			}
			inputsOK := true
			for _, pre := range g.Predecessors(id) {
				if !nodeOK[pre] {
					inputsOK = false
					break
				}
			}
			ok = inputsOK && rng.Float64() < sq
			if cp, has := p.ByCapability(node.Capability); has {
				totalCheckCost += cp.CostS
				// Retry while the checkpoint catches a bad output. A retry
				// only helps when the error originated at this node; bad
				// inputs reproduce the failure.
				for r := 0; r < maxRetries && !ok && rng.Float64() < cp.DetectionRate; r++ {
					totalRetries++
					totalCheckCost += cp.CostS
					ok = inputsOK && rng.Float64() < sq
				}
			}
			nodeOK[id] = ok
		}
		leaves := g.Leaves()
		okLeaves := 0
		for _, leaf := range leaves {
			if nodeOK[leaf] {
				okLeaves++
			}
		}
		if len(leaves) > 0 {
			leafFractionSum += float64(okLeaves) / float64(len(leaves))
		}
	}
	return Outcome{
		Correctness:     leafFractionSum / float64(trials),
		MeanRetries:     float64(totalRetries) / float64(trials),
		CheckpointCostS: totalCheckCost / float64(trials),
	}, nil
}

// StageImpact quantifies each capability's leverage on end-to-end
// correctness: the improvement in ChainCorrectness from making that stage
// perfect. The §5 search-space-narrowing signal — checkpoint the stages
// with the greatest impact first.
type StageImpact struct {
	Capability string
	// Delta is the correctness gain from perfecting this stage alone.
	Delta float64
}

// RankStageImpact returns capabilities sorted by descending impact.
func RankStageImpact(g *dag.Graph, q StageQuality) []StageImpact {
	base := ChainCorrectness(g, q)
	var out []StageImpact
	for cap := range q {
		perfect := StageQuality{}
		for k, v := range q {
			perfect[k] = v
		}
		perfect[cap] = 1
		out = append(out, StageImpact{
			Capability: cap,
			Delta:      ChainCorrectness(g, perfect) - base,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		return out[i].Capability < out[j].Capability
	})
	return out
}

// GreedyPolicy builds a checkpoint policy covering the top-k highest-impact
// stages with the given validator characteristics.
func GreedyPolicy(g *dag.Graph, q StageQuality, k int, detectionRate, costS float64) Policy {
	ranked := RankStageImpact(g, q)
	var p Policy
	for i := 0; i < k && i < len(ranked); i++ {
		if ranked[i].Delta <= 0 {
			break
		}
		p.Checkpoints = append(p.Checkpoints, Checkpoint{
			Capability:    ranked[i].Capability,
			DetectionRate: detectionRate,
			CostS:         costS,
		})
	}
	return p
}

// ExpectedQuality is the closed-form single-stage helper: the probability a
// stage with base quality q0 delivers a correct output when a validator with
// detection rate d may trigger up to r retries.
//
// Recurrence: with no retries left, the output is wrong iff the attempt
// fails. With r retries left, it is wrong iff the attempt fails AND either
// the validator misses it, or it is caught and the retried execution is
// wrong with r-1 retries left:
//
//	W(0) = (1-q0)
//	W(r) = (1-q0) · ((1-d) + d·W(r-1))
func ExpectedQuality(q0, d float64, r int) float64 {
	if q0 < 0 || q0 > 1 || d < 0 || d > 1 || r < 0 {
		panic("quality: arguments out of range")
	}
	wrong := 1 - q0
	for i := 0; i < r; i++ {
		wrong = (1 - q0) * ((1 - d) + d*wrong)
	}
	return 1 - wrong
}
