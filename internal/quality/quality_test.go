package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

// chain builds a -> b -> c.
func chain(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New()
	g.MustAddNode(dag.Node{ID: "a", Capability: "stt", Work: 1})
	g.MustAddNode(dag.Node{ID: "b", Capability: "summarize", Work: 1})
	g.MustAddNode(dag.Node{ID: "c", Capability: "embed", Work: 1})
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainCorrectnessMultiplies(t *testing.T) {
	g := chain(t)
	q := StageQuality{"stt": 0.9, "summarize": 0.8, "embed": 1.0}
	got := ChainCorrectness(g, q)
	want := 0.9 * 0.8 * 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("chain correctness = %v, want %v", got, want)
	}
}

func TestChainCorrectnessUnknownCapabilityIsPerfect(t *testing.T) {
	g := chain(t)
	got := ChainCorrectness(g, StageQuality{})
	if got != 1 {
		t.Fatalf("correctness with no quality info = %v, want 1", got)
	}
}

func TestChainCorrectnessWeakestLeaf(t *testing.T) {
	g := dag.New()
	g.MustAddNode(dag.Node{ID: "root", Capability: "stt"})
	g.MustAddNode(dag.Node{ID: "good", Capability: "embed"})
	g.MustAddNode(dag.Node{ID: "bad", Capability: "summarize"})
	g.MustAddEdge("root", "good")
	g.MustAddEdge("root", "bad")
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	q := StageQuality{"stt": 1, "embed": 0.99, "summarize": 0.5}
	if got := ChainCorrectness(g, q); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("weakest leaf = %v, want 0.5", got)
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{Checkpoints: []Checkpoint{{Capability: ""}}},
		{Checkpoints: []Checkpoint{{Capability: "a"}, {Capability: "a"}}},
		{Checkpoints: []Checkpoint{{Capability: "a", DetectionRate: 1.5}}},
		{Checkpoints: []Checkpoint{{Capability: "a", CostS: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
	}
	good := Policy{Checkpoints: []Checkpoint{{Capability: "a", DetectionRate: 0.9, CostS: 0.1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMatchesAnalyticNoCheckpoints(t *testing.T) {
	g := chain(t)
	q := StageQuality{"stt": 0.9, "summarize": 0.8, "embed": 0.95}
	out, err := Simulate(g, q, Policy{}, 20000, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := ChainCorrectness(g, q)
	if math.Abs(out.Correctness-want) > 0.02 {
		t.Fatalf("Monte-Carlo %v vs analytic %v", out.Correctness, want)
	}
	if out.MeanRetries != 0 || out.CheckpointCostS != 0 {
		t.Fatal("retries/cost nonzero without checkpoints")
	}
}

func TestSimulateCheckpointsImproveCorrectness(t *testing.T) {
	g := chain(t)
	q := StageQuality{"stt": 0.8, "summarize": 0.8, "embed": 0.95}
	base, _ := Simulate(g, q, Policy{}, 20000, 3, 1)
	p := Policy{Checkpoints: []Checkpoint{
		{Capability: "stt", DetectionRate: 0.95, CostS: 0.2},
		{Capability: "summarize", DetectionRate: 0.95, CostS: 0.2},
	}}
	checked, err := Simulate(g, q, p, 20000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if checked.Correctness <= base.Correctness+0.05 {
		t.Fatalf("checkpoints did not help: %v vs %v", checked.Correctness, base.Correctness)
	}
	if checked.MeanRetries <= 0 {
		t.Fatal("no retries recorded")
	}
	if checked.CheckpointCostS <= 0 {
		t.Fatal("no checkpoint cost recorded")
	}
}

func TestSimulateRejectsBadArgs(t *testing.T) {
	g := chain(t)
	if _, err := Simulate(g, StageQuality{}, Policy{}, 0, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
	bad := Policy{Checkpoints: []Checkpoint{{Capability: "x", DetectionRate: 2}}}
	if _, err := Simulate(g, StageQuality{}, bad, 10, 0, 1); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestRankStageImpactPrefersEarlyWeakStage(t *testing.T) {
	g := chain(t)
	// stt is weakest AND earliest (cascades furthest): fixing it helps most.
	q := StageQuality{"stt": 0.7, "summarize": 0.9, "embed": 0.95}
	ranked := RankStageImpact(g, q)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d stages", len(ranked))
	}
	if ranked[0].Capability != "stt" {
		t.Fatalf("top impact = %s, want stt", ranked[0].Capability)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Delta < ranked[i].Delta {
			t.Fatal("impact not sorted descending")
		}
	}
}

func TestGreedyPolicyTopK(t *testing.T) {
	g := chain(t)
	q := StageQuality{"stt": 0.7, "summarize": 0.9, "embed": 0.95}
	p := GreedyPolicy(g, q, 2, 0.9, 0.1)
	if len(p.Checkpoints) != 2 {
		t.Fatalf("policy has %d checkpoints, want 2", len(p.Checkpoints))
	}
	if p.Checkpoints[0].Capability != "stt" {
		t.Fatalf("first checkpoint on %s, want stt", p.Checkpoints[0].Capability)
	}
	// Perfect stages must not get checkpoints.
	perfect := StageQuality{"stt": 1, "summarize": 1, "embed": 1}
	if got := GreedyPolicy(g, perfect, 3, 0.9, 0.1); len(got.Checkpoints) != 0 {
		t.Fatalf("checkpoints on perfect stages: %v", got.Checkpoints)
	}
}

func TestExpectedQuality(t *testing.T) {
	// No retries: quality unchanged.
	if got := ExpectedQuality(0.8, 0.9, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("r=0 quality = %v, want 0.8", got)
	}
	// Perfect detection, many retries → quality approaches 1.
	if got := ExpectedQuality(0.8, 1.0, 10); got < 0.999 {
		t.Fatalf("r=10 d=1 quality = %v, want ≈1", got)
	}
	// Zero detection: retries never trigger.
	if got := ExpectedQuality(0.8, 0, 10); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("d=0 quality = %v, want 0.8", got)
	}
}

// Property: ExpectedQuality is monotone nondecreasing in retries and
// detection rate, and stays in [q0, 1].
func TestPropertyExpectedQualityMonotone(t *testing.T) {
	f := func(a, b uint8, r uint8) bool {
		q0 := float64(a%100) / 100
		d := float64(b%100) / 100
		rr := int(r % 6)
		v1 := ExpectedQuality(q0, d, rr)
		v2 := ExpectedQuality(q0, d, rr+1)
		v3 := ExpectedQuality(q0, math.Min(1, d+0.1), rr)
		return v1 >= q0-1e-12 && v1 <= 1+1e-12 && v2 >= v1-1e-12 && v3 >= v1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateDeterministicSeed(t *testing.T) {
	g := chain(t)
	q := StageQuality{"stt": 0.8, "summarize": 0.8}
	p := Policy{Checkpoints: []Checkpoint{{Capability: "stt", DetectionRate: 0.9, CostS: 0.1}}}
	a, _ := Simulate(g, q, p, 1000, 2, 7)
	b, _ := Simulate(g, q, p, 1000, 2, 7)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
