package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agents"
	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// NewsfeedJob is Figure 2's Workflow B: "Generate social media newsfeed for
// Alice".
func NewsfeedJob() workflow.Job {
	return workflow.Job{
		Description: "Generate social media newsfeed for Alice",
		Inputs: []workflow.Input{
			{Name: "alice", Kind: workflow.InputUser},
			{Name: "formula-1", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "cats", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "cooking", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
		},
		Constraint: workflow.MinLatency,
	}
}

// MultiTenantResult compares serial execution of independent workflows
// (each getting the cluster to itself in turn) against Murakkab
// co-scheduling them — the Figure 2 "higher resource multiplexing between
// independent workflows" claim. The mix is two Video Understanding jobs
// (Workflow A for two tenants) plus the newsfeed (Workflow B).
type MultiTenantResult struct {
	VideoAloneS    float64
	NewsfeedAloneS float64
	// SerialTotalS is 2×video + newsfeed run back to back.
	SerialTotalS float64
	// CoScheduledS is the makespan with all three submitted together.
	CoScheduledS float64
	// MultiplexGain = SerialTotalS / CoScheduledS.
	MultiplexGain float64
	// CoScheduledEnergyWh is total GPU energy of the shared run.
	CoScheduledEnergyWh float64
}

// MultiTenant runs the comparison.
func MultiTenant() (*MultiTenantResult, error) {
	res := &MultiTenantResult{}

	// Each workflow alone.
	repV, _, err := RunMurakkabFree(workflow.MinCost)
	if err != nil {
		return nil, err
	}
	res.VideoAloneS = repV.MakespanS

	tbN, err := NewTestbed()
	if err != nil {
		return nil, err
	}
	exN, err := tbN.Runtime.Submit(NewsfeedJob(), core.SubmitOptions{RelaxFloor: true})
	if err != nil {
		return nil, err
	}
	tbN.Engine.Run()
	if exN.Err() != nil {
		return nil, exN.Err()
	}
	res.NewsfeedAloneS = exN.Report().MakespanS
	res.SerialTotalS = 2*res.VideoAloneS + res.NewsfeedAloneS

	// Co-scheduled on one testbed, sharing the NVLM engines.
	tb, err := NewTestbed()
	if err != nil {
		return nil, err
	}
	sumPin := PaperEnginePins()[string(agents.CapSummarization)]
	var exs []*core.Execution
	for i := 0; i < 2; i++ {
		ex, err := tb.Runtime.Submit(PaperVideoJob(workflow.MinCost), core.SubmitOptions{
			Pinned: PaperEnginePins(), RelaxFloor: true, KeepEngines: true,
		})
		if err != nil {
			return nil, err
		}
		exs = append(exs, ex)
	}
	exB, err := tb.Runtime.Submit(NewsfeedJob(), core.SubmitOptions{
		Pinned:     map[string]optimizer.Pin{string(agents.CapSummarization): sumPin},
		RelaxFloor: true, KeepEngines: true,
	})
	if err != nil {
		return nil, err
	}
	exs = append(exs, exB)
	tb.Engine.Run()
	for _, ex := range exs {
		if ex.Err() != nil {
			return nil, fmt.Errorf("multitenant: %w", ex.Err())
		}
		if ex.Report().MakespanS > res.CoScheduledS {
			res.CoScheduledS = ex.Report().MakespanS
		}
	}
	res.CoScheduledEnergyWh = exs[0].Report().GPUEnergyWh // shared-cluster window
	if res.CoScheduledS > 0 {
		res.MultiplexGain = res.SerialTotalS / res.CoScheduledS
	}
	return res, nil
}

// String renders the comparison.
func (r *MultiTenantResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-tenant multiplexing (2× Workflow A + Workflow B from Figure 2)\n")
	fmt.Fprintf(&b, "Video Understanding alone: %.1f s\n", r.VideoAloneS)
	fmt.Fprintf(&b, "Newsfeed alone:            %.1f s\n", r.NewsfeedAloneS)
	fmt.Fprintf(&b, "Serial (dedicated):        %.1f s\n", r.SerialTotalS)
	fmt.Fprintf(&b, "Co-scheduled (shared):     %.1f s\n", r.CoScheduledS)
	fmt.Fprintf(&b, "Multiplexing gain:         %.2fx\n", r.MultiplexGain)
	return b.String()
}

// RebalanceAblationResult quantifies the value of workflow-aware cluster
// management: the same job with the NVLM engine starting at its 4-GPU
// minimum, with and without the manager's rebalancing loop.
type RebalanceAblationResult struct {
	WithoutRebalanceS    float64
	WithRebalanceS       float64
	Grows                int
	SpeedupFromLookahead float64
}

// RebalanceAblation runs the comparison.
func RebalanceAblation() (*RebalanceAblationResult, error) {
	run := func(period sim.Duration) (float64, int, error) {
		tb, err := NewTestbedWithRebalance(period)
		if err != nil {
			return 0, 0, err
		}
		pins := PaperEnginePins()
		// Undersized engine allowed to scale: the rebalancer can grow it
		// when the summarization burst queues.
		sum := pins[string(agents.CapSummarization)]
		sum.Config.GPUs = 4
		sum.AllowScaling = true
		pins[string(agents.CapSummarization)] = sum
		pins[string(agents.CapSpeechToText)] = STTPin(STTCPU)
		ex, err := tb.Runtime.Submit(PaperVideoJob(workflow.MinCost), core.SubmitOptions{
			Pinned: pins, RelaxFloor: true,
		})
		if err != nil {
			return 0, 0, err
		}
		tb.Engine.Run()
		if ex.Err() != nil {
			return 0, 0, ex.Err()
		}
		grows, _ := tb.Runtime.Manager().Rebalances()
		return ex.Report().MakespanS, grows, nil
	}
	res := &RebalanceAblationResult{}
	var err error
	if res.WithoutRebalanceS, _, err = run(0); err != nil {
		return nil, err
	}
	if res.WithRebalanceS, res.Grows, err = run(2); err != nil {
		return nil, err
	}
	if res.WithRebalanceS > 0 {
		res.SpeedupFromLookahead = res.WithoutRebalanceS / res.WithRebalanceS
	}
	return res, nil
}

// String renders the ablation.
func (r *RebalanceAblationResult) String() string {
	var b strings.Builder
	b.WriteString("Workflow-aware rebalancing ablation (undersized 4-GPU NVLM engine)\n")
	fmt.Fprintf(&b, "Without rebalancing: %.1f s\n", r.WithoutRebalanceS)
	fmt.Fprintf(&b, "With rebalancing:    %.1f s (%d grow operations)\n", r.WithRebalanceS, r.Grows)
	fmt.Fprintf(&b, "Speedup from DAG-aware scaling: %.2fx\n", r.SpeedupFromLookahead)
	return b.String()
}
