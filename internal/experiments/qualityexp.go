package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agents"
	"repro/internal/planner"
	"repro/internal/quality"
	"repro/internal/workflow"
)

// QualityRow is one checkpoint-budget level in the quality experiment.
type QualityRow struct {
	Checkpoints    int
	Capabilities   []string
	Correctness    float64
	MeanRetries    float64
	ValidatorCostS float64
}

// QualityResult explores the §5 "Quantifying and Controlling Quality"
// trade-off on the Video Understanding DAG: end-to-end correctness under
// cascading stage errors as correctness checkpoints are added greedily to
// the highest-impact stages.
type QualityResult struct {
	// BaselineCorrectness is the analytic no-checkpoint correctness.
	BaselineCorrectness float64
	// Impact ranks stages by their leverage on end-to-end correctness.
	Impact []quality.StageImpact
	Rows   []QualityRow
}

// QualityExperiment runs the sweep for checkpoint budgets 0..maxCheckpoints.
func QualityExperiment(maxCheckpoints int) (*QualityResult, error) {
	lib := agents.DefaultLibrary()
	res, err := planner.New(lib).Decompose(PaperVideoJob(workflow.MinCost))
	if err != nil {
		return nil, err
	}
	g := res.Graph

	// Stage qualities from the §4 component choices (whisper/CLIP/NVLM).
	sq := quality.StageQuality{}
	for cap, impls := range map[string]string{
		string(agents.CapFrameExtraction): agents.ImplOpenCV,
		string(agents.CapSpeechToText):    agents.ImplWhisper,
		string(agents.CapObjectDetection): agents.ImplCLIP,
		string(agents.CapSummarization):   agents.ImplNVLM,
		string(agents.CapEmbedding):       agents.ImplNVLMEmbed,
	} {
		im, ok := lib.Get(impls)
		if !ok {
			return nil, fmt.Errorf("quality experiment: missing %s", impls)
		}
		sq[cap] = im.Quality
	}

	out := &QualityResult{
		BaselineCorrectness: quality.ChainCorrectness(g, sq),
		Impact:              quality.RankStageImpact(g, sq),
	}
	const (
		detectionRate = 0.92
		validatorCost = 0.25 // a small-LLM judge call per task
		trials        = 4000
		maxRetries    = 3
	)
	for k := 0; k <= maxCheckpoints; k++ {
		p := quality.GreedyPolicy(g, sq, k, detectionRate, validatorCost)
		o, err := quality.Simulate(g, sq, p, trials, maxRetries, 17)
		if err != nil {
			return nil, err
		}
		row := QualityRow{
			Checkpoints:    len(p.Checkpoints),
			Correctness:    o.Correctness,
			MeanRetries:    o.MeanRetries,
			ValidatorCostS: o.CheckpointCostS,
		}
		for _, c := range p.Checkpoints {
			row.Capabilities = append(row.Capabilities, c.Capability)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the trade-off table.
func (r *QualityResult) String() string {
	var b strings.Builder
	b.WriteString("Quality control (§5): checkpoints vs end-to-end correctness\n")
	fmt.Fprintf(&b, "Analytic no-checkpoint correctness: %.3f\n", r.BaselineCorrectness)
	b.WriteString("Highest-impact stages: ")
	for i, s := range r.Impact {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s (+%.3f)", s.Capability, s.Delta)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-12s %-14s %-12s %-14s %s\n",
		"checkpoints", "correctness", "retries", "validator(s)", "placed on")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12d %-14.3f %-12.2f %-14.1f %s\n",
			row.Checkpoints, row.Correctness, row.MeanRetries, row.ValidatorCostS,
			strings.Join(row.Capabilities, ","))
	}
	return b.String()
}
