package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agents"
	"repro/internal/hardware"
	"repro/internal/workflow"
)

// OverheadResult quantifies the §3.3 overheads: (a) profiling, amortized
// over workflows; (b) DAG creation (< 1% of execution); (c) configuration
// search size after greedy pruning.
type OverheadResult struct {
	// Profiling.
	ProfilesBuilt int
	ProbeRuns     int

	// DAG creation (planning).
	PlanningTokensPrompt int
	PlanningTokensOutput int
	PlanningLatencyFrac  float64

	// Configuration search: total candidate configs across the library vs
	// the number of decisions actually taken for the workflow.
	CandidateConfigs int
	DecisionsTaken   int
}

// Overhead measures all three §3.3 overheads on the Figure 3 workload.
func Overhead() (*OverheadResult, error) {
	res := &OverheadResult{}

	cat := hardware.DefaultCatalog()
	lib := agents.DefaultLibrary()
	profiler := agents.NewProfiler(cat)
	store, err := profiler.ProfileLibrary(lib)
	if err != nil {
		return nil, err
	}
	res.ProfilesBuilt = store.Len()
	res.ProbeRuns = profiler.Probes()

	for _, c := range lib.Capabilities() {
		for _, im := range lib.ByCapability(c) {
			res.CandidateConfigs += len(im.CandidateConfigs(cat))
		}
	}

	rep, ex, err := RunMurakkabFree(workflow.MinCost)
	if err != nil {
		return nil, err
	}
	res.PlanningLatencyFrac = rep.PlanningOverheadFrac
	res.PlanningTokensPrompt, res.PlanningTokensOutput = ex.Decomposition().TotalPlanningTokens()
	res.DecisionsTaken = len(ex.Plan().Decisions)
	return res, nil
}

// String renders the overhead report.
func (r *OverheadResult) String() string {
	var b strings.Builder
	b.WriteString("Murakkab overheads (§3.3)\n")
	fmt.Fprintf(&b, "(a) Profiling: %d profiles from %d probe runs, amortized over all workflows\n",
		r.ProfilesBuilt, r.ProbeRuns)
	fmt.Fprintf(&b, "(b) DAG creation: %d prompt + %d output tokens; %.2f%% of workflow time (paper: <1%%)\n",
		r.PlanningTokensPrompt, r.PlanningTokensOutput, 100*r.PlanningLatencyFrac)
	fmt.Fprintf(&b, "(c) Configuration search: %d candidate configs pruned to %d per-capability decisions\n",
		r.CandidateConfigs, r.DecisionsTaken)
	return b.String()
}
