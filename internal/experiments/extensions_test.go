package experiments

import (
	"strings"
	"testing"
)

func TestLoadSweepOperatingCurve(t *testing.T) {
	res, err := LoadSweep([]float64{0.01, 0.05}, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	low, high := res.Points[0], res.Points[1]
	if low.Jobs == 0 || high.Jobs <= low.Jobs {
		t.Fatalf("trace sizes: low=%d high=%d", low.Jobs, high.Jobs)
	}
	if low.Completed != low.Jobs || high.Completed != high.Jobs {
		t.Fatalf("incomplete jobs: %+v / %+v", low, high)
	}
	// Queueing grows with offered load.
	if high.MeanQueueS < low.MeanQueueS {
		t.Fatalf("queue delay did not grow with load: %.1f vs %.1f",
			high.MeanQueueS, low.MeanQueueS)
	}
	if !strings.Contains(res.String(), "rate(job/s)") {
		t.Fatal("rendering broken")
	}
}

func TestQualityExperimentCheckpointsHelp(t *testing.T) {
	res, err := QualityExperiment(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want budgets 0..3", len(res.Rows))
	}
	if res.BaselineCorrectness >= 0.9 {
		t.Fatalf("baseline correctness %.3f suspiciously high (errors should cascade)",
			res.BaselineCorrectness)
	}
	// Monotone improvement with more checkpoints (Monte-Carlo; allow tiny
	// noise).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Correctness < res.Rows[i-1].Correctness-0.02 {
			t.Fatalf("correctness fell from %.3f to %.3f adding checkpoint %d",
				res.Rows[i-1].Correctness, res.Rows[i].Correctness, i)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Correctness <= first.Correctness+0.05 {
		t.Fatalf("checkpoints did not improve correctness: %.3f → %.3f",
			first.Correctness, last.Correctness)
	}
	if last.ValidatorCostS <= 0 {
		t.Fatal("validator cost not accounted")
	}
	// The top-impact stage is an early, error-cascading one (summarization
	// aggregates two inputs and feeds embeddings; STT/detection cascade too).
	if len(res.Impact) == 0 || res.Impact[0].Delta <= 0 {
		t.Fatalf("impact ranking empty or flat: %v", res.Impact)
	}
}

func TestMultiCloudPlacement(t *testing.T) {
	res, err := MultiCloud(DefaultCloudOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 3 options × 2 constraints", len(res.Rows))
	}
	byKey := map[string]MultiCloudRow{}
	for _, row := range res.Rows {
		byKey[row.Option+"/"+row.Constraint] = row
	}
	// H100 platform is faster under MIN_LATENCY. Its hourly rate is 2.5×
	// the A100's, but the shorter run can make the total bill comparable —
	// the §5 point that wider hardware variety changes the cost calculus
	// end-to-end, not per-hour.
	a100 := byKey["azure-a100/MIN_LATENCY"]
	h100 := byKey["premium-h100/MIN_LATENCY"]
	if h100.MakespanS >= a100.MakespanS {
		t.Errorf("H100 (%0.1fs) not faster than A100 (%0.1fs)", h100.MakespanS, a100.MakespanS)
	}
	// The mixed platform under MIN_LATENCY gives the H100s to the dominant
	// stage: the LLM engine lands on H100 (decided first in the greedy
	// hierarchy), while STT falls back to A100 hardware.
	mixed := byKey["multi-cloud/MIN_LATENCY"]
	if !strings.Contains(mixed.SummarizeConfig, "H100") {
		t.Errorf("multi-cloud MIN_LATENCY LLM engine = %s, want H100", mixed.SummarizeConfig)
	}
	// Under MIN_COST every platform still lands STT on CPUs.
	for _, opt := range []string{"azure-a100", "premium-h100", "multi-cloud"} {
		row := byKey[opt+"/MIN_COST"]
		if strings.Contains(row.STTConfig, "x") { // "NxGPU" configs contain 'x'
			t.Errorf("%s MIN_COST STT config = %s, want CPU-only", opt, row.STTConfig)
		}
	}
}

func TestRenderersProduceCompleteOutput(t *testing.T) {
	// The String()/CSV() renderers feed EXPERIMENTS.md and the CLI; make
	// sure each carries its headline content.
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if out := t1.String(); !strings.Contains(out, "GPU Generation") ||
		!strings.Contains(out, "All directions match") {
		t.Errorf("table1 rendering incomplete:\n%s", out)
	}

	ov, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if out := ov.String(); !strings.Contains(out, "Profiling") ||
		!strings.Contains(out, "DAG creation") || !strings.Contains(out, "Configuration search") {
		t.Errorf("overhead rendering incomplete:\n%s", out)
	}

	mc, err := MultiCloud(DefaultCloudOptions()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if out := mc.String(); !strings.Contains(out, "azure-a100") ||
		!strings.Contains(out, "LLM engine") {
		t.Errorf("multicloud rendering incomplete:\n%s", out)
	}

	q, err := QualityExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if out := q.String(); !strings.Contains(out, "Highest-impact stages") {
		t.Errorf("quality rendering incomplete:\n%s", out)
	}

	mt, err := MultiTenant()
	if err != nil {
		t.Fatal(err)
	}
	if out := mt.String(); !strings.Contains(out, "Multiplexing gain") {
		t.Errorf("multitenant rendering incomplete:\n%s", out)
	}

	ra, err := RebalanceAblation()
	if err != nil {
		t.Fatal(err)
	}
	if out := ra.String(); !strings.Contains(out, "grow operations") {
		t.Errorf("rebalance rendering incomplete:\n%s", out)
	}
}

func TestFigure3CSVContainsAllRows(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	for _, want := range []string{
		"# Baseline spans", "# Murakkab (GPU) spans",
		"# Murakkab (CPU) utilization", "time_s,cpu_util,gpu_util",
	} {
		if !strings.Contains(csv, want) {
			t.Errorf("figure3 CSV missing %q", want)
		}
	}
}
