package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agents"
	"repro/internal/hardware"
	"repro/internal/profiles"
)

// Table1Row is one optimization lever with its measured impact. Metrics
// follow the paper's columns: $ Cost (here: hourly price of the resources
// the stage commits), Power (sustained stage watts), Latency (stage
// seconds) and Quality.
type Table1Row struct {
	Parameter string
	Category  string
	Selection string

	// Before/after metric values for the lever flip.
	CostBefore, CostAfter       float64
	PowerBefore, PowerAfter     float64
	LatencyBefore, LatencyAfter float64
	QualityBefore, QualityAfter float64

	// Expected directions from the paper's Table 1 ("Higher", "Lower",
	// "No Change", or slash-combined like "Lower/No Change").
	WantCost, WantPower, WantLatency, WantQuality string
}

// Direction classifies an after-vs-before change.
func Direction(before, after float64) string {
	const eps = 1e-9
	switch {
	case after > before+eps:
		return "Higher"
	case after < before-eps:
		return "Lower"
	default:
		return "No Change"
	}
}

// Matches reports whether a measured direction satisfies a paper cell
// (which may list alternatives, e.g. "Lower/No Change").
func Matches(want, got string) bool {
	for _, alt := range strings.Split(want, "/") {
		if strings.EqualFold(strings.TrimSpace(alt), got) {
			return true
		}
	}
	return false
}

// Table1Result reproduces Table 1 as measured ablations.
type Table1Result struct {
	Rows []Table1Row
}

// stageMetrics evaluates one (implementation, config, parallelism, paths)
// choice on the Figure 3 STT/summarization workload shapes, mirroring the
// optimizer's scoring but surfacing the raw metrics.
type stageMetrics struct {
	cost, power, latency, quality float64
}

func measure(store *profiles.Store, cat *hardware.Catalog, impl string,
	cfg profiles.ResourceConfig, tasks int, avgWork float64, k, paths int) (stageMetrics, error) {
	prof, ok := store.Get(impl, cfg)
	if !ok {
		return stageMetrics{}, fmt.Errorf("experiments: no profile for %s @ %v", impl, cfg)
	}
	perTask := prof.LatencyS(avgWork)
	waves := float64((tasks + k - 1) / k)
	latency := waves * perTask
	if paths > 1 {
		latency *= 1.05
	}
	quality := prof.Quality
	if paths > 1 {
		quality = 1 - pow(1-quality, paths)
	}
	return stageMetrics{
		cost:    cfg.HourlyUSD(cat, hardware.EPYC7V12) * float64(k) * float64(paths),
		power:   prof.PowerW(cat, hardware.EPYC7V12) * float64(k) * float64(paths),
		latency: latency,
		quality: quality,
	}, nil
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// Table1 measures the five levers on the Figure 3 workload shapes (16
// scenes; STT work 30 audio-seconds per scene, summarization 680 token-work
// per scene).
func Table1() (*Table1Result, error) {
	cat := hardware.DefaultCatalog()
	lib := agents.DefaultLibrary()
	store, err := agents.NewProfiler(cat).ProfileLibrary(lib)
	if err != nil {
		return nil, err
	}
	const scenes = 16
	a100 := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100}
	h100 := profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUH100}
	cpu4 := profiles.ResourceConfig{CPUCores: 4}
	res := &Table1Result{}

	add := func(param, category, selection string, before, after stageMetrics,
		wantCost, wantPower, wantLatency, wantQuality string) {
		res.Rows = append(res.Rows, Table1Row{
			Parameter: param, Category: category, Selection: selection,
			CostBefore: before.cost, CostAfter: after.cost,
			PowerBefore: before.power, PowerAfter: after.power,
			LatencyBefore: before.latency, LatencyAfter: after.latency,
			QualityBefore: before.quality, QualityAfter: after.quality,
			WantCost: wantCost, WantPower: wantPower,
			WantLatency: wantLatency, WantQuality: wantQuality,
		})
	}

	// 1. GPU Generation: whisper STT on A100 → H100.
	before, err := measure(store, cat, agents.ImplWhisper, a100, scenes, 30, 1, 1)
	if err != nil {
		return nil, err
	}
	after, err := measure(store, cat, agents.ImplWhisper, h100, scenes, 30, 1, 1)
	if err != nil {
		return nil, err
	}
	add("GPU Generation", "Hardware Type", "Newer", before, after,
		"Higher", "Higher", "Lower/No Change", "No Change")

	// 2. CPU vs GPU: whisper on 1×A100 → 64 cores (as 16×4c workers). The
	// arXiv rendering of this row's latency cell reads "Lower", which
	// contradicts Table 2 (CPU config is slower, 83 s vs 77 s); we assert
	// the Table-2-consistent direction and note the discrepancy in
	// EXPERIMENTS.md.
	before, err = measure(store, cat, agents.ImplWhisper, a100, scenes, 30, 1, 1)
	if err != nil {
		return nil, err
	}
	after, err = measure(store, cat, agents.ImplWhisper, cpu4, scenes, 30, 16, 1)
	if err != nil {
		return nil, err
	}
	add("CPU vs GPU", "Hardware Type", "CPU", before, after,
		"Lower", "Lower", "Higher", "No Change")

	// 3. Task Parallelism: whisper on 4-core workers, fan-out 1 → 16.
	before, err = measure(store, cat, agents.ImplWhisper, cpu4, scenes, 30, 1, 1)
	if err != nil {
		return nil, err
	}
	after, err = measure(store, cat, agents.ImplWhisper, cpu4, scenes, 30, 16, 1)
	if err != nil {
		return nil, err
	}
	add("Task Parallelism", "Resource Amount", "More Fan Out", before, after,
		"Higher", "Higher", "Lower", "No Change")

	// 4. Execution Paths: NVLM summarization, 1 → 4 reasoning paths.
	sumCfg := profiles.ResourceConfig{GPUs: 8, GPUType: hardware.GPUA100}
	before, err = measure(store, cat, agents.ImplNVLM, sumCfg, scenes, 680, scenes, 1)
	if err != nil {
		return nil, err
	}
	after, err = measure(store, cat, agents.ImplNVLM, sumCfg, scenes, 680, scenes, 4)
	if err != nil {
		return nil, err
	}
	add("Execution Paths", "Resource Amount", "More Paths", before, after,
		"Higher", "Higher", "Higher/No Change", "Higher/No Change")

	// 5. Model/Tool: summarization via llama-8b (1 GPU) → nvlm-72b (4 GPUs,
	// its minimum footprint).
	before, err = measure(store, cat, agents.ImplLlama8B, a100, scenes, 680, 1, 1)
	if err != nil {
		return nil, err
	}
	after, err = measure(store, cat, agents.ImplNVLM,
		profiles.ResourceConfig{GPUs: 4, GPUType: hardware.GPUA100}, scenes, 680, 1, 1)
	if err != nil {
		return nil, err
	}
	add("Model/Tool", "Agent Implementation", "More Parameters", before, after,
		"Higher", "Higher", "Higher", "Higher/No Change")

	return res, nil
}

// Check verifies every measured direction against the paper's cell,
// returning a list of mismatches (empty = full reproduction).
func (r *Table1Result) Check() []string {
	var bad []string
	for _, row := range r.Rows {
		checks := []struct {
			metric string
			want   string
			got    string
		}{
			{"cost", row.WantCost, Direction(row.CostBefore, row.CostAfter)},
			{"power", row.WantPower, Direction(row.PowerBefore, row.PowerAfter)},
			{"latency", row.WantLatency, Direction(row.LatencyBefore, row.LatencyAfter)},
			{"quality", row.WantQuality, Direction(row.QualityBefore, row.QualityAfter)},
		}
		for _, c := range checks {
			if !Matches(c.want, c.got) {
				bad = append(bad, fmt.Sprintf("%s/%s: want %s, measured %s",
					row.Parameter, c.metric, c.want, c.got))
			}
		}
	}
	return bad
}

// String renders the table with measured directions.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: Optimization parameters and their impact (measured)\n")
	fmt.Fprintf(&b, "%-18s %-22s %-16s %-10s %-10s %-10s %-10s\n",
		"Parameter", "Category", "Selection", "$ Cost", "Power", "Latency", "Quality")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %-22s %-16s %-10s %-10s %-10s %-10s\n",
			row.Parameter, row.Category, row.Selection,
			Direction(row.CostBefore, row.CostAfter),
			Direction(row.PowerBefore, row.PowerAfter),
			Direction(row.LatencyBefore, row.LatencyAfter),
			Direction(row.QualityBefore, row.QualityAfter))
	}
	if bad := r.Check(); len(bad) > 0 {
		b.WriteString("\nMISMATCHES vs paper:\n")
		for _, m := range bad {
			b.WriteString("  " + m + "\n")
		}
	} else {
		b.WriteString("\nAll directions match the paper's Table 1 (with the CPU-latency cell\nread consistently with Table 2; see EXPERIMENTS.md).\n")
	}
	return b.String()
}
