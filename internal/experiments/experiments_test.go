package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/workflow"
)

// within reports |got-want|/want ≤ frac.
func within(got, want, frac float64) bool {
	return math.Abs(got-want) <= frac*want
}

func TestFigure3ReproducesShape(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// Every Murakkab config beats the baseline by a wide margin.
	base := res.Rows[0].Report.MakespanS
	for _, row := range res.Rows[1:] {
		if row.Report.MakespanS > base/2 {
			t.Errorf("%s makespan %.1f not < baseline/2 (%.1f)", row.Name, row.Report.MakespanS, base/2)
		}
	}
	// Headline speedup ~3.4×; accept ≥ 2.8×.
	if s := res.Speedup(); s < 2.8 {
		t.Fatalf("speedup = %.2f, want ≥ 2.8 (paper ~3.4)", s)
	}
	// Per-row times within 25% of the paper.
	for _, row := range res.Rows {
		if !within(row.Report.MakespanS, row.PaperTimeS, 0.25) {
			t.Errorf("%s: measured %.1fs vs paper %.0fs (>25%% off)",
				row.Name, row.Report.MakespanS, row.PaperTimeS)
		}
	}
	// The rendering includes all four panels.
	out := res.String()
	for _, want := range []string{"Baseline", "Murakkab (GPU)", "Murakkab (CPU)", "Murakkab (GPU+CPU)", "CPU util", "GPU util"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure rendering missing %q", want)
		}
	}
	if !strings.Contains(res.CSV(), "track,label,start_s,end_s") {
		t.Error("CSV export missing span header")
	}
}

func TestFigure3UtilizationContrast(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	base := res.Rows[0].Report
	// GPU-heavy configs drive GPUs harder than the baseline (the CPU config
	// legitimately idles GPUs while STT runs on cores — as in the paper's
	// bottom-left panel).
	for _, i := range []int{1, 3} { // GPU, GPU+CPU
		row := res.Rows[i]
		if row.Report.MeanGPUUtil <= base.MeanGPUUtil {
			t.Errorf("%s GPU util %.2f not above baseline %.2f",
				row.Name, row.Report.MeanGPUUtil, base.MeanGPUUtil)
		}
	}
	// The CPU config drives CPUs much harder than the baseline.
	cpuRow := res.Rows[2].Report
	if cpuRow.MeanCPUUtil < 5*base.MeanCPUUtil {
		t.Errorf("CPU-config CPU util %.3f not ≫ baseline %.3f", cpuRow.MeanCPUUtil, base.MeanCPUUtil)
	}
}

func TestTable2ReproducesShape(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, row := range res.Rows {
		byName[row.Config] = row
	}
	base := byName["Baseline"]
	cpu := byName["Murakkab CPU"]
	gpu := byName["Murakkab GPU"]
	hyb := byName["Murakkab GPU+CPU"]

	// Orderings the paper reports: CPU cheapest energy, GPU fastest,
	// hybrid between on energy and fastest-or-equal on time; baseline worst
	// on both.
	if !(cpu.EnergyWh < gpu.EnergyWh && cpu.EnergyWh < base.EnergyWh) {
		t.Errorf("CPU config not lowest energy: cpu=%.0f gpu=%.0f base=%.0f",
			cpu.EnergyWh, gpu.EnergyWh, base.EnergyWh)
	}
	if !(gpu.TimeS <= cpu.TimeS && gpu.TimeS < base.TimeS) {
		t.Errorf("GPU config not fastest: gpu=%.0f cpu=%.0f base=%.0f",
			gpu.TimeS, cpu.TimeS, base.TimeS)
	}
	if hyb.TimeS > cpu.TimeS {
		t.Errorf("hybrid (%.0fs) slower than CPU config (%.0fs)", hyb.TimeS, cpu.TimeS)
	}
	if base.EnergyWh < 3*cpu.EnergyWh {
		t.Errorf("energy efficiency gain = %.1f×, want ≥ 3 (paper ~4.5)", base.EnergyWh/cpu.EnergyWh)
	}
	// Absolute levels within 25% of the paper's cells.
	for _, row := range res.Rows {
		if !within(row.EnergyWh, row.PaperEnergyWh, 0.25) {
			t.Errorf("%s energy %.0f vs paper %.0f (>25%%)", row.Config, row.EnergyWh, row.PaperEnergyWh)
		}
		if !within(row.TimeS, row.PaperTimeS, 0.25) {
			t.Errorf("%s time %.0f vs paper %.0f (>25%%)", row.Config, row.TimeS, row.PaperTimeS)
		}
	}
	if !res.MinCostPickedCPU {
		t.Errorf("MIN_COST selected %s, paper selects the CPU config", res.MinCostSelection)
	}
}

func TestTable1AllDirectionsMatch(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 levers", len(res.Rows))
	}
	if bad := res.Check(); len(bad) > 0 {
		t.Fatalf("direction mismatches: %v", bad)
	}
}

func TestDirectionAndMatches(t *testing.T) {
	if Direction(1, 2) != "Higher" || Direction(2, 1) != "Lower" || Direction(1, 1) != "No Change" {
		t.Fatal("Direction broken")
	}
	if !Matches("Lower/No Change", "No Change") || Matches("Higher", "Lower") {
		t.Fatal("Matches broken")
	}
}

func TestOverheadClaims(t *testing.T) {
	res, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanningLatencyFrac <= 0 || res.PlanningLatencyFrac >= 0.01 {
		t.Fatalf("planning overhead = %.3f%%, paper claims <1%%", 100*res.PlanningLatencyFrac)
	}
	if res.ProfilesBuilt == 0 || res.ProbeRuns != 2*res.ProfilesBuilt {
		t.Fatalf("profiling accounting: %d profiles, %d probes", res.ProfilesBuilt, res.ProbeRuns)
	}
	if res.DecisionsTaken >= res.CandidateConfigs {
		t.Fatal("configuration search did not prune anything")
	}
}

func TestMultiTenantMultiplexingGain(t *testing.T) {
	res, err := MultiTenant()
	if err != nil {
		t.Fatal(err)
	}
	if res.CoScheduledS >= res.SerialTotalS {
		t.Fatalf("co-scheduling (%.1fs) not faster than serial (%.1fs)",
			res.CoScheduledS, res.SerialTotalS)
	}
	if res.MultiplexGain < 1.2 {
		t.Fatalf("multiplex gain = %.2f, want ≥ 1.2", res.MultiplexGain)
	}
}

func TestRebalanceAblation(t *testing.T) {
	res, err := RebalanceAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.Grows == 0 {
		t.Fatal("rebalancer never grew the undersized engine")
	}
	if res.WithRebalanceS >= res.WithoutRebalanceS {
		t.Fatalf("rebalancing did not help: %.1fs vs %.1fs",
			res.WithRebalanceS, res.WithoutRebalanceS)
	}
}

func TestRunMurakkabFreeConstraints(t *testing.T) {
	// Sanity across all four constraints: all complete, and MIN_LATENCY is
	// the fastest of the four.
	times := map[workflow.Constraint]float64{}
	for _, c := range []workflow.Constraint{workflow.MinCost, workflow.MinLatency, workflow.MinPower, workflow.MaxQuality} {
		rep, _, err := RunMurakkabFree(c)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		times[c] = rep.MakespanS
	}
	for c, tm := range times {
		if times[workflow.MinLatency] > tm {
			t.Fatalf("MIN_LATENCY (%.1fs) slower than %s (%.1fs)",
				times[workflow.MinLatency], c, tm)
		}
	}
}
