package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// CloudOption is one platform/hardware mix the workflow could run on — the
// §5 "Multi-cloud Compound AI Systems" discussion ("using multiple cloud
// platforms can reduce costs and offer a wider variety of hardware").
type CloudOption struct {
	Name string
	// VMs are (skuName, count) pairs provisioned for the option.
	VMs map[string]int
}

// MultiCloudRow is one option's measured outcome per constraint.
type MultiCloudRow struct {
	Option     string
	Constraint string
	MakespanS  float64
	CostUSD    float64
	EnergyWh   float64
	// STTConfig shows which hardware the optimizer put STT on (the
	// GPU-generation lever exercised end to end).
	STTConfig string
	// SummarizeConfig shows the LLM engine placement.
	SummarizeConfig string
}

// MultiCloudResult compares platforms under MIN_LATENCY and MIN_COST.
type MultiCloudResult struct {
	Rows []MultiCloudRow
}

// DefaultCloudOptions models the paper's scenario: the A100 platform from
// §4, a premium H100 platform, and a mixed two-platform deployment.
func DefaultCloudOptions() []CloudOption {
	return []CloudOption{
		{Name: "azure-a100", VMs: map[string]int{hardware.NDv4SKUName: 2}},
		{Name: "premium-h100", VMs: map[string]int{"Standard_ND96isr_H100_v5": 2}},
		{Name: "multi-cloud", VMs: map[string]int{
			hardware.NDv4SKUName:       1,
			"Standard_ND96isr_H100_v5": 1,
		}},
	}
}

// MultiCloud runs the Video Understanding workflow on each option under
// both constraints.
func MultiCloud(options []CloudOption) (*MultiCloudResult, error) {
	res := &MultiCloudResult{}
	for _, opt := range options {
		for _, c := range []workflow.Constraint{workflow.MinLatency, workflow.MinCost} {
			row, err := runCloudOption(opt, c)
			if err != nil {
				return nil, fmt.Errorf("multicloud %s/%s: %w", opt.Name, c, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runCloudOption(opt CloudOption, c workflow.Constraint) (MultiCloudRow, error) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	// Deterministic VM order: sort SKU names.
	var skus []string
	for sku := range opt.VMs {
		skus = append(skus, sku)
	}
	sortStrings(skus)
	i := 0
	for _, sku := range skus {
		for n := 0; n < opt.VMs[sku]; n++ {
			cl.AddVM(fmt.Sprintf("vm%d", i), sku, false)
			i++
		}
	}
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		return MultiCloudRow{}, err
	}
	ex, err := rt.Submit(PaperVideoJob(c), core.SubmitOptions{RelaxFloor: true})
	if err != nil {
		return MultiCloudRow{}, err
	}
	se.Run()
	if ex.Err() != nil {
		return MultiCloudRow{}, ex.Err()
	}
	rep := ex.Report()
	stt := ex.Plan().Decisions[string(agents.CapSpeechToText)]
	sum := ex.Plan().Decisions[string(agents.CapSummarization)]
	return MultiCloudRow{
		Option:          opt.Name,
		Constraint:      c.String(),
		MakespanS:       rep.MakespanS,
		CostUSD:         rep.CostUSD,
		EnergyWh:        rep.GPUEnergyWh,
		STTConfig:       stt.Config.String(),
		SummarizeConfig: sum.Config.String(),
	}, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// String renders the comparison.
func (r *MultiCloudResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-cloud placement (§5): same declarative job, different platforms\n")
	fmt.Fprintf(&b, "%-14s %-12s %10s %10s %10s   %-18s %s\n",
		"platform", "constraint", "time(s)", "cost($)", "energy(Wh)", "STT config", "LLM engine")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-12s %10.1f %10.3f %10.1f   %-18s %s\n",
			row.Option, row.Constraint, row.MakespanS, row.CostUSD, row.EnergyWh,
			row.STTConfig, row.SummarizeConfig)
	}
	return b.String()
}
