// Package experiments regenerates every table and figure in the paper's
// evaluation (§4), plus the ablations implied by Table 1 and the §3.3(b)
// overhead claim. Each experiment builds a fresh §4 testbed (two
// Standard_ND96amsr_A100_v4 VMs), runs the Video Understanding workflow and
// returns structured rows with the paper's reference values alongside the
// measured ones — EXPERIMENTS.md is generated from exactly these results.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/imperative"
	"repro/internal/optimizer"
	"repro/internal/profiles"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Testbed is one freshly-provisioned simulated cluster with a runtime.
type Testbed struct {
	Engine  *sim.Engine
	Cluster *cluster.Cluster
	Library *agents.Library
	Runtime *core.Runtime
}

// NewTestbed provisions the §4 setup: two ND96amsr_A100_v4 VMs.
func NewTestbed() (*Testbed, error) { return NewTestbedWithRebalance(0) }

// NewTestbedWithRebalance provisions the §4 setup with the cluster
// manager's rebalancing loop running at the given period while workflows
// are active (0 disables it).
func NewTestbedWithRebalance(period sim.Duration) (*Testbed, error) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	lib := agents.DefaultLibrary()
	rt, err := core.New(core.Config{Engine: se, Cluster: cl, Library: lib, RebalancePeriod: period})
	if err != nil {
		return nil, err
	}
	return &Testbed{Engine: se, Cluster: cl, Library: lib, Runtime: rt}, nil
}

// PaperVideoJob is the Listing 2 job over the evaluation workload: two
// four-minute videos, 30 s scenes, 24 frames per scene (16 scenes total).
func PaperVideoJob(c workflow.Constraint) workflow.Job {
	return workflow.Job{
		Description: "List objects shown/mentioned in the videos",
		Inputs: []workflow.Input{
			workflow.VideoInput("cats.mov", 240, 30, 24),
			workflow.VideoInput("formula_1.mov", 240, 30, 24),
		},
		Tasks: []string{
			"Extract frames from each video",
			"Run speech-to-text on all scenes",
			"Detect objects in the frames",
		},
		Constraint: c,
		MinQuality: 0.95,
	}
}

// PaperEnginePins fixes the §4 NVLM deployment: 8 GPUs for text completion
// and 2 GPUs for embeddings.
func PaperEnginePins() map[string]optimizer.Pin {
	return map[string]optimizer.Pin{
		string(agents.CapSummarization): {
			Implementation: agents.ImplNVLM,
			Config:         profiles.ResourceConfig{GPUs: 8, GPUType: hardware.GPUA100},
		},
		string(agents.CapEmbedding): {
			Implementation: agents.ImplNVLMEmbed,
			Config:         profiles.ResourceConfig{GPUs: 2, GPUType: hardware.GPUA100},
		},
	}
}

// STTConfig names one of the paper's three Murakkab STT configurations.
type STTConfig string

// The §4 Speech-to-Text configurations.
const (
	STTGPU    STTConfig = "GPU"     // 1 A100, scenes serialized on it
	STTCPU    STTConfig = "CPU"     // 64 cores as 16 × 4-core workers
	STTHybrid STTConfig = "GPU+CPU" // 1 A100 + 32 cores per worker
)

// STTPin returns the optimizer pin realizing one of the paper's STT configs.
func STTPin(c STTConfig) optimizer.Pin {
	switch c {
	case STTGPU:
		return optimizer.Pin{
			Implementation: agents.ImplWhisper,
			Config:         profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100},
			Parallelism:    1,
		}
	case STTCPU:
		return optimizer.Pin{
			Implementation: agents.ImplWhisper,
			Config:         profiles.ResourceConfig{CPUCores: 4},
			Parallelism:    16,
		}
	case STTHybrid:
		// The GPU does the bulk of the work with a few helper cores; the
		// paper's hybrid config matches the GPU config's completion time
		// with marginally lower GPU energy (Table 2: 77 s, 42 vs 43 Wh).
		return optimizer.Pin{
			Implementation: agents.ImplWhisper,
			Config:         profiles.ResourceConfig{GPUs: 1, GPUType: hardware.GPUA100, CPUCores: 4},
			Parallelism:    1,
		}
	default:
		panic(fmt.Sprintf("experiments: unknown STT config %q", c))
	}
}

// RunBaseline executes the Listing 1 imperative pipeline on a fresh testbed.
func RunBaseline() (*report.Report, error) {
	tb, err := NewTestbed()
	if err != nil {
		return nil, err
	}
	runner := imperative.NewRunner(tb.Engine, tb.Cluster, tb.Library)
	rep, err := runner.Run(imperative.DefaultVideoPipeline(), PaperVideoJob(workflow.MinCost).Inputs)
	if err != nil {
		return nil, err
	}
	tb.Engine.Run()
	return rep, nil
}

// RunMurakkabSTT executes the declarative job with one pinned STT config.
func RunMurakkabSTT(c STTConfig) (*report.Report, *core.Execution, error) {
	tb, err := NewTestbed()
	if err != nil {
		return nil, nil, err
	}
	pins := PaperEnginePins()
	pins[string(agents.CapSpeechToText)] = STTPin(c)
	ex, err := tb.Runtime.Submit(PaperVideoJob(workflow.MinCost), core.SubmitOptions{
		Pinned:     pins,
		RelaxFloor: true,
	})
	if err != nil {
		return nil, nil, err
	}
	tb.Engine.Run()
	if ex.Err() != nil {
		return nil, nil, ex.Err()
	}
	rep := ex.Report()
	rep.Name = fmt.Sprintf("murakkab-%s", strings.ToLower(string(c)))
	return rep, ex, nil
}

// RunMurakkabFree lets the optimizer choose the STT configuration under the
// given constraint (only the §4 engine sizes stay pinned) — the run behind
// "Murakkab selects the CPU configuration to satisfy the MIN_COST
// constraint".
func RunMurakkabFree(c workflow.Constraint) (*report.Report, *core.Execution, error) {
	tb, err := NewTestbed()
	if err != nil {
		return nil, nil, err
	}
	ex, err := tb.Runtime.Submit(PaperVideoJob(c), core.SubmitOptions{
		Pinned:     PaperEnginePins(),
		RelaxFloor: true,
	})
	if err != nil {
		return nil, nil, err
	}
	tb.Engine.Run()
	if ex.Err() != nil {
		return nil, nil, ex.Err()
	}
	return ex.Report(), ex, nil
}
