package experiments

import (
	"fmt"
	"strings"

	"repro/internal/agents"
	"repro/internal/workflow"
)

// Table2Row is one row of Table 2: energy and execution time for one
// Speech-to-Text configuration.
type Table2Row struct {
	Config        string
	PaperEnergyWh float64
	PaperTimeS    float64
	EnergyWh      float64
	TimeS         float64
}

// Table2Result reproduces Table 2 plus the MIN_COST selection check.
type Table2Result struct {
	Rows []Table2Row
	// MinCostSelection is the STT config the optimizer picked under
	// MIN_COST (the paper: the CPU configuration).
	MinCostSelection string
	// MinCostPickedCPU reports whether that selection was CPU-only.
	MinCostPickedCPU bool
	// EnergyEfficiencyGain is baseline energy / chosen-config energy (the
	// paper's ~4.5×).
	EnergyEfficiencyGain float64
}

// Table2 runs the baseline and the three Murakkab STT configurations and
// records GPU energy and completion time for each, then verifies the
// optimizer's free choice under MIN_COST.
func Table2() (*Table2Result, error) {
	base, err := RunBaseline()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Rows: []Table2Row{{
		Config:        "Baseline",
		PaperEnergyWh: 155, PaperTimeS: 285,
		EnergyWh: base.GPUEnergyWh, TimeS: base.MakespanS,
	}}}
	for _, cfg := range []struct {
		stt    STTConfig
		energy float64
		time   float64
	}{
		{STTCPU, 34, 83},
		{STTGPU, 43, 77},
		{STTHybrid, 42, 77},
	} {
		rep, _, err := RunMurakkabSTT(cfg.stt)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Config:        "Murakkab " + string(cfg.stt),
			PaperEnergyWh: cfg.energy, PaperTimeS: cfg.time,
			EnergyWh: rep.GPUEnergyWh, TimeS: rep.MakespanS,
		})
	}

	// Free optimizer choice under MIN_COST.
	_, ex, err := RunMurakkabFree(workflow.MinCost)
	if err != nil {
		return nil, err
	}
	stt := ex.Plan().Decisions[string(agents.CapSpeechToText)]
	res.MinCostSelection = stt.Config.String()
	res.MinCostPickedCPU = stt.Config.GPUs == 0 && stt.Config.CPUCores > 0

	var chosenEnergy float64
	for _, row := range res.Rows {
		if row.Config == "Murakkab CPU" {
			chosenEnergy = row.EnergyWh
		}
	}
	if chosenEnergy > 0 {
		res.EnergyEfficiencyGain = res.Rows[0].EnergyWh / chosenEnergy
	}
	return res, nil
}

// String renders the table with paper-vs-measured columns.
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: Energy and execution time of each configuration\n")
	fmt.Fprintf(&b, "%-22s %14s %14s %12s %12s\n",
		"Speech-to-Text Config", "Energy(Wh)", "paper(Wh)", "Time(s)", "paper(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %14.0f %14.0f %12.0f %12.0f\n",
			row.Config, row.EnergyWh, row.PaperEnergyWh, row.TimeS, row.PaperTimeS)
	}
	fmt.Fprintf(&b, "\nMIN_COST selection: %s (CPU-only: %v; paper selects the CPU config)\n",
		r.MinCostSelection, r.MinCostPickedCPU)
	fmt.Fprintf(&b, "Energy-efficiency gain vs baseline: %.1fx (paper: ~4.5x)\n",
		r.EnergyEfficiencyGain)
	return b.String()
}
