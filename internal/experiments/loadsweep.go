package experiments

import (
	"fmt"
	"strings"

	"repro/internal/aiwaas"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// LoadPoint is one offered-load level in the sweep.
type LoadPoint struct {
	RateJobsPerS  float64
	Jobs          int
	Completed     int
	Failed        int
	MeanLatencyS  float64
	MeanQueueS    float64
	TotalEnergyWh float64
	MakespanS     float64
}

// LoadSweepResult drives the AIWaaS service with Poisson job traces at
// increasing arrival rates — the "AI Workflows-as-a-Service" operating curve
// (§5): latency stays flat while the cluster has headroom, then queueing
// delay grows as the offered load saturates it.
type LoadSweepResult struct {
	Points []LoadPoint
}

// LoadSweep runs the sweep over the given arrival rates (jobs/s) with a
// fixed trace horizon.
func LoadSweep(rates []float64, horizonS float64, seed int64) (*LoadSweepResult, error) {
	res := &LoadSweepResult{}
	for _, rate := range rates {
		pt, err := runLoadPoint(rate, horizonS, seed)
		if err != nil {
			return nil, fmt.Errorf("load sweep at %.3f jobs/s: %w", rate, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func runLoadPoint(rate, horizonS float64, seed int64) (LoadPoint, error) {
	tb, err := NewTestbed()
	if err != nil {
		return LoadPoint{}, err
	}
	svc := aiwaas.New(tb.Engine, tb.Runtime, 4)
	trace, err := workload.PoissonTrace(workload.DefaultMix(), rate, horizonS, seed)
	if err != nil {
		return LoadPoint{}, err
	}
	// The whole arrival trace is scheduled as one batch: a single heap-fix
	// pass instead of per-arrival sift-ups, with firing order identical to
	// sequential Schedule calls (the queue pops in strict (time, seq) order).
	tickets := make([]*aiwaas.Ticket, 0, len(trace))
	items := make([]sim.BatchItem, 0, len(trace))
	for _, arr := range trace {
		arr := arr
		items = append(items, sim.BatchItem{At: sim.Time(arr.AtS), Fn: func() {
			tk, err := svc.Submit(arr.Tenant, arr.Job, core.SubmitOptions{RelaxFloor: true})
			if err != nil {
				panic(err) // generator only emits valid jobs
			}
			tickets = append(tickets, tk)
		}})
	}
	tb.Engine.ScheduleBatch(items)
	tb.Engine.Run()

	pt := LoadPoint{RateJobsPerS: rate, Jobs: len(trace)}
	var latSum, queueSum float64
	for _, tk := range tickets {
		switch tk.Status() {
		case aiwaas.StatusDone:
			pt.Completed++
			latSum += tk.Report().MakespanS + tk.QueueDelayS()
			queueSum += tk.QueueDelayS()
		case aiwaas.StatusFailed:
			pt.Failed++
		default:
			return LoadPoint{}, fmt.Errorf("ticket stuck in %v", tk.Status())
		}
	}
	if pt.Completed > 0 {
		pt.MeanLatencyS = latSum / float64(pt.Completed)
		pt.MeanQueueS = queueSum / float64(pt.Completed)
	}
	pt.MakespanS = tb.Engine.Now().Seconds()
	pt.TotalEnergyWh = tb.Cluster.GPUEnergyJoules(0, pt.MakespanS) / 3600
	return pt, nil
}

// String renders the operating curve.
func (r *LoadSweepResult) String() string {
	var b strings.Builder
	b.WriteString("AIWaaS load sweep (mixed tenants, Poisson arrivals, concurrency 4)\n")
	fmt.Fprintf(&b, "%-12s %6s %6s %12s %12s %12s\n",
		"rate(job/s)", "jobs", "done", "latency(s)", "queue(s)", "energy(Wh)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12.3f %6d %6d %12.1f %12.1f %12.1f\n",
			p.RateJobsPerS, p.Jobs, p.Completed, p.MeanLatencyS, p.MeanQueueS, p.TotalEnergyWh)
	}
	return b.String()
}
