package experiments

import (
	"fmt"
	"strings"

	"repro/internal/report"
	"repro/internal/telemetry"
)

// Figure3Row is one of the four execution traces in Figure 3.
type Figure3Row struct {
	Name string
	// PaperTimeS is the completion time the paper reports for this trace.
	PaperTimeS float64
	Report     *report.Report
}

// Figure3Result reproduces Figure 3: the baseline and Murakkab execution
// traces plus their CPU/GPU utilization time series.
type Figure3Result struct {
	Rows []Figure3Row
}

// Figure3 runs the four §4 configurations.
func Figure3() (*Figure3Result, error) {
	base, err := RunBaseline()
	if err != nil {
		return nil, fmt.Errorf("figure3 baseline: %w", err)
	}
	res := &Figure3Result{
		Rows: []Figure3Row{{Name: "Baseline", PaperTimeS: 283, Report: base}},
	}
	for _, cfg := range []struct {
		stt   STTConfig
		paper float64
	}{
		{STTGPU, 77},
		{STTCPU, 83},
		{STTHybrid, 77},
	} {
		rep, _, err := RunMurakkabSTT(cfg.stt)
		if err != nil {
			return nil, fmt.Errorf("figure3 %s: %w", cfg.stt, err)
		}
		res.Rows = append(res.Rows, Figure3Row{
			Name:       fmt.Sprintf("Murakkab (%s)", cfg.stt),
			PaperTimeS: cfg.paper,
			Report:     rep,
		})
	}
	return res, nil
}

// Speedup returns the baseline-to-best-Murakkab speedup (the paper's ~3.4×).
func (r *Figure3Result) Speedup() float64 {
	base := r.Rows[0].Report.MakespanS
	best := base
	for _, row := range r.Rows[1:] {
		if row.Report.MakespanS < best {
			best = row.Report.MakespanS
		}
	}
	return base / best
}

// String renders the figure as ASCII: per-row Gantt timelines plus CPU/GPU
// utilization sparklines over a shared time axis.
func (r *Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: Execution traces of the Video Understanding workflow\n")
	fmt.Fprintf(&b, "(speedup over baseline: %.1fx; paper reports ~3.4x)\n\n", r.Speedup())
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "[%s]  measured %.0fs, paper %.0fs\n",
			row.Name, row.Report.MakespanS, row.PaperTimeS)
		b.WriteString(row.Report.Timeline(72))
		cpu := row.Report.CPUUtil().Resample(0, row.Report.MakespanS, row.Report.MakespanS/60)
		gpu := row.Report.GPUUtil().Resample(0, row.Report.MakespanS, row.Report.MakespanS/60)
		fmt.Fprintf(&b, "CPU util %% |%s| mean %.0f%%\n", telemetry.Sparkline(cpu, 1), 100*row.Report.MeanCPUUtil)
		fmt.Fprintf(&b, "GPU util %% |%s| mean %.0f%%\n\n", telemetry.Sparkline(gpu, 1), 100*row.Report.MeanGPUUtil)
	}
	return b.String()
}

// CSV renders all four traces' spans and utilization series for plotting.
func (r *Figure3Result) CSV() string {
	var b strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "# %s spans\n", row.Name)
		b.WriteString(telemetry.SpansCSV(row.Report.Tracer))
		fmt.Fprintf(&b, "# %s utilization\n", row.Name)
		b.WriteString(row.Report.UtilizationCSV(1))
	}
	return b.String()
}
