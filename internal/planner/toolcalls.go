package planner

import (
	"fmt"

	"repro/internal/agents"
	"repro/internal/dag"
)

// ToolCallFor generates the executable tool call for a task once the
// runtime has selected a concrete implementation — the paper's example:
// given "Extract frames from each video" and metadata, the LLM emits
// FrameExtractor(start_time=0, end_time=60s, num_frames=10, file="cats.mov").
// The call is validated against the implementation's schema before return;
// an invalid generation is a bug surfaced as an error, mirroring the
// quality-control checkpoints §5 calls for.
func (p *Planner) ToolCallFor(node *dag.Node, implName string) (agents.ToolCall, error) {
	p.checkGen()
	key := toolCallKey{node: node, impl: implName}
	if tc, ok := p.callCache[key]; ok {
		return tc, nil
	}
	im, ok := p.impl(implName)
	if !ok {
		return agents.ToolCall{}, fmt.Errorf("planner: tool call for unknown implementation %q", implName)
	}
	if string(im.Capability) != node.Capability {
		return agents.ToolCall{}, fmt.Errorf("planner: implementation %q provides %q, task %q needs %q",
			implName, im.Capability, node.ID, node.Capability)
	}
	args := make(map[string]string, 3)
	meta := node.Metadata

	switch im.Capability {
	case agents.CapFrameExtraction:
		args["file"] = metaOr(meta, "video", "input.mov")
		args["num_frames"] = metaOr(meta, "num_frames", "24")
	case agents.CapSpeechToText:
		args["file"] = metaOr(meta, "video", "input.mov")
	case agents.CapObjectDetection:
		args["frames"] = metaOr(meta, "video", "input") + "/scene" + metaOr(meta, "scene", "0") + "/frames"
	case agents.CapSummarization:
		args["user_prompt"] = "Summarize the scenes using frames, detected objects and transcripts. (" +
			metaOr(meta, "video", metaOr(meta, "user", "input")) + " scene " + metaOr(meta, "scene", "-") + ")"
		if hasArg(im, "system_prompt") {
			args["system_prompt"] = "You are an agent that can describe images in detail."
		}
		if hasArg(im, "context_len") {
			args["context_len"] = "4096"
		}
	case agents.CapEmbedding:
		args["text"] = "summary of " + metaOr(meta, "video", metaOr(meta, "doc", "input")) + " scene " + metaOr(meta, "scene", "-")
	case agents.CapQA:
		args["question"] = metaOr(meta, "question", "What objects appear?")
	case agents.CapSentiment:
		args["text"] = "generated feed for " + metaOr(meta, "user", "user")
	case agents.CapWebSearch:
		args["query"] = metaOr(meta, "topic", "news")
		if hasArg(im, "top_k") {
			args["top_k"] = "10"
		}
	case agents.CapRanking:
		args["items"] = "search results for " + metaOr(meta, "user", "user")
	case agents.CapCalculator:
		args["expression"] = metaOr(meta, "expression", "1+1")
	default:
		return agents.ToolCall{}, fmt.Errorf("planner: no tool-call recipe for capability %q", im.Capability)
	}

	tc := agents.ToolCall{Agent: implName, Args: args}
	if err := p.lib.ValidateCall(tc); err != nil {
		return agents.ToolCall{}, fmt.Errorf("planner: generated invalid tool call: %w", err)
	}
	if len(p.callCache) >= callCacheLimit {
		p.callCache = map[toolCallKey]agents.ToolCall{}
	}
	p.callCache[key] = tc
	return tc, nil
}

func metaOr(m map[string]string, k, def string) string {
	if m == nil {
		return def
	}
	if v, ok := m[k]; ok && v != "" {
		return v
	}
	return def
}

func hasArg(im *agents.Implementation, name string) bool {
	for _, a := range im.Args {
		if a.Name == name {
			return true
		}
	}
	return false
}
