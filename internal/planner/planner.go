// Package planner implements Murakkab's job decomposition (§3.2): lowering a
// declarative Job into a task DAG, following the ReAct pattern — the planner
// records thought/action/observation steps — and generating executable tool
// calls for the selected agents.
//
// Substitution note (see DESIGN.md): the paper uses NVLM as the orchestrator
// LLM. We simulate it with a deterministic template planner that consumes
// the same inputs the LLM would (job description, task hints, the agent
// library's system prompt) and produces the same outputs (DAG, ReAct trace,
// tool calls, and token counts for the planning queries whose latency the
// runtime charges against the workflow — the §3.3(b) "<1%" overhead claim).
package planner

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agents"
	"repro/internal/dag"
	"repro/internal/workflow"
)

// Step is one ReAct iteration.
type Step struct {
	Thought     string
	Action      string
	Observation string
}

// Query is one planning LLM call's token footprint; the runtime submits it
// to the orchestrator-LLM serving engine to charge realistic latency.
type Query struct {
	Purpose      string
	PromptTokens int
	OutputTokens int
}

// Result is a completed decomposition.
type Result struct {
	Template string
	Graph    *dag.Graph
	Trace    []Step
	Queries  []Query
}

// TotalPlanningTokens sums tokens across planning queries.
func (r *Result) TotalPlanningTokens() (prompt, output int) {
	for _, q := range r.Queries {
		prompt += q.PromptTokens
		output += q.OutputTokens
	}
	return prompt, output
}

// Planner lowers jobs into DAGs using the agent library.
type Planner struct {
	lib *agents.Library
	// implCache holds one Library.Get clone per implementation name, valid
	// for implGen == lib.Gen(): ToolCallFor runs once per executed task, and
	// cloning the schema on every task would allocate on the dispatch hot
	// path.
	implCache map[string]*agents.Implementation
	// callCache memoizes generated-and-validated tool calls per (node,
	// implementation). Graphs are frozen after decomposition and shared
	// across structurally-identical executions, so a long-lived serving
	// runtime replays the same nodes continually; the generation step is a
	// pure function of node metadata and the schema, which the library
	// generation guards. Invalidated together with implCache.
	callCache map[toolCallKey]agents.ToolCall
	implGen   int
}

type toolCallKey struct {
	node *dag.Node
	impl string
}

// callCacheLimit bounds memory: reached only if a service sees that many
// distinct (node, implementation) pairs, at which point the cache resets
// wholesale like the runtime's plan caches.
const callCacheLimit = 1 << 16

// New creates a planner over a library.
func New(lib *agents.Library) *Planner {
	if lib == nil {
		panic("planner: nil library")
	}
	return &Planner{
		lib:       lib,
		implCache: map[string]*agents.Implementation{},
		callCache: map[toolCallKey]agents.ToolCall{},
	}
}

// ResetCallCache drops the memoized tool calls. The runtime calls this when
// it evicts its decomposition cache wholesale: callCache keys on node
// pointers from those decompositions, so the evicted entries could never hit
// again yet would pin the old graphs until the cache's own limit tripped.
func (p *Planner) ResetCallCache() {
	p.callCache = map[toolCallKey]agents.ToolCall{}
}

// checkGen flushes the memoization caches when the library's registration
// generation moves.
func (p *Planner) checkGen() {
	if p.implGen != p.lib.Gen() {
		p.implCache = map[string]*agents.Implementation{}
		p.callCache = map[toolCallKey]agents.ToolCall{}
		p.implGen = p.lib.Gen()
	}
}

// impl is a memoized Library.Get; entries invalidate when the library's
// registration generation changes.
func (p *Planner) impl(name string) (*agents.Implementation, bool) {
	p.checkGen()
	if im, ok := p.implCache[name]; ok {
		return im, true
	}
	im, ok := p.lib.Get(name)
	if ok {
		p.implCache[name] = im
	}
	return im, ok
}

// Decompose lowers a job into a task DAG. It selects a workflow template
// from the description (video understanding, newsfeed, document QA), falls
// back to chaining the user's task hints, and errors when neither applies —
// the paper's orchestrator would likewise fail to plan an unintelligible
// job.
func (p *Planner) Decompose(job workflow.Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	desc := strings.ToLower(job.Description)
	// Every template emits 2 queries and at most 4 trace steps; pre-size so
	// the appends below never grow the backing arrays.
	res := &Result{Graph: dag.New(), Trace: make([]Step, 0, 4), Queries: make([]Query, 0, 2)}
	res.Queries = append(res.Queries, Query{
		Purpose:      "decompose",
		PromptTokens: promptTokens(p.lib, job),
		OutputTokens: 16, // the DAG spec is terse: task ids and edges
	})

	switch {
	case strings.Contains(desc, "newsfeed") || strings.Contains(desc, "social media"):
		res.Template = "newsfeed"
		p.think(res, "The job asks for a social-media newsfeed; search, rank, generation and a safety filter are needed.",
			"select template newsfeed")
		if err := p.buildNewsfeed(res, job); err != nil {
			return nil, err
		}
	case hasKind(job, workflow.InputVideo) &&
		(strings.Contains(desc, "object") || strings.Contains(desc, "video") || strings.Contains(desc, "scene")):
		res.Template = "video-understanding"
		p.think(res, "The job mentions videos and objects; frames, transcripts, detections and per-scene summaries are needed.",
			"select template video-understanding")
		if err := p.buildVideoUnderstanding(res, job); err != nil {
			return nil, err
		}
	case hasKind(job, workflow.InputDoc) &&
		(strings.Contains(desc, "question") || strings.Contains(desc, "answer")):
		res.Template = "document-qa"
		p.think(res, "The job asks questions over documents; embed then retrieve-and-answer.",
			"select template document-qa")
		if err := p.buildDocQA(res, job); err != nil {
			return nil, err
		}
	case len(job.Tasks) > 0:
		res.Template = "hint-chain"
		p.think(res, "No template matches; chaining the user-provided sub-tasks.",
			"map task hints to capabilities")
		if err := p.buildHintChain(res, job); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("planner: cannot decompose job %q: no template matches and no task hints given", job.Description)
	}

	if err := res.Graph.Freeze(); err != nil {
		return nil, fmt.Errorf("planner: produced invalid DAG: %w", err)
	}
	caps := len(res.Graph.CapabilityWork())
	res.Trace = append(res.Trace, Step{
		Thought:     "The task graph is complete.",
		Action:      "emit DAG",
		Observation: fmt.Sprintf("%d tasks across %d capabilities", res.Graph.Len(), caps),
	})
	// One tool-call generation query per capability (batched); each call
	// is a one-line function invocation, so outputs are tiny.
	res.Queries = append(res.Queries, Query{
		Purpose:      "tool-calls",
		PromptTokens: 32 * caps,
		OutputTokens: 4 * caps,
	})
	return res, nil
}

func (p *Planner) think(res *Result, thought, action string) {
	res.Trace = append(res.Trace, Step{Thought: thought, Action: action, Observation: "ok"})
}

func hasKind(job workflow.Job, k workflow.InputKind) bool {
	for _, in := range job.Inputs {
		if in.Kind == k {
			return true
		}
	}
	return false
}

// promptTokens estimates the decomposition prompt size: the library system
// prompt plus the job description and hints, at ~4 characters per token.
func promptTokens(lib *agents.Library, job workflow.Job) int {
	chars := len(lib.SystemPrompt()) + len(job.Description)
	for _, t := range job.Tasks {
		chars += len(t)
	}
	n := chars / 4
	if n < 16 {
		n = 16
	}
	return n
}

// Per-scene LLM sizing for video understanding: the summarization prompt
// carries the frames, detections and transcript (~1800 tokens) and produces
// a ~500-token summary; its embedding covers the ~600-token summary text.
const (
	SummarizePromptTokens = 1800
	SummarizeOutputTokens = 500
	EmbedTokens           = 600
	// SummarizePrefillWeight converts prompt tokens to work units,
	// matching llmsim.NVLMText().PrefillWeight.
	SummarizePrefillWeight = 0.10
)

// SummarizeWork is the profile-work of one scene summarization.
func SummarizeWork() float64 {
	return SummarizePromptTokens*SummarizePrefillWeight + SummarizeOutputTokens
}

// Pre-rendered metadata values and a small-integer table: decomposition runs
// on every admission in per-request mode, so formatting the same constant
// token counts and single-digit scene/topic indices through fmt on each
// build showed up as a top allocation site.
var (
	summarizePromptTokensStr = strconv.Itoa(SummarizePromptTokens)
	summarizeOutputTokensStr = strconv.Itoa(SummarizeOutputTokens)
	embedTokensStr           = strconv.Itoa(EmbedTokens)

	smallInts [64]string
)

func init() {
	for i := range smallInts {
		smallInts[i] = strconv.Itoa(i)
	}
}

// smallInt renders a non-negative index, allocation-free for the values the
// templates actually produce.
func smallInt(n int) string {
	if n >= 0 && n < len(smallInts) {
		return smallInts[n]
	}
	return strconv.Itoa(n)
}

// floatStr renders f exactly as fmt.Sprint does (shortest round-trip form),
// without fmt's boxing.
func floatStr(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func (p *Planner) buildVideoUnderstanding(res *Result, job workflow.Job) error {
	g := res.Graph
	videos := 0
	for vi, in := range job.Inputs {
		if in.Kind != workflow.InputVideo {
			continue
		}
		videos++
		scenes := int(in.Attr("scenes", 1))
		frames := in.Attr("frames_per_scene", 24)
		sceneLen := in.Attr("scene_len_s", 30)
		viStr := smallInt(vi)
		framesStr := strconv.Itoa(int(frames))
		sceneLenStr := floatStr(sceneLen)
		for s := 0; s < scenes; s++ {
			sStr := smallInt(s)
			ext := dag.NodeID("ext_v" + viStr + "_s" + sStr)
			stt := dag.NodeID("stt_v" + viStr + "_s" + sStr)
			det := dag.NodeID("det_v" + viStr + "_s" + sStr)
			sum := dag.NodeID("sum_v" + viStr + "_s" + sStr)
			emb := dag.NodeID("emb_v" + viStr + "_s" + sStr)
			g.MustAddNode(dag.Node{ID: ext, Capability: string(agents.CapFrameExtraction),
				Label: "extract " + in.Name + " scene " + sStr, Work: frames,
				Metadata: map[string]string{"video": in.Name, "scene": sStr, "num_frames": framesStr}})
			g.MustAddNode(dag.Node{ID: stt, Capability: string(agents.CapSpeechToText),
				Label: "transcribe " + in.Name + " scene " + sStr, Work: sceneLen,
				Metadata: map[string]string{"video": in.Name, "scene": sStr, "audio_s": sceneLenStr}})
			g.MustAddNode(dag.Node{ID: det, Capability: string(agents.CapObjectDetection),
				Label: "detect " + in.Name + " scene " + sStr, Work: frames,
				Metadata: map[string]string{"video": in.Name, "scene": sStr}})
			g.MustAddNode(dag.Node{ID: sum, Capability: string(agents.CapSummarization),
				Label: "summarize " + in.Name + " scene " + sStr, Work: SummarizeWork(),
				Metadata: map[string]string{"video": in.Name, "scene": sStr,
					"prompt_tokens": summarizePromptTokensStr, "output_tokens": summarizeOutputTokensStr}})
			g.MustAddNode(dag.Node{ID: emb, Capability: string(agents.CapEmbedding),
				Label: "embed " + in.Name + " scene " + sStr, Work: EmbedTokens,
				Metadata: map[string]string{"video": in.Name, "scene": sStr, "prompt_tokens": embedTokensStr}})
			// Dataflow: frames feed detection; transcript and detections
			// feed the summary; the summary is embedded. Speech-to-Text has
			// no upstream dependency — exactly why the paper identifies it
			// as "the main dependency for the later stages".
			g.MustAddEdge(ext, det)
			g.MustAddEdge(stt, sum)
			g.MustAddEdge(det, sum)
			g.MustAddEdge(sum, emb)
		}
	}
	if videos == 0 {
		return fmt.Errorf("planner: video-understanding template without video inputs")
	}
	res.Trace = append(res.Trace, Step{
		Thought:     "Speech-to-Text is the main dependency for the later stages.",
		Action:      "expose per-scene parallelism in the DAG",
		Observation: fmt.Sprintf("%d videos, %d tasks", videos, g.Len()),
	})
	return nil
}

func (p *Planner) buildNewsfeed(res *Result, job workflow.Job) error {
	g := res.Graph
	var topicIDs []dag.NodeID
	user := "user"
	for _, in := range job.Inputs {
		if in.Kind == workflow.InputUser {
			user = in.Name
		}
	}
	for ti, in := range job.Inputs {
		if in.Kind != workflow.InputTopic {
			continue
		}
		id := dag.NodeID("search_t" + smallInt(ti))
		g.MustAddNode(dag.Node{ID: id, Capability: string(agents.CapWebSearch),
			Label: "search " + in.Name, Work: in.Attr("queries", 3),
			Metadata: map[string]string{"topic": in.Name, "user": user}})
		topicIDs = append(topicIDs, id)
	}
	if len(topicIDs) == 0 {
		return fmt.Errorf("planner: newsfeed template without topic inputs")
	}
	rank := dag.NodeID("rank")
	g.MustAddNode(dag.Node{ID: rank, Capability: string(agents.CapRanking),
		Label: "rank results", Work: float64(len(topicIDs) * 10),
		Metadata: map[string]string{"user": user}})
	gen := dag.NodeID("generate")
	g.MustAddNode(dag.Node{ID: gen, Capability: string(agents.CapSummarization),
		Label: "generate feed", Work: SummarizeWork(),
		Metadata: map[string]string{
			"user":          user,
			"prompt_tokens": summarizePromptTokensStr,
			"output_tokens": summarizeOutputTokensStr,
		}})
	sent := dag.NodeID("sentiment")
	g.MustAddNode(dag.Node{ID: sent, Capability: string(agents.CapSentiment),
		Label: "sentiment filter", Work: float64(len(topicIDs)),
		Metadata: map[string]string{"user": user}})
	for _, tid := range topicIDs {
		g.MustAddEdge(tid, rank)
	}
	g.MustAddEdge(rank, gen)
	g.MustAddEdge(gen, sent)
	return nil
}

func (p *Planner) buildDocQA(res *Result, job workflow.Job) error {
	g := res.Graph
	var embeds []dag.NodeID
	for di, in := range job.Inputs {
		if in.Kind != workflow.InputDoc {
			continue
		}
		id := dag.NodeID("embed_d" + smallInt(di))
		tokens := in.Attr("tokens", 800)
		g.MustAddNode(dag.Node{ID: id, Capability: string(agents.CapEmbedding),
			Label: "embed " + in.Name, Work: tokens,
			Metadata: map[string]string{"doc": in.Name, "prompt_tokens": strconv.Itoa(int(tokens))}})
		embeds = append(embeds, id)
	}
	if len(embeds) == 0 {
		return fmt.Errorf("planner: document-qa template without document inputs")
	}
	qa := dag.NodeID("answer")
	g.MustAddNode(dag.Node{ID: qa, Capability: string(agents.CapQA),
		Label: "answer question", Work: 400,
		Metadata: map[string]string{
			"prompt_tokens": "1200",
			"output_tokens": "280",
		}})
	for _, e := range embeds {
		g.MustAddEdge(e, qa)
	}
	return nil
}

// hintCapability maps a free-text task hint to a capability by keyword.
func hintCapability(hint string) (agents.Capability, error) {
	h := strings.ToLower(hint)
	switch {
	case strings.Contains(h, "frame"):
		return agents.CapFrameExtraction, nil
	case strings.Contains(h, "speech") || strings.Contains(h, "transcri") || strings.Contains(h, "audio"):
		return agents.CapSpeechToText, nil
	case strings.Contains(h, "object") || strings.Contains(h, "detect"):
		return agents.CapObjectDetection, nil
	case strings.Contains(h, "summar") || strings.Contains(h, "describe"):
		return agents.CapSummarization, nil
	case strings.Contains(h, "embed"):
		return agents.CapEmbedding, nil
	case strings.Contains(h, "search"):
		return agents.CapWebSearch, nil
	case strings.Contains(h, "rank"):
		return agents.CapRanking, nil
	case strings.Contains(h, "sentiment"):
		return agents.CapSentiment, nil
	case strings.Contains(h, "question") || strings.Contains(h, "answer"):
		return agents.CapQA, nil
	case strings.Contains(h, "calculat") || strings.Contains(h, "comput"):
		return agents.CapCalculator, nil
	default:
		return "", fmt.Errorf("planner: cannot map task hint %q to any capability", hint)
	}
}

func (p *Planner) buildHintChain(res *Result, job workflow.Job) error {
	g := res.Graph
	var prev []dag.NodeID
	for hi, hint := range job.Tasks {
		cap, err := hintCapability(hint)
		if err != nil {
			return err
		}
		if !p.lib.HasCapability(cap) {
			return fmt.Errorf("planner: no implementation in library for capability %q (hint %q)", cap, hint)
		}
		var level []dag.NodeID
		for ii, in := range job.Inputs {
			id := dag.NodeID("t" + smallInt(hi) + "_i" + smallInt(ii))
			g.MustAddNode(dag.Node{ID: id, Capability: string(cap),
				Label: hint + " / " + in.Name, Work: hintWork(cap, in),
				Metadata: map[string]string{"input": in.Name}})
			if len(prev) > 0 {
				// Chain per-input: task h on input i depends on task h-1 on i.
				g.MustAddEdge(prev[ii], id)
			}
			level = append(level, id)
		}
		prev = level
	}
	return nil
}

func hintWork(cap agents.Capability, in workflow.Input) float64 {
	switch cap {
	case agents.CapFrameExtraction, agents.CapObjectDetection:
		return in.Attr("frames_per_scene", 24) * in.Attr("scenes", 1)
	case agents.CapSpeechToText:
		return in.Attr("duration_s", 60)
	case agents.CapSummarization, agents.CapQA:
		return SummarizeWork()
	case agents.CapEmbedding:
		return in.Attr("tokens", EmbedTokens)
	default:
		return 1
	}
}
