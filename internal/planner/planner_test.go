package planner

import (
	"strings"
	"testing"

	"repro/internal/agents"
	"repro/internal/dag"
	"repro/internal/workflow"
)

func videoJob() workflow.Job {
	return workflow.Job{
		Description: "List objects shown/mentioned in the videos",
		Inputs: []workflow.Input{
			workflow.VideoInput("cats.mov", 240, 30, 24),
			workflow.VideoInput("formula_1.mov", 240, 30, 24),
		},
		Tasks: []string{
			"Extract frames from each video",
			"Run speech-to-text on all scenes",
			"Detect objects in the frames",
		},
		Constraint: workflow.MinCost,
	}
}

func newPlanner() *Planner { return New(agents.DefaultLibrary()) }

func TestDecomposeVideoUnderstanding(t *testing.T) {
	res, err := newPlanner().Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.Template != "video-understanding" {
		t.Fatalf("template = %q", res.Template)
	}
	// 2 videos × 8 scenes × 5 tasks.
	if res.Graph.Len() != 80 {
		t.Fatalf("DAG has %d nodes, want 80", res.Graph.Len())
	}
	if !res.Graph.Frozen() {
		t.Fatal("graph not frozen")
	}
	cw := res.Graph.CapabilityWork()
	if cw[string(agents.CapSpeechToText)] != 480 {
		t.Fatalf("STT work = %v, want 480 audio-seconds", cw[string(agents.CapSpeechToText)])
	}
	if cw[string(agents.CapFrameExtraction)] != 2*8*24 {
		t.Fatalf("extraction work = %v, want 384 frames", cw[string(agents.CapFrameExtraction)])
	}
}

func TestVideoDAGDependencies(t *testing.T) {
	res, err := newPlanner().Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	// STT has no predecessors (it is the root dependency of later stages).
	if got := g.Predecessors("stt_v0_s0"); len(got) != 0 {
		t.Fatalf("stt predecessors = %v, want none", got)
	}
	// Summarize depends on both stt and detect.
	preds := g.Predecessors("sum_v0_s0")
	if len(preds) != 2 {
		t.Fatalf("summarize predecessors = %v, want [det stt]", preds)
	}
	// Embedding depends on summarize.
	if got := g.Predecessors("emb_v0_s0"); len(got) != 1 || got[0] != "sum_v0_s0" {
		t.Fatalf("embed predecessors = %v", got)
	}
	// Critical path runs through STT or extraction into summarize+embed.
	path, _ := g.CriticalPath()
	last := path[len(path)-1]
	if !strings.HasPrefix(string(last), "emb_") {
		t.Fatalf("critical path ends at %s, want an embedding node", last)
	}
}

func TestDecomposeRecordsReActTrace(t *testing.T) {
	res, err := newPlanner().Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 3 {
		t.Fatalf("trace has %d steps, want >= 3", len(res.Trace))
	}
	var foundSTT bool
	for _, s := range res.Trace {
		if strings.Contains(s.Thought, "Speech-to-Text is the main dependency") {
			foundSTT = true
		}
		if s.Action == "" || s.Thought == "" {
			t.Fatalf("incomplete ReAct step %+v", s)
		}
	}
	if !foundSTT {
		t.Fatal("trace missing the paper's STT-dependency observation")
	}
}

func TestPlanningQueriesSmall(t *testing.T) {
	res, err := newPlanner().Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) < 2 {
		t.Fatalf("queries = %d, want >= 2 (decompose + tool calls)", len(res.Queries))
	}
	prompt, output := res.TotalPlanningTokens()
	if prompt <= 0 || output <= 0 {
		t.Fatal("planning token counts not positive")
	}
	// §3.3(b): short input, short output queries.
	if output > 1000 {
		t.Fatalf("planning output tokens = %d, want short (<1000)", output)
	}
}

func TestDecomposeNewsfeed(t *testing.T) {
	job := workflow.Job{
		Description: "Generate social media newsfeed for Alice",
		Inputs: []workflow.Input{
			{Name: "alice", Kind: workflow.InputUser, Attrs: map[string]float64{}},
			{Name: "f1", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "cats", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
			{Name: "cooking", Kind: workflow.InputTopic, Attrs: map[string]float64{"queries": 3}},
		},
		Constraint: workflow.MinLatency,
	}
	res, err := newPlanner().Decompose(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Template != "newsfeed" {
		t.Fatalf("template = %q", res.Template)
	}
	// 3 searches + rank + generate + sentiment.
	if res.Graph.Len() != 6 {
		t.Fatalf("nodes = %d, want 6", res.Graph.Len())
	}
	if got := res.Graph.Predecessors("rank"); len(got) != 3 {
		t.Fatalf("rank fan-in = %d, want 3", len(got))
	}
	if got := res.Graph.Successors("generate"); len(got) != 1 || got[0] != "sentiment" {
		t.Fatalf("generate successors = %v", got)
	}
}

func TestDecomposeDocQA(t *testing.T) {
	job := workflow.Job{
		Description: "Answer questions about the contracts",
		Inputs: []workflow.Input{
			{Name: "a.pdf", Kind: workflow.InputDoc, Attrs: map[string]float64{"tokens": 1000}},
			{Name: "b.pdf", Kind: workflow.InputDoc, Attrs: map[string]float64{"tokens": 500}},
		},
		Constraint: workflow.MaxQuality,
	}
	res, err := newPlanner().Decompose(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Template != "document-qa" {
		t.Fatalf("template = %q", res.Template)
	}
	if got := res.Graph.Predecessors("answer"); len(got) != 2 {
		t.Fatalf("answer fan-in = %d, want 2", len(got))
	}
}

func TestHintChainFallback(t *testing.T) {
	job := workflow.Job{
		Description: "Process the recordings", // matches no template
		Inputs: []workflow.Input{
			{Name: "rec1", Kind: workflow.InputText, Attrs: map[string]float64{"duration_s": 120}},
			{Name: "rec2", Kind: workflow.InputText, Attrs: map[string]float64{"duration_s": 60}},
		},
		Tasks: []string{
			"Run speech-to-text on the audio",
			"Summarize the transcript",
		},
		Constraint: workflow.MinCost,
	}
	res, err := newPlanner().Decompose(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Template != "hint-chain" {
		t.Fatalf("template = %q", res.Template)
	}
	// 2 hints × 2 inputs, chained per input.
	if res.Graph.Len() != 4 {
		t.Fatalf("nodes = %d, want 4", res.Graph.Len())
	}
	if got := res.Graph.Predecessors("t1_i0"); len(got) != 1 || got[0] != "t0_i0" {
		t.Fatalf("chain broken: %v", got)
	}
}

func TestUndeconposableJobErrors(t *testing.T) {
	job := workflow.Job{
		Description: "Do something wonderful",
		Inputs:      []workflow.Input{{Name: "x", Kind: workflow.InputText}},
		Constraint:  workflow.MinCost,
	}
	if _, err := newPlanner().Decompose(job); err == nil {
		t.Fatal("undeconposable job accepted")
	}
}

func TestUnknownHintErrors(t *testing.T) {
	job := workflow.Job{
		Description: "Process things",
		Inputs:      []workflow.Input{{Name: "x", Kind: workflow.InputText}},
		Tasks:       []string{"Perform quantum chromodynamics"},
		Constraint:  workflow.MinCost,
	}
	if _, err := newPlanner().Decompose(job); err == nil {
		t.Fatal("unmappable hint accepted")
	}
}

func TestInvalidJobRejected(t *testing.T) {
	if _, err := newPlanner().Decompose(workflow.Job{}); err == nil {
		t.Fatal("empty job accepted")
	}
}

func TestToolCallGeneration(t *testing.T) {
	p := newPlanner()
	res, err := p.Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	node, _ := res.Graph.Node("ext_v0_s0")
	tc, err := p.ToolCallFor(node, agents.ImplOpenCV)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Args["file"] != "cats.mov" {
		t.Fatalf("tool call file = %q, want cats.mov", tc.Args["file"])
	}
	if tc.Args["num_frames"] != "24" {
		t.Fatalf("num_frames = %q", tc.Args["num_frames"])
	}
	// The paper's example shape: FrameExtractor(..., file="cats.mov").
	if !strings.Contains(tc.String(), `file="cats.mov"`) {
		t.Fatalf("rendered call = %s", tc.String())
	}
}

func TestToolCallForEveryNode(t *testing.T) {
	p := newPlanner()
	lib := agents.DefaultLibrary()
	res, err := p.Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Graph.Nodes() {
		impls := lib.ByCapability(agents.Capability(n.Capability))
		if len(impls) == 0 {
			t.Fatalf("no implementation for %s", n.Capability)
		}
		if _, err := p.ToolCallFor(n, impls[0].Name); err != nil {
			t.Fatalf("tool call for %s via %s: %v", n.ID, impls[0].Name, err)
		}
	}
}

func TestToolCallCapabilityMismatch(t *testing.T) {
	p := newPlanner()
	node := &dag.Node{ID: "x", Capability: string(agents.CapSpeechToText)}
	if _, err := p.ToolCallFor(node, agents.ImplOpenCV); err == nil {
		t.Fatal("capability mismatch accepted")
	}
	if _, err := p.ToolCallFor(node, "ghost"); err == nil {
		t.Fatal("unknown implementation accepted")
	}
}

func TestDeterministicDecomposition(t *testing.T) {
	a, err := newPlanner().Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	b, err := newPlanner().Decompose(videoJob())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.String() != b.Graph.String() {
		t.Fatal("decomposition not deterministic")
	}
}
