package clustermgr

import "repro/internal/sim"

// Circuit breakers quarantine flapping implementations: after threshold
// consecutive failures an implementation's breaker opens and admission of
// retries against it is refused until a cooldown elapses, at which point a
// single half-open probe is let through — success closes the breaker,
// failure re-opens it for another cooldown. The breaker lives here, not in
// core: the manager owns capability→engine placement, so it is the layer
// that sees failures from every execution against the same implementation,
// and the quarantine signal feeds both retry admission and the scheduler's
// degradation decision.

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one implementation's failure state machine.
type breaker struct {
	state     breakerState
	failures  int // consecutive failures while closed
	openUntil sim.Time
	probing   bool // half-open with the single probe outstanding
	trips     int
}

// breakerSet is the manager's breaker table (nil until EnableBreakers).
type breakerSet struct {
	threshold int
	cooldown  sim.Duration
	byKey     map[string]*breaker
}

// EnableBreakers turns circuit breaking on: threshold consecutive failures
// of an implementation open its breaker for cooldownS simulated seconds.
// Call once, before failures are reported.
func (m *Manager) EnableBreakers(threshold int, cooldownS float64) {
	if m.breakers != nil {
		panic("clustermgr: breakers already enabled")
	}
	if threshold <= 0 || cooldownS <= 0 {
		panic("clustermgr: breaker threshold and cooldown must be positive")
	}
	m.breakers = &breakerSet{
		threshold: threshold,
		cooldown:  sim.Duration(cooldownS),
		byKey:     map[string]*breaker{},
	}
}

// BreakersEnabled reports whether circuit breaking is on.
func (m *Manager) BreakersEnabled() bool { return m.breakers != nil }

// ReportOutcome feeds one task outcome against an implementation into its
// breaker. No-op when breakers are disabled.
func (m *Manager) ReportOutcome(impl string, ok bool) {
	bs := m.breakers
	if bs == nil || impl == "" {
		return
	}
	b := bs.byKey[impl]
	if b == nil {
		if ok {
			return // don't allocate state for healthy implementations
		}
		b = &breaker{}
		bs.byKey[impl] = b
	}
	switch b.state {
	case breakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= bs.threshold {
			b.trip(m.se.Now(), bs.cooldown)
		}
	case breakerOpen:
		if !ok {
			// Still failing while open (in-flight stragglers): extend.
			b.openUntil = m.se.Now().Add(bs.cooldown)
		}
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.failures = 0
		} else {
			b.trip(m.se.Now(), bs.cooldown)
		}
	}
}

func (b *breaker) trip(now sim.Time, cooldown sim.Duration) {
	b.state = breakerOpen
	b.openUntil = now.Add(cooldown)
	b.failures = 0
	b.probing = false
	b.trips++
}

// Admissible reports whether work may be sent to an implementation. While a
// breaker is open it always answers false until the cooldown elapses; the
// first call after that transitions to half-open and admits exactly one
// probe (further calls answer false until the probe's outcome is reported).
// Always true when breakers are disabled or the implementation never failed.
func (m *Manager) Admissible(impl string) bool {
	bs := m.breakers
	if bs == nil {
		return true
	}
	b := bs.byKey[impl]
	if b == nil {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if m.se.Now() < b.openUntil {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Quarantined reports whether an implementation's breaker is currently not
// closed — the signal the scheduler's degradation policy keys on when
// choosing a replacement implementation.
func (m *Manager) Quarantined(impl string) bool {
	bs := m.breakers
	if bs == nil {
		return false
	}
	b := bs.byKey[impl]
	return b != nil && b.state != breakerClosed
}

// BreakerStats returns the number of breakers currently open or half-open,
// and total trips so far.
func (m *Manager) BreakerStats() (open, trips int) {
	bs := m.breakers
	if bs == nil {
		return 0, 0
	}
	for _, b := range bs.byKey {
		if b.state != breakerClosed {
			open++
		}
		trips += b.trips
	}
	return open, trips
}
