// Package clustermgr implements the paper's workflow-aware cluster manager
// (§3.2): it owns the cluster's allocations and the LLM serving engines,
// queues resource requests, exports utilization stats to the orchestrator
// (the "Resource-Aware Workflow Orchestration" feed), receives workflow DAGs
// from the orchestrator (the "Workflow-Aware Cluster Management" feed), and
// runs a rebalancing loop that reallocates GPUs between models based on
// upcoming demand — the paper's example of moving GPUs from Whisper to Llama
// when no Speech-to-Text work is expected.
package clustermgr

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/hardware"
	"repro/internal/llmsim"
	"repro/internal/sim"
)

// EngineReloadDelayS models weight reloading when an engine is rebuilt
// after losing its VM to preemption.
const EngineReloadDelayS = 5.0

// Manager is the cluster manager.
type Manager struct {
	se  *sim.Engine
	cl  *cluster.Cluster
	cat *hardware.Catalog

	engines map[string]*EngineHandle // by model name

	// The pending queues pop via head cursors and compact to [:0] when
	// drained, so one backing array serves every burst — popping with
	// s = s[1:] made each later append re-allocate the queue.
	pendingGPU []gpuRequest
	gpuHead    int
	pendingCPU []cpuRequest
	cpuHead    int
	draining   bool
	resizing   bool

	trackers []*dag.Tracker
	ticker   *sim.Ticker

	// breakers is the per-implementation circuit-breaker table (nil until
	// EnableBreakers; see breaker.go).
	breakers *breakerSet

	// Rebalance accounting for the ablation benches.
	grows, shrinks int
	// rebalanceHooks fire after a Rebalance pass that resized at least one
	// engine — how the scheduler's reconfiguration controller observes fleet
	// reshaping that the cluster's capacity generation cannot see (engine
	// resizes move allocations, not totals).
	rebalanceHooks []func()
}

type gpuRequest struct {
	n     int
	t     hardware.GPUType
	grant func(*cluster.GPUAlloc)
}

type cpuRequest struct {
	cores int
	grant func(*cluster.CPUAlloc)
}

// EngineHandle pairs a serving engine with its allocation and scaling
// envelope.
type EngineHandle struct {
	Capability string
	Spec       llmsim.ModelSpec
	Engine     *llmsim.Engine
	GPUType    hardware.GPUType

	alloc            *cluster.GPUAlloc
	minGPUs, maxGPUs int
	pinned           bool
	rebuilding       bool
	mgr              *Manager
}

// GPUs returns the engine's current GPU count.
func (h *EngineHandle) GPUs() int { return h.Engine.GPUs() }

// Pinned reports whether autoscaling is disabled for this engine.
func (h *EngineHandle) Pinned() bool { return h.pinned }

// New creates a manager over a cluster.
func New(se *sim.Engine, cl *cluster.Cluster) *Manager {
	m := &Manager{
		se:      se,
		cl:      cl,
		cat:     cl.Catalog(),
		engines: map[string]*EngineHandle{},
	}
	cl.OnRelease(m.drainPending)
	cl.OnPreempt(m.handlePreempt)
	return m
}

// Cluster returns the managed cluster.
func (m *Manager) Cluster() *cluster.Cluster { return m.cl }

// RequestGPUs asynchronously acquires n GPUs of type t, invoking grant when
// they are held. Requests queue FIFO when capacity is unavailable.
// Impossible requests (more than the cluster ever had) error immediately.
func (m *Manager) RequestGPUs(n int, t hardware.GPUType, grant func(*cluster.GPUAlloc)) error {
	if n <= 0 {
		return fmt.Errorf("clustermgr: non-positive GPU request %d", n)
	}
	if m.cl.TotalGPUs(t) < n {
		return fmt.Errorf("clustermgr: request for %d %s GPUs exceeds cluster total %d",
			n, t, m.cl.TotalGPUs(t))
	}
	m.pendingGPU = append(m.pendingGPU, gpuRequest{n: n, t: t, grant: grant})
	m.se.Defer(m.drainPending)
	return nil
}

// RequestCPUs asynchronously acquires cores on one VM.
func (m *Manager) RequestCPUs(cores int, grant func(*cluster.CPUAlloc)) error {
	if cores <= 0 {
		return fmt.Errorf("clustermgr: non-positive CPU request %d", cores)
	}
	most := 0
	for _, vm := range m.cl.VMs() {
		if vm.SKU.CPUCores > most {
			most = vm.SKU.CPUCores
		}
	}
	if cores > most {
		return fmt.Errorf("clustermgr: request for %d cores exceeds largest VM (%d)", cores, most)
	}
	m.pendingCPU = append(m.pendingCPU, cpuRequest{cores: cores, grant: grant})
	m.se.Defer(m.drainPending)
	return nil
}

// drainPending grants queued requests FIFO while capacity allows. GPU and
// CPU queues are independent; within each, the head blocks later requests
// (no starvation).
func (m *Manager) drainPending() {
	if m.draining || m.resizing {
		return
	}
	m.draining = true
	defer func() { m.draining = false }()

	for m.gpuHead < len(m.pendingGPU) {
		req := m.pendingGPU[m.gpuHead]
		alloc, err := m.cl.AllocGPUs(req.n, req.t)
		if err != nil {
			break
		}
		m.pendingGPU[m.gpuHead] = gpuRequest{} // drop the grant closure ref
		m.gpuHead++
		req.grant(alloc)
	}
	if m.gpuHead == len(m.pendingGPU) {
		m.pendingGPU = m.pendingGPU[:0]
		m.gpuHead = 0
	}
	for m.cpuHead < len(m.pendingCPU) {
		req := m.pendingCPU[m.cpuHead]
		alloc, err := m.cl.AllocCPUs(req.cores)
		if err != nil {
			break
		}
		m.pendingCPU[m.cpuHead] = cpuRequest{}
		m.cpuHead++
		req.grant(alloc)
	}
	if m.cpuHead == len(m.pendingCPU) {
		m.pendingCPU = m.pendingCPU[:0]
		m.cpuHead = 0
	}
}

// PendingGPURequests returns the GPU queue depth.
func (m *Manager) PendingGPURequests() int { return len(m.pendingGPU) - m.gpuHead }

// PendingCPURequests returns the CPU queue depth.
func (m *Manager) PendingCPURequests() int { return len(m.pendingCPU) - m.cpuHead }

// EnsureEngine returns the engine serving spec.Name, creating it with the
// given GPU count if absent. pinned engines are exempt from autoscaling
// (the §4 setup pins NVLM at 8 text + 2 embedding GPUs). min/max bound the
// autoscaler; they default to (1, gpus) when zero.
func (m *Manager) EnsureEngine(capability string, spec llmsim.ModelSpec, gpus int, t hardware.GPUType, minGPUs, maxGPUs int, pinned bool) (*EngineHandle, error) {
	if h, ok := m.engines[spec.Name]; ok {
		return h, nil
	}
	alloc, err := m.cl.AllocGPUs(gpus, t)
	if err != nil {
		return nil, fmt.Errorf("clustermgr: cannot place engine %s: %w", spec.Name, err)
	}
	eng, err := llmsim.NewEngine(m.se, m.cat, spec, alloc)
	if err != nil {
		alloc.Release()
		return nil, err
	}
	if minGPUs <= 0 {
		minGPUs = 1
	}
	if maxGPUs <= 0 {
		maxGPUs = gpus
	}
	h := &EngineHandle{
		Capability: capability,
		Spec:       spec,
		Engine:     eng,
		GPUType:    t,
		alloc:      alloc,
		minGPUs:    minGPUs,
		maxGPUs:    maxGPUs,
		pinned:     pinned,
		mgr:        m,
	}
	alloc.OnPreempt = func() { m.rebuildEngine(h) }
	m.engines[spec.Name] = h
	return h, nil
}

// Engine returns an engine handle by model name.
func (m *Manager) Engine(model string) (*EngineHandle, bool) {
	h, ok := m.engines[model]
	return h, ok
}

// EngineForCapability returns the first engine serving a capability (model
// names sorted for determinism).
func (m *Manager) EngineForCapability(capability string) (*EngineHandle, bool) {
	var names []string
	for name, h := range m.engines {
		if h.Capability == capability {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, false
	}
	sort.Strings(names)
	return m.engines[names[0]], true
}

// ReleaseEngine tears down an engine and frees its GPUs. Releasing an
// engine with in-flight work is the caller's responsibility to avoid (use
// Engine.OnDrained).
func (m *Manager) ReleaseEngine(model string) {
	h, ok := m.engines[model]
	if !ok {
		return
	}
	delete(m.engines, model)
	h.alloc.OnPreempt = nil
	h.alloc.Release()
}

// RegisterWorkflow gives the manager DAG visibility for lookahead.
func (m *Manager) RegisterWorkflow(t *dag.Tracker) {
	m.trackers = append(m.trackers, t)
}

// UnregisterWorkflow removes a completed workflow.
func (m *Manager) UnregisterWorkflow(t *dag.Tracker) {
	for i, existing := range m.trackers {
		if existing == t {
			m.trackers = append(m.trackers[:i], m.trackers[i+1:]...)
			return
		}
	}
}

// UpcomingDemand aggregates remaining capability work across registered
// workflows — the signal behind proactive scaling decisions.
func (m *Manager) UpcomingDemand() map[string]float64 {
	out := map[string]float64{}
	for _, t := range m.trackers {
		for cap, work := range t.RemainingCapabilityWork() {
			out[cap] += work
		}
	}
	return out
}

// EngineStats summarizes one serving engine for the stats feed.
type EngineStats struct {
	Model      string
	Capability string
	GPUs       int
	QueueDepth int
	Active     int
	KVUsed     int
	KVCapacity int
}

// Stats is the §3.2 stats feed: cluster capacity plus engine state.
type Stats struct {
	Cluster cluster.Snapshot
	Engines map[string]EngineStats
}

// Stats captures the current view.
func (m *Manager) Stats() Stats {
	s := Stats{Cluster: m.cl.Snapshot(), Engines: map[string]EngineStats{}}
	for name, h := range m.engines {
		s.Engines[name] = EngineStats{
			Model:      name,
			Capability: h.Capability,
			GPUs:       h.Engine.GPUs(),
			QueueDepth: h.Engine.QueueDepth(),
			Active:     h.Engine.ActiveCount(),
			KVUsed:     h.Engine.KVUsed(),
			KVCapacity: h.Engine.KVCapacity(),
		}
	}
	return s
}

// Rebalances returns (grows, shrinks) performed so far.
func (m *Manager) Rebalances() (int, int) { return m.grows, m.shrinks }

// OnRebalance registers a hook invoked after every Rebalance pass that
// actually resized an engine. Hooks run on the simulation goroutine at the
// end of the pass, after queued requests were re-drained.
func (m *Manager) OnRebalance(fn func()) { m.rebalanceHooks = append(m.rebalanceHooks, fn) }
