package clustermgr

import (
	"testing"

	"repro/internal/sim"
)

// TestBreakerNeverReadmitsWhileOpen is the breaker's core safety property:
// from the trip until the cooldown elapses, Admissible answers false at
// every instant, no matter how often it is asked or how many more failures
// arrive (late failures extend the window, never shorten it).
func TestBreakerNeverReadmitsWhileOpen(t *testing.T) {
	se, _, m := testMgr(t)
	m.EnableBreakers(3, 10)
	for i := 0; i < 3; i++ {
		if !m.Admissible("llava") {
			t.Fatalf("breaker tripped after %d failures, threshold is 3", i)
		}
		m.ReportOutcome("llava", false)
	}
	if m.Admissible("llava") {
		t.Fatal("admissible immediately after tripping")
	}
	if !m.Quarantined("llava") {
		t.Fatal("tripped implementation not quarantined")
	}
	// Probe admissibility at every simulated second of the cooldown: the
	// breaker must hold, including under repeated polling at one instant.
	for s := 1; s < 10; s++ {
		s := s
		se.Schedule(sim.Time(s), func() {
			for i := 0; i < 3; i++ {
				if m.Admissible("llava") {
					t.Errorf("breaker re-admitted at %ds, cooldown is 10s", s)
				}
			}
		})
	}
	// A straggler failure at 6s extends the window to 16s.
	se.Schedule(6, func() { m.ReportOutcome("llava", false) })
	for s := 10; s < 16; s++ {
		s := s
		se.Schedule(sim.Time(s), func() {
			if m.Admissible("llava") {
				t.Errorf("breaker re-admitted at %ds despite the 6s straggler extending to 16s", s)
			}
		})
	}
	se.Run()
}

// TestBreakerHalfOpenSingleProbe checks the half-open protocol: after the
// cooldown exactly one probe is admitted, further callers are refused until
// its outcome lands, a failed probe re-opens for a fresh cooldown and a
// successful probe closes the breaker and resets the failure count.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	se, _, m := testMgr(t)
	m.EnableBreakers(2, 5)
	m.ReportOutcome("whisper", false)
	m.ReportOutcome("whisper", false)
	se.Schedule(5, func() {
		if !m.Admissible("whisper") {
			t.Error("no probe admitted after the cooldown")
		}
		if m.Admissible("whisper") {
			t.Error("second probe admitted while the first is outstanding")
		}
		if !m.Quarantined("whisper") {
			t.Error("half-open breaker not quarantined")
		}
		// Probe fails: re-open for another 5s.
		m.ReportOutcome("whisper", false)
		if m.Admissible("whisper") {
			t.Error("admissible right after a failed probe")
		}
	})
	se.Schedule(10, func() {
		if !m.Admissible("whisper") {
			t.Error("no probe admitted after the second cooldown")
		}
		// Probe succeeds: closed, failures reset.
		m.ReportOutcome("whisper", true)
		if !m.Admissible("whisper") || m.Quarantined("whisper") {
			t.Error("breaker not closed after a successful probe")
		}
		// One more failure must not trip the reset counter (threshold 2).
		m.ReportOutcome("whisper", false)
		if !m.Admissible("whisper") {
			t.Error("breaker tripped on one failure after reset")
		}
	})
	se.Run()
	open, trips := m.BreakerStats()
	if open != 0 || trips != 2 {
		t.Fatalf("breaker stats open=%d trips=%d, want 0 open and 2 trips", open, trips)
	}
}

// TestBreakerSuccessResetsClosedCount: consecutive-failure counting, not
// cumulative — a success between failures keeps the breaker closed.
func TestBreakerSuccessResetsClosedCount(t *testing.T) {
	_, _, m := testMgr(t)
	m.EnableBreakers(2, 5)
	for i := 0; i < 6; i++ {
		m.ReportOutcome("nvlm", false)
		m.ReportOutcome("nvlm", true)
	}
	if !m.Admissible("nvlm") || m.Quarantined("nvlm") {
		t.Fatal("alternating outcomes tripped a threshold-2 breaker")
	}
	if open, trips := m.BreakerStats(); open != 0 || trips != 0 {
		t.Fatalf("breaker stats open=%d trips=%d, want zeros", open, trips)
	}
}

// TestBreakerDisabledAlwaysAdmits: with breakers off (the default) every
// outcome is accepted silently and everything stays admissible — the
// recovery-disabled daemon must be unaffected by the subsystem's existence.
func TestBreakerDisabledAlwaysAdmits(t *testing.T) {
	_, _, m := testMgr(t)
	for i := 0; i < 10; i++ {
		m.ReportOutcome("llava", false)
	}
	if !m.Admissible("llava") || m.Quarantined("llava") {
		t.Fatal("disabled breakers affected admission")
	}
	if m.BreakersEnabled() {
		t.Fatal("breakers report enabled without EnableBreakers")
	}
	if open, trips := m.BreakerStats(); open != 0 || trips != 0 {
		t.Fatalf("breaker stats open=%d trips=%d without enablement", open, trips)
	}
}

func TestEnableBreakersValidates(t *testing.T) {
	for _, tc := range []struct {
		name      string
		threshold int
		cooldown  float64
	}{
		{"zero threshold", 0, 5},
		{"zero cooldown", 3, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, m := testMgr(t)
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			m.EnableBreakers(tc.threshold, tc.cooldown)
		})
	}
	t.Run("double enable", func(t *testing.T) {
		_, _, m := testMgr(t)
		m.EnableBreakers(3, 5)
		defer func() {
			if recover() == nil {
				t.Fatal("want panic")
			}
		}()
		m.EnableBreakers(3, 5)
	})
}
