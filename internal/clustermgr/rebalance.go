package clustermgr

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// This file implements the manager's proactive rebalancing loop — the §3.2
// claim that DAG visibility lets the cluster manager "rebalance resources
// across models and tools more effectively": engines with queued work and
// upcoming demand grow; engines whose capability has no remaining work in
// any registered workflow shrink to their minimum, freeing GPUs for queued
// requests and other engines.

// growQueueThreshold is the queue depth that triggers a grow attempt.
const growQueueThreshold = 2

// EnableRebalancing starts the loop with the given period. Call once.
func (m *Manager) EnableRebalancing(period sim.Duration) {
	if m.ticker != nil {
		panic("clustermgr: rebalancing already enabled")
	}
	m.ticker = sim.NewTicker(m.se, period, func(sim.Time) { m.Rebalance() })
}

// StopRebalancing cancels the loop.
func (m *Manager) StopRebalancing() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// RebalancingEnabled reports whether the loop is running.
func (m *Manager) RebalancingEnabled() bool { return m.ticker != nil }

// Rebalance performs one scaling pass. Exposed for tests and for callers
// that want explicit control instead of the ticker.
func (m *Manager) Rebalance() {
	resizedBefore := m.grows + m.shrinks
	demand := m.UpcomingDemand()
	// Deterministic engine order.
	names := make([]string, 0, len(m.engines))
	for n := range m.engines {
		names = append(names, n)
	}
	sortStrings(names)

	// Shrink first: idle engines with no upcoming demand release GPUs that
	// the grow pass (and queued requests) can then use.
	for _, n := range names {
		h := m.engines[n]
		if h.pinned || h.rebuilding {
			continue
		}
		idle := h.Engine.ActiveCount() == 0 && h.Engine.QueueDepth() == 0
		if idle && demand[h.Capability] == 0 && h.Engine.GPUs() > h.minGPUs {
			if m.resizeEngine(h, h.minGPUs) {
				m.shrinks++
			}
		}
	}
	for _, n := range names {
		h := m.engines[n]
		if h.pinned || h.rebuilding {
			continue
		}
		saturated := h.Engine.Utilization() > 0.9 && h.Engine.ActiveCount() > h.Engine.GPUs()
		if (h.Engine.QueueDepth() >= growQueueThreshold || saturated) && h.Engine.GPUs() < h.maxGPUs {
			target := h.Engine.GPUs() + 1
			free := m.cl.FreeGPUs(h.GPUType)
			if free >= 1 && m.resizeEngine(h, target) {
				m.grows++
			}
		}
	}
	m.drainPending()
	if m.grows+m.shrinks != resizedBefore {
		for _, fn := range m.rebalanceHooks {
			fn()
		}
	}
}

// resizeEngine rebinds an engine to a new GPU count. The old allocation is
// released first and the new one taken immediately; the m.resizing guard
// keeps the release hooks from granting the freed GPUs to queued requests
// in between (the simulation is single-threaded, so nothing else can run).
// If the new allocation fails, the engine is restored to its previous size —
// which cannot fail, because those GPUs were just freed.
func (m *Manager) resizeEngine(h *EngineHandle, gpus int) bool {
	if gpus == h.Engine.GPUs() {
		return false
	}
	m.resizing = true
	defer func() {
		m.resizing = false
		m.drainPending()
	}()

	old := h.alloc
	oldSize := old.Count()
	old.OnPreempt = nil
	old.Release()
	alloc, err := m.cl.AllocGPUs(gpus, h.GPUType)
	if err != nil {
		alloc, err = m.cl.AllocGPUs(oldSize, h.GPUType)
		if err != nil {
			panic("clustermgr: cannot restore engine allocation after failed resize")
		}
	}
	h.alloc = alloc
	alloc.OnPreempt = func() { m.rebuildEngine(h) }
	if rerr := h.Engine.Resize(alloc); rerr != nil {
		panic(rerr) // alloc is non-empty by construction
	}
	return err == nil
}

// rebuildEngine recovers an engine whose VM was preempted: after a weight-
// reload delay it re-allocates at minimum size (queueing until capacity
// exists). In-flight requests were lost with the KV cache; llmsim keeps
// them queued/active and they resume under the new allocation.
func (m *Manager) rebuildEngine(h *EngineHandle) {
	if h.rebuilding {
		return
	}
	h.rebuilding = true
	m.se.After(EngineReloadDelayS, func() {
		err := m.RequestGPUs(h.minGPUs, h.GPUType, func(alloc *cluster.GPUAlloc) {
			h.alloc = alloc
			alloc.OnPreempt = func() { m.rebuildEngine(h) }
			if rerr := h.Engine.Resize(alloc); rerr != nil {
				panic(rerr)
			}
			h.rebuilding = false
		})
		if err != nil {
			panic(err) // minGPUs was valid at engine creation
		}
	})
}

func (m *Manager) handlePreempt(vm *cluster.VM) {
	// Allocation-level OnPreempt callbacks already handle engine rebuilds
	// and task retries; here we only retry queued requests, since capacity
	// shifted.
	m.se.Defer(m.drainPending)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
