package clustermgr

import (
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/llmsim"
)

func TestReleaseEngineFreesGPUs(t *testing.T) {
	se, cl, m := testMgr(t)
	_, err := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if cl.FreeGPUs(hardware.GPUA100) != 8 {
		t.Fatal("engine holds no GPUs")
	}
	m.ReleaseEngine("nvlm-d-72b")
	if cl.FreeGPUs(hardware.GPUA100) != 16 {
		t.Fatalf("free = %d after release, want 16", cl.FreeGPUs(hardware.GPUA100))
	}
	if _, ok := m.Engine("nvlm-d-72b"); ok {
		t.Fatal("engine still registered after release")
	}
	// Idempotent: unknown model is a no-op.
	m.ReleaseEngine("nvlm-d-72b")
	m.ReleaseEngine("never-existed")
	se.Run()
}

func TestReleaseEngineUnblocksQueuedRequests(t *testing.T) {
	se, _, m := testMgr(t)
	m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, true)
	var hold *cluster.GPUAlloc
	m.RequestGPUs(8, hardware.GPUA100, func(a *cluster.GPUAlloc) { hold = a })
	se.Run()
	var got *cluster.GPUAlloc
	m.RequestGPUs(8, hardware.GPUA100, func(a *cluster.GPUAlloc) { got = a })
	se.Run()
	if got != nil {
		t.Fatal("granted before engine release")
	}
	m.ReleaseEngine("nvlm-d-72b")
	se.Run()
	if got == nil {
		t.Fatal("engine release did not unblock the queued request")
	}
	if hold == nil {
		t.Fatal("first request never granted")
	}
}

func TestEnsureEngineFailsWithoutCapacity(t *testing.T) {
	_, cl, m := testMgr(t)
	hold, _ := cl.AllocGPUs(16, hardware.GPUA100)
	defer hold.Release()
	if _, err := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, true); err == nil {
		t.Fatal("engine placed on a full cluster")
	}
}

func TestRebalanceNoopWithoutEngines(t *testing.T) {
	se, _, m := testMgr(t)
	m.Rebalance() // must not panic with no engines
	grows, shrinks := m.Rebalances()
	if grows != 0 || shrinks != 0 {
		t.Fatalf("rebalances = %d/%d on empty manager", grows, shrinks)
	}
	se.Run()
}

func TestRebalanceGrowBlockedWhenClusterFull(t *testing.T) {
	se, cl, m := testMgr(t)
	h, _ := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 4, hardware.GPUA100, 4, 8, false)
	hold, _ := cl.AllocGPUs(12, hardware.GPUA100) // nothing free
	defer hold.Release()
	for i := 0; i < 80; i++ {
		h.Engine.Submit(&llmsim.Request{ID: string(rune('a' + i%26)), PromptTokens: 4000, OutputTokens: 1000})
	}
	m.Rebalance()
	if h.GPUs() != 4 {
		t.Fatalf("engine grew to %d with zero free GPUs", h.GPUs())
	}
	se.Run()
}

func TestStopRebalancingIdempotent(t *testing.T) {
	se, _, m := testMgr(t)
	m.StopRebalancing() // never enabled: no-op
	m.EnableRebalancing(5)
	if !m.RebalancingEnabled() {
		t.Fatal("not enabled")
	}
	m.StopRebalancing()
	m.StopRebalancing()
	if m.RebalancingEnabled() {
		t.Fatal("still enabled")
	}
	// Re-enabling after stop works.
	m.EnableRebalancing(5)
	m.StopRebalancing()
	se.Run()
}

func TestEnableRebalancingTwicePanics(t *testing.T) {
	_, _, m := testMgr(t)
	m.EnableRebalancing(5)
	defer func() {
		if recover() == nil {
			t.Fatal("double enable did not panic")
		}
		m.StopRebalancing()
	}()
	m.EnableRebalancing(5)
}
