package clustermgr

// Fault-injection entry points: the manager owns the engine table, so it is
// where a replayed fault trace's engine-level events resolve their victim.
// Victim selection iterates model names in sorted order, keeping injection
// deterministic for a fixed pick.

// CrashEngine crashes one serving engine (pick ∈ [0,1) selects it over the
// sorted model names): its active sequences re-queue and it reloads weights
// for reloadS seconds. Engines already rebuilding after preemption are
// skipped. Returns false when no engine is eligible.
func (m *Manager) CrashEngine(pick, reloadS float64) bool {
	var names []string
	for name, h := range m.engines {
		if h.rebuilding || h.Engine.Down() {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return false
	}
	sortStrings(names)
	m.engines[names[pickIndex(pick, len(names))]].Engine.Crash(reloadS)
	return true
}

// FailNextCall fails one in-flight or queued request on an engine that has
// any (pick selects the engine over sorted model names, then the request
// within it). Returns false when every engine is idle.
func (m *Manager) FailNextCall(pick float64) bool {
	var names []string
	for name, h := range m.engines {
		if h.Engine.ActiveCount()+h.Engine.QueueDepth() == 0 {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return false
	}
	sortStrings(names)
	return m.engines[names[pickIndex(pick, len(names))]].Engine.FailNext(pick)
}

// pickIndex maps pick ∈ [0,1) onto [0,n), clamping out-of-range values.
func pickIndex(pick float64, n int) int {
	idx := int(pick * float64(n))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}
