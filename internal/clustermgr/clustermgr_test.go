package clustermgr

import (
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/hardware"
	"repro/internal/llmsim"
	"repro/internal/sim"
)

func testMgr(t *testing.T) (*sim.Engine, *cluster.Cluster, *Manager) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	return se, cl, New(se, cl)
}

func TestRequestGPUsImmediate(t *testing.T) {
	se, _, m := testMgr(t)
	var got *cluster.GPUAlloc
	if err := m.RequestGPUs(4, hardware.GPUA100, func(a *cluster.GPUAlloc) { got = a }); err != nil {
		t.Fatal(err)
	}
	se.Run()
	if got == nil || got.Count() != 4 {
		t.Fatalf("grant = %v", got)
	}
}

func TestRequestGPUsQueuesUntilRelease(t *testing.T) {
	se, cl, m := testMgr(t)
	first, err := cl.AllocGPUs(16, hardware.GPUA100)
	if err != nil {
		t.Fatal(err)
	}
	var got *cluster.GPUAlloc
	m.RequestGPUs(8, hardware.GPUA100, func(a *cluster.GPUAlloc) { got = a })
	se.Run()
	if got != nil {
		t.Fatal("granted despite full cluster")
	}
	if m.PendingGPURequests() != 1 {
		t.Fatalf("pending = %d, want 1", m.PendingGPURequests())
	}
	se.Schedule(10, func() { first.Release() })
	se.Run()
	if got == nil {
		t.Fatal("queued request not granted after release")
	}
	if m.PendingGPURequests() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestRequestImpossibleErrors(t *testing.T) {
	_, _, m := testMgr(t)
	if err := m.RequestGPUs(17, hardware.GPUA100, nil); err == nil {
		t.Error("17-GPU request accepted on 16-GPU cluster")
	}
	if err := m.RequestGPUs(1, hardware.GPUH100, nil); err == nil {
		t.Error("H100 request accepted on A100 cluster")
	}
	if err := m.RequestCPUs(97, nil); err == nil {
		t.Error("97-core request accepted with 96-core VMs")
	}
	if err := m.RequestGPUs(0, hardware.GPUA100, nil); err == nil {
		t.Error("zero request accepted")
	}
}

func TestFIFOGPURequests(t *testing.T) {
	se, cl, m := testMgr(t)
	hold, _ := cl.AllocGPUs(16, hardware.GPUA100)
	var order []string
	m.RequestGPUs(12, hardware.GPUA100, func(a *cluster.GPUAlloc) { order = append(order, "big") })
	m.RequestGPUs(2, hardware.GPUA100, func(a *cluster.GPUAlloc) { order = append(order, "small") })
	se.Run()
	hold.Release()
	se.Run()
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want FIFO [big small]", order)
	}
}

func TestEnsureEngineIdempotent(t *testing.T) {
	se, cl, m := testMgr(t)
	h1, err := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 4, hardware.GPUA100, 4, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("EnsureEngine created a duplicate")
	}
	if cl.FreeGPUs(hardware.GPUA100) != 8 {
		t.Fatalf("free GPUs = %d, want 8", cl.FreeGPUs(hardware.GPUA100))
	}
	se.Run()
}

func TestEngineForCapability(t *testing.T) {
	_, _, m := testMgr(t)
	m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 0, 0, true)
	m.EnsureEngine(string(agents.CapEmbedding), llmsim.NVLMEmbed(), 2, hardware.GPUA100, 0, 0, true)
	h, ok := m.EngineForCapability(string(agents.CapEmbedding))
	if !ok || h.Spec.Name != "nvlm-embed" {
		t.Fatalf("lookup = %v, %v", h, ok)
	}
	if _, ok := m.EngineForCapability("nope"); ok {
		t.Fatal("found engine for unknown capability")
	}
}

func TestStats(t *testing.T) {
	se, _, m := testMgr(t)
	h, _ := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 0, 0, true)
	h.Engine.Submit(&llmsim.Request{ID: "r", PromptTokens: 100, OutputTokens: 100})
	s := m.Stats()
	es := s.Engines["nvlm-d-72b"]
	if es.GPUs != 8 || es.Active != 1 {
		t.Fatalf("engine stats = %+v", es)
	}
	if s.Cluster.FreeGPUs[hardware.GPUA100] != 8 {
		t.Fatalf("cluster snapshot free = %d", s.Cluster.FreeGPUs[hardware.GPUA100])
	}
	se.Run()
}

func trackedGraph(t *testing.T, cap string, work float64) *dag.Tracker {
	t.Helper()
	g := dag.New()
	g.MustAddNode(dag.Node{ID: "n", Capability: cap, Work: work})
	if err := g.Freeze(); err != nil {
		t.Fatal(err)
	}
	return dag.NewTracker(g)
}

func TestUpcomingDemandAggregation(t *testing.T) {
	_, _, m := testMgr(t)
	t1 := trackedGraph(t, "speech-to-text", 100)
	t2 := trackedGraph(t, "speech-to-text", 50)
	m.RegisterWorkflow(t1)
	m.RegisterWorkflow(t2)
	if got := m.UpcomingDemand()["speech-to-text"]; got != 150 {
		t.Fatalf("demand = %v, want 150", got)
	}
	m.UnregisterWorkflow(t1)
	if got := m.UpcomingDemand()["speech-to-text"]; got != 50 {
		t.Fatalf("demand after unregister = %v, want 50", got)
	}
}

func TestRebalanceShrinksIdleEngineWithoutDemand(t *testing.T) {
	se, cl, m := testMgr(t)
	m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, false)
	se.Run()
	// No registered workflows → no upcoming demand → idle engine shrinks
	// to min (the Whisper→Llama reallocation direction from §3.2).
	m.Rebalance()
	h, _ := m.Engine("nvlm-d-72b")
	if h.GPUs() != 4 {
		t.Fatalf("engine GPUs = %d after shrink, want 4", h.GPUs())
	}
	if cl.FreeGPUs(hardware.GPUA100) != 12 {
		t.Fatalf("free = %d, want 12", cl.FreeGPUs(hardware.GPUA100))
	}
	_, shrinks := m.Rebalances()
	if shrinks != 1 {
		t.Fatalf("shrinks = %d", shrinks)
	}
}

func TestRebalanceKeepsEngineWithUpcomingDemand(t *testing.T) {
	se, _, m := testMgr(t)
	m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, false)
	m.RegisterWorkflow(trackedGraph(t, string(agents.CapSummarization), 500))
	se.Run()
	m.Rebalance()
	h, _ := m.Engine("nvlm-d-72b")
	if h.GPUs() != 8 {
		t.Fatalf("engine shrunk to %d despite upcoming demand", h.GPUs())
	}
}

func TestRebalanceGrowsQueuedEngine(t *testing.T) {
	se, _, m := testMgr(t)
	spec := llmsim.NVLMText()
	h, _ := m.EnsureEngine(string(agents.CapSummarization), spec, 4, hardware.GPUA100, 4, 8, false)
	// Saturate: many concurrent requests exceed MaxBatch? Use queue depth:
	// submit enough KV-heavy requests to queue.
	for i := 0; i < 80; i++ {
		h.Engine.Submit(&llmsim.Request{ID: string(rune('a' + i%26)), PromptTokens: 4000, OutputTokens: 1000})
	}
	if h.Engine.QueueDepth() < growQueueThreshold {
		t.Fatalf("setup failed to queue requests (queue=%d)", h.Engine.QueueDepth())
	}
	m.Rebalance()
	if h.GPUs() != 5 {
		t.Fatalf("engine GPUs = %d after grow, want 5", h.GPUs())
	}
	grows, _ := m.Rebalances()
	if grows != 1 {
		t.Fatalf("grows = %d", grows)
	}
	se.Run()
}

func TestRebalancePinnedUntouched(t *testing.T) {
	se, _, m := testMgr(t)
	m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, true)
	se.Run()
	m.Rebalance()
	h, _ := m.Engine("nvlm-d-72b")
	if h.GPUs() != 8 {
		t.Fatalf("pinned engine resized to %d", h.GPUs())
	}
}

func TestRebalanceFreesGPUsForQueuedRequests(t *testing.T) {
	se, _, m := testMgr(t)
	// Engine holds 8; another task holds 8; a queued request for 4 waits.
	m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, false)
	var hold *cluster.GPUAlloc
	m.RequestGPUs(8, hardware.GPUA100, func(a *cluster.GPUAlloc) { hold = a })
	se.Run()
	var got *cluster.GPUAlloc
	m.RequestGPUs(4, hardware.GPUA100, func(a *cluster.GPUAlloc) { got = a })
	se.Run()
	if got != nil {
		t.Fatal("request granted before rebalance freed GPUs")
	}
	m.Rebalance() // idle engine shrinks 8→4, freeing 4
	se.Run()
	if got == nil {
		t.Fatal("rebalance did not unblock the queued request")
	}
	if hold == nil {
		t.Fatal("first request never granted")
	}
}

func TestTickerDrivenRebalance(t *testing.T) {
	se, _, m := testMgr(t)
	m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, false)
	m.EnableRebalancing(10)
	se.Schedule(25, func() { m.StopRebalancing() })
	se.Run()
	h, _ := m.Engine("nvlm-d-72b")
	if h.GPUs() != 4 {
		t.Fatalf("ticker never shrank the idle engine (GPUs=%d)", h.GPUs())
	}
}

func TestEngineRebuildAfterPreemption(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("spot0", hardware.NDv4SKUName, true)
	cl.AddVM("od0", hardware.NDv4SKUName, false)
	m := New(se, cl)
	h, err := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 8, hardware.GPUA100, 4, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	victim := h.alloc.GPUs()[0].ID[:5] // "spotN" or "od0/g"... find VM name
	_ = victim
	vmName := ""
	for _, vm := range cl.VMs() {
		if vm.GPUs()[0] == h.alloc.GPUs()[0] {
			vmName = vm.Name
		}
	}
	if vmName != "spot0" {
		t.Skip("engine placed on on-demand VM")
	}
	done := false
	h.Engine.Submit(&llmsim.Request{ID: "r", PromptTokens: 100, OutputTokens: 100,
		OnComplete: func(*llmsim.Request) { done = true }})
	se.Schedule(0.5, func() { cl.PreemptVM("spot0") })
	se.Run()
	if !done {
		t.Fatal("request lost across engine rebuild")
	}
	if h.GPUs() != 4 {
		t.Fatalf("rebuilt engine GPUs = %d, want min 4", h.GPUs())
	}
	if h.rebuilding {
		t.Fatal("engine stuck in rebuilding state")
	}
}

func TestOnRebalanceHookFiresOnlyOnResize(t *testing.T) {
	se, _, m := testMgr(t)
	fired := 0
	m.OnRebalance(func() { fired++ })
	// No engines: a pass resizes nothing and must not fire.
	m.Rebalance()
	if fired != 0 {
		t.Fatalf("no-op pass fired %d hooks", fired)
	}
	// An idle engine above its minimum with no registered demand shrinks.
	h, err := m.EnsureEngine(string(agents.CapSummarization), llmsim.NVLMText(), 4, hardware.GPUA100, 1, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	m.Rebalance()
	if fired != 1 {
		t.Fatalf("shrinking pass fired %d hooks, want 1", fired)
	}
	if h.GPUs() != 1 {
		t.Fatalf("idle engine not shrunk: %d GPUs", h.GPUs())
	}
	// Nothing left to resize: quiet again.
	m.Rebalance()
	if fired != 1 {
		t.Fatalf("steady-state pass fired hooks (total %d)", fired)
	}
}
