package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/agents"
	"repro/internal/cascade"
	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/optimizer"
	"repro/internal/profiles"
	"repro/internal/quality"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Failure recovery (see README "Failure handling"): with EnableRecovery a
// failed task is not a terminal job error but a *capacity event* — the task
// backs off (capped exponential, deterministic in sim-time), the failure
// kicks the PR-5 reconfiguration controller so the re-plan can move the
// remaining stages off the unhealthy binding, and the retry re-resolves its
// stage when the backoff fires, landing on whatever binding is current by
// then. Attempt budgets and per-job deadlines bound the damage; repeated
// failures of one capability degrade the job to a cheaper implementation
// via the cascade (quality floor respected); the cluster manager's circuit
// breaker quarantines flapping implementations between jobs. With recovery
// disabled every path below is unreachable and behavior is bit-identical
// to a build without this file.

// ErrorCode is a machine-readable classification of a job's terminal error,
// stable across releases (the job API's error_code field).
type ErrorCode string

// Job error codes.
const (
	// CodeRetriesExhausted: a task failed more than the attempt budget.
	CodeRetriesExhausted ErrorCode = "retries_exhausted"
	// CodeDeadlineExceeded: the job outlived its deadline.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeWindowCompacted: telemetry retention compacted the job's window.
	CodeWindowCompacted ErrorCode = "window_compacted"
	// CodeCanceled: the job was canceled.
	CodeCanceled ErrorCode = "canceled"
	// CodeTaskFailed: a task failed with recovery disabled.
	CodeTaskFailed ErrorCode = "task_failed"
	// CodeShedOverload: the submission was shed at admission — the tenant's
	// bounded queue was full under overload. Retry after backing off.
	CodeShedOverload ErrorCode = "shed_overload"
	// CodeBudgetExhausted: the submission was rejected at admission — the
	// tenant's SLO-class cost budget is spent.
	CodeBudgetExhausted ErrorCode = "budget_exhausted"
	// CodeNodeDown: the node holding the job left the cluster and its drain
	// deadline expired before the job finished. Queued work is rerouted to
	// surviving nodes; only jobs already running on the departed node
	// surface this code.
	CodeNodeDown ErrorCode = "node_down"
	// CodeInternal: any other failure (planning, placement, validation).
	CodeInternal ErrorCode = "internal"
)

// JobError is a typed terminal job error: a stable code, the operation (task
// ID or "job") and the underlying cause, preserved as a chain.
type JobError struct {
	Code ErrorCode
	Op   string
	Err  error
}

// Error renders the chain.
func (e *JobError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("core: %s: %s", e.Op, e.Code)
	}
	return fmt.Sprintf("core: %s: %s: %v", e.Op, e.Code, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// ErrorCodeOf classifies any job error into its stable code ("" for nil).
func ErrorCodeOf(err error) ErrorCode {
	if err == nil {
		return ""
	}
	var je *JobError
	if errors.As(err, &je) {
		return je.Code
	}
	if errors.Is(err, ErrCanceled) {
		return CodeCanceled
	}
	var wc *report.WindowCompactedError
	if errors.As(err, &wc) {
		return CodeWindowCompacted
	}
	return CodeInternal
}

// FaultPolicy tunes failure recovery. Zero fields take the defaults noted;
// JobDeadlineS and StageTimeoutS stay off at zero.
type FaultPolicy struct {
	// MaxAttempts is the per-task attempt budget (default 4): the n-th
	// failure of one task with n >= MaxAttempts fails the job with
	// retries_exhausted.
	MaxAttempts int
	// BackoffBaseS is the first retry delay (default 0.5s); it doubles per
	// attempt up to BackoffCapS (default 8s), the cap applying after
	// jitter. JitterFrac (default 0.2) multiplies the delay by a
	// deterministic 1+[0,JitterFrac) drawn from the execution's seeded
	// stream — decorrelating retries across jobs without wall-clock
	// randomness.
	BackoffBaseS float64
	BackoffCapS  float64
	JitterFrac   float64
	// StageTimeoutS arms a watchdog per worker task: a task in flight
	// longer than this is cut short and treated as failed (0 = off).
	StageTimeoutS float64
	// JobDeadlineS bounds a job's total runtime from launch; exceeding it
	// fails the job with deadline_exceeded (0 = off).
	JobDeadlineS float64
	// DegradeAfter is how many failures one capability accumulates before
	// the execution tries a cheaper implementation for it (default 3).
	DegradeAfter int
	// BreakerThreshold consecutive failures of an implementation open its
	// circuit breaker for BreakerCooldownS seconds (defaults 3 and 20;
	// BreakerThreshold < 0 disables breakers).
	BreakerThreshold int
	BreakerCooldownS float64
	// Seed drives the jitter stream (offset per execution ID).
	Seed int64
}

func (p FaultPolicy) withDefaults() FaultPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BackoffBaseS <= 0 {
		p.BackoffBaseS = 0.5
	}
	if p.BackoffCapS <= 0 {
		p.BackoffCapS = 8
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	} else if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	if p.DegradeAfter <= 0 {
		p.DegradeAfter = 3
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldownS <= 0 {
		p.BreakerCooldownS = 20
	}
	return p
}

// backoffFor computes the attempt-th retry delay: base·2^(attempt-1),
// jittered multiplicatively by u ∈ [0,1), then capped — so the schedule is
// deterministic for a fixed jitter stream and never exceeds the cap.
func backoffFor(p FaultPolicy, attempt int, u float64) float64 {
	d := p.BackoffBaseS * math.Pow(2, float64(attempt-1))
	d *= 1 + p.JitterFrac*u
	if d > p.BackoffCapS {
		d = p.BackoffCapS
	}
	return d
}

// AttemptRecord is one entry of a job's attempt history: a task failure and
// the retry (or terminal) decision taken.
type AttemptRecord struct {
	AtS            float64
	Task           string
	Capability     string
	Implementation string
	// Attempt numbers the failures of this task (1 = first failure).
	Attempt int
	// BackoffS is the scheduled retry delay; 0 when the failure was
	// terminal (budget exhausted).
	BackoffS float64
	Err      string
}

// maxAttemptLog bounds per-execution attempt history (the API surfaces it
// per job; an unbounded log under a hot fault trace would grow without
// limit).
const maxAttemptLog = 32

// recoveryState is the runtime-wide recovery configuration and accounting,
// shared by every execution (nil when recovery is disabled).
type recoveryState struct {
	policy FaultPolicy

	taskRetries      int
	exhausted        int
	deadlineExceeded int
	degradations     int
	timeouts         int
}

// EnableRecovery turns failure recovery on for every job admitted through
// this scheduler (and any execution launched directly on its runtime). Call
// once, before jobs run. Unless disabled in the policy, the cluster
// manager's circuit breakers are enabled alongside.
func (s *Scheduler) EnableRecovery(p FaultPolicy) {
	if s.rt.recovery != nil {
		panic("core: recovery already enabled")
	}
	p = p.withDefaults()
	s.rt.recovery = &recoveryState{policy: p}
	// A failure is a capacity event: kick the reconfiguration controller
	// (nil-safe no-op when EnableReconfig was not called) so the re-plan
	// can move remaining stages off the unhealthy binding while the failed
	// task waits out its backoff.
	s.rt.onTaskFault = func() { s.scheduleReconfig() }
	if p.BreakerThreshold > 0 && !s.rt.mgr.BreakersEnabled() {
		s.rt.mgr.EnableBreakers(p.BreakerThreshold, p.BreakerCooldownS)
	}
}

// RecoveryEnabled reports whether failure recovery is on.
func (s *Scheduler) RecoveryEnabled() bool { return s.rt.recovery != nil }

// Inject applies one replayed fault event against this scheduler's runtime,
// resolving the victim deterministically from the event's pick. Returns
// whether a victim existed (a fault landing on an idle system is a no-op).
// Injection is independent of recovery: with recovery disabled the faults
// still land, and a failed task is then a terminal job error.
func (s *Scheduler) Inject(ev workload.FaultEvent) bool {
	ok := false
	switch ev.Kind {
	case workload.FaultEngineCrash:
		ok = s.rt.mgr.CrashEngine(ev.Pick, ev.DurationS)
	case workload.FaultWorkerLoss:
		ok = s.rt.cl.FailAlloc(ev.Pick)
	case workload.FaultStageTimeout:
		ok = s.stallTask(ev.Pick, ev.DurationS)
	case workload.FaultCallError:
		ok = s.rt.mgr.FailNextCall(ev.Pick)
	}
	if ok {
		s.faultsInjected++
	}
	return ok
}

// stallTask extends one in-flight worker task's completion by d seconds — a
// hung stage call. Victims are collected in deterministic order: running
// jobs by ID, stages by capability, workers in pool order.
func (s *Scheduler) stallTask(pick, d float64) bool {
	ids := make([]int, 0, len(s.runningSet))
	for id := range s.runningSet {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	var victims []*worker
	for _, id := range ids {
		ex := s.runningSet[JobID(id)].exec
		if ex == nil || ex.done {
			continue
		}
		caps := make([]string, 0, len(ex.stages))
		for cap := range ex.stages {
			caps = append(caps, cap)
		}
		sort.Strings(caps)
		for _, cap := range caps {
			for _, w := range ex.stages[cap].workers {
				if w.busy && w.doneEv != nil {
					victims = append(victims, w)
				}
			}
		}
	}
	if len(victims) == 0 {
		return false
	}
	idx := int(pick * float64(len(victims)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(victims) {
		idx = len(victims) - 1
	}
	return victims[idx].stall(d)
}

// --- execution-side recovery -------------------------------------------------

// initRecovery sets up per-execution recovery state at launch (no-op when
// recovery is disabled, keeping the default path untouched).
func (ex *Execution) initRecovery() {
	rc := ex.rt.recovery
	if rc == nil {
		return
	}
	ex.attempts = map[dag.NodeID]int{}
	ex.capFails = map[string]int{}
	ex.degraded = map[string]bool{}
	ex.retryEvs = map[*sim.Event]bool{}
	ex.recRng = rand.New(rand.NewSource(rc.policy.Seed + int64(ex.id)))
	if rc.policy.JobDeadlineS > 0 {
		ex.deadlineEv = ex.rt.se.After(sim.Duration(rc.policy.JobDeadlineS), func() {
			ex.deadlineEv = nil
			rc.deadlineExceeded++
			ex.finish(&JobError{Code: CodeDeadlineExceeded, Op: "job",
				Err: fmt.Errorf("core: job deadline %.0fs exceeded", rc.policy.JobDeadlineS)})
		})
	}
}

// cancelRecovery drops the execution's pending recovery events at finish:
// the deadline timer and every scheduled retry (their nodes die with the
// job). Cancellation order over the map is irrelevant — Cancel removes
// events eagerly and remaining heap order is (time, seq) regardless.
func (ex *Execution) cancelRecovery() {
	if ex.deadlineEv != nil {
		ex.deadlineEv.Cancel()
		ex.deadlineEv = nil
	}
	for ev := range ex.retryEvs {
		ev.Cancel()
	}
	ex.retryEvs = nil
}

// taskFailed routes one task failure. The caller has already unwound its
// execution context (inflight decremented, tracer span ended, worker state
// cleared); the node is tracker-running. With recovery disabled the failure
// is terminal; otherwise the task backs off and retries on whatever binding
// its capability has when the backoff fires.
func (st *stage) taskFailed(node *dag.Node, cause error) {
	ex := st.ex
	if ex.done {
		return
	}
	if err := ex.tracker.Fail(node.ID); err != nil {
		panic(err)
	}
	rc := ex.rt.recovery
	if rc == nil {
		ex.finish(&JobError{Code: CodeTaskFailed, Op: string(node.ID), Err: cause})
		return
	}
	ex.rt.mgr.ReportOutcome(st.dec.Implementation, false)
	ex.capFails[st.cap]++
	if ex.rt.onTaskFault != nil {
		ex.rt.onTaskFault()
	}
	n := ex.attempts[node.ID] + 1
	ex.attempts[node.ID] = n
	if n >= rc.policy.MaxAttempts {
		rc.exhausted++
		ex.logAttempt(node, st, n, 0, cause)
		ex.finish(&JobError{Code: CodeRetriesExhausted, Op: string(node.ID), Err: cause})
		return
	}
	rc.taskRetries++
	ex.retries++
	backoff := backoffFor(rc.policy, n, ex.recRng.Float64())
	ex.logAttempt(node, st, n, backoff, cause)
	// Back through the tracker (Fail returned the node to ready); it stays
	// "running" during the backoff so the remaining-DAG view still counts
	// its work, but it sits in no queue and holds no inflight slot — the
	// stage is at a boundary and reconfiguration may rebind it meanwhile.
	if err := ex.tracker.Start(node.ID); err != nil {
		panic(err)
	}
	ex.maybeDegrade(st.cap)
	ex.scheduleRetry(node, backoff)
}

// scheduleRetry re-enqueues the node after delayS, re-resolving its stage at
// fire time (the binding may have been reconfigured or degraded during the
// backoff). A quarantined implementation defers the retry by the breaker
// cooldown without burning an attempt — bounded, because the breaker
// half-opens once its cooldown elapses.
func (ex *Execution) scheduleRetry(node *dag.Node, delayS float64) {
	var ev *sim.Event
	ev = ex.rt.se.After(sim.Duration(delayS), func() {
		delete(ex.retryEvs, ev)
		if ex.done {
			return
		}
		st := ex.stageFor(node.Capability)
		if !ex.rt.mgr.Admissible(st.dec.Implementation) {
			ex.scheduleRetry(node, ex.rt.recovery.policy.BreakerCooldownS)
			return
		}
		st.enqueue(node)
	})
	ex.retryEvs[ev] = true
}

// logAttempt appends to the job's bounded attempt history and notifies the
// registered observer (the serving API's per-job attempt feed).
func (ex *Execution) logAttempt(node *dag.Node, st *stage, attempt int, backoffS float64, cause error) {
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	rec := AttemptRecord{
		AtS:            ex.rt.se.Now().Seconds(),
		Task:           string(node.ID),
		Capability:     st.cap,
		Implementation: st.dec.Implementation,
		Attempt:        attempt,
		BackoffS:       backoffS,
		Err:            msg,
	}
	if len(ex.attemptLog) < maxAttemptLog {
		ex.attemptLog = append(ex.attemptLog, rec)
	}
	if ex.onAttempt != nil {
		ex.onAttempt(rec)
	}
}

// Attempts returns the execution's recorded attempt history (nil when no
// task ever failed).
func (ex *Execution) Attempts() []AttemptRecord { return ex.attemptLog }

// maybeDegrade checks whether a capability's accumulated failures warrant
// switching it to a cheaper implementation, and applies the switch at most
// once per capability per execution.
func (ex *Execution) maybeDegrade(cap string) {
	rc := ex.rt.recovery
	if rc == nil || ex.degraded[cap] {
		return
	}
	cur := ex.plan.Decisions[cap]
	if ex.capFails[cap] < rc.policy.DegradeAfter && !ex.rt.mgr.Quarantined(cur.Implementation) {
		return
	}
	if ex.degradeStage(cap) {
		ex.degraded[cap] = true
		rc.degradations++
	}
}

// degradeStage re-plans the remaining DAG with the failing capability pinned
// to the cheapest alternative implementation that clears the job's quality
// floor — the cascade walked cheapest-first, chain-correctness checked over
// the remaining graph — and every other capability pinned to its current
// decision. Adoption reuses the reconfiguration path (adoptPlan), so engine
// refs move two-phase and in-flight stages are left alone.
func (ex *Execution) degradeStage(cap string) bool {
	rt := ex.rt
	if st, ok := ex.stages[cap]; ok && st.inflight > 0 {
		return false
	}
	work := ex.tracker.RemainingCapabilityWork()[cap]
	if work <= 0 {
		return false
	}
	cur := ex.plan.Decisions[cap]
	casc, cfgs := rt.degradeCandidates(cap, cur.Implementation, work, rt.cl.Snapshot())
	if len(casc.Levels) == 0 {
		return false
	}
	casc.SortByCost()

	rv := ex.remainingView()
	if rv.graph.Len() == 0 || rv.inflight[cap] {
		return false
	}
	floor := ex.job.MinQuality
	enforceFloor := floor > 0 && !ex.opts.RelaxFloor
	for _, lvl := range casc.Levels {
		if enforceFloor {
			sq := quality.StageQuality{}
			for c, d := range ex.plan.Decisions {
				sq[c] = d.Quality
			}
			sq[cap] = lvl.Quality
			if quality.ChainCorrectness(rv.graph, sq) < floor {
				continue
			}
		}
		pins := map[string]optimizer.Pin{}
		for _, n := range rv.graph.Nodes() {
			if _, ok := pins[n.Capability]; !ok {
				pins[n.Capability] = pinFromDecision(ex.plan.Decisions[n.Capability])
			}
		}
		pins[cap] = optimizer.Pin{Implementation: lvl.Implementation, Config: cfgs[lvl.Implementation]}
		o := planOptions(ex.job, ex.opts)
		o.Pinned = pins
		// The floor was checked chain-wise above; a stage-wise floor here
		// would reject the very degradation this path exists to make.
		o.MinQuality = 0
		newPlan, err := rt.opt.Plan(rv.graph, rt.cl.Snapshot(), o)
		if err != nil {
			continue
		}
		if changed, err := ex.adoptPlan(newPlan); err == nil && changed > 0 {
			return true
		}
	}
	return false
}

// snapFits reports whether a resource configuration could ever be placed on
// the snapshotted cluster (total capacity, not instantaneous free capacity —
// degradation pins must be plannable, not necessarily immediately free).
func snapFits(snap cluster.Snapshot, cfg profiles.ResourceConfig) bool {
	if cfg.GPUs > 0 && snap.TotalGPUs[cfg.GPUType] < cfg.GPUs {
		return false
	}
	return cfg.CPUCores <= snap.TotalCPUCores
}

// degradeCandidates builds a capability's degradation cascade: every other
// registered implementation of the capability, each on its cheapest
// profiled configuration that fits the snapshotted cluster, excluding
// quarantined ones. The returned map carries each candidate's chosen
// configuration (optimizer pins need a real profiled config, not just an
// implementation name). It lives on the Runtime because two callers share
// it: per-execution failure degradation (degradeStage, above) and
// admission-time overload degradation (degradePlanForOverload, slo.go).
func (rt *Runtime) degradeCandidates(cap, curImpl string, work float64, snap cluster.Snapshot) (cascade.Cascade, map[string]profiles.ResourceConfig) {
	var casc cascade.Cascade
	cfgs := map[string]profiles.ResourceConfig{}
	for _, im := range rt.lib.ByCapability(agents.Capability(cap)) {
		if im.Name == curImpl || rt.mgr.Quarantined(im.Name) {
			continue
		}
		var best profiles.Profile
		bestCost := math.Inf(1)
		for _, p := range rt.store.ForImplementation(im.Name) {
			if p.Capability != cap || !snapFits(snap, p.Config) {
				continue
			}
			if c := p.CostUSD(rt.cl.Catalog(), rt.cpuType, work); c < bestCost {
				best, bestCost = p, c
			}
		}
		if math.IsInf(bestCost, 1) {
			continue
		}
		casc.Levels = append(casc.Levels, cascade.Level{
			Implementation: im.Name,
			Quality:        best.Quality,
			CostUSD:        bestCost,
			LatencyS:       best.LatencyS(work),
		})
		cfgs[im.Name] = best.Config
	}
	return casc, cfgs
}
