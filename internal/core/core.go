package core
