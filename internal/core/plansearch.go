package core

import (
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/optimizer"
	"repro/internal/planner"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Off-loop admission (the serving tier's "fast as the hardware allows" item):
// a shard's loop goroutine is the only place cluster state may be touched, so
// with inline planning every job's decompose → profile lookup → enumerate →
// prune → score runs serialized on one core and plans/sec is bounded by it.
// This file moves the expensive, side-effect-free part of admission — the
// configuration search — onto a pool of worker goroutines:
//
//   - dispatch (loop goroutine): capture an immutable cluster.Snapshot plus
//     the generations the plan depends on (capacity class, profile store,
//     library) and hand the job to a worker. Identical concurrent searches
//     (same job content, options, capacity class, generations) are deduped
//     through a singleflight table so a burst of like jobs runs one search.
//   - search (worker goroutine): decompose the job and run the optimizer
//     against the captured snapshot. Workers use goroutine-local planner and
//     optimizer instances and never touch the engine or the cluster, so the
//     simulation stays strictly single-threaded.
//   - commit (loop goroutine): validate the captured generations against the
//     live cluster. If they still hold, the searched plan is bit-identical
//     to what inline planning would produce now — optimistic concurrency
//     with a serialized commit — and is adopted into the runtime's shared
//     caches. If they moved (VM added, preemption, recalibration), the
//     result is discarded and the job re-plans inline at admission, exactly
//     like the serial path; PlanConflicts counts those.
//
// Drain safety: each dispatched search takes a sim.LoopHold, so a shard
// draining for shutdown or recycling waits for in-flight searches to commit
// (and their jobs to run) instead of stranding them.

// preparedPlan is a decomposition + plan pair ready for Runtime.launch,
// stamped with the generations it is valid under. Validity is checked twice:
// at commit (searched results) and again at start — a job can wait in the
// admission queue past a fleet change, and launching then must re-plan
// against current capacity exactly as the serial path would.
type preparedPlan struct {
	decomp *planner.Result
	plan   *optimizer.Plan
	capGen uint64
	// storeGen/libGen pin the profile-store and library generations.
	storeGen int
	libGen   int
}

// valid reports whether the prepared pair still matches the live generations.
func (p *preparedPlan) valid(rt *Runtime) bool {
	return p.capGen == rt.cl.CapacityGen() &&
		p.storeGen == rt.store.Gen() &&
		p.libGen == rt.lib.Gen()
}

// searchWork is one unit for the worker pool: admission plan searches and
// mid-flight reconfiguration searches share the same workers, goroutine-local
// planner/optimizer instances and hold-based drain safety.
type searchWork interface {
	run(pl *planner.Planner, opt *optimizer.Optimizer)
}

// searchTask is one singleflight plan search. The result fields are written
// by the worker before the commit post and read on the loop goroutine after
// it (the hold's inbox hand-off orders them); decomp may instead be pre-set
// at dispatch when the shard already had the decomposition cached.
type searchTask struct {
	key    string
	jobKey string
	job    workflow.Job
	opts   SubmitOptions
	planO  optimizer.Options
	snap   cluster.Snapshot
	capGen uint64
	// storeGen/libGen pin the profile-store and library contents the search
	// reads; commit re-checks them alongside the capacity generation.
	storeGen int
	libGen   int
	hold     *sim.LoopHold
	waiters  []*Handle

	decomp *planner.Result
	plan   *optimizer.Plan
	err    error

	ps *planSearch
}

// run executes the admission search on a worker goroutine.
func (t *searchTask) run(pl *planner.Planner, opt *optimizer.Optimizer) {
	if t.decomp == nil {
		t.decomp, t.err = pl.Decompose(t.job)
	}
	if t.err == nil {
		t.plan, t.err = opt.Plan(t.decomp.Graph, t.snap, t.planO)
	}
	t.hold.Post(func() { t.ps.s.commit(t) })
}

// reconfigSearch is one mid-flight re-plan over a running job's remaining
// DAG. It is never singleflighted — the remaining graph is unique to the
// job's progress — but rides the same pool, snapshot discipline and
// generation-validated commit as admission searches.
type reconfigSearch struct {
	ps     *planSearch
	h      *Handle
	graph  *dag.Graph
	planO  optimizer.Options
	curObj float64
	snap   cluster.Snapshot
	capGen uint64
	// storeGen/libGen pin the profile-store and library contents the search
	// reads; commit re-checks them alongside the capacity generation.
	storeGen int
	libGen   int
	hold     *sim.LoopHold

	plan *optimizer.Plan
	err  error
}

// run executes the re-plan on a worker goroutine.
func (t *reconfigSearch) run(_ *planner.Planner, opt *optimizer.Optimizer) {
	t.plan, t.err = opt.Plan(t.graph, t.snap, t.planO)
	t.hold.Post(func() { t.ps.s.commitReconfig(t) })
}

// planSearch is the worker pool plus the loop-goroutine-owned singleflight
// table.
type planSearch struct {
	s    *Scheduler
	loop *sim.Loop

	// inflight maps search keys to their pending task. It is only touched on
	// the loop goroutine (dispatch and commit), so it needs no lock.
	inflight map[string]*searchTask

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []searchWork
	closed bool
	wg     sync.WaitGroup
}

// EnablePlanSearch attaches an off-loop plan-search worker pool to the
// scheduler. loop must be the sim.Loop driving the scheduler's engine;
// workers <= 0 selects GOMAXPROCS. Call once, before the scheduler's first
// Submit. While the pool is live the library and profile store must not be
// mutated from outside the loop goroutine (the workers read them lock-free;
// generation checks at commit handle loop-side mutations).
func (s *Scheduler) EnablePlanSearch(loop *sim.Loop, workers int) {
	if s.search != nil {
		panic("core: plan search already enabled")
	}
	if loop == nil {
		panic("core: plan search requires the scheduler's sim.Loop")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Force the library's lazily-memoized renderings now, on a single
	// goroutine: the planner's prompt-token accounting reads SystemPrompt on
	// every decomposition, and pre-warming makes that a pure read for the
	// concurrent workers.
	s.rt.lib.SystemPrompt()
	s.rt.lib.Fingerprint()
	ps := &planSearch{s: s, loop: loop, inflight: map[string]*searchTask{}}
	ps.cond = sync.NewCond(&ps.mu)
	for i := 0; i < workers; i++ {
		ps.wg.Add(1)
		go ps.worker()
	}
	s.search = ps
	s.planWorkers = workers
}

// StopPlanSearch terminates the worker pool. Call it after the driving loop
// has drained (Loop.Close returned): Run cannot exit while a search holds the
// loop, so by then every dispatched search has committed and the queue is
// empty. No-op for serial schedulers; safe to call more than once.
func (s *Scheduler) StopPlanSearch() {
	if s.search == nil {
		return
	}
	ps := s.search
	ps.mu.Lock()
	ps.closed = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
	ps.wg.Wait()
}

// PlanWorkers returns the worker-pool size (0 for serial schedulers).
func (s *Scheduler) PlanWorkers() int { return s.planWorkers }

// dispatch hands a submission to the worker pool, deduplicating against
// in-flight searches for the same key. Runs on the loop goroutine; jk is the
// job's content key from probePrepared, and decomp — when the probe found the
// decomposition half cached — lets the worker skip re-decomposing (the graph
// is frozen and immutable, so sharing it off-loop is safe).
func (ps *planSearch) dispatch(h *Handle, jk string, decomp *planner.Result) {
	s := ps.s
	planO := planOptions(h.job, h.opts)
	snap := s.rt.cl.Snapshot()
	storeGen, libGen := s.rt.store.Gen(), s.rt.lib.Gen()
	key := searchKeyFrom(jk, snap, planO, storeGen, libGen)
	if t, ok := ps.inflight[key]; ok {
		t.waiters = append(t.waiters, h)
		s.singleflightHits++
		return
	}
	t := &searchTask{
		key:      key,
		jobKey:   jk,
		job:      h.job,
		opts:     h.opts,
		planO:    planO,
		snap:     snap,
		capGen:   s.rt.cl.CapacityGen(),
		storeGen: storeGen,
		libGen:   libGen,
		hold:     ps.loop.Hold(),
		waiters:  []*Handle{h},
		decomp:   decomp,
		ps:       ps,
	}
	ps.inflight[key] = t
	s.planSearches++
	ps.enqueue(t)
}

// dispatchReconfig hands a mid-flight re-plan to the worker pool. Runs on the
// loop goroutine; the hold keeps a draining shard from stranding the commit.
func (ps *planSearch) dispatchReconfig(h *Handle, g *dag.Graph, planO optimizer.Options, curObj float64, snap cluster.Snapshot) {
	s := ps.s
	ps.enqueue(&reconfigSearch{
		ps:       ps,
		h:        h,
		graph:    g,
		planO:    planO,
		curObj:   curObj,
		snap:     snap,
		capGen:   s.rt.cl.CapacityGen(),
		storeGen: s.rt.store.Gen(),
		libGen:   s.rt.lib.Gen(),
		hold:     ps.loop.Hold(),
	})
}

// enqueue pushes one unit onto the worker queue.
func (ps *planSearch) enqueue(w searchWork) {
	ps.mu.Lock()
	ps.queue = append(ps.queue, w)
	ps.cond.Signal()
	ps.mu.Unlock()
}

// worker runs searches with goroutine-local planner/optimizer instances until
// the pool closes (draining any queued tasks first, so every hold resolves).
func (ps *planSearch) worker() {
	defer ps.wg.Done()
	pl := planner.New(ps.s.rt.lib)
	opt := ps.s.rt.opt.Clone()
	for {
		ps.mu.Lock()
		for len(ps.queue) == 0 && !ps.closed {
			ps.cond.Wait()
		}
		if len(ps.queue) == 0 {
			ps.mu.Unlock()
			return
		}
		t := ps.queue[0]
		ps.queue = ps.queue[1:]
		ps.mu.Unlock()

		t.run(pl, opt)
	}
}

// commitReconfig is the on-loop half of an off-loop re-plan: validate the
// captured generations, then hand the result to the hysteresis test. Drift
// discards the result — the trigger that moved the generations has already
// scheduled a fresh evaluation pass, exactly like admission's conflict
// re-plan falling back to current state.
func (s *Scheduler) commitReconfig(t *reconfigSearch) {
	t.h.reconfigInflight = false
	switch {
	case t.capGen != s.rt.cl.CapacityGen() || t.storeGen != s.rt.store.Gen() || t.libGen != s.rt.lib.Gen():
		s.reconfigConflicts++
	case t.err != nil:
		s.reconfigSkips++
	default:
		s.finishReconfig(t.h, t.plan, t.curObj)
	}
}

// commit is the on-loop half of optimistic admission: validate the captured
// generations and either adopt the searched plan or mark the waiters for an
// inline re-plan. Waiters canceled while the search was in flight are
// skipped.
func (s *Scheduler) commit(t *searchTask) {
	delete(s.search.inflight, t.key)
	var prep *preparedPlan
	switch {
	case t.err != nil:
		// The search failed (e.g. no feasible configuration). Fall back to
		// inline planning so the job fails — or, if the cluster changed in
		// the meantime, succeeds — exactly as serial admission would against
		// current state.
	case t.capGen != s.rt.cl.CapacityGen() || t.storeGen != s.rt.store.Gen() || t.libGen != s.rt.lib.Gen():
		// Stale snapshot: the capacity class (or a profile/library
		// generation) moved between capture and commit. Count one conflict
		// per affected admission; each re-plans inline at start.
		for _, h := range t.waiters {
			if h.status == JobQueued {
				s.planConflicts++
			}
		}
	default:
		prep = s.rt.adoptPrepared(t.jobKey, t.job, t.opts, t.decomp, t.plan)
	}
	for _, h := range t.waiters {
		if h.status != JobQueued {
			continue // canceled while the search was in flight
		}
		h.planReady = true
		h.prepared = prep
	}
	s.se.Defer(s.pumpFn)
}
