package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/optimizer"
	"repro/internal/planner"
	"repro/internal/quality"
	"repro/internal/workflow"
)

// SLO-tiered serving (see README "Overload and SLO tiers"): tenants carry an
// SLO class — a latency target, a planned-cost budget and a minimum quality
// floor — and the admission layer degrades gracefully instead of queueing
// unboundedly when demand exceeds the concurrency bound. The ladder has
// three rungs, applied in order as pressure grows:
//
//  1. admit — below the high watermark nothing changes; jobs queue and run
//     on their normal plans exactly as without this file.
//  2. degrade — above the high watermark (hysteresis: the controller only
//     disengages again below the low watermark) new jobs of degradable
//     tiers are admitted onto cheaper plan configurations, built from the
//     PR-6 degradation cascade at admission time; entering overload also
//     kicks the PR-5 reconfiguration controller so running work re-plans
//     cheaper at its next stage boundary.
//  3. shed — per-tenant queue slots are bounded; a submission beyond the
//     bound (or beyond the tenant's cost budget) is rejected synchronously
//     with a typed JobError (shed_overload / budget_exhausted), which the
//     HTTP surface maps to 429 + Retry-After. The queue can never grow
//     without limit and a shed job can never strand: it was never enqueued.
//
// With EnableSLO not called every hook below is nil-guarded and behavior is
// bit-identical to a build without this file.

// SLOClass is one service tier.
type SLOClass struct {
	// Name identifies the tier ("gold", "silver", "bronze").
	Name string
	// Rank orders tiers, 0 = most protected. Purely descriptive today:
	// protection is expressed through Degradable and MaxQueue below.
	Rank int
	// LatencyTargetS is the submit→done attainment target (0 = untracked);
	// settle-time accounting compares against it for the per-tenant
	// SLOMet/SLOMissed counters.
	LatencyTargetS float64
	// CostBudgetUSD bounds a tenant's cumulative admitted planned cost
	// (EstCostUSD charged at launch); beyond it submissions are rejected
	// with budget_exhausted. 0 = unlimited. The meter resets with the
	// scheduler, so under the serving pool it is windowed by shard recycle.
	CostBudgetUSD float64
	// MinQuality floors degraded admissions chain-wise (0 = the job's own
	// floor). It is enforced even under SubmitOptions.RelaxFloor: the tier
	// floor is the operator's bound, not the job's preference.
	MinQuality float64
	// MaxQueue bounds this tenant's jobs waiting in the admission queue;
	// a submission finding the bound reached is shed with shed_overload.
	MaxQueue int
	// Degradable tiers are admitted onto cheaper degraded plans while the
	// overload controller is engaged; gold is not.
	Degradable bool
	// MaxDegradeLatencyX bounds how much slower (profile latency over the
	// capability's work) a degraded implementation may be than the one it
	// replaces (default 4×). Overload is an occupancy problem: admitting a
	// 60× slower implementation to save cost would hold an admission slot
	// longer and make the queue worse, so slow candidates are skipped even
	// when they are cheaper.
	MaxDegradeLatencyX float64
}

// DefaultSLOClasses returns the built-in gold/silver/bronze tiers.
func DefaultSLOClasses() map[string]SLOClass {
	return map[string]SLOClass{
		"gold":   {Name: "gold", Rank: 0, LatencyTargetS: 120, MaxQueue: 32},
		"silver": {Name: "silver", Rank: 1, LatencyTargetS: 300, MaxQueue: 16, Degradable: true, MaxDegradeLatencyX: 4},
		"bronze": {Name: "bronze", Rank: 2, LatencyTargetS: 600, MaxQueue: 8, Degradable: true, MaxDegradeLatencyX: 8},
	}
}

// SLOConfig configures EnableSLO. Zero fields take the defaults noted.
type SLOConfig struct {
	// Classes defines the tiers (nil = DefaultSLOClasses()).
	Classes map[string]SLOClass
	// TenantTiers maps tenants to class names; unmapped tenants take
	// DefaultClass (default "silver").
	TenantTiers  map[string]string
	DefaultClass string
	// HighWatermark engages the overload controller when admission pressure
	// — (running + queued) / maxConcurrent — reaches it (default 2.0);
	// LowWatermark disengages it again at or below (default 1.0). The band
	// between them is the hysteresis: inside it the controller holds state.
	HighWatermark float64
	LowWatermark  float64
	// QueueBound > 0 overrides every class's MaxQueue; BudgetUSD > 0
	// overrides every class's CostBudgetUSD (the serving pool's flat
	// per-tenant knobs).
	QueueBound int
	BudgetUSD  float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Classes == nil {
		c.Classes = DefaultSLOClasses()
	}
	if c.DefaultClass == "" {
		c.DefaultClass = "silver"
	}
	if c.HighWatermark <= 0 {
		c.HighWatermark = 2.0
	}
	if c.LowWatermark <= 0 {
		c.LowWatermark = 1.0
	}
	if c.QueueBound > 0 || c.BudgetUSD > 0 {
		classes := make(map[string]SLOClass, len(c.Classes))
		for name, cl := range c.Classes {
			if c.QueueBound > 0 {
				cl.MaxQueue = c.QueueBound
			}
			if c.BudgetUSD > 0 {
				cl.CostBudgetUSD = c.BudgetUSD
			}
			classes[name] = cl
		}
		c.Classes = classes
	}
	return c
}

// overloadController is the watermark hysteresis: it engages ("degraded
// admissions") when pressure reaches high and disengages only when pressure
// falls back to low — observations inside the (low, high) band never change
// state, so the controller cannot flap within one hysteresis band. It is
// deterministic: state is a pure function of the observation sequence.
type overloadController struct {
	high, low float64
	degraded  bool
	enters    int
	exits     int
}

// observe feeds one pressure sample and reports whether the state changed.
func (c *overloadController) observe(pressure float64) bool {
	if !c.degraded && pressure >= c.high {
		c.degraded = true
		c.enters++
		return true
	}
	if c.degraded && pressure <= c.low {
		c.degraded = false
		c.exits++
		return true
	}
	return false
}

// tenantSLO is one tenant's live SLO accounting (owned by the loop
// goroutine, like every scheduler counter).
type tenantSLO struct {
	class  string
	queued int // live gauge: this tenant's jobs in the admission queue
	spent  float64
	stats  TenantSLOStats
}

// sloState hangs off the scheduler when EnableSLO was called.
type sloState struct {
	cfg     SLOConfig
	ctrl    overloadController
	tenants map[string]*tenantSLO

	shed            int
	budgetExhausted int
	degradedAdmits  int
	sloMet          int
	sloMissed       int
}

// TenantSLOStats is one tenant's SLO accounting snapshot.
type TenantSLOStats struct {
	Tenant string
	Class  string
	// Admitted counts submissions accepted into the queue; Shed and
	// BudgetExhausted count synchronous rejections; DegradedAdmits counts
	// admissions launched on a degraded cheaper plan.
	Admitted        int
	Shed            int
	BudgetExhausted int
	DegradedAdmits  int
	// SLOMet / SLOMissed classify completed jobs against the tier's
	// latency target (untracked when the target is 0).
	SLOMet    int
	SLOMissed int
	// CostSpentUSD is the cumulative planned cost charged at launch.
	CostSpentUSD float64
}

// Validate checks the configuration as EnableSLO would see it (defaults
// applied): the watermarks must form a hysteresis band and every referenced
// class must exist. Callers building configs from external input (flags,
// HTTP) can reject bad ones with an error instead of EnableSLO's panic.
func (c SLOConfig) Validate() error {
	c = c.withDefaults()
	if c.LowWatermark >= c.HighWatermark {
		return fmt.Errorf("SLO low watermark %.3g must be below the high watermark %.3g",
			c.LowWatermark, c.HighWatermark)
	}
	if _, ok := c.Classes[c.DefaultClass]; !ok {
		return fmt.Errorf("unknown default SLO class %q", c.DefaultClass)
	}
	for tenant, name := range c.TenantTiers {
		if _, ok := c.Classes[name]; !ok {
			return fmt.Errorf("tenant %q mapped to unknown SLO class %q", tenant, name)
		}
	}
	return nil
}

// NeutralSLO, when set before schedulers are constructed, enables the SLO
// machinery on every new scheduler with NeutralSLOConfig — a configuration
// that constrains nothing. It backs the differential test proving the SLO
// hooks threaded through the admission hot path are behaviorally inert unless
// a constraint actually binds (the same contract DisableAllocReuse backs for
// the allocation fast paths); it is not a serving knob.
var NeutralSLO bool

// NeutralSLOConfig is the constrains-nothing tier set NeutralSLO installs:
// one default class with no latency target, budget, quality floor or queue
// bound, and a high watermark the pressure signal can never reach, so the
// overload controller never engages and every rung of the ladder is a no-op.
func NeutralSLOConfig() SLOConfig {
	return SLOConfig{
		Classes:       map[string]SLOClass{"neutral": {Name: "neutral"}},
		DefaultClass:  "neutral",
		HighWatermark: math.MaxFloat64,
		LowWatermark:  1,
	}
}

// EnableSLO turns on SLO tiers and the overload controller for every job
// admitted through this scheduler. Call once, before jobs run.
func (s *Scheduler) EnableSLO(cfg SLOConfig) {
	if s.slo != nil {
		panic("core: SLO tiers already enabled")
	}
	if err := cfg.Validate(); err != nil {
		panic("core: " + err.Error())
	}
	cfg = cfg.withDefaults()
	s.slo = &sloState{
		cfg:     cfg,
		ctrl:    overloadController{high: cfg.HighWatermark, low: cfg.LowWatermark},
		tenants: map[string]*tenantSLO{},
	}
}

// SLOEnabled reports whether SLO tiers are on.
func (s *Scheduler) SLOEnabled() bool { return s.slo != nil }

// OverloadActive reports whether the overload controller is currently
// engaged (always false with SLO tiers disabled).
func (s *Scheduler) OverloadActive() bool {
	return s.slo != nil && s.slo.ctrl.degraded
}

func (sl *sloState) tenant(name, class string) *tenantSLO {
	ts := sl.tenants[name]
	if ts == nil {
		ts = &tenantSLO{class: class}
		ts.stats.Tenant = name
		sl.tenants[name] = ts
	}
	ts.class = class
	ts.stats.Class = class
	return ts
}

// classFor resolves a submission's tier: explicit per-job override, then the
// tenant mapping, then the default class. Unknown overrides are a
// validation error (the HTTP layer pre-validates; this is the safety net).
func (sl *sloState) classFor(tenant, override string) (SLOClass, error) {
	name := override
	if name == "" {
		name = sl.cfg.TenantTiers[tenant]
	}
	if name == "" {
		name = sl.cfg.DefaultClass
	}
	cl, ok := sl.cfg.Classes[name]
	if !ok {
		return SLOClass{}, fmt.Errorf("core: unknown SLO class %q", name)
	}
	return cl, nil
}

// pressure is the overload controller's admission-pressure signal: queued
// plus running jobs, normalized by the concurrency bound. 1.0 = the
// executor is exactly full with an empty queue; 2.0 = a full backlog the
// size of capacity is waiting behind it.
func (s *Scheduler) pressure() float64 {
	return float64(s.running+len(s.queue)) / float64(s.maxConcurrent)
}

// updateOverload feeds the controller (nil-safe). Entering overload is a
// capacity event: kick the reconfiguration controller (itself nil-safe) so
// already-running lower-tier work can re-plan cheaper at its next stage
// boundary while new admissions degrade.
func (s *Scheduler) updateOverload() {
	if s.slo == nil {
		return
	}
	if s.slo.ctrl.observe(s.pressure()) && s.slo.ctrl.degraded {
		s.scheduleReconfig()
	}
}

// sloAdmit is the Submit-time gate: it resolves the submission's class and
// sheds it — synchronously, before a handle or JobID exists — when the
// tenant's cost budget is exhausted or its queue bound is reached. The
// decision is deterministic: it depends only on scheduler state, which is a
// pure function of the submission/completion sequence in simulated time.
func (s *Scheduler) sloAdmit(tenant string, opts SubmitOptions) (string, error) {
	cl, err := s.slo.classFor(tenant, opts.SLOClass)
	if err != nil {
		return "", err
	}
	ts := s.slo.tenant(tenant, cl.Name)
	if cl.CostBudgetUSD > 0 && ts.spent >= cl.CostBudgetUSD {
		ts.stats.BudgetExhausted++
		s.slo.budgetExhausted++
		return "", &JobError{Code: CodeBudgetExhausted, Op: "admission",
			Err: fmt.Errorf("core: tenant %q spent $%.4f of its $%.4f budget", tenant, ts.spent, cl.CostBudgetUSD)}
	}
	if cl.MaxQueue > 0 && ts.queued >= cl.MaxQueue {
		ts.stats.Shed++
		s.slo.shed++
		return "", &JobError{Code: CodeShedOverload, Op: "admission",
			Err: fmt.Errorf("core: tenant %q queue bound %d reached under overload", tenant, cl.MaxQueue)}
	}
	ts.queued++
	ts.stats.Admitted++
	return cl.Name, nil
}

// sloStarted moves a handle's accounting from queued to launched, charging
// the plan's estimated cost against the tenant budget (ex is nil when the
// launch itself failed).
func (s *Scheduler) sloStarted(h *Handle, ex *Execution) {
	ts := s.slo.tenants[h.tenant]
	if ts == nil {
		return
	}
	if ex != nil && ex.plan != nil {
		ts.spent += ex.plan.EstCostUSD
		ts.stats.CostSpentUSD = ts.spent
	}
}

// sloSettled classifies a completed job against its tier's latency target.
func (s *Scheduler) sloSettled(h *Handle) {
	if h.status != JobDone {
		return
	}
	ts := s.slo.tenants[h.tenant]
	if ts == nil {
		return
	}
	cl, ok := s.slo.cfg.Classes[h.sloClass]
	if !ok || cl.LatencyTargetS <= 0 {
		return
	}
	if s.se.Now().Sub(h.submittedAt).Seconds() <= cl.LatencyTargetS {
		ts.stats.SLOMet++
		s.slo.sloMet++
	} else {
		ts.stats.SLOMissed++
		s.slo.sloMissed++
	}
}

// sloDequeued drops a handle from its tenant's queued gauge (at start, or
// when a queued job is canceled).
func (s *Scheduler) sloDequeued(h *Handle) {
	if ts := s.slo.tenants[h.tenant]; ts != nil && ts.queued > 0 {
		ts.queued--
	}
}

// sloDegradeEligible reports whether a handle about to start should be
// offered a degraded plan: the controller is engaged and the tier opted in.
func (s *Scheduler) sloDegradeEligible(h *Handle) bool {
	if !s.slo.ctrl.degraded {
		return false
	}
	cl, ok := s.slo.cfg.Classes[h.sloClass]
	return ok && cl.Degradable
}

// startDegraded is the overload admission path: resolve the decomposition
// and plan exactly as the normal path would (committed search result when
// still valid, inline otherwise), then try to swap the plan for a cheaper
// degraded one before launch.
func (s *Scheduler) startDegraded(h *Handle) (*Execution, error) {
	rt := s.rt
	var decomp *planner.Result
	var plan *optimizer.Plan
	if h.prepared != nil && h.prepared.valid(rt) {
		decomp, plan = h.prepared.decomp, h.prepared.plan
	} else {
		if h.prepared != nil {
			s.planConflicts++
		}
		var err error
		if decomp, err = rt.decompose(h.job); err != nil {
			return nil, err
		}
		if plan, err = rt.planFor(decomp.Graph, rt.cl.Snapshot(), planOptions(h.job, h.opts)); err != nil {
			return nil, err
		}
	}
	floor := h.job.MinQuality
	maxLatX := 4.0
	if cl, ok := s.slo.cfg.Classes[h.sloClass]; ok {
		if cl.MinQuality > 0 {
			floor = cl.MinQuality
		}
		if cl.MaxDegradeLatencyX > 0 {
			maxLatX = cl.MaxDegradeLatencyX
		}
	}
	if degraded := rt.degradePlanForOverload(decomp, plan, h.job, h.opts, floor, maxLatX); degraded != nil {
		plan = degraded
		s.slo.degradedAdmits++
		if ts := s.slo.tenants[h.tenant]; ts != nil {
			ts.stats.DegradedAdmits++
		}
	}
	return rt.launch(h.job, h.opts, decomp, plan)
}

// cheapestProfile returns an implementation's cheapest profiled cost for
// the given work, together with that profile's latency (ok=false when the
// implementation has no profile for the capability) — the like-for-like
// yardstick the degradation walk compares cascade levels against.
func (rt *Runtime) cheapestProfile(cap, impl string, work float64, snap cluster.Snapshot) (cost, lat float64, ok bool) {
	cost = math.Inf(1)
	for _, p := range rt.store.ForImplementation(impl) {
		if p.Capability != cap || !snapFits(snap, p.Config) {
			continue
		}
		if c := p.CostUSD(rt.cl.Catalog(), rt.cpuType, work); c < cost {
			cost, lat, ok = c, p.LatencyS(work), true
		}
	}
	return cost, lat, ok
}

// degradePlanForOverload builds an admission-time degraded plan: for each
// capability (most expensive first, user pins untouched) it walks the PR-6
// degradation cascade cheapest-first and pins the first alternative
// implementation that is cheaper than the current one, no more than
// maxLatX slower on the capability's work (profile-level, like-for-like),
// and keeps chain correctness at or above the floor; then it re-plans once
// with the accumulated pins. The result is adopted only when its estimated
// cost strictly beats the undegraded plan; nil means launch the original.
// Everything iterates in sorted order, so the outcome is deterministic for
// a given scheduler state.
func (rt *Runtime) degradePlanForOverload(decomp *planner.Result, plan *optimizer.Plan, job workflow.Job, opts SubmitOptions, floor, maxLatX float64) *optimizer.Plan {
	snap := rt.cl.Snapshot()
	work := decomp.Graph.CapabilityWork()
	sq := make(quality.StageQuality, len(plan.Decisions))
	caps := make([]string, 0, len(plan.Decisions))
	for cap, d := range plan.Decisions {
		sq[cap] = d.Quality
		caps = append(caps, cap)
	}
	sort.Slice(caps, func(i, j int) bool {
		di, dj := plan.Decisions[caps[i]], plan.Decisions[caps[j]]
		if di.EstCostUSD != dj.EstCostUSD {
			return di.EstCostUSD > dj.EstCostUSD
		}
		return caps[i] < caps[j]
	})
	pins := map[string]optimizer.Pin{}
	for cap, p := range opts.Pinned {
		pins[cap] = p
	}
	swapped := 0
	for _, cap := range caps {
		if _, userPinned := opts.Pinned[cap]; userPinned {
			continue
		}
		if work[cap] <= 0 {
			continue
		}
		cur := plan.Decisions[cap]
		curCost, curLat, ok := rt.cheapestProfile(cap, cur.Implementation, work[cap], snap)
		if !ok {
			continue
		}
		casc, cfgs := rt.degradeCandidates(cap, cur.Implementation, work[cap], snap)
		if len(casc.Levels) == 0 {
			continue
		}
		casc.SortByCost()
		for _, lvl := range casc.Levels {
			if lvl.CostUSD >= curCost {
				break // cheapest-first: nothing cheaper remains
			}
			if lvl.LatencyS > curLat*maxLatX {
				continue
			}
			if floor > 0 {
				prev := sq[cap]
				sq[cap] = lvl.Quality
				if quality.ChainCorrectness(decomp.Graph, sq) < floor {
					sq[cap] = prev
					continue
				}
			} else {
				sq[cap] = lvl.Quality
			}
			pins[cap] = optimizer.Pin{Implementation: lvl.Implementation, Config: cfgs[lvl.Implementation]}
			swapped++
			break
		}
	}
	if swapped == 0 {
		return nil
	}
	o := planOptions(job, opts)
	o.Pinned = pins
	// The floor was checked chain-wise above; a stage-wise floor here would
	// reject the very degradation this path exists to make.
	o.MinQuality = 0
	degraded, err := rt.opt.Plan(decomp.Graph, snap, o)
	if err != nil || degraded.EstCostUSD >= plan.EstCostUSD {
		return nil
	}
	return degraded
}

// SLOTenants returns per-tenant SLO accounting sorted by tenant (nil with
// SLO tiers disabled).
func (s *Scheduler) SLOTenants() []TenantSLOStats {
	if s.slo == nil {
		return nil
	}
	out := make([]TenantSLOStats, 0, len(s.slo.tenants))
	for _, ts := range s.slo.tenants {
		out = append(out, ts.stats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
