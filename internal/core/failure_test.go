package core

import (
	"fmt"
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// spotRuntime builds a testbed with one spot VM and one on-demand VM.
func spotRuntime(t *testing.T) (*sim.Engine, *cluster.Cluster, *Runtime) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("spot0", hardware.NDv4SKUName, true)
	cl.AddVM("od0", hardware.NDv4SKUName, false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	return se, cl, rt
}

func TestSpotPreemptionMidRunRecovers(t *testing.T) {
	se, cl, rt := spotRuntime(t)
	ex, err := rt.Submit(paperJob(workflow.MinCost), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Schedule(20, func() { cl.PreemptVM("spot0") })
	se.Run()
	if !ex.Done() || ex.Err() != nil {
		t.Fatalf("done=%v err=%v", ex.Done(), ex.Err())
	}
	rep := ex.Report()
	if rep.TasksCompleted != 80 {
		t.Fatalf("tasks = %d, want 80 despite preemption", rep.TasksCompleted)
	}
	// The preemption must have actually cost something: either retries or
	// an engine rebuild lengthened the run beyond the two-VM result.
	if ex.Retries() == 0 && rep.MakespanS < 90 {
		t.Fatalf("preemption had no observable effect (retries=0, makespan=%.1f)",
			rep.MakespanS)
	}
	// Surviving VM's resources fully released; the preempted VM offers none.
	if free := cl.FreeGPUs(hardware.GPUA100); free != 8 {
		t.Fatalf("free GPUs = %d, want 8 (od0 only)", free)
	}
	if free := cl.FreeCPUCores(); free != 96 {
		t.Fatalf("free cores = %d, want 96 (od0 only)", free)
	}
}

// Property-style sweep: preemption at any point of the workflow always
// recovers with all tasks completed and no resource leak.
func TestPreemptionSweepAlwaysRecovers(t *testing.T) {
	for _, at := range []float64{0.5, 5, 15, 40, 70} {
		at := at
		t.Run(fmt.Sprintf("t=%v", at), func(t *testing.T) {
			se, cl, rt := spotRuntime(t)
			ex, err := rt.Submit(paperJob(workflow.MinCost), SubmitOptions{RelaxFloor: true})
			if err != nil {
				t.Fatal(err)
			}
			se.Schedule(sim.Time(at), func() { cl.PreemptVM("spot0") })
			se.SetEventLimit(2_000_000)
			se.Run()
			if !ex.Done() || ex.Err() != nil {
				t.Fatalf("preempt@%v: done=%v err=%v", at, ex.Done(), ex.Err())
			}
			if got := ex.Report().TasksCompleted; got != 80 {
				t.Fatalf("preempt@%v: tasks = %d", at, got)
			}
			if free := cl.FreeGPUs(hardware.GPUA100); free != 8 {
				t.Fatalf("preempt@%v: free GPUs = %d, want 8", at, free)
			}
			if open := ex.Report().Tracer.OpenCount(); open != 0 {
				t.Fatalf("preempt@%v: %d spans left open", at, open)
			}
		})
	}
}

func TestPreemptionAfterCompletionHarmless(t *testing.T) {
	se, cl, rt := spotRuntime(t)
	ex, err := rt.Submit(paperJob(workflow.MinCost), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.Run() // finish first
	if !ex.Done() {
		t.Fatal("not done")
	}
	cl.PreemptVM("spot0") // must not panic or corrupt anything
	se.Run()
}

func TestHarvestShrinkMidRunRecovers(t *testing.T) {
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	harvest := cl.AddVM("harvest0", "Standard_HB120rs_v3", false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	// MIN_COST puts STT on CPU workers; many land on the big harvest VM.
	ex, err := rt.Submit(paperJob(workflow.MinCost), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	// The primary tenant takes most of the harvest VM back mid-STT.
	se.Schedule(10, func() {
		if err := harvest.SetCPUCapacity(8); err != nil {
			t.Error(err)
		}
	})
	se.Run()
	if !ex.Done() || ex.Err() != nil {
		t.Fatalf("done=%v err=%v", ex.Done(), ex.Err())
	}
	if got := ex.Report().TasksCompleted; got != 80 {
		t.Fatalf("tasks = %d", got)
	}
	// Capacity accounting consistent after the shrink.
	if free := cl.FreeCPUCores(); free != 96+8 {
		t.Fatalf("free cores = %d, want 104", free)
	}
}

func TestConcurrentJobsSurvivePreemption(t *testing.T) {
	se, cl, rt := spotRuntime(t)
	var exs []*Execution
	for i := 0; i < 2; i++ {
		ex, err := rt.Submit(paperJob(workflow.MinCost), SubmitOptions{RelaxFloor: true, KeepEngines: true})
		if err != nil {
			t.Fatal(err)
		}
		exs = append(exs, ex)
	}
	se.Schedule(25, func() { cl.PreemptVM("spot0") })
	se.Run()
	for i, ex := range exs {
		if !ex.Done() || ex.Err() != nil {
			t.Fatalf("job %d: done=%v err=%v", i, ex.Done(), ex.Err())
		}
		if ex.Report().TasksCompleted != 80 {
			t.Fatalf("job %d: tasks = %d", i, ex.Report().TasksCompleted)
		}
	}
}
