package core

import (
	"errors"
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func schedTestbed(t *testing.T, maxConcurrent int) (*sim.Engine, *Scheduler) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	cl.AddVM("vm1", hardware.NDv4SKUName, false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	return se, NewScheduler(se, rt, maxConcurrent)
}

func schedVideoJob() workflow.Job {
	return workflow.Job{
		Description: "List objects shown in the videos",
		Inputs:      []workflow.Input{workflow.VideoInput("a.mov", 120, 30, 24)},
		Constraint:  workflow.MinCost,
		MinQuality:  0.9,
	}
}

func schedNewsfeedJob() workflow.Job {
	return workflow.Job{
		Description: "Generate social media newsfeed for Alice",
		Inputs: []workflow.Input{
			{Name: "alice", Kind: workflow.InputUser},
			{Name: "cats", Kind: workflow.InputTopic},
		},
		Constraint: workflow.MinLatency,
	}
}

func TestSchedulerLifecycle(t *testing.T) {
	se, s := schedTestbed(t, 2)
	h, err := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != 1 || h.Tenant() != "alice" {
		t.Fatalf("handle = id %d tenant %q", h.ID(), h.Tenant())
	}
	if h.Status() != JobQueued {
		t.Fatalf("status = %v before pump", h.Status())
	}
	se.Run()
	if h.Status() != JobDone || h.Err() != nil {
		t.Fatalf("status = %v err = %v", h.Status(), h.Err())
	}
	if h.Report() == nil || h.Report().MakespanS <= 0 {
		t.Fatal("no report on done handle")
	}
	st := s.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerConcurrencyBoundAndFairShare(t *testing.T) {
	se, s := schedTestbed(t, 1)
	a1, _ := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	a2, _ := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	b1, _ := s.Submit("bob", schedNewsfeedJob(), SubmitOptions{RelaxFloor: true})
	se.RunUntil(1)
	if a1.Status() != JobRunning || a2.Status() != JobQueued {
		t.Fatalf("a1=%v a2=%v, want running/queued", a1.Status(), a2.Status())
	}
	if s.Running() != 1 || s.QueueDepth() != 2 {
		t.Fatalf("running=%d queued=%d", s.Running(), s.QueueDepth())
	}
	var order []string
	for _, h := range []*Handle{a1, a2, b1} {
		h := h
		h.OnDone(func(*Handle) { order = append(order, h.Tenant()) })
	}
	se.Run()
	// Fair share: bob's single job must not wait behind alice's backlog.
	if len(order) != 3 || order[0] != "alice" || order[1] != "bob" {
		t.Fatalf("completion order = %v, want alice,bob,alice", order)
	}
	if a2.QueueDelayS() <= 0 {
		t.Fatal("queued job reports no queue delay")
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	se, s := schedTestbed(t, 1)
	s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	h2, _ := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	se.RunUntil(1)
	if h2.Status() != JobQueued {
		t.Fatalf("h2 = %v, want queued", h2.Status())
	}
	fired := false
	h2.OnDone(func(*Handle) { fired = true })
	if !h2.Cancel() {
		t.Fatal("Cancel on queued job returned false")
	}
	if h2.Status() != JobCanceled || !errors.Is(h2.Err(), ErrCanceled) || !fired {
		t.Fatalf("after cancel: status=%v err=%v fired=%v", h2.Status(), h2.Err(), fired)
	}
	if h2.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	se.Run()
	st := s.Stats()
	if st.Canceled != 1 || st.Completed != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerCancelRunning(t *testing.T) {
	se, s := schedTestbed(t, 2)
	h, _ := s.Submit("alice", schedVideoJob(), SubmitOptions{RelaxFloor: true})
	se.RunUntil(5) // mid-execution: engines up, workers busy
	if h.Status() != JobRunning {
		t.Fatalf("status = %v at t=5, want running", h.Status())
	}
	if !h.Cancel() {
		t.Fatal("Cancel on running job returned false")
	}
	if h.Status() != JobCanceled || !errors.Is(h.Err(), ErrCanceled) {
		t.Fatalf("after cancel: status=%v err=%v", h.Status(), h.Err())
	}
	// The simulation drains cleanly: no orphaned events panic, and the slot
	// freed by the cancel admits later jobs.
	h2, _ := s.Submit("alice", schedNewsfeedJob(), SubmitOptions{RelaxFloor: true})
	se.Run()
	if h2.Status() != JobDone {
		t.Fatalf("follow-up job = %v err=%v", h2.Status(), h2.Err())
	}
	if s.Stats().Canceled != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSchedulerFailedJobSurfacesOnHandle(t *testing.T) {
	se, s := schedTestbed(t, 1)
	bad := workflow.Job{
		Description: "Do mysterious things",
		Inputs:      []workflow.Input{{Name: "x", Kind: workflow.InputText}},
		Constraint:  workflow.MinCost,
	}
	h, err := s.Submit("alice", bad, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	se.Run()
	if h.Status() != JobFailed || h.Err() == nil {
		t.Fatalf("status = %v err = %v, want failed", h.Status(), h.Err())
	}
	if s.Stats().Failed != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestSchedulerRejectsInvalidSubmissions(t *testing.T) {
	_, s := schedTestbed(t, 1)
	if _, err := s.Submit("", schedVideoJob(), SubmitOptions{}); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if _, err := s.Submit("alice", workflow.Job{}, SubmitOptions{}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestJobStatusString(t *testing.T) {
	for s, want := range map[JobStatus]string{
		JobQueued: "queued", JobRunning: "running", JobDone: "done",
		JobFailed: "failed", JobCanceled: "canceled", JobStatus(9): "JobStatus(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if JobQueued.Terminal() || JobRunning.Terminal() || !JobDone.Terminal() ||
		!JobFailed.Terminal() || !JobCanceled.Terminal() {
		t.Error("Terminal() classification wrong")
	}
}
