package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/optimizer"
)

// Mid-flight workflow reconfiguration (the paper's §3.2 runtime-adaptation
// claim): workflows are declarative, so the system is free to re-bind the
// *remaining* stages of a running job to different models and hardware as
// conditions change — the Whisper→Llama GPU-rebalance example generalized.
//
// The controller lives on the scheduler: whenever the plan environment moves
// (cluster.CapacityGen from fleet churn, the profile-store or library
// generations, or a clustermgr rebalance pass), it re-runs the optimizer over
// the remaining DAG of every running job and adopts the new plan only if it
// strictly improves the job's declared objective by a hysteresis margin.
// Re-binding happens at stage boundaries only: completed stages are pinned
// (their accounting and the paper's telemetry integrals are untouched), and
// capabilities with tasks in flight keep their current decision — mid-stage
// migration was rejected (see ROADMAP Decisions). With off-loop plan search
// enabled, the re-plan runs on the PR-4 worker pool against an immutable
// snapshot and commits optimistically; generation drift at commit discards
// the result (a conflict), exactly like admission.

// ReconfigConfig tunes the scheduler's reconfiguration controller.
type ReconfigConfig struct {
	// Hysteresis is the minimum relative improvement of the remaining-stage
	// objective before a re-plan is adopted (default 0.05 = 5%): a new plan
	// must beat re-scoring the current decisions over the same remaining DAG
	// by this margin, or churn would thrash bindings for noise-level wins.
	Hysteresis float64
}

// reconfigState is the controller's loop-owned state.
type reconfigState struct {
	cfg     ReconfigConfig
	pending bool
	// last* record the plan-environment generations of the latest completed
	// evaluation pass, so cheap checks (pump) can detect movement the
	// capacity and rebalance hooks do not cover.
	lastCapGen   uint64
	lastStoreGen int
	lastLibGen   int
}

// EnableReconfig attaches the reconfiguration controller to the scheduler.
// Call once, before jobs run. Like every scheduler method it runs on the
// engine goroutine; with off-loop plan search enabled the re-plans share the
// search pool, otherwise they run inline on the loop.
func (s *Scheduler) EnableReconfig(cfg ReconfigConfig) {
	if s.reconfig != nil {
		panic("core: reconfiguration already enabled")
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.05
	}
	s.reconfig = &reconfigState{
		cfg:          cfg,
		lastCapGen:   s.rt.cl.CapacityGen(),
		lastStoreGen: s.rt.store.Gen(),
		lastLibGen:   s.rt.lib.Gen(),
	}
	// Capacity-class churn (AddVM / preemption / harvest resize) and engine
	// rebalancing both re-trigger evaluation. The hooks fire mid-mutation, so
	// they only schedule the pass; Defer runs it once the cluster is settled.
	s.rt.cl.OnCapacityChange(func() { s.scheduleReconfig() })
	s.rt.mgr.OnRebalance(func() { s.scheduleReconfig() })
}

// ReconfigEnabled reports whether the controller is attached.
func (s *Scheduler) ReconfigEnabled() bool { return s.reconfig != nil }

// scheduleReconfig arranges one evaluation pass at the current simulated
// instant (deduplicating bursts of triggers).
func (s *Scheduler) scheduleReconfig() {
	rc := s.reconfig
	if rc == nil || rc.pending {
		return
	}
	rc.pending = true
	s.se.Defer(s.evalReconfig)
}

// checkReconfigGens triggers an evaluation when the plan environment moved
// without a hook firing (profile recalibration, library registration). Cheap
// — three integer compares — so pump can afford it.
func (s *Scheduler) checkReconfigGens() {
	rc := s.reconfig
	if rc == nil || rc.pending {
		return
	}
	if rc.lastCapGen != s.rt.cl.CapacityGen() ||
		rc.lastStoreGen != s.rt.store.Gen() || rc.lastLibGen != s.rt.lib.Gen() {
		s.scheduleReconfig()
	}
}

// evalReconfig is one controller pass: every running job is considered in
// admission order (JobID), so evaluation order — and with it engine placement
// — is deterministic for a fixed event history.
func (s *Scheduler) evalReconfig() {
	rc := s.reconfig
	rc.pending = false
	rc.lastCapGen = s.rt.cl.CapacityGen()
	rc.lastStoreGen = s.rt.store.Gen()
	rc.lastLibGen = s.rt.lib.Gen()
	ids := make([]int, 0, len(s.runningSet))
	for id := range s.runningSet {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.considerReconfig(s.runningSet[JobID(id)])
	}
}

// remainingView is the execution's explicit remaining-DAG view: the frozen
// graph of not-yet-completed nodes, the capabilities that must keep their
// current binding (tasks in flight), and how many remaining tasks are free
// to rebind.
type remainingView struct {
	graph *dag.Graph
	// inflight marks capabilities with tasks executing right now — at the
	// next stage boundary they become rebindable, but not before.
	inflight map[string]bool
	// free counts remaining tasks on rebindable capabilities.
	free int
}

// remainingView snapshots the remaining DAG. Edges are dropped: the
// optimizer consumes only (capability, work) demand, and the execution keeps
// driving the original tracker — this graph exists purely to re-plan over.
func (ex *Execution) remainingView() *remainingView {
	rv := &remainingView{graph: dag.New(), inflight: map[string]bool{}}
	for _, n := range ex.tracker.RemainingNodes() {
		rv.graph.MustAddNode(*n)
		if st, ok := ex.stages[n.Capability]; ok && st.inflight > 0 {
			rv.inflight[n.Capability] = true
		} else {
			rv.free++
		}
	}
	if err := rv.graph.Freeze(); err != nil {
		panic(err) // unreachable: no edges
	}
	return rv
}

// pinFromDecision renders a decision as an optimizer pin, so a re-plan can
// hold in-flight capabilities (and the hysteresis baseline can hold every
// capability) to the current binding.
func pinFromDecision(d optimizer.Decision) optimizer.Pin {
	return optimizer.Pin{
		Implementation: d.Implementation,
		Config:         d.Config,
		Parallelism:    d.Parallelism,
		ExecutionPaths: d.ExecutionPaths,
		AllowScaling:   d.AllowScaling,
	}
}

// decisionEquivalent reports whether two decisions bind the same execution
// configuration. Estimates and pin provenance are ignored: a re-plan over
// the remaining DAG re-derives estimates from remaining work, and pinning an
// in-flight capability marks its decision Pinned without changing what runs.
func decisionEquivalent(a, b optimizer.Decision) bool {
	return a.Implementation == b.Implementation &&
		a.Config == b.Config &&
		a.Parallelism == b.Parallelism &&
		max(a.ExecutionPaths, 1) == max(b.ExecutionPaths, 1)
}

// considerReconfig evaluates one running job: re-plan its remaining DAG and
// adopt the result if it clears the hysteresis bar. With the search pool
// attached the expensive optimizer pass runs off-loop and commits
// optimistically; otherwise it runs inline right here.
func (s *Scheduler) considerReconfig(h *Handle) {
	ex := h.exec
	if ex == nil || ex.done || h.reconfigInflight {
		return
	}
	rv := ex.remainingView()
	if rv.free == 0 || rv.graph.Len() == 0 {
		return
	}
	s.reconfigs++

	planO := planOptions(h.job, h.opts)
	// The candidate search holds user pins plus every in-flight capability.
	pins := make(map[string]optimizer.Pin, len(planO.Pinned)+len(rv.inflight))
	for cap, pin := range planO.Pinned {
		pins[cap] = pin
	}
	for cap := range rv.inflight {
		if _, ok := pins[cap]; !ok {
			pins[cap] = pinFromDecision(ex.plan.Decisions[cap])
		}
	}
	newO := planO
	newO.Pinned = pins

	// The hysteresis baseline: the current decisions re-scored over the same
	// remaining DAG under current capacity. Infeasible (the fleet shrank from
	// under the old plan) scores +Inf, so any feasible re-plan wins.
	curPins := make(map[string]optimizer.Pin, rv.graph.Len())
	for _, n := range rv.graph.Nodes() {
		if _, ok := curPins[n.Capability]; !ok {
			curPins[n.Capability] = pinFromDecision(ex.plan.Decisions[n.Capability])
		}
	}
	curO := planO
	curO.Pinned = curPins

	// Both searches bypass the runtime's plan cache: a remaining-DAG key is
	// unique to one job's progress and would never be hit again, and a churn
	// storm of one-shot inserts would wholesale-reset the cache out from
	// under admission's structurally-identical jobs. The all-pinned baseline
	// is cheap (applyPin per capability, no enumeration); the candidate
	// search pays full price only on the rare capacity events that trigger
	// evaluation.
	snap := s.rt.cl.Snapshot()
	curObj := math.Inf(1)
	if curPlan, err := s.rt.opt.Plan(rv.graph, snap, curO); err == nil {
		curObj = curPlan.Objective(h.job.Constraint)
	}

	if s.search != nil {
		h.reconfigInflight = true
		s.search.dispatchReconfig(h, rv.graph, newO, curObj, snap)
		return
	}
	newPlan, err := s.rt.opt.Plan(rv.graph, snap, newO)
	if err != nil {
		s.reconfigSkips++
		return
	}
	s.finishReconfig(h, newPlan, curObj)
}

// finishReconfig applies the hysteresis test and adopts a winning plan.
func (s *Scheduler) finishReconfig(h *Handle, newPlan *optimizer.Plan, curObj float64) {
	ex := h.exec
	if ex == nil || ex.done {
		s.reconfigSkips++
		return
	}
	newObj := newPlan.Objective(h.job.Constraint)
	margin := s.reconfig.cfg.Hysteresis
	if !(newObj < curObj && curObj-newObj >= margin*math.Abs(curObj)) {
		s.reconfigSkips++
		return
	}
	changed, err := ex.adoptPlan(newPlan)
	if err != nil || changed == 0 {
		s.reconfigSkips++
		return
	}
	s.reconfigWins++
}

// adoptPlan re-binds the execution's remaining stages to newPlan's decisions
// at the current stage boundaries. Capabilities with tasks in flight, with no
// remaining work, or absent from newPlan keep their current binding; engine
// refs move two-phase (ensure new, rebind, release old) so a failure midway
// leaves the execution exactly as it was. Returns how many capabilities were
// rebound.
func (ex *Execution) adoptPlan(newPlan *optimizer.Plan) (int, error) {
	remaining := ex.tracker.RemainingCapabilityWork()
	var changed []string
	for _, cap := range sortedCaps(newPlan.Decisions) {
		cur, ok := ex.plan.Decisions[cap]
		if !ok || remaining[cap] == 0 {
			continue
		}
		if decisionEquivalent(cur, newPlan.Decisions[cap]) {
			continue
		}
		if st, ok := ex.stages[cap]; ok && st.inflight > 0 {
			// The stage left its boundary between planning and adoption
			// (off-loop search latency); its binding waits for the next pass.
			continue
		}
		changed = append(changed, cap)
	}
	if len(changed) == 0 {
		return 0, nil
	}

	// Phase 1: acquire engine refs for newly engine-served decisions before
	// touching anything, so an EnsureEngine failure aborts cleanly.
	var acquired []string
	rollback := func() {
		for _, name := range acquired {
			ex.rt.releaseEngineRef(name)
		}
	}
	for _, cap := range changed {
		nd := newPlan.Decisions[cap]
		if !ex.engineServed(cap, nd) {
			continue
		}
		name, err := ex.acquireEngineRef(cap, nd, "re-planned")
		if err != nil {
			rollback()
			return 0, err
		}
		acquired = append(acquired, name)
	}

	// Phase 2: swap the plan (a copy — cached plans are shared by pointer
	// across executions and must never be mutated), rebind the affected
	// stages and hand back the refs the replaced decisions held. Every
	// changed stage freezes (beginRebind) before any binding swaps: tearing
	// one stage down releases allocations the cluster manager re-grants
	// synchronously, and an unfrozen sibling's pump would start a task under
	// a binding this very adoption is about to replace.
	merged := &optimizer.Plan{
		Constraint: ex.plan.Constraint,
		Decisions:  make(map[string]optimizer.Decision, len(ex.plan.Decisions)),
	}
	for cap, d := range ex.plan.Decisions {
		merged.Decisions[cap] = d
	}
	for _, cap := range changed {
		if st, ok := ex.stages[cap]; ok {
			st.beginRebind()
		}
	}
	for _, cap := range changed {
		old := ex.plan.Decisions[cap]
		nd := newPlan.Decisions[cap]
		merged.Decisions[cap] = nd
		if st, ok := ex.stages[cap]; ok {
			st.finishRebind(nd)
		}
		if ex.engineServed(cap, old) {
			if spec, ok := engineSpecFor(old.Implementation); ok {
				ex.dropEngineRef(spec.Name)
			}
		}
		ex.rep.Decisions[cap] = fmt.Sprintf("%s @ %s ×%d", nd.Implementation, nd.Config, nd.Parallelism)
		if nd.ExecutionPaths > 1 {
			ex.rep.Decisions[cap] += fmt.Sprintf(" paths=%d", nd.ExecutionPaths)
		}
		ex.rep.Decisions[cap] += " (reconfigured)"
	}
	// Re-derive the plan-level estimates from the merged decisions so a
	// reconfigured job's report describes the bindings it actually ran
	// (cost/energy/latency sum what each decision was last planned over;
	// quality is work-weighted over the full DAG, so it is exact for the
	// current bindings). Summation follows sorted capability order — float
	// accumulation must not depend on map iteration.
	capWork := ex.tracker.Graph().CapabilityWork()
	totalWork, weighted := 0.0, 0.0
	for _, cap := range sortedCaps(merged.Decisions) {
		d := merged.Decisions[cap]
		merged.EstCostUSD += d.EstCostUSD
		merged.EstEnergyJ += d.EstEnergyJ
		merged.EstLatencyS += d.EstLatencyS
		totalWork += capWork[cap]
		weighted += capWork[cap] * d.Quality
	}
	if totalWork > 0 {
		merged.EstQuality = weighted / totalWork
	}
	ex.rep.Quality = merged.EstQuality
	ex.heldEngines = append(ex.heldEngines, acquired...)
	ex.plan = merged
	ex.reconfigs++
	return len(changed), nil
}

// dropEngineRef removes one recorded ref on the named engine and releases it.
func (ex *Execution) dropEngineRef(name string) {
	for i, held := range ex.heldEngines {
		if held == name {
			ex.heldEngines = append(ex.heldEngines[:i], ex.heldEngines[i+1:]...)
			ex.rt.releaseEngineRef(name)
			return
		}
	}
}
