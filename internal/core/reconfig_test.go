package core

import (
	"fmt"
	"testing"

	"repro/internal/agents"
	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// reconfigTestbed is a single-VM shard: small enough that fleet growth
// mid-run meaningfully changes what the optimizer would choose.
func reconfigTestbed(t *testing.T, maxConcurrent int, enable bool) (*sim.Engine, *cluster.Cluster, *Scheduler) {
	t.Helper()
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(se, rt, maxConcurrent)
	if enable {
		s.EnableReconfig(ReconfigConfig{})
	}
	return se, cl, s
}

// wideVideoJob has 12 tasks per worker stage, so its planned parallelism is
// capacity-bound on one VM and a bigger fleet unlocks shorter waves.
func wideVideoJob() workflow.Job {
	return workflow.Job{
		Description: "List objects shown in the videos",
		Inputs:      []workflow.Input{workflow.VideoInput("wide.mov", 360, 30, 24)},
		Constraint:  workflow.MinLatency,
		MinQuality:  0.9,
	}
}

// runGrowthScenario submits one wide job, grows the fleet by three VMs at
// t=2s — while the job's later stages have not started, so their bindings
// are still at a boundary — and runs to completion.
func runGrowthScenario(t *testing.T, enable bool) (*Handle, *Scheduler) {
	t.Helper()
	se, cl, s := reconfigTestbed(t, 4, enable)
	h, err := s.Submit("alice", wideVideoJob(), SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	se.After(2, func() {
		for i := 1; i <= 3; i++ {
			cl.AddVM(fmt.Sprintf("vm%d", i), hardware.NDv4SKUName, false)
		}
	})
	se.Run()
	if h.Status() != JobDone || h.Err() != nil {
		t.Fatalf("job = %v err = %v", h.Status(), h.Err())
	}
	return h, s
}

func TestReconfigAdoptsOnCapacityGrowth(t *testing.T) {
	hOff, sOff := runGrowthScenario(t, false)
	if st := sOff.Stats(); st.Reconfigs != 0 || st.ReconfigWins != 0 || st.ReconfigSkips != 0 {
		t.Fatalf("disabled controller counted: %+v", st)
	}
	if hOff.Execution().Reconfigs() != 0 {
		t.Fatal("disabled controller re-bound an execution")
	}
	h, sOn := runGrowthScenario(t, true)
	st := sOn.Stats()
	if st.Reconfigs == 0 || st.ReconfigWins == 0 {
		t.Fatalf("no adoption under capacity growth: %+v", st)
	}
	if got := h.Execution().Reconfigs(); got == 0 {
		t.Fatal("execution adopted no re-plan")
	}
	// The adopted plan actually moved a binding relative to the baseline arm,
	// and the report records the reconfiguration.
	changed := 0
	for cap, d := range h.Execution().Plan().Decisions {
		od := hOff.Execution().Plan().Decisions[cap]
		if !decisionEquivalent(od, d) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("adopted plan is equivalent to the never-reconfigured plan")
	}
	marked := 0
	for _, s := range h.Report().Decisions {
		if len(s) > 14 && s[len(s)-14:] == "(reconfigured)" {
			marked++
		}
	}
	if marked == 0 {
		t.Fatalf("report does not record reconfigured decisions: %v", h.Report().Decisions)
	}
	// Evaluations resolve exhaustively: every one is a win, a skip or a
	// conflict (serial mode has no conflicts).
	if st.Reconfigs != st.ReconfigWins+st.ReconfigSkips+st.ReconfigConflicts {
		t.Fatalf("evaluation accounting leaks: %+v", st)
	}
}

func TestReconfigSkipsWhenObjectiveUnmoved(t *testing.T) {
	// A MinCost job: per-task cost is parallelism-independent, so fleet
	// growth cannot improve the objective and every evaluation must skip.
	se, cl, s := reconfigTestbed(t, 4, true)
	job := wideVideoJob()
	job.Constraint = workflow.MinCost
	h, err := s.Submit("alice", job, SubmitOptions{RelaxFloor: true})
	if err != nil {
		t.Fatal(err)
	}
	var before map[string]string
	se.After(10, func() {
		before = map[string]string{}
		for cap, d := range h.Execution().Plan().Decisions {
			before[cap] = fmt.Sprintf("%s/%v/%d", d.Implementation, d.Config, d.Parallelism)
		}
		cl.AddVM("vm1", hardware.NDv4SKUName, false)
	})
	se.Run()
	if h.Status() != JobDone {
		t.Fatalf("job = %v err = %v", h.Status(), h.Err())
	}
	st := s.Stats()
	if st.Reconfigs == 0 {
		t.Fatalf("capacity change did not trigger evaluation: %+v", st)
	}
	if st.ReconfigWins != 0 {
		t.Fatalf("MinCost adopted a re-plan fleet growth cannot improve: %+v", st)
	}
	for cap, d := range h.Execution().Plan().Decisions {
		if got := fmt.Sprintf("%s/%v/%d", d.Implementation, d.Config, d.Parallelism); got != before[cap] {
			t.Fatalf("decision for %s changed without a win: %s -> %s", cap, before[cap], got)
		}
	}
}

func TestReconfigRepeatedChurnNeverStrands(t *testing.T) {
	// Regression: rebind tears down workers, and each teardown releases an
	// allocation that the cluster manager immediately re-grants; a re-granted
	// worker of the same stage must not start a task mid-teardown (that task
	// was silently abandoned and the job stranded). Several overlapping jobs
	// and back-to-back fleet events maximize rebind traffic.
	se, cl, s := reconfigTestbed(t, 8, true)
	var handles []*Handle
	for i := 0; i < 6; i++ {
		h, err := s.Submit(fmt.Sprintf("tenant-%d", i%3), wideVideoJob(), SubmitOptions{RelaxFloor: true, KeepEngines: true})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, at := range []float64{20, 25, 30, 60} {
		i, at := i, at
		se.After(sim.Duration(at), func() {
			cl.AddVM(fmt.Sprintf("churn%d", i), hardware.NDv4SKUName, true)
		})
	}
	se.After(90, func() { cl.PreemptVM("churn0") })
	se.Run()
	for i, h := range handles {
		if !h.Status().Terminal() {
			t.Fatalf("job %d stranded in %v after churn", i, h.Status())
		}
		if h.Status() != JobDone {
			t.Fatalf("job %d = %v err = %v", i, h.Status(), h.Err())
		}
	}
}

func TestReconfigOffLoopSearchCommits(t *testing.T) {
	// The off-loop path: re-plans run on the PR-4 worker pool and commit
	// optimistically on the loop. The job must complete and the evaluation
	// accounting must balance (wins + skips + conflicts).
	se := sim.NewEngine()
	cl := cluster.New(se, hardware.DefaultCatalog())
	cl.AddVM("vm0", hardware.NDv4SKUName, false)
	rt, err := New(Config{Engine: se, Cluster: cl, Library: agents.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(se, rt, 4)
	loop := sim.NewLoop(se)
	s.EnablePlanSearch(loop, 2)
	s.EnableReconfig(ReconfigConfig{})
	go loop.Run()

	done := make(chan *Handle, 1)
	loop.Post(func() {
		h, err := s.Submit("alice", wideVideoJob(), SubmitOptions{RelaxFloor: true})
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		h.OnDone(func(h *Handle) { done <- h })
		// Churn only once the job is actually running (its off-loop admission
		// search has committed), so the capacity change lands mid-flight
		// rather than invalidating the admission search.
		h.OnStart(func(*Handle) {
			se.After(2, func() {
				cl.AddVM("vm1", hardware.NDv4SKUName, false)
				cl.AddVM("vm2", hardware.NDv4SKUName, false)
			})
		})
	})
	h := <-done
	// Close drains the loop — in-flight reconfig searches resolve through
	// their holds before Run exits — and afterwards this goroutine is the
	// scheduler's sole accessor, so reading stats directly is race-free.
	loop.Close()
	s.StopPlanSearch()
	st := s.Stats()
	if h == nil || h.Status() != JobDone {
		t.Fatalf("off-loop reconfig job did not complete: %+v", h)
	}
	if st.Reconfigs == 0 {
		t.Fatalf("no evaluations dispatched: %+v", st)
	}
	if st.Reconfigs != st.ReconfigWins+st.ReconfigSkips+st.ReconfigConflicts {
		t.Fatalf("evaluation accounting leaks: %+v", st)
	}
}
